// Unit tests: experiment plumbing (sim/experiment.hpp).
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hpp"

namespace smt::sim {
namespace {

/// RAII environment-variable override.
class ScopedEnv {
 public:
  ScopedEnv(const char* key, const char* value) : key_(key) {
    const char* old = std::getenv(key);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(key, value, 1);
    } else {
      ::unsetenv(key);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(key_, saved_.c_str(), 1);
    } else {
      ::unsetenv(key_);
    }
  }

 private:
  const char* key_;
  std::string saved_;
  bool had_ = false;
};

TEST(Experiment, DefaultScale) {
  ScopedEnv env("SMT_BENCH_SCALE", nullptr);
  const ExperimentScale s = ExperimentScale::from_env();
  EXPECT_EQ(s.plan.intervals, 2u);
  EXPECT_GT(s.oracle_quanta, 0u);
}

TEST(Experiment, QuickScaleShrinksPlan) {
  ScopedEnv env("SMT_BENCH_SCALE", "quick");
  const ExperimentScale s = ExperimentScale::from_env();
  EXPECT_EQ(s.plan.intervals, 1u);
  EXPECT_LT(s.plan.measure_cycles, 100u * 1024u);
}

TEST(Experiment, FullScaleGrowsPlan) {
  ScopedEnv env("SMT_BENCH_SCALE", "full");
  const ExperimentScale s = ExperimentScale::from_env();
  EXPECT_GE(s.plan.intervals, 4u);
}

TEST(Experiment, ThresholdSweepMatchesPaper) {
  const auto ts = threshold_sweep();
  ASSERT_EQ(ts.size(), 5u) << "the paper sweeps m = 1..5";
  EXPECT_DOUBLE_EQ(ts.front(), 1.0);
  EXPECT_DOUBLE_EQ(ts.back(), 5.0);
}

TEST(Experiment, MixesForScaleQuickIsSubset) {
  ScopedEnv env("SMT_BENCH_SCALE", "quick");
  const ExperimentScale s = ExperimentScale::from_env();
  const auto quick = mixes_for_scale(s);
  EXPECT_LT(quick.size(), 13u);
  EXPECT_FALSE(quick.empty());
}

TEST(Experiment, MixesForScaleDefaultIsAllThirteen) {
  ScopedEnv env("SMT_BENCH_SCALE", nullptr);
  const ExperimentScale s = ExperimentScale::from_env();
  EXPECT_EQ(mixes_for_scale(s).size(), 13u);
}

TEST(Experiment, RunFixedProducesThroughput) {
  ScopedEnv env("SMT_BENCH_SCALE", "quick");
  ExperimentScale s = ExperimentScale::from_env();
  s.plan.warmup_cycles = 2048;
  s.plan.measure_cycles = 8192;
  const SampleResult r = run_fixed(workload::mix("ilp8"),
                                   policy::FetchPolicy::kIcount, 8, s);
  EXPECT_GT(r.ipc(), 0.5);
  EXPECT_EQ(r.switches, 0u) << "fixed runs never switch";
}

TEST(Experiment, RunAdtsRespectsOverrides) {
  ScopedEnv env("SMT_BENCH_SCALE", "quick");
  ExperimentScale s = ExperimentScale::from_env();
  s.plan.warmup_cycles = 2048;
  s.plan.measure_cycles = 4 * 8192;
  core::AdtsConfig overrides;
  overrides.quantum_cycles = 2048;
  overrides.instant_switch = true;
  const SampleResult r =
      run_adts(workload::mix("mem8"), core::HeuristicType::kType2,
               /*ipc_threshold=*/100.0, 8, s, &overrides);
  EXPECT_GT(r.quanta, 0u);
  EXPECT_GT(r.switches, 0u);
}

TEST(Experiment, RunOracleOnMixAggregates) {
  ScopedEnv env("SMT_BENCH_SCALE", "quick");
  ExperimentScale s = ExperimentScale::from_env();
  s.plan.warmup_cycles = 2048;
  s.oracle_quanta = 2;
  s.oracle_intervals = 2;
  OracleConfig ocfg;
  ocfg.quantum_cycles = 2048;
  const OracleResult r = run_oracle_on_mix(workload::mix("bal3"), 8, s, ocfg);
  EXPECT_EQ(r.cycles, 2u * 2u * 2048u);
  EXPECT_GT(r.committed, 0u);
}

}  // namespace
}  // namespace smt::sim
