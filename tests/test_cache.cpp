// Unit tests: set-associative cache (mem/cache.hpp).
#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace smt::mem {
namespace {

CacheConfig small_cfg() {
  // 4 sets x 2 ways x 64 B lines = 512 B.
  return CacheConfig{"test", 512, 64, 2};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x100, false));
  EXPECT_TRUE(c.access(0x13F, false)) << "same 64B line must hit";
  EXPECT_FALSE(c.access(0x140, false)) << "next line is cold";
}

TEST(Cache, StatsCount) {
  Cache c(small_cfg());
  c.access(0, false);
  c.access(0, false);
  c.access(64, false);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_NEAR(c.miss_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(small_cfg());  // 2 ways per set; set stride = 4 sets * 64 = 256
  const std::uint64_t a = 0x000;
  const std::uint64_t b = 0x100;  // same set (4 sets x 64B → set 0)
  const std::uint64_t d = 0x200;  // same set again
  c.access(a, false);
  c.access(b, false);
  c.access(a, false);      // a more recent than b
  c.access(d, false);      // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, ContainsDoesNotMutate) {
  Cache c(small_cfg());
  c.access(0, false);
  const std::uint64_t hits = c.hits();
  const std::uint64_t misses = c.misses();
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_EQ(c.hits(), hits);
  EXPECT_EQ(c.misses(), misses);
}

TEST(Cache, DirtyEvictionTracking) {
  Cache c(small_cfg());
  c.access(0x000, true);   // dirty line in set 0
  c.access(0x100, false);  // clean line, same set
  c.access(0x200, false);  // evicts the dirty LRU line
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(Cache, WriteMarksExistingLineDirty) {
  Cache c(small_cfg());
  c.access(0x000, false);  // clean install
  c.access(0x000, true);   // dirty it
  c.access(0x100, false);
  c.access(0x200, false);  // evict 0x000
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(Cache, DifferentSetsDoNotConflict) {
  Cache c(small_cfg());
  // 4 sets: fill one line in each; no evictions possible.
  for (std::uint64_t s = 0; s < 4; ++s) c.access(s * 64, false);
  for (std::uint64_t s = 0; s < 4; ++s) EXPECT_TRUE(c.contains(s * 64));
  EXPECT_EQ(c.evictions(), 0u);
}

TEST(Cache, ClearEmptiesEverything) {
  Cache c(small_cfg());
  c.access(0, false);
  c.clear();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{"bad", 512, 63, 2}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"bad", 512, 64, 0}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"bad", 768, 64, 2}), std::invalid_argument);
}

TEST(Cache, FullAssociativityWorks) {
  // One set, 8 ways.
  Cache c(CacheConfig{"fa", 512, 64, 8});
  for (std::uint64_t i = 0; i < 8; ++i) c.access(i * 64, false);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(c.contains(i * 64));
  c.access(8 * 64, false);
  EXPECT_FALSE(c.contains(0)) << "LRU way evicted";
}

TEST(Cache, CopyIsIndependentState) {
  Cache a(small_cfg());
  a.access(0, false);
  Cache b = a;
  b.access(0x40, false);
  EXPECT_TRUE(b.contains(0x40));
  EXPECT_FALSE(a.contains(0x40));
}

class CacheSweepTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheSweepTest, WorkingSetLargerThanCacheThrashes) {
  const std::uint32_t ways = GetParam();
  Cache c(CacheConfig{"sweep", 4096, 64, ways});
  // Cyclic sweep over 2x the capacity: with true LRU every access misses.
  const std::uint64_t lines = 2 * 4096 / 64;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  }
  EXPECT_DOUBLE_EQ(c.miss_rate(), 1.0);
}

TEST_P(CacheSweepTest, WorkingSetWithinCacheEventuallyAllHits) {
  const std::uint32_t ways = GetParam();
  Cache c(CacheConfig{"sweep", 4096, 64, ways});
  const std::uint64_t lines = 4096 / 64;
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  const std::uint64_t misses_after_fill = c.misses();
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < lines; ++i) c.access(i * 64, false);
  }
  EXPECT_EQ(c.misses(), misses_after_fill) << "resident set must not miss";
}

INSTANTIATE_TEST_SUITE_P(Associativities, CacheSweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace smt::mem
