// Unit tests: multi-interval sampling driver (sim/sampling.hpp).
#include <gtest/gtest.h>

#include "sim/sampling.hpp"
#include "workload/mix.hpp"

namespace smt::sim {
namespace {

SamplingPlan tiny_plan(std::uint32_t intervals = 2) {
  SamplingPlan p;
  p.intervals = intervals;
  p.warmup_cycles = 2048;
  p.measure_cycles = 8192;
  return p;
}

TEST(Sampling, AggregatesAcrossIntervals) {
  const SampleResult r =
      run_sampled(make_config(workload::mix("bal2"), 8, 1), tiny_plan(3));
  EXPECT_EQ(r.cycles, 3u * 8192u);
  EXPECT_EQ(r.interval_ipc.count(), 3u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.ipc(), 0.0);
}

TEST(Sampling, IsDeterministic) {
  const SimConfig cfg = make_config(workload::mix("var1"), 8, 5);
  const SampleResult a = run_sampled(cfg, tiny_plan());
  const SampleResult b = run_sampled(cfg, tiny_plan());
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_DOUBLE_EQ(a.ipc(), b.ipc());
}

TEST(Sampling, IntervalsAreDecorrelated) {
  // With more than one interval, per-interval IPCs should not all be
  // byte-identical (they sample different workload stretches).
  const SampleResult r =
      run_sampled(make_config(workload::mix("bal1"), 8, 1), tiny_plan(4));
  EXPECT_GT(r.interval_ipc.stddev(), 0.0);
}

TEST(Sampling, WarmupIsExcludedFromMeasurement) {
  SamplingPlan with_warm = tiny_plan(1);
  with_warm.warmup_cycles = 8192;
  SamplingPlan no_warm = tiny_plan(1);
  no_warm.warmup_cycles = 0;
  const SimConfig cfg = make_config(workload::mix("mem8"), 8, 2);
  const SampleResult warm = run_sampled(cfg, with_warm);
  const SampleResult cold = run_sampled(cfg, no_warm);
  // Warmed caches: measured IPC must be at least the cold-start IPC.
  EXPECT_GE(warm.ipc(), cold.ipc() * 0.95);
  EXPECT_EQ(warm.cycles, cold.cycles);
}

TEST(Sampling, AdtsCountersAggregated) {
  SimConfig cfg = make_config(workload::mix("mem8"), 8, 1);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  cfg.adts.ipc_threshold = 100.0;
  cfg.adts.heuristic = core::HeuristicType::kType2;
  cfg.adts.instant_switch = true;
  const SampleResult r = run_sampled(cfg, tiny_plan(2));
  EXPECT_GT(r.quanta, 0u);
  EXPECT_EQ(r.low_throughput_quanta, r.quanta);
  EXPECT_GT(r.switches, 0u);
  EXPECT_LE(r.benign_switches + r.malignant_switches, r.switches);
}

TEST(Sampling, BenignFractionWithinUnitInterval) {
  SimConfig cfg = make_config(workload::mix("int8"), 8, 1);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  cfg.adts.ipc_threshold = 3.0;
  cfg.adts.instant_switch = true;
  const SampleResult r = run_sampled(cfg, tiny_plan(2));
  EXPECT_GE(r.benign_fraction(), 0.0);
  EXPECT_LE(r.benign_fraction(), 1.0);
}

TEST(Sampling, SwitchesPerMcycleScalesCorrectly) {
  SampleResult r;
  r.cycles = 1'000'000;
  r.switches = 7;
  EXPECT_DOUBLE_EQ(r.switches_per_mcycle(), 7.0);
  SampleResult zero;
  EXPECT_DOUBLE_EQ(zero.switches_per_mcycle(), 0.0);
}

}  // namespace
}  // namespace smt::sim
