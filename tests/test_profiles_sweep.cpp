// Property sweep over all 26 built-in application profiles: every profile
// must synthesize a sane, deterministic stream and run cleanly through
// the pipeline both alone and next to a disruptive neighbour.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"
#include "workload/thread_program.hpp"

namespace smt::workload {
namespace {

class ProfileSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileSweep, StreamStaysInsideItsSegments) {
  const AppProfile& p = profile(GetParam());
  ThreadProgram t(p, 2, 99);
  for (int i = 0; i < 30000; ++i) {
    const isa::Instruction in = t.next();
    ASSERT_GE(in.pc, t.code_base());
    ASSERT_LT(in.pc, t.code_base() + p.code_bytes);
    if (isa::is_mem(in.cls)) {
      ASSERT_NE(in.mem_addr, 0u);
    }
    if (in.cls == isa::InstrClass::kBranch && in.taken) {
      ASSERT_GE(in.branch_target, t.code_base());
      ASSERT_LT(in.branch_target, t.code_base() + p.code_bytes);
    }
  }
}

TEST_P(ProfileSweep, StreamIsDeterministic) {
  ThreadProgram a(profile(GetParam()), 0, 5);
  ThreadProgram b(profile(GetParam()), 0, 5);
  for (int i = 0; i < 5000; ++i) {
    const isa::Instruction x = a.next();
    const isa::Instruction y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    ASSERT_EQ(x.mem_addr, y.mem_addr);
  }
}

TEST_P(ProfileSweep, BranchFractionTracksProfile) {
  const AppProfile& p = profile(GetParam());
  ThreadProgram t(p, 1, 7);
  int branches = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (t.next().cls == isa::InstrClass::kBranch) ++branches;
  }
  const double expected = p.mix.branch / p.mix.total();
  const double got = static_cast<double>(branches) / n;
  // The *dynamic* branch frequency legitimately exceeds the static
  // weight when taken branches revisit branch-dense loop regions (as in
  // real code), and phases perturb it further — so assert a sanity band
  // around the static expectation rather than closeness.
  EXPECT_GT(got, 0.5 * expected) << p.name;
  EXPECT_LT(got, 3.0 * expected) << p.name;
  EXPECT_LT(got, 0.5) << p.name << ": branches must not dominate";
}

TEST_P(ProfileSweep, RunsCleanlyThroughThePipeline) {
  std::vector<ThreadProgram> ps;
  ps.emplace_back(profile(GetParam()), 0, 11);
  ps.emplace_back(profile("art"), 1, 11);  // disruptive neighbour
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));
  pipe.run(12000);
  EXPECT_TRUE(pipe.check_counter_invariants()) << GetParam();
  EXPECT_GT(pipe.counters(0).committed_total, 100u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileSweep,
                         ::testing::ValuesIn(all_profile_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace smt::workload
