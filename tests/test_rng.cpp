// Unit tests: deterministic RNG (common/rng.hpp).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace smt {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, CopyPreservesStreamPosition) {
  Rng a(7);
  a.next();
  a.next();
  Rng b = a;
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a, b);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowZeroIsZero) {
  Rng r(5);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BelowOneIsZero) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(314);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceZeroNeverOneAlways) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng r(55);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(4.0));
  EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, GeometricMinimumIsOne) {
  Rng r(55);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.geometric(1.0), 1u);
    EXPECT_EQ(r.geometric(0.5), 1u);  // mean <= 1 degenerates to 1
  }
}

TEST(Rng, ZipfStaysBelowN) {
  Rng r(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.zipf(32, 1.0), 32u);
  }
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
  EXPECT_EQ(r.zipf(0, 1.0), 0u);
}

TEST(Rng, ZipfIsSkewedTowardZero) {
  Rng r(8);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (r.zipf(100, 1.0) < 25) ++low;
  }
  // First quarter of the range must receive well over a quarter of picks.
  EXPECT_GT(static_cast<double>(low) / n, 0.35);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(1);
  Rng a = parent.fork(1);
  Rng b = parent.fork(1);  // same salt, later fork point
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, MakeStreamPathSensitivity) {
  // Different path components must give different streams, and argument
  // order must matter.
  Rng a = make_stream(9, {1, 2});
  Rng b = make_stream(9, {2, 1});
  Rng c = make_stream(9, {1, 2});
  EXPECT_NE(a.next(), b.next());
  Rng a2 = make_stream(9, {1, 2});
  EXPECT_EQ(a2.next(), c.next());
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng r(3);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace smt
