// Unit tests: the ADTS graceful-degradation guard (core/guard.hpp).
//
// The unit tests drive DegradationGuard::on_quantum with hand-crafted
// observations; the regression tests at the bottom run full simulations
// and enforce the guard's central contract — on a fault-free run it
// observes but never acts, so guarded and unguarded ADTS are
// bit-identical.
#include <gtest/gtest.h>

#include "core/guard.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::core {
namespace {

GuardConfig quick_cfg() {
  GuardConfig cfg;
  cfg.enabled = true;
  cfg.revert_margin = 0.10;
  cfg.dwell_quanta = 3;
  cfg.safe_mode_failures = 3;
  cfg.safe_mode_quanta = 4;
  cfg.cooldown_quanta = 3;
  cfg.suspicion_quanta = 8;
  return cfg;
}

/// A quantum where nothing is wrong: counters reconcile, no switch.
GuardObservation clean() {
  GuardObservation obs;
  obs.ipc_last = 2.0;
  obs.committed_truth = 2048;
  obs.committed_counters = 2048;
  return obs;
}

/// A quantum whose per-thread counters disagree with the global
/// retirement counter — impossible fault-free.
GuardObservation anomaly() {
  GuardObservation obs = clean();
  obs.committed_counters = 1500;
  return obs;
}

/// A scored switch that halved throughput (damage 0.5 ≫ margin).
GuardObservation malignant_switch(GuardObservation base) {
  base.switch_scored = true;
  base.switch_benign = false;
  base.ipc_before_switch = 2.0;
  base.ipc_last = 1.0;
  base.switch_incumbent = policy::FetchPolicy::kBrcount;
  return base;
}

/// Drive the guard into SAFE_MODE: repeated anomalous malignant switches.
void trip_safe_mode(DegradationGuard& g) {
  for (std::uint32_t i = 0; i < g.config().safe_mode_failures; ++i) {
    g.note_switch_applied();
    (void)g.on_quantum(malignant_switch(anomaly()));
  }
  ASSERT_EQ(g.state(), GuardState::kSafeMode);
}

TEST(Guard, DisabledGuardNeverActs) {
  DegradationGuard g;  // default config: enabled = false
  const GuardVerdict v = g.on_quantum(malignant_switch(anomaly()));
  EXPECT_FALSE(v.revert);
  EXPECT_FALSE(v.pin_safe_policy);
  EXPECT_TRUE(v.allow_switching);
  EXPECT_EQ(g.stats().quanta, 0u);
}

TEST(Guard, CleanQuantaLeaveTheGuardQuiet) {
  DegradationGuard g(quick_cfg());
  for (int i = 0; i < 20; ++i) {
    const GuardVerdict v = g.on_quantum(clean());
    EXPECT_FALSE(v.revert);
    EXPECT_FALSE(v.pin_safe_policy);
    EXPECT_TRUE(v.allow_switching);
  }
  EXPECT_EQ(g.stats().anomalies, 0u);
  EXPECT_EQ(g.state(), GuardState::kArmed);
  EXPECT_FALSE(g.suspicious());
}

TEST(Guard, CommittedMismatchRaisesSuspicion) {
  DegradationGuard g(quick_cfg());
  (void)g.on_quantum(anomaly());
  EXPECT_TRUE(g.suspicious());
  EXPECT_EQ(g.stats().anomalies, 1u);
}

TEST(Guard, ImplausibleCountersRaiseSuspicion) {
  DegradationGuard g(quick_cfg());
  GuardObservation obs = clean();
  obs.counters_implausible = true;
  (void)g.on_quantum(obs);
  EXPECT_TRUE(g.suspicious());
  EXPECT_EQ(g.stats().anomalies, 1u);
}

TEST(Guard, SuspicionExpires) {
  DegradationGuard g(quick_cfg());
  (void)g.on_quantum(anomaly());
  for (std::uint32_t i = 0; i < quick_cfg().suspicion_quanta; ++i) {
    (void)g.on_quantum(clean());
  }
  EXPECT_FALSE(g.suspicious());
}

TEST(Guard, OrganicMalignantSwitchIsNotReverted) {
  // Malignant switches happen in healthy runs (paper Fig. 7c/d); with no
  // integrity anomaly the watchdog must not intervene.
  DegradationGuard g(quick_cfg());
  g.note_switch_applied();
  const GuardVerdict v = g.on_quantum(malignant_switch(clean()));
  EXPECT_FALSE(v.revert);
  EXPECT_EQ(g.stats().reverts, 0u);
  EXPECT_EQ(g.state(), GuardState::kArmed);
}

TEST(Guard, WatchdogRevertsMalignantSwitchUnderSuspicion) {
  DegradationGuard g(quick_cfg());
  (void)g.on_quantum(anomaly());
  g.note_switch_applied();
  const GuardVerdict v = g.on_quantum(malignant_switch(anomaly()));
  EXPECT_TRUE(v.revert);
  EXPECT_EQ(v.revert_to, policy::FetchPolicy::kBrcount);
  EXPECT_FALSE(v.allow_switching);  // no re-switch in the revert quantum
  EXPECT_EQ(g.state(), GuardState::kReverting);
  EXPECT_EQ(g.stats().reverts, 1u);
}

TEST(Guard, DamageBelowMarginIsTolerated) {
  DegradationGuard g(quick_cfg());
  (void)g.on_quantum(anomaly());
  GuardObservation obs = malignant_switch(anomaly());
  obs.ipc_before_switch = 2.0;
  obs.ipc_last = 1.9;  // 5% damage < 10% margin
  g.note_switch_applied();
  const GuardVerdict v = g.on_quantum(obs);
  EXPECT_FALSE(v.revert);
  EXPECT_EQ(g.stats().reverts, 0u);
}

TEST(Guard, StaleSwitchIsRevertedEvenWithoutPriorSuspicion) {
  // A switch applied a quantum after it was decided is itself proof of
  // interference (fault-free, stale decisions drop at the boundary).
  DegradationGuard g(quick_cfg());
  GuardObservation obs = malignant_switch(clean());
  obs.switch_stale = true;
  obs.ipc_last = 1.99;  // negligible damage: staleness alone justifies it
  obs.ipc_before_switch = 2.0;
  g.note_switch_applied();
  const GuardVerdict v = g.on_quantum(obs);
  EXPECT_TRUE(v.revert);
  EXPECT_EQ(g.stats().stale_switches, 1u);
}

TEST(Guard, BenignSwitchResetsTheFailureStreak) {
  DegradationGuard g(quick_cfg());
  for (int i = 0; i < 2; ++i) {
    g.note_switch_applied();
    (void)g.on_quantum(malignant_switch(anomaly()));
  }
  EXPECT_EQ(g.consecutive_failures(), 2u);

  GuardObservation good = anomaly();
  good.switch_scored = true;
  good.switch_benign = true;
  g.note_switch_applied();
  (void)g.on_quantum(good);
  EXPECT_EQ(g.consecutive_failures(), 0u);
  EXPECT_EQ(g.state(), GuardState::kArmed);

  // One more failure is now 1 of 3, not 3 of 3: no safe mode.
  g.note_switch_applied();
  (void)g.on_quantum(malignant_switch(anomaly()));
  EXPECT_EQ(g.state(), GuardState::kReverting);
}

TEST(Guard, SafeModeTripsAfterConsecutiveFailures) {
  DegradationGuard g(quick_cfg());
  GuardVerdict v;
  for (std::uint32_t i = 0; i < quick_cfg().safe_mode_failures; ++i) {
    g.note_switch_applied();
    v = g.on_quantum(malignant_switch(anomaly()));
  }
  EXPECT_EQ(g.state(), GuardState::kSafeMode);
  EXPECT_TRUE(v.pin_safe_policy);
  EXPECT_FALSE(v.revert);  // the pin supersedes the revert
  EXPECT_FALSE(v.allow_switching);
  EXPECT_EQ(g.stats().safe_mode_entries, 1u);
}

TEST(Guard, SafeModeExpiresIntoCooldownThenRearms) {
  GuardConfig cfg = quick_cfg();
  DegradationGuard g(cfg);
  trip_safe_mode(g);

  // Pinned for the remainder of the safe-mode window.
  GuardVerdict v;
  for (std::uint32_t i = 0; i < cfg.safe_mode_quanta; ++i) {
    EXPECT_EQ(g.state(), GuardState::kSafeMode);
    v = g.on_quantum(clean());
    EXPECT_TRUE(v.pin_safe_policy);
  }
  EXPECT_EQ(g.state(), GuardState::kCooldown);

  // Clean cool-down quanta release the pin, then re-arm.
  for (std::uint32_t i = 0; i < cfg.cooldown_quanta; ++i) {
    EXPECT_EQ(g.state(), GuardState::kCooldown);
    v = g.on_quantum(clean());
    EXPECT_FALSE(v.pin_safe_policy);
  }
  EXPECT_EQ(g.state(), GuardState::kArmed);
}

TEST(Guard, CooldownIsOneStrike) {
  DegradationGuard g(quick_cfg());
  trip_safe_mode(g);
  for (std::uint32_t i = 0; i < quick_cfg().safe_mode_quanta; ++i) {
    (void)g.on_quantum(clean());
  }
  ASSERT_EQ(g.state(), GuardState::kCooldown);

  // A single lost Policy_Switch write sends it straight back.
  GuardObservation obs = clean();
  obs.switch_write_lost = true;
  const GuardVerdict v = g.on_quantum(obs);
  EXPECT_EQ(g.state(), GuardState::kSafeMode);
  EXPECT_TRUE(v.pin_safe_policy);
  EXPECT_EQ(g.stats().safe_mode_entries, 2u);
}

TEST(Guard, HysteresisHoldsSwitchesWhileSuspicious) {
  GuardConfig cfg = quick_cfg();
  DegradationGuard g(cfg);
  (void)g.on_quantum(anomaly());
  g.note_switch_applied();

  // Within the dwell window: vetoed.
  for (std::uint32_t i = 0; i + 1 < cfg.dwell_quanta; ++i) {
    const GuardVerdict v = g.on_quantum(anomaly());
    EXPECT_FALSE(v.allow_switching) << "quantum " << i;
  }
  // Dwell satisfied: allowed again (still suspicious).
  const GuardVerdict v = g.on_quantum(anomaly());
  EXPECT_TRUE(v.allow_switching);
}

TEST(Guard, NoHysteresisWithoutSuspicion) {
  DegradationGuard g(quick_cfg());
  g.note_switch_applied();
  const GuardVerdict v = g.on_quantum(clean());
  EXPECT_TRUE(v.allow_switching);
}

TEST(Guard, DtStarvationRaisesSuspicionAndCountsAsFailure) {
  DegradationGuard g(quick_cfg());
  GuardObservation obs = clean();
  obs.dt_starved = true;
  (void)g.on_quantum(obs);
  EXPECT_TRUE(g.suspicious());
  EXPECT_EQ(g.stats().dt_starvations, 1u);
  EXPECT_EQ(g.consecutive_failures(), 1u);
}

TEST(Guard, PersistentStarvationTripsSafeMode) {
  // A DT that keeps losing its scheduling slot cannot supervise the
  // heuristic; the guard parks the machine on the safe static policy.
  DegradationGuard g(quick_cfg());
  GuardObservation obs = clean();
  obs.dt_starved = true;
  GuardVerdict v;
  for (std::uint32_t i = 0; i < quick_cfg().safe_mode_failures; ++i) {
    v = g.on_quantum(obs);
  }
  EXPECT_EQ(g.state(), GuardState::kSafeMode);
  EXPECT_TRUE(v.pin_safe_policy);
}

// --- full-simulation regression --------------------------------------------

sim::SimConfig adts_cfg(const workload::Mix& mix) {
  sim::SimConfig cfg = sim::make_config(mix, 8, 2003);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  cfg.adts.ipc_threshold = 2.0;
  return cfg;
}

TEST(GuardRegression, FaultFreeGuardedRunIsBitIdenticalOnEveryMix) {
  for (const auto& mix : workload::all_mixes()) {
    sim::SimConfig plain = adts_cfg(mix);
    sim::SimConfig guarded = plain;
    guarded.adts.guard.enabled = true;

    sim::Simulator a(plain);
    sim::Simulator b(guarded);
    a.run(16 * 1024);
    b.run(16 * 1024);

    EXPECT_EQ(a.committed(), b.committed()) << mix.name;
    EXPECT_EQ(a.pipeline().policy(), b.pipeline().policy()) << mix.name;
    EXPECT_EQ(a.detector().stats().switches, b.detector().stats().switches)
        << mix.name;
    EXPECT_EQ(a.detector().stats().benign_switches,
              b.detector().stats().benign_switches)
        << mix.name;

    // The guard watched every quantum but never found cause to act.
    const GuardStats& gs = b.detector().guard().stats();
    EXPECT_EQ(gs.quanta, b.detector().stats().quanta) << mix.name;
    EXPECT_EQ(gs.anomalies, 0u) << mix.name;
    EXPECT_EQ(gs.reverts, 0u) << mix.name;
    EXPECT_EQ(gs.vetoed_switches, 0u) << mix.name;
    EXPECT_EQ(gs.safe_mode_entries, 0u) << mix.name;
  }
}

TEST(GuardRegression, GuardDetectsInjectedCounterCorruption) {
  sim::SimConfig cfg = adts_cfg(workload::mix("mem8"));
  cfg.adts.guard.enabled = true;
  cfg.fault.enabled = true;
  cfg.fault.counter_corrupt_prob = 0.5;
  sim::Simulator sim(cfg);
  sim.run(16 * 1024);
  EXPECT_GT(sim.detector().guard().stats().anomalies, 0u);
}

TEST(GuardRegression, LostSwitchWritesAreSeenByTheGuard) {
  sim::SimConfig cfg = adts_cfg(workload::mix("mem8"));
  cfg.adts.ipc_threshold = 100.0;  // force a decision every quantum
  cfg.adts.guard.enabled = true;
  cfg.fault.enabled = true;
  cfg.fault.switch_drop_prob = 1.0;
  sim::Simulator sim(cfg);
  sim.run(32 * 1024);
  EXPECT_GT(sim.detector().stats().switches_dropped_fault, 0u);
  EXPECT_GT(sim.detector().guard().stats().lost_switch_writes, 0u);
  EXPECT_EQ(sim.detector().stats().switches, 0u);  // every write lost
}

TEST(GuardRegression, StaleInFlightDecisionsAreDroppedOnResume) {
  sim::SimConfig cfg = adts_cfg(workload::mix("mem8"));
  cfg.adts.ipc_threshold = 100.0;  // force a decision every quantum
  cfg.adts.guard.enabled = true;
  // Keep the guard out of SAFE_MODE (whose pin also clears pending
  // decisions) so the resume-time cancel path is what gets exercised.
  cfg.adts.guard.safe_mode_failures = 1000;
  cfg.fault.enabled = true;
  cfg.fault.dt_stall_prob = 0.5;
  cfg.fault.dt_stall_quanta = 2;
  // Delay holds decisions in flight long enough to meet a stall window.
  cfg.fault.switch_delay_prob = 0.8;
  cfg.fault.switch_delay_quanta = 2;
  sim::Simulator sim(cfg);
  sim.run(64 * 1024);
  const GuardStats& gs = sim.detector().guard().stats();
  EXPECT_GT(gs.dt_starvations, 0u);
  EXPECT_GT(gs.stale_decisions_dropped, 0u);
}

}  // namespace
}  // namespace smt::core
