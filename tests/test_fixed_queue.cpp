// Unit tests: FixedQueue (common/fixed_queue.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fixed_queue.hpp"

namespace smt {
namespace {

TEST(FixedQueue, StartsEmpty) {
  FixedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
}

TEST(FixedQueue, PushPopFifoOrder) {
  FixedQueue<int> q(4);
  q.push_back(1);
  q.push_back(2);
  q.push_back(3);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.pop_front(), 2);
  EXPECT_EQ(q.pop_front(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, WrapsAroundCapacity) {
  FixedQueue<int> q(3);
  for (int round = 0; round < 10; ++round) {
    q.push_back(round * 10);
    q.push_back(round * 10 + 1);
    EXPECT_EQ(q.pop_front(), round * 10);
    EXPECT_EQ(q.pop_front(), round * 10 + 1);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, FullAtCapacity) {
  FixedQueue<int> q(2);
  q.push_back(1);
  EXPECT_FALSE(q.full());
  q.push_back(2);
  EXPECT_TRUE(q.full());
}

TEST(FixedQueue, PopBackRemovesNewest) {
  FixedQueue<int> q(4);
  q.push_back(1);
  q.push_back(2);
  q.push_back(3);
  q.pop_back();
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.back(), 2);
  EXPECT_EQ(q.front(), 1);
}

TEST(FixedQueue, IndexingIsHeadRelative) {
  FixedQueue<int> q(4);
  q.push_back(10);
  q.push_back(11);
  q.push_back(12);
  q.pop_front();
  q.push_back(13);  // storage wrapped
  EXPECT_EQ(q[0], 11);
  EXPECT_EQ(q[1], 12);
  EXPECT_EQ(q[2], 13);
}

TEST(FixedQueue, FrontAndBackAccessors) {
  FixedQueue<std::string> q(3);
  q.push_back("a");
  q.push_back("b");
  EXPECT_EQ(q.front(), "a");
  EXPECT_EQ(q.back(), "b");
  // A std::string temporary (move assignment) rather than a const char*:
  // the in-place char copy of operator=(const char*) trips GCC 12's
  // spurious -Wrestrict at -O3 (GCC bug 105329) under -Werror.
  q.front() = std::string("x");
  EXPECT_EQ(q.pop_front(), "x");
}

TEST(FixedQueue, ClearResets) {
  FixedQueue<int> q(3);
  q.push_back(1);
  q.push_back(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(9);
  EXPECT_EQ(q.front(), 9);
}

TEST(FixedQueue, CopyIsIndependent) {
  FixedQueue<int> a(4);
  a.push_back(1);
  a.push_back(2);
  FixedQueue<int> b = a;
  b.pop_front();
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.front(), 1);
  EXPECT_EQ(b.front(), 2);
}

TEST(FixedQueue, ZeroCapacityClampsToOne) {
  FixedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  q.push_back(5);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.pop_front(), 5);
}

TEST(FixedQueue, MoveOnlyFriendlyValueSemantics) {
  FixedQueue<std::unique_ptr<int>> q(2);
  q.push_back(std::make_unique<int>(42));
  auto p = q.pop_front();
  EXPECT_EQ(*p, 42);
}

}  // namespace
}  // namespace smt
