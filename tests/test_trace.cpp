// Unit and integration tests: the observability layer (src/obs/) and its
// simulator instrumentation — TraceSink ring semantics, backend
// serialization, trace determinism, the zero-perturbation contract, and
// the MetricsRegistry --stats-json round trip.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::obs {
namespace {

TraceEvent event_at(std::uint64_t cycle) {
  TraceEvent e;
  e.kind = EventKind::kQuantum;
  e.cycle = cycle;
  return e;
}

TEST(TraceSink, KeepsEventsInOrderBelowCapacity) {
  TraceSink sink(8);
  for (std::uint64_t i = 0; i < 5; ++i) sink.record(event_at(i));
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto evs = sink.snapshot();
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(evs[i].cycle, i);
}

TEST(TraceSink, RingDropsOldestAndCountsDrops) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i) sink.record(event_at(i));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto evs = sink.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // The newest four survive, oldest-first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(evs[i].cycle, 6 + i);
}

TEST(TraceSink, ClearResetsRingAndDropCounter) {
  TraceSink sink(2);
  for (std::uint64_t i = 0; i < 5; ++i) sink.record(event_at(i));
  sink.clear();
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(sink.dropped(), 0u);
  sink.record(event_at(42));
  EXPECT_EQ(sink.snapshot().at(0).cycle, 42u);
}

TEST(TraceFormatParse, AcceptsTheThreeBackends) {
  EXPECT_EQ(parse_trace_format("csv"), TraceFormat::kCsv);
  EXPECT_EQ(parse_trace_format("jsonl"), TraceFormat::kJsonl);
  EXPECT_EQ(parse_trace_format("chrome"), TraceFormat::kChrome);
  EXPECT_FALSE(parse_trace_format("xml").has_value());
  EXPECT_FALSE(parse_trace_format("").has_value());
}

// ---------------------------------------------------------------------------
// A minimal JSON reader, just rich enough to round-trip what the writers
// emit (objects, strings, numbers, bools, null). Flattens nested objects
// back into the dotted names the registry was populated with.
// ---------------------------------------------------------------------------
struct MiniJson {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  char peek() {
    skip_ws();
    EXPECT_LT(i, s.size()) << "unexpected end of JSON";
    return s[i];
  }
  void expect(char c) {
    ASSERT_EQ(peek(), c) << "at offset " << i;
    ++i;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      out += s[i++];
    }
    expect('"');
    return out;
  }
  std::string parse_scalar() {  // number / bool / null, as raw text
    skip_ws();
    std::string out;
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != '\n' &&
           !std::isspace(static_cast<unsigned char>(s[i]))) {
      out += s[i++];
    }
    return out;
  }
  void parse_object(const std::string& prefix,
                    std::map<std::string, std::string>& out) {
    expect('{');
    if (peek() == '}') {
      ++i;
      return;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      const std::string full = prefix.empty() ? key : prefix + "." + key;
      if (peek() == '{') {
        parse_object(full, out);
      } else if (peek() == '"') {
        out[full] = parse_string();
      } else {
        out[full] = parse_scalar();
      }
      if (peek() == ',') {
        ++i;
        continue;
      }
      expect('}');
      return;
    }
  }
};

std::map<std::string, std::string> flatten_json(const std::string& text) {
  std::map<std::string, std::string> out;
  MiniJson p{text};
  p.parse_object("", out);
  return out;
}

TEST(MetricsRegistry, WritesNestedJsonFromDottedNames) {
  MetricsRegistry reg;
  reg.set("adts.switches", std::uint64_t{7});
  reg.set("adts.benign_fraction", 0.5);
  reg.set("machine.ipc", 3.25);
  reg.set("config.mode", "adts");
  reg.set("guard.enabled", true);
  std::ostringstream os;
  reg.write_json(os);

  const auto flat = flatten_json(os.str());
  EXPECT_EQ(flat.at("adts.switches"), "7");
  EXPECT_EQ(flat.at("adts.benign_fraction"), "0.5");
  EXPECT_EQ(flat.at("machine.ipc"), "3.25");
  EXPECT_EQ(flat.at("config.mode"), "adts");
  EXPECT_EQ(flat.at("guard.enabled"), "true");
}

TEST(MetricsRegistry, NonFiniteDoublesSerializeAsNull) {
  MetricsRegistry reg;
  reg.set("stat.min", std::nan(""));
  reg.set("stat.max", 2.0);
  std::ostringstream os;
  reg.write_json(os);
  const auto flat = flatten_json(os.str());
  EXPECT_EQ(flat.at("stat.min"), "null");
  EXPECT_EQ(flat.at("stat.max"), "2");
}

TEST(MetricsRegistry, RepeatedSetKeepsLastValueAndFindSeesIt) {
  MetricsRegistry reg;
  reg.set("x", std::uint64_t{1});
  reg.set("x", std::uint64_t{2});
  EXPECT_EQ(reg.size(), 1u);
  const auto v = reg.find("x");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::uint64_t>(*v), 2u);
  EXPECT_FALSE(reg.find("absent").has_value());
}

// ---------------------------------------------------------------------------
// Simulator integration.
// ---------------------------------------------------------------------------

sim::SimConfig traced_config(const char* mix_name, bool adts) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.adts.quantum_cycles = 1024;
  cfg.use_adts = adts;
  return cfg;
}

TEST(SimulatorTrace, SameSeedAndConfigGiveByteIdenticalJsonl) {
  const sim::SimConfig cfg = traced_config("bal1", /*adts=*/true);
  sim::Simulator a(cfg);
  sim::Simulator b(cfg);
  TraceSink sa;
  TraceSink sb;
  a.attach_trace(&sa);
  b.attach_trace(&sb);
  a.run(8 * 1024);
  b.run(8 * 1024);
  std::ostringstream ja;
  std::ostringstream jb;
  sa.write(ja, TraceFormat::kJsonl, sim::trace_decoder());
  sb.write(jb, TraceFormat::kJsonl, sim::trace_decoder());
  ASSERT_GT(sa.size(), 0u);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(SimulatorTrace, AttachingASinkDoesNotPerturbTheRun) {
  const sim::SimConfig cfg = traced_config("mem8", /*adts=*/true);
  sim::Simulator traced(cfg);
  sim::Simulator silent(cfg);
  TraceSink sink;
  traced.attach_trace(&sink);
  traced.run(8 * 1024);
  silent.run(8 * 1024);
  EXPECT_EQ(traced.committed(), silent.committed());
  EXPECT_EQ(traced.pipeline().stats().fetched, silent.pipeline().stats().fetched);
  EXPECT_EQ(traced.pipeline().stats().squashed, silent.pipeline().stats().squashed);
  EXPECT_EQ(traced.detector().stats().switches, silent.detector().stats().switches);
  EXPECT_GT(sink.size(), 0u);
}

TEST(SimulatorTrace, QuantumSnapshotsCoverMachineAndEveryThread) {
  const sim::SimConfig cfg = traced_config("ilp8", /*adts=*/false);
  sim::Simulator s(cfg);
  TraceSink sink;
  s.attach_trace(&sink);
  s.run(4 * 1024);  // 4 quanta at 1024 cycles
  std::size_t machine_rows = 0;
  std::size_t thread_rows = 0;
  for (const TraceEvent& e : sink.snapshot()) {
    if (e.kind == EventKind::kQuantum) {
      ++machine_rows;
      EXPECT_EQ(e.tid, -1);
      EXPECT_EQ(e.span, 1024u);
    } else if (e.kind == EventKind::kThreadQuantum) {
      ++thread_rows;
      EXPECT_GE(e.tid, 0);
      EXPECT_LT(e.tid, 8);
    }
  }
  EXPECT_EQ(machine_rows, 4u);
  EXPECT_EQ(thread_rows, 4u * 8u);
}

TEST(SimulatorTrace, CopiedSimulatorDropsTheSink) {
  const sim::SimConfig cfg = traced_config("bal1", /*adts=*/true);
  sim::Simulator original(cfg);
  TraceSink sink;
  original.attach_trace(&sink);
  original.run(2 * 1024);
  const std::size_t recorded = sink.size();
  ASSERT_GT(recorded, 0u);

  // The oracle copies simulators and re-runs quanta; a copy sharing the
  // sink would double-record them.
  sim::Simulator copy(original);
  EXPECT_EQ(copy.trace_sink(), nullptr);
  copy.run(2 * 1024);
  EXPECT_EQ(sink.size(), recorded);
  EXPECT_NE(original.trace_sink(), nullptr);
}

TEST(SimulatorTrace, ChromeBackendEmitsAWellFormedDocument) {
  const sim::SimConfig cfg = traced_config("mem8", /*adts=*/true);
  sim::Simulator s(cfg);
  TraceSink sink;
  s.attach_trace(&sink);
  s.run(4 * 1024);
  std::ostringstream os;
  sink.write(os, TraceFormat::kChrome, sim::trace_decoder());
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  // Balanced braces/brackets ⇒ structurally sound JSON for this writer.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') ++depth;
    else if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SimulatorTrace, ExportMetricsRoundTripsThroughJson) {
  const sim::SimConfig cfg = traced_config("ctrl8", /*adts=*/true);
  sim::Simulator s(cfg);
  s.run(8 * 1024);
  MetricsRegistry reg;
  s.export_metrics(reg);
  std::ostringstream os;
  reg.write_json(os);
  const auto flat = flatten_json(os.str());

  // Every registered entry must survive the write → parse round trip
  // with its value intact.
  EXPECT_EQ(flat.at("config.mode"), "adts");
  EXPECT_EQ(flat.at("machine.cycles"),
            std::to_string(s.pipeline().stats().cycles));
  EXPECT_EQ(flat.at("machine.committed"), std::to_string(s.committed()));
  EXPECT_EQ(flat.at("adts.switches"),
            std::to_string(s.detector().stats().switches));
  EXPECT_EQ(flat.at("threads.0.committed"),
            std::to_string(s.pipeline().counters(0).committed_total));
  EXPECT_EQ(flat.at("threads.7.stalls.icache_miss"),
            std::to_string(s.pipeline().stall_breakdown(7)[
                StallCause::kIcacheMiss]));

  // Acceptance invariant: per-thread stall causes sum to the total lost
  // fetch slots (idle minus what the detector thread absorbed).
  std::uint64_t charged = std::stoull(flat.at("machine.charged_stall_slots"));
  std::uint64_t summed = 0;
  for (int tid = 0; tid < 8; ++tid) {
    summed += std::stoull(
        flat.at("threads." + std::to_string(tid) + ".stall_slots"));
  }
  for (std::size_t c = 0; c < kNumStallCauses; ++c) {
    summed += std::stoull(flat.at(
        "machine.stalls." +
        std::string(name(static_cast<StallCause>(c)))));
  }
  EXPECT_EQ(summed, charged);
  EXPECT_EQ(charged + std::stoull(flat.at("machine.dt_slots_used")),
            std::stoull(flat.at("machine.fetch_slots_idle")));
}

}  // namespace
}  // namespace smt::obs
