// Unit tests: per-thread instruction stream synthesiser
// (workload/thread_program.hpp).
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "workload/app_profile.hpp"
#include "workload/thread_program.hpp"

namespace smt::workload {
namespace {

ThreadProgram make(const char* app, std::uint32_t tid = 0,
                   std::uint64_t seed = 1) {
  return ThreadProgram(profile(app), tid, seed);
}

TEST(ThreadProgram, DeterministicStream) {
  ThreadProgram a = make("gcc");
  ThreadProgram b = make("gcc");
  for (int i = 0; i < 5000; ++i) {
    const isa::Instruction x = a.next();
    const isa::Instruction y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.taken, y.taken);
  }
}

TEST(ThreadProgram, DifferentThreadsDifferentStreams) {
  ThreadProgram a = make("gcc", 0);
  ThreadProgram b = make("gcc", 1);
  int same_pc = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next().pc == b.next().pc) ++same_pc;
  }
  EXPECT_EQ(same_pc, 0) << "threads must have disjoint code segments";
}

TEST(ThreadProgram, ClassMixApproximatesProfile) {
  const AppProfile& p = profile("gzip");
  ThreadProgram t = make("gzip");
  std::map<isa::InstrClass, int> hist;
  const int n = 60000;
  for (int i = 0; i < n; ++i) hist[t.next().cls]++;

  const double branch_frac =
      static_cast<double>(hist[isa::InstrClass::kBranch]) / n;
  const double load_frac =
      static_cast<double>(hist[isa::InstrClass::kLoad]) / n;
  // Phase perturbation moves these around; accept a generous band.
  EXPECT_NEAR(branch_frac, p.mix.branch / p.mix.total(), 0.06);
  EXPECT_NEAR(load_frac, p.mix.load / p.mix.total(), 0.10);
  EXPECT_EQ(hist[isa::InstrClass::kFpAdd], 0) << "gzip is an INT profile";
}

TEST(ThreadProgram, FpProfileEmitsFpInstructions) {
  ThreadProgram t = make("swim");
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (isa::is_fp(t.next().cls)) ++fp;
  }
  EXPECT_GT(fp, 500);
}

TEST(ThreadProgram, PcStaysInCodeSegment) {
  const AppProfile& p = profile("twolf");
  ThreadProgram t = make("twolf", 3);
  const std::uint64_t base = t.code_base();
  for (int i = 0; i < 20000; ++i) {
    const isa::Instruction in = t.next();
    EXPECT_GE(in.pc, base);
    EXPECT_LT(in.pc, base + p.code_bytes);
  }
}

TEST(ThreadProgram, BranchPcsAreStableWithinAPhase) {
  // The same PC must always be a branch (or never) while the branch
  // fraction is constant: predictors can only learn PC-stable site
  // placement. (Across kBranchy phase boundaries the *threshold* moves,
  // so near-threshold PCs may legitimately flip; pin a single-phase
  // profile to test the invariant.)
  AppProfile p = profile("parser");
  p.phases = {PhaseKind::kBase};
  ThreadProgram t(p, 0, 1);
  std::map<std::uint64_t, bool> pc_is_branch;
  for (int i = 0; i < 60000; ++i) {
    const isa::Instruction in = t.next();
    const bool br = in.cls == isa::InstrClass::kBranch;
    const auto it = pc_is_branch.find(in.pc);
    if (it != pc_is_branch.end()) {
      ASSERT_EQ(it->second, br) << "PC " << in.pc << " changed class";
    } else {
      pc_is_branch.emplace(in.pc, br);
    }
  }
}

TEST(ThreadProgram, TakenBranchRedirectsPc) {
  ThreadProgram t = make("vpr");
  isa::Instruction prev = t.next();
  for (int i = 0; i < 20000; ++i) {
    const isa::Instruction cur = t.next();
    if (prev.cls == isa::InstrClass::kBranch && prev.taken) {
      ASSERT_EQ(cur.pc, prev.branch_target);
    }
    prev = cur;
  }
}

TEST(ThreadProgram, MemInstructionsCarryAddresses) {
  ThreadProgram t = make("mcf");
  for (int i = 0; i < 5000; ++i) {
    const isa::Instruction in = t.next();
    if (isa::is_mem(in.cls)) {
      EXPECT_NE(in.mem_addr, 0u);
    }
  }
}

TEST(ThreadProgram, WrongPathDoesNotPerturbMainStream) {
  ThreadProgram a = make("bzip2");
  ThreadProgram b = make("bzip2");
  // Interleave wrong-path generation on a only.
  std::uint64_t wrong_pc = a.code_base();
  for (int i = 0; i < 2000; ++i) {
    (void)a.next_wrong(wrong_pc);
  }
  for (int i = 0; i < 5000; ++i) {
    const isa::Instruction x = a.next();
    const isa::Instruction y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(x.mem_addr, y.mem_addr);
    ASSERT_EQ(x.taken, y.taken);
  }
}

TEST(ThreadProgram, WrongPathAdvancesItsPc) {
  ThreadProgram t = make("gap");
  std::uint64_t wrong_pc = t.code_base() + 64;
  const std::uint64_t before = wrong_pc;
  (void)t.next_wrong(wrong_pc);
  EXPECT_NE(wrong_pc, before);
}

TEST(ThreadProgram, WrongPathNeverEmitsSyscall) {
  ThreadProgram t = make("gcc");
  std::uint64_t wrong_pc = t.code_base();
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(static_cast<int>(t.next_wrong(wrong_pc).cls),
              static_cast<int>(isa::InstrClass::kSyscall));
  }
}

TEST(ThreadProgram, PhaseRotationChangesBehaviour) {
  // A profile with a kMemory phase must show a higher memory-instruction
  // share inside that phase than in its base phase.
  ThreadProgram t = make("mcf");  // phases {kMemory, kBase}
  const AppProfile& p = profile("mcf");
  const std::uint64_t phase_len = p.phase_len_instrs;
  int mem_phase_mem = 0;
  int base_phase_mem = 0;
  int mem_n = 0;
  int base_n = 0;
  for (std::uint64_t i = 0; i < phase_len * 2; ++i) {
    const bool in_mem_phase = t.current_phase() == PhaseKind::kMemory;
    const isa::Instruction in = t.next();
    if (in_mem_phase) {
      ++mem_n;
      if (isa::is_mem(in.cls)) ++mem_phase_mem;
    } else {
      ++base_n;
      if (isa::is_mem(in.cls)) ++base_phase_mem;
    }
  }
  ASSERT_GT(mem_n, 0);
  ASSERT_GT(base_n, 0);
  EXPECT_GT(static_cast<double>(mem_phase_mem) / mem_n,
            static_cast<double>(base_phase_mem) / base_n);
}

TEST(ThreadProgram, GeneratedCountTracksCalls) {
  ThreadProgram t = make("apsi");
  EXPECT_EQ(t.generated(), 0u);
  for (int i = 0; i < 123; ++i) (void)t.next();
  EXPECT_EQ(t.generated(), 123u);
}

TEST(ThreadProgram, DependencyDistancesBounded) {
  ThreadProgram t = make("sixtrack");
  for (int i = 0; i < 10000; ++i) {
    const isa::Instruction in = t.next();
    EXPECT_LE(in.dep1, 48);
    EXPECT_LE(in.dep2, 48);
  }
}

TEST(ThreadProgram, CopyResumesIdentically) {
  ThreadProgram a = make("facerec");
  for (int i = 0; i < 500; ++i) (void)a.next();
  ThreadProgram b = a;
  for (int i = 0; i < 2000; ++i) {
    const isa::Instruction x = a.next();
    const isa::Instruction y = b.next();
    ASSERT_EQ(x.pc, y.pc);
    ASSERT_EQ(x.mem_addr, y.mem_addr);
  }
}

}  // namespace
}  // namespace smt::workload
