// Unit tests: application profile registry (workload/app_profile.hpp).
#include <gtest/gtest.h>

#include <set>

#include "workload/app_profile.hpp"

namespace smt::workload {
namespace {

TEST(AppProfile, RegistryHasTwentySixProfiles) {
  EXPECT_EQ(all_profile_names().size(), 26u);
}

TEST(AppProfile, AllNamesResolve) {
  for (const auto& name : all_profile_names()) {
    EXPECT_NO_THROW({
      const AppProfile& p = profile(name);
      EXPECT_EQ(p.name, name);
    });
  }
}

TEST(AppProfile, UnknownNameThrows) {
  EXPECT_THROW((void)profile("not-a-spec-app"), std::out_of_range);
}

TEST(AppProfile, IntAndFpSuitesSplit) {
  int int_apps = 0;
  int fp_apps = 0;
  for (const auto& name : all_profile_names()) {
    (profile(name).is_fp_app() ? fp_apps : int_apps)++;
  }
  EXPECT_EQ(int_apps, 12);  // SPEC CPU2000 INT
  EXPECT_EQ(fp_apps, 14);   // SPEC CPU2000 FP
}

TEST(AppProfile, MixWeightsArePositiveAndBounded) {
  for (const auto& name : all_profile_names()) {
    const AppProfile& p = profile(name);
    const double total = p.mix.total();
    EXPECT_GT(total, 0.5) << name;
    EXPECT_LT(total, 1.5) << name;
    EXPECT_GT(p.mix.branch, 0.0) << name;
    EXPECT_GT(p.mix.load, 0.0) << name;
    EXPECT_LT(p.mix.syscall, 0.001) << name;
  }
}

TEST(AppProfile, WeightAccessorMatchesFields) {
  InstrMix m;
  m.int_alu = 0.5;
  m.load = 0.3;
  EXPECT_DOUBLE_EQ(m.weight(isa::InstrClass::kIntAlu), 0.5);
  EXPECT_DOUBLE_EQ(m.weight(isa::InstrClass::kLoad), 0.3);
  EXPECT_DOUBLE_EQ(m.weight(isa::InstrClass::kFpDiv), 0.0);
}

TEST(AppProfile, FootprintsSpanTheAxis) {
  // The mixes are constructed on a memory-footprint axis; the registry
  // must span it by more than two orders of magnitude.
  std::uint64_t min_ws = ~0ull;
  std::uint64_t max_ws = 0;
  for (const auto& name : all_profile_names()) {
    min_ws = std::min(min_ws, profile(name).working_set_bytes);
    max_ws = std::max(max_ws, profile(name).working_set_bytes);
  }
  EXPECT_GE(max_ws / min_ws, 32u);
}

TEST(AppProfile, HotSetNeverExceedsWorkingSet) {
  for (const auto& name : all_profile_names()) {
    const AppProfile& p = profile(name);
    EXPECT_LE(p.hot_set_bytes, p.working_set_bytes) << name;
    EXPECT_GE(p.hot_fraction, 0.0) << name;
    EXPECT_LE(p.hot_fraction, 1.0) << name;
  }
}

TEST(AppProfile, EveryProfileHasPhases) {
  for (const auto& name : all_profile_names()) {
    const AppProfile& p = profile(name);
    EXPECT_FALSE(p.phases.empty()) << name;
    EXPECT_GT(p.phase_len_instrs, 0u) << name;
    EXPECT_GE(p.phase_swing, 0.0) << name;
    EXPECT_LE(p.phase_swing, 1.0) << name;
  }
}

TEST(AppProfile, DistanceIsMetricLike) {
  const AppProfile& gzip = profile("gzip");
  const AppProfile& mcf = profile("mcf");
  const AppProfile& swim = profile("swim");
  EXPECT_NEAR(profile_distance(gzip, gzip), 0.0, 1e-12);
  EXPECT_NEAR(profile_distance(gzip, mcf), profile_distance(mcf, gzip), 1e-12);
  EXPECT_GT(profile_distance(gzip, mcf), 0.05);
  EXPECT_GT(profile_distance(gzip, swim), 0.05);
}

TEST(AppProfile, SimilarAppsCloserThanDissimilar) {
  // gzip and bzip2 are both small-footprint INT compressors; gzip vs the
  // thrashing FP code art must be farther apart.
  const double close = profile_distance(profile("gzip"), profile("bzip2"));
  const double far = profile_distance(profile("gzip"), profile("art"));
  EXPECT_LT(close, far);
}

TEST(AppProfile, NamesAreUnique) {
  std::set<std::string> seen(all_profile_names().begin(),
                             all_profile_names().end());
  EXPECT_EQ(seen.size(), all_profile_names().size());
}

}  // namespace
}  // namespace smt::workload
