// StreamCache retention-pool tests: LRU eviction under a byte budget,
// checkpoint regeneration of evicted chunks, and the contract the whole
// design rests on — retention is purely a performance knob, so a run
// under a starved cache produces bit-identical results to an
// unconstrained one.
//
// StreamCache::local() is thread-local and reads SMT_STREAM_CACHE_MB once
// at construction, so every budget-sensitive scenario runs in a fresh
// std::thread spawned after setenv: the new thread's first local() call
// constructs a cache under the test's budget, without disturbing the
// caches of sibling test threads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"
#include "workload/stream_cache.hpp"

namespace smt::workload {
namespace {

/// Run `fn` on a fresh thread whose StreamCache is constructed under the
/// given SMT_STREAM_CACHE_MB value (nullptr = unset, i.e. the default).
template <typename Fn>
void with_cache_budget(const char* mb, Fn fn) {
  if (mb != nullptr) {
    ::setenv("SMT_STREAM_CACHE_MB", mb, 1);
  } else {
    ::unsetenv("SMT_STREAM_CACHE_MB");
  }
  std::thread t(fn);
  t.join();
  ::unsetenv("SMT_STREAM_CACHE_MB");
}

bool same_instruction(const isa::Instruction& a, const isa::Instruction& b) {
  return a.cls == b.cls && a.dep1 == b.dep1 && a.dep2 == b.dep2 &&
         a.pc == b.pc && a.mem_addr == b.mem_addr &&
         a.branch_target == b.branch_target && a.taken == b.taken;
}

TEST(RetentionPool, EvictsLeastRecentlyTouchedFirst) {
  // Direct pool test, no env needed: budget for exactly two chunks.
  RetentionPool pool(2 * sizeof(StreamChunk));
  auto c0 = std::make_shared<const StreamChunk>();
  auto c1 = std::make_shared<const StreamChunk>();
  auto c2 = std::make_shared<const StreamChunk>();
  std::weak_ptr<const StreamChunk> w0 = c0;
  std::weak_ptr<const StreamChunk> w1 = c1;
  std::weak_ptr<const StreamChunk> w2 = c2;

  pool.touch(c0);
  pool.touch(c1);
  EXPECT_EQ(pool.resident_bytes(), 2 * sizeof(StreamChunk));
  pool.touch(c0);  // c1 is now the least recently touched
  pool.touch(c2);  // over budget: one eviction
  EXPECT_EQ(pool.resident_bytes(), 2 * sizeof(StreamChunk));

  // Only the pool holds them now; expiry tells us who was evicted.
  c0.reset();
  c1.reset();
  c2.reset();
  EXPECT_FALSE(w0.expired());
  EXPECT_TRUE(w1.expired());
  EXPECT_FALSE(w2.expired());

  pool.clear();
  EXPECT_EQ(pool.resident_bytes(), 0u);
  EXPECT_TRUE(w0.expired());
  EXPECT_TRUE(w2.expired());
}

TEST(StreamCache, TinyBudgetEvictsAndRegeneratesIdentically) {
  with_cache_budget("1", [] {
    StreamCache& cache = StreamCache::local();
    cache.clear();
    const std::shared_ptr<StreamEntry> entry =
        cache.entry(profile("mcf"), /*thread_id=*/0, /*seed=*/2003);

    // Remember chunk 0's decoded content by value (holding the
    // shared_ptr itself would pin it against eviction).
    std::vector<isa::Instruction> first;
    {
      const std::shared_ptr<const StreamChunk> c0 = entry->chunk_for(0);
      first.assign(c0->instrs.begin(), c0->instrs.end());
      cache.pool().touch(c0);
    }
    const std::uint64_t generated_before = entry->chunks_generated();

    // March the frontier far past the 1 MiB budget (a chunk is ~160 KiB,
    // so ~6 fit): the pool must stay within budget and chunk 0 must fall
    // off the LRU end.
    constexpr std::uint64_t kChunks = 24;
    for (std::uint64_t i = 1; i < kChunks; ++i) {
      cache.pool().touch(entry->chunk_for(i * kStreamChunkInstrs));
    }
    EXPECT_LE(cache.stats().resident_bytes, 1u << 20);
    EXPECT_LT(cache.stats().resident_bytes,
              kChunks * sizeof(StreamChunk));

    // Re-requesting chunk 0 finds its weak_ptr dead and regenerates from
    // the per-chunk StreamGen checkpoint — counted as a generation, not
    // a hit, and bit-identical to the original decode.
    const std::shared_ptr<const StreamChunk> again = entry->chunk_for(0);
    EXPECT_GT(entry->chunks_generated(), generated_before + (kChunks - 1))
        << "chunk 0 was still resident; eviction never fired";
    ASSERT_EQ(first.size(), again->instrs.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      ASSERT_TRUE(same_instruction(first[i], again->instrs[i]))
          << "regenerated instruction " << i << " diverged";
    }
  });
}

TEST(StreamCache, HitsCountOnlyLiveChunks) {
  with_cache_budget("1", [] {
    StreamCache& cache = StreamCache::local();
    cache.clear();
    const std::shared_ptr<StreamEntry> entry =
        cache.entry(profile("gzip"), 0, 7);
    const auto c0 = entry->chunk_for(0);
    const std::uint64_t hits_before = entry->chunk_hits();
    const auto c0_again = entry->chunk_for(1);  // same chunk, still alive
    EXPECT_EQ(entry->chunk_hits(), hits_before + 1);
    EXPECT_EQ(c0.get(), c0_again.get());
  });
}

/// Counters that must not move with the cache budget. Worth spelling out
/// field-by-field rather than digesting: a mismatch names the counter.
struct RunFingerprint {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t wrong_path = 0;
  std::uint64_t charged_stalls = 0;
  std::uint64_t switches = 0;

  bool operator==(const RunFingerprint& o) const {
    return cycles == o.cycles && committed == o.committed &&
           fetched == o.fetched && mispredicts == o.mispredicts &&
           wrong_path == o.wrong_path && charged_stalls == o.charged_stalls &&
           switches == o.switches;
  }
};

RunFingerprint run_mix(bool adts) {
  sim::SimConfig cfg = sim::make_config(mix("mem8"), 8, 2003);
  cfg.adts.quantum_cycles = 1024;
  cfg.use_adts = adts;
  sim::Simulator s(cfg);
  s.run(16 * 1024);
  RunFingerprint f;
  f.cycles = s.pipeline().stats().cycles;
  f.committed = s.committed();
  f.fetched = s.pipeline().stats().fetched;
  f.mispredicts = s.pipeline().stats().mispredicts;
  f.wrong_path = s.pipeline().stats().fetched_wrong_path;
  f.charged_stalls = s.pipeline().charged_stall_slots();
  f.switches = s.detector().stats().switches;
  return f;
}

TEST(StreamCache, StarvedCacheIsBitIdenticalToUnconstrained) {
  // Budget 0 MiB is the harshest legal setting: the pool retains at most
  // one chunk, so the simulator's streams evict and regenerate behind
  // every fetch frontier. Results must not move by a single count.
  for (const bool adts : {false, true}) {
    RunFingerprint starved;
    RunFingerprint roomy;
    with_cache_budget("0", [&starved, adts] {
      StreamCache::local().clear();
      starved = run_mix(adts);
      // The budget had to actually bite for this test to mean anything.
      EXPECT_LE(StreamCache::local().stats().resident_bytes,
                sizeof(StreamChunk));
    });
    with_cache_budget(nullptr, [&roomy, adts] {
      StreamCache::local().clear();
      roomy = run_mix(adts);
    });
    EXPECT_TRUE(starved == roomy)
        << (adts ? "adts" : "fixed")
        << ": starved cache perturbed simulated results (cycles "
        << starved.cycles << "/" << roomy.cycles << ", committed "
        << starved.committed << "/" << roomy.committed << ", fetched "
        << starved.fetched << "/" << roomy.fetched << ")";
  }
}

}  // namespace
}  // namespace smt::workload
