// Unit tests: SMT pipeline basics (pipeline/pipeline.hpp).
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"

namespace smt::pipeline {
namespace {

std::vector<workload::ThreadProgram> programs(
    std::initializer_list<const char*> apps, std::uint64_t seed = 1) {
  std::vector<workload::ThreadProgram> ps;
  std::uint32_t tid = 0;
  for (const char* a : apps) {
    ps.emplace_back(workload::profile(a), tid++, seed);
  }
  return ps;
}

Pipeline make(std::initializer_list<const char*> apps,
              std::uint64_t seed = 1) {
  return Pipeline(PipelineConfig{}, programs(apps, seed));
}

TEST(Pipeline, SingleThreadMakesProgress) {
  Pipeline p = make({"gzip"});
  p.run(20000);
  EXPECT_GT(p.committed_total(), 1000u);
  EXPECT_EQ(p.stats().cycles, 20000u);
}

TEST(Pipeline, SingleThreadIpcBelowFetchLimit) {
  Pipeline p = make({"sixtrack"});
  p.run(30000);
  EXPECT_LT(p.stats().ipc(), 8.0);
  EXPECT_GT(p.stats().ipc(), 0.3);
}

TEST(Pipeline, MoreThreadsMoreThroughput) {
  Pipeline p1 = make({"gzip"});
  Pipeline p4 = make({"gzip", "crafty", "eon", "bzip2"});
  p1.run(30000);
  p4.run(30000);
  EXPECT_GT(p4.stats().ipc(), p1.stats().ipc() * 1.3);
}

TEST(Pipeline, CommittedNeverExceedsFetched) {
  Pipeline p = make({"gcc", "vpr"});
  p.run(20000);
  EXPECT_LE(p.committed_total(), p.stats().fetched);
}

TEST(Pipeline, FetchedSplitsIntoCommittedSquashedInflight) {
  Pipeline p = make({"parser", "twolf"});
  p.run(20000);
  const PipelineStats& s = p.stats();
  // fetched = committed + squashed + still-in-flight.
  const std::uint64_t inflight = s.fetched - s.committed - s.squashed;
  EXPECT_LE(inflight, 2u * (p.config().rob_per_thread));
}

TEST(Pipeline, BranchResolutionProducesMispredicts) {
  Pipeline p = make({"parser", "gcc"});
  p.run(30000);
  EXPECT_GT(p.stats().branches_resolved, 500u);
  EXPECT_GT(p.stats().mispredicts, 0u);
  EXPECT_LT(static_cast<double>(p.stats().mispredicts) /
                static_cast<double>(p.stats().branches_resolved),
            0.5);
}

TEST(Pipeline, WrongPathInstructionsAreFetchedAndSquashed) {
  Pipeline p = make({"parser", "vpr", "twolf", "gcc"});
  p.run(30000);
  EXPECT_GT(p.stats().fetched_wrong_path, 0u);
  EXPECT_GT(p.stats().squashed, 0u);
  // Wrong-path instructions never commit, so squashes must at least cover
  // the resolved-mispredict wrong paths.
  EXPECT_GE(p.stats().squashed, p.stats().mispredicts);
}

TEST(Pipeline, PolicyCanBeChangedMidRun) {
  Pipeline p = make({"gzip", "mcf", "swim", "crafty"});
  p.run(5000);
  EXPECT_EQ(p.policy(), policy::FetchPolicy::kIcount);
  p.set_policy(policy::FetchPolicy::kBrcount);
  p.run(5000);
  EXPECT_EQ(p.policy(), policy::FetchPolicy::kBrcount);
  EXPECT_GT(p.committed_total(), 0u);
}

TEST(Pipeline, BlockFetchSuppressesAThread) {
  Pipeline p = make({"gzip", "gzip"}, 3);
  p.run(2000);
  const std::uint64_t committed_before = p.counters(0).committed_total;
  p.block_fetch(0, p.now() + 100000);
  p.run(20000);
  // Thread 0 may drain in-flight work but then commits nothing further.
  const std::uint64_t drained =
      p.counters(0).committed_total - committed_before;
  EXPECT_LT(drained, 600u);
  EXPECT_GT(p.counters(1).committed_total, 1000u);
}

TEST(Pipeline, DetectorWorkConsumesOnlyIdleSlots) {
  Pipeline p = make({"gzip", "crafty"});
  p.add_dt_work(1000);
  const std::uint64_t before = p.committed_total();
  Pipeline q = make({"gzip", "crafty"});
  p.run(5000);
  q.run(5000);
  // DT work must not change normal-thread execution at all.
  EXPECT_EQ(p.committed_total() - before, q.committed_total());
  EXPECT_EQ(p.dt_work_remaining(), 0u);
  EXPECT_GT(p.stats().dt_slots_used, 0u);
}

TEST(Pipeline, DtWorkRemainingDecreasesMonotonically) {
  Pipeline p = make({"gzip"});
  p.add_dt_work(10000);
  std::uint64_t prev = p.dt_work_remaining();
  for (int i = 0; i < 100; ++i) {
    p.step();
    EXPECT_LE(p.dt_work_remaining(), prev);
    prev = p.dt_work_remaining();
  }
}

TEST(Pipeline, QuantumCountersResetButLifetimeSurvives) {
  Pipeline p = make({"gcc", "mcf"});
  p.run(9000);
  const std::uint64_t lifetime = p.counters(0).committed_total;
  EXPECT_GT(p.counters(0).committed_quantum, 0u);
  p.reset_quantum_counters();
  EXPECT_EQ(p.counters(0).committed_quantum, 0u);
  EXPECT_EQ(p.counters(0).committed_total, lifetime);
}

TEST(Pipeline, PerThreadCommitsSumToTotal) {
  Pipeline p = make({"gzip", "swim", "gcc", "art"});
  p.run(25000);
  std::uint64_t sum = 0;
  for (std::uint32_t t = 0; t < p.num_threads(); ++t) {
    sum += p.counters(t).committed_total;
  }
  EXPECT_EQ(sum, p.committed_total());
}

TEST(Pipeline, SyscallsFlushWholePipeline) {
  // Force frequent syscalls through a custom profile.
  workload::AppProfile p = workload::profile("gzip");
  p.mix.syscall = 0.01;
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(p, 0, 1);
  ps.emplace_back(workload::profile("crafty"), 1, 1);
  Pipeline pipe(PipelineConfig{}, std::move(ps));
  pipe.run(40000);
  EXPECT_GT(pipe.stats().syscall_flushes, 0u);
  EXPECT_GT(pipe.committed_total(), 100u) << "must keep progressing";
  EXPECT_TRUE(pipe.check_counter_invariants());
}

TEST(Pipeline, RejectsEmptyProgramList) {
  EXPECT_THROW(Pipeline(PipelineConfig{}, {}), std::invalid_argument);
}

TEST(Pipeline, RejectsTooManyThreadsForConfig) {
  PipelineConfig cfg;
  cfg.memory.max_threads = 2;
  EXPECT_THROW(Pipeline(cfg, programs({"gzip", "gcc", "vpr"})),
               std::invalid_argument);
}

TEST(Pipeline, RejectsLatencyBeyondCompletionRing) {
  PipelineConfig cfg;
  cfg.memory.mem_latency = 100000;
  EXPECT_THROW(Pipeline(cfg, programs({"gzip"})), std::invalid_argument);
}

TEST(Pipeline, IdleSlotsAccountedWhenUnderloaded) {
  Pipeline p = make({"mcf"});  // one slow thread: most slots idle
  p.run(10000);
  EXPECT_GT(p.stats().fetch_slots_idle, 10000u);
}

}  // namespace
}  // namespace smt::pipeline
