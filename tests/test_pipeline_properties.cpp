// Property-style parameterized tests over the pipeline: invariants that
// must hold for every (mix, policy, machine-shape) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace smt::pipeline {
namespace {

Pipeline make_mix(const char* mix_name, std::size_t threads,
                  PipelineConfig cfg = PipelineConfig{},
                  std::uint64_t seed = 17) {
  const auto apps =
      workload::mix_for_threads(workload::mix(mix_name), threads, seed);
  std::vector<workload::ThreadProgram> ps;
  std::uint32_t tid = 0;
  for (const auto& a : apps) {
    ps.emplace_back(workload::profile(a), tid++, seed);
  }
  return Pipeline(cfg, std::move(ps));
}

// ---------------------------------------------------------------------------
// Property: for every mix and policy, a medium run keeps all incremental
// counters consistent with ground truth, commits monotonically, and stays
// within structural bounds.
// ---------------------------------------------------------------------------
class MixPolicyProperty
    : public ::testing::TestWithParam<
          std::tuple<const char*, policy::FetchPolicy>> {};

TEST_P(MixPolicyProperty, CountersConsistentAndBounded) {
  const auto [mix_name, pol] = GetParam();
  Pipeline p = make_mix(mix_name, 8);
  p.set_policy(pol);
  std::uint64_t prev_committed = 0;
  for (int chunk = 0; chunk < 8; ++chunk) {
    p.run(1500);
    ASSERT_TRUE(p.check_counter_invariants())
        << workload::mix(mix_name).name << "/" << name(pol) << " cycle "
        << p.now();
    ASSERT_GE(p.committed_total(), prev_committed);
    prev_committed = p.committed_total();
    for (std::uint32_t t = 0; t < p.num_threads(); ++t) {
      const ThreadCounters& c = p.counters(t);
      ASSERT_GE(c.icount, 0);
      ASSERT_GE(c.brcount, 0);
      ASSERT_GE(c.ldcount, 0);
      ASSERT_GE(c.memcount, c.ldcount) << "memcount includes loads";
      ASSERT_GE(c.l1d_outstanding, 0);
      ASSERT_LE(c.l1i_outstanding, 1);
    }
  }
  EXPECT_GT(p.committed_total(), 200u)
      << "every policy must keep the machine alive";
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesKeyMixes, MixPolicyProperty,
    ::testing::Combine(::testing::Values("ctrl8", "mem8", "ilp8", "bal1"),
                       ::testing::ValuesIn(policy::all_policies())),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::string(policy::name(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Property: determinism and snapshot fidelity for every mix.
// ---------------------------------------------------------------------------
class MixProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(MixProperty, DeterministicAndSnapshotExact) {
  Pipeline a = make_mix(GetParam(), 8);
  Pipeline b = make_mix(GetParam(), 8);
  a.run(6000);
  b.run(6000);
  ASSERT_EQ(a.committed_total(), b.committed_total());

  Pipeline snap = a;  // value copy mid-run
  a.run(6000);
  snap.run(6000);
  EXPECT_EQ(a.committed_total(), snap.committed_total());
  EXPECT_EQ(a.stats().fetched, snap.stats().fetched);
  EXPECT_EQ(a.stats().squashed, snap.stats().squashed);
  EXPECT_EQ(a.stats().mispredicts, snap.stats().mispredicts);
}

TEST_P(MixProperty, ThreadScalingIsSane) {
  Pipeline p2 = make_mix(GetParam(), 2);
  Pipeline p8 = make_mix(GetParam(), 8);
  p2.run(12000);
  p8.run(12000);
  // 8 threads never commit less than 2 threads would on the same mix
  // family (weak sanity, allows saturation).
  EXPECT_GT(p8.committed_total() * 10, p2.committed_total() * 9);
}

INSTANTIATE_TEST_SUITE_P(AllMixes, MixProperty,
                         ::testing::Values("ctrl8", "mem8", "ilp8", "cache8",
                                           "bal1", "bal2", "bal3", "bal4",
                                           "int8", "span8", "fp8", "var1",
                                           "var2"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Property: machine-shape sweeps keep the pipeline correct.
// ---------------------------------------------------------------------------
struct Shape {
  const char* name;
  std::uint32_t iq;
  std::uint32_t lsq;
  std::uint32_t renames;
  std::uint32_t fetch_threads;
};

class ShapeProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeProperty, RunsCleanlyAtThisShape) {
  const Shape s = GetParam();
  PipelineConfig cfg;
  cfg.int_iq_size = s.iq;
  cfg.fp_iq_size = s.iq;
  cfg.lsq_size = s.lsq;
  cfg.int_rename_regs = s.renames;
  cfg.fp_rename_regs = s.renames;
  cfg.fetch_threads = s.fetch_threads;
  Pipeline p = make_mix("bal1", 8, cfg);
  p.run(10000);
  EXPECT_TRUE(p.check_counter_invariants()) << s.name;
  EXPECT_GT(p.committed_total(), 100u) << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeProperty,
    ::testing::Values(Shape{"tiny", 8, 8, 24, 2},
                      Shape{"narrow_fetch", 24, 48, 100, 1},
                      Shape{"wide_fetch", 24, 48, 100, 4},
                      Shape{"big_queues", 64, 64, 200, 2},
                      Shape{"rename_starved", 24, 48, 16, 2}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace smt::pipeline
