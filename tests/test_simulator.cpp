// Unit tests: simulator facade (sim/simulator.hpp).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::sim {
namespace {

TEST(Simulator, MakeConfigPullsMixApps) {
  const SimConfig cfg = make_config(workload::mix("int8"), 8, 7);
  EXPECT_EQ(cfg.apps.size(), 8u);
  EXPECT_EQ(cfg.workload_seed, 7u);
}

TEST(Simulator, MakeConfigSubset) {
  const SimConfig cfg = make_config(workload::mix("int8"), 4, 7);
  EXPECT_EQ(cfg.apps.size(), 4u);
}

TEST(Simulator, RunAdvancesClock) {
  Simulator s(make_config(workload::mix("bal1"), 4, 1));
  EXPECT_EQ(s.now(), 0u);
  s.run(1234);
  EXPECT_EQ(s.now(), 1234u);
}

TEST(Simulator, FixedPolicyIsApplied) {
  SimConfig cfg = make_config(workload::mix("bal1"), 4, 1);
  cfg.fixed_policy = policy::FetchPolicy::kMemcount;
  Simulator s(cfg);
  EXPECT_EQ(s.pipeline().policy(), policy::FetchPolicy::kMemcount);
}

TEST(Simulator, AdtsDisabledMeansNoQuantumProcessing) {
  SimConfig cfg = make_config(workload::mix("bal1"), 4, 1);
  cfg.use_adts = false;
  Simulator s(cfg);
  s.run(3 * 8192);
  EXPECT_EQ(s.detector().stats().quanta, 0u);
}

TEST(Simulator, AdtsEnabledProcessesQuanta) {
  SimConfig cfg = make_config(workload::mix("bal1"), 4, 1);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 2048;
  Simulator s(cfg);
  s.run(5 * 2048);
  EXPECT_EQ(s.detector().stats().quanta, 5u);
}

TEST(Simulator, RejectsEmptyApps) {
  SimConfig cfg;
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

TEST(Simulator, RejectsNineApps) {
  SimConfig cfg;
  cfg.apps = std::vector<std::string>(9, "gzip");
  EXPECT_THROW(Simulator{cfg}, std::invalid_argument);
}

TEST(Simulator, RepeatedAppsAllowed) {
  SimConfig cfg;
  cfg.apps = {"gzip", "gzip", "gzip", "gzip"};
  Simulator s(cfg);
  s.run(10000);
  EXPECT_GT(s.committed(), 1000u);
}

TEST(Simulator, IpcAccessorMatchesStats) {
  Simulator s(make_config(workload::mix("span8"), 8, 2));
  s.run(20000);
  EXPECT_DOUBLE_EQ(s.ipc(), s.pipeline().stats().ipc());
  EXPECT_EQ(s.committed(), s.pipeline().committed_total());
}

TEST(Simulator, AdtsInitialPolicyFollowsFixedPolicy) {
  SimConfig cfg = make_config(workload::mix("bal1"), 4, 1);
  cfg.use_adts = true;
  cfg.fixed_policy = policy::FetchPolicy::kRoundRobin;
  Simulator s(cfg);
  EXPECT_EQ(s.pipeline().policy(), policy::FetchPolicy::kRoundRobin);
}

}  // namespace
}  // namespace smt::sim
