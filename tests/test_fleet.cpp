// Unit tests: the fleet layer (src/fleet/) behind smtfleetd.
//
// The scheduler is a pure state machine fed literal timestamps, so the
// crash / hang / retry / drain behavior the daemon promises is asserted
// here exactly, without processes or clocks. The supervisor tests do
// fork real children — tiny /bin/sh stubs that exit, die by signal or
// hang — because waitpid classification is the one seam a pure test
// cannot reach.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "fleet/job_spec.hpp"
#include "fleet/journal.hpp"
#include "fleet/result_cache.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/supervisor.hpp"

namespace smt::fleet {
namespace {

// ---------------------------------------------------------------------------
// classify_exit: the waitpid-status → retry-policy table.

TEST(ClassifyExit, Table) {
  const auto code = [](int status) {
    return classify_exit(WorkerExit{false, status});
  };
  const auto sig = [](int signo) {
    return classify_exit(WorkerExit{true, signo});
  };
  EXPECT_EQ(code(kExitOk), ExitClass::kSuccess);
  EXPECT_EQ(code(kExitCancelled), ExitClass::kCancelled);
  // Deterministic rejections: retrying replays the same failure.
  EXPECT_EQ(code(kExitUsage), ExitClass::kPermanent);
  EXPECT_EQ(code(kExitConfig), ExitClass::kPermanent);
  EXPECT_EQ(code(kExitCheck), ExitClass::kPermanent);
  EXPECT_EQ(code(127), ExitClass::kPermanent);  // exec failure
  // Anything else is environmental — worth a retry.
  EXPECT_EQ(code(1), ExitClass::kCrash);
  EXPECT_EQ(code(134), ExitClass::kCrash);  // abort() via sh
  EXPECT_EQ(sig(9), ExitClass::kCrash);
  EXPECT_EQ(sig(11), ExitClass::kCrash);
  EXPECT_EQ(sig(15), ExitClass::kCrash);
}

// ---------------------------------------------------------------------------
// FleetScheduler: retry, backoff, timeout, drain, batch verdict.

FleetConfig tight_cfg() {
  FleetConfig cfg;
  cfg.max_workers = 2;
  cfg.max_attempts = 3;
  cfg.timeout_ms = 1000;
  cfg.backoff_base_ms = 100;
  cfg.backoff_cap_ms = 400;
  return cfg;
}

TEST(FleetScheduler, HappyPathSettlesEveryJob) {
  FleetScheduler s(tight_cfg());
  for (int i = 0; i < 3; ++i) (void)s.add_job();

  std::uint64_t now = 10;
  while (!s.all_settled()) {
    while (const auto job = s.next_ready(now)) s.on_started(*job, now);
    // Reap everything currently running as success.
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s.job(i).state == JobState::kRunning) {
        EXPECT_EQ(s.on_exit(i, WorkerExit{false, 0}, now), Outcome::kAccepted);
      }
    }
    now += 5;
  }
  EXPECT_EQ(s.batch_exit_code(), kExitOk);
  EXPECT_EQ(s.failed(), 0u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.job(i).state, JobState::kDone);
    EXPECT_EQ(s.job(i).attempts, 1u);
  }
}

TEST(FleetScheduler, CrashRequeuesWithExponentialBackoff) {
  FleetScheduler s(tight_cfg());
  const std::size_t job = s.add_job();

  // Schedule is deterministic: base<<0, base<<1, capped thereafter.
  EXPECT_EQ(s.backoff_ms(1), 100u);
  EXPECT_EQ(s.backoff_ms(2), 200u);
  EXPECT_EQ(s.backoff_ms(3), 400u);
  EXPECT_EQ(s.backoff_ms(10), 400u) << "cap must hold";

  std::uint64_t now = 0;
  s.on_started(job, now);
  EXPECT_EQ(s.on_exit(job, WorkerExit{true, 9}, now), Outcome::kRequeued);
  EXPECT_EQ(s.job(job).state, JobState::kWaitingRetry);
  EXPECT_EQ(s.job(job).retry_at_ms, 100u);

  // Backoff is honored: not ready one tick early, ready on the deadline.
  EXPECT_FALSE(s.next_ready(99).has_value());
  ASSERT_TRUE(s.next_ready(100).has_value());

  now = 100;
  s.on_started(job, now);
  EXPECT_EQ(s.on_exit(job, WorkerExit{true, 9}, now), Outcome::kRequeued);
  EXPECT_EQ(s.job(job).retry_at_ms, 300u) << "second backoff is base<<1";
}

TEST(FleetScheduler, RetryCapSettlesFailedAndFailsTheBatch) {
  FleetScheduler s(tight_cfg());  // max_attempts = 3
  const std::size_t job = s.add_job();
  std::uint64_t now = 0;

  for (int attempt = 1; attempt <= 3; ++attempt) {
    now = s.job(job).retry_at_ms;
    s.on_started(job, now);
    const Outcome out = s.on_exit(job, WorkerExit{true, 11}, now);
    if (attempt < 3) {
      EXPECT_EQ(out, Outcome::kRequeued);
    } else {
      EXPECT_EQ(out, Outcome::kFailed);
    }
  }
  EXPECT_EQ(s.job(job).state, JobState::kFailed);
  EXPECT_EQ(s.job(job).attempts, 3u);
  EXPECT_NE(s.job(job).failure.find("retries exhausted"), std::string::npos)
      << s.job(job).failure;
  EXPECT_TRUE(s.all_settled());
  EXPECT_EQ(s.batch_exit_code(), kExitBatchFailed);
}

TEST(FleetScheduler, PermanentExitFailsWithoutRetry) {
  FleetScheduler s(tight_cfg());
  const std::size_t job = s.add_job();
  s.on_started(job, 0);
  EXPECT_EQ(s.on_exit(job, WorkerExit{false, kExitConfig}, 0),
            Outcome::kFailed);
  EXPECT_EQ(s.job(job).state, JobState::kFailed);
  EXPECT_EQ(s.job(job).attempts, 1u) << "no retry for deterministic failures";
  EXPECT_EQ(s.batch_exit_code(), kExitBatchFailed);
}

TEST(FleetScheduler, TimeoutExpiresAndRequeues) {
  FleetScheduler s(tight_cfg());  // timeout_ms = 1000
  const std::size_t job = s.add_job();
  s.on_started(job, 50);

  EXPECT_TRUE(s.expired(1049).empty());
  const std::vector<std::size_t> late = s.expired(1050);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0], job);

  EXPECT_EQ(s.on_timeout(job, 1050), Outcome::kRequeued);
  EXPECT_EQ(s.job(job).state, JobState::kWaitingRetry);
  EXPECT_EQ(s.job(job).retry_at_ms, 1150u);
}

TEST(FleetScheduler, MaxWorkersAndIndexOrderGoverNextReady) {
  FleetScheduler s(tight_cfg());  // max_workers = 2
  for (int i = 0; i < 4; ++i) (void)s.add_job();

  ASSERT_EQ(s.next_ready(0), std::optional<std::size_t>(0));
  s.on_started(0, 0);
  ASSERT_EQ(s.next_ready(0), std::optional<std::size_t>(1));
  s.on_started(1, 0);
  EXPECT_FALSE(s.next_ready(0).has_value()) << "both worker slots busy";

  (void)s.on_exit(0, WorkerExit{false, 0}, 5);
  ASSERT_EQ(s.next_ready(5), std::optional<std::size_t>(2))
      << "lowest pending index starts next";
}

TEST(FleetScheduler, DrainingStopsNewStartsAndYieldsCancelledExit) {
  FleetScheduler s(tight_cfg());
  for (int i = 0; i < 2; ++i) (void)s.add_job();
  s.on_started(0, 0);
  s.set_draining();
  EXPECT_FALSE(s.next_ready(0).has_value()) << "drain blocks job 1";
  (void)s.on_exit(0, WorkerExit{false, 0}, 5);
  EXPECT_FALSE(s.all_settled());
  EXPECT_EQ(s.batch_exit_code(), kExitCancelled);
}

TEST(FleetScheduler, CachedJobsSettleWithoutRunning) {
  FleetScheduler s(tight_cfg());
  (void)s.add_job();
  (void)s.add_job();
  s.mark_cached(0);
  EXPECT_EQ(s.job(0).state, JobState::kCached);
  ASSERT_EQ(s.next_ready(0), std::optional<std::size_t>(1));
  s.on_started(1, 0);
  (void)s.on_exit(1, WorkerExit{false, 0}, 1);
  EXPECT_TRUE(s.all_settled());
  EXPECT_EQ(s.batch_exit_code(), kExitOk);
}

TEST(FleetScheduler, NextWakeTracksRetriesAndDeadlines) {
  FleetScheduler s(tight_cfg());
  (void)s.add_job();
  (void)s.add_job();
  EXPECT_FALSE(s.next_wake_ms(0).has_value()) << "nothing scheduled yet";

  s.on_started(0, 100);  // deadline 1100
  EXPECT_EQ(s.next_wake_ms(100), std::optional<std::uint64_t>(1100));

  s.on_started(1, 100);
  (void)s.on_exit(1, WorkerExit{true, 9}, 100);  // retry at 200
  EXPECT_EQ(s.next_wake_ms(100), std::optional<std::uint64_t>(200))
      << "soonest of retry deadline and timeout wins";
  EXPECT_EQ(s.next_wake_ms(250), std::optional<std::uint64_t>(250))
      << "past deadlines clamp to now (no sleeping into the past)";
}

// ---------------------------------------------------------------------------
// Journal: round-trip, torn tail, foreign lines.

JournalRecord make_rec(JournalKind kind, std::uint64_t job,
                       std::uint64_t digest, std::uint32_t attempt,
                       std::string detail) {
  JournalRecord rec;
  rec.kind = kind;
  rec.job = job;
  rec.digest = digest;
  rec.attempt = attempt;
  rec.detail = std::move(detail);
  return rec;
}

TEST(Journal, RoundTripsEveryKind) {
  const std::vector<JournalRecord> records = {
      make_rec(JournalKind::kBatch, 4, 0x1122334455667788ull, 0, ""),
      make_rec(JournalKind::kCached, 0, 0xaabbccddeeff0011ull, 0, "cache"),
      make_rec(JournalKind::kStart, 1, 0x2ull, 1, ""),
      make_rec(JournalKind::kRetry, 1, 0x2ull, 1, "signal 9; retry in 250 ms"),
      make_rec(JournalKind::kDone, 1, 0x2ull, 2, ""),
      make_rec(JournalKind::kFail, 2, 0x3ull, 3, "timeout (retries exhausted)"),
  };
  std::stringstream buf;
  for (const JournalRecord& rec : records) write_record(buf, rec);

  const std::vector<JournalRecord> parsed = read_journal(buf);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, records[i].kind) << "record " << i;
    EXPECT_EQ(parsed[i].job, records[i].job) << "record " << i;
    EXPECT_EQ(parsed[i].digest, records[i].digest) << "record " << i;
    EXPECT_EQ(parsed[i].attempt, records[i].attempt) << "record " << i;
    EXPECT_EQ(parsed[i].detail, records[i].detail) << "record " << i;
  }
}

TEST(Journal, TelemetryRoundTripsAndStaysOptional) {
  JournalRecord rec = make_rec(JournalKind::kDone, 5, 0xabcull, 2, "");
  rec.has_telemetry = true;
  rec.host_ms = 1234;
  rec.utime_ms = 1000;
  rec.stime_ms = 34;
  rec.maxrss_kb = 20480;
  std::stringstream buf;
  write_record(buf, rec);
  const std::string line = buf.str();
  // The leading field order is load-bearing: recovery tooling greps for
  // kind/job/digest/attempt as a prefix, so telemetry must append.
  EXPECT_EQ(line.rfind("{\"kind\":\"done\",\"job\":5,\"digest\":\"0x", 0), 0u);
  EXPECT_NE(line.find("\"host_ms\":1234"), std::string::npos);

  const std::optional<JournalRecord> parsed =
      parse_record(line.substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_telemetry);
  EXPECT_EQ(parsed->host_ms, 1234u);
  EXPECT_EQ(parsed->utime_ms, 1000u);
  EXPECT_EQ(parsed->stime_ms, 34u);
  EXPECT_EQ(parsed->maxrss_kb, 20480u);

  // A record written without telemetry parses as has_telemetry == false.
  std::stringstream plain;
  write_record(plain, make_rec(JournalKind::kDone, 5, 0xabcull, 2, ""));
  const std::optional<JournalRecord> no_tel =
      parse_record(plain.str().substr(0, plain.str().size() - 1));
  ASSERT_TRUE(no_tel.has_value());
  EXPECT_FALSE(no_tel->has_telemetry);
}

TEST(Journal, TornTailLinesAreSkippedNotFatal) {
  // A daemon SIGKILLed mid-write leaves a prefix of a valid line; every
  // truncation of a valid record must parse as "no record".
  std::stringstream full;
  write_record(full,
               make_rec(JournalKind::kDone, 7, 0x31b7bcc7881f67d2ull, 2,
                        "ok"));
  std::string line = full.str();
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  ASSERT_TRUE(parse_record(line).has_value()) << "intact line must parse";
  for (std::size_t cut = 0; cut < line.size(); ++cut) {
    EXPECT_FALSE(parse_record(line.substr(0, cut)).has_value())
        << "torn prefix of length " << cut << " parsed as a record";
  }
}

TEST(Journal, ForeignAndBlankLinesAreIgnored) {
  std::stringstream buf;
  buf << "\n"
      << "# not json\n"
      << "{\"kind\":\"no-such-kind\",\"job\":0,\"digest\":\"0x0\",\"attempt\":0}\n"
      << "{\"job\":1,\"digest\":\"0x1\",\"attempt\":1}\n";  // kind missing
  write_record(buf, make_rec(JournalKind::kStart, 3, 0x9ull, 1, ""));
  const std::vector<JournalRecord> parsed = read_journal(buf);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kind, JournalKind::kStart);
  EXPECT_EQ(parsed[0].job, 3u);
}

TEST(Journal, DetailEscapesQuotesAndNewlines) {
  std::stringstream buf;
  write_record(buf,
               make_rec(JournalKind::kFail, 0, 0x1ull, 1,
                        "said \"no\"\ntwice"));
  const std::string line = buf.str();
  EXPECT_EQ(line.find('\n'), line.size() - 1)
      << "detail newline must be escaped; journal is one record per line";
  ASSERT_TRUE(parse_record(line.substr(0, line.size() - 1)).has_value());
}

// ---------------------------------------------------------------------------
// Batch parsing and the job content address.

BatchSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_batch(in);
}

TEST(BatchSpec, GridIsMixBySeedByVariant) {
  const BatchSpec b = parse(
      "# comment\n"
      "cycles 32768\n"
      "warmup 8192\n"
      "mix bal1 mem8\n"
      "seed 1 2\n"
      "policy ICOUNT RR\n"
      "adts 3@2 3p@2.5\n");
  // 2 mixes × 2 seeds × (2 policies + 2 adts variants) = 16 jobs.
  ASSERT_EQ(b.jobs.size(), 16u);
  EXPECT_EQ(b.jobs[0].mix, "bal1");
  EXPECT_EQ(b.jobs[0].seed, 1u);
  EXPECT_FALSE(b.jobs[0].adts);
  EXPECT_EQ(b.jobs[0].cycles, 32768u);
  EXPECT_EQ(b.jobs[0].warmup, 8192u);
  const FleetJob& adts_job = b.jobs[2];
  EXPECT_TRUE(adts_job.adts);
  EXPECT_EQ(adts_job.heuristic_token, "3");
  EXPECT_DOUBLE_EQ(adts_job.threshold, 2.0);
  EXPECT_EQ(b.jobs.back().mix, "mem8");
  EXPECT_EQ(b.jobs.back().seed, 2u);
  EXPECT_EQ(b.jobs.back().heuristic_token, "3p");
}

TEST(BatchSpec, DefaultsApplyWhenDirectivesOmitted) {
  const BatchSpec b = parse("mix bal1\npolicy ICOUNT\n");
  ASSERT_EQ(b.jobs.size(), 1u);
  EXPECT_EQ(b.jobs[0].seed, 2003u) << "paper-year default seed";
  EXPECT_EQ(b.jobs[0].threads, 8u);
  EXPECT_EQ(b.jobs[0].cycles, 262144u);
  EXPECT_EQ(b.jobs[0].warmup, 32768u);
}

TEST(BatchSpec, MalformedInputThrowsConfigError) {
  EXPECT_THROW(parse(""), ConfigError) << "no mix";
  EXPECT_THROW(parse("mix bal1\n"), ConfigError) << "no variant";
  EXPECT_THROW(parse("mix no-such-mix\npolicy ICOUNT\n"), ConfigError);
  EXPECT_THROW(parse("mix bal1\npolicy NOPE\n"), ConfigError);
  EXPECT_THROW(parse("mix bal1\nadts 9@2\n"), ConfigError) << "bad heuristic";
  EXPECT_THROW(parse("mix bal1\nadts 3@0\n"), ConfigError) << "threshold <= 0";
  EXPECT_THROW(parse("mix bal1\nadts 3-2\n"), ConfigError) << "missing @";
  EXPECT_THROW(parse("cycles 1\ncycles 2\nmix bal1\npolicy ICOUNT\n"),
               ConfigError)
      << "duplicate scalar";
  EXPECT_THROW(parse("bogus 1\nmix bal1\npolicy ICOUNT\n"), ConfigError);
  EXPECT_THROW(parse("threads 9\nmix bal1\npolicy ICOUNT\n"), ConfigError);
  EXPECT_THROW(parse("cycles zero\nmix bal1\npolicy ICOUNT\n"), ConfigError);
}

TEST(JobDigest, RunControlFieldsExtendTheConfigDigest) {
  const BatchSpec b = parse("mix bal1\npolicy ICOUNT\n");
  FleetJob job = b.jobs[0];
  const std::uint64_t base = job_digest(job);

  FleetJob longer = job;
  longer.cycles *= 2;
  EXPECT_NE(job_digest(longer), base)
      << "cycles is outside SimConfig but changes the stats document";

  FleetJob warmer = job;
  warmer.warmup += 1;
  EXPECT_NE(job_digest(warmer), base);

  FleetJob reseeded = job;
  reseeded.seed += 1;
  EXPECT_NE(job_digest(reseeded), base);

  EXPECT_EQ(job_digest(job), base) << "digest is a pure function of the job";
}

TEST(JobDigest, BatchDigestIsOrderSensitive) {
  const BatchSpec b = parse("mix bal1 mem8\npolicy ICOUNT\n");
  ASSERT_EQ(b.jobs.size(), 2u);
  BatchSpec swapped = b;
  std::swap(swapped.jobs[0], swapped.jobs[1]);
  EXPECT_NE(batch_digest(b), batch_digest(swapped))
      << "a reordered batch is a different batch (journals must not mix)";
}

TEST(JobDigest, HexSpellingsRoundTrip) {
  const std::uint64_t d = 0x31b7bcc7881f67d2ull;
  EXPECT_EQ(digest_hex(d), "31b7bcc7881f67d2");
  EXPECT_EQ(digest_str(d), "0x31b7bcc7881f67d2");
  EXPECT_EQ(digest_hex(0), "0000000000000000") << "fixed width";
}

TEST(SmtsimArgs, CarriesEveryKnobAndTheStatsPath) {
  const BatchSpec b = parse(
      "mix bal1\nseed 7\ncycles 1024\nwarmup 256\nquantum 4096\n"
      "guard on\nadts 3p@2.5\n");
  const std::vector<std::string> args = smtsim_args(b.jobs[0], "/tmp/out.json");
  const auto has = [&args](const std::string& s) {
    for (const std::string& a : args) {
      if (a == s) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("--mix") && has("bal1"));
  EXPECT_TRUE(has("--seed") && has("7"));
  EXPECT_TRUE(has("--cycles") && has("1024"));
  EXPECT_TRUE(has("--warmup") && has("256"));
  EXPECT_TRUE(has("--adts"));
  EXPECT_TRUE(has("--heuristic") && has("3p"));
  EXPECT_TRUE(has("--threshold") && has("2.5"));
  EXPECT_TRUE(has("--quantum") && has("4096"));
  EXPECT_TRUE(has("--guard"));
  EXPECT_TRUE(has("--stats-json") && has("/tmp/out.json"));
}

// ---------------------------------------------------------------------------
// Result cache: atomic publication and the integrity cross-check.

// A scratch cache directory wiped up front: gtest's TempDir survives
// across runs, and a leftover entry would fail the pre-commit asserts.
std::string fresh_cache_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ResultCache, CommitPublishesAtomicallyAndDiscardCleansUp) {
  const std::string dir = fresh_cache_dir("fleet_cache_test");
  ResultCache cache(dir);
  const std::uint64_t digest = 0x0123456789abcdefull;
  EXPECT_FALSE(cache.contains(digest));

  const std::string tmp = cache.tmp_path_for(digest, 1);
  {
    std::ofstream out(tmp);
    out << "{\"run\":{\"config_digest\":\"0x0123456789abcdef\"}}\n";
  }
  EXPECT_FALSE(cache.contains(digest)) << "tmp files are not entries";
  ASSERT_TRUE(cache.commit(tmp, digest));
  EXPECT_TRUE(cache.contains(digest));
  EXPECT_FALSE(std::ifstream(tmp).good()) << "tmp renamed away, not copied";

  // Committing a missing tmp reports failure instead of corrupting.
  EXPECT_FALSE(cache.commit(cache.tmp_path_for(digest, 2), digest));

  const std::string tmp3 = cache.tmp_path_for(digest, 3);
  { std::ofstream out(tmp3); out << "partial"; }
  cache.discard(tmp3);
  EXPECT_FALSE(std::ifstream(tmp3).good());
}

TEST(ResultCache, StatsConfigDigestReadsTheEmbeddedValue) {
  const std::string dir = fresh_cache_dir("fleet_cache_digest");
  ResultCache cache(dir);
  const std::string good = dir + "/good.json";
  {
    std::ofstream out(good);
    out << "{\n  \"run\":{\"config_digest\":\"0x31b7bcc7881f67d2\","
        << "\"cycles\":123}\n}\n";
  }
  EXPECT_EQ(stats_config_digest(good),
            std::optional<std::uint64_t>(0x31b7bcc7881f67d2ull));

  const std::string bad = dir + "/bad.json";
  { std::ofstream out(bad); out << "{\"run\":{}}\n"; }
  EXPECT_FALSE(stats_config_digest(bad).has_value());
  EXPECT_FALSE(stats_config_digest(dir + "/absent.json").has_value());
}

// ---------------------------------------------------------------------------
// WorkerSupervisor: real children, one per exit class.

std::vector<std::string> sh(const std::string& script) {
  return {"/bin/sh", "-c", script};
}

// Reap until the supervisor has no live children (bounded wait).
std::vector<ReapedWorker> drain(WorkerSupervisor& sup) {
  std::vector<ReapedWorker> all;
  for (int spins = 0; sup.live() > 0 && spins < 5000; ++spins) {
    for (ReapedWorker& r : sup.poll()) all.push_back(r);
    if (sup.live() > 0) ::usleep(2000);
  }
  return all;
}

TEST(WorkerSupervisor, ReapsExitCodesAndSignalsDistinctly) {
  WorkerSupervisor sup;
  const int ok = sup.spawn(sh("exit 0"));
  const int crash = sup.spawn(sh("exit 7"));
  const int killed = sup.spawn(sh("kill -9 $$"));
  ASSERT_GT(ok, 0);
  ASSERT_GT(crash, 0);
  ASSERT_GT(killed, 0);
  EXPECT_EQ(sup.live(), 3u);

  const std::vector<ReapedWorker> reaped = drain(sup);
  ASSERT_EQ(reaped.size(), 3u);
  EXPECT_EQ(sup.live(), 0u);
  for (const ReapedWorker& r : reaped) {
    if (r.pid == ok) {
      EXPECT_FALSE(r.exit.signaled);
      EXPECT_EQ(r.exit.status, 0);
      EXPECT_EQ(classify_exit(r.exit), ExitClass::kSuccess);
    } else if (r.pid == crash) {
      EXPECT_FALSE(r.exit.signaled);
      EXPECT_EQ(r.exit.status, 7);
      EXPECT_EQ(classify_exit(r.exit), ExitClass::kCrash);
    } else if (r.pid == killed) {
      EXPECT_TRUE(r.exit.signaled);
      EXPECT_EQ(r.exit.status, 9);
      EXPECT_EQ(classify_exit(r.exit), ExitClass::kCrash);
    } else {
      ADD_FAILURE() << "unexpected pid " << r.pid;
    }
  }
}

TEST(WorkerSupervisor, ExecFailureSurfacesAs127) {
  WorkerSupervisor sup;
  ASSERT_GT(sup.spawn({"/no/such/binary/anywhere"}), 0);
  const std::vector<ReapedWorker> reaped = drain(sup);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_FALSE(reaped[0].exit.signaled);
  EXPECT_EQ(reaped[0].exit.status, 127);
  EXPECT_EQ(classify_exit(reaped[0].exit), ExitClass::kPermanent)
      << "a missing worker binary must not be retried";
}

TEST(WorkerSupervisor, KillWorkerTerminatesAHangingChild) {
  // The daemon's hang-detection path: a child that would outlive any
  // timeout is killed explicitly and reaps as signaled. `exec` matters:
  // /bin/sh may otherwise fork the sleep, and SIGKILLing the shell
  // would orphan a grandchild that keeps the test's stderr pipe (and
  // therefore ctest) open for the sleep's full duration.
  WorkerSupervisor sup;
  const int pid = sup.spawn(sh("exec sleep 600"));
  ASSERT_GT(pid, 0);
  EXPECT_FALSE(sup.kill_worker(pid + 999999, SIGKILL))
      << "foreign pids are refused";
  EXPECT_TRUE(sup.kill_worker(pid, SIGKILL));
  const std::vector<ReapedWorker> reaped = drain(sup);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_TRUE(reaped[0].exit.signaled);
  EXPECT_EQ(reaped[0].exit.status, SIGKILL);
}

TEST(WorkerSupervisor, KillAllSweepsEveryLiveChild) {
  WorkerSupervisor sup;
  for (int i = 0; i < 3; ++i) ASSERT_GT(sup.spawn(sh("exec sleep 600")), 0);
  EXPECT_EQ(sup.live(), 3u);
  sup.kill_all(SIGKILL);
  const std::vector<ReapedWorker> reaped = drain(sup);
  EXPECT_EQ(reaped.size(), 3u);
  EXPECT_EQ(sup.live(), 0u);
}

}  // namespace
}  // namespace smt::fleet
