// Behavioural tests of the fetch policies inside the full machine —
// the orderings the fetch-policy literature (and the paper's premise)
// rest on. Runs are deterministic (fixed seeds), so these assertions are
// stable, not flaky statistics.
#include <gtest/gtest.h>

#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::policy {
namespace {

double ipc_of(const char* mix, FetchPolicy p, std::uint64_t seed = 42,
              std::uint64_t cycles = 80000) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix), 8, seed);
  cfg.fixed_policy = p;
  sim::Simulator s(cfg);
  s.run(20000);  // warm
  const std::uint64_t c0 = s.committed();
  s.run(cycles);
  return static_cast<double>(s.committed() - c0) /
         static_cast<double>(cycles);
}

TEST(PolicyBehavior, IcountBeatsRoundRobinOnIntMix) {
  // Tullsen's headline ordering, the premise restated in the paper's §1.
  EXPECT_GT(ipc_of("int8", FetchPolicy::kIcount),
            ipc_of("int8", FetchPolicy::kRoundRobin) * 1.02);
}

TEST(PolicyBehavior, IcountBeatsRoundRobinOnIlpMix) {
  EXPECT_GT(ipc_of("ilp8", FetchPolicy::kIcount),
            ipc_of("ilp8", FetchPolicy::kRoundRobin) * 1.02);
}

TEST(PolicyBehavior, MemoryBoundMixIsPolicyInsensitive) {
  // When every thread thrashes, no fetch ordering can recover much —
  // the observation behind the paper's mix-similarity analysis.
  const double icount = ipc_of("mem8", FetchPolicy::kIcount);
  const double rr = ipc_of("mem8", FetchPolicy::kRoundRobin);
  EXPECT_NEAR(icount / rr, 1.0, 0.08);
}

TEST(PolicyBehavior, AllPoliciesWithinSaneBandOnBalancedMix) {
  // No policy may collapse the machine: within 2x of the best.
  double best = 0;
  std::vector<double> all;
  for (FetchPolicy p : all_policies()) {
    const double ipc = ipc_of("bal1", p);
    all.push_back(ipc);
    best = std::max(best, ipc);
  }
  for (double ipc : all) {
    EXPECT_GT(ipc, best / 2.0);
  }
}

TEST(PolicyBehavior, PolicyChoiceChangesExecution) {
  // Different policies must lead to genuinely different machine
  // trajectories (else the whole study would be vacuous).
  sim::SimConfig cfg = sim::make_config(workload::mix("ctrl8"), 8, 42);
  cfg.fixed_policy = FetchPolicy::kIcount;
  sim::Simulator a(cfg);
  cfg.fixed_policy = FetchPolicy::kBrcount;
  sim::Simulator b(cfg);
  a.run(40000);
  b.run(40000);
  EXPECT_NE(a.committed(), b.committed());
  EXPECT_NE(a.pipeline().stats().fetched, b.pipeline().stats().fetched);
}

TEST(PolicyBehavior, OracleHeadroomExistsOnFavourableMix) {
  // The paper's motivating observation, end to end: per-quantum policy
  // choice leaves measurable room over fixed ICOUNT on at least the
  // favourable mixes.
  sim::Simulator base(sim::make_config(workload::mix("int8"), 8, 42));
  base.run(32768);
  sim::Simulator fixed = base;
  const std::uint64_t before = fixed.committed();
  fixed.run(12 * 8192);
  const auto fixed_committed = fixed.committed() - before;
  const sim::OracleResult r = sim::run_oracle(base, 12, sim::OracleConfig{});
  EXPECT_GT(static_cast<double>(r.committed),
            1.02 * static_cast<double>(fixed_committed));
}

}  // namespace
}  // namespace smt::policy
