// Unit tests: multiprogrammed job scheduler (sched/job_scheduler.hpp)
// and the pipeline's context-switch primitive.
#include <gtest/gtest.h>

#include "sched/job_scheduler.hpp"
#include "workload/app_profile.hpp"

namespace smt::sched {
namespace {

std::vector<std::string> pool16() {
  return {"gzip",  "vpr",     "gcc",   "mcf",  "crafty", "parser",
          "eon",   "perlbmk", "gap",   "vortex", "bzip2", "twolf",
          "swim",  "art",     "mesa",  "sixtrack"};
}

JobSchedConfig quick_cfg(EvictionPolicy p = EvictionPolicy::kOblivious) {
  JobSchedConfig cfg;
  cfg.job_quantum_cycles = 4096;
  cfg.swaps_per_quantum = 2;
  cfg.ctx_switch_penalty = 100;
  cfg.eviction = p;
  return cfg;
}

TEST(SwapProgram, ReplacesWorkloadAndResetsCounters) {
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(workload::profile("gzip"), 0, 1);
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));
  pipe.run(5000);
  ASSERT_GT(pipe.counters(0).committed_total, 0u);

  workload::ThreadProgram incoming(workload::profile("mcf"), 9, 1);
  const workload::ThreadProgram outgoing =
      pipe.swap_program(0, std::move(incoming), 50);
  EXPECT_EQ(outgoing.app().name, "gzip");
  EXPECT_GT(outgoing.generated(), 0u) << "outgoing keeps its position";
  EXPECT_EQ(pipe.program(0).app().name, "mcf");
  EXPECT_EQ(pipe.counters(0).committed_total, 0u);
  EXPECT_TRUE(pipe.check_counter_invariants());
}

TEST(SwapProgram, PenaltyStallsFetch) {
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(workload::profile("gzip"), 0, 1);
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));
  pipe.run(5000);
  (void)pipe.swap_program(
      0, workload::ThreadProgram(workload::profile("eon"), 9, 1), 500);
  pipe.run(400);
  EXPECT_EQ(pipe.counters(0).committed_total, 0u)
      << "nothing can commit during the switch penalty";
  pipe.run(5000);
  EXPECT_GT(pipe.counters(0).committed_total, 100u);
}

TEST(SwapProgram, MachineKeepsRunningForOtherThreads) {
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(workload::profile("gzip"), 0, 1);
  ps.emplace_back(workload::profile("crafty"), 1, 1);
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));
  pipe.run(2000);
  const std::uint64_t other_before = pipe.counters(1).committed_total;
  (void)pipe.swap_program(
      0, workload::ThreadProgram(workload::profile("art"), 9, 1), 1000);
  pipe.run(2000);
  EXPECT_GT(pipe.counters(1).committed_total, other_before);
}

TEST(JobScheduler, RejectsBadSetups) {
  EXPECT_THROW(make_multiprogrammed(pipeline::PipelineConfig{},
                                    quick_cfg(), {"gzip"}, 4, 1),
               std::invalid_argument);
  JobSchedConfig cfg = quick_cfg();
  cfg.job_quantum_cycles = 0;
  EXPECT_THROW(JobScheduler(cfg, {Job{}}, {}), std::invalid_argument);
  EXPECT_THROW(JobScheduler(quick_cfg(), {}, {}), std::invalid_argument);
}

TEST(JobScheduler, SwapsAtJobQuanta) {
  auto sys = make_multiprogrammed(pipeline::PipelineConfig{}, quick_cfg(),
                                  pool16(), 8, 1);
  for (int i = 0; i < 4 * 4096; ++i) {
    sys.pipeline.step();
    sys.scheduler.tick(sys.pipeline, nullptr);
  }
  EXPECT_EQ(sys.scheduler.stats().job_quanta, 4u);
  EXPECT_EQ(sys.scheduler.stats().swaps, 4u * 2u);
  EXPECT_EQ(sys.scheduler.waiting_count(), 8u) << "pool size is conserved";
}

TEST(JobScheduler, EveryJobEventuallyRuns) {
  auto sys = make_multiprogrammed(pipeline::PipelineConfig{}, quick_cfg(),
                                  pool16(), 8, 1);
  for (int i = 0; i < 40 * 4096; ++i) {
    sys.pipeline.step();
    sys.scheduler.tick(sys.pipeline, nullptr);
  }
  // After 40 quanta x 2 swaps, all 16 jobs must have had at least one
  // stint and made progress.
  std::uint64_t zero_progress = 0;
  auto check = [&](const Job& j) {
    if (j.stints == 0) ++zero_progress;
  };
  for (const Job& j : sys.scheduler.resident()) check(j);
  // Waiting jobs are not directly inspectable one by one; conservation +
  // resident stints is the proxy.
  EXPECT_EQ(zero_progress, 0u);
  EXPECT_TRUE(sys.pipeline.check_counter_invariants());
}

TEST(JobScheduler, ObliviousVsAssistedBothMakeProgress) {
  for (const EvictionPolicy p :
       {EvictionPolicy::kOblivious, EvictionPolicy::kDetectorAssisted}) {
    auto sys = make_multiprogrammed(pipeline::PipelineConfig{}, quick_cfg(p),
                                    pool16(), 8, 1);
    core::AdtsConfig acfg;
    acfg.quantum_cycles = 1024;
    acfg.ipc_threshold = 100.0;  // always analyse → clog flags fresh
    core::DetectorThread dt(acfg);
    for (int i = 0; i < 20 * 4096; ++i) {
      sys.pipeline.step();
      dt.tick(sys.pipeline);
      sys.scheduler.tick(sys.pipeline, &dt);
    }
    EXPECT_GT(sys.pipeline.committed_total(), 10000u) << name(p);
    EXPECT_TRUE(sys.pipeline.check_counter_invariants()) << name(p);
  }
}

TEST(JobScheduler, AssistedUsesClogFlags) {
  JobSchedConfig cfg = quick_cfg(EvictionPolicy::kDetectorAssisted);
  auto sys = make_multiprogrammed(pipeline::PipelineConfig{}, cfg,
                                  pool16(), 8, 1);
  core::AdtsConfig acfg;
  acfg.quantum_cycles = 1024;
  acfg.ipc_threshold = 100.0;
  acfg.clog_icount_share = 0.25;  // flag aggressively
  core::DetectorThread dt(acfg);
  for (int i = 0; i < 30 * 4096; ++i) {
    sys.pipeline.step();
    dt.tick(sys.pipeline);
    sys.scheduler.tick(sys.pipeline, &dt);
  }
  EXPECT_GT(sys.scheduler.stats().assisted_evictions, 0u);
}

TEST(JobScheduler, NoWaitingJobsMeansNoSwaps) {
  auto sys = make_multiprogrammed(
      pipeline::PipelineConfig{}, quick_cfg(),
      {"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk"}, 8,
      1);
  for (int i = 0; i < 4 * 4096; ++i) {
    sys.pipeline.step();
    sys.scheduler.tick(sys.pipeline, nullptr);
  }
  EXPECT_EQ(sys.scheduler.stats().swaps, 0u);
}

}  // namespace
}  // namespace smt::sched
