// Unit tests: oracle scheduler (sim/oracle.hpp).
#include <gtest/gtest.h>

#include "sim/oracle.hpp"
#include "workload/mix.hpp"

namespace smt::sim {
namespace {

Simulator warm_sim(const char* mix_name = "bal1", std::uint64_t seed = 3) {
  Simulator s(make_config(workload::mix(mix_name), 8, seed));
  s.run(8192);
  return s;
}

TEST(Oracle, AccountsCyclesAndQuanta) {
  OracleConfig cfg;
  cfg.quantum_cycles = 2048;
  const OracleResult r = run_oracle(warm_sim(), 5, cfg);
  EXPECT_EQ(r.cycles, 5u * 2048u);
  std::uint64_t quanta = 0;
  for (auto q : r.quanta_per_policy) quanta += q;
  EXPECT_EQ(quanta, 5u);
}

TEST(Oracle, BeatsOrMatchesEveryFixedCandidateOverOneQuantum) {
  // One quantum from a common state: the oracle's pick is the max over
  // the candidate set, so it cannot lose to any member. (The guarantee is
  // per-quantum; across several quanta greedy choices can diverge.)
  Simulator base = warm_sim("int8");
  OracleConfig cfg;
  cfg.quantum_cycles = 4096;
  const OracleResult oracle = run_oracle(base, 1, cfg);

  for (policy::FetchPolicy p : cfg.candidates) {
    Simulator fixed = base;
    fixed.pipeline().set_policy(p);
    const std::uint64_t before = fixed.committed();
    fixed.run(cfg.quantum_cycles);
    EXPECT_GE(oracle.committed, fixed.committed() - before)
        << "oracle lost to fixed " << policy::name(p);
  }
}

TEST(Oracle, SingleCandidateEqualsFixedRun) {
  Simulator base = warm_sim("ctrl8");
  OracleConfig cfg;
  cfg.quantum_cycles = 2048;
  cfg.candidates = {policy::FetchPolicy::kIcount};
  const OracleResult r = run_oracle(base, 4, cfg);

  Simulator fixed = base;
  const std::uint64_t before = fixed.committed();
  fixed.run(4 * 2048);
  EXPECT_EQ(r.committed, fixed.committed() - before);
  EXPECT_EQ(r.switches, 0u);
}

TEST(Oracle, DoesNotMutateCallerSimulator) {
  Simulator base = warm_sim();
  const std::uint64_t committed_before = base.committed();
  const std::uint64_t now_before = base.now();
  (void)run_oracle(base, 3, OracleConfig{});
  EXPECT_EQ(base.committed(), committed_before);
  EXPECT_EQ(base.now(), now_before);
}

TEST(Oracle, RejectsEmptyCandidateSet) {
  OracleConfig cfg;
  cfg.candidates.clear();
  EXPECT_THROW((void)run_oracle(warm_sim(), 1, cfg), std::invalid_argument);
}

TEST(Oracle, RejectsAdtsBase) {
  SimConfig cfg = make_config(workload::mix("bal1"), 4, 1);
  cfg.use_adts = true;
  Simulator s(cfg);
  EXPECT_THROW((void)run_oracle(s, 1, OracleConfig{}), std::invalid_argument);
}

TEST(Oracle, DeterministicAcrossRepeats) {
  const OracleResult a = run_oracle(warm_sim("var1", 9), 4, OracleConfig{});
  const OracleResult b = run_oracle(warm_sim("var1", 9), 4, OracleConfig{});
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.quanta_per_policy, b.quanta_per_policy);
}

TEST(Oracle, FullTenPolicyOracleAtLeastMatchesThreePolicyOracle) {
  Simulator base = warm_sim("int8", 5);
  OracleConfig c3;
  c3.quantum_cycles = 4096;
  OracleConfig c10 = c3;
  c10.candidates = policy::all_policies();
  // One quantum from the same state: max over a superset is >= max over
  // the subset. (Over multiple quanta greedy choices could diverge, so
  // the guarantee is per-quantum only.)
  const OracleResult r3 = run_oracle(base, 1, c3);
  const OracleResult r10 = run_oracle(base, 1, c10);
  EXPECT_GE(r10.committed, r3.committed)
      << "a superset of candidates can only help a per-quantum greedy "
         "oracle from the same state";
}

TEST(Oracle, IpcAccessor) {
  OracleResult r;
  EXPECT_EQ(r.ipc(), 0.0);
  r.cycles = 100;
  r.committed = 250;
  EXPECT_DOUBLE_EQ(r.ipc(), 2.5);
}

}  // namespace
}  // namespace smt::sim
