// Unit tests: switching-history buffer (core/history.hpp).
#include <gtest/gtest.h>

#include "core/history.hpp"

namespace smt::core {
namespace {

using policy::FetchPolicy;

TEST(SwitchHistory, StartsEmptyAndRegular) {
  SwitchHistory h;
  for (FetchPolicy p : {FetchPolicy::kIcount, FetchPolicy::kBrcount}) {
    for (bool c : {false, true}) {
      EXPECT_EQ(h.counts(p, c).poscnt, 0u);
      EXPECT_EQ(h.counts(p, c).negcnt, 0u);
      EXPECT_TRUE(h.regular_transition(p, c));
    }
  }
}

TEST(SwitchHistory, RecordsPerKey) {
  SwitchHistory h;
  h.record(FetchPolicy::kIcount, true, true);
  h.record(FetchPolicy::kIcount, false, false);
  EXPECT_EQ(h.counts(FetchPolicy::kIcount, true).poscnt, 1u);
  EXPECT_EQ(h.counts(FetchPolicy::kIcount, true).negcnt, 0u);
  EXPECT_EQ(h.counts(FetchPolicy::kIcount, false).negcnt, 1u);
  EXPECT_EQ(h.counts(FetchPolicy::kBrcount, true).poscnt, 0u);
}

TEST(SwitchHistory, RegularRequiresStrictMajority) {
  SwitchHistory h;
  h.record(FetchPolicy::kBrcount, true, true);
  h.record(FetchPolicy::kBrcount, true, false);
  // poscnt == negcnt → "otherwise, the opposite direction will be chosen".
  EXPECT_FALSE(h.regular_transition(FetchPolicy::kBrcount, true));
  h.record(FetchPolicy::kBrcount, true, true);
  EXPECT_TRUE(h.regular_transition(FetchPolicy::kBrcount, true));
}

TEST(SwitchHistory, NegativeRunFlipsDecision) {
  SwitchHistory h;
  for (int i = 0; i < 5; ++i) h.record(FetchPolicy::kL1MissCount, false, false);
  EXPECT_FALSE(h.regular_transition(FetchPolicy::kL1MissCount, false));
  // The other condition value is unaffected.
  EXPECT_TRUE(h.regular_transition(FetchPolicy::kL1MissCount, true));
}

TEST(SwitchHistory, ClearResets) {
  SwitchHistory h;
  h.record(FetchPolicy::kIcount, true, false);
  h.clear();
  EXPECT_TRUE(h.regular_transition(FetchPolicy::kIcount, true));
  EXPECT_EQ(h.counts(FetchPolicy::kIcount, true).negcnt, 0u);
}

TEST(SwitchHistory, AllTenPoliciesAddressable) {
  SwitchHistory h;
  for (FetchPolicy p : policy::all_policies()) {
    h.record(p, true, true);
    EXPECT_EQ(h.counts(p, true).poscnt, 1u) << policy::name(p);
  }
}

}  // namespace
}  // namespace smt::core
