// Unit tests: statistics helpers (common/stats.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace smt {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  // Extrema of an empty accumulator are NaN — an unobserved minimum must
  // not masquerade as a real 0.0 in exported metrics.
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 3 + i * 0.1;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat empty;
  a.add(1.0);
  a.add(3.0);
  RunningStat c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
  RunningStat d = empty;
  d.merge(a);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.buckets(), 5u);
  EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.edge(4), 8.0);
}

TEST(Histogram, CountsSamplesInRightBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bucket 0
  h.add(3.0);   // bucket 1
  h.add(9.9);   // bucket 4
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FractionSumsToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  double sum = 0;
  for (std::size_t b = 0; b < h.buckets(); ++b) sum += h.fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Aggregates, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Aggregates, GeomeanIgnoresNonPositive) {
  EXPECT_NEAR(geomean({2.0, 8.0, 0.0, -1.0}), 4.0, 1e-12);
}

TEST(Aggregates, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace smt
