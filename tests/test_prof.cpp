// Unit tests: hierarchical phase profiler (prof/phase_profiler.hpp),
// the fenced host clock, histogram edge cases and MetricsRegistry
// name-collision semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "prof/host_clock.hpp"
#include "prof/phase_profiler.hpp"

namespace smt {
namespace {

using prof::PhaseProfiler;

// ---------------------------------------------------------------------------
// Host clock
// ---------------------------------------------------------------------------

TEST(HostClock, TicksAreMonotonicAndCalibrated) {
  const std::uint64_t a = prof::host_ticks();
  const std::uint64_t b = prof::host_ticks();
  EXPECT_GE(b, a);
  EXPECT_GT(prof::ticks_per_ns(), 0.0);
  EXPECT_EQ(prof::ticks_to_ns(0), 0u);
}

// ---------------------------------------------------------------------------
// PhaseProfiler tree
// ---------------------------------------------------------------------------

TEST(PhaseProfiler, ChildFindsOrCreatesPerParent) {
  PhaseProfiler p;
  const PhaseProfiler::Node a = p.child(PhaseProfiler::kRoot, "a");
  const PhaseProfiler::Node a2 = p.child(PhaseProfiler::kRoot, "a");
  EXPECT_EQ(a, a2);  // find, not create
  const PhaseProfiler::Node b = p.child(a, "b");
  const PhaseProfiler::Node b_under_root = p.child(PhaseProfiler::kRoot, "b");
  EXPECT_NE(b, b_under_root);  // same name, different parent
  EXPECT_EQ(p.node_count(), 4u);
  EXPECT_EQ(p.name(a), "a");
  EXPECT_EQ(p.parent(b), a);
  EXPECT_EQ(p.parent(a), PhaseProfiler::kRoot);
}

TEST(PhaseProfiler, NamesAreSanitizedForPathsAndFrames) {
  PhaseProfiler p;
  const PhaseProfiler::Node n =
      p.child(PhaseProfiler::kRoot, "a.b;c d");
  EXPECT_EQ(p.name(n), "a_b_c_d");
  EXPECT_EQ(p.name(p.child(PhaseProfiler::kRoot, "")), "_");
}

TEST(PhaseProfiler, AddAccumulatesCountInclusiveMinMax) {
  PhaseProfiler p;
  const PhaseProfiler::Node n = p.child(PhaseProfiler::kRoot, "n");
  EXPECT_EQ(p.count(n), 0u);
  EXPECT_EQ(p.min_ticks(n), 0u);  // unvisited reads as 0, not UINT64_MAX
  p.add(n, 10);
  p.add(n, 4);
  EXPECT_EQ(p.count(n), 2u);
  EXPECT_EQ(p.inclusive_ticks(n), 14u);
  EXPECT_EQ(p.min_ticks(n), 4u);
  EXPECT_EQ(p.max_ticks(n), 10u);
}

TEST(PhaseProfiler, ExclusiveTelescopesAndClampsAtZero) {
  PhaseProfiler p;
  const PhaseProfiler::Node a = p.child(PhaseProfiler::kRoot, "a");
  const PhaseProfiler::Node b = p.child(a, "b");
  const PhaseProfiler::Node c = p.child(a, "c");
  p.add(a, 100);
  p.add(b, 60);
  p.add(c, 30);
  EXPECT_EQ(p.exclusive_ticks(a), 10u);  // 100 - (60 + 30)
  EXPECT_EQ(p.exclusive_ticks(b), 60u);  // leaf: exclusive == inclusive
  // Σ exclusive over the subtree telescopes to a's inclusive.
  EXPECT_EQ(p.exclusive_ticks(a) + p.exclusive_ticks(b) +
                p.exclusive_ticks(c),
            p.inclusive_ticks(a));
  // Clock jitter can make children sum past the parent; clamp, don't wrap.
  p.add(b, 50);  // children now 140 > 100
  EXPECT_EQ(p.exclusive_ticks(a), 0u);
}

TEST(PhaseProfiler, PathJoinsSegmentsFromRoot) {
  PhaseProfiler p;
  const PhaseProfiler::Node cycle =
      p.child(p.child(PhaseProfiler::kRoot, "measured"), "cycle");
  EXPECT_EQ(p.path(PhaseProfiler::kRoot, ';'), "run");
  EXPECT_EQ(p.path(cycle, ';'), "run;measured;cycle");
  EXPECT_EQ(p.path(cycle, '.'), "run.measured.cycle");
}

TEST(PhaseProfiler, ScopeIsInertWithNullProfiler) {
  PhaseProfiler p;
  const PhaseProfiler::Node n = p.child(PhaseProfiler::kRoot, "n");
  {
    const PhaseProfiler::Scope s(nullptr, n);  // call sites never branch
  }
  EXPECT_EQ(p.count(n), 0u);
  {
    const PhaseProfiler::Scope s(&p, n);
  }
  EXPECT_EQ(p.count(n), 1u);
  EXPECT_GE(p.max_ticks(n), p.min_ticks(n));
}

TEST(PhaseProfiler, FoldedOutputSkipsUnvisitedAndMatchesExclusive) {
  PhaseProfiler p;
  const PhaseProfiler::Node a = p.child(PhaseProfiler::kRoot, "a");
  const PhaseProfiler::Node b = p.child(a, "b");
  p.child(a, "never_entered");
  p.add(a, 100);
  p.add(b, 60);
  std::ostringstream os;
  p.write_folded(os);
  std::istringstream is(os.str());
  std::vector<std::string> lines;
  for (std::string l; std::getline(is, l);) lines.push_back(l);
  // Root and "never_entered" have count 0: two lines, preorder.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "run;a " +
                          std::to_string(prof::ticks_to_ns(
                              p.exclusive_ticks(a))));
  EXPECT_EQ(lines[1], "run;a;b " +
                          std::to_string(prof::ticks_to_ns(
                              p.exclusive_ticks(b))));
}

TEST(PhaseProfiler, ExportMetricsEmitsVisitedNodesOnly) {
  PhaseProfiler p;
  const PhaseProfiler::Node a = p.child(PhaseProfiler::kRoot, "a");
  p.child(PhaseProfiler::kRoot, "unvisited");
  p.add(a, 7);
  obs::MetricsRegistry reg;
  p.export_metrics(reg);
  const auto count = reg.find("prof.run.a.count");
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(std::get<std::uint64_t>(*count), 1u);
  EXPECT_TRUE(reg.find("prof.ticks_per_ns").has_value());
  EXPECT_TRUE(reg.find("prof.run.a.incl_ns").has_value());
  EXPECT_TRUE(reg.find("prof.run.a.excl_ns").has_value());
  EXPECT_TRUE(reg.find("prof.run.a.min_ns").has_value());
  EXPECT_TRUE(reg.find("prof.run.a.max_ns").has_value());
  EXPECT_FALSE(reg.find("prof.run.unvisited.count").has_value());
  EXPECT_FALSE(reg.find("prof.run.count").has_value());  // root unvisited
}

TEST(PhaseProfiler, TraceEventsNestPreorderWithDepths) {
  PhaseProfiler p;
  const PhaseProfiler::Node a = p.child(PhaseProfiler::kRoot, "a");
  const PhaseProfiler::Node b = p.child(a, "b");
  const PhaseProfiler::Node c = p.child(a, "c");
  p.add(a, 100);
  p.add(b, 60);
  p.add(c, 30);
  const std::vector<obs::TraceEvent> evs = p.trace_events();
  ASSERT_EQ(evs.size(), 3u);  // root has count 0 and is skipped
  EXPECT_EQ(evs[0].label_view(), "a");
  EXPECT_EQ(evs[1].label_view(), "b");
  EXPECT_EQ(evs[2].label_view(), "c");
  EXPECT_EQ(evs[0].code, 1);  // depth below the root
  EXPECT_EQ(evs[1].code, 2);
  for (const obs::TraceEvent& e : evs) {
    EXPECT_EQ(e.kind, obs::EventKind::kProf);
    EXPECT_EQ(e.tid, -1);
  }
  // Synthetic timeline: b starts where a starts, c follows b, and both
  // siblings stay inside a's span.
  EXPECT_EQ(evs[1].cycle, evs[0].cycle);
  EXPECT_EQ(evs[2].cycle, evs[1].cycle + evs[1].span);
  EXPECT_LE(evs[2].cycle + evs[2].span, evs[0].cycle + evs[0].span);
}

// ---------------------------------------------------------------------------
// Histogram edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, EmptySummariesAreNaNNotZero) {
  const obs::Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, SingleSampleLandsInItsBin) {
  obs::Histogram h(0.0, 10.0, 10);
  h.add(2.5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 2.5);
  EXPECT_DOUBLE_EQ(h.max(), 2.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(Histogram, NegativeSampleCountsAsUnderflow) {
  obs::Histogram h(0.0, 10.0, 10);
  h.add(-3.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 1u);  // no sample is silently discarded
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
}

TEST(Histogram, UpperBoundIsExclusiveAndOverflowIsExact) {
  obs::Histogram h(0.0, 10.0, 10);
  h.add(10.0);  // == hi: [lo, hi) puts it in overflow, not the last bin
  h.add(1e300);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(9), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);  // exact extremes despite binning
}

TEST(Histogram, DegenerateRangeClampsToOneBin) {
  obs::Histogram h(5.0, 5.0, 0);  // hi == lo and zero bins
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 6.0);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
}

TEST(Histogram, WeightedAddScalesCountsAndMean) {
  obs::Histogram h(0.0, 10.0, 10);
  h.add(1.0, 4);
  h.add(9.0, 0);  // zero weight: no samples
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(1), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry collisions
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RepeatedSetKeepsLastValueOnce) {
  obs::MetricsRegistry reg;
  reg.set("dup", std::uint64_t{1});
  reg.set("dup", std::uint64_t{2});
  EXPECT_EQ(reg.size(), 1u);
  const auto v = reg.find("dup");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::uint64_t>(*v), 2u);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.find("\"dup\""), json.rfind("\"dup\""));  // emitted once
  EXPECT_NE(json.find("\"dup\":2"), std::string::npos);
}

TEST(MetricsRegistry, CollisionMayChangeType) {
  obs::MetricsRegistry reg;
  reg.set("k", std::uint64_t{7});
  reg.set("k", "seven");
  EXPECT_EQ(reg.size(), 1u);
  const auto v = reg.find("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::string>(*v), "seven");
}

}  // namespace
}  // namespace smt
