// Golden per-mix stats-digest harness.
//
// Locks an FNV-1a digest of the canonical --stats-json document for a
// short run of every one of the 13 evaluation mixes, in both fixed-policy
// and ADTS mode. This is the one-test bit-identity signal for hot-path
// work: any change to the simulator that perturbs simulated behaviour —
// instruction streams, pipeline scheduling, counter bookkeeping, stats
// export — moves at least one digest and fails here immediately, without
// waiting for the CI sweep scripts (check_invariants.sh runs the same
// 13-mix identity but only as an end-to-end gate).
//
// The digest covers the full exported metrics document minus the
// build/host provenance keys (the same volatile set run_bench_suite.sh
// strips): those identify the binary and the machine, not the simulated
// run, and would make the goldens move on every commit.
//
// Regenerating the table (ONLY when a behaviour change is deliberate):
//   SMT_PRINT_STATS_DIGESTS=1 ./tests/test_stats_identity
//       (--gtest_filter=StatsIdentity.GoldenDigests)
// and paste the printed rows over kGolden below, noting the change in the
// commit message — a moved digest is a simulated-behaviour change, never
// a refactor detail.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/build_info.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::sim {
namespace {

constexpr std::uint64_t kWarmupCycles = 4096;
constexpr std::uint64_t kMeasuredCycles = 24576;
constexpr std::uint64_t kSeed = 2003;

/// Volatile provenance keys: build- and host-identity, not run identity.
/// Mirrors the strip list in run_bench_suite.sh plus run.version (which
/// tracks the release, not the simulated behaviour).
constexpr const char* kVolatileKeys[] = {
    "run.version",   "run.git_sha",    "run.compiler", "run.flags",
    "run.host_cpu",  "run.host_cores", "run.smt_jobs",
};

std::uint64_t canonical_stats_digest(const std::string& mix_name,
                                     bool use_adts) {
  SimConfig cfg = make_config(workload::mix(mix_name), 8, kSeed);
  cfg.use_adts = use_adts;
  Simulator sim(cfg);
  sim.run(kWarmupCycles + kMeasuredCycles);

  obs::MetricsRegistry reg;
  sim.export_metrics(reg);
  for (const char* key : kVolatileKeys) reg.erase(key);

  std::ostringstream os;
  reg.write_json(os);
  const std::string doc = os.str();

  Fnv1a h;
  h.mix_bytes(doc.data(), doc.size());
  return h.digest();
}

struct Golden {
  const char* mix;
  std::uint64_t fixed_digest;
  std::uint64_t adts_digest;
};

// One row per mix, fixed-ICOUNT and ADTS (default heuristic/threshold/
// quantum), 8 threads, seed 2003, 4096 warmup + 24576 measured cycles.
constexpr Golden kGolden[] = {
    // clang-format off
    {"ctrl8",  0xcbadca66ae93ee99ULL, 0xda738cc380e1b506ULL},
    {"mem8",   0xb6e95b5336e70577ULL, 0x337e79d0ed7a5dd4ULL},
    {"ilp8",   0xa9764e0a4ea4df51ULL, 0x245e655b57a4a9a8ULL},
    {"cache8", 0x403cc579e0a17a90ULL, 0x8126934855a587feULL},
    {"bal1",   0x5d879e34e99a5c80ULL, 0xcf9f109b0569a312ULL},
    {"bal2",   0x4c19a499a916e632ULL, 0x4a6c9fddf508adffULL},
    {"bal3",   0x2439e8a346bcd99aULL, 0x8add01c5207d7996ULL},
    {"bal4",   0x13627550b74792a7ULL, 0x99c1c934121941bcULL},
    {"int8",   0xe0cafccdea47cd8fULL, 0xc52165af4c952fbfULL},
    {"span8",  0xf1ae360c6a78770dULL, 0xde4a6242db8fc7e4ULL},
    {"fp8",    0x960f027b3f258480ULL, 0x61592f7ca719428cULL},
    {"var1",   0x3e307102edf3fd3eULL, 0x89fa507fb651db6dULL},
    {"var2",   0x0fbd93124939a621ULL, 0x157a289260a3a1ddULL},
    // clang-format on
};

TEST(StatsIdentity, GoldenDigests) {
  const bool print = std::getenv("SMT_PRINT_STATS_DIGESTS") != nullptr;
  const auto& mixes = workload::all_mixes();
  ASSERT_EQ(mixes.size(), 13u) << "mix set changed; regenerate the table";

  if (print) {
    for (const auto& m : mixes) {
      std::printf("    {\"%s\", 0x%016llxULL, 0x%016llxULL},\n",
                  m.name.c_str(),
                  static_cast<unsigned long long>(
                      canonical_stats_digest(m.name, false)),
                  static_cast<unsigned long long>(
                      canonical_stats_digest(m.name, true)));
    }
    GTEST_SKIP() << "printed fresh digest table (SMT_PRINT_STATS_DIGESTS)";
  }

  ASSERT_EQ(std::size(kGolden), mixes.size())
      << "golden table out of sync with the mix set";
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(kGolden[i].mix, mixes[i].name) << "mix order changed";
    EXPECT_EQ(kGolden[i].fixed_digest,
              canonical_stats_digest(mixes[i].name, false))
        << "fixed-policy stats changed for mix " << mixes[i].name;
    EXPECT_EQ(kGolden[i].adts_digest,
              canonical_stats_digest(mixes[i].name, true))
        << "ADTS stats changed for mix " << mixes[i].name;
  }
}

// The digest must ignore exactly the volatile keys: a run with provenance
// stripped hashes the same on any host/build, and the stripping itself
// must not remove run-identity keys (seed, config digest).
TEST(StatsIdentity, VolatileKeysAreStripped) {
  SimConfig cfg = make_config(workload::mix("ilp8"), 8, kSeed);
  Simulator sim(cfg);
  sim.run(1024);
  obs::MetricsRegistry reg;
  sim.export_metrics(reg);
  for (const char* key : kVolatileKeys) {
    EXPECT_TRUE(reg.erase(key)) << key << " missing from export";
  }
  EXPECT_TRUE(reg.find("run.seed").has_value());
  EXPECT_TRUE(reg.find("run.config_digest").has_value());
}

}  // namespace
}  // namespace smt::sim
