// Tests: switch-audit provenance — the shared benign/malignant classifier
// (obs/switch_audit.hpp), the audit log container, and the detector
// integration: every applied ADTS switch gets one audit record whose
// label agrees with the AdtsStats counters, the audit.* metrics, and the
// kSwitchAudit trace events.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <variant>

#include "core/detector.hpp"
#include "obs/metrics.hpp"
#include "obs/switch_audit.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt {
namespace {

// ---------------------------------------------------------------------------
// Classifier (the single shared definition).
// ---------------------------------------------------------------------------

TEST(SwitchClassifier, BenignRequiresStrictImprovement) {
  EXPECT_EQ(obs::classify_switch(0.5, 0.6), obs::SwitchLabel::kBenign);
  EXPECT_EQ(obs::classify_switch(0.5, 0.4), obs::SwitchLabel::kMalignant);
  // The paper reads "did the switch help": a tie did not help.
  EXPECT_EQ(obs::classify_switch(0.5, 0.5), obs::SwitchLabel::kMalignant);
  EXPECT_EQ(obs::classify_switch(0.0, 0.0), obs::SwitchLabel::kMalignant);
}

TEST(SwitchClassifier, BenignProbabilityIgnoresNeutral) {
  EXPECT_DOUBLE_EQ(obs::benign_probability(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs::benign_probability(3, 1), 0.75);
  EXPECT_DOUBLE_EQ(obs::benign_probability(0, 5), 0.0);
}

TEST(SwitchClassifier, FlagNamesRenderPipeSeparated) {
  EXPECT_EQ(obs::audit_flag_names(0), "-");
  EXPECT_EQ(obs::audit_flag_names(obs::kAuditReversed), "reversed");
  EXPECT_EQ(obs::audit_flag_names(obs::kAuditInstant | obs::kAuditCondBr),
            "instant|cond_br");
}

// ---------------------------------------------------------------------------
// Audit log container.
// ---------------------------------------------------------------------------

TEST(SwitchAuditLog, ScoreAppliesTheSharedClassifier) {
  obs::SwitchAuditLog log;
  obs::SwitchAudit a;
  a.ipc_before = 0.5;
  const std::size_t up = log.push(a);
  const std::size_t down = log.push(a);
  log.score(up, 0.9, 100);
  log.score(down, 0.2, 200);
  EXPECT_EQ(log[up].label, obs::SwitchLabel::kBenign);
  EXPECT_EQ(log[down].label, obs::SwitchLabel::kMalignant);
  EXPECT_EQ(log[down].scored_cycle, 200u);
  EXPECT_EQ(log.count(obs::SwitchLabel::kBenign), 1u);
  EXPECT_EQ(log.count(obs::SwitchLabel::kMalignant), 1u);
  EXPECT_EQ(log.count(obs::SwitchLabel::kNeutral), 0u);
}

TEST(SwitchAuditLog, CapacityDropsAreCountedNotRecorded) {
  obs::SwitchAuditLog log(2);
  obs::SwitchAudit a;
  EXPECT_NE(log.push(a), obs::SwitchAuditLog::npos);
  EXPECT_NE(log.push(a), obs::SwitchAuditLog::npos);
  EXPECT_EQ(log.push(a), obs::SwitchAuditLog::npos);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  log.score(obs::SwitchAuditLog::npos, 1.0, 1);  // must be a safe no-op
}

TEST(SwitchAuditLog, ToTraceEventKeepsUnscoredDistinct) {
  obs::SwitchAudit a;
  a.ipc_before = 0.4;
  a.decided_cycle = 100;
  a.applied_cycle = 180;
  const obs::TraceEvent unscored = obs::to_trace_event(a);
  EXPECT_EQ(unscored.kind, obs::EventKind::kSwitchAudit);
  EXPECT_EQ(unscored.span, 80u);
  EXPECT_TRUE(std::isnan(unscored.ipc));  // "no data yet", not 0.0
  EXPECT_DOUBLE_EQ(unscored.fetch_share, 0.4);

  a.scored = true;
  a.ipc_after = 0.7;
  a.label = obs::SwitchLabel::kBenign;
  const obs::TraceEvent scored = obs::to_trace_event(a);
  EXPECT_DOUBLE_EQ(scored.ipc, 0.7);
  EXPECT_EQ(scored.value,
            static_cast<std::uint64_t>(obs::SwitchLabel::kBenign));
}

// ---------------------------------------------------------------------------
// Detector integration: one audit per applied switch, labels consistent
// everywhere the classification is reported.
// ---------------------------------------------------------------------------

sim::SimConfig adts_config(const char* mix_name) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  return cfg;
}

std::uint64_t metric_u64(const obs::MetricsRegistry& reg, const char* key) {
  const auto v = reg.find(key);
  EXPECT_TRUE(v.has_value()) << key;
  return v.has_value() ? std::get<std::uint64_t>(*v) : 0;
}

TEST(SwitchAuditIntegration, OneRecordPerAppliedSwitchLabelsMatchStats) {
  sim::Simulator s(adts_config("mem8"));
  s.run(32 * 1024);
  const core::AdtsStats& stats = s.detector().stats();
  const obs::SwitchAuditLog& log = s.detector().audit_log();
  ASSERT_GT(stats.switches, 0u);
  EXPECT_EQ(log.size(), stats.switches);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.count(obs::SwitchLabel::kBenign), stats.benign_switches);
  EXPECT_EQ(log.count(obs::SwitchLabel::kMalignant),
            stats.malignant_switches);
  for (const obs::SwitchAudit& a : log.entries()) {
    EXPECT_GE(a.applied_cycle, a.decided_cycle);
    if (!a.scored) continue;
    // The stored label must be exactly what the shared classifier says
    // about the stored before/after pair.
    EXPECT_EQ(a.label, obs::classify_switch(a.ipc_before, a.ipc_after));
    EXPECT_GT(a.scored_cycle, a.applied_cycle);
  }
}

TEST(SwitchAuditIntegration, MetricsAgreeWithTheLog) {
  sim::Simulator s(adts_config("mem8"));
  s.run(32 * 1024);
  obs::MetricsRegistry reg;
  s.export_metrics(reg);
  const obs::SwitchAuditLog& log = s.detector().audit_log();
  EXPECT_EQ(metric_u64(reg, "audit.records"), log.size());
  EXPECT_EQ(metric_u64(reg, "audit.benign"),
            log.count(obs::SwitchLabel::kBenign));
  EXPECT_EQ(metric_u64(reg, "audit.malignant"),
            log.count(obs::SwitchLabel::kMalignant));
  EXPECT_EQ(metric_u64(reg, "audit.neutral"),
            log.count(obs::SwitchLabel::kNeutral));
}

TEST(SwitchAuditIntegration, TraceEmitsEveryRecordAfterFlush) {
  sim::Simulator s(adts_config("mem8"));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(32 * 1024);
  s.flush_trace();
  const obs::SwitchAuditLog& log = s.detector().audit_log();
  ASSERT_GT(log.size(), 0u);
  std::uint64_t benign = 0;
  std::uint64_t malignant = 0;
  std::uint64_t neutral = 0;
  std::size_t audits = 0;
  for (const obs::TraceEvent& e : sink.snapshot()) {
    if (e.kind != obs::EventKind::kSwitchAudit) continue;
    ++audits;
    switch (static_cast<obs::SwitchLabel>(e.value)) {
      case obs::SwitchLabel::kBenign: ++benign; break;
      case obs::SwitchLabel::kMalignant: ++malignant; break;
      default: ++neutral; break;
    }
  }
  EXPECT_EQ(audits, log.size());
  EXPECT_EQ(benign, log.count(obs::SwitchLabel::kBenign));
  EXPECT_EQ(malignant, log.count(obs::SwitchLabel::kMalignant));
  // An unscored trailing switch is emitted by the flush as neutral.
  EXPECT_EQ(neutral, log.count(obs::SwitchLabel::kNeutral));
}

TEST(SwitchAuditIntegration, AuditingDoesNotPerturbAdtsDecisions) {
  // The audit rides on the same classification the detector already did;
  // a run with the log consulted (metrics export, trace) must decide
  // exactly like one where it is never read.
  sim::Simulator a(adts_config("bal1"));
  sim::Simulator b(adts_config("bal1"));
  obs::TraceSink sink;
  b.attach_trace(&sink);
  a.run(16 * 1024);
  b.run(16 * 1024);
  b.flush_trace();
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_EQ(a.detector().stats().switches, b.detector().stats().switches);
  EXPECT_EQ(a.detector().stats().benign_switches,
            b.detector().stats().benign_switches);
}

}  // namespace
}  // namespace smt
