// Unit tests: table printer (common/table.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace smt {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  Table t({"mix", "ipc"});
  t.add_row({"ctrl8", "1.87"});
  t.add_row({"mem8", "0.78"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("mix"), std::string::npos);
  EXPECT_NE(out.find("ctrl8"), std::string::npos);
  EXPECT_NE(out.find("0.78"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  Table t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "2"});
  std::ostringstream os;
  t.print(os);
  // Find column position of "1" and "2": they must match.
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);             // header
  std::getline(is, line);             // underline
  std::string r1, r2;
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(Table, ShortRowsPadBlank) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(Table, RejectsOverlongRows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 7a");
  EXPECT_NE(os.str().find("Figure 7a"), std::string::npos);
}

}  // namespace
}  // namespace smt
