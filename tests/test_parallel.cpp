// Unit tests: deterministic thread pool (par/thread_pool.hpp) and the
// parallel-equals-serial contract of the code built on it.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "par/thread_pool.hpp"
#include "sim/oracle.hpp"
#include "workload/mix.hpp"

namespace smt {
namespace {

TEST(ThreadPool, ParallelMapPreservesSubmissionOrder) {
  // Tasks take wildly different amounts of work, so completion order
  // scrambles across the four workers; the results must come back in
  // submission-index order regardless.
  par::ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  const std::vector<std::uint64_t> out =
      par::parallel_map(pool, 500, [](std::size_t i) {
        volatile std::uint64_t sink = 0;
        for (std::size_t k = 0; k < (i * 7919) % 4096; ++k) {
          sink = sink + k;
        }
        return static_cast<std::uint64_t>(i * i);
      });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint64_t>(i * i)) << "index " << i;
  }
}

TEST(ThreadPool, InlineModeRunsOnCallerWithoutWorkers) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 0u);
  const std::vector<int> out =
      par::parallel_map(pool, 16, [](std::size_t i) {
        return static_cast<int>(i) * 3;
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPool, ThrowingTasksRethrowLowestIndexAndPoolSurvives) {
  par::ThreadPool pool(4);
  try {
    par::parallel_for(pool, 100, [](std::size_t i) {
      if (i % 10 == 3) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "parallel_for swallowed the task exceptions";
  } catch (const std::runtime_error& e) {
    // Several tasks threw; the batch must rethrow the lowest index so
    // the error a caller sees does not depend on thread timing.
    EXPECT_STREQ(e.what(), "task 3");
  }

  // The same pool stays usable after an exceptional batch.
  const std::vector<int> out =
      par::parallel_map(pool, 8, [](std::size_t i) {
        return static_cast<int>(i) + 1;
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ParallelOracle, ResultIsIdenticalForEveryJobsValue) {
  sim::Simulator base(sim::make_config(workload::mix("bal1"), 8, 7));
  base.run(4096);
  sim::OracleConfig cfg;
  cfg.quantum_cycles = 512;

  const sim::OracleResult serial = sim::run_oracle(base, 4, cfg, 1);
  const sim::OracleResult parallel = sim::run_oracle(base, 4, cfg, 8);
  EXPECT_EQ(serial.cycles, parallel.cycles);
  EXPECT_EQ(serial.committed, parallel.committed);
  EXPECT_EQ(serial.switches, parallel.switches);
  EXPECT_EQ(serial.quanta_per_policy, parallel.quanta_per_policy);
}

TEST(ParallelOracle, TrialsCrossingChunkBoundariesMatchSerial) {
  // Regression: candidate trials are Simulator copies fanned out to pool
  // workers, while `base` resolved its memoised streams on this thread.
  // Quanta long enough that every trial crosses 4096-instruction chunk
  // boundaries force each copy to fetch fresh chunks on its worker; a
  // ThreadProgram must re-resolve its stream on the executing thread
  // rather than mutate the base's StreamEntry concurrently. TSan runs of
  // this suite (scripts/check_sanitize.sh thread) are the teeth; the
  // serial-vs-parallel equality below is the determinism half.
  // Two SMT threads: per-thread fetch bandwidth is high enough that every
  // candidate walks through several chunks per quantum.
  sim::Simulator base(sim::make_config(workload::mix("bal1"), 2, 7));
  base.run(1024);
  sim::OracleConfig cfg;
  cfg.quantum_cycles = 16384;

  const sim::OracleResult serial = sim::run_oracle(base, 2, cfg, 1);
  const sim::OracleResult parallel = sim::run_oracle(base, 2, cfg, 8);
  EXPECT_EQ(serial.cycles, parallel.cycles);
  EXPECT_EQ(serial.committed, parallel.committed);
  EXPECT_EQ(serial.switches, parallel.switches);
  EXPECT_EQ(serial.quanta_per_policy, parallel.quanta_per_policy);
}

/// One full simulation -> exported metrics as a JSON string. Everything a
/// run can observe is in here, so string equality is run equality.
std::string stats_json_for(const std::string& mix_name) {
  sim::Simulator s(sim::make_config(workload::mix(mix_name), 8, 11));
  s.run(4096);
  s.run(16384);
  obs::MetricsRegistry reg;
  s.export_metrics(reg);
  std::ostringstream os;
  reg.write_json(os);
  return os.str();
}

TEST(ParallelSim, WorkerThreadRunsAreByteIdenticalToSerial) {
  const std::vector<std::string> mixes = {"bal1", "mem8", "ilp8", "ctrl8"};
  std::vector<std::string> serial;
  serial.reserve(mixes.size());
  for (const std::string& m : mixes) serial.push_back(stats_json_for(m));

  par::ThreadPool pool(4);
  const std::vector<std::string> parallel = par::parallel_map(
      pool, mixes.size(),
      [&mixes](std::size_t i) { return stats_json_for(mixes[i]); });

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "mix " << mixes[i];
  }
}

}  // namespace
}  // namespace smt
