// Tests: squash/replay correctness of the pipeline.
//
// These are the trickiest paths in the machine: wrong-path squash at
// branch resolution, full-pipeline syscall flush with replay, and the
// interaction of both with the shared queues and counters.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"

namespace smt::pipeline {
namespace {

Pipeline make_custom(std::vector<workload::AppProfile> profiles,
                     PipelineConfig cfg = PipelineConfig{},
                     std::uint64_t seed = 1) {
  std::vector<workload::ThreadProgram> ps;
  std::uint32_t tid = 0;
  for (const auto& p : profiles) ps.emplace_back(p, tid++, seed);
  return Pipeline(cfg, std::move(ps));
}

workload::AppProfile branchy_profile() {
  workload::AppProfile p = workload::profile("parser");
  p.predictable_sites = 0.2;  // mispredict storm
  p.mix.branch = 0.3;
  return p;
}

workload::AppProfile syscall_profile(double rate) {
  workload::AppProfile p = workload::profile("gzip");
  p.mix.syscall = rate;
  return p;
}

TEST(PipelineSquash, InvariantsHoldUnderMispredictStorm) {
  Pipeline p = make_custom({branchy_profile(), branchy_profile()});
  for (int chunk = 0; chunk < 40; ++chunk) {
    p.run(500);
    ASSERT_TRUE(p.check_counter_invariants()) << "cycle " << p.now();
  }
  EXPECT_GT(p.stats().mispredicts, 100u);
}

TEST(PipelineSquash, InvariantsHoldUnderSyscallStorm) {
  Pipeline p = make_custom({syscall_profile(0.02), branchy_profile()});
  for (int chunk = 0; chunk < 40; ++chunk) {
    p.run(500);
    ASSERT_TRUE(p.check_counter_invariants()) << "cycle " << p.now();
  }
  EXPECT_GT(p.stats().syscall_flushes, 5u);
}

TEST(PipelineSquash, ProgressContinuesAfterManyFlushes) {
  Pipeline p = make_custom({syscall_profile(0.01), syscall_profile(0.01)},
                           PipelineConfig{}, 5);
  p.run(60000);
  EXPECT_GT(p.stats().syscall_flushes, 3u);
  // Both threads keep committing despite repeated whole-machine drains.
  EXPECT_GT(p.counters(0).committed_total, 500u);
  EXPECT_GT(p.counters(1).committed_total, 500u);
}

TEST(PipelineSquash, ReplayPreservesCommittedStreamExactly) {
  // A machine with syscall flushes must commit the same per-thread
  // instruction *stream* as one without stalls would: committed counts of
  // the non-syscall thread grow monotonically and deterministically
  // across two identical runs.
  Pipeline a = make_custom({syscall_profile(0.005), branchy_profile()});
  Pipeline b = make_custom({syscall_profile(0.005), branchy_profile()});
  a.run(30000);
  b.run(30000);
  EXPECT_EQ(a.committed_total(), b.committed_total());
  EXPECT_EQ(a.stats().squashed, b.stats().squashed);
  EXPECT_EQ(a.stats().syscall_flushes, b.stats().syscall_flushes);
}

TEST(PipelineSquash, SquashedNeverCommits) {
  Pipeline p = make_custom({branchy_profile()});
  p.run(30000);
  // Every fetched instruction is committed, squashed, or still in flight;
  // counts must reconcile.
  const PipelineStats& s = p.stats();
  EXPECT_EQ(s.fetched >= s.committed + s.squashed, true);
  EXPECT_LE(s.fetched - s.committed - s.squashed,
            static_cast<std::uint64_t>(p.config().rob_per_thread));
}

TEST(PipelineSquash, MispredictPenaltyStallsFetch) {
  // With a huge mispredict penalty, a mispredict-heavy single thread
  // commits far less than with a small penalty.
  PipelineConfig fast;
  fast.mispredict_penalty = 1;
  PipelineConfig slow;
  slow.mispredict_penalty = 40;
  Pipeline a = make_custom({branchy_profile()}, fast);
  Pipeline b = make_custom({branchy_profile()}, slow);
  a.run(20000);
  b.run(20000);
  EXPECT_GT(a.committed_total(), b.committed_total());
}

TEST(PipelineSquash, WrongPathFractionRisesWithMispredicts) {
  workload::AppProfile predictable = workload::profile("gzip");
  predictable.predictable_sites = 1.0;
  Pipeline clean = make_custom({predictable, predictable});
  Pipeline dirty = make_custom({branchy_profile(), branchy_profile()});
  clean.run(20000);
  dirty.run(20000);
  const auto frac = [](const PipelineStats& s) {
    return s.fetched ? static_cast<double>(s.fetched_wrong_path) /
                           static_cast<double>(s.fetched)
                     : 0.0;
  };
  EXPECT_LT(frac(clean.stats()), frac(dirty.stats()));
}

TEST(PipelineSquash, CounterInvariantsAcrossAllDefaultMixApps) {
  // Broad sweep: every profile runs alone and pairwise with a thrashy
  // partner without breaking counter bookkeeping.
  for (const char* app : {"gzip", "mcf", "swim", "art", "gcc", "sixtrack"}) {
    Pipeline p = make_custom(
        {workload::profile(app), workload::profile("art")});
    p.run(8000);
    ASSERT_TRUE(p.check_counter_invariants()) << app;
  }
}

TEST(PipelineSquash, TinyQueuesStillCorrect) {
  PipelineConfig cfg;
  cfg.int_iq_size = 4;
  cfg.fp_iq_size = 4;
  cfg.lsq_size = 4;
  cfg.fetch_buffer_cap = 4;
  cfg.int_rename_regs = 12;
  cfg.fp_rename_regs = 12;
  Pipeline p = make_custom({branchy_profile(), workload::profile("swim")},
                           cfg);
  for (int chunk = 0; chunk < 20; ++chunk) {
    p.run(500);
    ASSERT_TRUE(p.check_counter_invariants()) << "cycle " << p.now();
  }
  EXPECT_GT(p.committed_total(), 100u);
}

TEST(PipelineSquash, SingleEntryFetchBufferStillProgresses) {
  PipelineConfig cfg;
  cfg.fetch_buffer_cap = 1;
  Pipeline p = make_custom({workload::profile("gzip")}, cfg);
  p.run(10000);
  EXPECT_GT(p.committed_total(), 500u);
  EXPECT_TRUE(p.check_counter_invariants());
}

}  // namespace
}  // namespace smt::pipeline
