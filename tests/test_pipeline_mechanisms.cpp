// Mechanism-isolation tests: each pins one microarchitectural behaviour
// of the pipeline using a purpose-built workload profile.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workload/app_profile.hpp"

namespace smt::pipeline {
namespace {

/// A branch-free, dependency-free, cache-resident profile: the pipeline
/// should stream it at full fetch bandwidth.
workload::AppProfile straightline() {
  workload::AppProfile p = workload::profile("gzip");
  p.mix.branch = 0.0;     // is_branch_pc threshold 0 → no branches at all
  p.mix.syscall = 0.0;
  p.mix.load = 0.05;
  p.mix.store = 0.02;
  p.mix.int_alu = 0.93;
  p.mean_dep_distance = 16.0;
  p.working_set_bytes = 4096;
  p.hot_set_bytes = 2048;
  p.hot_fraction = 1.0;
  p.code_bytes = 8192;
  p.phases = {workload::PhaseKind::kBase};
  return p;
}

workload::AppProfile branch_storm() {
  workload::AppProfile p = workload::profile("gzip");
  p.mix.branch = 10.0;  // dominate the mix: (almost) every PC is a branch
  p.predictable_sites = 1.0;
  p.phases = {workload::PhaseKind::kBase};
  return p;
}

Pipeline single(const workload::AppProfile& prof,
                PipelineConfig cfg = PipelineConfig{}) {
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(prof, 0, 1);
  return Pipeline(cfg, std::move(ps));
}

TEST(Mechanism, StraightlineCodeFetchesFullBlocks) {
  Pipeline p = single(straightline());
  // Walk the whole (small) code segment once so every block's compulsory
  // I-miss is behind us, then measure sustained fetch bandwidth.
  p.run(30000);
  const std::uint64_t fetched_before = p.stats().fetched;
  p.run(500);
  const double per_cycle =
      static_cast<double>(p.stats().fetched - fetched_before) / 500.0;
  // One thread's sustained rate is bounded by the per-thread front-end
  // buffer over the front-end depth (12/5 ≈ 2.4, see PipelineConfig);
  // warm straightline code must saturate that bound.
  EXPECT_GT(per_cycle, 2.2);
  EXPECT_LE(per_cycle, 2.5);
}

TEST(Mechanism, TakenBranchesFragmentFetch) {
  Pipeline p = single(branch_storm());
  p.run(2000);
  const std::uint64_t fetched_before = p.stats().fetched;
  p.run(500);
  const double per_cycle =
      static_cast<double>(p.stats().fetched - fetched_before) / 500.0;
  // Every instruction is a branch; roughly half are taken, so fetch
  // groups collapse to a couple of instructions.
  EXPECT_LT(per_cycle, 4.0);
}

TEST(Mechanism, RenameRegisterStarvationThrottles) {
  PipelineConfig rich;
  PipelineConfig poor;
  poor.int_rename_regs = 6;
  poor.fp_rename_regs = 6;
  Pipeline a = single(straightline(), rich);
  Pipeline b = single(straightline(), poor);
  a.run(20000);
  b.run(20000);
  EXPECT_GT(a.committed_total(), b.committed_total() * 1.1);
  EXPECT_TRUE(b.check_counter_invariants());
}

TEST(Mechanism, BtbMissPenaltyCostsThroughput) {
  PipelineConfig fast;
  fast.btb_miss_penalty = 0;
  PipelineConfig slow;
  slow.btb_miss_penalty = 12;
  // Large code footprint → BTB (1K entries) thrashes → penalties bite.
  workload::AppProfile p = workload::profile("gcc");
  p.phases = {workload::PhaseKind::kBase};
  Pipeline a = single(p, fast);
  Pipeline b = single(p, slow);
  a.run(30000);
  b.run(30000);
  EXPECT_GT(a.committed_total(), b.committed_total());
}

TEST(Mechanism, MispredictRateNearZeroForFullyBiasedSites) {
  workload::AppProfile p = branch_storm();  // predictable_sites = 1.0
  Pipeline pipe = single(p);
  pipe.run(40000);
  const auto& st = pipe.stats();
  ASSERT_GT(st.branches_resolved, 1000u);
  EXPECT_LT(static_cast<double>(st.mispredicts) /
                static_cast<double>(st.branches_resolved),
            0.08);
}

TEST(Mechanism, SmallerL1RaisesMissRate) {
  PipelineConfig big;
  PipelineConfig small;
  small.memory.l1d = mem::CacheConfig{"L1D", 4 * 1024, 32, 4};
  workload::AppProfile prof = workload::profile("gap");
  Pipeline a = single(prof, big);
  Pipeline b = single(prof, small);
  a.run(30000);
  b.run(30000);
  EXPECT_GT(b.memory().l1d().miss_rate(), a.memory().l1d().miss_rate());
}

TEST(Mechanism, LongerMemoryLatencyLowersThroughput) {
  PipelineConfig near;
  near.memory.mem_latency = 20;
  PipelineConfig far;
  far.memory.mem_latency = 200;
  Pipeline a = single(workload::profile("mcf"), near);
  Pipeline b = single(workload::profile("mcf"), far);
  a.run(30000);
  b.run(30000);
  EXPECT_GT(a.committed_total(), b.committed_total());
}

TEST(Mechanism, DeeperFrontEndHurtsMispredictRecovery) {
  PipelineConfig shallow;
  shallow.frontend_delay = 1;
  PipelineConfig deep;
  deep.frontend_delay = 12;
  workload::AppProfile p = workload::profile("parser");
  p.predictable_sites = 0.3;  // mispredict-heavy
  p.phases = {workload::PhaseKind::kBase};
  Pipeline a = single(p, shallow);
  Pipeline b = single(p, deep);
  a.run(30000);
  b.run(30000);
  EXPECT_GT(a.committed_total(), b.committed_total());
}

}  // namespace
}  // namespace smt::pipeline
