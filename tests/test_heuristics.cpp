// Unit tests: ADTS policy-determination heuristics (core/heuristics.hpp).
#include <gtest/gtest.h>

#include "core/heuristics.hpp"

namespace smt::core {
namespace {

using policy::FetchPolicy;

constexpr SystemConditions kNone{false, false};
constexpr SystemConditions kMem{true, false};
constexpr SystemConditions kBr{false, true};
constexpr SystemConditions kBoth{true, true};

std::optional<Decision> decide(HeuristicType h, FetchPolicy inc,
                               SystemConditions c, double last = 1.0,
                               double prev = 2.0,
                               const SwitchHistory* hist = nullptr) {
  return determine_next_policy(h, inc, c, last, prev, hist);
}

TEST(Heuristics, FiveTypes) {
  EXPECT_EQ(all_heuristics().size(), 5u);
  EXPECT_EQ(name(HeuristicType::kType3Prime), "Type3'");
}

// --- Type 1: blind toggle ----------------------------------------------
TEST(Heuristics, Type1TogglesIcountBrcount) {
  auto d = decide(HeuristicType::kType1, FetchPolicy::kIcount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
  d = decide(HeuristicType::kType1, FetchPolicy::kBrcount, kBoth);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kIcount);
}

TEST(Heuristics, Type1IgnoresConditionsAndGradient) {
  // Even with improving IPC and no conditions, Type 1 switches.
  auto d = decide(HeuristicType::kType1, FetchPolicy::kIcount, kNone,
                  /*last=*/5.0, /*prev=*/1.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
}

// --- Type 2: three-state cycle ------------------------------------------
TEST(Heuristics, Type2CyclesThreeStates) {
  auto d = decide(HeuristicType::kType2, FetchPolicy::kIcount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kL1MissCount);
  d = decide(HeuristicType::kType2, FetchPolicy::kL1MissCount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
  d = decide(HeuristicType::kType2, FetchPolicy::kBrcount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kIcount);
}

// --- Type 3: condition-driven FSM ---------------------------------------
TEST(Heuristics, Type3FromIcountBranchPressureWins) {
  auto d = decide(HeuristicType::kType3, FetchPolicy::kIcount, kBr);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
  EXPECT_TRUE(d->cond_value);
}

TEST(Heuristics, Type3FromIcountMemPressure) {
  auto d = decide(HeuristicType::kType3, FetchPolicy::kIcount, kMem);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kL1MissCount);
}

TEST(Heuristics, Type3FromIcountNoConditionsStays) {
  EXPECT_FALSE(decide(HeuristicType::kType3, FetchPolicy::kIcount, kNone));
}

TEST(Heuristics, Type3FromBrcountUsesCondMem) {
  auto d = decide(HeuristicType::kType3, FetchPolicy::kBrcount, kMem);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kL1MissCount);
  d = decide(HeuristicType::kType3, FetchPolicy::kBrcount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kIcount) << "paper: !COND_MEM → ICOUNT";
}

TEST(Heuristics, Type3FromL1MissUsesCondBr) {
  auto d = decide(HeuristicType::kType3, FetchPolicy::kL1MissCount, kBr);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
  d = decide(HeuristicType::kType3, FetchPolicy::kL1MissCount, kNone);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kIcount);
}

TEST(Heuristics, Type3IgnoresGradient) {
  auto d = decide(HeuristicType::kType3, FetchPolicy::kIcount, kBr,
                  /*last=*/3.0, /*prev=*/1.0);
  EXPECT_TRUE(d) << "plain Type 3 has no gradient rule";
}

// --- Type 3′: gradient rule ---------------------------------------------
TEST(Heuristics, Type3PrimeHoldsWhileImproving) {
  EXPECT_FALSE(decide(HeuristicType::kType3Prime, FetchPolicy::kIcount, kBr,
                      /*last=*/2.0, /*prev=*/1.0));
}

TEST(Heuristics, Type3PrimeSwitchesWhileDeclining) {
  auto d = decide(HeuristicType::kType3Prime, FetchPolicy::kIcount, kBr,
                  /*last=*/1.0, /*prev=*/2.0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
}

// --- Type 4: history reversal -------------------------------------------
TEST(Heuristics, Type4FollowsRegularWithPositiveHistory) {
  SwitchHistory h;
  h.record(FetchPolicy::kIcount, true, true);
  h.record(FetchPolicy::kIcount, true, true);
  h.record(FetchPolicy::kIcount, true, false);
  auto d = decide(HeuristicType::kType4, FetchPolicy::kIcount, kBr, 1.0, 2.0,
                  &h);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kBrcount);
  EXPECT_FALSE(d->reversed);
}

TEST(Heuristics, Type4ReversesWithNegativeHistory) {
  SwitchHistory h;
  h.record(FetchPolicy::kIcount, true, false);
  h.record(FetchPolicy::kIcount, true, false);
  auto d = decide(HeuristicType::kType4, FetchPolicy::kIcount, kBr, 1.0, 2.0,
                  &h);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kL1MissCount)
      << "paper §4.3.2: opposite of the regular BRCOUNT transition";
  EXPECT_TRUE(d->reversed);
}

TEST(Heuristics, Type4EmptyHistoryActsRegular) {
  SwitchHistory h;
  auto d = decide(HeuristicType::kType4, FetchPolicy::kBrcount, kMem, 1.0,
                  2.0, &h);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->next, FetchPolicy::kL1MissCount);
  EXPECT_FALSE(d->reversed);
}

TEST(Heuristics, Type4KeepsGradientRule) {
  SwitchHistory h;
  EXPECT_FALSE(decide(HeuristicType::kType4, FetchPolicy::kIcount, kBoth,
                      /*last=*/2.0, /*prev=*/1.0, &h));
}

// --- condition evaluation ------------------------------------------------
TEST(Heuristics, ConditionsUseThresholds) {
  ConditionThresholds t;
  t.l1_miss_per_cycle = 0.2;
  t.lsq_full_per_cycle = 0.4;
  t.mispredict_per_cycle = 0.02;
  t.cond_branch_per_cycle = 0.38;

  pipeline::QuantumRates r;
  r.l1_misses_per_cycle = 0.25;  // above
  SystemConditions c = evaluate_conditions(r, t);
  EXPECT_TRUE(c.cond_mem);
  EXPECT_FALSE(c.cond_br);

  r = pipeline::QuantumRates{};
  r.lsq_full_per_cycle = 0.5;  // other sub-condition of COND_MEM
  c = evaluate_conditions(r, t);
  EXPECT_TRUE(c.cond_mem);

  r = pipeline::QuantumRates{};
  r.mispredicts_per_cycle = 0.03;
  c = evaluate_conditions(r, t);
  EXPECT_TRUE(c.cond_br);
  EXPECT_FALSE(c.cond_mem);

  r = pipeline::QuantumRates{};
  r.cond_branches_per_cycle = 0.4;
  c = evaluate_conditions(r, t);
  EXPECT_TRUE(c.cond_br);

  c = evaluate_conditions(pipeline::QuantumRates{}, t);
  EXPECT_FALSE(c.cond_mem);
  EXPECT_FALSE(c.cond_br);
}

// --- FSM closure property -------------------------------------------------
class FsmClosure
    : public ::testing::TestWithParam<std::tuple<HeuristicType, int>> {};

TEST_P(FsmClosure, TransitionsStayWithinTheThreeStates) {
  const auto [h, cbits] = GetParam();
  const SystemConditions conds{(cbits & 1) != 0, (cbits & 2) != 0};
  for (FetchPolicy inc : {FetchPolicy::kIcount, FetchPolicy::kBrcount,
                          FetchPolicy::kL1MissCount}) {
    SwitchHistory hist;
    const auto d = determine_next_policy(h, inc, conds, 1.0, 2.0, &hist);
    if (d.has_value()) {
      EXPECT_TRUE(d->next == FetchPolicy::kIcount ||
                  d->next == FetchPolicy::kBrcount ||
                  d->next == FetchPolicy::kL1MissCount);
      EXPECT_NE(d->next, inc) << "a switch decision must change policy";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristicsAllConditions, FsmClosure,
    ::testing::Combine(::testing::ValuesIn(all_heuristics()),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace smt::core
