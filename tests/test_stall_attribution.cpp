// Property tests: fetch-slot stall attribution (obs::StallBreakdown
// maintained by Pipeline::do_fetch).
//
// The load-bearing property is conservation: every fetch slot of every
// cycle is either used by a thread, absorbed by the detector thread, or
// charged to exactly one stall cause — never lost, never double-counted.
#include <gtest/gtest.h>

#include "obs/stall.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace smt::pipeline {
namespace {

sim::SimConfig quick_sim(const char* mix_name, bool adts = false) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.adts.quantum_cycles = 1024;
  cfg.use_adts = adts;
  return cfg;
}

std::uint64_t total_charged(const Pipeline& p) {
  std::uint64_t sum = p.machine_stall_breakdown().total();
  for (std::uint32_t tid = 0; tid < p.num_threads(); ++tid) {
    sum += p.stall_breakdown(tid).total();
  }
  return sum;
}

TEST(StallAttribution, WholeRunConservationAcrossMixes) {
  for (const char* mix : {"bal1", "mem8", "ilp8", "ctrl8"}) {
    for (const bool adts : {false, true}) {
      sim::Simulator s(quick_sim(mix, adts));
      s.run(16 * 1024);
      const PipelineStats& st = s.pipeline().stats();
      const std::uint64_t slots =
          st.cycles * s.pipeline().config().fetch_width;
      // Existing machine invariant: every slot is fetched or idle.
      EXPECT_EQ(st.fetched + st.fetch_slots_idle, slots) << mix;
      // New attribution invariant: every idle slot is either absorbed by
      // the DT or charged to exactly one cause.
      EXPECT_EQ(total_charged(s.pipeline()) + st.dt_slots_used,
                st.fetch_slots_idle)
          << mix << (adts ? " (adts)" : " (fixed)");
      EXPECT_EQ(total_charged(s.pipeline()),
                s.pipeline().charged_stall_slots());
    }
  }
}

TEST(StallAttribution, PerCycleConservation) {
  sim::Simulator s(quick_sim("mem8", /*adts=*/true));
  const std::uint32_t width = s.pipeline().config().fetch_width;
  std::uint64_t prev_fetched = 0;
  std::uint64_t prev_charged = 0;
  std::uint64_t prev_dt = 0;
  for (int cycle = 0; cycle < 4096; ++cycle) {
    s.step();
    const PipelineStats& st = s.pipeline().stats();
    const std::uint64_t charged = total_charged(s.pipeline());
    const std::uint64_t fetched_d = st.fetched - prev_fetched;
    const std::uint64_t charged_d = charged - prev_charged;
    const std::uint64_t dt_d = st.dt_slots_used - prev_dt;
    ASSERT_EQ(fetched_d + charged_d + dt_d, width) << "cycle " << cycle;
    prev_fetched = st.fetched;
    prev_charged = charged;
    prev_dt = st.dt_slots_used;
  }
}

TEST(StallAttribution, BlockedFetchChargesTheBlackoutCause) {
  sim::Simulator s(quick_sim("ilp8"));
  s.run(1024);  // warm the pipeline so other causes are settled
  const std::uint64_t before =
      s.pipeline().stall_breakdown(3)[obs::StallCause::kFetchBlackout];
  s.pipeline().block_fetch(3, s.now() + 512);
  s.run(512);
  const std::uint64_t after =
      s.pipeline().stall_breakdown(3)[obs::StallCause::kFetchBlackout];
  EXPECT_GT(after, before);
}

TEST(StallAttribution, IcacheMissesAreChargedToTheStalledThread) {
  // Any mix fetching through real caches incurs I-miss stalls early.
  sim::Simulator s(quick_sim("mem8"));
  s.run(2048);
  std::uint64_t icache_charges = 0;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    icache_charges +=
        s.pipeline().stall_breakdown(tid)[obs::StallCause::kIcacheMiss];
  }
  EXPECT_GT(icache_charges, 0u);
}

TEST(StallAttribution, BreakdownSurvivesQuantumCounterResets) {
  // The breakdown is pipeline-lifetime: resetting the quantum counters
  // (what the detector does each boundary) must not clear it, or the
  // whole-run conservation law would break.
  sim::Simulator s(quick_sim("bal1"));
  s.run(2048);
  const std::uint64_t before = total_charged(s.pipeline());
  ASSERT_GT(before, 0u);
  s.pipeline().reset_quantum_counters();
  EXPECT_EQ(total_charged(s.pipeline()), before);
}

TEST(CounterEpochs, QuantumResetBumpsOnlyTheQuantumEpoch) {
  sim::Simulator s(quick_sim("bal1"));
  s.run(128);
  const std::uint64_t q0 = s.pipeline().quantum_epoch(2);
  const std::uint64_t l0 = s.pipeline().life_epoch(2);
  s.pipeline().reset_quantum_counters();
  EXPECT_EQ(s.pipeline().quantum_epoch(2), q0 + 1);
  EXPECT_EQ(s.pipeline().life_epoch(2), l0);
}

TEST(CounterEpochs, SwapProgramBumpsBothEpochs) {
  sim::Simulator s(quick_sim("bal1"));
  s.run(128);
  const std::uint64_t q0 = s.pipeline().quantum_epoch(5);
  const std::uint64_t l0 = s.pipeline().life_epoch(5);
  workload::ThreadProgram incoming(workload::profile("gzip"), 5, 77);
  auto outgoing = s.pipeline().swap_program(5, std::move(incoming), 64);
  EXPECT_EQ(s.pipeline().quantum_epoch(5), q0 + 1);
  EXPECT_EQ(s.pipeline().life_epoch(5), l0 + 1);
  EXPECT_EQ(s.pipeline().counters(5).fetched_total, 0u);
  (void)outgoing;
}

TEST(StallAttribution, FetchedTotalMatchesMachineFetched) {
  sim::Simulator s(quick_sim("ctrl8"));
  s.run(4096);
  std::uint64_t per_thread = 0;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    per_thread += s.pipeline().counters(tid).fetched_total;
  }
  EXPECT_EQ(per_thread, s.pipeline().stats().fetched);
}

}  // namespace
}  // namespace smt::pipeline
