// Unit tests: the detector thread (core/detector.hpp).
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "workload/app_profile.hpp"

namespace smt::core {
namespace {

pipeline::Pipeline make_pipe(std::initializer_list<const char*> apps,
                             std::uint64_t seed = 1) {
  std::vector<workload::ThreadProgram> ps;
  std::uint32_t tid = 0;
  for (const char* a : apps) {
    ps.emplace_back(workload::profile(a), tid++, seed);
  }
  return pipeline::Pipeline(pipeline::PipelineConfig{}, std::move(ps));
}

AdtsConfig quick_cfg() {
  AdtsConfig cfg;
  cfg.quantum_cycles = 1024;  // short quanta for fast tests
  return cfg;
}

void run_with_detector(pipeline::Pipeline& pipe, DetectorThread& dt,
                       std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) {
    pipe.step();
    dt.tick(pipe);
  }
}

TEST(Detector, CountsQuanta) {
  pipeline::Pipeline pipe = make_pipe({"gzip", "mcf"});
  AdtsConfig cfg = quick_cfg();
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 10 * 1024);
  EXPECT_EQ(dt.stats().quanta, 10u);
}

TEST(Detector, RejectsZeroQuantum) {
  AdtsConfig cfg;
  cfg.quantum_cycles = 0;
  EXPECT_THROW(DetectorThread{cfg}, std::invalid_argument);
}

TEST(Detector, HighThresholdTriggersLowThroughputEveryQuantum) {
  pipeline::Pipeline pipe = make_pipe({"mcf", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;  // unreachable
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 8 * 1024);
  EXPECT_EQ(dt.stats().low_throughput_quanta, dt.stats().quanta);
}

TEST(Detector, ZeroThresholdNeverTriggers) {
  pipeline::Pipeline pipe = make_pipe({"gzip", "crafty"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 0.0;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 8 * 1024);
  EXPECT_EQ(dt.stats().low_throughput_quanta, 0u);
  EXPECT_EQ(dt.stats().switches, 0u);
}

TEST(Detector, Type1SwitchesOnLowThroughput) {
  pipeline::Pipeline pipe = make_pipe({"mcf", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.heuristic = HeuristicType::kType1;
  cfg.instant_switch = true;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 4 * 1024);
  EXPECT_GT(dt.stats().switches, 0u);
  // Type 1 toggles ICOUNT ⇄ BRCOUNT; after an odd number of boundary
  // switches the policy is one of the two.
  const auto pol = pipe.policy();
  EXPECT_TRUE(pol == policy::FetchPolicy::kIcount ||
              pol == policy::FetchPolicy::kBrcount);
}

TEST(Detector, InstantSwitchAppliesAtBoundary) {
  pipeline::Pipeline pipe = make_pipe({"mcf", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.heuristic = HeuristicType::kType2;
  cfg.instant_switch = true;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 1024);
  EXPECT_EQ(pipe.policy(), policy::FetchPolicy::kL1MissCount)
      << "Type 2 from ICOUNT goes to L1MISSCOUNT at the first boundary";
}

TEST(Detector, DtCostDelaysSwitchUntilWorkDrains) {
  pipeline::Pipeline pipe = make_pipe({"mcf", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.heuristic = HeuristicType::kType2;
  cfg.instant_switch = false;
  cfg.dt_check_instrs = 4;
  cfg.dt_decide_instrs = 64;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 1024);  // boundary reached, work queued
  EXPECT_EQ(pipe.policy(), policy::FetchPolicy::kIcount)
      << "switch must not be visible at the boundary itself";
  run_with_detector(pipe, dt, 512);  // idle slots drain the DT work
  EXPECT_EQ(pipe.policy(), policy::FetchPolicy::kL1MissCount);
  EXPECT_EQ(dt.stats().switches, 1u);
}

TEST(Detector, SaturatedPipelineSkipsSwitches) {
  pipeline::Pipeline pipe = make_pipe(
      {"gzip", "crafty", "eon", "bzip2", "sixtrack", "mesa", "wupwise",
       "gap"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;       // always low per the detector
  cfg.dt_check_instrs = 1u << 20;  // absurd cost: DT can never finish
  cfg.dt_decide_instrs = 1u << 20;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 8 * 1024);
  EXPECT_EQ(dt.stats().switches, 0u);
  EXPECT_GT(dt.stats().switches_skipped_dt_busy, 0u);
}

TEST(Detector, ScoresSwitchOutcomes) {
  pipeline::Pipeline pipe = make_pipe({"gcc", "mcf", "parser", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.heuristic = HeuristicType::kType2;
  cfg.instant_switch = true;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 20 * 1024);
  // Every applied switch is scored one quantum later; only the most
  // recent one may still be pending at run end.
  const std::uint64_t scored =
      dt.stats().benign_switches + dt.stats().malignant_switches;
  EXPECT_GE(scored + 1, dt.stats().switches);
  EXPECT_LE(scored, dt.stats().switches);
  EXPECT_GE(dt.stats().benign_fraction(), 0.0);
  EXPECT_LE(dt.stats().benign_fraction(), 1.0);
}

TEST(Detector, QuantaPerPolicySumToQuanta) {
  pipeline::Pipeline pipe = make_pipe({"gcc", "mcf"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 2.0;
  cfg.instant_switch = true;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 12 * 1024);
  std::uint64_t sum = 0;
  for (const auto q : dt.stats().quanta_per_policy) sum += q;
  EXPECT_EQ(sum, dt.stats().quanta);
}

TEST(Detector, IdentifiesCloggingThread) {
  // One pathological thread (unpredictable, memory-hungry) next to a tame
  // one: when the machine reports low throughput, the detector should
  // eventually flag a clogger at a modest share threshold.
  workload::AppProfile bad = workload::profile("art");
  bad.mix.load = 0.5;
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(bad, 0, 1);
  ps.emplace_back(workload::profile("gzip"), 1, 1);
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));

  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.clog_icount_share = 0.65;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 30 * 1024);
  EXPECT_GT(dt.stats().clog_flags, 0u);
}

TEST(Detector, ClogControlBlocksFetch) {
  workload::AppProfile bad = workload::profile("art");
  bad.mix.load = 0.5;
  std::vector<workload::ThreadProgram> ps;
  ps.emplace_back(bad, 0, 1);
  ps.emplace_back(workload::profile("gzip"), 1, 1);
  pipeline::Pipeline pipe(pipeline::PipelineConfig{}, std::move(ps));

  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.clog_icount_share = 0.65;
  cfg.enable_clog_control = true;
  cfg.clog_block_cycles = 256;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 30 * 1024);
  EXPECT_GT(dt.stats().clog_flags, 0u);
  EXPECT_GT(pipe.committed_total(), 0u);
}

TEST(Detector, ResetsQuantumCountersEachBoundary) {
  pipeline::Pipeline pipe = make_pipe({"gzip", "gcc"});
  AdtsConfig cfg = quick_cfg();
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 1024);  // exactly one boundary
  // Counters were reset at the boundary; within the next few cycles the
  // quantum accumulators restart from near zero.
  EXPECT_LT(pipe.counters(0).committed_quantum, 200u);
}

TEST(Detector, Type4RecordsHistory) {
  pipeline::Pipeline pipe = make_pipe({"gcc", "parser", "mcf", "art"});
  AdtsConfig cfg = quick_cfg();
  cfg.ipc_threshold = 100.0;
  cfg.heuristic = HeuristicType::kType4;
  cfg.instant_switch = true;
  DetectorThread dt(cfg);
  run_with_detector(pipe, dt, 40 * 1024);
  // After many scored switches, at least one history cell is populated.
  std::uint32_t total = 0;
  for (policy::FetchPolicy p : policy::all_policies()) {
    for (bool c : {false, true}) {
      total += dt.history().counts(p, c).poscnt +
               dt.history().counts(p, c).negcnt;
    }
  }
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace smt::core
