// Unit tests: two-level hierarchy (mem/hierarchy.hpp).
#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"

namespace smt::mem {
namespace {

HierarchyConfig tiny() {
  HierarchyConfig cfg;
  cfg.l1i = CacheConfig{"L1I", 1024, 32, 2};
  cfg.l1d = CacheConfig{"L1D", 1024, 32, 2};
  cfg.l2 = CacheConfig{"L2", 8192, 64, 4};
  cfg.l1_latency = 1;
  cfg.l2_latency = 10;
  cfg.mem_latency = 100;
  cfg.max_threads = 4;
  return cfg;
}

TEST(Hierarchy, ColdAccessCostsMemoryLatency) {
  Hierarchy h(tiny());
  const AccessResult r = h.lookup_data(0, 0x1000, false);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_TRUE(r.l2_miss);
  EXPECT_EQ(r.latency, 100u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h(tiny());
  h.lookup_data(0, 0x1000, false);
  const AccessResult r = h.lookup_data(0, 0x1000, false);
  EXPECT_FALSE(r.l1_miss);
  EXPECT_EQ(r.latency, 1u);
}

TEST(Hierarchy, L1EvictionFallsBackToL2) {
  Hierarchy h(tiny());
  // L1D: 16 sets... 1024/(32*2)=16 sets. Fill set of 0x0 with 2 ways then
  // a third conflicting line -> first evicted, but L2 still holds it.
  const std::uint64_t stride = 16 * 32;  // set span
  h.lookup_data(0, 0, false);
  h.lookup_data(0, stride, false);
  h.lookup_data(0, 2 * stride, false);  // evicts line 0 from L1
  const AccessResult r = h.lookup_data(0, 0, false);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss);
  EXPECT_EQ(r.latency, 10u);
}

TEST(Hierarchy, InstrAndDataStreamsSeparateAtL1ShareL2) {
  Hierarchy h(tiny());
  h.lookup_instr(0, 0x2000);
  // Same address via the data port: misses L1D (separate), hits L2.
  const AccessResult r = h.lookup_data(0, 0x2000, false);
  EXPECT_TRUE(r.l1_miss);
  EXPECT_FALSE(r.l2_miss);
}

TEST(Hierarchy, PerThreadStatsAreSeparate) {
  Hierarchy h(tiny());
  h.lookup_data(0, 0x100, false);
  h.lookup_data(0, 0x100, false);
  h.lookup_data(1, 0x5000, false);
  EXPECT_EQ(h.data_stats(0).accesses, 2u);
  EXPECT_EQ(h.data_stats(0).l1_misses, 1u);
  EXPECT_EQ(h.data_stats(1).accesses, 1u);
  EXPECT_EQ(h.data_stats(1).l1_misses, 1u);
  EXPECT_EQ(h.instr_stats(0).accesses, 0u);
}

TEST(Hierarchy, ThreadsShareTheCaches) {
  Hierarchy h(tiny());
  h.lookup_data(0, 0x3000, false);
  // Another thread touching the same line hits: the L1 is shared.
  const AccessResult r = h.lookup_data(1, 0x3000, false);
  EXPECT_FALSE(r.l1_miss);
}

TEST(Hierarchy, ResetThreadStatsKeepsCacheContents) {
  Hierarchy h(tiny());
  h.lookup_data(0, 0x40, false);
  h.reset_thread_stats();
  EXPECT_EQ(h.data_stats(0).accesses, 0u);
  const AccessResult r = h.lookup_data(0, 0x40, false);
  EXPECT_FALSE(r.l1_miss) << "reset must not flush the cache";
}

TEST(Hierarchy, WritePropagatesDirtyInstall) {
  Hierarchy h(tiny());
  h.lookup_data(0, 0x80, true);
  EXPECT_EQ(h.l1d().dirty_evictions(), 0u);
  // Conflict-evict the dirty line.
  const std::uint64_t stride = 16 * 32;
  h.lookup_data(0, 0x80 + stride, false);
  h.lookup_data(0, 0x80 + 2 * stride, false);
  EXPECT_EQ(h.l1d().dirty_evictions(), 1u);
}

TEST(Hierarchy, DefaultConfigMatchesDesignDoc) {
  const HierarchyConfig cfg;
  EXPECT_EQ(cfg.l1i.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.l1_latency, 1u);
  EXPECT_GE(cfg.mem_latency, cfg.l2_latency);
}

}  // namespace
}  // namespace smt::mem
