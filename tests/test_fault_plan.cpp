// Unit tests: the fault plan and injector (src/fault/).
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace smt::fault {
namespace {

FaultConfig all_faults(std::uint64_t seed = 0xFA017) {
  FaultConfig f;
  f.enabled = true;
  f.seed = seed;
  f.counter_noise_prob = 0.3;
  f.counter_freeze_prob = 0.2;
  f.counter_corrupt_prob = 0.2;
  f.dt_stall_prob = 0.2;
  f.switch_drop_prob = 0.2;
  f.switch_delay_prob = 0.2;
  f.blackout_prob = 0.2;
  return f;
}

bool same_quantum(const QuantumFaults& a, const QuantumFaults& b) {
  if (a.counters.size() != b.counters.size()) return false;
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    if (a.counters[i].kind != b.counters[i].kind ||
        a.counters[i].scale != b.counters[i].scale ||
        a.counters[i].garbage_seed != b.counters[i].garbage_seed) {
      return false;
    }
  }
  return a.dt_stall_start == b.dt_stall_start &&
         a.dt_stall_quanta == b.dt_stall_quanta &&
         a.drop_switch == b.drop_switch &&
         a.delay_switch == b.delay_switch &&
         a.delay_quanta == b.delay_quanta && a.blackout == b.blackout &&
         a.blackout_tid == b.blackout_tid &&
         a.blackout_cycles == b.blackout_cycles;
}

TEST(FaultPlan, DisabledUnlessEnabledAndRatesSet) {
  EXPECT_FALSE(FaultPlan{}.enabled());

  FaultConfig armed_but_quiet;
  armed_but_quiet.enabled = true;  // no rates configured
  EXPECT_FALSE(FaultPlan(armed_but_quiet).enabled());

  FaultConfig rates_but_disarmed = all_faults();
  rates_but_disarmed.enabled = false;
  EXPECT_FALSE(FaultPlan(rates_but_disarmed).enabled());

  EXPECT_TRUE(FaultPlan(all_faults()).enabled());
}

TEST(FaultPlan, DisabledPlanSchedulesNothing) {
  FaultConfig cfg = all_faults();
  cfg.enabled = false;
  const FaultPlan plan(cfg);
  for (std::uint64_t q = 0; q < 32; ++q) {
    const QuantumFaults f = plan.for_quantum(q, 8);
    EXPECT_EQ(f.mask(), kFaultNone);
  }
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultPlan a(all_faults());
  const FaultPlan b(all_faults());
  for (std::uint64_t q = 0; q < 64; ++q) {
    EXPECT_TRUE(same_quantum(a.for_quantum(q, 8), b.for_quantum(q, 8)))
        << "quantum " << q;
  }
}

TEST(FaultPlan, ScheduleIsOrderIndependent) {
  const FaultPlan plan(all_faults());
  std::vector<QuantumFaults> forward;
  for (std::uint64_t q = 0; q < 64; ++q) {
    forward.push_back(plan.for_quantum(q, 8));
  }
  for (std::uint64_t q = 64; q-- > 0;) {
    EXPECT_TRUE(same_quantum(forward[q], plan.for_quantum(q, 8)))
        << "quantum " << q;
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultPlan a(all_faults(1));
  const FaultPlan b(all_faults(2));
  int mismatches = 0;
  for (std::uint64_t q = 0; q < 64; ++q) {
    if (!same_quantum(a.for_quantum(q, 8), b.for_quantum(q, 8))) ++mismatches;
  }
  EXPECT_GT(mismatches, 0);
}

TEST(FaultPlan, NoiseScaleStaysWithinMagnitudeBounds) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.counter_noise_prob = 1.0;
  cfg.counter_noise_magnitude = 0.3;
  const FaultPlan plan(cfg);
  for (std::uint64_t q = 0; q < 128; ++q) {
    for (const CounterFault& f : plan.for_quantum(q, 8).counters) {
      ASSERT_EQ(f.kind, CounterFaultKind::kNoise);
      EXPECT_GE(f.scale, 0.7);
      EXPECT_LE(f.scale, 1.3);
    }
  }
}

TEST(FaultPlan, DropAndDelayAreMutuallyExclusive) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.switch_drop_prob = 1.0;
  cfg.switch_delay_prob = 1.0;
  const FaultPlan plan(cfg);
  for (std::uint64_t q = 0; q < 32; ++q) {
    const QuantumFaults f = plan.for_quantum(q, 4);
    EXPECT_TRUE(f.drop_switch);
    EXPECT_FALSE(f.delay_switch);
  }
}

// --- apply_counter_fault ---------------------------------------------------

pipeline::ThreadCounters truth_counters() {
  pipeline::ThreadCounters c;
  c.icount = 40;
  c.brcount = 6;
  c.memcount = 12;
  c.committed_quantum = 1000;
  c.mispredicts_quantum = 30;
  c.stalls_quantum = 200;
  return c;
}

TEST(ApplyCounterFault, NoneIsIdentity) {
  const pipeline::ThreadCounters truth = truth_counters();
  const pipeline::ThreadCounters out =
      apply_counter_fault(CounterFault{}, truth, {}, 1024);
  EXPECT_EQ(out.icount, truth.icount);
  EXPECT_EQ(out.committed_quantum, truth.committed_quantum);
  EXPECT_EQ(out.stalls_quantum, truth.stalls_quantum);
}

TEST(ApplyCounterFault, FreezeReturnsTheStaleSnapshot) {
  pipeline::ThreadCounters stale;
  stale.icount = 7;
  stale.committed_quantum = 42;
  CounterFault f;
  f.kind = CounterFaultKind::kFreeze;
  const pipeline::ThreadCounters out =
      apply_counter_fault(f, truth_counters(), stale, 1024);
  EXPECT_EQ(out.icount, 7);
  EXPECT_EQ(out.committed_quantum, 42u);
}

TEST(ApplyCounterFault, NoiseScalesEveryObservedField) {
  CounterFault f;
  f.kind = CounterFaultKind::kNoise;
  f.scale = 0.5;
  const pipeline::ThreadCounters out =
      apply_counter_fault(f, truth_counters(), {}, 1024);
  EXPECT_EQ(out.icount, 20);
  EXPECT_EQ(out.brcount, 3);
  EXPECT_EQ(out.committed_quantum, 500u);
  EXPECT_EQ(out.mispredicts_quantum, 15u);
  EXPECT_EQ(out.stalls_quantum, 100u);
}

TEST(ApplyCounterFault, NoiseClampsAtZero) {
  pipeline::ThreadCounters truth;
  truth.icount = 3;
  truth.committed_quantum = 5;
  CounterFault f;
  f.kind = CounterFaultKind::kNoise;
  f.scale = 0.0;
  const pipeline::ThreadCounters out =
      apply_counter_fault(f, truth, {}, 1024);
  EXPECT_EQ(out.icount, 0);
  EXPECT_EQ(out.committed_quantum, 0u);
}

TEST(ApplyCounterFault, CorruptionIsAFunctionOfTheGarbageSeed) {
  CounterFault f;
  f.kind = CounterFaultKind::kCorrupt;
  f.garbage_seed = 99;
  const pipeline::ThreadCounters a =
      apply_counter_fault(f, truth_counters(), {}, 1024);
  const pipeline::ThreadCounters b =
      apply_counter_fault(f, truth_counters(), {}, 1024);
  EXPECT_EQ(a.committed_quantum, b.committed_quantum);
  EXPECT_EQ(a.icount, b.icount);

  f.garbage_seed = 100;
  const pipeline::ThreadCounters c =
      apply_counter_fault(f, truth_counters(), {}, 1024);
  EXPECT_TRUE(c.committed_quantum != a.committed_quantum ||
              c.icount != a.icount || c.mispredicts_quantum !=
              a.mispredicts_quantum);
}

// --- injector / pipeline integration ---------------------------------------

sim::SimConfig quick_sim(const char* mix_name) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.adts.quantum_cycles = 1024;
  return cfg;
}

TEST(FaultInjector, DtStallWindowFreezesTheDetectorThread) {
  sim::SimConfig cfg = quick_sim("bal1");
  cfg.use_adts = true;
  cfg.fault.enabled = true;
  cfg.fault.dt_stall_prob = 1.0;
  cfg.fault.dt_stall_quanta = 2;
  sim::Simulator sim(cfg);
  sim.run(8 * 1024);
  EXPECT_GT(sim.faults().stats().dt_stall_windows, 0u);
  EXPECT_GT(sim.faults().stats().dt_stalled_quanta,
            sim.faults().stats().dt_stall_windows);
  EXPECT_TRUE(sim.pipeline().dt_frozen());
}

TEST(FaultInjector, FrozenDtDoesNotDrainQueuedWork) {
  sim::SimConfig cfg = quick_sim("ilp8");
  sim::Simulator sim(cfg);
  sim.pipeline().set_dt_frozen(true);
  sim.pipeline().add_dt_work(64);
  sim.run(4 * 1024);
  EXPECT_EQ(sim.pipeline().dt_work_remaining(), 64u);
  sim.pipeline().set_dt_frozen(false);
  sim.run(4 * 1024);
  EXPECT_EQ(sim.pipeline().dt_work_remaining(), 0u);
}

TEST(FaultInjector, SameConfigReplaysTheIdenticalRun) {
  sim::SimConfig cfg = quick_sim("mem8");
  cfg.use_adts = true;
  cfg.adts.guard.enabled = true;
  cfg.fault = all_faults();
  sim::Simulator a(cfg);
  sim::Simulator b(cfg);
  obs::TraceSink sink_a;
  obs::TraceSink sink_b;
  a.attach_trace(&sink_a);
  b.attach_trace(&sink_b);
  a.run(16 * 1024);
  b.run(16 * 1024);
  EXPECT_EQ(a.committed(), b.committed());
  // The whole event stream — snapshots, switches, guard actions, faults —
  // must replay byte-identically.
  std::ostringstream ja;
  std::ostringstream jb;
  sink_a.write(ja, obs::TraceFormat::kJsonl);
  sink_b.write(jb, obs::TraceFormat::kJsonl);
  ASSERT_GT(sink_a.size(), 0u);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(FaultInjector, CounterFaultsNeverTouchArchitecturalState) {
  // Counter faults perturb only the detector's *view*; with ADTS disabled
  // nobody reads that view, so the simulation must be bit-identical to a
  // fault-free run.
  sim::SimConfig clean = quick_sim("ctrl8");
  sim::SimConfig faulty = clean;
  faulty.fault.enabled = true;
  faulty.fault.counter_noise_prob = 1.0;
  faulty.fault.counter_corrupt_prob = 1.0;
  sim::Simulator a(clean);
  sim::Simulator b(faulty);
  a.run(8 * 1024);
  b.run(8 * 1024);
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_GT(b.faults().stats().noisy_counter_reads +
                b.faults().stats().corrupt_counter_reads,
            0u);
}

TEST(FaultInjector, BlackoutsAreInjected) {
  sim::SimConfig cfg = quick_sim("bal1");
  cfg.fault.enabled = true;
  cfg.fault.blackout_prob = 1.0;
  cfg.fault.blackout_cycles = 256;
  sim::Simulator sim(cfg);
  sim.run(8 * 1024);
  EXPECT_GE(sim.faults().stats().blackouts, 7u);
}

}  // namespace
}  // namespace smt::fault
