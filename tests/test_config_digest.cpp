// Unit tests: sim::config_digest — the content address under every
// trace, stats document and fleet cache entry.
//
// Two properties matter:
//  1. Sensitivity — flipping any digest-relevant field changes the
//     digest (a field the digest ignores would let two different
//     configurations share a cache entry).
//  2. Stability — the digest of a fixed configuration never changes
//     across refactors. The golden value below is a tripwire: if it
//     moves, every content-addressed artifact (fleet result cache,
//     trace/stats cross-checks) silently keys differently, so the
//     change must be deliberate and release-noted, not incidental.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace smt::sim {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.apps = {"gzip", "mcf", "swim", "art"};
  cfg.workload_seed = 2003;
  cfg.fixed_policy = policy::FetchPolicy::kIcount;
  cfg.use_adts = false;
  return cfg;
}

struct FieldFlip {
  const char* name;
  std::function<void(SimConfig&)> apply;
};

// Every digest-relevant knob, one minimal mutation each. Kept in the
// same order as config_digest() mixes them so a missing field is easy
// to spot by eyeballing the two lists side by side.
std::vector<FieldFlip> digest_fields() {
  using policy::FetchPolicy;
  return {
      {"apps.value", [](SimConfig& c) { c.apps[1] = "gcc"; }},
      {"apps.order", [](SimConfig& c) { std::swap(c.apps[0], c.apps[1]); }},
      {"apps.count", [](SimConfig& c) { c.apps.push_back("vpr"); }},
      {"workload_seed", [](SimConfig& c) { ++c.workload_seed; }},
      {"fixed_policy",
       [](SimConfig& c) { c.fixed_policy = FetchPolicy::kRoundRobin; }},
      {"use_adts", [](SimConfig& c) { c.use_adts = true; }},

      {"machine.fetch_width", [](SimConfig& c) { ++c.machine.fetch_width; }},
      {"machine.fetch_threads",
       [](SimConfig& c) { ++c.machine.fetch_threads; }},
      {"machine.dispatch_width",
       [](SimConfig& c) { ++c.machine.dispatch_width; }},
      {"machine.issue_width", [](SimConfig& c) { ++c.machine.issue_width; }},
      {"machine.commit_width", [](SimConfig& c) { ++c.machine.commit_width; }},
      {"machine.frontend_delay",
       [](SimConfig& c) { ++c.machine.frontend_delay; }},
      {"machine.int_iq_size", [](SimConfig& c) { ++c.machine.int_iq_size; }},
      {"machine.fp_iq_size", [](SimConfig& c) { ++c.machine.fp_iq_size; }},
      {"machine.lsq_size", [](SimConfig& c) { ++c.machine.lsq_size; }},
      {"machine.fetch_buffer_cap",
       [](SimConfig& c) { ++c.machine.fetch_buffer_cap; }},
      {"machine.rob_per_thread",
       [](SimConfig& c) { ++c.machine.rob_per_thread; }},
      {"machine.int_rename_regs",
       [](SimConfig& c) { ++c.machine.int_rename_regs; }},
      {"machine.fp_rename_regs",
       [](SimConfig& c) { ++c.machine.fp_rename_regs; }},
      {"machine.int_alus", [](SimConfig& c) { ++c.machine.int_alus; }},
      {"machine.mem_ports", [](SimConfig& c) { ++c.machine.mem_ports; }},
      {"machine.fp_units", [](SimConfig& c) { ++c.machine.fp_units; }},
      {"machine.mispredict_penalty",
       [](SimConfig& c) { ++c.machine.mispredict_penalty; }},
      {"machine.btb_miss_penalty",
       [](SimConfig& c) { ++c.machine.btb_miss_penalty; }},
      {"machine.syscall_flush_penalty",
       [](SimConfig& c) { ++c.machine.syscall_flush_penalty; }},

      {"adts.quantum_cycles",
       [](SimConfig& c) { ++c.adts.quantum_cycles; }},
      {"adts.ipc_threshold",
       [](SimConfig& c) { c.adts.ipc_threshold += 0.25; }},
      {"adts.heuristic",
       [](SimConfig& c) { c.adts.heuristic = core::HeuristicType::kType4; }},
      {"adts.conditions.l1_miss_per_cycle",
       [](SimConfig& c) { c.adts.conditions.l1_miss_per_cycle += 0.01; }},
      {"adts.conditions.lsq_full_per_cycle",
       [](SimConfig& c) { c.adts.conditions.lsq_full_per_cycle += 0.01; }},
      {"adts.conditions.mispredict_per_cycle",
       [](SimConfig& c) { c.adts.conditions.mispredict_per_cycle += 0.01; }},
      {"adts.conditions.cond_branch_per_cycle",
       [](SimConfig& c) { c.adts.conditions.cond_branch_per_cycle += 0.01; }},
      {"adts.adaptive_conditions",
       [](SimConfig& c) { c.adts.adaptive_conditions = !c.adts.adaptive_conditions; }},
      {"adts.adaptive_factor",
       [](SimConfig& c) { c.adts.adaptive_factor += 0.125; }},
      {"adts.adaptive_alpha",
       [](SimConfig& c) { c.adts.adaptive_alpha += 0.125; }},
      {"adts.dt_check_instrs",
       [](SimConfig& c) { ++c.adts.dt_check_instrs; }},
      {"adts.dt_decide_instrs",
       [](SimConfig& c) { ++c.adts.dt_decide_instrs; }},
      {"adts.instant_switch",
       [](SimConfig& c) { c.adts.instant_switch = !c.adts.instant_switch; }},
      {"adts.switch_penalty_cycles",
       [](SimConfig& c) { ++c.adts.switch_penalty_cycles; }},
      {"adts.clog_icount_share",
       [](SimConfig& c) { c.adts.clog_icount_share += 0.05; }},
      {"adts.enable_clog_control",
       [](SimConfig& c) { c.adts.enable_clog_control = !c.adts.enable_clog_control; }},
      {"adts.clog_block_cycles",
       [](SimConfig& c) { ++c.adts.clog_block_cycles; }},
      {"adts.guard.enabled",
       [](SimConfig& c) { c.adts.guard.enabled = !c.adts.guard.enabled; }},

      {"fault.enabled",
       [](SimConfig& c) { c.fault.enabled = !c.fault.enabled; }},
      {"fault.seed", [](SimConfig& c) { ++c.fault.seed; }},
      {"fault.counter_noise_prob",
       [](SimConfig& c) { c.fault.counter_noise_prob += 0.01; }},
      {"fault.counter_noise_magnitude",
       [](SimConfig& c) { ++c.fault.counter_noise_magnitude; }},
      {"fault.counter_freeze_prob",
       [](SimConfig& c) { c.fault.counter_freeze_prob += 0.01; }},
      {"fault.counter_corrupt_prob",
       [](SimConfig& c) { c.fault.counter_corrupt_prob += 0.01; }},
      {"fault.dt_stall_prob",
       [](SimConfig& c) { c.fault.dt_stall_prob += 0.01; }},
      {"fault.dt_stall_quanta",
       [](SimConfig& c) { ++c.fault.dt_stall_quanta; }},
      {"fault.switch_drop_prob",
       [](SimConfig& c) { c.fault.switch_drop_prob += 0.01; }},
      {"fault.switch_delay_prob",
       [](SimConfig& c) { c.fault.switch_delay_prob += 0.01; }},
      {"fault.switch_delay_quanta",
       [](SimConfig& c) { ++c.fault.switch_delay_quanta; }},
      {"fault.blackout_prob",
       [](SimConfig& c) { c.fault.blackout_prob += 0.01; }},
      {"fault.blackout_cycles",
       [](SimConfig& c) { ++c.fault.blackout_cycles; }},

      {"pipeview.window",
       [](SimConfig& c) { c.pipeview.push_back({1024, 16}); }},
  };
}

TEST(ConfigDigest, EveryFieldFlipChangesTheDigest) {
  const std::uint64_t base = config_digest(base_config());
  for (const FieldFlip& flip : digest_fields()) {
    SimConfig mutated = base_config();
    flip.apply(mutated);
    EXPECT_NE(config_digest(mutated), base)
        << "flipping '" << flip.name << "' did not change the digest — "
        << "either config_digest() skips the field or the mutation is a no-op";
  }
}

TEST(ConfigDigest, FlippedDigestsAreMutuallyDistinct) {
  // Stronger than pairwise-vs-base: no two single-field mutations may
  // collide either (each flip perturbs a different mix position).
  std::vector<std::pair<std::string, std::uint64_t>> seen;
  seen.emplace_back("<base>", config_digest(base_config()));
  for (const FieldFlip& flip : digest_fields()) {
    SimConfig mutated = base_config();
    flip.apply(mutated);
    const std::uint64_t d = config_digest(mutated);
    for (const auto& [other, digest] : seen) {
      EXPECT_NE(d, digest) << "'" << flip.name << "' collides with '" << other
                           << "'";
    }
    seen.emplace_back(flip.name, d);
  }
}

TEST(ConfigDigest, DeterministicAcrossCalls) {
  const SimConfig cfg = base_config();
  const std::uint64_t first = config_digest(cfg);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(config_digest(cfg), first);
  }
}

TEST(ConfigDigest, GoldenValueIsStable) {
  // Tripwire: this exact configuration hashed to this value when the
  // fleet cache shipped. If the expectation fails, the digest function
  // or a struct default changed — every existing cache entry, journal
  // and trace cross-check re-keys. Update the constant only as part of
  // a deliberate, release-noted format change.
  const std::uint64_t golden = 0xc0b261691febaab0ull;
  EXPECT_EQ(config_digest(base_config()), golden)
      << "actual: 0x" << std::hex << config_digest(base_config());
}

}  // namespace
}  // namespace smt::sim
