// Tests: runtime invariant checker (src/check/invariants.hpp).
//
// Positive direction: checked runs of clean, faulted, swapped and
// externally-stepped simulators report zero violations, and checking is
// a pure observation (bit-identical machine statistics with the checker
// on vs. off). Negative direction: every invariant class has a test that
// corrupts the corresponding bookkeeping through the pipeline's
// test-only hooks and asserts the class actually fires — a checker that
// cannot fail would prove nothing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "check/invariants.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"
#include "workload/thread_program.hpp"

namespace smt {
namespace {

using check::CheckMode;
using check::InvariantClass;
using core::GuardState;

sim::SimConfig checked_config(const char* mix = "bal1", std::size_t threads = 4,
                              CheckMode mode = CheckMode::kOn) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix), threads, 1);
  cfg.check = mode;
  return cfg;
}

// --- pure predicates -------------------------------------------------------

TEST(GuardTransitionLegal, MatchesDocumentedStateMachine) {
  const auto legal = [](GuardState f, GuardState t) {
    return check::guard_transition_legal(f, t);
  };
  for (const GuardState s : {GuardState::kArmed, GuardState::kReverting,
                             GuardState::kSafeMode, GuardState::kCooldown}) {
    EXPECT_TRUE(legal(s, s));  // self-loops
  }
  EXPECT_TRUE(legal(GuardState::kArmed, GuardState::kReverting));
  EXPECT_TRUE(legal(GuardState::kArmed, GuardState::kSafeMode));
  EXPECT_TRUE(legal(GuardState::kReverting, GuardState::kArmed));
  EXPECT_TRUE(legal(GuardState::kReverting, GuardState::kSafeMode));
  EXPECT_TRUE(legal(GuardState::kSafeMode, GuardState::kCooldown));
  EXPECT_TRUE(legal(GuardState::kCooldown, GuardState::kArmed));
  EXPECT_TRUE(legal(GuardState::kCooldown, GuardState::kSafeMode));

  EXPECT_FALSE(legal(GuardState::kArmed, GuardState::kCooldown));
  EXPECT_FALSE(legal(GuardState::kReverting, GuardState::kCooldown));
  EXPECT_FALSE(legal(GuardState::kSafeMode, GuardState::kArmed));
  EXPECT_FALSE(legal(GuardState::kSafeMode, GuardState::kReverting));
  EXPECT_FALSE(legal(GuardState::kCooldown, GuardState::kReverting));
}

TEST(InvariantClassNames, AllDistinctAndDecodable) {
  for (std::size_t c = 0; c < check::kNumInvariantClasses; ++c) {
    const auto cls = static_cast<InvariantClass>(c);
    EXPECT_NE(check::name(cls), "unknown");
    EXPECT_EQ(check::invariant_class_name(static_cast<std::uint8_t>(c)),
              check::name(cls));
  }
  EXPECT_EQ(check::invariant_class_name(250), "unknown");
}

TEST(CheckEnabled, ExplicitModesIgnoreEnvironment) {
  EXPECT_TRUE(check::check_enabled(CheckMode::kOn));
  EXPECT_FALSE(check::check_enabled(CheckMode::kOff));
}

TEST(CheckEnabled, AutoModeReadsSmtCheckVariable) {
  const char* saved = std::getenv("SMT_CHECK");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("SMT_CHECK", "1", 1);
  EXPECT_TRUE(check::check_enabled(CheckMode::kAuto));
  ::setenv("SMT_CHECK", "on", 1);
  EXPECT_TRUE(check::check_enabled(CheckMode::kAuto));
  ::setenv("SMT_CHECK", "0", 1);
  EXPECT_FALSE(check::check_enabled(CheckMode::kAuto));
  ::unsetenv("SMT_CHECK");
  EXPECT_FALSE(check::check_enabled(CheckMode::kAuto));

  if (saved != nullptr) {
    ::setenv("SMT_CHECK", saved_value.c_str(), 1);
  }
}

// --- positive runs ---------------------------------------------------------

TEST(InvariantChecker, CleanFixedPolicyRunHasNoViolations) {
  sim::Simulator s(checked_config());
  ASSERT_TRUE(s.checking_enabled());
  s.run(20000);
  EXPECT_TRUE(s.checker().ok()) << s.checker().violation_count()
                                << " violations";
  EXPECT_EQ(s.checker().violation_count(), 0u);
}

TEST(InvariantChecker, CleanFaultedAdtsGuardRunHasNoViolations) {
  // Faults perturb only the *observed* counter view, never architectural
  // state, so every invariant must keep holding under heavy injection.
  sim::SimConfig cfg = checked_config("mem8", 8);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  cfg.adts.guard.enabled = true;
  cfg.fault.enabled = true;
  cfg.fault.counter_corrupt_prob = 0.4;
  cfg.fault.dt_stall_prob = 0.3;
  cfg.fault.blackout_prob = 0.3;
  sim::Simulator s(cfg);
  s.run(16 * 1024);
  EXPECT_TRUE(s.checker().ok()) << s.checker().violation_count()
                                << " violations";
}

TEST(InvariantChecker, CheckedRunIsBitIdenticalToUnchecked) {
  sim::SimConfig on = checked_config("ctrl8", 8, CheckMode::kOn);
  on.use_adts = true;
  on.adts.quantum_cycles = 2048;
  sim::SimConfig off = on;
  off.check = CheckMode::kOff;

  sim::Simulator a(on);
  sim::Simulator b(off);
  ASSERT_TRUE(a.checking_enabled());
  ASSERT_FALSE(b.checking_enabled());
  a.run(6 * 2048);
  b.run(6 * 2048);

  const pipeline::PipelineStats& sa = a.pipeline().stats();
  const pipeline::PipelineStats& sb = b.pipeline().stats();
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.committed, sb.committed);
  EXPECT_EQ(sa.fetched, sb.fetched);
  EXPECT_EQ(sa.fetched_wrong_path, sb.fetched_wrong_path);
  EXPECT_EQ(sa.squashed, sb.squashed);
  EXPECT_EQ(sa.mispredicts, sb.mispredicts);
  EXPECT_EQ(sa.fetch_slots_idle, sb.fetch_slots_idle);
  EXPECT_EQ(sa.dt_slots_used, sb.dt_slots_used);
  EXPECT_EQ(a.detector().stats().switches, b.detector().stats().switches);
  EXPECT_TRUE(a.checker().ok());
}

TEST(InvariantChecker, CopiesDropChecking) {
  sim::Simulator original(checked_config());
  original.run(500);
  ASSERT_TRUE(original.checking_enabled());

  // The oracle's exact pattern: copy, set a policy directly, re-run. The
  // copy must not check (a live machine would flag the direct set), and
  // the original's checker must stay clean and attached.
  sim::Simulator copy = original;
  EXPECT_FALSE(copy.checking_enabled());
  copy.pipeline().set_policy(policy::FetchPolicy::kBrcount);
  copy.run(500);
  EXPECT_TRUE(copy.checker().ok());

  sim::Simulator assigned(checked_config());
  assigned = original;
  EXPECT_FALSE(assigned.checking_enabled());

  original.run(500);
  EXPECT_TRUE(original.checking_enabled());
  EXPECT_TRUE(original.checker().ok());
}

TEST(InvariantChecker, ContextSwitchOnLiveSimulatorIsNotFlagged) {
  // The job scheduler swaps programs on a live pipeline between steps;
  // the life-epoch skip must keep that from reading as corruption.
  sim::Simulator s(checked_config());
  s.run(3000);
  workload::ThreadProgram incoming(workload::profile("mcf"), 1, 99);
  workload::ThreadProgram outgoing =
      s.pipeline().swap_program(1, std::move(incoming), 200);
  (void)outgoing;
  s.run(3000);
  EXPECT_TRUE(s.checker().ok()) << s.checker().violation_count()
                                << " violations";
}

TEST(InvariantChecker, ExternallySteppedPipelineGapIsTolerated) {
  // Stepping the pipeline directly bypasses the checker; the next checked
  // step sees a multi-cycle gap and must stretch its span laws over it.
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().run(500);
  s.run(100);
  EXPECT_TRUE(s.checker().ok()) << s.checker().violation_count()
                                << " violations";
}

// --- negative tests: every invariant class fires ---------------------------

TEST(InvariantNegative, ResourceConservationFires) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_icount(0, 3);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kResourceConservation), 1u);
}

TEST(InvariantNegative, SlotConservationFires) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_stall_ledger(5);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kSlotConservation), 1u);
}

TEST(InvariantNegative, CommitOrderFiresOnGlobalCounterDrift) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_committed(10);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kCommitOrder), 1u);
}

TEST(InvariantNegative, CommitOrderFiresOnHeadSeqDrift) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_head_seq(0, 5);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kCommitOrder), 1u);
}

TEST(InvariantNegative, CommitOrderFiresOnWindowSeqGap) {
  sim::Simulator s(checked_config());
  s.run(300);
  // The window can be transiently empty (mid-squash); step until it isn't.
  bool corrupted = false;
  for (int attempt = 0; attempt < 200 && !corrupted; ++attempt) {
    corrupted = s.pipeline().testing_corrupt_window_seq(0);
    if (!corrupted) s.step();
  }
  ASSERT_TRUE(corrupted) << "window stayed empty for 200 cycles";
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kCommitOrder), 1u);
}

TEST(InvariantNegative, CounterEpochFiresOnImplausibleSample) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_quantum_counter(0, std::uint64_t{1} << 40);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kCounterEpoch), 1u);
}

TEST(InvariantNegative, CounterEpochFiresOnRewoundEpoch) {
  sim::SimConfig cfg = checked_config();
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  sim::Simulator s(cfg);
  s.run(2 * 1024 + 10);  // past two boundaries: epochs are > 0 and settled
  s.pipeline().testing_rewind_quantum_epoch(0);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kCounterEpoch), 1u);
}

TEST(InvariantNegative, GuardTransitionFires) {
  sim::Simulator s(checked_config());
  s.run(100);
  // Fabricate a SAFE_MODE baseline: the live guard reads ARMED, so the
  // checker observes an illegal SAFE_MODE -> ARMED edge, off-boundary.
  s.checker_for_testing().testing_set_prev_guard_state(GuardState::kSafeMode);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kGuardTransition), 1u);
}

TEST(InvariantNegative, PolicySwitchFires) {
  sim::Simulator s(checked_config());  // ADTS off: policy must stay fixed
  s.run(100);
  s.pipeline().set_policy(policy::FetchPolicy::kBrcount);
  s.step();
  EXPECT_FALSE(s.checker().ok());
  EXPECT_GE(s.checker().count(InvariantClass::kPolicySwitch), 1u);
}

// --- diagnostics -----------------------------------------------------------

TEST(InvariantChecker, ViolationsCarryContextAndReportRenders) {
  sim::Simulator s(checked_config());
  s.run(100);
  s.pipeline().testing_corrupt_stall_ledger(7);
  s.step();
  ASSERT_FALSE(s.checker().violations().empty());
  const check::Violation& v = s.checker().violations().front();
  EXPECT_EQ(v.cls, InvariantClass::kSlotConservation);
  EXPECT_GT(v.cycle, 0u);
  EXPECT_NE(std::string(v.detail), "");

  std::ostringstream os;
  s.checker().write_report(os);
  const std::string report = os.str();
  EXPECT_NE(report.find("slot_conservation"), std::string::npos);
  EXPECT_NE(report.find("FAILED"), std::string::npos);
}

TEST(InvariantChecker, CleanReportIsEmpty) {
  sim::Simulator s(checked_config());
  s.run(100);
  std::ostringstream os;
  s.checker().write_report(os);
  EXPECT_EQ(os.str(), "");
}

TEST(InvariantChecker, ViolationsEmitTraceEvents) {
  sim::Simulator s(checked_config());
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(100);
  s.pipeline().testing_corrupt_icount(0, 2);
  s.step();
  bool found = false;
  for (const obs::TraceEvent& e : sink.snapshot()) {
    if (e.kind == obs::EventKind::kInvariant) {
      EXPECT_EQ(e.code, static_cast<std::uint8_t>(
                            InvariantClass::kResourceConservation));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  s.attach_trace(nullptr);
}

}  // namespace
}  // namespace smt
