// Unit tests: address stream generator (workload/address_gen.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/address_gen.hpp"
#include "workload/app_profile.hpp"

namespace smt::workload {
namespace {

AddressGen make_gen(const char* app, std::uint64_t base = 1 << 30) {
  return AddressGen(profile(app), base, Rng(77));
}

TEST(AddressGen, AddressesWithinSegment) {
  const AppProfile& p = profile("gzip");
  AddressGen g(p, 1 << 30, Rng(1));
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = g.next();
    EXPECT_GE(a, std::uint64_t{1} << 30);
    EXPECT_LT(a, (std::uint64_t{1} << 30) + p.working_set_bytes);
  }
}

TEST(AddressGen, DeterministicForSameRng) {
  AddressGen a = make_gen("vpr");
  AddressGen b = make_gen("vpr");
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(AddressGen, HotRegionDominatesForLocalApps) {
  const AppProfile& p = profile("eon");  // high hot_fraction
  AddressGen g(p, 0, Rng(3));
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (g.next() < p.hot_set_bytes) ++hot;
  }
  EXPECT_GT(static_cast<double>(hot) / n, 0.6);
}

TEST(AddressGen, ThrashersSpreadWide) {
  const AppProfile& p = profile("art");  // hot_fraction ~0.1
  AddressGen g(p, 0, Rng(3));
  int beyond_l2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (g.next() > 4u * 1024 * 1024) ++beyond_l2;
  }
  // A meaningful share of art's accesses must fall outside any cache.
  EXPECT_GT(static_cast<double>(beyond_l2) / n, 0.1);
}

TEST(AddressGen, StrideComponentAdvancesSequentially) {
  AppProfile p = profile("swim");  // stride 0.80
  p.hot_fraction = 0.0;            // isolate the stream
  p.stride_fraction = 1.0;
  AddressGen g(p, 0, Rng(5));
  std::uint64_t prev = g.next();
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t cur = g.next();
    EXPECT_EQ(cur, prev + 8) << "streaming accesses must be sequential";
    prev = cur;
  }
}

TEST(AddressGen, HotBiasShiftsLocality) {
  const AppProfile& p = profile("gcc");
  AddressGen g1(p, 0, Rng(9));
  AddressGen g2(p, 0, Rng(9));
  int hot_neutral = 0;
  int hot_lowered = 0;
  for (int i = 0; i < 20000; ++i) {
    if (g1.next(0.0) < p.hot_set_bytes) ++hot_neutral;
    if (g2.next(-0.5) < p.hot_set_bytes) ++hot_lowered;
  }
  EXPECT_GT(hot_neutral, hot_lowered);
}

TEST(AddressGen, WrongPathDoesNotTouchGeneratorState) {
  AddressGen a = make_gen("parser");
  AddressGen b = make_gen("parser");
  Rng wrong(123);
  for (int i = 0; i < 50; ++i) (void)a.wrong_path(wrong);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(AddressGen, WrongPathStaysInSegment) {
  const AppProfile& p = profile("mcf");
  AddressGen g(p, 1 << 20, Rng(4));
  Rng wrong(5);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = g.wrong_path(wrong);
    EXPECT_GE(a, std::uint64_t{1} << 20);
    EXPECT_LT(a, (std::uint64_t{1} << 20) + p.working_set_bytes);
  }
}

TEST(AddressGen, EightByteAligned) {
  AddressGen g = make_gen("gap", 0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(g.next() % 8, 0u);
  }
}

}  // namespace
}  // namespace smt::workload
