// Unit tests: the ten fetch policies (policy/fetch_policy.hpp).
#include <gtest/gtest.h>

#include "pipeline/counters.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::policy {
namespace {

using pipeline::ThreadCounters;

TEST(FetchPolicy, TableOneHasTenPolicies) {
  EXPECT_EQ(all_policies().size(), 10u);
  EXPECT_EQ(kNumFetchPolicies, 10);
}

TEST(FetchPolicy, NamesRoundTripThroughParse) {
  for (FetchPolicy p : all_policies()) {
    EXPECT_EQ(parse_policy(name(p)), p);
  }
  EXPECT_THROW((void)parse_policy("NOPE"), std::out_of_range);
}

TEST(FetchPolicy, IcountPrefersEmptierThread) {
  ThreadCounters busy;
  busy.icount = 20;
  ThreadCounters idle;
  idle.icount = 2;
  EXPECT_LT(priority_key(FetchPolicy::kIcount, idle, 0, 8, 0),
            priority_key(FetchPolicy::kIcount, busy, 1, 8, 0));
}

TEST(FetchPolicy, BrcountPrefersFewerBranches) {
  ThreadCounters branchy;
  branchy.brcount = 6;
  ThreadCounters clean;
  clean.brcount = 0;
  EXPECT_LT(priority_key(FetchPolicy::kBrcount, clean, 0, 8, 0),
            priority_key(FetchPolicy::kBrcount, branchy, 1, 8, 0));
}

TEST(FetchPolicy, LoadAndMemCounts) {
  ThreadCounters a;
  a.ldcount = 1;
  a.memcount = 9;
  ThreadCounters b;
  b.ldcount = 5;
  b.memcount = 5;
  EXPECT_LT(priority_key(FetchPolicy::kLdcount, a, 0, 8, 0),
            priority_key(FetchPolicy::kLdcount, b, 1, 8, 0));
  EXPECT_LT(priority_key(FetchPolicy::kMemcount, b, 1, 8, 0),
            priority_key(FetchPolicy::kMemcount, a, 0, 8, 0));
}

TEST(FetchPolicy, MissCountVariantsReadDifferentCounters) {
  ThreadCounters c;
  c.l1d_outstanding = 3;
  c.l1i_outstanding = 1;
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kL1MissCount, c, 0, 8, 0), 4.0);
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kL1IMissCount, c, 0, 8, 0), 1.0);
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kL1DMissCount, c, 0, 8, 0), 3.0);
}

TEST(FetchPolicy, AccIpcPrefersFasterThread) {
  ThreadCounters fast;
  fast.committed_total = 1000;
  fast.cycles_seen = 500;  // ACCIPC 2.0
  ThreadCounters slow;
  slow.committed_total = 100;
  slow.cycles_seen = 500;  // ACCIPC 0.2
  EXPECT_LT(priority_key(FetchPolicy::kAccIpc, fast, 0, 8, 0),
            priority_key(FetchPolicy::kAccIpc, slow, 1, 8, 0));
}

TEST(FetchPolicy, StallCountPrefersFewerStalls) {
  ThreadCounters smooth;
  smooth.stalls_quantum = 3;
  ThreadCounters choppy;
  choppy.stalls_quantum = 300;
  EXPECT_LT(priority_key(FetchPolicy::kStallCount, smooth, 0, 8, 0),
            priority_key(FetchPolicy::kStallCount, choppy, 1, 8, 0));
}

TEST(FetchPolicy, RoundRobinRotatesLeader) {
  ThreadCounters c;  // counters irrelevant for RR
  // At cycle 0, thread 0 leads; at cycle 3, thread 3 leads.
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kRoundRobin, c, 0, 8, 0), 0.0);
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kRoundRobin, c, 3, 8, 3), 0.0);
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kRoundRobin, c, 2, 8, 3), 7.0);
}

TEST(FetchPolicy, RoundRobinCoversAllPositions) {
  ThreadCounters c;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    const double k = priority_key(FetchPolicy::kRoundRobin, c, tid, 8, 5);
    EXPECT_GE(k, 0.0);
    EXPECT_LT(k, 8.0);
  }
}

TEST(FetchPolicy, QuantumResetDoesNotAffectOccupancyKeys) {
  ThreadCounters c;
  c.icount = 7;
  c.brcount = 2;
  c.stalls_quantum = 55;
  const double icount_before = priority_key(FetchPolicy::kIcount, c, 0, 8, 0);
  c.reset_quantum();
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kIcount, c, 0, 8, 0),
                   icount_before);
  EXPECT_DOUBLE_EQ(priority_key(FetchPolicy::kStallCount, c, 0, 8, 0), 0.0);
}

TEST(FetchPolicy, RatesForQuantumNormalisesPerCycle) {
  ThreadCounters c;
  c.committed_quantum = 8192;
  c.cond_branches_quantum = 1024;
  c.mispredicts_quantum = 82;
  c.l1d_misses_quantum = 100;
  c.l1i_misses_quantum = 28;
  c.lsq_full_events_quantum = 4096;
  const pipeline::QuantumRates r = pipeline::rates_for_quantum(c, 8192);
  EXPECT_DOUBLE_EQ(r.ipc, 1.0);
  EXPECT_DOUBLE_EQ(r.cond_branches_per_cycle, 0.125);
  EXPECT_NEAR(r.mispredicts_per_cycle, 82.0 / 8192.0, 1e-12);
  EXPECT_NEAR(r.l1_misses_per_cycle, 128.0 / 8192.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.lsq_full_per_cycle, 0.5);
}

TEST(FetchPolicy, RatesForZeroQuantumAreZero) {
  ThreadCounters c;
  c.committed_quantum = 100;
  const pipeline::QuantumRates r = pipeline::rates_for_quantum(c, 0);
  EXPECT_EQ(r.ipc, 0.0);
}

}  // namespace
}  // namespace smt::policy
