// Unit tests: static branch-site model (workload/branch_site.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/branch_site.hpp"

namespace smt::workload {
namespace {

BranchSiteModel make_model(const char* app, std::uint64_t base = 0) {
  return BranchSiteModel(profile(app), base, Rng(11));
}

TEST(BranchSite, SiteForIsDeterministicPerPc) {
  BranchSiteModel m = make_model("gcc");
  const BranchSite& a = m.site_for(0x1000);
  const BranchSite& b = m.site_for(0x1000);
  EXPECT_EQ(&a, &b);
}

TEST(BranchSite, SitesHaveSaneTakenRates) {
  BranchSiteModel m = make_model("vpr");
  for (std::uint64_t pc = 0; pc < 4096; pc += 4) {
    const BranchSite& s = m.site_for(pc);
    EXPECT_GT(s.taken_rate, 0.0);
    EXPECT_LT(s.taken_rate, 1.0);
  }
}

TEST(BranchSite, TargetsWithinCodeSegment) {
  const AppProfile& p = profile("crafty");
  BranchSiteModel m(p, 1 << 20, Rng(7));
  for (std::uint64_t pc = 0; pc < 2048; pc += 4) {
    const BranchSite& s = m.site_for(pc);
    EXPECT_GE(s.target, std::uint64_t{1} << 20);
    EXPECT_LT(s.target, (std::uint64_t{1} << 20) + p.code_bytes);
  }
}

TEST(BranchSite, OutcomeFrequencyTracksSiteRate) {
  BranchSiteModel m = make_model("eon");
  Rng rng(42);
  const std::uint64_t pc = 0x40;
  const double rate = m.site_for(pc).taken_rate;
  int taken = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (m.outcome(pc, rng, 0.0)) ++taken;
  }
  EXPECT_NEAR(static_cast<double>(taken) / n, rate, 0.02);
}

TEST(BranchSite, FlattenPushesTowardCoinFlip) {
  BranchSiteModel m = make_model("gzip");
  Rng rng(42);
  // Find a strongly biased site.
  std::uint64_t pc = 0;
  for (std::uint64_t c = 0; c < 8192; c += 4) {
    if (m.site_for(c).taken_rate > 0.9) {
      pc = c;
      break;
    }
  }
  ASSERT_GT(m.site_for(pc).taken_rate, 0.9);
  int taken_flat = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (m.outcome(pc, rng, 1.0)) ++taken_flat;
  }
  // Full flatten: the site behaves as a coin flip.
  EXPECT_NEAR(static_cast<double>(taken_flat) / n, 0.5, 0.02);
}

TEST(BranchSite, PredictabilityKnobControlsBiasedShare) {
  // A profile with high predictable_sites must have more strongly-biased
  // sites than one with low.
  AppProfile hi = profile("gzip");
  hi.predictable_sites = 0.95;
  AppProfile lo = profile("gzip");
  lo.predictable_sites = 0.30;
  BranchSiteModel mh(hi, 0, Rng(3));
  BranchSiteModel ml(lo, 0, Rng(3));
  auto biased_share = [](const BranchSiteModel& m) {
    int biased = 0;
    int total = 0;
    for (std::uint64_t pc = 0; pc < 64 * 1024; pc += 4) {
      const double r = m.site_for(pc).taken_rate;
      if (r < 0.1 || r > 0.9) ++biased;
      ++total;
    }
    return static_cast<double>(biased) / total;
  };
  EXPECT_GT(biased_share(mh), biased_share(ml) + 0.2);
}

TEST(BranchSite, ModelHasAtLeastMinimumSites) {
  AppProfile p = profile("gzip");
  p.branch_sites = 1;  // degenerate request
  BranchSiteModel m(p, 0, Rng(2));
  EXPECT_GE(m.size(), 8u);
}

}  // namespace
}  // namespace smt::workload
