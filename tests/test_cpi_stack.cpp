// Property tests: per-slot commit-loss accounting (obs::CpiStack
// maintained by Pipeline::account_cpi).
//
// The load-bearing property is conservation: every commit slot of every
// accounted cycle, for every thread, is charged to exactly one CpiCause —
// committed work or a specific loss — never lost, never double-counted.
// The two sub-breakdowns (ROB-empty by fetch stall cause, FU contention
// by holder thread) must each sum to their parent bucket.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/cpi_stack.hpp"
#include "obs/trace_read.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace smt::pipeline {
namespace {

sim::SimConfig quick_sim(const char* mix_name, bool adts = false) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.adts.quantum_cycles = 1024;
  cfg.use_adts = adts;
  cfg.cpi = true;
  return cfg;
}

std::uint64_t gap_of(const Pipeline& p, std::uint32_t tid) {
  return obs::conservation_gap(p.cpi_stack(tid), p.config().commit_width,
                               p.cpi_cycles_accounted());
}

TEST(CpiStack, WholeRunConservationAcrossMixes) {
  for (const char* mix : {"bal1", "mem8", "ilp8", "ctrl8"}) {
    for (const bool adts : {false, true}) {
      sim::Simulator s(quick_sim(mix, adts));
      s.run(16 * 1024);
      ASSERT_TRUE(s.pipeline().cpi_accounting());
      EXPECT_EQ(s.pipeline().cpi_cycles_accounted(), 16u * 1024u);
      for (std::uint32_t tid = 0; tid < s.pipeline().num_threads(); ++tid) {
        EXPECT_EQ(gap_of(s.pipeline(), tid), 0u)
            << mix << (adts ? " (adts)" : " (fixed)") << " tid " << tid;
      }
    }
  }
}

TEST(CpiStack, PerCycleConservation) {
  sim::Simulator s(quick_sim("mem8", /*adts=*/true));
  const std::uint64_t width = s.pipeline().config().commit_width;
  const std::uint32_t n = s.pipeline().num_threads();
  std::vector<std::uint64_t> prev(n, 0);
  for (int cycle = 0; cycle < 4096; ++cycle) {
    s.step();
    for (std::uint32_t tid = 0; tid < n; ++tid) {
      const std::uint64_t total = s.pipeline().cpi_stack(tid).total();
      ASSERT_EQ(total - prev[tid], width) << "cycle " << cycle << " tid "
                                          << tid;
      prev[tid] = total;
      ASSERT_EQ(gap_of(s.pipeline(), tid), 0u) << "cycle " << cycle;
    }
  }
}

// One firing negative per cause class: perturbing any single bucket by a
// single slot must make conservation_gap nonzero — the invariant has no
// blind spot a mischarge could hide in.
TEST(CpiStack, CorruptingAnyCauseFiresTheConservationGap) {
  for (std::size_t cause = 0; cause < obs::kNumCpiCauses; ++cause) {
    sim::Simulator s(quick_sim("bal1"));
    s.run(2048);
    ASSERT_EQ(gap_of(s.pipeline(), 1), 0u) << "cause " << cause;
    s.pipeline().testing_corrupt_cpi(1, cause, 1);
    EXPECT_GT(gap_of(s.pipeline(), 1), 0u)
        << "cause "
        << name(static_cast<obs::CpiCause>(cause))
        << " absorbed a phantom slot";
  }
}

TEST(CpiStack, CommonCausesFireOnTheirNaturalMixes) {
  using obs::CpiCause;
  // Memory-bound co-runners: long-latency loads dominate, queues fill.
  {
    sim::Simulator s(quick_sim("mem8"));
    s.run(16 * 1024);
    const obs::CpiStack& st = s.pipeline().cpi_stack(0);
    EXPECT_GT(st[CpiCause::kCommitted], 0u);
    EXPECT_GT(st[CpiCause::kMemLatency], 0u);
    EXPECT_GT(st[CpiCause::kStructuralFull], 0u);
    EXPECT_GT(st[CpiCause::kRobEmpty], 0u);
    EXPECT_GT(st[CpiCause::kDepWait], 0u);
  }
  // Control-bound: mispredict squashes cost recovery cycles.
  {
    sim::Simulator s(quick_sim("ctrl8"));
    s.run(16 * 1024);
    std::uint64_t squash = 0;
    for (std::uint32_t tid = 0; tid < 8; ++tid) {
      squash += s.pipeline().cpi_stack(tid)[CpiCause::kSquashRecovery];
    }
    EXPECT_GT(squash, 0u);
  }
}

TEST(CpiStack, ContentionIsAttributedToCoRunners) {
  sim::Simulator s(quick_sim("ilp8"));
  s.run(16 * 1024);
  std::uint64_t contention = 0;
  std::uint64_t cross_thread = 0;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    const obs::CpiStack& st = s.pipeline().cpi_stack(tid);
    contention += st[obs::CpiCause::kFuContention];
    std::uint64_t by_holder = 0;
    for (std::size_t h = 0; h < obs::kCpiMaxThreads; ++h) {
      by_holder += st.contend[h];
      if (h != tid) cross_thread += st.contend[h];
    }
    // The holder breakdown is exactly the contention bucket.
    EXPECT_EQ(by_holder, st[obs::CpiCause::kFuContention]) << "tid " << tid;
  }
  // ILP-heavy co-runners saturate the ALUs: contention exists and is
  // mostly charged to *other* threads (the symbiosis signal).
  EXPECT_GT(contention, 0u);
  EXPECT_GT(cross_thread, 0u);
}

TEST(CpiStack, FetchBlackoutDrainsIntoSwitchOverhead) {
  sim::Simulator s(quick_sim("ilp8"));
  s.run(1024);
  const std::uint64_t before =
      s.pipeline().cpi_stack(3)[obs::CpiCause::kSwitchOverhead];
  // A long externally-imposed fetch blackout (what a context-switch or
  // DT-induced blackout looks like) drains the window; the empty-window
  // slots must be charged to switch overhead, not generic ROB-empty.
  s.pipeline().block_fetch(3, s.now() + 2048);
  s.run(2048);
  const std::uint64_t after =
      s.pipeline().cpi_stack(3)[obs::CpiCause::kSwitchOverhead];
  EXPECT_GT(after, before);
}

TEST(CpiStack, RobEmptyBreaksDownByFetchCause) {
  sim::Simulator s(quick_sim("mem8"));
  s.run(16 * 1024);
  std::uint64_t icache = 0;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    icache += s.pipeline().cpi_stack(tid).rob_empty_by[static_cast<
        std::size_t>(obs::StallCause::kIcacheMiss)];
  }
  // Cold instruction caches starve the window early in every run.
  EXPECT_GT(icache, 0u);
}

TEST(CpiStack, AccountingIsObservationOnly) {
  sim::SimConfig on = quick_sim("bal1", /*adts=*/true);
  sim::SimConfig off = on;
  off.cpi = false;
  sim::Simulator a(on);
  sim::Simulator b(off);
  a.run(8 * 1024);
  b.run(8 * 1024);
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_EQ(a.pipeline().stats().fetched, b.pipeline().stats().fetched);
  EXPECT_EQ(a.pipeline().stats().mispredicts,
            b.pipeline().stats().mispredicts);
  EXPECT_EQ(a.pipeline().charged_stall_slots(),
            b.pipeline().charged_stall_slots());
  // And the off run carries no accounting state at all.
  EXPECT_FALSE(b.pipeline().cpi_accounting());
  EXPECT_EQ(b.pipeline().cpi_cycles_accounted(), 0u);
}

TEST(CpiStack, CopiesDropTheAccounting) {
  // Same contract as the trace sink / checker / profiler: oracle snapshots
  // must stay silent, so copies reset the observer state.
  sim::Simulator s(quick_sim("bal1"));
  s.run(1024);
  ASSERT_TRUE(s.pipeline().cpi_accounting());
  const sim::Simulator copy(s);
  EXPECT_FALSE(copy.pipeline().cpi_accounting());
  EXPECT_EQ(copy.pipeline().cpi_cycles_accounted(), 0u);
  EXPECT_TRUE(s.pipeline().cpi_accounting());
}

TEST(CpiStack, TraceRowsSumToThePipelineStacks) {
  sim::Simulator s(quick_sim("mem8"));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  // An exact multiple of the quantum, so the final boundary snapshot
  // lands on the last cycle and the rows tile the whole run.
  s.run(8 * 1024);
  s.flush_trace();
  std::stringstream ss;
  sink.write(ss, obs::TraceFormat::kJsonl, sim::trace_decoder());
  const obs::ReadTrace trace = obs::read_trace(ss);

  std::array<obs::CpiStack, obs::kCpiMaxThreads> sums{};
  std::array<std::uint64_t, obs::kCpiMaxThreads> spans{};
  std::size_t rows = 0;
  for (const obs::ReadEvent& e : trace.events) {
    if (e.kind != obs::EventKind::kCpiStack) continue;
    ++rows;
    ASSERT_GE(e.tid, 0);
    ASSERT_EQ(e.value, s.pipeline().config().commit_width);
    obs::CpiStack& acc = sums[static_cast<std::size_t>(e.tid)];
    spans[static_cast<std::size_t>(e.tid)] += e.span;
    for (std::size_t c = 0; c < obs::kNumCpiCauses; ++c) {
      acc.slots[c] += e.cpi[c];
    }
    for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
      acc.rob_empty_by[c] += e.stalls[c];
    }
    for (std::size_t h = 0; h < obs::kCpiMaxThreads; ++h) {
      acc.contend[h] += e.contend[h];
    }
  }
  ASSERT_EQ(rows, 8u * 8u);  // 8 quanta × 8 threads
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    const obs::CpiStack& live = s.pipeline().cpi_stack(tid);
    EXPECT_EQ(spans[tid], s.pipeline().cpi_cycles_accounted());
    for (std::size_t c = 0; c < obs::kNumCpiCauses; ++c) {
      EXPECT_EQ(sums[tid].slots[c], live.slots[c]) << "tid " << tid;
    }
    for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
      EXPECT_EQ(sums[tid].rob_empty_by[c], live.rob_empty_by[c]);
    }
    for (std::size_t h = 0; h < obs::kCpiMaxThreads; ++h) {
      EXPECT_EQ(sums[tid].contend[h], live.contend[h]);
    }
    // And each decoded row set preserves conservation.
    EXPECT_EQ(obs::conservation_gap(sums[tid],
                                    s.pipeline().config().commit_width,
                                    spans[tid]),
              0u);
  }
}

TEST(CpiStack, StacksSurviveQuantumCounterResets) {
  // Like the stall breakdown, the stacks are pipeline-lifetime monotone:
  // the detector's boundary resets must not clear them, or per-quantum
  // trace deltas (plain differencing, no epochs) would break.
  sim::Simulator s(quick_sim("bal1"));
  s.run(2048);
  const std::uint64_t before = s.pipeline().cpi_stack(0).total();
  ASSERT_GT(before, 0u);
  s.pipeline().reset_quantum_counters();
  EXPECT_EQ(s.pipeline().cpi_stack(0).total(), before);
  EXPECT_EQ(gap_of(s.pipeline(), 0), 0u);
}

}  // namespace
}  // namespace smt::pipeline
