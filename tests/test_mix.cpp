// Unit tests: evaluation mixes (workload/mix.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace smt::workload {
namespace {

TEST(Mix, ThirteenMixes) {
  EXPECT_EQ(all_mixes().size(), 13u) << "the paper evaluates 13 mixtures";
}

TEST(Mix, EveryMixHasEightApps) {
  for (const Mix& m : all_mixes()) {
    EXPECT_EQ(m.apps.size(), 8u) << m.name;
  }
}

TEST(Mix, EveryMemberResolvesToAProfile) {
  for (const Mix& m : all_mixes()) {
    for (const auto& app : m.apps) {
      EXPECT_NO_THROW((void)profile(app)) << m.name << "/" << app;
    }
  }
}

TEST(Mix, NamesAreUniqueAndLookupWorks) {
  std::set<std::string> names;
  for (const Mix& m : all_mixes()) {
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate " << m.name;
    EXPECT_EQ(mix(m.name).name, m.name);
  }
  EXPECT_THROW((void)mix("nope"), std::out_of_range);
}

TEST(Mix, DescriptionsNonEmpty) {
  for (const Mix& m : all_mixes()) {
    EXPECT_FALSE(m.description.empty()) << m.name;
  }
}

TEST(Mix, HomogeneousMixesLessDiverseThanBalanced) {
  // The similarity experiment (paper §6) depends on this ordering.
  const double ctrl = mix("ctrl8").diversity();
  const double bal = mix("bal1").diversity();
  EXPECT_LT(ctrl, bal);
}

TEST(Mix, DiversityIsNonNegative) {
  for (const Mix& m : all_mixes()) {
    EXPECT_GE(m.diversity(), 0.0) << m.name;
  }
}

TEST(Mix, SubsetKeepsMembersOfParent) {
  const Mix& m = mix("int8");
  for (std::size_t threads : {1u, 4u, 6u, 8u}) {
    const auto apps = mix_for_threads(m, threads, 7);
    EXPECT_EQ(apps.size(), threads);
    for (const auto& a : apps) {
      EXPECT_NE(std::find(m.apps.begin(), m.apps.end(), a), m.apps.end());
    }
  }
}

TEST(Mix, SubsetIsDeterministicPerSeed) {
  const Mix& m = mix("bal2");
  EXPECT_EQ(mix_for_threads(m, 4, 1), mix_for_threads(m, 4, 1));
}

TEST(Mix, SubsetVariesWithSeed) {
  const Mix& m = mix("bal2");
  bool differs = false;
  for (std::uint64_t s = 2; s < 12 && !differs; ++s) {
    differs = mix_for_threads(m, 4, 1) != mix_for_threads(m, 4, s);
  }
  EXPECT_TRUE(differs);
}

TEST(Mix, SubsetRejectsBadCounts) {
  const Mix& m = mix("fp8");
  EXPECT_THROW(mix_for_threads(m, 0, 1), std::invalid_argument);
  EXPECT_THROW(mix_for_threads(m, 9, 1), std::invalid_argument);
}

TEST(Mix, FullSubsetIsIdentity) {
  const Mix& m = mix("var1");
  EXPECT_EQ(mix_for_threads(m, 8, 3), m.apps);
}

TEST(Mix, ConstructionAxesCovered) {
  // At least one mostly-INT, one mostly-FP and one balanced mix exist.
  auto fp_count = [](const Mix& m) {
    int n = 0;
    for (const auto& a : m.apps) {
      if (profile(a).is_fp_app()) ++n;
    }
    return n;
  };
  EXPECT_LE(fp_count(mix("int8")), 1);
  EXPECT_GE(fp_count(mix("fp8")), 7);
  EXPECT_EQ(fp_count(mix("bal1")), 4);
}

}  // namespace
}  // namespace smt::workload
