// End-to-end ADTS behaviour tests at the Simulator level: arming after
// warm-up, gradient damping, detector cost accounting — regression tests
// for the dynamics the benches measure.
#include <gtest/gtest.h>

#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::sim {
namespace {

SimConfig adts_cfg(const char* mix, core::HeuristicType h, double m,
                   std::uint64_t seed = 42) {
  SimConfig cfg = make_config(workload::mix(mix), 8, seed);
  cfg.use_adts = true;
  cfg.adts.heuristic = h;
  cfg.adts.ipc_threshold = m;
  return cfg;
}

TEST(AdtsEnd2End, ArmingAfterWarmupAvoidsColdStartSwitches) {
  // ilp8 sustains IPC well above m=2 once warm; a detector armed *after*
  // warm-up must therefore never see a low-throughput quantum. (Without
  // arming, the cold first quanta would trigger a switch the run never
  // recovers from — the regression this test pins.)
  Simulator s(adts_cfg("ilp8", core::HeuristicType::kType3, 2.0));
  s.set_adts_active(false);
  s.run(32768);
  s.set_adts_active(true);
  s.run(16 * 8192);
  EXPECT_EQ(s.detector().stats().low_throughput_quanta, 0u);
  EXPECT_EQ(s.detector().stats().switches, 0u);
  EXPECT_EQ(s.pipeline().policy(), policy::FetchPolicy::kIcount);
}

TEST(AdtsEnd2End, ColdStartWithoutArmingDoesSwitch) {
  // The counterpart: the same configuration started cold sees low
  // throughput immediately.
  Simulator s(adts_cfg("ilp8", core::HeuristicType::kType3, 2.0));
  s.run(2 * 8192);
  EXPECT_GT(s.detector().stats().low_throughput_quanta, 0u);
}

TEST(AdtsEnd2End, GradientRuleDampsSwitching) {
  // Type 3′ adds only the positive-gradient hold to Type 3, so over the
  // same deterministic run it can only reduce (or keep) switch count.
  Simulator t3(adts_cfg("mem8", core::HeuristicType::kType3, 2.0));
  Simulator t3p(adts_cfg("mem8", core::HeuristicType::kType3Prime, 2.0));
  t3.run(24 * 8192);
  t3p.run(24 * 8192);
  EXPECT_LE(t3p.detector().stats().switches, t3.detector().stats().switches);
}

TEST(AdtsEnd2End, DetectorConsumesIdleSlots) {
  Simulator s(adts_cfg("mem8", core::HeuristicType::kType3, 5.0));
  // A few cycles past the last boundary so the work queued there drains.
  s.run(8 * 8192 + 256);
  // Every quantum queues at least the monitoring cost, and mem8 has idle
  // slots to burn, so DT slots must accumulate and drain.
  EXPECT_GT(s.pipeline().stats().dt_slots_used, 0u);
  EXPECT_EQ(s.pipeline().dt_work_remaining(), 0u);
}

TEST(AdtsEnd2End, SwitchCountsAreSeedStable) {
  Simulator a(adts_cfg("int8", core::HeuristicType::kType2, 3.0));
  Simulator b(adts_cfg("int8", core::HeuristicType::kType2, 3.0));
  a.run(20 * 8192);
  b.run(20 * 8192);
  EXPECT_EQ(a.detector().stats().switches, b.detector().stats().switches);
  EXPECT_EQ(a.detector().stats().benign_switches,
            b.detector().stats().benign_switches);
}

TEST(AdtsEnd2End, HigherThresholdNeverReducesLowQuanta) {
  // Monotonicity of the detection rule itself, end to end.
  std::uint64_t prev = 0;
  for (double m : {1.0, 2.0, 4.0}) {
    Simulator s(adts_cfg("bal1", core::HeuristicType::kType1, m));
    s.run(12 * 8192);
    const std::uint64_t low = s.detector().stats().low_throughput_quanta;
    EXPECT_GE(low, prev) << "m=" << m;
    prev = low;
  }
}

TEST(AdtsEnd2End, AdaptiveConditionsFixTheAlwaysOnPathology) {
  // int8 is branchy enough that its mispredict rate sits above the
  // static all-mix calibration in every quantum, so static COND_BR is
  // permanently asserted and Type 3 keeps lurching into BRCOUNT; the
  // adaptive (EWMA-relative) thresholds judge each quantum against the
  // mix's own history and avoid that. Deterministic regression pin.
  SimConfig stat = adts_cfg("int8", core::HeuristicType::kType3, 2.0);
  SimConfig adap = stat;
  adap.adts.adaptive_conditions = true;

  SamplingPlan plan;
  plan.intervals = 2;
  plan.warmup_cycles = 32768;
  plan.measure_cycles = 24 * 8192;
  const SampleResult rs = run_sampled(stat, plan);
  const SampleResult ra = run_sampled(adap, plan);
  EXPECT_GT(ra.ipc(), rs.ipc());
}

TEST(AdtsEnd2End, AdaptiveConditionsAreQuietOnSteadyRates) {
  // With a spike-relative factor, a workload whose rates are steady
  // should raise conditions rarely — far less than static thresholds
  // pinned below the mix's typical level would.
  SimConfig cfg = adts_cfg("fp8", core::HeuristicType::kType3, 100.0);
  cfg.adts.adaptive_conditions = true;
  cfg.adts.adaptive_factor = 3.0;  // only enormous spikes qualify
  Simulator s(cfg);
  s.run(24 * 8192);
  // Every quantum is "low throughput" (threshold 100) yet conditions
  // virtually never fire, so Type 3 stays on ICOUNT.
  EXPECT_LE(s.detector().stats().switches, 2u);
}

TEST(AdtsEnd2End, SamplingDriverArmsDetectorPerInterval) {
  SamplingPlan plan;
  plan.intervals = 2;
  plan.warmup_cycles = 16384;
  plan.measure_cycles = 8 * 8192;
  const SampleResult r =
      run_sampled(adts_cfg("ilp8", core::HeuristicType::kType3, 2.0), plan);
  EXPECT_EQ(r.switches, 0u)
      << "warm ilp8 above threshold: no switches in any interval";
  EXPECT_EQ(r.quanta, 16u);
}

}  // namespace
}  // namespace smt::sim
