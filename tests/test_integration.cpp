// End-to-end integration tests: whole-simulator behaviour that crosses
// every module boundary — throughput sanity, determinism, snapshot
// fidelity, ADTS end-to-end, oracle dominance.
#include <gtest/gtest.h>

#include "sim/oracle.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt {
namespace {

sim::SimConfig config_for(const char* mix_name, std::size_t threads,
                          std::uint64_t seed = 42) {
  return sim::make_config(workload::mix(mix_name), threads, seed);
}

TEST(Integration, EightThreadMixReachesPlausibleThroughput) {
  sim::Simulator s(config_for("ilp8", 8));
  s.run(60000);
  const double ipc = s.ipc();
  // An 8-wide SMT with 8 well-behaved threads should sustain real
  // throughput: far above single-thread levels, below the fetch width.
  EXPECT_GT(ipc, 2.0);
  EXPECT_LT(ipc, 8.0);
}

TEST(Integration, MemoryBoundMixIsSlowerThanIlpMix) {
  sim::Simulator mem(config_for("cache8", 8));
  sim::Simulator ilp(config_for("ilp8", 8));
  mem.run(60000);
  ilp.run(60000);
  EXPECT_LT(mem.ipc(), ilp.ipc());
}

TEST(Integration, RunsAreDeterministic) {
  sim::Simulator a(config_for("bal1", 8));
  sim::Simulator b(config_for("bal1", 8));
  a.run(30000);
  b.run(30000);
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_EQ(a.pipeline().stats().fetched, b.pipeline().stats().fetched);
  EXPECT_EQ(a.pipeline().stats().mispredicts, b.pipeline().stats().mispredicts);
}

TEST(Integration, SnapshotResumesIdentically) {
  sim::Simulator a(config_for("var1", 8));
  a.run(20000);
  sim::Simulator b = a;  // snapshot
  a.run(20000);
  b.run(20000);
  EXPECT_EQ(a.committed(), b.committed());
  EXPECT_EQ(a.pipeline().stats().squashed, b.pipeline().stats().squashed);
}

TEST(Integration, DifferentSeedsProduceDifferentRuns) {
  sim::Simulator a(config_for("bal1", 8, 1));
  sim::Simulator b(config_for("bal1", 8, 2));
  a.run(30000);
  b.run(30000);
  EXPECT_NE(a.committed(), b.committed());
}

TEST(Integration, CounterInvariantsHoldDuringLongRun) {
  sim::Simulator s(config_for("ctrl8", 8));
  for (int chunk = 0; chunk < 20; ++chunk) {
    s.run(2500);
    ASSERT_TRUE(s.pipeline().check_counter_invariants())
        << "at cycle " << s.now();
  }
}

TEST(Integration, AdtsRunSwitchesPolicies) {
  sim::SimConfig cfg = config_for("mem8", 8);
  cfg.use_adts = true;
  cfg.adts.ipc_threshold = 5.0;  // aggressive: force low-throughput quanta
  cfg.adts.heuristic = core::HeuristicType::kType2;
  sim::Simulator s(cfg);
  s.run(30 * 8192);
  EXPECT_GT(s.detector().stats().quanta, 0u);
  EXPECT_GT(s.detector().stats().switches, 0u);
}

TEST(Integration, OracleNeverLosesToFixedIcountOverOneQuantum) {
  sim::SimConfig cfg = config_for("bal4", 8);
  sim::Simulator base(cfg);
  base.run(16384);  // warm up

  // Fixed ICOUNT continuation for exactly one quantum.
  sim::Simulator fixed = base;
  const std::uint64_t before = fixed.committed();
  fixed.run(8192);
  const std::uint64_t fixed_committed = fixed.committed() - before;

  // Single-quantum oracle with ICOUNT among the candidates: max over a
  // set containing the fixed choice cannot lose. (Over multiple quanta
  // the per-quantum greedy oracle is not globally optimal and *can*
  // narrowly lose; see the tolerance test below.)
  const sim::OracleResult oracle =
      sim::run_oracle(base, 1, sim::OracleConfig{});
  EXPECT_GE(oracle.committed, fixed_committed);

  const sim::OracleResult oracle8 =
      sim::run_oracle(base, 8, sim::OracleConfig{});
  sim::Simulator fixed8 = base;
  const std::uint64_t before8 = fixed8.committed();
  fixed8.run(8 * 8192);
  EXPECT_GE(static_cast<double>(oracle8.committed),
            0.95 * static_cast<double>(fixed8.committed() - before8));
}

TEST(Integration, FourToEightThreadsDoNotScaleLinearly) {
  // The saturation effect the paper targets: going 4 → 8 threads must
  // yield clearly sublinear throughput growth.
  sim::Simulator s4(config_for("span8", 4));
  sim::Simulator s8(config_for("span8", 8));
  s4.run(60000);
  s8.run(60000);
  EXPECT_GT(s8.ipc(), s4.ipc() * 0.8);  // not collapsing
  EXPECT_LT(s8.ipc(), s4.ipc() * 1.9);  // far from 2x
}

TEST(Integration, SampledRunAggregatesIntervals) {
  sim::SamplingPlan plan;
  plan.intervals = 2;
  plan.warmup_cycles = 4096;
  plan.measure_cycles = 16384;
  const sim::SampleResult r = sim::run_sampled(config_for("bal2", 8), plan);
  EXPECT_EQ(r.cycles, 2u * 16384u);
  EXPECT_GT(r.ipc(), 0.5);
  EXPECT_EQ(r.interval_ipc.count(), 2u);
}

}  // namespace
}  // namespace smt
