// Unit tests: the in-repo static analyzer (src/lint/, DESIGN.md §16).
//
// Organised as the rule catalog demands: every registered rule id has a
// firing negative fixture here (a snippet that MUST produce exactly that
// finding) plus a clean positive showing the allowlisted / corrected
// form, so a rule that silently stops firing fails the suite. The lexer,
// NOLINT suppression, baseline application and the report writers'
// byte-determinism are covered on the same synthetic-corpus path the
// CLI uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint/report.hpp"
#include "lint/rule.hpp"
#include "lint/runner.hpp"
#include "lint/source_file.hpp"

namespace smt::lint {
namespace {

/// Run the full builtin catalog over synthetic files.
LintResult lint(std::vector<InputFile> files, LintOptions options = {}) {
  return run_lint(builtin_rules(), std::move(files), options);
}

/// All distinct rule ids among the findings.
std::vector<std::string> rule_ids(const LintResult& r) {
  std::vector<std::string> ids;
  for (const Finding& f : r.findings) ids.push_back(f.rule_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Count of findings carrying `id`.
int count_of(const LintResult& r, const std::string& id) {
  int n = 0;
  for (const Finding& f : r.findings) n += (f.rule_id == id) ? 1 : 0;
  return n;
}

// --- lexer -----------------------------------------------------------------

TEST(LintLexer, BlanksLineCommentsButKeepsColumns) {
  const SourceFile f("src/a/x.cpp", "int x = 1;  // srand(7)\n");
  EXPECT_EQ(f.code(1).substr(0, 10), "int x = 1;");
  EXPECT_EQ(f.code(1).find("srand"), std::string::npos);
  EXPECT_EQ(f.code(1).size(), f.raw(1).size());
}

TEST(LintLexer, BlanksBlockCommentsAcrossLines) {
  const SourceFile f("src/a/x.cpp",
                     "int a; /* srand(1)\n srand(2) */ int b;\n");
  EXPECT_EQ(f.code(1).find("srand"), std::string::npos);
  EXPECT_EQ(f.code(2).find("srand"), std::string::npos);
  EXPECT_NE(f.code(2).find("int b;"), std::string::npos);
}

TEST(LintLexer, BlanksStringContentsAndRecordsThem) {
  const SourceFile f("src/a/x.cpp",
                     "const char* s = \"call srand(3) now\";\n");
  EXPECT_EQ(f.code(1).find("srand"), std::string::npos);
  ASSERT_EQ(f.strings().size(), 1u);
  EXPECT_EQ(f.strings()[0].value, "call srand(3) now");
  EXPECT_EQ(f.strings()[0].line, 1);
}

TEST(LintLexer, RawStringWithDelimiter) {
  const SourceFile f("src/a/x.cpp",
                     "auto s = R\"x(one \"two\" srand())x\";\nint y;\n");
  EXPECT_EQ(f.code(1).find("srand"), std::string::npos);
  ASSERT_EQ(f.strings().size(), 1u);
  EXPECT_EQ(f.strings()[0].value, "one \"two\" srand()");
  EXPECT_NE(f.code(2).find("int y;"), std::string::npos);
}

TEST(LintLexer, CharLiteralsBlankedDigitSeparatorsAreNot) {
  const SourceFile f("src/a/x.cpp",
                     "char c = '\\'';\nlong n = 1'000'000;\n");
  EXPECT_EQ(f.code(1).find('\\'), std::string::npos);
  EXPECT_NE(f.code(2).find("1'000'000"), std::string::npos);
}

TEST(LintLexer, PreprocessorLinesAreBlankedButIncludesParsed) {
  const SourceFile f("src/a/x.hpp",
                     "#pragma once\n#include <vector>\n"
                     "#include \"common/rng.hpp\"\n");
  EXPECT_TRUE(f.has_pragma_once());
  ASSERT_EQ(f.includes().size(), 2u);
  EXPECT_TRUE(f.includes()[0].angled);
  EXPECT_EQ(f.includes()[0].target, "vector");
  EXPECT_FALSE(f.includes()[1].angled);
  EXPECT_EQ(f.includes()[1].target, "common/rng.hpp");
  EXPECT_TRUE(f.includes_project("common/rng.hpp"));
  EXPECT_EQ(f.code(2).find("vector"), std::string::npos);
}

TEST(LintLexer, EnclosingFunctionTracksNestingAndLambdas) {
  const SourceFile f("src/a/x.cpp",
                     "namespace smt::a {\n"
                     "void Pipe::step() {\n"
                     "  auto fn = [&]() {\n"
                     "    int y = 0;\n"
                     "  };\n"
                     "}\n"
                     "}  // namespace smt::a\n");
  EXPECT_EQ(f.enclosing_function(4), "lambda");
  const std::vector<std::string> stack = f.enclosing_functions(4);
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0], "step");
  EXPECT_EQ(stack[1], "lambda");
  EXPECT_EQ(f.enclosing_function(7), "");
}

TEST(LintLexer, RecordsNamespaceScopeTypeDecls) {
  const SourceFile f("src/foo/types.hpp",
                     "#pragma once\n"
                     "namespace smt::foo {\n"
                     "struct Widget { int x; };\n"
                     "class Gadget {\n"
                     "  struct Inner {};\n"
                     "};\n"
                     "}  // namespace smt::foo\n");
  ASSERT_EQ(f.type_decls().size(), 2u);  // Inner is not namespace-scope
  EXPECT_EQ(f.type_decls()[0].ns_tail, "foo");
  EXPECT_EQ(f.type_decls()[0].name, "Widget");
  EXPECT_EQ(f.type_decls()[1].name, "Gadget");
}

// --- the false-positive class the grep gate could not close ----------------

TEST(LintRules, BannedTokensInCommentsAndStringsDoNotFire) {
  const LintResult r = lint({{"src/a/x.cpp",
                              "// never call srand(1) or rand() here\n"
                              "/* std::cout << unordered_map */\n"
                              "const char* kDoc =\n"
                              "    \"srand(2) steady_clock std::cerr\";\n"
                              "int f() { return kDoc[0]; }  // srand(3)\n"}});
  EXPECT_TRUE(r.findings.empty())
      << "unexpected: " << r.findings[0].message;
}

// --- one firing negative per rule id ---------------------------------------

TEST(LintRules, AmbientClockFires) {
  const LintResult r = lint({{"src/a/x.cpp", "void f() { srand(7); }\n"}});
  ASSERT_EQ(count_of(r, "ambient-clock"), 1);
  EXPECT_EQ(r.findings[0].line, 1);
  EXPECT_EQ(r.findings[0].col, 12);
}

TEST(LintRules, AmbientClockAllowsHostClockAndBenchSteadyClock) {
  const LintResult r = lint(
      {{"src/prof/host_clock.cpp",
        "long t() { return std::chrono::steady_clock::now(); }\n"},
       {"bench/bench_x.cpp",
        "long t() { return std::chrono::steady_clock::now(); }\n"}});
  EXPECT_EQ(count_of(r, "ambient-clock"), 0);
}

TEST(LintRules, AmbientClockStillFiresOnBenchWallClock) {
  const LintResult r = lint(
      {{"bench/bench_x.cpp",
        "long t() { return std::chrono::system_clock::now(); }\n"}});
  EXPECT_EQ(count_of(r, "ambient-clock"), 1);
}

TEST(LintRules, UnorderedContainerFires) {
  const LintResult r = lint({{"src/a/x.cpp",
                              "#include <unordered_map>\n"
                              "std::unordered_map<int, int> m;\n"}});
  EXPECT_EQ(count_of(r, "unordered-container"), 2);  // include + use
}

TEST(LintRules, UnorderedContainerAllowedInTools) {
  const LintResult r = lint(
      {{"src/tools/x.cpp", "#include <unordered_map>\n"}});
  EXPECT_EQ(count_of(r, "unordered-container"), 0);
}

TEST(LintRules, LibraryIostreamFires) {
  const LintResult r = lint({{"src/a/x.cpp",
                              "#include <iostream>\n"
                              "void f() { std::cout << 1; }\n"}});
  EXPECT_EQ(count_of(r, "library-iostream"), 2);
}

TEST(LintRules, LibraryIostreamAllowedInToolsAndBench) {
  const LintResult r = lint(
      {{"src/tools/x.cpp", "#include <iostream>\n"},
       {"bench/bench_x.cpp", "void f() { std::cout << 1; }\n"}});
  EXPECT_EQ(count_of(r, "library-iostream"), 0);
}

TEST(LintRules, PragmaOnceFires) {
  const LintResult r = lint({{"src/a/x.hpp", "int x;\n"}});
  EXPECT_EQ(count_of(r, "pragma-once"), 1);
}

TEST(LintRules, PragmaOnceSatisfied) {
  const LintResult r = lint({{"src/a/x.hpp", "#pragma once\nint x;\n"}});
  EXPECT_EQ(count_of(r, "pragma-once"), 0);
}

TEST(LintRules, ThreadPrimitiveFires) {
  const LintResult r = lint({{"src/a/x.cpp",
                              "#include <mutex>\n"
                              "std::mutex m;\n"}});
  EXPECT_EQ(count_of(r, "thread-primitive"), 2);
}

TEST(LintRules, ThreadPrimitiveAllowedInPar) {
  const LintResult r = lint({{"src/par/pool.cpp",
                              "#include <mutex>\n"
                              "std::mutex m;\n"}});
  EXPECT_EQ(count_of(r, "thread-primitive"), 0);
}

TEST(LintRules, UsingNamespaceHeaderFires) {
  const LintResult r = lint(
      {{"src/a/x.hpp", "#pragma once\nusing namespace std;\n"}});
  EXPECT_EQ(count_of(r, "using-namespace-header"), 1);
}

TEST(LintRules, UsingNamespaceAllowedInCpp) {
  const LintResult r = lint(
      {{"src/tools/x.cpp", "int main() { using namespace smt; }\n"}});
  EXPECT_EQ(count_of(r, "using-namespace-header"), 0);
}

TEST(LintRules, SelfIncludeFirstFires) {
  const LintResult r = lint(
      {{"src/a/x.hpp", "#pragma once\nint f();\n"},
       {"src/a/x.cpp",
        "#include <vector>\n#include \"a/x.hpp\"\nint f() { return 1; }\n"}});
  ASSERT_EQ(count_of(r, "self-include-first"), 1);
  EXPECT_EQ(r.findings[0].path, "src/a/x.cpp");
}

TEST(LintRules, SelfIncludeFirstSatisfied) {
  const LintResult r = lint(
      {{"src/a/x.hpp", "#pragma once\nint f();\n"},
       {"src/a/x.cpp",
        "#include \"a/x.hpp\"\n#include <vector>\nint f() { return 1; }\n"}});
  EXPECT_EQ(count_of(r, "self-include-first"), 0);
}

TEST(LintRules, DirectIncludeFires) {
  const LintResult r = lint(
      {{"src/foo/types.hpp",
        "#pragma once\nnamespace smt::foo {\nstruct Widget { int x; };\n"
        "}  // namespace smt::foo\n"},
       {"src/bar/use.cpp",
        "namespace smt::bar {\nint f() { foo::Widget w{}; return w.x; }\n"
        "}  // namespace smt::bar\n"}});
  ASSERT_EQ(count_of(r, "direct-include"), 1);
  EXPECT_EQ(r.findings[0].path, "src/bar/use.cpp");
  EXPECT_NE(r.findings[0].message.find("foo/types.hpp"), std::string::npos);
}

TEST(LintRules, DirectIncludeSatisfiedAndDedupedPerTarget) {
  const LintResult r = lint(
      {{"src/foo/types.hpp",
        "#pragma once\nnamespace smt::foo {\nstruct Widget { int x; };\n"
        "}  // namespace smt::foo\n"},
       {"src/bar/use.cpp",
        "#include \"foo/types.hpp\"\n"
        "namespace smt::bar {\nint f() { foo::Widget w{}; return w.x; }\n"
        "}  // namespace smt::bar\n"}});
  EXPECT_EQ(count_of(r, "direct-include"), 0);
}

TEST(LintRules, ExitCodeLiteralFires) {
  const LintResult r = lint(
      {{"src/tools/x.cpp",
        "int main() {\n  if (bad()) exit(1);\n  return 0;\n}\n"}});
  EXPECT_EQ(count_of(r, "exit-code-literal"), 2);
}

TEST(LintRules, ExitCodeConstantsAreClean) {
  const LintResult r = lint(
      {{"src/tools/x.cpp", "int main() { return kExitOk; }\n"}});
  EXPECT_EQ(count_of(r, "exit-code-literal"), 0);
}

TEST(LintRules, HotPathAllocFiresOnStdFunctionAnywhere) {
  const LintResult r = lint(
      {{"src/pipeline/x.hpp",
        "#pragma once\n#include <functional>\n"
        "std::function<void()> hook;\n"}});
  EXPECT_EQ(count_of(r, "hot-path-alloc"), 1);
}

TEST(LintRules, HotPathAllocFiresOnNewInStepPath) {
  const LintResult r = lint(
      {{"src/sim/x.cpp",
        "namespace smt::sim {\n"
        "void Simulator::step() { int* p = new int(3); use(p); }\n"
        "}  // namespace smt::sim\n"}});
  ASSERT_EQ(count_of(r, "hot-path-alloc"), 1);
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(LintRules, HotPathAllocAllowsConstructorAllocation) {
  const LintResult r = lint(
      {{"src/pipeline/x.cpp",
        "namespace smt::pipeline {\n"
        "Pipe::Pipe() { buf_ = new int[64]; }\n"
        "void Pipe::report() { auto p = std::make_unique<int>(1); }\n"
        "}  // namespace smt::pipeline\n"}});
  EXPECT_EQ(count_of(r, "hot-path-alloc"), 0);
}

TEST(LintRules, HotPathAllocFiresOnEraseInsertInStepPath) {
  const LintResult r = lint(
      {{"src/pipeline/x.cpp",
        "namespace smt::pipeline {\n"
        "void Pipe::do_issue() { q_.erase(q_.begin()); }\n"
        "void Pipe::step() { lsq_->insert(lsq_->begin(), v); }\n"
        "}  // namespace smt::pipeline\n"}});
  ASSERT_EQ(count_of(r, "hot-path-alloc"), 2);
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_NE(r.findings[0].message.find("erase"), std::string::npos);
  EXPECT_EQ(r.findings[1].line, 3);
}

TEST(LintRules, HotPathAllocAllowsEraseOutsideStepPathAndBareWords) {
  const LintResult r = lint(
      {{"src/sim/x.cpp",
        "namespace smt::sim {\n"
        // Cold path: erase in a setup/reporting function is fine.
        "void Simulator::reset() { jobs_.erase(jobs_.begin()); }\n"
        // Bare identifier named `insert` is not a member call.
        "void Simulator::step() { int insert = 0; use(insert); }\n"
        "}  // namespace smt::sim\n"}});
  EXPECT_EQ(count_of(r, "hot-path-alloc"), 0);
}

TEST(LintRules, HotPathAllocFiresOnNestedVectorAnywhere) {
  const LintResult r = lint(
      {{"src/pipeline/x.hpp",
        "#pragma once\n#include <vector>\n"
        "namespace smt::pipeline {\n"
        "struct Ring { std::vector<std::vector<int>> lanes; };\n"
        "}  // namespace smt::pipeline\n"}});
  ASSERT_EQ(count_of(r, "hot-path-alloc"), 1);
  EXPECT_EQ(r.findings[0].line, 4);
  EXPECT_NE(r.findings[0].message.find("flat"), std::string::npos);
}

TEST(LintRules, HotPathAllocAllowsFlatVectorMembers) {
  const LintResult r = lint(
      {{"src/pipeline/x.hpp",
        "#pragma once\n#include <vector>\n"
        "namespace smt::pipeline {\n"
        "struct Ring { std::vector<int> flat; std::vector<Ref> q; };\n"
        "}  // namespace smt::pipeline\n"}});
  EXPECT_EQ(count_of(r, "hot-path-alloc"), 0);
}

TEST(LintRules, SchemaSyncFiresOnAssertedButNeverEmittedKind) {
  const LintResult r = lint(
      {{"src/obs/trace_event.hpp",
        "#pragma once\nnamespace smt::obs {\n"
        "inline const char* name(EventKind k) {\n"
        "  switch (k) {\n"
        "    case EventKind::kFetch: return \"fetch\";\n"
        "  }\n"
        "  return \"unknown\";\n"
        "}\n}  // namespace smt::obs\n"},
       {"scripts/check_observability.sh",
        "KINDS = {\"fetch\", \"bogus\"}\n"}});
  ASSERT_EQ(count_of(r, "schema-sync"), 1);
  EXPECT_NE(r.findings[0].message.find("bogus"), std::string::npos);
}

TEST(LintRules, SchemaSyncFiresOnEmittedButUnassertedKind) {
  const LintResult r = lint(
      {{"src/obs/trace_event.hpp",
        "#pragma once\nnamespace smt::obs {\n"
        "inline const char* name(EventKind k) {\n"
        "  switch (k) {\n"
        "    case EventKind::kFetch: return \"fetch\";\n"
        "    case EventKind::kIssue: return \"issue\";\n"
        "  }\n"
        "  return \"unknown\";\n"
        "}\n}  // namespace smt::obs\n"},
       {"scripts/check_observability.sh", "KINDS = {\"fetch\"}\n"}});
  ASSERT_EQ(count_of(r, "schema-sync"), 1);
  EXPECT_EQ(r.findings[0].path, "src/obs/trace_event.hpp");
  EXPECT_NE(r.findings[0].message.find("issue"), std::string::npos);
}

TEST(LintRules, SchemaSyncChecksStatsKeyPaths) {
  const LintResult fires = lint(
      {{"src/sim/stats.cpp",
        "const char* k = \"machine.ipc\";\n"},
       {"scripts/check_observability.sh",
        "assert stats[\"machine\"][\"ipc\"]\n"
        "assert stats[\"machine\"][\"bogus\"]\n"}});
  ASSERT_EQ(count_of(fires, "schema-sync"), 1);
  EXPECT_NE(fires.findings[0].message.find("machine.bogus"),
            std::string::npos);

  // A dynamic "machine.stalls.%s"-style literal covers the family.
  const LintResult clean = lint(
      {{"src/sim/stats.cpp",
        "const char* k = \"machine.stalls.%s\";\n"},
       {"scripts/check_observability.sh",
        "assert stats[\"machine\"][\"stalls\"]\n"}});
  EXPECT_EQ(count_of(clean, "schema-sync"), 0);
}

TEST(LintRules, BadNolintFires) {
  const LintResult r = lint(
      {{"src/a/x.cpp", "int x;  // NOLINT(no-such-rule)\n"}});
  ASSERT_EQ(count_of(r, "bad-nolint"), 1);
  EXPECT_NE(r.findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintRules, BaselineStaleFires) {
  LintOptions options;
  options.baseline = "ambient-clock src/a/x.cpp:99\n";
  const LintResult r = lint({{"src/a/x.cpp", "int x;\n"}}, options);
  ASSERT_EQ(count_of(r, "baseline-stale"), 1);
  EXPECT_EQ(r.findings[0].path, ".smtlint-baseline");
  EXPECT_EQ(r.findings[0].line, 1);
}

// --- suppression -----------------------------------------------------------

TEST(LintSuppression, NolintWithIdSuppressesOnlyThatRule) {
  const LintResult r = lint(
      {{"src/a/x.cpp",
        "void f() { srand(7); }  // NOLINT(ambient-clock)\n"}});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintSuppression, NolintWrongIdDoesNotSuppress) {
  const LintResult r = lint(
      {{"src/a/x.cpp",
        "void f() { srand(7); }  // NOLINT(pragma-once)\n"}});
  EXPECT_EQ(count_of(r, "ambient-clock"), 1);
}

TEST(LintSuppression, NolintNextlineSuppressesTheLineBelow) {
  const LintResult r = lint(
      {{"src/a/x.cpp",
        "// NOLINTNEXTLINE(ambient-clock)\nvoid f() { srand(7); }\n"}});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintSuppression, BareNolintSuppressesEverythingOnTheLine) {
  const LintResult r = lint(
      {{"src/a/x.cpp", "void f() { srand(7); }  // NOLINT\n"}});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

// --- baseline --------------------------------------------------------------

TEST(LintBaseline, MatchingEntrySilencesTheFinding) {
  LintOptions options;
  options.baseline = "# comment\nambient-clock src/a/x.cpp:1\n";
  const LintResult r =
      lint({{"src/a/x.cpp", "void f() { srand(7); }\n"}}, options);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined, 1);
}

TEST(LintBaseline, MalformedBaselineThrows) {
  LintOptions options;
  options.baseline = "not a valid entry\n";
  EXPECT_THROW(lint({{"src/a/x.cpp", "int x;\n"}}, options),
               std::runtime_error);
}

TEST(LintBaseline, UnknownOnlyRuleThrows) {
  LintOptions options;
  options.only_rules = {"no-such-rule"};
  EXPECT_THROW(lint({{"src/a/x.cpp", "int x;\n"}}, options),
               std::runtime_error);
}

// --- determinism & reports -------------------------------------------------

TEST(LintReport, FindingsAreIndependentOfInputOrder) {
  const std::vector<InputFile> forward = {
      {"src/a/x.cpp", "void f() { srand(7); }\n"},
      {"src/b/y.cpp", "#include <unordered_map>\n"}};
  std::vector<InputFile> backward(forward.rbegin(), forward.rend());
  const LintResult r1 = lint(forward);
  const LintResult r2 = lint(backward);
  ASSERT_EQ(r1.findings.size(), r2.findings.size());
  for (std::size_t i = 0; i < r1.findings.size(); ++i) {
    EXPECT_EQ(r1.findings[i].path, r2.findings[i].path);
    EXPECT_EQ(r1.findings[i].rule_id, r2.findings[i].rule_id);
  }
}

TEST(LintReport, TextAndSarifAreByteDeterministic) {
  const std::vector<InputFile> files = {
      {"src/a/x.cpp", "void f() { srand(7); }\n"}};
  const RuleRegistry reg = builtin_rules();
  const LintResult r = run_lint(reg, files, {});
  std::ostringstream t1;
  std::ostringstream t2;
  write_text(t1, r);
  write_text(t2, r);
  EXPECT_EQ(t1.str(), t2.str());
  std::ostringstream s1;
  std::ostringstream s2;
  write_sarif(s1, r, reg);
  write_sarif(s2, r, reg);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(LintReport, TextFormatCarriesLocationAndRuleId) {
  const LintResult r = lint({{"src/a/x.cpp", "void f() { srand(7); }\n"}});
  std::ostringstream os;
  write_text(os, r);
  EXPECT_NE(os.str().find("src/a/x.cpp:1:12: error:"), std::string::npos);
  EXPECT_NE(os.str().find("[ambient-clock]"), std::string::npos);
  EXPECT_NE(os.str().find("smtlint: 1 finding"), std::string::npos);
}

TEST(LintReport, SarifCarriesSchemaRulesAndResult) {
  const RuleRegistry reg = builtin_rules();
  const LintResult r = run_lint(
      reg, {{"src/a/x.cpp", "void f() { srand(7); }\n"}}, {});
  std::ostringstream os;
  write_sarif(os, r, reg);
  const std::string sarif = os.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"ambient-clock\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser
  // (scripts/check_smtlint.sh json-parses the real tool output).
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
}

TEST(LintReport, CleanRunSummarizesOk) {
  const LintResult r = lint({{"src/a/x.cpp", "int x;\n"}});
  std::ostringstream os;
  write_text(os, r);
  EXPECT_NE(os.str().find("smtlint: OK"), std::string::npos);
}

// --- registry --------------------------------------------------------------

TEST(LintRegistry, CatalogIsSortedAndComplete) {
  const RuleRegistry reg = builtin_rules();
  const std::vector<std::string> expected = {
      "ambient-clock",      "bad-nolint",
      "baseline-stale",     "direct-include",
      "exit-code-literal",  "hot-path-alloc",
      "library-iostream",   "pragma-once",
      "schema-sync",        "self-include-first",
      "thread-primitive",   "unordered-container",
      "using-namespace-header"};
  ASSERT_EQ(reg.rules().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reg.rules()[i]->id(), expected[i]);
    EXPECT_TRUE(reg.has(expected[i]));
  }
  EXPECT_FALSE(reg.has("no-such-rule"));
}

TEST(LintRegistry, OnlyRulesRestrictsTheRun) {
  LintOptions options;
  options.only_rules = {"pragma-once"};
  const LintResult r = lint(
      {{"src/a/x.hpp", "void f() { srand(7); }\n"}}, options);
  EXPECT_EQ(rule_ids(r), std::vector<std::string>{"pragma-once"});
  EXPECT_EQ(r.rules_run, 1);
}

}  // namespace
}  // namespace smt::lint
