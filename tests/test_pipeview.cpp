// Tests: pipeview instruction-lifecycle sampling — window accounting,
// stage-stamp monotonicity, terminal coverage, and the observation-only
// contract (sampling never perturbs the simulated machine; copies drop
// the sampler with the sink).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt {
namespace {

sim::SimConfig pipeview_config(const char* mix_name,
                               std::vector<pipeline::PipeviewWindow> windows) {
  sim::SimConfig cfg = sim::make_config(workload::mix(mix_name), 8, 2003);
  cfg.use_adts = true;
  cfg.adts.quantum_cycles = 1024;
  cfg.pipeview = std::move(windows);
  return cfg;
}

std::vector<obs::TraceEvent> pipeview_events(const obs::TraceSink& sink) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : sink.snapshot()) {
    if (e.kind == obs::EventKind::kPipeview) out.push_back(e);
  }
  return out;
}

TEST(Pipeview, OffByDefaultEvenWithASinkAttached) {
  sim::Simulator s(pipeview_config("mem8", {}));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(8 * 1024);
  EXPECT_FALSE(s.pipeline().pipeview_active());
  EXPECT_TRUE(pipeview_events(sink).empty());
}

TEST(Pipeview, WindowsBoundTheSampleCountExactly) {
  sim::Simulator s(pipeview_config("mem8", {{2048, 64}, {8192, 32}}));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(32 * 1024);  // long enough for every sample to retire
  EXPECT_EQ(s.pipeline().pipeview_opened(), 96u);
  EXPECT_EQ(s.pipeline().pipeview_in_flight(), 0u);
  const auto evs = pipeview_events(sink);
  ASSERT_EQ(evs.size(), 96u);
  std::size_t second_window = 0;
  for (const obs::TraceEvent& e : evs) {
    EXPECT_GE(e.cycle, 2048u);  // nothing sampled before the first window
    second_window += e.cycle >= 8192 ? 1 : 0;
  }
  EXPECT_GE(second_window, 32u);
}

TEST(Pipeview, StageStampsAreMonotoneBoundedAndTerminated) {
  sim::Simulator s(pipeview_config("mem8", {{2048, 128}}));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(32 * 1024);
  const auto evs = pipeview_events(sink);
  ASSERT_EQ(evs.size(), 128u);
  for (const obs::TraceEvent& e : evs) {
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 8);
    ASSERT_GE(e.span, 1u);  // close happens at least one cycle after fetch
    const auto retire =
        e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kRetire)];
    EXPECT_EQ(retire, e.span);  // rows are self-contained

    // Reached stages carry offsets in pipeline order, each within the
    // lifetime; 0 marks a stage the instruction never reached.
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < obs::kNumPipeStages; ++i) {
      const std::uint32_t d = e.stage_delta[i];
      if (d == 0) continue;
      EXPECT_GE(d, prev) << "stage " << i << " out of order";
      EXPECT_LE(d, e.span);
      prev = d;
    }

    // Issue and execute are the same cycle by construction, and a stage
    // implies every stage before it.
    const auto dispatch =
        e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kDispatch)];
    const auto issue =
        e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kIssue)];
    const auto execute =
        e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kExecute)];
    const auto writeback =
        e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kWriteback)];
    EXPECT_EQ(issue, execute);
    if (issue != 0) {
      EXPECT_NE(dispatch, 0u);
    }
    if (writeback != 0) {
      EXPECT_NE(issue, 0u);
    }

    const auto t = static_cast<obs::PipeTerminal>(e.code);
    const bool commit = t == obs::PipeTerminal::kCommit;
    EXPECT_TRUE(commit || t == obs::PipeTerminal::kSquashMispredict ||
                t == obs::PipeTerminal::kSquashSyscall ||
                t == obs::PipeTerminal::kSquashSwap)
        << "unknown terminal " << static_cast<unsigned>(e.code);
    // A committed instruction went through the whole pipe.
    if (commit) {
      EXPECT_NE(writeback, 0u);
    }
  }
}

TEST(Pipeview, SamplingDoesNotPerturbTheSimulatedMachine) {
  const sim::SimConfig base = pipeview_config("mem8", {});
  sim::SimConfig sampled = base;
  sampled.pipeview = {{1024, 256}, {8192, 256}};

  sim::Simulator silent(base);
  sim::Simulator traced(sampled);
  obs::TraceSink sink;
  traced.attach_trace(&sink);
  silent.run(16 * 1024);
  traced.run(16 * 1024);

  EXPECT_EQ(traced.committed(), silent.committed());
  EXPECT_EQ(traced.pipeline().stats().fetched,
            silent.pipeline().stats().fetched);
  EXPECT_EQ(traced.pipeline().stats().squashed,
            silent.pipeline().stats().squashed);
  EXPECT_EQ(traced.detector().stats().switches,
            silent.detector().stats().switches);
  EXPECT_FALSE(pipeview_events(sink).empty());
}

TEST(Pipeview, CopiedSimulatorDropsTheSampler) {
  sim::Simulator original(pipeview_config("bal1", {{0, 64}}));
  obs::TraceSink sink;
  original.attach_trace(&sink);
  original.run(2 * 1024);
  ASSERT_TRUE(original.pipeline().pipeview_active());

  // Copies drop the sink, so they must drop the sampler with it: a copy
  // holding stale record indices against a dead sink would be a use-
  // after-free by proxy.
  sim::Simulator copy(original);
  EXPECT_FALSE(copy.pipeline().pipeview_active());
  EXPECT_TRUE(original.pipeline().pipeview_active());
  copy.run(2 * 1024);  // must run silently, not crash
}

TEST(Pipeview, DetachScrubsInFlightSamples) {
  sim::Simulator s(pipeview_config("bal1", {{0, 64}}));
  obs::TraceSink sink;
  s.attach_trace(&sink);
  s.run(64);  // some samples opened, most still in flight
  s.attach_trace(nullptr);
  EXPECT_FALSE(s.pipeline().pipeview_active());
  const std::size_t recorded = sink.size();
  s.run(8 * 1024);  // in-flight instructions retire with no sink
  EXPECT_EQ(sink.size(), recorded);
}

}  // namespace
}  // namespace smt
