// Unit tests: branch predictors (branch/predictor.hpp).
#include <gtest/gtest.h>

#include "branch/predictor.hpp"
#include "common/rng.hpp"

namespace smt::branch {
namespace {

PredictorConfig bimodal_cfg() {
  PredictorConfig cfg;
  cfg.kind = PredictorKind::kBimodal;
  cfg.pht_bits = 10;
  cfg.btb_entries = 64;
  cfg.max_threads = 4;
  return cfg;
}

TEST(Predictor, LearnsAlwaysTakenBranch) {
  Predictor p(bimodal_cfg());
  const std::uint64_t pc = 0x400;
  for (int i = 0; i < 4; ++i) {
    const bool pred = p.predict(0, pc);
    p.update(0, pc, true, 0x500, pred != true);
  }
  EXPECT_TRUE(p.predict(0, pc));
}

TEST(Predictor, LearnsAlwaysNotTakenBranch) {
  Predictor p(bimodal_cfg());
  const std::uint64_t pc = 0x404;
  for (int i = 0; i < 4; ++i) {
    const bool pred = p.predict(0, pc);
    p.update(0, pc, false, 0, pred != false);
  }
  EXPECT_FALSE(p.predict(0, pc));
}

TEST(Predictor, TwoBitHysteresisSurvivesOneFlip) {
  Predictor p(bimodal_cfg());
  const std::uint64_t pc = 0x408;
  for (int i = 0; i < 8; ++i) p.update(0, pc, true, 0x500, false);
  p.update(0, pc, false, 0, true);  // one anomaly
  EXPECT_TRUE(p.predict(0, pc)) << "2-bit counter must not flip on one miss";
}

TEST(Predictor, BiasedSiteAccuracyIsHigh) {
  Predictor p(bimodal_cfg());
  Rng rng(5);
  const std::uint64_t pc = 0x800;
  int correct = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const bool actual = rng.chance(0.95);
    const bool pred = p.predict(0, pc);
    if (pred == actual) ++correct;
    p.update(0, pc, actual, 0x900, pred != actual);
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.90);
}

TEST(Predictor, StatsTrackMispredicts) {
  Predictor p(bimodal_cfg());
  p.update(0, 0x10, true, 0x20, true);
  p.update(0, 0x10, true, 0x20, false);
  EXPECT_EQ(p.stats().lookups, 2u);
  EXPECT_EQ(p.stats().mispredicts, 1u);
  EXPECT_DOUBLE_EQ(p.stats().mispredict_rate(), 0.5);
  p.reset_stats();
  EXPECT_EQ(p.stats().lookups, 0u);
}

TEST(Predictor, BtbInstallsOnTaken) {
  Predictor p(bimodal_cfg());
  EXPECT_FALSE(p.btb_hit(0x40));
  p.update(0, 0x40, true, 0x99, false);
  EXPECT_TRUE(p.btb_hit(0x40));
}

TEST(Predictor, BtbNotInstalledOnNotTaken) {
  Predictor p(bimodal_cfg());
  p.update(0, 0x44, false, 0, false);
  EXPECT_FALSE(p.btb_hit(0x44));
}

TEST(Predictor, BtbConflictEvicts) {
  PredictorConfig cfg = bimodal_cfg();
  cfg.btb_entries = 4;
  Predictor p(cfg);
  p.update(0, 0x10, true, 1, false);
  // Same BTB slot: (pc>>2) % 4; 0x10>>2=4 → slot 0; 0x50>>2=20 → slot 0.
  p.update(0, 0x50, true, 2, false);
  EXPECT_TRUE(p.btb_hit(0x50));
  EXPECT_FALSE(p.btb_hit(0x10));
}

TEST(Predictor, GshareUsesPerThreadHistory) {
  PredictorConfig cfg = bimodal_cfg();
  cfg.kind = PredictorKind::kGshare;
  cfg.history_bits = 8;
  Predictor p(cfg);
  // Train thread 0 heavily taken at pc with an alternating history;
  // thread 1's view of the same pc must not be forced identical since its
  // history register differs. We only check that updates do not crash and
  // predictions remain boolean.
  for (int i = 0; i < 100; ++i) {
    p.update(0, 0x100, i % 2 == 0, 0x200, false);
    p.update(1, 0x100, true, 0x200, false);
  }
  (void)p.predict(0, 0x100);
  (void)p.predict(1, 0x100);
  EXPECT_EQ(p.stats().lookups, 200u);
}

TEST(Predictor, GshareLearnsAlternatingPatternEventually) {
  PredictorConfig cfg = bimodal_cfg();
  cfg.kind = PredictorKind::kGshare;
  cfg.history_bits = 4;
  Predictor p(cfg);
  const std::uint64_t pc = 0x240;
  // Strictly alternating outcomes: gshare separates the two history
  // contexts and predicts both correctly; bimodal cannot beat ~50%.
  int correct_late = 0;
  for (int i = 0; i < 400; ++i) {
    const bool actual = i % 2 == 0;
    const bool pred = p.predict(0, pc);
    if (i >= 200 && pred == actual) ++correct_late;
    p.update(0, pc, actual, 0x300, pred != actual);
  }
  EXPECT_GT(correct_late, 180);
}

TEST(Predictor, RejectsBadConfig) {
  PredictorConfig cfg = bimodal_cfg();
  cfg.pht_bits = 0;
  EXPECT_THROW(Predictor{cfg}, std::invalid_argument);
  cfg = bimodal_cfg();
  cfg.btb_entries = 0;
  EXPECT_THROW(Predictor{cfg}, std::invalid_argument);
}

TEST(Predictor, CopyIsIndependent) {
  Predictor a(bimodal_cfg());
  for (int i = 0; i < 8; ++i) a.update(0, 0x60, true, 0x70, false);
  Predictor b = a;
  for (int i = 0; i < 8; ++i) b.update(0, 0x60, false, 0, true);
  EXPECT_TRUE(a.predict(0, 0x60));
  EXPECT_FALSE(b.predict(0, 0x60));
}

}  // namespace
}  // namespace smt::branch
