// Unit tests: command-line parser (common/cli.hpp).
#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace smt {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> known = {"mix", "threads", "adts",
                                                "threshold", "csv"},
              std::vector<std::string> flags = {"adts", "csv"}) {
  return CliArgs(static_cast<int>(argv.size()), argv.data(), std::move(known),
                 std::move(flags));
}

TEST(Cli, ParsesEqualsForm) {
  const CliArgs a = parse({"prog", "--mix=int8", "--threads=4"});
  EXPECT_EQ(a.get_or("mix", ""), "int8");
  EXPECT_EQ(a.get_u64("threads", 0), 4u);
}

TEST(Cli, ParsesSpaceForm) {
  const CliArgs a = parse({"prog", "--mix", "fp8"});
  EXPECT_EQ(a.get_or("mix", ""), "fp8");
}

TEST(Cli, BareFlag) {
  const CliArgs a = parse({"prog", "--adts", "--csv"});
  EXPECT_TRUE(a.has("adts"));
  EXPECT_TRUE(a.has("csv"));
  EXPECT_FALSE(a.has("mix"));
}

TEST(Cli, FlagFollowedByOptionIsNotConsumed) {
  const CliArgs a = parse({"prog", "--adts", "--mix", "bal1"});
  EXPECT_TRUE(a.has("adts"));
  EXPECT_EQ(a.get_or("mix", ""), "bal1");
}

TEST(Cli, UnknownKeyThrows) {
  EXPECT_THROW(parse({"prog", "--bogus"}), std::invalid_argument);
}

TEST(Cli, PositionalArguments) {
  const CliArgs a = parse({"prog", "first", "--csv", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
  EXPECT_EQ(a.program_name(), "prog");
}

TEST(Cli, DefaultsWhenAbsent) {
  const CliArgs a = parse({"prog"});
  EXPECT_EQ(a.get_or("mix", "bal1"), "bal1");
  EXPECT_EQ(a.get_u64("threads", 8), 8u);
  EXPECT_DOUBLE_EQ(a.get_double("threshold", 2.0), 2.0);
  EXPECT_FALSE(a.get_bool("csv", false));
}

TEST(Cli, NumericValidation) {
  const CliArgs a = parse({"prog", "--threads", "abc", "--threshold", "x"});
  EXPECT_THROW((void)a.get_u64("threads", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("threshold", 0), std::invalid_argument);
}

TEST(Cli, ExplicitEmptyNumericValueThrows) {
  // `--threads ''` is a scripting mistake, not an absent option; it must
  // not silently fall back to the default.
  const CliArgs a = parse({"prog", "--threads", "", "--threshold", ""});
  EXPECT_THROW((void)a.get_u64("threads", 0), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("threshold", 0), std::invalid_argument);
}

TEST(Cli, FlagDoesNotConsumeFollowingPositional) {
  const CliArgs a = parse({"prog", "--csv", "tail"});
  EXPECT_TRUE(a.has("csv"));
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "tail");
}

TEST(Cli, BooleanForms) {
  const CliArgs a = parse({"prog", "--adts=false", "--csv=on"});
  EXPECT_FALSE(a.get_bool("adts", true));
  EXPECT_TRUE(a.get_bool("csv", false));
  const CliArgs b = parse({"prog", "--adts=garbage"});
  EXPECT_THROW((void)b.get_bool("adts", false), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  const CliArgs a = parse({"prog", "--threshold", "2.5"});
  EXPECT_DOUBLE_EQ(a.get_double("threshold", 0.0), 2.5);
}

TEST(SplitList, Basics) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("solo"), (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(split_list("").empty());
  EXPECT_EQ(split_list("a,,b,"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace smt
