// ADTS demo: run the detector thread with the Type 3 heuristic on a mix
// and print a per-quantum timeline — which policy was in force, the
// quantum's IPC, whether the DT saw low throughput, and each switch as it
// happens. This is Figure 2 of the paper, animated.
//
//   ./adts_demo [mix] [heuristic 1|2|3|3p|4] [ipc_threshold] [quanta]
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace {

smt::core::HeuristicType parse_heuristic(const std::string& s) {
  using smt::core::HeuristicType;
  if (s == "1") return HeuristicType::kType1;
  if (s == "2") return HeuristicType::kType2;
  if (s == "3") return HeuristicType::kType3;
  if (s == "3p" || s == "3'") return HeuristicType::kType3Prime;
  if (s == "4") return HeuristicType::kType4;
  throw std::invalid_argument("heuristic must be 1|2|3|3p|4");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mix_name = argc > 1 ? argv[1] : "int8";
  const smt::core::HeuristicType heuristic =
      parse_heuristic(argc > 2 ? argv[2] : "3");
  const double threshold = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;
  const int quanta = argc > 4 ? std::atoi(argv[4]) : 32;

  smt::sim::SimConfig cfg =
      smt::sim::make_config(smt::workload::mix(mix_name), 8, 2003);
  cfg.use_adts = true;
  cfg.adts.heuristic = heuristic;
  cfg.adts.ipc_threshold = threshold;

  smt::sim::Simulator sim(cfg);
  std::cout << "ADTS on mix " << mix_name << ", heuristic "
            << smt::core::name(heuristic) << ", IPC threshold "
            << threshold << ", quantum " << cfg.adts.quantum_cycles
            << " cycles\n\n";

  smt::Table t({"quantum", "policy", "IPC", "low?", "switches", "benign",
                "clogged threads"});
  std::uint64_t prev_committed = 0;
  std::uint64_t prev_switches = 0;
  std::uint64_t prev_low = 0;
  for (int q = 1; q <= quanta; ++q) {
    sim.run(cfg.adts.quantum_cycles);
    const auto& st = sim.detector().stats();
    const std::uint64_t committed = sim.committed() - prev_committed;
    prev_committed = sim.committed();
    const bool low = st.low_throughput_quanta > prev_low;
    prev_low = st.low_throughput_quanta;
    const bool switched = st.switches > prev_switches;
    prev_switches = st.switches;

    std::string clogs;
    for (std::uint32_t tid : sim.detector().clogging_threads()) {
      if (!clogs.empty()) clogs += ',';
      clogs += std::to_string(tid);
    }
    t.add_row({std::to_string(q),
               std::string(smt::policy::name(sim.pipeline().policy())) +
                   (switched ? " *" : ""),
               smt::Table::num(static_cast<double>(committed) /
                               static_cast<double>(cfg.adts.quantum_cycles)),
               low ? "LOW" : "", std::to_string(st.switches),
               smt::Table::num(st.benign_fraction(), 2), clogs});
  }
  t.print(std::cout);

  const auto& st = sim.detector().stats();
  std::cout << "\nsummary: " << st.quanta << " quanta, "
            << st.low_throughput_quanta << " low-throughput, " << st.switches
            << " switches (" << st.benign_switches << " benign, "
            << st.malignant_switches << " malignant, "
            << st.switches_skipped_dt_busy << " skipped: DT starved)\n"
            << "aggregate IPC: " << smt::Table::num(sim.ipc()) << '\n';
  return 0;
}
