// Policy explorer: run every fixed fetch policy of Table 1 on a chosen
// mix and thread count, and print the resulting throughput ordering —
// the experiment that motivates the whole paper (no single policy wins
// everywhere).
//
//   ./policy_explorer [mix] [threads]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "workload/mix.hpp"

int main(int argc, char** argv) {
  const std::string mix_name = argc > 1 ? argv[1] : "int8";
  const std::size_t threads = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                       : 8;

  const smt::workload::Mix& mix = smt::workload::mix(mix_name);
  smt::sim::ExperimentScale scale = smt::sim::ExperimentScale::from_env();

  std::cout << "mix " << mix.name << " at " << threads << " threads ("
            << scale.plan.intervals << " interval(s) x "
            << scale.plan.measure_cycles << " cycles)\n";

  struct Row {
    smt::policy::FetchPolicy policy;
    double ipc;
  };
  std::vector<Row> rows;
  for (smt::policy::FetchPolicy p : smt::policy::all_policies()) {
    const smt::sim::SampleResult r =
        smt::sim::run_fixed(mix, p, threads, scale);
    rows.push_back({p, r.ipc()});
  }

  double best = 0;
  for (const Row& r : rows) best = std::max(best, r.ipc);

  smt::Table t({"policy", "aggregate IPC", "vs best"});
  for (const Row& r : rows) {
    t.add_row({std::string(smt::policy::name(r.policy)),
               smt::Table::num(r.ipc),
               smt::Table::num(100.0 * (r.ipc / best - 1.0), 1) + "%"});
  }
  t.print(std::cout);
  return 0;
}
