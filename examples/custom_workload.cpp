// Custom workload: define an application profile from scratch (instead
// of using the SPEC-inspired registry), co-schedule it with built-ins,
// and compare fixed ICOUNT against ADTS on the resulting mix.
//
// Shows the knobs a user turns to model their own application: class
// mix, dependency distance (ILP), footprint/locality, branch-site
// behaviour, and phases.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/thread_program.hpp"

int main() {
  using namespace smt;

  // A pointer-chasing, phase-flipping database-like workload: branchy
  // lookup phases alternating with memory-bound scan phases.
  workload::AppProfile dbapp;
  dbapp.name = "dbscan";
  dbapp.mix.int_alu = 0.40;
  dbapp.mix.load = 0.30;
  dbapp.mix.store = 0.10;
  dbapp.mix.branch = 0.18;
  dbapp.mix.int_mul = 0.02;
  dbapp.mean_dep_distance = 2.2;   // tight pointer chains
  dbapp.dep2_prob = 0.3;
  dbapp.working_set_bytes = 32ull << 20;
  dbapp.hot_set_bytes = 2048;
  dbapp.hot_fraction = 0.55;
  dbapp.stride_fraction = 0.15;    // some sequential scans
  dbapp.code_bytes = 48 * 1024;
  dbapp.branch_sites = 512;
  dbapp.predictable_sites = 0.7;   // data-dependent lookups
  dbapp.phases = {workload::PhaseKind::kBranchy, workload::PhaseKind::kMemory};
  dbapp.phase_len_instrs = 6000;
  dbapp.phase_swing = 0.8;

  // Co-schedule four copies with four well-behaved built-ins. Profiles
  // passed to ThreadProgram directly — the registry is a convenience,
  // not a requirement.
  std::vector<std::string> partners = {"gzip", "crafty", "mesa", "sixtrack"};

  auto build = [&](bool adts) {
    sim::SimConfig cfg;
    cfg.apps = partners;
    cfg.workload_seed = 7;
    cfg.use_adts = adts;
    cfg.adts.heuristic = core::HeuristicType::kType3;
    cfg.adts.ipc_threshold = 2.0;
    // SimConfig names profiles from the registry; for the custom app we
    // construct the Simulator's programs by hand through the pipeline
    // API instead.
    std::vector<workload::ThreadProgram> programs;
    std::uint32_t tid = 0;
    for (int i = 0; i < 4; ++i) programs.emplace_back(dbapp, tid++, 7);
    for (const auto& name : partners) {
      programs.emplace_back(workload::profile(name), tid++, 7);
    }
    return std::pair{cfg, std::move(programs)};
  };

  Table t({"configuration", "IPC", "switches"});
  for (const bool adts : {false, true}) {
    auto [cfg, programs] = build(adts);
    pipeline::Pipeline pipe(cfg.machine, std::move(programs));
    core::DetectorThread dt(cfg.adts);
    const std::uint64_t warm = 32768;
    const std::uint64_t measure = 24 * 8192;
    auto run = [&](std::uint64_t n) {
      for (std::uint64_t c = 0; c < n; ++c) {
        pipe.step();
        if (adts) dt.tick(pipe);
      }
    };
    run(warm);
    const std::uint64_t committed0 = pipe.committed_total();
    run(measure);
    const double ipc =
        static_cast<double>(pipe.committed_total() - committed0) /
        static_cast<double>(measure);
    t.add_row({adts ? "ADTS (Type 3, m=2)" : "fixed ICOUNT",
               Table::num(ipc), std::to_string(dt.stats().switches)});
  }
  t.print(std::cout);

  std::cout << "\n(The custom profile is 4 of 8 contexts; its phase flips"
               " between branchy and memory-bound every ~6K instructions,"
               " which is what gives the adaptive scheduler traction.)\n";
  return 0;
}
