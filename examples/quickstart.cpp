// Quickstart: simulate one mix on the 8-context SMT machine and print a
// summary — the five-minute tour of the library.
//
//   ./quickstart [mix] [cycles]
//
// Defaults: mix "bal1", 200000 cycles.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

int main(int argc, char** argv) {
  const std::string mix_name = argc > 1 ? argv[1] : "bal1";
  const std::uint64_t cycles = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : 200000;

  // 1. Pick a workload mix (the paper's 13 mixes are built in; see
  //    workload::all_mixes()).
  const smt::workload::Mix& mix = smt::workload::mix(mix_name);
  std::cout << "mix " << mix.name << ": " << mix.description << "\n\n";

  // 2. Build a simulator. make_config fills in the ICOUNT.2.8 machine
  //    defaults; everything is overridable through SimConfig.
  smt::sim::SimConfig cfg = smt::sim::make_config(mix, /*threads=*/8,
                                                  /*workload_seed=*/2003);
  smt::sim::Simulator sim(cfg);

  // 3. Run.
  sim.run(cycles);

  // 4. Inspect.
  const auto& stats = sim.pipeline().stats();
  std::cout << "cycles:            " << stats.cycles << '\n'
            << "committed:         " << stats.committed << '\n'
            << "aggregate IPC:     " << smt::Table::num(stats.ipc()) << '\n'
            << "fetched:           " << stats.fetched << " ("
            << smt::Table::num(100.0 * double(stats.fetched_wrong_path) /
                                   double(stats.fetched),
                               1)
            << "% wrong-path)\n"
            << "branch mispredict: "
            << smt::Table::num(100.0 * double(stats.mispredicts) /
                                   double(stats.branches_resolved),
                               1)
            << "%\n"
            << "L1D miss rate:     "
            << smt::Table::num(100.0 * sim.pipeline().memory().l1d().miss_rate(), 1)
            << "%\n"
            << "L2 miss rate:      "
            << smt::Table::num(100.0 * sim.pipeline().memory().l2().miss_rate(), 1)
            << "%\n\n";

  smt::Table per_thread({"thread", "app", "committed", "acc IPC", "L1D out",
                         "icount"});
  for (std::uint32_t t = 0; t < sim.pipeline().num_threads(); ++t) {
    const auto& c = sim.pipeline().counters(t);
    per_thread.add_row({std::to_string(t),
                        sim.pipeline().program(t).app().name,
                        std::to_string(c.committed_total),
                        smt::Table::num(c.acc_ipc()),
                        std::to_string(c.l1d_outstanding),
                        std::to_string(c.icount)});
  }
  per_thread.print(std::cout);
  return 0;
}
