#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "isa/instruction.hpp"
#include "mem/hierarchy.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"
#include "prof/phase_profiler.hpp"
#include "workload/thread_program.hpp"

namespace smt::pipeline {

namespace {

[[nodiscard]] bool has_dst_reg(isa::InstrClass c) noexcept {
  using isa::InstrClass;
  switch (c) {
    case InstrClass::kIntAlu:
    case InstrClass::kIntMul:
    case InstrClass::kIntDiv:
    case InstrClass::kFpAdd:
    case InstrClass::kFpMul:
    case InstrClass::kFpDiv:
    case InstrClass::kLoad:
      return true;
    case InstrClass::kStore:
    case InstrClass::kBranch:
    case InstrClass::kSyscall:
      return false;
  }
  return false;
}

/// Depth to scan the in-flight window for store→load forwarding.
constexpr std::uint64_t kForwardScanDepth = 16;

[[nodiscard]] unsigned ctz64(std::uint64_t x) noexcept {
  return static_cast<unsigned>(__builtin_ctzll(x));
}

[[nodiscard]] unsigned popcount64(std::uint64_t x) noexcept {
  return static_cast<unsigned>(__builtin_popcountll(x));
}

}  // namespace

Pipeline::Pipeline(const PipelineConfig& cfg,
                   std::vector<workload::ThreadProgram> programs)
    : cfg_(cfg),
      mem_(cfg.memory),
      bp_(cfg.predictor),
      int_rename_free_(cfg.int_rename_regs),
      fp_rename_free_(cfg.fp_rename_regs) {
  if (programs.empty()) {
    throw std::invalid_argument("Pipeline: needs at least one program");
  }
  if (programs.size() + 1 > cfg.memory.max_threads ||
      programs.size() + 1 > cfg.predictor.max_threads) {
    throw std::invalid_argument(
        "Pipeline: thread count exceeds memory/predictor configuration");
  }
  if (cfg.memory.mem_latency + cfg.lat_int_div + 2 >= kCompletionRing) {
    throw std::invalid_argument("Pipeline: latency exceeds completion ring");
  }
  if (cfg.int_iq_size > 64 || cfg.fp_iq_size > 64) {
    // Per-cycle ready/mem/issued sets are single 64-bit masks.
    throw std::invalid_argument("Pipeline: IQ size exceeds 64");
  }

  window_cap_ = 1;
  while (window_cap_ < cfg.rob_per_thread) window_cap_ <<= 1;
  slot_mask_ = window_cap_ - 1;

  threads_.reserve(programs.size());
  for (auto& prog : programs) {
    Thread t;
    t.program = std::move(prog);
    t.si.resize(window_cap_);
    t.seq.resize(window_cap_, 0);
    t.uid.resize(window_cap_, 0);
    t.age.resize(window_cap_, 0);
    t.dispatch_ready.resize(window_cap_, 0);
    t.state.resize(window_cap_,
                   static_cast<std::uint8_t>(InstrState::kEmpty));
    t.flags.resize(window_cap_, 0);
    t.pview.resize(window_cap_, -1);
    t.done_bits.resize((window_cap_ + 63) / 64, 0);
    t.waiter_head.assign(window_cap_, kNoWaiter);
    t.replay = FixedQueue<isa::Instruction>(cfg.rob_per_thread + cfg.fetch_width);
    threads_.push_back(std::move(t));
  }
  waiter_next_.fill(kNoWaiter);
  dispatch_fifo_ = FixedQueue<FifoRef>(
      threads_.size() * cfg.fetch_buffer_cap + cfg.fetch_width);

  // Pre-size the per-cycle scratch and the completion ring so the
  // steady-state loop never heap-allocates.
  fetch_cands_.reserve(threads_.size());
  squash_replay_.reserve(cfg.rob_per_thread);
  squash_backlog_.reserve(cfg.rob_per_thread + cfg.fetch_width);
  squash_keep_.reserve(dispatch_fifo_.capacity());
  completion_lane_ = std::max<std::uint32_t>(cfg.issue_width, 1);
  completion_.resize(std::size_t{kCompletionRing} * completion_lane_);
  completion_n_.assign(kCompletionRing, 0);
}

void Pipeline::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

void Pipeline::step() {
  if (prof_.prof != nullptr && (cycle_ & prof_.mask) == 0) {
    step_stages_profiled();
  } else {
    do_commit();
    do_complete();
    do_issue();
    do_dispatch();
    do_fetch();
  }

  if (cpi_.enabled) account_cpi();

  for (Thread& t : threads_) ++t.counters.cycles_seen;
  ++stats_.cycles;
  ++cycle_;
}

void Pipeline::step_stages_profiled() {
  using Scope = prof::PhaseProfiler::Scope;
  {
    const Scope s(prof_.prof, prof_.nodes.commit);
    do_commit();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.complete);
    do_complete();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.issue);
    do_issue();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.dispatch);
    do_dispatch();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.fetch);
    do_fetch();
  }
}

void Pipeline::set_profiler(prof::PhaseProfiler* p, const ProfNodes& nodes,
                            std::uint64_t stride_mask) {
  prof_ = ProfState{};
  if (p == nullptr) return;
  prof_.prof = p;
  prof_.mask = stride_mask;
  prof_.nodes = nodes;
}

// ---------------------------------------------------------------------------
// Completion ring.
// ---------------------------------------------------------------------------
void Pipeline::completion_push(std::uint64_t done_cycle, const DoneRef& ref) {
  const std::uint32_t lane =
      static_cast<std::uint32_t>(done_cycle) & (kCompletionRing - 1);
  if (completion_n_[lane] == completion_lane_) completion_grow();
  completion_[std::size_t{lane} * completion_lane_ + completion_n_[lane]++] =
      ref;
}

void Pipeline::completion_grow() {
  const std::uint32_t next_lane = completion_lane_ * 2;
  std::vector<DoneRef> next(std::size_t{kCompletionRing} * next_lane);
  for (std::uint32_t lane = 0; lane < kCompletionRing; ++lane) {
    for (std::uint32_t k = 0; k < completion_n_[lane]; ++k) {
      next[std::size_t{lane} * next_lane + k] =
          completion_[std::size_t{lane} * completion_lane_ + k];
    }
  }
  completion_.swap(next);
  completion_lane_ = next_lane;
}

// ---------------------------------------------------------------------------
// Commit: per-thread in-order retirement, shared bandwidth, rotating start.
// ---------------------------------------------------------------------------
void Pipeline::do_commit() {
  std::uint32_t budget = cfg_.commit_width;
  const std::uint32_t n = num_threads();
  // One division per cycle for the rotating start; the loop then wraps by
  // compare (runtime-n modulo is a hardware divide, and this loop runs n
  // times every cycle).
  std::uint32_t tid = static_cast<std::uint32_t>(cycle_ % n);
  for (std::uint32_t i = 0; i < n && budget > 0;
       ++i, tid = (tid + 1 == n ? 0 : tid + 1)) {
    Thread& t = threads_[tid];
    while (budget > 0 && !win_empty(t)) {
      const std::uint32_t slot = slot_of(t.head_seq);
      if (t.state[slot] != static_cast<std::uint8_t>(InstrState::kDone)) break;
      assert(!(t.flags[slot] & kFlagWrongPath) &&
             "wrong-path instruction reached commit");

      const bool is_syscall = t.si[slot].cls == isa::InstrClass::kSyscall;
      if (t.pview[slot] >= 0) pview_close(t, slot, obs::PipeTerminal::kCommit);
      release_instr_resources(tid, slot, /*completed_ok=*/true);
      ++t.counters.committed_total;
      ++t.counters.committed_quantum;
      ++stats_.committed;
      --budget;
      t.state[slot] = static_cast<std::uint8_t>(InstrState::kEmpty);
      ++t.head_seq;
      if (is_syscall) {
        syscall_flush(tid);
        break;  // the whole machine just drained
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Complete: retire execution results scheduled for this cycle; resolve
// branches, trigger mispredict squashes.
// ---------------------------------------------------------------------------
void Pipeline::do_complete() {
  const std::uint32_t lane =
      static_cast<std::uint32_t>(cycle_) & (kCompletionRing - 1);
  const std::uint32_t count = completion_n_[lane];
  for (std::uint32_t k = 0; k < count; ++k) {
    const DoneRef ref =
        completion_[std::size_t{lane} * completion_lane_ + k];
    Thread& t = threads_[ref.tid];
    // Stale-reference check: uids are never reused, so a match means this
    // is the same instruction and it is still in flight; requiring
    // kIssued rejects squashed slots (kEmpty) and reclaimed ones.
    if (t.uid[ref.slot] != ref.uid ||
        t.state[ref.slot] != static_cast<std::uint8_t>(InstrState::kIssued)) {
      continue;
    }
    const std::uint32_t slot = ref.slot;

    t.state[slot] = static_cast<std::uint8_t>(InstrState::kDone);
    set_done_bit(t, slot);
    // Wake the IQ entries parked on this producer: each either becomes
    // ready or moves to its other outstanding producer's chain.
    std::uint8_t w = t.waiter_head[slot];
    t.waiter_head[slot] = kNoWaiter;
    while (w != kNoWaiter) {
      const std::uint8_t nxt = waiter_next_[w];
      place_entry(w, w < 64 ? int_iq_.slots[w] : fp_iq_.slots[w - 64]);
      w = nxt;
    }
    if (t.pview[slot] >= 0) pview_stamp(t, slot, obs::PipeStage::kWriteback);
    ThreadCounters& c = t.counters;
    const isa::InstrClass cls = t.si[slot].cls;
    if (cls == isa::InstrClass::kLoad) {
      --c.icount;  // leaves the load queue
      --c.ldcount;
      --c.memcount;
      if (t.flags[slot] & kFlagL1dOutstanding) {
        --c.l1d_outstanding;
        t.flags[slot] &= static_cast<std::uint8_t>(~kFlagL1dOutstanding);
      }
    } else if (cls == isa::InstrClass::kStore) {
      --c.icount;  // leaves the store queue
      --c.memcount;
    } else if (cls == isa::InstrClass::kBranch) {
      --c.brcount;
      if (!(t.flags[slot] & kFlagWrongPath)) {
        const bool mispredicted = (t.flags[slot] & kFlagMispredicted) != 0;
        ++stats_.branches_resolved;
        ++c.cond_branches_quantum;
        bp_.update(ref.tid, t.si[slot].pc, t.si[slot].taken,
                   t.si[slot].branch_target, mispredicted);
        if (mispredicted) {
          ++stats_.mispredicts;
          ++c.mispredicts_quantum;
          squash_from(ref.tid, t.seq[slot] + 1, /*replay_correct_path=*/false,
                      obs::PipeTerminal::kSquashMispredict);
          t.wrong_path_mode = false;
          t.fetch_stall_until =
              std::max<std::uint64_t>(t.fetch_stall_until,
                                      cycle_ + cfg_.mispredict_penalty);
        }
      }
    }
  }
  completion_n_[lane] = 0;
}

// ---------------------------------------------------------------------------
// Issue: oldest-first over both queues, FU and width constraints.
// ---------------------------------------------------------------------------
std::uint32_t Pipeline::load_latency(std::uint32_t tid, Thread& t,
                                     std::uint32_t slot) {
  // Store→load forwarding from the in-flight window (bounded scan).
  const std::uint64_t seq = t.seq[slot];
  const std::uint64_t addr = t.si[slot].mem_addr;
  const std::uint64_t limit = std::min<std::uint64_t>(
      kForwardScanDepth, seq > t.head_seq ? seq - t.head_seq : 0);
  for (std::uint64_t k = 1; k <= limit; ++k) {
    const isa::Instruction& older = t.si[slot_of(seq - k)];
    if (older.cls == isa::InstrClass::kStore && older.mem_addr == addr) {
      return cfg_.lat_int_alu;  // forwarded: ALU-like latency
    }
  }
  const mem::AccessResult r = mem_.lookup_data(tid, addr, /*write=*/false);
  if (r.l1_miss) {
    ++t.counters.l1d_misses_quantum;
  }
  return r.latency;
}

void Pipeline::do_issue() {
  std::uint32_t total = cfg_.issue_width;
  std::uint32_t int_budget = cfg_.int_alus;
  std::uint32_t mem_budget = cfg_.mem_ports;
  std::uint32_t fp_budget = cfg_.fp_units;

  // The ready masks are maintained incrementally (dispatch marks or
  // enlists, do_complete wakes waiter chains), so this stage never
  // evaluates readiness: it repeatedly takes the globally-oldest ready
  // entry whose FU class still has budget. That greedy order is exactly
  // the old oldest-first walk's outcome — non-ready entries never
  // consumed budget there either — at a cost proportional to the ready
  // set (a handful) instead of the queue occupancy (up to 128).
  while (total > 0) {
    std::uint64_t int_cand = int_budget > 0 ? int_iq_.ready : 0;
    if (mem_budget == 0) int_cand &= ~int_iq_.mem;
    const std::uint64_t fp_cand = fp_budget > 0 ? fp_iq_.ready : 0;
    if ((int_cand | fp_cand) == 0) break;

    bool take_int = false;
    unsigned qidx = 0;
    std::uint64_t best_age = ~std::uint64_t{0};
    for (std::uint64_t m = int_cand; m != 0; m &= m - 1) {
      const unsigned i = ctz64(m);
      if (int_iq_.slots[i].age < best_age) {
        best_age = int_iq_.slots[i].age;
        qidx = i;
        take_int = true;
      }
    }
    for (std::uint64_t m = fp_cand; m != 0; m &= m - 1) {
      const unsigned i = ctz64(m);
      if (fp_iq_.slots[i].age < best_age) {
        best_age = fp_iq_.slots[i].age;
        qidx = i;
        take_int = false;
      }
    }

    IssueQueue& q = take_int ? int_iq_ : fp_iq_;
    const IqRef r = q.slots[qidx];
    const std::uint64_t bit = 1ull << qidx;
    q.occ &= ~bit;
    q.ready &= ~bit;
    q.mem &= ~bit;

    Thread& t = threads_[r.tid];
    const std::uint32_t slot = r.slot;
    assert(t.state[slot] == static_cast<std::uint8_t>(InstrState::kQueued));
    assert(iq_ready(r));
    const isa::InstrClass cls = t.si[slot].cls;

    // Issue it.
    std::uint32_t latency = cfg_.latency_for(cls);
    if (cls == isa::InstrClass::kLoad) {
      latency = load_latency(r.tid, t, slot);
      if (latency > cfg_.memory.l1_latency) {
        ++t.counters.l1d_outstanding;
        t.flags[slot] |= kFlagL1dOutstanding;
      }
    } else if (cls == isa::InstrClass::kStore) {
      // Stores retire into the store buffer; the cache access happens now
      // for state/statistics, but the latency is off the critical path.
      const mem::AccessResult res =
          mem_.lookup_data(r.tid, t.si[slot].mem_addr, /*write=*/true);
      if (res.l1_miss) ++t.counters.l1d_misses_quantum;
      latency = cfg_.lat_int_alu;
    }

    t.state[slot] = static_cast<std::uint8_t>(InstrState::kIssued);
    if (cpi_.enabled) cpi_.issued_tids |= 1ull << r.tid;
    if (t.pview[slot] >= 0) {
      pview_stamp(t, slot, obs::PipeStage::kIssue);
      pview_stamp(t, slot, obs::PipeStage::kExecute);
    }
    if (!r.is_mem) --t.counters.icount;  // mem ops stay in the LQ/SQ
    completion_push(cycle_ + latency, DoneRef{t.uid[slot], r.tid, slot});

    --total;
    if (take_int) {
      --int_budget;
      if (r.is_mem) --mem_budget;
    } else {
      --fp_budget;
    }
  }
}

// Classify IQ entry `id` now that something about its producers changed:
// mark it ready, or enlist it on the waiter chain of its first
// outstanding producer. Entries wait on one producer at a time; when
// that one completes they are re-examined and either wake or move to
// the other producer's chain, so each entry is relinked at most twice.
void Pipeline::place_entry(std::uint32_t id, const IqRef& r) {
  Thread& t = threads_[r.tid];
  const auto head = static_cast<std::int64_t>(t.head_seq);
  std::int64_t block = -1;
  if (r.pr1 >= head &&
      !done_bit(t, slot_of(static_cast<std::uint64_t>(r.pr1)))) {
    block = r.pr1;
  } else if (r.pr2 >= head &&
             !done_bit(t, slot_of(static_cast<std::uint64_t>(r.pr2)))) {
    block = r.pr2;
  }
  if (block < 0) {
    (id < 64 ? int_iq_ : fp_iq_).ready |= 1ull << (id & 63);
  } else {
    const std::uint32_t ws = slot_of(static_cast<std::uint64_t>(block));
    waiter_next_[id] = t.waiter_head[ws];
    t.waiter_head[ws] = static_cast<std::uint8_t>(id);
  }
}

// ---------------------------------------------------------------------------
// Dispatch: global fetch-order FIFO → instruction queues, head-of-line
// blocking on IQ / LSQ / renaming-register exhaustion (the rename stage is
// in-order, so one thread's stuck instruction stalls everything behind it).
// ---------------------------------------------------------------------------
void Pipeline::do_dispatch() {
  std::uint32_t budget = cfg_.dispatch_width;
  while (budget > 0 && !dispatch_fifo_.empty()) {
    const FifoRef ref = dispatch_fifo_.front();
    Thread& t = threads_[ref.tid];
    const std::uint32_t slot = ref.slot;

    // Entries for squashed instructions were scrubbed at squash time, so
    // the head is always live.
    assert(t.state[slot] == static_cast<std::uint8_t>(InstrState::kFrontEnd));
    if (t.dispatch_ready[slot] > cycle_) break;  // still in decode/rename

    const isa::InstrClass cls = t.si[slot].cls;
    const bool fp = isa::is_fp(cls);
    const bool is_mem = isa::is_mem(cls);

    // Structural-hazard checks; failure stalls the whole stage.
    if (fp) {
      if (popcount64(fp_iq_.occ) >= cfg_.fp_iq_size) break;
    } else {
      if (popcount64(int_iq_.occ) >= cfg_.int_iq_size) break;
    }
    if (is_mem && lsq_used_ >= cfg_.lsq_size) {
      ++t.counters.lsq_full_events_quantum;
      break;
    }
    if (has_dst_reg(cls)) {
      if (fp) {
        if (fp_rename_free_ == 0) break;
      } else {
        if (int_rename_free_ == 0) break;
      }
    }

    // Acquire resources and enqueue.
    if (has_dst_reg(cls)) {
      if (fp) --fp_rename_free_; else --int_rename_free_;
      t.flags[slot] |= kFlagRenameReg;
    }
    if (is_mem) {
      ++lsq_used_;
      t.flags[slot] |= kFlagLsqEntry;
    }
    t.state[slot] = static_cast<std::uint8_t>(InstrState::kQueued);
    t.age[slot] = next_age_++;
    if (t.pview[slot] >= 0) pview_stamp(t, slot, obs::PipeStage::kDispatch);
    // Resolve dep distances to producer seqs once, here: dep 0 (none) and
    // deps predating the stream can never block, so they collapse to the
    // -1 sentinel and the wakeup machinery never looks at them again.
    const std::uint64_t seq = t.seq[slot];
    const isa::Instruction& si = t.si[slot];
    const auto producer = [seq](std::uint16_t dep) -> std::int64_t {
      if (dep == 0 || dep > seq) return -1;
      return static_cast<std::int64_t>(seq - dep);
    };
    IssueQueue& q = fp ? fp_iq_ : int_iq_;
    const unsigned j = ctz64(~q.occ);  // free slot; full case broke above
    const std::uint64_t jbit = 1ull << j;
    q.occ |= jbit;
    if (!fp && is_mem) q.mem |= jbit;
    q.slots[j] = IqRef{t.age[slot], producer(si.dep1), producer(si.dep2),
                       ref.tid, slot, is_mem};
    place_entry(fp ? 64 + j : j, q.slots[j]);
    --t.frontend_count;
    dispatch_fifo_.pop_front();
    --budget;
  }
}

// ---------------------------------------------------------------------------
// Fetch: thread selection by the active policy, ICOUNT.2.8 bandwidth,
// cache-block fragmentation, wrong-path synthesis, detector-thread slots.
// ---------------------------------------------------------------------------
void Pipeline::do_fetch() {
  const std::uint32_t n = num_threads();
  // Rotating offset for every fair-share tie-break this cycle, computed
  // with the stage's single runtime-n division.
  const std::uint32_t rot = static_cast<std::uint32_t>(cycle_ % n);

  // Clear expired I-cache stalls.
  for (Thread& t : threads_) {
    if (t.icache_stalled && t.fetch_stall_until <= cycle_) {
      t.icache_stalled = false;
      t.counters.l1i_outstanding = 0;
    }
  }

  // Candidate threads, sorted by the active policy's priority key with a
  // rotating tie-break so equal-key threads share fairly (reused
  // scratch; cleared every cycle).
  std::vector<FetchCand>& cands = fetch_cands_;
  cands.clear();
  // Per-thread blocked-cause for this cycle: 0 = not blocked, else
  // StallCause + 1. Lost slots are charged against these after the
  // service loop runs.
  std::array<std::uint8_t, 64> block_cause{};  // n <= 64
  const auto blocked_by = [&block_cause](std::uint32_t tid,
                                         obs::StallCause c) {
    block_cause[tid] = static_cast<std::uint8_t>(c) + 1;
  };
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    Thread& t = threads_[tid];
    if (t.fetch_stall_until > cycle_) {
      blocked_by(tid, t.icache_stalled ? obs::StallCause::kIcacheMiss
                                       : obs::StallCause::kSquashRecovery);
      continue;
    }
    if (t.fetch_block_until > cycle_) {
      blocked_by(tid, obs::StallCause::kFetchBlackout);
      continue;
    }
    if (win_full(t)) {
      blocked_by(tid, obs::StallCause::kRobFull);
      continue;
    }
    if (t.frontend_count >=
        static_cast<std::int32_t>(cfg_.fetch_buffer_cap)) {
      // front-end buffer full: dispatch is backed up
      blocked_by(tid, obs::StallCause::kDispatchBackpressure);
      continue;
    }
    const double key =
        policy::priority_key(policy_, t.counters, tid, n, cycle_);
    const std::uint32_t tie = tid + rot;
    cands.push_back(FetchCand{tid, key, tie >= n ? tie - n : tie});
  }
  // Insertion sort: (key, tie) is a unique total order over at most 64
  // candidates (usually <= 8), so this is both cheap and identical in
  // result to any comparison sort.
  for (std::size_t i = 1; i < cands.size(); ++i) {
    const FetchCand c = cands[i];
    std::size_t j = i;
    while (j > 0 && (c.key < cands[j - 1].key ||
                     (c.key == cands[j - 1].key && c.tie < cands[j - 1].tie))) {
      cands[j] = cands[j - 1];
      --j;
    }
    cands[j] = c;
  }

  std::uint32_t slots = cfg_.fetch_width;
  std::uint32_t threads_used = 0;
  std::array<std::uint32_t, 64> fetched_per_thread{};  // n <= 64
  std::array<bool, 64> serviced{};

  for (const FetchCand& cand : cands) {
    if (slots == 0 || threads_used >= cfg_.fetch_threads) break;
    serviced[cand.tid] = true;
    Thread& t = threads_[cand.tid];
    ThreadCounters& c = t.counters;

    const std::uint64_t pc = t.wrong_path_mode
                                 ? t.wrong_pc
                                 : (!t.replay.empty() ? t.replay.front().pc
                                                      : t.program.pc());

    // I-cache access for the fetch block — skipped when this exact block
    // was just delivered by a completed miss (one-shot fetch-buffer hit).
    const std::uint64_t block = pc / isa::kFetchBlockBytes;
    if (block == t.delivered_block) {
      t.delivered_block = ~std::uint64_t{0};
    } else {
      const mem::AccessResult ir = mem_.lookup_instr(cand.tid, pc);
      if (ir.l1_miss) {
        ++c.l1i_misses_quantum;
        t.fetch_stall_until = cycle_ + ir.latency;
        t.icache_stalled = true;
        t.delivered_block = block;
        c.l1i_outstanding = 1;
        blocked_by(cand.tid, obs::StallCause::kIcacheMiss);
        ++threads_used;  // the fetch port was spent on the miss
        continue;
      }
    }

    // Fetch up to the cache-block boundary (fetch fragmentation).
    const std::uint64_t offset_in_block =
        (pc / isa::kInstrBytes) % isa::kFetchBlockInstrs;
    std::uint32_t n_max = static_cast<std::uint32_t>(
        isa::kFetchBlockInstrs - offset_in_block);
    n_max = std::min(n_max, slots);

    std::uint32_t got = 0;
    while (got < n_max && !win_full(t) &&
           t.frontend_count <
               static_cast<std::int32_t>(cfg_.fetch_buffer_cap)) {
      isa::Instruction si;
      bool wrong = t.wrong_path_mode;
      if (wrong) {
        si = t.program.next_wrong(t.wrong_pc);
      } else if (!t.replay.empty()) {
        si = t.replay.pop_front();
      } else {
        si = t.program.next();
      }

      const std::uint64_t seq = t.next_seq++;
      const std::uint32_t slot = slot_of(seq);
      t.si[slot] = si;
      t.seq[slot] = seq;
      t.uid[slot] = next_uid_++;
      t.dispatch_ready[slot] = cycle_ + cfg_.frontend_delay;
      t.state[slot] = static_cast<std::uint8_t>(InstrState::kFrontEnd);
      t.flags[slot] = wrong ? kFlagWrongPath : 0;
      t.pview[slot] = -1;
      clear_done_bit(t, slot);
      if (pview_.sink != nullptr) pview_open(cand.tid, slot);

      ++c.icount;
      ++t.frontend_count;
      if (si.cls == isa::InstrClass::kBranch) ++c.brcount;
      if (si.cls == isa::InstrClass::kLoad) {
        ++c.ldcount;
        ++c.memcount;
      } else if (si.cls == isa::InstrClass::kStore) {
        ++c.memcount;
      }
      ++stats_.fetched;
      ++c.fetched_total;
      if (wrong) {
        ++stats_.fetched_wrong_path;
        ++c.wrong_path_fetched_quantum;
      }
      ++got;
      --slots;

      bool stop_thread = false;
      if (si.cls == isa::InstrClass::kBranch) {
        const bool pred = bp_.predict(cand.tid, si.pc);
        if (pred) t.flags[slot] |= kFlagPredictedTaken;
        if (!wrong) {
          const bool mispred = pred != si.taken;
          if (mispred) {
            t.flags[slot] |= kFlagMispredicted;
            t.wrong_path_mode = true;
            // The front end follows the *predicted* path.
            t.wrong_pc = pred ? si.branch_target : si.pc + isa::kInstrBytes;
          }
          if (pred) {
            // Predicted taken: redirect ends this thread's fetch group;
            // without a BTB target there is an extra bubble.
            if (!bp_.btb_hit(si.pc)) {
              ++stats_.btb_misses;
              t.fetch_stall_until = cycle_ + cfg_.btb_miss_penalty;
            }
            stop_thread = true;
          }
        } else if (pred) {
          stop_thread = true;  // wrong-path fetch also breaks on taken
        }
      }

      dispatch_fifo_.push_back(FifoRef{cand.tid, slot});
      if (stop_thread) break;
    }

    fetched_per_thread[cand.tid] = got;
    ++threads_used;
  }

  // Stall accounting: every thread that put no instruction into the
  // machine this cycle incurs a fetch stall (whatever the reason).
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    if (fetched_per_thread[tid] == 0) {
      ++threads_[tid].counters.stalls_quantum;
    }
  }

  // Leftover slots: idle, unless the detector thread has queued work.
  stats_.fetch_slots_idle += slots;
  std::uint64_t lost = slots;
  if (!dt_frozen_ && dt_work_ > 0 && slots > 0) {
    const std::uint64_t used = std::min<std::uint64_t>(slots, dt_work_);
    dt_work_ -= used;
    stats_.dt_slots_used += used;
    lost -= used;
  }

  // Stall attribution: charge every slot the DT didn't absorb to exactly
  // one cause. Candidates the service loop never reached were ready but
  // out-ranked — the policy throttle working as designed.
  if (lost > 0) {
    for (const FetchCand& cand : cands) {
      if (!serviced[cand.tid]) {
        blocked_by(cand.tid, obs::StallCause::kPolicyThrottle);
      }
    }
    // Round-robin the lost slots over blocked threads, rotating the start
    // with the cycle so no thread is systematically favoured.
    std::array<std::uint32_t, 64> blocked_tids;
    std::uint32_t m = 0;
    std::uint32_t tid = rot;
    for (std::uint32_t i = 0; i < n;
         ++i, tid = (tid + 1 == n ? 0 : tid + 1)) {
      if (block_cause[tid] != 0) blocked_tids[m++] = tid;
    }
    if (m == 0) {
      // Nobody was blocked: fragmentation / taken-branch fetch-group ends
      // left slack no thread could claim this cycle.
      machine_stalls_.charge(obs::StallCause::kFragmentation, lost);
    } else {
      std::uint32_t at = 0;
      for (std::uint64_t k = 0; k < lost;
           ++k, at = (at + 1 == m ? 0 : at + 1)) {
        const std::uint32_t btid = blocked_tids[at];
        threads_[btid].stalls.charge(
            static_cast<obs::StallCause>(block_cause[btid] - 1));
      }
    }
  }

  // CPI accounting: remember this cycle's per-thread fetch outcome so
  // account_cpi() can back-propagate the fetch-side cause onto empty
  // (starved) windows. A thread that fetched records no cause.
  if (cpi_.enabled) {
    for (std::uint32_t tid = 0; tid < n; ++tid) {
      cpi_.fetch_cause[tid] =
          fetched_per_thread[tid] > 0 ? 0 : block_cause[tid];
    }
  }
}

// ---------------------------------------------------------------------------
// Squash machinery.
// ---------------------------------------------------------------------------
void Pipeline::release_instr_resources(std::uint32_t tid, std::uint32_t slot,
                                       bool completed_ok) {
  Thread& t = threads_[tid];
  ThreadCounters& c = t.counters;
  const isa::InstrClass cls = t.si[slot].cls;
  const auto st = static_cast<InstrState>(t.state[slot]);

  if (t.flags[slot] & kFlagRenameReg) {
    if (isa::is_fp(cls)) ++fp_rename_free_; else ++int_rename_free_;
    t.flags[slot] &= static_cast<std::uint8_t>(~kFlagRenameReg);
  }
  if (t.flags[slot] & kFlagLsqEntry) {
    --lsq_used_;
    t.flags[slot] &= static_cast<std::uint8_t>(~kFlagLsqEntry);
  }
  if (completed_ok) return;

  // Squash path: undo occupancy contributions that completion would have
  // removed.
  const bool mem = isa::is_mem(cls);
  if (mem ? st != InstrState::kDone
          : (st == InstrState::kFrontEnd || st == InstrState::kQueued)) {
    --c.icount;
  }
  if (st == InstrState::kFrontEnd) --t.frontend_count;
  if (st != InstrState::kDone) {
    if (cls == isa::InstrClass::kBranch) --c.brcount;
    if (cls == isa::InstrClass::kLoad) {
      --c.ldcount;
      --c.memcount;
    } else if (cls == isa::InstrClass::kStore) {
      --c.memcount;
    }
    if (t.flags[slot] & kFlagL1dOutstanding) {
      --c.l1d_outstanding;
      t.flags[slot] &= static_cast<std::uint8_t>(~kFlagL1dOutstanding);
    }
  }
}

void Pipeline::squash_from(std::uint32_t tid, std::uint64_t first_seq,
                           bool replay_correct_path,
                           obs::PipeTerminal cause) {
  Thread& t = threads_[tid];

  // Collect replayable correct-path instructions (popped youngest-first,
  // reversed into program order below). Reused scratch: squashes are off
  // the per-cycle fast path but frequent enough (every mispredict) that
  // allocating here shows up in profiles.
  std::vector<isa::Instruction>& to_replay = squash_replay_;
  to_replay.clear();
  while (!win_empty(t) && t.seq[slot_of(t.next_seq - 1)] >= first_seq) {
    const std::uint32_t slot = slot_of(t.next_seq - 1);
    if (t.pview[slot] >= 0) pview_close(t, slot, cause);
    release_instr_resources(tid, slot, /*completed_ok=*/false);
    if (replay_correct_path && !(t.flags[slot] & kFlagWrongPath)) {
      to_replay.push_back(t.si[slot]);
    }
    ++stats_.squashed;
    t.state[slot] = static_cast<std::uint8_t>(InstrState::kEmpty);
    --t.next_seq;
  }
  t.next_seq = first_seq;

  if (!to_replay.empty()) {
    // Squashed instructions are *older* in program order than anything
    // already waiting in the replay queue (which was queued by an earlier
    // flush and not yet refetched), so rebuild: squashed first, then the
    // existing backlog.
    std::vector<isa::Instruction>& backlog = squash_backlog_;
    backlog.clear();
    while (!t.replay.empty()) backlog.push_back(t.replay.pop_front());
    for (auto it = to_replay.rbegin(); it != to_replay.rend(); ++it) {
      t.replay.push_back(*it);
    }
    for (const auto& si : backlog) t.replay.push_back(si);
  }

  // Drop queue references to squashed instructions. A squashed slot's seq
  // entry still holds the squashed instruction's seq (slots are vacated,
  // not cleared), so the seq test identifies exactly the victims.
  const auto scrub = [this, tid, first_seq](IssueQueue& q) {
    for (std::uint64_t m = q.occ; m != 0; m &= m - 1) {
      const unsigned i = ctz64(m);
      if (q.slots[i].tid == tid &&
          threads_[tid].seq[q.slots[i].slot] >= first_seq) {
        const std::uint64_t bit = 1ull << i;
        q.occ &= ~bit;
        q.ready &= ~bit;
        q.mem &= ~bit;
      }
    }
  };
  scrub(int_iq_);
  scrub(fp_iq_);
  // Victims may sit anywhere in this thread's waiter chains (they enlist
  // on *older* producers, which survive), so rebuild the thread's chains
  // from its surviving not-ready entries. Producers and consumers share
  // a thread, so no other thread's chains can hold a victim. Squashes
  // are rare enough that the flat rebuild is cheaper than unlinking.
  std::fill(t.waiter_head.begin(), t.waiter_head.end(), kNoWaiter);
  const auto relink = [this, tid](IssueQueue& q, unsigned base) {
    for (std::uint64_t m = q.occ & ~q.ready; m != 0; m &= m - 1) {
      const unsigned i = ctz64(m);
      if (q.slots[i].tid != tid) continue;
      place_entry(base + i, q.slots[i]);
    }
  };
  relink(int_iq_, 0);
  relink(fp_iq_, 64);

  // Scrub the dispatch FIFO the same way (rebuild preserving order).
  if (!dispatch_fifo_.empty()) {
    std::vector<FifoRef>& keep = squash_keep_;
    keep.clear();
    while (!dispatch_fifo_.empty()) {
      const FifoRef r = dispatch_fifo_.pop_front();
      if (!(r.tid == tid && t.seq[r.slot] >= first_seq)) keep.push_back(r);
    }
    for (const FifoRef& r : keep) dispatch_fifo_.push_back(r);
  }
}

void Pipeline::syscall_flush(std::uint32_t /*syscall_tid*/) {
  ++stats_.syscall_flushes;
  for (std::uint32_t tid = 0; tid < num_threads(); ++tid) {
    Thread& t = threads_[tid];
    if (!win_empty(t)) {
      squash_from(tid, t.head_seq, /*replay_correct_path=*/true,
                  obs::PipeTerminal::kSquashSyscall);
    }
    t.wrong_path_mode = false;
    t.fetch_stall_until =
        std::max<std::uint64_t>(t.fetch_stall_until,
                                cycle_ + cfg_.syscall_flush_penalty);
    t.icache_stalled = false;
    t.counters.l1i_outstanding = 0;
  }
}

void Pipeline::block_fetch(std::uint32_t tid, std::uint64_t until_cycle) {
  threads_[tid].fetch_block_until = until_cycle;
}

workload::ThreadProgram Pipeline::swap_program(std::uint32_t tid,
                                               workload::ThreadProgram incoming,
                                               std::uint64_t penalty_cycles) {
  Thread& t = threads_[tid];
  if (!win_empty(t)) {
    squash_from(tid, t.head_seq, /*replay_correct_path=*/false,
                obs::PipeTerminal::kSquashSwap);
  }
  // Pending replay belongs to the outgoing job. Discarding it loses a few
  // already-fetched instructions of that job; the synthetic stream has no
  // architectural state, so "resume" semantics are preserved statistically
  // (a real OS would refetch from the saved PC just the same).
  t.replay.clear();
  t.wrong_path_mode = false;
  t.icache_stalled = false;
  t.delivered_block = ~std::uint64_t{0};
  t.counters = ThreadCounters{};
  ++t.life_epoch;     // lifetime accumulators restarted
  ++t.quantum_epoch;  // quantum accumulators restarted too
  t.fetch_stall_until =
      std::max<std::uint64_t>(t.fetch_stall_until, cycle_ + penalty_cycles);
  if (cpi_.enabled) {
    // The fetch stall just imposed is a context-switch cost, not a
    // squash-recovery penalty; account_cpi reclassifies it.
    cpi_.swap_stall_until[tid] = std::max<std::uint64_t>(
        cpi_.swap_stall_until[tid], cycle_ + penalty_cycles);
  }

  workload::ThreadProgram outgoing = std::move(t.program);
  t.program = std::move(incoming);
  return outgoing;
}

// ---------------------------------------------------------------------------
// Pipeview: opt-in per-instruction lifecycle sampling.
//
// An instruction is "opened" at fetch when a sampling window is active:
// it gets a slot in pview_.records holding a pre-filled kPipeview event
// whose `cycle` is the fetch cycle. Stage stamps are recorded as deltas
// from that fetch cycle; step() runs commit→complete→issue→dispatch→fetch,
// so every post-fetch stage happens in a strictly later cycle and a delta
// of 0 unambiguously means "stage never reached". The record is emitted
// and its slot recycled at commit or squash ("closed").
// ---------------------------------------------------------------------------
void Pipeline::set_pipeview(obs::TraceSink* sink,
                            std::vector<PipeviewWindow> windows,
                            std::uint64_t quantum_cycles) {
  pview_ = PipeviewState{};
  // Any in-flight pview indices refer to the previous state's records (or
  // to a copied-from pipeline's); scrub them so stale slots can never
  // alias new ones. Vacated slots' indices are dead anyway, so scrubbing
  // the whole array is harmless and simplest.
  for (Thread& t : threads_) {
    std::fill(t.pview.begin(), t.pview.end(), -1);
  }
  if (sink == nullptr || windows.empty()) return;
  std::sort(windows.begin(), windows.end(),
            [](const PipeviewWindow& a, const PipeviewWindow& b) {
              return a.start_cycle < b.start_cycle;
            });
  pview_.sink = sink;
  pview_.windows = std::move(windows);
  pview_.quantum_cycles = quantum_cycles;
}

void Pipeline::pview_open(std::uint32_t tid, std::uint32_t slot) {
  // Advance past exhausted windows.
  while (pview_.wi < pview_.windows.size() &&
         pview_.taken >= pview_.windows[pview_.wi].count) {
    ++pview_.wi;
    pview_.taken = 0;
  }
  if (pview_.wi >= pview_.windows.size()) return;
  if (cycle_ < pview_.windows[pview_.wi].start_cycle) return;
  ++pview_.taken;

  std::int32_t rec;
  if (!pview_.free_slots.empty()) {
    rec = pview_.free_slots.back();
    pview_.free_slots.pop_back();
    pview_.records[static_cast<std::size_t>(rec)] = PipeviewRecord{};
  } else {
    rec = static_cast<std::int32_t>(pview_.records.size());
    pview_.records.emplace_back();
  }
  Thread& t = threads_[tid];
  PipeviewRecord& r = pview_.records[static_cast<std::size_t>(rec)];
  r.open = true;
  obs::TraceEvent& e = r.ev;
  e.kind = obs::EventKind::kPipeview;
  e.cycle = cycle_;
  e.quantum =
      pview_.quantum_cycles != 0 ? cycle_ / pview_.quantum_cycles : 0;
  e.tid = static_cast<std::int32_t>(tid);
  e.value = static_cast<std::int64_t>(t.seq[slot]);
  if (t.flags[slot] & kFlagWrongPath) e.mask |= obs::kPipeWrongPath;
  // Decode/rename happen inside the fixed front-end delay; stamp them from
  // the configuration (decode one cycle after fetch, rename at the end of
  // the front end). With frontend_delay == 0 both collapse into fetch.
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kDecode)] =
      cfg_.frontend_delay >= 1 ? 1u : 0u;
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kRename)] =
      static_cast<std::uint32_t>(cfg_.frontend_delay);
  ++pview_.opened;
  ++pview_.live;
  t.pview[slot] = rec;
}

void Pipeline::pview_stamp(Thread& t, std::uint32_t slot,
                           obs::PipeStage stage) {
  // Stale-index guard: a copied pipeline inherits per-slot pview values
  // but drops the pipeview state (copies drop observers), so indices may
  // point at nothing. Reset and bail rather than stamping a ghost.
  const auto idx = static_cast<std::size_t>(t.pview[slot]);
  if (pview_.sink == nullptr || idx >= pview_.records.size() ||
      !pview_.records[idx].open) {
    t.pview[slot] = -1;
    return;
  }
  obs::TraceEvent& e = pview_.records[idx].ev;
  e.stage_delta[static_cast<std::size_t>(stage)] =
      static_cast<std::uint32_t>(cycle_ - e.cycle);
}

void Pipeline::pview_close(Thread& t, std::uint32_t slot,
                           obs::PipeTerminal term) {
  const auto idx = static_cast<std::size_t>(t.pview[slot]);
  if (pview_.sink == nullptr || idx >= pview_.records.size() ||
      !pview_.records[idx].open) {
    t.pview[slot] = -1;
    return;
  }
  PipeviewRecord& r = pview_.records[idx];
  obs::TraceEvent& e = r.ev;
  const auto delta = static_cast<std::uint32_t>(cycle_ - e.cycle);
  // The decode/rename stamps were prefilled optimistically at open; an
  // early squash can retire the instruction before it reached them. A
  // stage past the terminal never happened — zero it.
  for (std::uint32_t& s : e.stage_delta) {
    if (s > delta) s = 0;
  }
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kRetire)] = delta;
  e.span = delta;
  e.code = static_cast<std::uint8_t>(term);
  if (t.flags[slot] & kFlagMispredicted) e.mask |= obs::kPipeMispredicted;
  pview_.sink->record(e);
  r.open = false;
  --pview_.live;
  pview_.free_slots.push_back(static_cast<std::int32_t>(idx));
  t.pview[slot] = -1;
}

void Pipeline::reset_quantum_counters() {
  for (Thread& t : threads_) {
    t.counters.reset_quantum();
    ++t.quantum_epoch;
  }
}

std::uint64_t Pipeline::charged_stall_slots() const noexcept {
  std::uint64_t total = machine_stalls_.total();
  for (const Thread& t : threads_) total += t.stalls.total();
  return total;
}

// ---------------------------------------------------------------------------
// CPI-stack commit-slot accounting (obs/cpi_stack.hpp).
//
// Runs at the end of step(), after every stage: each thread's head-of-
// window state then explains the whole cycle, because commit is in-order
// — whatever blocks the head blocks every younger instruction behind it.
// Committed slots are Δhead_seq (advances exactly one per retirement and
// is preserved across squashes and context switches, so the delta needs
// no epoch handling); the remaining commit_width − Δ slots are charged
// to exactly one cause. Conservation — per cycle and per run — is
// total() == commit_width × cycles_accounted per thread, enforced by
// tests/test_cpi_stack.cpp and scripts/check_cpi.sh.
// ---------------------------------------------------------------------------
void Pipeline::set_cpi_accounting(bool on) {
  cpi_ = CpiState{};
  if (!on) return;
  cpi_.enabled = true;
  const std::size_t n = threads_.size();
  cpi_.stacks.assign(n, obs::CpiStack{});
  cpi_.prev_head_seq.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cpi_.prev_head_seq[i] = threads_[i].head_seq;
  }
  cpi_.fetch_cause.assign(n, 0);
  cpi_.swap_stall_until.assign(n, 0);
  cpi_.refill_cause.assign(
      n, static_cast<std::uint8_t>(obs::CpiCause::kRobEmpty));
  cpi_.refill_sub.assign(
      n, static_cast<std::int8_t>(obs::StallCause::kPolicyThrottle));
}

void Pipeline::charge_cpi_contention(std::uint32_t tid, std::uint64_t lost,
                                     std::uint64_t holders) {
  obs::CpiStack& st = cpi_.stacks[tid];
  st.charge(obs::CpiCause::kFuContention, lost);
  // Blame co-runners; only with no co-runner to blame does the loss
  // fall back on the thread itself (intra-thread arbitration).
  std::uint64_t mask = holders & ~(1ull << tid);
  if (mask == 0) mask = 1ull << tid;
  std::array<std::uint32_t, 64> ids;  // n <= 64
  std::uint32_t m = 0;
  for (std::uint64_t b = mask; b != 0; b &= b - 1) {
    // Co-runners beyond the 8-context convention fold into the last
    // bucket so the contend invariant survives exotic configurations.
    ids[m++] = std::min<std::uint32_t>(
        ctz64(b), static_cast<std::uint32_t>(obs::kCpiMaxThreads) - 1);
  }
  // Rotate the start with the cycle so repeated single-slot losses do
  // not systematically blame the lowest-numbered holder.
  std::uint32_t at = static_cast<std::uint32_t>(cycle_ % m);
  for (std::uint64_t k = 0; k < lost;
       ++k, at = (at + 1 == m ? 0 : at + 1)) {
    ++st.contend[ids[at]];
  }
}

void Pipeline::account_cpi() {
  const std::uint32_t n = num_threads();
  const std::uint64_t width = cfg_.commit_width;

  // Per-thread committed slots this cycle, and the committer set (the
  // holders when a done head lost the shared commit bandwidth).
  std::array<std::uint64_t, 64> committed{};  // n <= 64
  std::uint64_t committers = 0;
  std::uint64_t committed_total = 0;
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    const std::uint64_t c = threads_[tid].head_seq - cpi_.prev_head_seq[tid];
    committed[tid] = c;
    committed_total += c;
    if (c != 0) committers |= 1ull << tid;
  }

  for (std::uint32_t tid = 0; tid < n; ++tid) {
    Thread& t = threads_[tid];
    obs::CpiStack& st = cpi_.stacks[tid];
    cpi_.prev_head_seq[tid] = t.head_seq;
    st.charge(obs::CpiCause::kCommitted, committed[tid]);
    const std::uint64_t lost = width - committed[tid];
    if (lost == 0) continue;

    if (win_empty(t)) {
      // Starved window: back-propagate this cycle's fetch-side cause.
      // No recorded cause means the thread merely lost fetch
      // arbitration — the policy throttle working as designed.
      const std::uint8_t fc = cpi_.fetch_cause[tid];
      const obs::StallCause cause =
          fc != 0 ? static_cast<obs::StallCause>(fc - 1)
                  : obs::StallCause::kPolicyThrottle;
      obs::CpiCause top = obs::CpiCause::kRobEmpty;
      std::int8_t sub = -1;
      if (cause == obs::StallCause::kFetchBlackout) {
        top = obs::CpiCause::kSwitchOverhead;
      } else if (cause == obs::StallCause::kSquashRecovery) {
        top = cycle_ < cpi_.swap_stall_until[tid]
                  ? obs::CpiCause::kSwitchOverhead
                  : obs::CpiCause::kSquashRecovery;
      } else {
        sub = static_cast<std::int8_t>(cause);
      }
      st.charge(top, lost);
      if (sub >= 0) {
        st.rob_empty_by[static_cast<std::size_t>(sub)] += lost;
      }
      // Remember the charge: the frontend_delay refill that follows
      // keeps this attribution until the head reaches dispatch.
      cpi_.refill_cause[tid] = static_cast<std::uint8_t>(top);
      cpi_.refill_sub[tid] = sub;
      continue;
    }

    const std::uint32_t slot = slot_of(t.head_seq);
    switch (static_cast<InstrState>(t.state[slot])) {
      case InstrState::kDone:
        if (committed_total >= width) {
          // Ready to retire, but co-runners consumed the shared commit
          // bandwidth — the symbiosis signal.
          charge_cpi_contention(tid, lost, committers);
        } else {
          // Completed after this cycle's commit stage already ran:
          // pure completion latency, charged as dependency wait.
          st.charge(obs::CpiCause::kDepWait, lost);
        }
        break;
      case InstrState::kIssued:
        if (t.si[slot].cls == isa::InstrClass::kLoad &&
            (t.flags[slot] & kFlagL1dOutstanding)) {
          st.charge(obs::CpiCause::kMemLatency, lost);
        } else {
          st.charge(obs::CpiCause::kDepWait, lost);
        }
        break;
      case InstrState::kQueued:
        // The head's producers are all older than head_seq, hence
        // architecturally complete: it was ready by construction and
        // lost only the issue-width/FU/mem-port arbitration.
        charge_cpi_contention(tid, lost, cpi_.issued_tids);
        break;
      case InstrState::kFrontEnd:
        if (t.dispatch_ready[slot] > cycle_) {
          // Decode/rename refill: keep the charge that emptied the
          // window (cold start defaults to rob_empty/policy_throttle).
          const auto top =
              static_cast<obs::CpiCause>(cpi_.refill_cause[tid]);
          st.charge(top, lost);
          if (cpi_.refill_sub[tid] >= 0) {
            st.rob_empty_by[static_cast<std::size_t>(
                cpi_.refill_sub[tid])] += lost;
          }
        } else {
          // Released by the front end but dispatch-blocked: IQ/LSQ/
          // rename exhaustion (possibly via FIFO head-of-line).
          st.charge(obs::CpiCause::kStructuralFull, lost);
        }
        break;
      case InstrState::kEmpty:
        // Unreachable for a live head; keep conservation if it ever is.
        st.charge(obs::CpiCause::kRobEmpty, lost);
        st.rob_empty_by[static_cast<std::size_t>(
            obs::StallCause::kPolicyThrottle)] += lost;
        break;
    }
  }

  cpi_.issued_tids = 0;
  ++cpi_.cycles_accounted;
}

// ---------------------------------------------------------------------------
// Structural audit (src/check + tests).
// ---------------------------------------------------------------------------
Pipeline::ResourceAudit Pipeline::audit_resources() const {
  ResourceAudit a;
  std::uint32_t lsq = 0;
  std::uint32_t int_held = 0;
  std::uint32_t fp_held = 0;
  for (std::uint32_t tid = 0; tid < num_threads(); ++tid) {
    const Thread& t = threads_[tid];
    std::int32_t icount = 0;
    std::int32_t brcount = 0;
    std::int32_t ldcount = 0;
    std::int32_t memcount = 0;
    std::int32_t l1d_out = 0;
    std::int32_t frontend = 0;
    for (std::uint64_t i = 0; i < win_size(t); ++i) {
      const std::uint32_t slot = slot_of(t.head_seq + i);
      if (t.seq[slot] != t.head_seq + i) a.seq_mismatch |= 1u << tid;
      const isa::InstrClass cls = t.si[slot].cls;
      const auto st = static_cast<InstrState>(t.state[slot]);
      const bool mem = isa::is_mem(cls);
      if (mem ? st != InstrState::kDone
              : (st == InstrState::kFrontEnd || st == InstrState::kQueued)) {
        ++icount;
      }
      if (st == InstrState::kFrontEnd) ++frontend;
      if (st != InstrState::kDone) {
        if (cls == isa::InstrClass::kBranch) ++brcount;
        if (cls == isa::InstrClass::kLoad) {
          ++ldcount;
          ++memcount;
        } else if (cls == isa::InstrClass::kStore) {
          ++memcount;
        }
      }
      if (t.flags[slot] & kFlagL1dOutstanding) ++l1d_out;
      if (t.flags[slot] & kFlagLsqEntry) ++lsq;
      if (t.flags[slot] & kFlagRenameReg) {
        if (isa::is_fp(cls)) ++fp_held; else ++int_held;
      }
    }
    const ThreadCounters& c = t.counters;
    if (icount != c.icount || brcount != c.brcount || ldcount != c.ldcount ||
        memcount != c.memcount || l1d_out != c.l1d_outstanding ||
        frontend != t.frontend_count) {
      a.thread_mismatch |= 1u << tid;
    }
  }
  a.lsq_mismatch = lsq != lsq_used_;
  a.int_rename_mismatch = int_held + int_rename_free_ != cfg_.int_rename_regs;
  a.fp_rename_mismatch = fp_held + fp_rename_free_ != cfg_.fp_rename_regs;
  a.iq_overflow =
      popcount64(int_iq_.occ) > cfg_.int_iq_size ||
      popcount64(fp_iq_.occ) > cfg_.fp_iq_size;
  a.ok = a.thread_mismatch == 0 && a.seq_mismatch == 0 && !a.lsq_mismatch &&
         !a.int_rename_mismatch && !a.fp_rename_mismatch && !a.iq_overflow;
  return a;
}

// ---------------------------------------------------------------------------
// Metrics export.
// ---------------------------------------------------------------------------
void export_metrics(const Pipeline& pipe, obs::MetricsRegistry& reg) {
  const PipelineStats& s = pipe.stats();
  reg.set("machine.cycles", s.cycles);
  reg.set("machine.committed", s.committed);
  reg.set("machine.ipc", s.ipc());
  reg.set("machine.fetched", s.fetched);
  reg.set("machine.fetched_wrong_path", s.fetched_wrong_path);
  reg.set("machine.squashed", s.squashed);
  reg.set("machine.branches_resolved", s.branches_resolved);
  reg.set("machine.mispredicts", s.mispredicts);
  reg.set("machine.btb_misses", s.btb_misses);
  reg.set("machine.syscall_flushes", s.syscall_flushes);
  reg.set("machine.fetch_slots_idle", s.fetch_slots_idle);
  reg.set("machine.dt_slots_used", s.dt_slots_used);
  reg.set("machine.charged_stall_slots", pipe.charged_stall_slots());

  char key[96];
  const obs::StallBreakdown& mb = pipe.machine_stall_breakdown();
  for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
    std::snprintf(key, sizeof key, "machine.stalls.%s",
                  std::string(name(static_cast<obs::StallCause>(c))).c_str());
    reg.set(key, mb.slots[c]);
  }

  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const ThreadCounters& c = pipe.counters(tid);
    std::snprintf(key, sizeof key, "threads.%u.committed", tid);
    reg.set(key, c.committed_total);
    std::snprintf(key, sizeof key, "threads.%u.cycles_seen", tid);
    reg.set(key, c.cycles_seen);
    std::snprintf(key, sizeof key, "threads.%u.fetched", tid);
    reg.set(key, c.fetched_total);
    std::snprintf(key, sizeof key, "threads.%u.ipc", tid);
    reg.set(key, c.acc_ipc());
    const obs::StallBreakdown& sb = pipe.stall_breakdown(tid);
    std::snprintf(key, sizeof key, "threads.%u.stall_slots", tid);
    reg.set(key, sb.total());
    for (std::size_t cause = 0; cause < obs::kNumStallCauses; ++cause) {
      std::snprintf(
          key, sizeof key, "threads.%u.stalls.%s", tid,
          std::string(name(static_cast<obs::StallCause>(cause))).c_str());
      reg.set(key, sb.slots[cause]);
    }
  }

  // CPI-stack accounting appears only when enabled: an accounting-off
  // run's stats document is byte-identical to pre-CPI output (golden
  // digests), the same contract as check.* keys.
  if (!pipe.cpi_accounting()) return;
  const std::uint64_t width = pipe.config().commit_width;
  const std::uint64_t acct_cycles = pipe.cpi_cycles_accounted();
  reg.set("cpi.commit_width", width);
  reg.set("cpi.cycles_accounted", acct_cycles);
  reg.set("cpi.slots_accounted", width * acct_cycles * pipe.num_threads());
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const obs::CpiStack& st = pipe.cpi_stack(tid);
    std::snprintf(key, sizeof key, "threads.%u.cpi.slots", tid);
    reg.set(key, st.total());
    for (std::size_t c = 0; c < obs::kNumCpiCauses; ++c) {
      std::snprintf(
          key, sizeof key, "threads.%u.cpi.%s", tid,
          std::string(name(static_cast<obs::CpiCause>(c))).c_str());
      reg.set(key, st.slots[c]);
    }
    for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
      std::snprintf(
          key, sizeof key, "threads.%u.cpi.rob_empty_by.%s", tid,
          std::string(name(static_cast<obs::StallCause>(c))).c_str());
      reg.set(key, st.rob_empty_by[c]);
    }
    for (std::size_t h = 0; h < obs::kCpiMaxThreads; ++h) {
      std::snprintf(key, sizeof key, "threads.%u.cpi.contend.%zu", tid, h);
      reg.set(key, st.contend[h]);
    }
  }
}

}  // namespace smt::pipeline
