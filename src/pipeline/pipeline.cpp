#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "isa/instruction.hpp"
#include "mem/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"
#include "prof/phase_profiler.hpp"
#include "workload/thread_program.hpp"

namespace smt::pipeline {

namespace {

[[nodiscard]] bool has_dst_reg(isa::InstrClass c) noexcept {
  using isa::InstrClass;
  switch (c) {
    case InstrClass::kIntAlu:
    case InstrClass::kIntMul:
    case InstrClass::kIntDiv:
    case InstrClass::kFpAdd:
    case InstrClass::kFpMul:
    case InstrClass::kFpDiv:
    case InstrClass::kLoad:
      return true;
    case InstrClass::kStore:
    case InstrClass::kBranch:
    case InstrClass::kSyscall:
      return false;
  }
  return false;
}

/// Depth to scan the in-flight window for store→load forwarding.
constexpr std::uint64_t kForwardScanDepth = 16;

}  // namespace

Pipeline::Pipeline(const PipelineConfig& cfg,
                   std::vector<workload::ThreadProgram> programs)
    : cfg_(cfg),
      mem_(cfg.memory),
      bp_(cfg.predictor),
      int_rename_free_(cfg.int_rename_regs),
      fp_rename_free_(cfg.fp_rename_regs),
      completion_(kCompletionRing) {
  if (programs.empty()) {
    throw std::invalid_argument("Pipeline: needs at least one program");
  }
  if (programs.size() + 1 > cfg.memory.max_threads ||
      programs.size() + 1 > cfg.predictor.max_threads) {
    throw std::invalid_argument(
        "Pipeline: thread count exceeds memory/predictor configuration");
  }
  if (cfg.memory.mem_latency + cfg.lat_int_div + 2 >= kCompletionRing) {
    throw std::invalid_argument("Pipeline: latency exceeds completion ring");
  }
  threads_.reserve(programs.size());
  for (auto& prog : programs) {
    Thread t;
    t.program = std::move(prog);
    t.window = FixedQueue<DynInstr>(cfg.rob_per_thread);
    t.replay = FixedQueue<isa::Instruction>(cfg.rob_per_thread + cfg.fetch_width);
    threads_.push_back(std::move(t));
  }
  int_iq_.reserve(cfg.int_iq_size);
  fp_iq_.reserve(cfg.fp_iq_size);
  dispatch_fifo_ = FixedQueue<InstrRef>(
      threads_.size() * cfg.fetch_buffer_cap + cfg.fetch_width);

  // Pre-size the per-cycle scratch and the completion-ring lanes so the
  // steady-state loop never heap-allocates.
  fetch_cands_.reserve(threads_.size());
  int_issued_.reserve(cfg.issue_width);
  fp_issued_.reserve(cfg.issue_width);
  squash_replay_.reserve(cfg.rob_per_thread);
  squash_backlog_.reserve(cfg.rob_per_thread + cfg.fetch_width);
  squash_keep_.reserve(dispatch_fifo_.capacity());
  for (auto& lane : completion_) lane.reserve(cfg.issue_width);
}

Pipeline::DynInstr& Pipeline::instr_at(std::uint32_t tid, std::uint64_t seq) {
  Thread& t = threads_[tid];
  assert(seq >= t.head_seq && seq < t.head_seq + t.window.size());
  return t.window[static_cast<std::size_t>(seq - t.head_seq)];
}

const Pipeline::DynInstr& Pipeline::instr_at(std::uint32_t tid,
                                             std::uint64_t seq) const {
  const Thread& t = threads_[tid];
  assert(seq >= t.head_seq && seq < t.head_seq + t.window.size());
  return t.window[static_cast<std::size_t>(seq - t.head_seq)];
}

void Pipeline::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

void Pipeline::step() {
  if (prof_.prof != nullptr && (cycle_ & prof_.mask) == 0) {
    step_stages_profiled();
  } else {
    do_commit();
    do_complete();
    do_issue();
    do_dispatch();
    do_fetch();
  }

  for (Thread& t : threads_) ++t.counters.cycles_seen;
  ++stats_.cycles;
  ++cycle_;
}

void Pipeline::step_stages_profiled() {
  using Scope = prof::PhaseProfiler::Scope;
  {
    const Scope s(prof_.prof, prof_.nodes.commit);
    do_commit();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.complete);
    do_complete();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.issue);
    do_issue();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.dispatch);
    do_dispatch();
  }
  {
    const Scope s(prof_.prof, prof_.nodes.fetch);
    do_fetch();
  }
}

void Pipeline::set_profiler(prof::PhaseProfiler* p, const ProfNodes& nodes,
                            std::uint64_t stride_mask) {
  prof_ = ProfState{};
  if (p == nullptr) return;
  prof_.prof = p;
  prof_.mask = stride_mask;
  prof_.nodes = nodes;
}

// ---------------------------------------------------------------------------
// Commit: per-thread in-order retirement, shared bandwidth, rotating start.
// ---------------------------------------------------------------------------
void Pipeline::do_commit() {
  std::uint32_t budget = cfg_.commit_width;
  const std::uint32_t n = num_threads();
  for (std::uint32_t i = 0; i < n && budget > 0; ++i) {
    const std::uint32_t tid = static_cast<std::uint32_t>((cycle_ + i) % n);
    Thread& t = threads_[tid];
    while (budget > 0 && !t.window.empty()) {
      DynInstr& head = t.window.front();
      if (head.state != DynInstr::State::kDone) break;
      assert(!head.wrong_path && "wrong-path instruction reached commit");

      const bool is_syscall = head.si.cls == isa::InstrClass::kSyscall;
      if (head.pview >= 0) pview_close(head, obs::PipeTerminal::kCommit);
      release_instr_resources(tid, head, /*completed_ok=*/true);
      ++t.counters.committed_total;
      ++t.counters.committed_quantum;
      ++stats_.committed;
      --budget;
      t.window.pop_front();
      ++t.head_seq;
      if (is_syscall) {
        syscall_flush(tid);
        break;  // the whole machine just drained
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Complete: retire execution results scheduled for this cycle; resolve
// branches, trigger mispredict squashes.
// ---------------------------------------------------------------------------
void Pipeline::do_complete() {
  auto& slot = completion_[cycle_ % kCompletionRing];
  for (const InstrRef& ref : slot) {
    Thread& t = threads_[ref.tid];
    // Stale-reference checks: the instruction may have been squashed (and
    // its seq reused by a later fetch).
    if (ref.seq < t.head_seq || ref.seq >= t.head_seq + t.window.size()) {
      continue;
    }
    DynInstr& d = instr_at(ref.tid, ref.seq);
    if (d.uid != ref.uid || d.state != DynInstr::State::kIssued) continue;

    d.state = DynInstr::State::kDone;
    if (d.pview >= 0) pview_stamp(d, obs::PipeStage::kWriteback);
    ThreadCounters& c = t.counters;
    if (d.si.cls == isa::InstrClass::kLoad) {
      --c.icount;  // leaves the load queue
      --c.ldcount;
      --c.memcount;
      if (d.counted_l1d_outstanding) {
        --c.l1d_outstanding;
        d.counted_l1d_outstanding = false;
      }
    } else if (d.si.cls == isa::InstrClass::kStore) {
      --c.icount;  // leaves the store queue
      --c.memcount;
    } else if (d.si.cls == isa::InstrClass::kBranch) {
      --c.brcount;
      if (!d.wrong_path) {
        ++stats_.branches_resolved;
        ++c.cond_branches_quantum;
        bp_.update(ref.tid, d.si.pc, d.si.taken, d.si.branch_target,
                   d.mispredicted);
        if (d.mispredicted) {
          ++stats_.mispredicts;
          ++c.mispredicts_quantum;
          squash_from(ref.tid, d.seq + 1, /*replay_correct_path=*/false,
                      obs::PipeTerminal::kSquashMispredict);
          t.wrong_path_mode = false;
          t.fetch_stall_until =
              std::max<std::uint64_t>(t.fetch_stall_until,
                                      cycle_ + cfg_.mispredict_penalty);
        }
      }
    }
  }
  slot.clear();
}

// ---------------------------------------------------------------------------
// Issue: oldest-first over both queues, FU and width constraints.
// ---------------------------------------------------------------------------
bool Pipeline::deps_ready(const Thread& t, const DynInstr& d) const {
  for (const std::uint16_t dep : {d.si.dep1, d.si.dep2}) {
    if (dep == 0) continue;
    if (dep > d.seq) continue;  // predates the stream: architected value
    const std::uint64_t pseq = d.seq - dep;
    if (pseq < t.head_seq) continue;  // producer already committed
    const DynInstr& p =
        t.window[static_cast<std::size_t>(pseq - t.head_seq)];
    if (p.state != DynInstr::State::kDone) return false;
  }
  return true;
}

std::uint32_t Pipeline::load_latency(std::uint32_t tid, Thread& t,
                                     const DynInstr& d) {
  // Store→load forwarding from the in-flight window (bounded scan).
  const std::uint64_t limit = std::min<std::uint64_t>(
      kForwardScanDepth, d.seq > t.head_seq ? d.seq - t.head_seq : 0);
  for (std::uint64_t k = 1; k <= limit; ++k) {
    const DynInstr& older =
        t.window[static_cast<std::size_t>(d.seq - k - t.head_seq)];
    if (older.si.cls == isa::InstrClass::kStore &&
        older.si.mem_addr == d.si.mem_addr) {
      return cfg_.lat_int_alu;  // forwarded: ALU-like latency
    }
  }
  const mem::AccessResult r =
      mem_.lookup_data(tid, d.si.mem_addr, /*write=*/false);
  if (r.l1_miss) {
    ++t.counters.l1d_misses_quantum;
  }
  return r.latency;
}

void Pipeline::do_issue() {
  std::uint32_t total = cfg_.issue_width;
  std::uint32_t int_budget = cfg_.int_alus;
  std::uint32_t mem_budget = cfg_.mem_ports;
  std::uint32_t fp_budget = cfg_.fp_units;

  // Merge the two age-ordered queues oldest-first.
  std::size_t ii = 0;
  std::size_t fi = 0;
  // Indices issued this cycle, per queue, for compaction afterwards
  // (reused scratch; cleared every cycle).
  std::vector<std::size_t>& int_issued = int_issued_;
  std::vector<std::size_t>& fp_issued = fp_issued_;
  int_issued.clear();
  fp_issued.clear();

  while (total > 0 && (ii < int_iq_.size() || fi < fp_iq_.size())) {
    const bool take_int =
        fi >= fp_iq_.size() ||
        (ii < int_iq_.size() && int_iq_[ii].age < fp_iq_[fi].age);

    const InstrRef ref = take_int ? int_iq_[ii] : fp_iq_[fi];
    const std::size_t qidx = take_int ? ii : fi;
    if (take_int) ++ii; else ++fi;

    // Queue-wide FU exhaustion needs no window lookup at all.
    if (take_int) {
      if (int_budget == 0) continue;
    } else {
      if (fp_budget == 0) continue;
    }

    Thread& t = threads_[ref.tid];
    DynInstr& d = instr_at(ref.tid, ref.seq);
    assert(d.uid == ref.uid && d.state == DynInstr::State::kQueued);

    // FU availability for this class.
    const bool is_mem = isa::is_mem(d.si.cls);
    if (take_int && is_mem && mem_budget == 0) continue;
    if (!deps_ready(t, d)) continue;

    // Issue it.
    std::uint32_t latency = cfg_.latency_for(d.si.cls);
    if (d.si.cls == isa::InstrClass::kLoad) {
      latency = load_latency(ref.tid, t, d);
      if (latency > cfg_.memory.l1_latency) {
        ++t.counters.l1d_outstanding;
        d.counted_l1d_outstanding = true;
      }
    } else if (d.si.cls == isa::InstrClass::kStore) {
      // Stores retire into the store buffer; the cache access happens now
      // for state/statistics, but the latency is off the critical path.
      const mem::AccessResult r =
          mem_.lookup_data(ref.tid, d.si.mem_addr, /*write=*/true);
      if (r.l1_miss) ++t.counters.l1d_misses_quantum;
      latency = cfg_.lat_int_alu;
    }

    d.state = DynInstr::State::kIssued;
    d.done_cycle = cycle_ + latency;
    if (d.pview >= 0) {
      pview_stamp(d, obs::PipeStage::kIssue);
      pview_stamp(d, obs::PipeStage::kExecute);
    }
    if (!is_mem) --t.counters.icount;  // mem ops stay in the LQ/SQ
    completion_[d.done_cycle % kCompletionRing].push_back(ref);

    --total;
    if (take_int) {
      --int_budget;
      if (is_mem) --mem_budget;
      int_issued.push_back(qidx);
    } else {
      --fp_budget;
      fp_issued.push_back(qidx);
    }
  }

  // Compact the queues (indices are ascending).
  auto compact = [](std::vector<InstrRef>& q, const std::vector<std::size_t>& gone) {
    if (gone.empty()) return;
    std::size_t g = 0;
    std::size_t out = 0;
    for (std::size_t in = 0; in < q.size(); ++in) {
      if (g < gone.size() && gone[g] == in) {
        ++g;
        continue;
      }
      q[out++] = q[in];
    }
    q.resize(out);
  };
  compact(int_iq_, int_issued);
  compact(fp_iq_, fp_issued);
}

// ---------------------------------------------------------------------------
// Dispatch: global fetch-order FIFO → instruction queues, head-of-line
// blocking on IQ / LSQ / renaming-register exhaustion (the rename stage is
// in-order, so one thread's stuck instruction stalls everything behind it).
// ---------------------------------------------------------------------------
void Pipeline::do_dispatch() {
  std::uint32_t budget = cfg_.dispatch_width;
  while (budget > 0 && !dispatch_fifo_.empty()) {
    const InstrRef ref = dispatch_fifo_.front();
    Thread& t = threads_[ref.tid];

    // Entries for squashed instructions were scrubbed at squash time, so
    // the head is always live.
    DynInstr& d = instr_at(ref.tid, ref.seq);
    assert(d.uid == ref.uid && d.state == DynInstr::State::kFrontEnd);
    if (d.dispatch_ready > cycle_) break;  // still in decode/rename

    const bool fp = isa::is_fp(d.si.cls);
    const bool is_mem = isa::is_mem(d.si.cls);

    // Structural-hazard checks; failure stalls the whole stage.
    if (fp) {
      if (fp_iq_.size() >= cfg_.fp_iq_size) break;
    } else {
      if (int_iq_.size() >= cfg_.int_iq_size) break;
    }
    if (is_mem && lsq_used_ >= cfg_.lsq_size) {
      ++t.counters.lsq_full_events_quantum;
      break;
    }
    if (has_dst_reg(d.si.cls)) {
      if (fp) {
        if (fp_rename_free_ == 0) break;
      } else {
        if (int_rename_free_ == 0) break;
      }
    }

    // Acquire resources and enqueue.
    if (has_dst_reg(d.si.cls)) {
      if (fp) --fp_rename_free_; else --int_rename_free_;
      d.has_rename_reg = true;
    }
    if (is_mem) {
      ++lsq_used_;
      d.has_lsq_entry = true;
    }
    d.state = DynInstr::State::kQueued;
    d.age = next_age_++;
    if (d.pview >= 0) pview_stamp(d, obs::PipeStage::kDispatch);
    (fp ? fp_iq_ : int_iq_)
        .push_back(InstrRef{ref.tid, ref.seq, ref.uid, d.age});
    --t.frontend_count;
    dispatch_fifo_.pop_front();
    --budget;
  }
}

// ---------------------------------------------------------------------------
// Fetch: thread selection by the active policy, ICOUNT.2.8 bandwidth,
// cache-block fragmentation, wrong-path synthesis, detector-thread slots.
// ---------------------------------------------------------------------------
void Pipeline::do_fetch() {
  const std::uint32_t n = num_threads();

  // Clear expired I-cache stalls.
  for (Thread& t : threads_) {
    if (t.icache_stalled && t.fetch_stall_until <= cycle_) {
      t.icache_stalled = false;
      t.counters.l1i_outstanding = 0;
    }
  }

  // Candidate threads, sorted by the active policy's priority key with a
  // rotating tie-break so equal-key threads share fairly (reused
  // scratch; cleared every cycle).
  std::vector<FetchCand>& cands = fetch_cands_;
  cands.clear();
  // Per-thread blocked-cause for this cycle: 0 = not blocked, else
  // StallCause + 1. Lost slots are charged against these after the
  // service loop runs.
  std::array<std::uint8_t, 64> block_cause{};  // n <= 64
  const auto blocked_by = [&block_cause](std::uint32_t tid,
                                         obs::StallCause c) {
    block_cause[tid] = static_cast<std::uint8_t>(c) + 1;
  };
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    Thread& t = threads_[tid];
    if (t.fetch_stall_until > cycle_) {
      blocked_by(tid, t.icache_stalled ? obs::StallCause::kIcacheMiss
                                       : obs::StallCause::kSquashRecovery);
      continue;
    }
    if (t.fetch_block_until > cycle_) {
      blocked_by(tid, obs::StallCause::kFetchBlackout);
      continue;
    }
    if (t.window.full()) {
      blocked_by(tid, obs::StallCause::kRobFull);
      continue;
    }
    if (t.frontend_count >=
        static_cast<std::int32_t>(cfg_.fetch_buffer_cap)) {
      // front-end buffer full: dispatch is backed up
      blocked_by(tid, obs::StallCause::kDispatchBackpressure);
      continue;
    }
    const double key =
        policy::priority_key(policy_, t.counters, tid, n, cycle_);
    cands.push_back(
        FetchCand{tid, key, static_cast<std::uint32_t>((tid + cycle_) % n)});
  }
  std::sort(cands.begin(), cands.end(),
            [](const FetchCand& a, const FetchCand& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.tie < b.tie;
            });

  std::uint32_t slots = cfg_.fetch_width;
  std::uint32_t threads_used = 0;
  std::array<std::uint32_t, 64> fetched_per_thread{};  // n <= 64
  std::array<bool, 64> serviced{};

  for (const FetchCand& cand : cands) {
    if (slots == 0 || threads_used >= cfg_.fetch_threads) break;
    serviced[cand.tid] = true;
    Thread& t = threads_[cand.tid];
    ThreadCounters& c = t.counters;

    const std::uint64_t pc = t.wrong_path_mode
                                 ? t.wrong_pc
                                 : (!t.replay.empty() ? t.replay.front().pc
                                                      : t.program.pc());

    // I-cache access for the fetch block — skipped when this exact block
    // was just delivered by a completed miss (one-shot fetch-buffer hit).
    const std::uint64_t block = pc / isa::kFetchBlockBytes;
    if (block == t.delivered_block) {
      t.delivered_block = ~std::uint64_t{0};
    } else {
      const mem::AccessResult ir = mem_.lookup_instr(cand.tid, pc);
      if (ir.l1_miss) {
        ++c.l1i_misses_quantum;
        t.fetch_stall_until = cycle_ + ir.latency;
        t.icache_stalled = true;
        t.delivered_block = block;
        c.l1i_outstanding = 1;
        blocked_by(cand.tid, obs::StallCause::kIcacheMiss);
        ++threads_used;  // the fetch port was spent on the miss
        continue;
      }
    }

    // Fetch up to the cache-block boundary (fetch fragmentation).
    const std::uint64_t offset_in_block =
        (pc / isa::kInstrBytes) % isa::kFetchBlockInstrs;
    std::uint32_t n_max = static_cast<std::uint32_t>(
        isa::kFetchBlockInstrs - offset_in_block);
    n_max = std::min(n_max, slots);

    std::uint32_t got = 0;
    while (got < n_max && !t.window.full() &&
           t.frontend_count <
               static_cast<std::int32_t>(cfg_.fetch_buffer_cap)) {
      isa::Instruction si;
      bool wrong = t.wrong_path_mode;
      if (wrong) {
        si = t.program.next_wrong(t.wrong_pc);
      } else if (!t.replay.empty()) {
        si = t.replay.pop_front();
      } else {
        si = t.program.next();
      }

      DynInstr d;
      d.si = si;
      d.seq = t.next_seq++;
      d.uid = next_uid_++;
      d.state = DynInstr::State::kFrontEnd;
      d.wrong_path = wrong;
      d.dispatch_ready = cycle_ + cfg_.frontend_delay;
      if (pview_.sink != nullptr) pview_open(d, cand.tid);

      ++c.icount;
      ++t.frontend_count;
      if (si.cls == isa::InstrClass::kBranch) ++c.brcount;
      if (si.cls == isa::InstrClass::kLoad) {
        ++c.ldcount;
        ++c.memcount;
      } else if (si.cls == isa::InstrClass::kStore) {
        ++c.memcount;
      }
      ++stats_.fetched;
      ++c.fetched_total;
      if (wrong) {
        ++stats_.fetched_wrong_path;
        ++c.wrong_path_fetched_quantum;
      }
      ++got;
      --slots;

      bool stop_thread = false;
      if (si.cls == isa::InstrClass::kBranch) {
        const bool pred = bp_.predict(cand.tid, si.pc);
        d.predicted_taken = pred;
        if (!wrong) {
          const bool mispred = pred != si.taken;
          d.mispredicted = mispred;
          if (mispred) {
            t.wrong_path_mode = true;
            // The front end follows the *predicted* path.
            t.wrong_pc = pred ? si.branch_target : si.pc + isa::kInstrBytes;
          }
          if (pred) {
            // Predicted taken: redirect ends this thread's fetch group;
            // without a BTB target there is an extra bubble.
            if (!bp_.btb_hit(si.pc)) {
              ++stats_.btb_misses;
              t.fetch_stall_until = cycle_ + cfg_.btb_miss_penalty;
            }
            stop_thread = true;
          }
        } else if (pred) {
          stop_thread = true;  // wrong-path fetch also breaks on taken
        }
      }

      dispatch_fifo_.push_back(InstrRef{cand.tid, d.seq, d.uid});
      t.window.push_back(std::move(d));
      if (stop_thread) break;
    }

    fetched_per_thread[cand.tid] = got;
    ++threads_used;
  }

  // Stall accounting: every thread that put no instruction into the
  // machine this cycle incurs a fetch stall (whatever the reason).
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    if (fetched_per_thread[tid] == 0) {
      ++threads_[tid].counters.stalls_quantum;
    }
  }

  // Leftover slots: idle, unless the detector thread has queued work.
  stats_.fetch_slots_idle += slots;
  std::uint64_t lost = slots;
  if (!dt_frozen_ && dt_work_ > 0 && slots > 0) {
    const std::uint64_t used = std::min<std::uint64_t>(slots, dt_work_);
    dt_work_ -= used;
    stats_.dt_slots_used += used;
    lost -= used;
  }

  // Stall attribution: charge every slot the DT didn't absorb to exactly
  // one cause. Candidates the service loop never reached were ready but
  // out-ranked — the policy throttle working as designed.
  if (lost > 0) {
    for (const FetchCand& cand : cands) {
      if (!serviced[cand.tid]) {
        blocked_by(cand.tid, obs::StallCause::kPolicyThrottle);
      }
    }
    // Round-robin the lost slots over blocked threads, rotating the start
    // with the cycle so no thread is systematically favoured.
    std::array<std::uint32_t, 64> blocked_tids;
    std::uint32_t m = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t tid = static_cast<std::uint32_t>((cycle_ + i) % n);
      if (block_cause[tid] != 0) blocked_tids[m++] = tid;
    }
    if (m == 0) {
      // Nobody was blocked: fragmentation / taken-branch fetch-group ends
      // left slack no thread could claim this cycle.
      machine_stalls_.charge(obs::StallCause::kFragmentation, lost);
    } else {
      for (std::uint64_t k = 0; k < lost; ++k) {
        const std::uint32_t tid = blocked_tids[k % m];
        threads_[tid].stalls.charge(
            static_cast<obs::StallCause>(block_cause[tid] - 1));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Squash machinery.
// ---------------------------------------------------------------------------
void Pipeline::release_instr_resources(std::uint32_t tid, DynInstr& d,
                                       bool completed_ok) {
  Thread& t = threads_[tid];
  ThreadCounters& c = t.counters;

  if (d.has_rename_reg) {
    if (isa::is_fp(d.si.cls)) ++fp_rename_free_; else ++int_rename_free_;
    d.has_rename_reg = false;
  }
  if (d.has_lsq_entry) {
    --lsq_used_;
    d.has_lsq_entry = false;
  }
  if (completed_ok) return;

  // Squash path: undo occupancy contributions that completion would have
  // removed.
  const bool mem = isa::is_mem(d.si.cls);
  if (mem ? d.state != DynInstr::State::kDone
          : (d.state == DynInstr::State::kFrontEnd ||
             d.state == DynInstr::State::kQueued)) {
    --c.icount;
  }
  if (d.state == DynInstr::State::kFrontEnd) --t.frontend_count;
  if (d.state != DynInstr::State::kDone) {
    if (d.si.cls == isa::InstrClass::kBranch) --c.brcount;
    if (d.si.cls == isa::InstrClass::kLoad) {
      --c.ldcount;
      --c.memcount;
    } else if (d.si.cls == isa::InstrClass::kStore) {
      --c.memcount;
    }
    if (d.counted_l1d_outstanding) {
      --c.l1d_outstanding;
      d.counted_l1d_outstanding = false;
    }
  }
}

void Pipeline::squash_from(std::uint32_t tid, std::uint64_t first_seq,
                           bool replay_correct_path,
                           obs::PipeTerminal cause) {
  Thread& t = threads_[tid];

  // Collect replayable correct-path instructions (popped youngest-first,
  // reversed into program order below). Reused scratch: squashes are off
  // the per-cycle fast path but frequent enough (every mispredict) that
  // allocating here shows up in profiles.
  std::vector<isa::Instruction>& to_replay = squash_replay_;
  to_replay.clear();
  while (!t.window.empty() && t.window.back().seq >= first_seq) {
    DynInstr& d = t.window.back();
    if (d.pview >= 0) pview_close(d, cause);
    release_instr_resources(tid, d, /*completed_ok=*/false);
    if (replay_correct_path && !d.wrong_path) {
      to_replay.push_back(d.si);
    }
    ++stats_.squashed;
    t.window.pop_back();
  }
  t.next_seq = first_seq;

  if (!to_replay.empty()) {
    // Squashed instructions are *older* in program order than anything
    // already waiting in the replay queue (which was queued by an earlier
    // flush and not yet refetched), so rebuild: squashed first, then the
    // existing backlog.
    std::vector<isa::Instruction>& backlog = squash_backlog_;
    backlog.clear();
    while (!t.replay.empty()) backlog.push_back(t.replay.pop_front());
    for (auto it = to_replay.rbegin(); it != to_replay.rend(); ++it) {
      t.replay.push_back(*it);
    }
    for (const auto& si : backlog) t.replay.push_back(si);
  }

  // Drop queue references to squashed instructions.
  auto scrub = [tid, first_seq](std::vector<InstrRef>& q) {
    std::size_t out = 0;
    for (std::size_t in = 0; in < q.size(); ++in) {
      if (q[in].tid == tid && q[in].seq >= first_seq) continue;
      q[out++] = q[in];
    }
    q.resize(out);
  };
  scrub(int_iq_);
  scrub(fp_iq_);

  // Scrub the dispatch FIFO the same way (rebuild preserving order).
  if (!dispatch_fifo_.empty()) {
    std::vector<InstrRef>& keep = squash_keep_;
    keep.clear();
    while (!dispatch_fifo_.empty()) {
      const InstrRef r = dispatch_fifo_.pop_front();
      if (!(r.tid == tid && r.seq >= first_seq)) keep.push_back(r);
    }
    for (const InstrRef& r : keep) dispatch_fifo_.push_back(r);
  }
}

void Pipeline::syscall_flush(std::uint32_t /*syscall_tid*/) {
  ++stats_.syscall_flushes;
  for (std::uint32_t tid = 0; tid < num_threads(); ++tid) {
    Thread& t = threads_[tid];
    if (!t.window.empty()) {
      squash_from(tid, t.head_seq, /*replay_correct_path=*/true,
                  obs::PipeTerminal::kSquashSyscall);
    }
    t.wrong_path_mode = false;
    t.fetch_stall_until =
        std::max<std::uint64_t>(t.fetch_stall_until,
                                cycle_ + cfg_.syscall_flush_penalty);
    t.icache_stalled = false;
    t.counters.l1i_outstanding = 0;
  }
}

void Pipeline::block_fetch(std::uint32_t tid, std::uint64_t until_cycle) {
  threads_[tid].fetch_block_until = until_cycle;
}

workload::ThreadProgram Pipeline::swap_program(std::uint32_t tid,
                                               workload::ThreadProgram incoming,
                                               std::uint64_t penalty_cycles) {
  Thread& t = threads_[tid];
  if (!t.window.empty()) {
    squash_from(tid, t.head_seq, /*replay_correct_path=*/false,
                obs::PipeTerminal::kSquashSwap);
  }
  // Pending replay belongs to the outgoing job. Discarding it loses a few
  // already-fetched instructions of that job; the synthetic stream has no
  // architectural state, so "resume" semantics are preserved statistically
  // (a real OS would refetch from the saved PC just the same).
  t.replay.clear();
  t.wrong_path_mode = false;
  t.icache_stalled = false;
  t.delivered_block = ~std::uint64_t{0};
  t.counters = ThreadCounters{};
  ++t.life_epoch;     // lifetime accumulators restarted
  ++t.quantum_epoch;  // quantum accumulators restarted too
  t.fetch_stall_until =
      std::max<std::uint64_t>(t.fetch_stall_until, cycle_ + penalty_cycles);

  workload::ThreadProgram outgoing = std::move(t.program);
  t.program = std::move(incoming);
  return outgoing;
}

// ---------------------------------------------------------------------------
// Pipeview: opt-in per-instruction lifecycle sampling.
//
// An instruction is "opened" at fetch when a sampling window is active:
// it gets a slot in pview_.records holding a pre-filled kPipeview event
// whose `cycle` is the fetch cycle. Stage stamps are recorded as deltas
// from that fetch cycle; step() runs commit→complete→issue→dispatch→fetch,
// so every post-fetch stage happens in a strictly later cycle and a delta
// of 0 unambiguously means "stage never reached". The record is emitted
// and its slot recycled at commit or squash ("closed").
// ---------------------------------------------------------------------------
void Pipeline::set_pipeview(obs::TraceSink* sink,
                            std::vector<PipeviewWindow> windows,
                            std::uint64_t quantum_cycles) {
  pview_ = PipeviewState{};
  // Any in-flight DynInstr::pview indices refer to the previous state's
  // records (or to a copied-from pipeline's); scrub them so stale slots
  // can never alias new ones.
  for (Thread& t : threads_) {
    for (std::size_t i = 0; i < t.window.size(); ++i) t.window[i].pview = -1;
  }
  if (sink == nullptr || windows.empty()) return;
  std::sort(windows.begin(), windows.end(),
            [](const PipeviewWindow& a, const PipeviewWindow& b) {
              return a.start_cycle < b.start_cycle;
            });
  pview_.sink = sink;
  pview_.windows = std::move(windows);
  pview_.quantum_cycles = quantum_cycles;
}

void Pipeline::pview_open(DynInstr& d, std::uint32_t tid) {
  // Advance past exhausted windows.
  while (pview_.wi < pview_.windows.size() &&
         pview_.taken >= pview_.windows[pview_.wi].count) {
    ++pview_.wi;
    pview_.taken = 0;
  }
  if (pview_.wi >= pview_.windows.size()) return;
  if (cycle_ < pview_.windows[pview_.wi].start_cycle) return;
  ++pview_.taken;

  std::int32_t slot;
  if (!pview_.free_slots.empty()) {
    slot = pview_.free_slots.back();
    pview_.free_slots.pop_back();
    pview_.records[static_cast<std::size_t>(slot)] = PipeviewRecord{};
  } else {
    slot = static_cast<std::int32_t>(pview_.records.size());
    pview_.records.emplace_back();
  }
  PipeviewRecord& r = pview_.records[static_cast<std::size_t>(slot)];
  r.open = true;
  obs::TraceEvent& e = r.ev;
  e.kind = obs::EventKind::kPipeview;
  e.cycle = cycle_;
  e.quantum =
      pview_.quantum_cycles != 0 ? cycle_ / pview_.quantum_cycles : 0;
  e.tid = static_cast<std::int32_t>(tid);
  e.value = static_cast<std::int64_t>(d.seq);
  if (d.wrong_path) e.mask |= obs::kPipeWrongPath;
  // Decode/rename happen inside the fixed front-end delay; stamp them from
  // the configuration (decode one cycle after fetch, rename at the end of
  // the front end). With frontend_delay == 0 both collapse into fetch.
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kDecode)] =
      cfg_.frontend_delay >= 1 ? 1u : 0u;
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kRename)] =
      static_cast<std::uint32_t>(cfg_.frontend_delay);
  ++pview_.opened;
  ++pview_.live;
  d.pview = slot;
}

void Pipeline::pview_stamp(DynInstr& d, obs::PipeStage stage) {
  // Stale-index guard: a copied pipeline inherits DynInstr::pview values
  // but drops the pipeview state (copies drop observers), so indices may
  // point at nothing. Reset and bail rather than stamping a ghost.
  const auto idx = static_cast<std::size_t>(d.pview);
  if (pview_.sink == nullptr || idx >= pview_.records.size() ||
      !pview_.records[idx].open) {
    d.pview = -1;
    return;
  }
  obs::TraceEvent& e = pview_.records[idx].ev;
  e.stage_delta[static_cast<std::size_t>(stage)] =
      static_cast<std::uint32_t>(cycle_ - e.cycle);
}

void Pipeline::pview_close(DynInstr& d, obs::PipeTerminal t) {
  const auto idx = static_cast<std::size_t>(d.pview);
  if (pview_.sink == nullptr || idx >= pview_.records.size() ||
      !pview_.records[idx].open) {
    d.pview = -1;
    return;
  }
  PipeviewRecord& r = pview_.records[idx];
  obs::TraceEvent& e = r.ev;
  const auto delta = static_cast<std::uint32_t>(cycle_ - e.cycle);
  // The decode/rename stamps were prefilled optimistically at open; an
  // early squash can retire the instruction before it reached them. A
  // stage past the terminal never happened — zero it.
  for (std::uint32_t& s : e.stage_delta) {
    if (s > delta) s = 0;
  }
  e.stage_delta[static_cast<std::size_t>(obs::PipeStage::kRetire)] = delta;
  e.span = delta;
  e.code = static_cast<std::uint8_t>(t);
  if (d.mispredicted) e.mask |= obs::kPipeMispredicted;
  pview_.sink->record(e);
  r.open = false;
  --pview_.live;
  pview_.free_slots.push_back(static_cast<std::int32_t>(idx));
  d.pview = -1;
}

void Pipeline::reset_quantum_counters() {
  for (Thread& t : threads_) {
    t.counters.reset_quantum();
    ++t.quantum_epoch;
  }
}

std::uint64_t Pipeline::charged_stall_slots() const noexcept {
  std::uint64_t total = machine_stalls_.total();
  for (const Thread& t : threads_) total += t.stalls.total();
  return total;
}

// ---------------------------------------------------------------------------
// Structural audit (src/check + tests).
// ---------------------------------------------------------------------------
Pipeline::ResourceAudit Pipeline::audit_resources() const {
  ResourceAudit a;
  std::uint32_t lsq = 0;
  std::uint32_t int_held = 0;
  std::uint32_t fp_held = 0;
  for (std::uint32_t tid = 0; tid < num_threads(); ++tid) {
    const Thread& t = threads_[tid];
    std::int32_t icount = 0;
    std::int32_t brcount = 0;
    std::int32_t ldcount = 0;
    std::int32_t memcount = 0;
    std::int32_t l1d_out = 0;
    std::int32_t frontend = 0;
    for (std::size_t i = 0; i < t.window.size(); ++i) {
      const DynInstr& d = t.window[i];
      if (d.seq != t.head_seq + i) a.seq_mismatch |= 1u << tid;
      const bool mem = isa::is_mem(d.si.cls);
      if (mem ? d.state != DynInstr::State::kDone
              : (d.state == DynInstr::State::kFrontEnd ||
                 d.state == DynInstr::State::kQueued)) {
        ++icount;
      }
      if (d.state == DynInstr::State::kFrontEnd) ++frontend;
      if (d.state != DynInstr::State::kDone) {
        if (d.si.cls == isa::InstrClass::kBranch) ++brcount;
        if (d.si.cls == isa::InstrClass::kLoad) {
          ++ldcount;
          ++memcount;
        } else if (d.si.cls == isa::InstrClass::kStore) {
          ++memcount;
        }
      }
      if (d.counted_l1d_outstanding) ++l1d_out;
      if (d.has_lsq_entry) ++lsq;
      if (d.has_rename_reg) {
        if (isa::is_fp(d.si.cls)) ++fp_held; else ++int_held;
      }
    }
    const ThreadCounters& c = t.counters;
    if (icount != c.icount || brcount != c.brcount || ldcount != c.ldcount ||
        memcount != c.memcount || l1d_out != c.l1d_outstanding ||
        frontend != t.frontend_count) {
      a.thread_mismatch |= 1u << tid;
    }
  }
  a.lsq_mismatch = lsq != lsq_used_;
  a.int_rename_mismatch = int_held + int_rename_free_ != cfg_.int_rename_regs;
  a.fp_rename_mismatch = fp_held + fp_rename_free_ != cfg_.fp_rename_regs;
  a.iq_overflow =
      int_iq_.size() > cfg_.int_iq_size || fp_iq_.size() > cfg_.fp_iq_size;
  a.ok = a.thread_mismatch == 0 && a.seq_mismatch == 0 && !a.lsq_mismatch &&
         !a.int_rename_mismatch && !a.fp_rename_mismatch && !a.iq_overflow;
  return a;
}

// ---------------------------------------------------------------------------
// Metrics export.
// ---------------------------------------------------------------------------
void export_metrics(const Pipeline& pipe, obs::MetricsRegistry& reg) {
  const PipelineStats& s = pipe.stats();
  reg.set("machine.cycles", s.cycles);
  reg.set("machine.committed", s.committed);
  reg.set("machine.ipc", s.ipc());
  reg.set("machine.fetched", s.fetched);
  reg.set("machine.fetched_wrong_path", s.fetched_wrong_path);
  reg.set("machine.squashed", s.squashed);
  reg.set("machine.branches_resolved", s.branches_resolved);
  reg.set("machine.mispredicts", s.mispredicts);
  reg.set("machine.btb_misses", s.btb_misses);
  reg.set("machine.syscall_flushes", s.syscall_flushes);
  reg.set("machine.fetch_slots_idle", s.fetch_slots_idle);
  reg.set("machine.dt_slots_used", s.dt_slots_used);
  reg.set("machine.charged_stall_slots", pipe.charged_stall_slots());

  char key[96];
  const obs::StallBreakdown& mb = pipe.machine_stall_breakdown();
  for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
    std::snprintf(key, sizeof key, "machine.stalls.%s",
                  std::string(name(static_cast<obs::StallCause>(c))).c_str());
    reg.set(key, mb.slots[c]);
  }

  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const ThreadCounters& c = pipe.counters(tid);
    std::snprintf(key, sizeof key, "threads.%u.committed", tid);
    reg.set(key, c.committed_total);
    std::snprintf(key, sizeof key, "threads.%u.cycles_seen", tid);
    reg.set(key, c.cycles_seen);
    std::snprintf(key, sizeof key, "threads.%u.fetched", tid);
    reg.set(key, c.fetched_total);
    std::snprintf(key, sizeof key, "threads.%u.ipc", tid);
    reg.set(key, c.acc_ipc());
    const obs::StallBreakdown& sb = pipe.stall_breakdown(tid);
    std::snprintf(key, sizeof key, "threads.%u.stall_slots", tid);
    reg.set(key, sb.total());
    for (std::size_t cause = 0; cause < obs::kNumStallCauses; ++cause) {
      std::snprintf(
          key, sizeof key, "threads.%u.stalls.%s", tid,
          std::string(name(static_cast<obs::StallCause>(cause))).c_str());
      reg.set(key, sb.slots[cause]);
    }
  }
}

}  // namespace smt::pipeline
