#include "pipeline/counters.hpp"

namespace smt::pipeline {

QuantumRates rates_for_quantum(const ThreadCounters& c,
                               std::uint64_t quantum_cycles) noexcept {
  QuantumRates r;
  if (quantum_cycles == 0) return r;
  const auto q = static_cast<double>(quantum_cycles);
  r.ipc = static_cast<double>(c.committed_quantum) / q;
  r.cond_branches_per_cycle =
      static_cast<double>(c.cond_branches_quantum) / q;
  r.mispredicts_per_cycle = static_cast<double>(c.mispredicts_quantum) / q;
  r.l1_misses_per_cycle =
      static_cast<double>(c.l1d_misses_quantum + c.l1i_misses_quantum) / q;
  r.lsq_full_per_cycle = static_cast<double>(c.lsq_full_events_quantum) / q;
  return r;
}

bool counters_plausible(const ThreadCounters& c, std::uint64_t quantum_cycles,
                        std::uint32_t commit_width,
                        std::uint32_t rob_per_thread) noexcept {
  const auto rob = static_cast<std::int32_t>(rob_per_thread);
  if (c.icount < 0 || c.icount > rob) return false;
  if (c.brcount < 0 || c.brcount > rob) return false;
  if (c.ldcount < 0 || c.ldcount > rob) return false;
  if (c.memcount < 0 || c.memcount > rob) return false;
  if (c.l1d_outstanding < 0 || c.l1d_outstanding > rob) return false;
  if (c.l1i_outstanding < 0 || c.l1i_outstanding > rob) return false;
  // Commit bandwidth bounds what one thread can retire in a quantum, and
  // every per-quantum event count is at most one per cycle per in-flight
  // instruction — a quantum × ROB ceiling is generous but unbreakable.
  if (c.committed_quantum > quantum_cycles * commit_width) return false;
  const std::uint64_t event_ceiling =
      quantum_cycles * static_cast<std::uint64_t>(commit_width);
  if (c.cond_branches_quantum > event_ceiling) return false;
  if (c.mispredicts_quantum > event_ceiling) return false;
  if (c.l1d_misses_quantum > event_ceiling) return false;
  if (c.l1i_misses_quantum > event_ceiling) return false;
  if (c.lsq_full_events_quantum > event_ceiling) return false;
  if (c.stalls_quantum > quantum_cycles) return false;
  return true;
}

}  // namespace smt::pipeline
