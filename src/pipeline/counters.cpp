#include "pipeline/counters.hpp"

namespace smt::pipeline {

QuantumRates rates_for_quantum(const ThreadCounters& c,
                               std::uint64_t quantum_cycles) noexcept {
  QuantumRates r;
  if (quantum_cycles == 0) return r;
  const auto q = static_cast<double>(quantum_cycles);
  r.ipc = static_cast<double>(c.committed_quantum) / q;
  r.cond_branches_per_cycle =
      static_cast<double>(c.cond_branches_quantum) / q;
  r.mispredicts_per_cycle = static_cast<double>(c.mispredicts_quantum) / q;
  r.l1_misses_per_cycle =
      static_cast<double>(c.l1d_misses_quantum + c.l1i_misses_quantum) / q;
  r.lsq_full_per_cycle = static_cast<double>(c.lsq_full_events_quantum) / q;
  return r;
}

}  // namespace smt::pipeline
