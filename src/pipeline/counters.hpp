// Per-thread hardware status indicators.
//
// These are the counters "updated by circuitry located throughout the
// processor pipeline" (paper §3) that both the fetch policies and the
// detector thread read. Two kinds live here:
//
//  * occupancy counters — how much of each pipeline resource the thread
//    holds *right now* (instructions in the front end/IQ, unresolved
//    branches, loads, outstanding cache misses). These drive the fetch
//    policies.
//  * quantum accumulators — event counts over the current scheduling
//    quantum (committed instructions, conditional branches, mispredicts,
//    L1 misses, LSQ-full events, stalls). These drive the ADTS
//    low-throughput detection and the COND_MEM / COND_BR conditions, and
//    are reset by the detector thread at each quantum boundary.
#pragma once

#include <cstdint>

namespace smt::pipeline {

struct ThreadCounters {
  // ---- occupancy (incremented/decremented as instructions move) -------
  /// Instructions in the decode/rename stages and the instruction queues.
  /// Memory instructions count until they *complete* (they occupy a
  /// load/store-queue entry while outstanding — Tullsen's ICOUNT counts
  /// "the instruction queues", plural, which include the LQ/SQ); other
  /// classes leave at issue.
  std::int32_t icount = 0;
  std::int32_t brcount = 0;       ///< unresolved branches in the pipeline
  std::int32_t ldcount = 0;       ///< loads in the pipeline
  std::int32_t memcount = 0;      ///< loads + stores in the pipeline
  std::int32_t l1d_outstanding = 0;  ///< in-flight loads that missed L1D
  std::int32_t l1i_outstanding = 0;  ///< 1 while fetch is stalled on an I-miss

  // ---- lifetime accumulators ------------------------------------------
  std::uint64_t committed_total = 0;
  std::uint64_t cycles_seen = 0;  ///< cycles this thread has been resident
  std::uint64_t fetched_total = 0;  ///< fetch slots this thread consumed

  // ---- quantum accumulators (reset each scheduling quantum) -----------
  std::uint64_t committed_quantum = 0;
  std::uint64_t cond_branches_quantum = 0;   ///< committed conditional branches
  std::uint64_t mispredicts_quantum = 0;     ///< resolved mispredictions
  std::uint64_t l1d_misses_quantum = 0;
  std::uint64_t l1i_misses_quantum = 0;
  std::uint64_t lsq_full_events_quantum = 0; ///< dispatch blocked on full LSQ
  std::uint64_t stalls_quantum = 0;          ///< cycles this thread couldn't fetch
  std::uint64_t wrong_path_fetched_quantum = 0;

  /// Accumulated IPC since the thread was loaded (ACCIPC policy).
  [[nodiscard]] double acc_ipc() const noexcept {
    return cycles_seen ? static_cast<double>(committed_total) /
                             static_cast<double>(cycles_seen)
                       : 0.0;
  }

  /// Outstanding L1 misses of both kinds (L1MISSCOUNT policy).
  [[nodiscard]] std::int32_t l1_outstanding() const noexcept {
    return l1d_outstanding + l1i_outstanding;
  }

  void reset_quantum() noexcept {
    committed_quantum = 0;
    cond_branches_quantum = 0;
    mispredicts_quantum = 0;
    l1d_misses_quantum = 0;
    l1i_misses_quantum = 0;
    lsq_full_events_quantum = 0;
    stalls_quantum = 0;
    wrong_path_fetched_quantum = 0;
  }
};

/// Snapshot of one thread's quantum accumulators, normalised per cycle —
/// the view the detector thread's heuristics consume (core/heuristics.hpp).
struct QuantumRates {
  double ipc = 0.0;
  double cond_branches_per_cycle = 0.0;
  double mispredicts_per_cycle = 0.0;
  double l1_misses_per_cycle = 0.0;
  double lsq_full_per_cycle = 0.0;
};

[[nodiscard]] QuantumRates rates_for_quantum(const ThreadCounters& c,
                                             std::uint64_t quantum_cycles) noexcept;

/// Physical-plausibility screen over one thread's counter values, as a
/// software reader (the detector thread) would apply it before trusting a
/// sample. Every bound is a hard hardware ceiling — a healthy pipeline can
/// NEVER violate one, so a `false` here proves the sample is corrupt; a
/// `true` only means the lie (if any) was plausible. `commit_width` and
/// `rob_per_thread` come from the machine config; `quantum_cycles` bounds
/// the per-quantum event accumulators.
[[nodiscard]] bool counters_plausible(const ThreadCounters& c,
                                      std::uint64_t quantum_cycles,
                                      std::uint32_t commit_width,
                                      std::uint32_t rob_per_thread) noexcept;

}  // namespace smt::pipeline
