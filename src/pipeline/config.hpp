// Machine configuration for the SMT pipeline.
//
// Defaults mirror the ICOUNT.2.8 configuration of Tullsen et al. (the
// paper configures SimpleSMT "to have resources compatible with previous
// research on SMT [20] for verification purposes"): 8 contexts, 8-wide
// fetch from up to 2 threads per cycle, separate 32-entry INT/FP
// instruction queues, 100 extra renaming registers per file, 6 INT ALUs
// of which 4 are load/store ports, 3 FP units.
#pragma once

#include <cstdint>

#include "branch/predictor.hpp"
#include "isa/instruction.hpp"
#include "mem/hierarchy.hpp"

namespace smt::pipeline {

struct PipelineConfig {
  std::uint32_t fetch_width = 8;    ///< total instructions fetched per cycle
  std::uint32_t fetch_threads = 2;  ///< threads fetched per cycle (ICOUNT.2.8)
  std::uint32_t dispatch_width = 8;
  std::uint32_t issue_width = 8;
  std::uint32_t commit_width = 8;
  /// Extra front-end depth (decode+rename) between fetch and dispatch;
  /// SimpleSMT has "more pipeline stages to reflect the additional
  /// complexity of SMT".
  std::uint32_t frontend_delay = 5;

  std::uint32_t int_iq_size = 24;
  std::uint32_t fp_iq_size = 24;
  std::uint32_t lsq_size = 48;
  /// Per-thread fetch/decode buffer: a thread whose front-end holds this
  /// many not-yet-dispatched instructions cannot fetch. Small by design —
  /// the meaningful backpressure must come from the *shared* structures
  /// (IQs, LSQ, renaming registers), because whose instructions occupy
  /// those is exactly what the fetch policies control. Note the Little's
  /// law consequence: with a frontend_delay of 5, one thread can sustain
  /// at most 12/5 = 2.4 fetched instructions per cycle — an intentional
  /// per-thread ceiling (single-thread IPC of the era's SMT studies), and
  /// what keeps bad fetch decisions from parking more of a clogging
  /// thread's instructions in front of the shared rename stage.
  std::uint32_t fetch_buffer_cap = 12;
  /// Per-thread in-flight bookkeeping bound (ROB). Deliberately deep:
  /// the real machine's limit is renaming registers, not a per-thread
  /// reorder window.
  std::uint32_t rob_per_thread = 256;

  std::uint32_t int_rename_regs = 100;  ///< renaming registers beyond architected
  std::uint32_t fp_rename_regs = 100;

  std::uint32_t int_alus = 6;   ///< integer units (branches resolve here)
  std::uint32_t mem_ports = 4;  ///< of the INT units, how many do loads/stores
  std::uint32_t fp_units = 3;

  std::uint32_t mispredict_penalty = 6;  ///< redirect bubble after resolution
  std::uint32_t btb_miss_penalty = 2;    ///< taken-predicted but target unknown
  std::uint32_t syscall_flush_penalty = 120;  ///< all-thread drain (paper §6)

  // Execution latencies per class.
  std::uint32_t lat_int_alu = 1;
  std::uint32_t lat_int_mul = 3;
  std::uint32_t lat_int_div = 12;
  std::uint32_t lat_fp_add = 2;
  std::uint32_t lat_fp_mul = 4;
  std::uint32_t lat_fp_div = 12;
  std::uint32_t lat_branch = 1;

  mem::HierarchyConfig memory{};
  branch::PredictorConfig predictor{};

  [[nodiscard]] std::uint32_t latency_for(isa::InstrClass c) const noexcept {
    using isa::InstrClass;
    switch (c) {
      case InstrClass::kIntAlu: return lat_int_alu;
      case InstrClass::kIntMul: return lat_int_mul;
      case InstrClass::kIntDiv: return lat_int_div;
      case InstrClass::kFpAdd: return lat_fp_add;
      case InstrClass::kFpMul: return lat_fp_mul;
      case InstrClass::kFpDiv: return lat_fp_div;
      case InstrClass::kBranch: return lat_branch;
      // Loads/stores: latency comes from the cache hierarchy at issue.
      case InstrClass::kLoad: return 1;
      case InstrClass::kStore: return 1;
      case InstrClass::kSyscall: return 1;
    }
    return 1;
  }
};

}  // namespace smt::pipeline
