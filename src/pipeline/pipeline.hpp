// The SMT out-of-order pipeline.
//
// Cycle-level model of an 8-context simultaneous-multithreading processor
// in the style of SimpleSMT / Tullsen's ICOUNT.2.8 machine:
//
//   fetch (2 threads, 8 instrs, cache-block fragmentation)
//     → decode/rename delay queue (frontend_delay stages; stalls on
//       IQ/LSQ/renaming-register exhaustion)
//     → separate INT and FP instruction queues (shared by all threads)
//     → issue (oldest-first over ready instructions, FU constraints)
//     → execute (per-class latency; loads/stores through the real caches)
//     → per-thread in-order commit (shared commit bandwidth)
//
// Branches predict through a real gshare+BTB; a misprediction switches the
// thread's fetch to synthesized wrong-path instructions which occupy fetch
// slots, queues and functional units until the branch resolves and the
// thread squashes — the waste that motivates BRCOUNT-style policies.
//
// The object is value-semantic: copying a Pipeline snapshots the complete
// microarchitectural + workload state, enabling exact quantum re-runs
// (oracle scheduling).
//
// Data layout (DESIGN.md §17): the per-thread window is a structure of
// arrays — parallel per-slot arrays indexed by `seq & slot_mask_` — not an
// array of instruction objects. Dependency wakeup is a bit test against a
// per-thread done bitmask (the dep1/dep2 distance encoding names the
// producer slot directly), issue selection runs ctz-driven over per-queue
// 64-bit ready masks, and the completion ring is a flat power-of-two ring
// with fixed per-slot lanes. The golden stats digests (test_stats_identity)
// pin this layout to the exact cycle behaviour of the original
// object-per-instruction core.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "branch/predictor.hpp"
#include "common/fixed_queue.hpp"
#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include "mem/hierarchy.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"
#include "pipeline/config.hpp"
#include "pipeline/counters.hpp"
#include "policy/fetch_policy.hpp"
#include "prof/phase_profiler.hpp"
#include "workload/thread_program.hpp"

namespace smt::obs {
class TraceSink;
}  // namespace smt::obs

namespace smt::pipeline {

/// One pipeview sampling window: starting at `start_cycle`, the next
/// `count` fetched instructions get full lifecycle records. Windows are
/// consumed in start-cycle order, one at a time.
struct PipeviewWindow {
  std::uint64_t start_cycle = 0;
  std::uint64_t count = 0;
};

/// Aggregate machine statistics (whole-run).
struct PipelineStats {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t fetched = 0;
  std::uint64_t fetched_wrong_path = 0;
  std::uint64_t squashed = 0;
  std::uint64_t branches_resolved = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t btb_misses = 0;
  std::uint64_t syscall_flushes = 0;
  std::uint64_t fetch_slots_idle = 0;  ///< slots no normal thread could use
  std::uint64_t dt_slots_used = 0;     ///< idle slots consumed by the DT

  [[nodiscard]] double ipc() const noexcept {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles)
                  : 0.0;
  }
};

class Pipeline {
 public:
  /// One workload program per hardware context (max 8 normal contexts by
  /// convention; the detector thread does not take a workload slot).
  Pipeline(const PipelineConfig& cfg,
           std::vector<workload::ThreadProgram> programs);

  Pipeline(const Pipeline&) = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(const Pipeline&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Advance one cycle.
  void step();

  /// Advance n cycles.
  void run(std::uint64_t n);

  // --- fetch policy control (what the detector thread manipulates) -----
  void set_policy(policy::FetchPolicy p) noexcept { policy_ = p; }
  [[nodiscard]] policy::FetchPolicy policy() const noexcept { return policy_; }

  /// Thread-control flag: prevent `tid` from fetching until `cycle`
  /// (the "suspend a clogging thread" action of §3).
  void block_fetch(std::uint32_t tid, std::uint64_t until_cycle);

  /// Context switch: replace the workload on context `tid` with
  /// `incoming`, returning the outgoing program (with its position
  /// preserved, so the job scheduler can resume it later). In-flight
  /// instructions of the thread are squashed (discarded, not replayed —
  /// they belong to the outgoing job and will be refetched when it next
  /// runs), the thread's counters reset, and fetch stalls for
  /// `penalty_cycles` to model the OS switch cost.
  [[nodiscard]] workload::ThreadProgram swap_program(
      std::uint32_t tid, workload::ThreadProgram incoming,
      std::uint64_t penalty_cycles);

  // --- detector-thread execution model ---------------------------------
  /// Queue `instrs` of detector-thread work; the DT retires them only
  /// through fetch slots left idle by normal threads (it has the lowest
  /// priority and a private program cache, per §3).
  void add_dt_work(std::uint64_t instrs) noexcept { dt_work_ += instrs; }
  [[nodiscard]] std::uint64_t dt_work_remaining() const noexcept {
    return dt_work_;
  }

  /// Freeze the DT's retirement: while frozen, queued DT work does not
  /// drain even through idle fetch slots (the fault layer uses this to
  /// model an OS that never schedules the lowest-priority context).
  void set_dt_frozen(bool frozen) noexcept { dt_frozen_ = frozen; }
  [[nodiscard]] bool dt_frozen() const noexcept { return dt_frozen_; }

  // --- observation ------------------------------------------------------
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(threads_.size());
  }
  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ThreadCounters& counters(std::uint32_t tid) const {
    return threads_[tid].counters;
  }
  [[nodiscard]] const workload::ThreadProgram& program(std::uint32_t tid) const {
    return threads_[tid].program;
  }
  [[nodiscard]] const mem::Hierarchy& memory() const noexcept { return mem_; }
  [[nodiscard]] const branch::Predictor& predictor() const noexcept {
    return bp_;
  }

  /// Committed instructions (all threads) since construction.
  [[nodiscard]] std::uint64_t committed_total() const noexcept {
    return stats_.committed;
  }

  // --- stall attribution (observability) --------------------------------
  /// Per-thread lost-fetch-slot breakdown, accumulated since construction.
  /// Every fetch slot that no thread used (and the DT did not absorb) is
  /// charged to exactly one cause on exactly one thread — or, when no
  /// thread was blocked (pure fetch fragmentation / fetch_threads limit
  /// with nothing to blame), to the machine-level bucket below.
  [[nodiscard]] const obs::StallBreakdown& stall_breakdown(
      std::uint32_t tid) const {
    return threads_[tid].stalls;
  }
  /// Lost slots not attributable to any specific thread.
  [[nodiscard]] const obs::StallBreakdown& machine_stall_breakdown()
      const noexcept {
    return machine_stalls_;
  }
  /// Total charged stall slots across all threads plus the machine bucket.
  /// Invariant: charged_stall_slots() + stats().dt_slots_used ==
  /// stats().fetch_slots_idle.
  [[nodiscard]] std::uint64_t charged_stall_slots() const noexcept;

  // --- CPI-stack commit-slot accounting (observability) -------------------
  /// Enable top-down commit-slot accounting: from the next step() on,
  /// every commit-width slot of every thread is charged each cycle to
  /// exactly one CpiCause (obs/cpi_stack.hpp). Accounting is pure
  /// observation — it reads pipeline state after the stages ran and
  /// never feeds back, so an accounted run's simulated results are
  /// bit-identical to an unaccounted one (the golden stats digests lock
  /// this). Copying a pipeline drops the accounting state, the same
  /// observer contract as pipeview/profiler. Pass false to detach.
  void set_cpi_accounting(bool on);
  [[nodiscard]] bool cpi_accounting() const noexcept { return cpi_.enabled; }
  /// Per-thread commit-slot stack accumulated since accounting was
  /// enabled. Conservation: total() == commit_width × cpi_cycles_accounted.
  [[nodiscard]] const obs::CpiStack& cpi_stack(std::uint32_t tid) const {
    return cpi_.stacks[tid];
  }
  /// Cycles accounted since set_cpi_accounting(true).
  [[nodiscard]] std::uint64_t cpi_cycles_accounted() const noexcept {
    return cpi_.cycles_accounted;
  }

  // --- counter epochs (observability) ------------------------------------
  /// Bumped whenever `tid`'s quantum accumulators are reset (quantum
  /// boundary or context switch). Lets an external observer detect that
  /// its delta baseline is stale without perturbing the counters itself.
  [[nodiscard]] std::uint64_t quantum_epoch(std::uint32_t tid) const {
    return threads_[tid].quantum_epoch;
  }
  /// Bumped whenever `tid`'s lifetime accumulators are reset (context
  /// switch via swap_program).
  [[nodiscard]] std::uint64_t life_epoch(std::uint32_t tid) const {
    return threads_[tid].life_epoch;
  }

  /// Reset every thread's quantum accumulators (detector thread does this
  /// at each quantum boundary).
  void reset_quantum_counters();

  // --- pipeview lifecycle sampling (observability) ------------------------
  /// Attach per-instruction lifecycle sampling: inside each window,
  /// fetched instructions get a record stamped at every stage they
  /// traverse and emitted into `sink` as one kPipeview event when they
  /// retire (commit or squash). Copying a pipeline drops its sampler —
  /// the same zero-perturbation contract as trace sinks — and sampling
  /// never feeds back into simulated state, so a sampled run's results
  /// are bit-identical to an unsampled one. `quantum_cycles` labels each
  /// event with the quantum its fetch fell into (0 = unlabelled). Pass a
  /// null sink to detach.
  void set_pipeview(obs::TraceSink* sink, std::vector<PipeviewWindow> windows,
                    std::uint64_t quantum_cycles);
  [[nodiscard]] bool pipeview_active() const noexcept {
    return pview_.sink != nullptr;
  }
  /// Lifecycle records opened since set_pipeview (sampled fetches).
  [[nodiscard]] std::uint64_t pipeview_opened() const noexcept {
    return pview_.opened;
  }
  /// Records still in flight (opened but not yet committed/squashed).
  [[nodiscard]] std::uint64_t pipeview_in_flight() const noexcept {
    return pview_.live;
  }

  // --- host-phase profiling (src/prof) ------------------------------------
  /// Per-stage node handles a profiling caller resolves once (children of
  /// its "cycle" phase) and hands to set_profiler.
  struct ProfNodes {
    prof::PhaseProfiler::Node commit = 0;
    prof::PhaseProfiler::Node complete = 0;
    prof::PhaseProfiler::Node issue = 0;
    prof::PhaseProfiler::Node dispatch = 0;
    prof::PhaseProfiler::Node fetch = 0;
  };

  /// Attach per-stage host timers: on cycles where
  /// `(now() & stride_mask) == 0` each of the five stage calls in step()
  /// runs under an RAII phase scope. Copying a pipeline drops the
  /// profiler (oracle snapshots must not time themselves), and host
  /// ticks never feed back into simulated state, so a profiled run stays
  /// bit-identical to an unprofiled one — same contract as pipeview.
  /// Pass a null profiler to detach.
  void set_profiler(prof::PhaseProfiler* p, const ProfNodes& nodes,
                    std::uint64_t stride_mask);
  [[nodiscard]] bool profiler_active() const noexcept {
    return prof_.prof != nullptr;
  }

  // --- structural audit (src/check) --------------------------------------
  /// Result of a full structural resource audit: every occupancy counter
  /// recomputed from the windows and compared with the incrementally
  /// maintained values, plus capacity and program-order checks.
  struct ResourceAudit {
    bool ok = true;
    /// Bit `tid` set => that thread's occupancy counters (icount/brcount/
    /// ldcount/memcount/l1d_outstanding/frontend_count) disagree with a
    /// recount of its window.
    std::uint32_t thread_mismatch = 0;
    /// Bit `tid` set => that thread's window seqs are not contiguous from
    /// head_seq (program order broken).
    std::uint32_t seq_mismatch = 0;
    bool lsq_mismatch = false;         ///< lsq_used_ != Σ held LSQ entries
    bool int_rename_mismatch = false;  ///< held + free != configured regs
    bool fp_rename_mismatch = false;
    bool iq_overflow = false;  ///< an IQ holds more refs than its capacity
  };

  /// Recompute all shared-resource occupancy from first principles
  /// (O(total in-flight instructions) — the invariant checker runs it
  /// every cycle; per-cycle laws elsewhere stay O(threads)).
  [[nodiscard]] ResourceAudit audit_resources() const;

  /// Occupancy invariant check used by tests: true when audit_resources()
  /// finds every counter consistent.
  [[nodiscard]] bool check_counter_invariants() const {
    return audit_resources().ok;
  }

  /// Seq of the next instruction to commit on `tid` (its window head).
  /// Advances by exactly one per retired instruction and is preserved
  /// across squashes and context switches, so Δhead_seq == Δcommitted
  /// between any two cycles with the same life_epoch.
  [[nodiscard]] std::uint64_t head_seq(std::uint32_t tid) const {
    return threads_[tid].head_seq;
  }

  // --- test-only corruption hooks (negative tests for src/check) ---------
  // Each hook silently breaks one bookkeeping law so tests can prove the
  // corresponding invariant-checker pass actually fires. Never called
  // outside tests/test_invariants.cpp.
  void testing_corrupt_icount(std::uint32_t tid, std::int32_t delta) {
    threads_[tid].counters.icount += delta;
  }
  void testing_corrupt_stall_ledger(std::uint64_t slots) {
    machine_stalls_.slots[0] += slots;
  }
  void testing_corrupt_committed(std::uint64_t delta) {
    stats_.committed += delta;
  }
  void testing_corrupt_quantum_counter(std::uint32_t tid, std::uint64_t v) {
    threads_[tid].counters.committed_quantum = v;
  }
  void testing_rewind_quantum_epoch(std::uint32_t tid) {
    --threads_[tid].quantum_epoch;
  }
  void testing_corrupt_head_seq(std::uint32_t tid, std::uint64_t delta) {
    threads_[tid].head_seq += delta;
  }
  bool testing_corrupt_window_seq(std::uint32_t tid) {
    Thread& t = threads_[tid];
    if (t.next_seq == t.head_seq) return false;
    t.seq[slot_of(t.next_seq - 1)] += 7;
    return true;
  }
  /// Silently inflate one CPI-cause bucket so tests can prove the
  /// conservation check (obs::conservation_gap) fires for that class.
  void testing_corrupt_cpi(std::uint32_t tid, std::size_t cause,
                           std::uint64_t delta) {
    cpi_.stacks[tid].slots[cause] += delta;
  }

 private:
  /// Lifecycle of a window slot. kEmpty marks vacated slots (committed or
  /// squashed) so stale completion-ring references can never resurrect a
  /// ghost: a ring entry fires only on uid match AND state == kIssued.
  enum class InstrState : std::uint8_t {
    kEmpty = 0,
    kFrontEnd,
    kQueued,
    kIssued,
    kDone,
  };

  // Per-slot boolean flags, packed (parallel `flags` array).
  static constexpr std::uint8_t kFlagWrongPath = 1u << 0;
  static constexpr std::uint8_t kFlagMispredicted = 1u << 1;
  static constexpr std::uint8_t kFlagPredictedTaken = 1u << 2;
  static constexpr std::uint8_t kFlagRenameReg = 1u << 3;
  static constexpr std::uint8_t kFlagLsqEntry = 1u << 4;
  static constexpr std::uint8_t kFlagL1dOutstanding = 1u << 5;

  /// One hardware context. The in-flight window is a struct-of-arrays
  /// ring: parallel arrays of `window_cap_` slots indexed by
  /// `seq & slot_mask_`; slots with head_seq <= seq < next_seq are live.
  /// `seq` is stored explicitly (it is derivable from the index) because
  /// the structural audit checks program-order contiguity against it and
  /// the corruption hooks need to be able to break it.
  struct Thread {
    workload::ThreadProgram program;
    ThreadCounters counters;

    std::vector<isa::Instruction> si;  ///< decoded instruction per slot
    std::vector<std::uint64_t> seq;
    std::vector<std::uint64_t> uid;  ///< globally unique (stale-ref detection)
    std::vector<std::uint64_t> age;  ///< global dispatch order
    std::vector<std::uint64_t> dispatch_ready;  ///< front-end release cycle
    std::vector<std::uint8_t> state;            ///< InstrState
    std::vector<std::uint8_t> flags;            ///< kFlag* bits
    /// Pipeview record slot, -1 = untracked. May go stale on a copied
    /// pipeline (the copy's sampler is empty); the stamp helpers detect
    /// that and reset it, and set_pipeview scrubs all windows.
    std::vector<std::int32_t> pview;
    /// Bit (seq & slot_mask_) set => that slot's instruction is kDone.
    /// Dependency wakeup is a test against this mask: dep distances name
    /// the producer slot directly, no object chasing. Bits are reset when
    /// a slot is (re)claimed at fetch, so only live slots are meaningful.
    std::vector<std::uint64_t> done_bits;

    std::uint64_t head_seq = 0;  ///< seq of the oldest in-flight instruction
    std::uint64_t next_seq = 0;  ///< seq of the next fetched instruction
    FixedQueue<isa::Instruction> replay;  ///< squashed correct-path instrs
    bool wrong_path_mode = false;
    std::uint64_t wrong_pc = 0;
    std::int32_t frontend_count = 0;  ///< instrs in state kFrontEnd
    std::uint64_t fetch_stall_until = 0;
    std::uint64_t fetch_block_until = 0;  ///< thread-control flag (ADTS)
    bool icache_stalled = false;   ///< fetch_stall caused by an L1I miss
    /// Fetch-buffer bypass: the I-block whose miss just completed can be
    /// fetched once without a new I-cache lookup (critical-word delivery;
    /// also prevents livelock when contending threads evict the line
    /// before the stalled thread retries).
    std::uint64_t delivered_block = ~std::uint64_t{0};
    /// Lost-fetch-slot attribution (pipeline lifetime; survives context
    /// switches so slot conservation holds over the whole run).
    obs::StallBreakdown stalls;
    std::uint64_t quantum_epoch = 0;  ///< quantum-counter reset generation
    std::uint64_t life_epoch = 0;     ///< lifetime-counter reset generation
    /// Per-window-slot waiter chains: head of the list of IQ entry ids
    /// (int queue 0–63, fp queue 64–127, kNoWaiter = none) blocked on
    /// this slot's instruction. do_complete pops the chain when the
    /// producer's done bit is set. Links live in Pipeline::waiter_next_.
    std::vector<std::uint8_t> waiter_head;
  };

  /// Issue-queue entry. `age` drives the oldest-first merge; `is_mem`
  /// and the producer seqs (`pr1`/`pr2`, -1 = no in-flight producer
  /// possible) are cached at dispatch so readiness checks read only this
  /// entry plus the owning thread's head_seq and done bitmask — no
  /// instruction-array access. Entries are scrubbed at squash time, so
  /// they are never stale.
  struct IqRef {
    std::uint64_t age = 0;
    std::int64_t pr1 = -1;  ///< dep1 producer seq, -1 = architected
    std::int64_t pr2 = -1;
    std::uint32_t tid = 0;
    std::uint32_t slot = 0;
    bool is_mem = false;
  };

  /// Fixed-slot issue queue (<= 64 entries, enforced at construction).
  /// Entries never move: occupancy, readiness and mem-op membership are
  /// bitmasks over slot positions, so issue selection iterates only the
  /// ready set and vacating a slot is two mask ANDs — there is no
  /// per-cycle compaction or rescan.
  struct IssueQueue {
    std::array<IqRef, 64> slots{};
    std::uint64_t occ = 0;    ///< slot holds a live kQueued entry
    std::uint64_t ready = 0;  ///< subset of occ: all producers complete
    std::uint64_t mem = 0;    ///< subset of occ: loads/stores (int queue)
  };

  /// Are both producers of IQ entry `r` architecturally complete?
  /// Exactly the dep-distance rule: a producer seq below head_seq has
  /// committed (architected value); otherwise its done bit decides.
  [[nodiscard]] bool iq_ready(const IqRef& r) const {
    const Thread& t = threads_[r.tid];
    const auto head = static_cast<std::int64_t>(t.head_seq);
    if (r.pr1 >= head &&
        !done_bit(t, slot_of(static_cast<std::uint64_t>(r.pr1)))) {
      return false;
    }
    if (r.pr2 >= head &&
        !done_bit(t, slot_of(static_cast<std::uint64_t>(r.pr2)))) {
      return false;
    }
    return true;
  }

  /// Dispatch-FIFO entry (scrubbed at squash time like IQ refs).
  struct FifoRef {
    std::uint32_t tid = 0;
    std::uint32_t slot = 0;
  };

  /// Completion-ring entry. uid (never reused) plus the kIssued state
  /// requirement make stale entries — squashed instructions whose slot
  /// was vacated or reclaimed — inert.
  struct DoneRef {
    std::uint64_t uid = 0;
    std::uint32_t tid = 0;
    std::uint32_t slot = 0;
  };

  [[nodiscard]] std::uint32_t slot_of(std::uint64_t seq) const noexcept {
    return static_cast<std::uint32_t>(seq) & slot_mask_;
  }
  [[nodiscard]] std::uint64_t win_size(const Thread& t) const noexcept {
    return t.next_seq - t.head_seq;
  }
  [[nodiscard]] bool win_empty(const Thread& t) const noexcept {
    return t.next_seq == t.head_seq;
  }
  [[nodiscard]] bool win_full(const Thread& t) const noexcept {
    return win_size(t) >= cfg_.rob_per_thread;
  }
  static void set_done_bit(Thread& t, std::uint32_t slot) noexcept {
    t.done_bits[slot >> 6] |= 1ull << (slot & 63);
  }
  static void clear_done_bit(Thread& t, std::uint32_t slot) noexcept {
    t.done_bits[slot >> 6] &= ~(1ull << (slot & 63));
  }
  [[nodiscard]] static bool done_bit(const Thread& t,
                                     std::uint32_t slot) noexcept {
    return (t.done_bits[slot >> 6] >> (slot & 63)) & 1u;
  }

  // Stage implementations, called in reverse pipeline order each cycle.
  void do_commit();
  void do_complete();
  void do_issue();
  void do_dispatch();
  void do_fetch();

  /// Classify IQ entry `id` (int queue 0–63, fp queue 64–127) whose ref
  /// is `r`: set its ready bit, or enlist it on the waiter chain of its
  /// first outstanding producer so do_complete wakes it later.
  void place_entry(std::uint32_t id, const IqRef& r);

  /// Squash all instructions of `tid` with seq >= `first_seq`.
  /// When `replay_correct_path` is set, squashed correct-path instructions
  /// are queued for refetch *ahead of* any instructions already waiting in
  /// the replay queue (they are older in program order); wrong-path
  /// instructions are always discarded. `cause` labels the terminal of
  /// any pipeview-tracked victim.
  void squash_from(std::uint32_t tid, std::uint64_t first_seq,
                   bool replay_correct_path, obs::PipeTerminal cause);

  /// Full-machine drain for a system call (paper §6's conservative
  /// assumption: "all threads have to flush out of the pipeline").
  void syscall_flush(std::uint32_t syscall_tid);

  void release_instr_resources(std::uint32_t tid, std::uint32_t slot,
                               bool completed_ok);

  [[nodiscard]] std::uint32_t load_latency(std::uint32_t tid, Thread& t,
                                           std::uint32_t slot);

  void completion_push(std::uint64_t done_cycle, const DoneRef& ref);
  void completion_grow();

  PipelineConfig cfg_;
  policy::FetchPolicy policy_ = policy::FetchPolicy::kIcount;

  std::uint32_t window_cap_ = 0;  ///< power of two >= cfg.rob_per_thread
  std::uint32_t slot_mask_ = 0;   ///< window_cap_ - 1

  std::vector<Thread> threads_;
  mem::Hierarchy mem_;
  branch::Predictor bp_;

  // Shared structures.
  /// Global dispatch FIFO: instructions enter in fetch order and the
  /// rename/dispatch stage drains it in order with head-of-line blocking
  /// on structural hazards (SimpleScalar-style single fetch queue). This
  /// is what transmits fetch priority to the shared queues: a clogging
  /// thread's instructions at the FIFO head stall everyone behind them —
  /// unless the fetch policy stopped fetching that thread first.
  FixedQueue<FifoRef> dispatch_fifo_;
  /// Capacity <= 64 per queue (enforced at construction) so occupancy,
  /// readiness and mem-op membership are single 64-bit masks.
  IssueQueue int_iq_;
  IssueQueue fp_iq_;
  /// Waiter-chain links, indexed by IQ entry id (int 0–63, fp 64–127);
  /// heads live in each thread's per-window-slot waiter_head array.
  static constexpr std::uint8_t kNoWaiter = 0xFF;
  std::array<std::uint8_t, 128> waiter_next_{};
  std::uint32_t int_rename_free_ = 0;
  std::uint32_t fp_rename_free_ = 0;
  std::uint32_t lsq_used_ = 0;  ///< shared load/store queue occupancy

  /// Completion ring: flat power-of-two ring, `completion_lane_` entry
  /// slots per cycle lane, indexed by done_cycle & (kCompletionRing-1).
  /// Lane overflow doubles the lane width (rare; order-preserving).
  static constexpr std::uint32_t kCompletionRing = 256;
  std::vector<DoneRef> completion_;          ///< kCompletionRing × lane
  std::vector<std::uint32_t> completion_n_;  ///< per-lane fill count
  std::uint32_t completion_lane_ = 0;

  std::uint64_t cycle_ = 0;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_age_ = 1;
  std::uint64_t dt_work_ = 0;
  bool dt_frozen_ = false;

  PipelineStats stats_;
  obs::StallBreakdown machine_stalls_;  ///< lost slots with no thread to blame

  // --- pipeview sampler ---------------------------------------------------
  /// One tracked instruction's prefilled kPipeview event; slots are
  /// recycled through a free list, so memory is bounded by the maximum
  /// number of simultaneously in-flight tracked instructions.
  struct PipeviewRecord {
    obs::TraceEvent ev;
    bool open = false;
  };
  /// All sampler state, isolated so that copying a Pipeline can drop it
  /// wholesale (copy constructs/assigns to the empty state) while the
  /// pipeline itself keeps its defaulted copy operations.
  struct PipeviewState {
    obs::TraceSink* sink = nullptr;
    std::vector<PipeviewWindow> windows;  ///< sorted by start_cycle
    std::size_t wi = 0;                   ///< current window
    std::uint64_t taken = 0;              ///< samples taken in window wi
    std::uint64_t quantum_cycles = 0;
    std::uint64_t opened = 0;  ///< lifetime records opened
    std::uint64_t live = 0;    ///< records currently in flight
    std::vector<PipeviewRecord> records;
    std::vector<std::int32_t> free_slots;

    PipeviewState() = default;
    PipeviewState(const PipeviewState&) {}  // copies drop the sampler
    PipeviewState& operator=(const PipeviewState&) {
      *this = PipeviewState{};
      return *this;
    }
    PipeviewState(PipeviewState&&) = default;
    PipeviewState& operator=(PipeviewState&&) = default;
    ~PipeviewState() = default;
  };
  PipeviewState pview_;

  /// All profiler attach state, isolated like PipeviewState so copies
  /// drop it wholesale while the pipeline keeps defaulted copy ops.
  struct ProfState {
    prof::PhaseProfiler* prof = nullptr;
    std::uint64_t mask = 0;  ///< stride - 1 (stride is a power of two)
    ProfNodes nodes;

    ProfState() = default;
    ProfState(const ProfState&) {}  // copies drop the profiler
    ProfState& operator=(const ProfState&) {
      *this = ProfState{};
      return *this;
    }
    ProfState(ProfState&&) = default;
    ProfState& operator=(ProfState&&) = default;
    ~ProfState() = default;
  };
  ProfState prof_;

  /// All CPI-stack accounting state, isolated like PipeviewState so
  /// copies drop it wholesale (observer contract: an oracle snapshot
  /// must not account) while the pipeline keeps defaulted copy ops.
  /// The per-cycle scratch (fetch_cause, issued_tids) is written by the
  /// stages under an `enabled` guard and consumed by account_cpi() at
  /// the end of the same step().
  struct CpiState {
    bool enabled = false;
    std::uint64_t cycles_accounted = 0;
    /// Threads that issued an instruction this cycle (per-cycle scratch;
    /// holder attribution for lost issue arbitration).
    std::uint64_t issued_tids = 0;
    std::vector<obs::CpiStack> stacks;          ///< per-thread accounts
    std::vector<std::uint64_t> prev_head_seq;   ///< Δ == committed/cycle
    /// Per-cycle fetch outcome: 0 = fetched (or no cause recorded),
    /// else StallCause + 1 — the cause that kept fetch from feeding
    /// this thread's empty window.
    std::vector<std::uint8_t> fetch_cause;
    /// Context-switch penalty window: a fetch_stall charged while
    /// cycle < swap_stall_until is switch overhead, not squash recovery.
    std::vector<std::uint64_t> swap_stall_until;
    /// Sticky charge for front-end refill cycles: the (cause, rob-empty
    /// sub-cause) that last emptied the window, so the frontend_delay
    /// refill after e.g. an I-cache drain keeps that attribution.
    std::vector<std::uint8_t> refill_cause;  ///< CpiCause
    std::vector<std::int8_t> refill_sub;     ///< StallCause, -1 = none

    CpiState() = default;
    CpiState(const CpiState&) {}  // copies drop the accounting
    CpiState& operator=(const CpiState&) {
      *this = CpiState{};
      return *this;
    }
    CpiState(CpiState&&) = default;
    CpiState& operator=(CpiState&&) = default;
    ~CpiState() = default;
  };
  CpiState cpi_;

  /// End-of-step() accounting pass: charge each thread's commit_width
  /// slots for this cycle. O(threads), no heap, reads the post-stage
  /// window heads only.
  void account_cpi();
  /// Charge `lost` kFuContention slots on `tid`, distributing holder
  /// blame round-robin over `holders` (a tid bitmask; self is excluded
  /// unless it is the only holder).
  void charge_cpi_contention(std::uint32_t tid, std::uint64_t lost,
                             std::uint64_t holders);

  /// step() body with each stage under a phase scope; split out so the
  /// common unprofiled path stays branch-free beyond one predictable
  /// test per cycle.
  void step_stages_profiled();

  /// Open a lifecycle record for the instruction in `slot` if the active
  /// window wants one (called at fetch; cheap `sink != nullptr` guard at
  /// the call site).
  void pview_open(std::uint32_t tid, std::uint32_t slot);
  /// Stamp the record at `stage` with the current cycle; recovers
  /// (resets the slot's pview index) when it is stale from a copy.
  void pview_stamp(Thread& t, std::uint32_t slot, obs::PipeStage stage);
  /// Finish the record with terminal `term` and emit the kPipeview event.
  void pview_close(Thread& t, std::uint32_t slot, obs::PipeTerminal term);

  // --- reused scratch buffers (hot-path allocation avoidance) -----------
  // These hold no state between cycles — each user clears its buffer
  // before filling it — so copying them with the pipeline is harmless;
  // they exist only to keep the per-cycle loop free of heap allocation.
  /// Fetch candidate, sorted by the active policy's priority key.
  struct FetchCand {
    std::uint32_t tid;
    double key;
    std::uint32_t tie;
  };
  std::vector<FetchCand> fetch_cands_;        ///< do_fetch candidate list
  std::vector<isa::Instruction> squash_replay_;   ///< squash_from collect
  std::vector<isa::Instruction> squash_backlog_;  ///< replay-queue rebuild
  std::vector<FifoRef> squash_keep_;          ///< dispatch-FIFO rebuild
};

/// Export the pipeline's whole-run statistics and per-thread stall
/// breakdowns into `reg` under "machine." / "threads.<tid>." prefixes.
void export_metrics(const Pipeline& pipe, obs::MetricsRegistry& reg);

}  // namespace smt::pipeline
