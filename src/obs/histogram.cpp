#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

namespace smt::obs {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi > lo && bins > 0)
                 ? (hi - lo) / static_cast<double>(bins)
                 : 1.0),
      counts_((hi > lo && bins > 0) ? bins : 1, 0) {}

void Histogram::add(double v) { add(v, 1); }

void Histogram::add(double v, std::uint64_t weight) {
  if (std::isnan(v) || weight == 0) return;
  total_ += weight;
  sum_ += v * static_cast<double>(weight);
  if (!any_ || v < min_) min_ = v;
  if (!any_ || v > max_) max_ = v;
  any_ = true;
  if (v < lo_) {
    under_ += weight;
    return;
  }
  const double rel = (v - lo_) / width_;
  if (rel >= static_cast<double>(counts_.size())) {
    over_ += weight;
    return;
  }
  counts_[static_cast<std::size_t>(rel)] += weight;
}

double Histogram::min() const noexcept {
  return any_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const noexcept {
  return any_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::mean() const noexcept {
  return total_ != 0 ? sum_ / static_cast<double>(total_)
                     : std::numeric_limits<double>::quiet_NaN();
}

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

void row(std::ostream& os, const std::string& range, std::uint64_t count,
         std::uint64_t peak, std::size_t width) {
  const std::size_t bar =
      peak != 0 ? static_cast<std::size_t>(
                      (static_cast<double>(count) / static_cast<double>(peak)) *
                      static_cast<double>(width))
                : 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "  %-18s %10llu ", range.c_str(),
                static_cast<unsigned long long>(count));
  os << buf << std::string(count != 0 && bar == 0 ? 1 : bar, '#') << '\n';
}

}  // namespace

void Histogram::render(std::ostream& os, const std::string& label,
                       std::size_t width) const {
  os << label << " (" << total_ << " samples)\n";
  if (total_ == 0) {
    os << "  (empty)\n";
    return;
  }
  std::uint64_t peak = std::max(under_, over_);
  for (const std::uint64_t c : counts_) peak = std::max(peak, c);
  char range[48];
  if (under_ != 0) {
    std::snprintf(range, sizeof range, "< %s", num(lo_).c_str());
    row(os, range, under_, peak, width);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    std::snprintf(range, sizeof range, "[%s, %s)", num(bin_lo(i)).c_str(),
                  num(bin_hi(i)).c_str());
    row(os, range, counts_[i], peak, width);
  }
  if (over_ != 0) {
    std::snprintf(range, sizeof range, ">= %s",
                  num(bin_lo(counts_.size())).c_str());
    row(os, range, over_, peak, width);
  }
  os << "  mean " << num(mean()) << "  min " << num(min()) << "  max "
     << num(max()) << '\n';
}

}  // namespace smt::obs
