// Offline trace reader: the inverse of TraceSink's CSV/JSONL writers,
// consumed by the smttrace analysis tool and by tests.
//
// Both on-disk formats decode into one ReadEvent shape. Fields whose
// serialized form is a decoded *name* in CSV but a numeric code in JSONL
// (policies, the kind-specific code column, the mask column) are kept as
// the literal strings that were written; analysis that needs identity
// (grouping, diffing) compares those strings, and pretty-printers map
// numeric strings back through a decoder when they want names. The
// Chrome backend is a write-only export for Perfetto and is rejected
// here with a pointed error.
//
// The build_info header (CSV "# {...}" comment line / first JSONL
// object) surfaces as a flat key→value map so tools can report and
// compare run provenance without knowing the field list.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace_event.hpp"

namespace smt::obs {

/// Malformed or unsupported trace input (bad JSON, unknown event kind,
/// short CSV row, chrome-format input). what() carries the line number.
struct TraceReadError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One decoded trace line, format-independent.
struct ReadEvent {
  EventKind kind = EventKind::kQuantum;
  std::uint64_t quantum = 0;
  std::uint64_t cycle = 0;
  std::int64_t tid = -1;
  std::uint64_t span = 0;
  std::string policy_before;  ///< name (CSV) or numeric code (JSONL)
  std::string policy_after;
  std::string code;  ///< kind-specific column, as serialized
  std::string mask;  ///< decoded flag names (CSV) or numeric (JSONL)
  std::uint64_t value = 0;
  double ipc = 0.0;  ///< NaN when the writer emitted null
  double fetch_share = 0.0;
  double mispredict_rate = 0.0;
  double l1d_miss_rate = 0.0;
  double l1i_miss_rate = 0.0;
  std::array<std::uint64_t, kNumStallCauses> stalls{};
  /// kPipeview only: stage deltas by PipeStage index (0 = unreached).
  std::array<std::uint64_t, kNumPipeStages> stages{};
  /// kProf only: leaf phase name ("fetch", "detector", ...).
  std::string label;
  /// kCpiStack only: commit slots charged by CpiCause index.
  std::array<std::uint64_t, kNumCpiCauses> cpi{};
  /// kCpiStack only: kFuContention slots by holder tid.
  std::array<std::uint64_t, kCpiMaxThreads> contend{};
};

struct ReadTrace {
  /// build_info provenance; empty when the trace predates the header.
  std::map<std::string, std::string> build;
  std::vector<ReadEvent> events;
};

[[nodiscard]] std::optional<EventKind> parse_event_kind(
    std::string_view s) noexcept;

/// Read a whole trace, auto-detecting CSV vs JSONL from the first line.
/// Throws TraceReadError on malformed input.
[[nodiscard]] ReadTrace read_trace(std::istream& is);

}  // namespace smt::obs
