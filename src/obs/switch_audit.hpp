// Switch-audit provenance: one record per *applied* ADTS policy switch.
//
// The paper's Figure 7 argument is a switch-quality story — every switch
// is classified benign or malignant one quantum after it lands. That
// classifier used to live twice (inside the detector and re-derived by
// the Fig. 7 bench); this header is now the single definition shared by
// the runtime audit, the benches and the tests:
//
//   benign    — IPC over the quantum after the switch exceeds the IPC
//               that triggered the decision (strict; ties are malignant,
//               matching the paper's "did the switch help" reading)
//   malignant — it did not
//   neutral   — the switch was applied but the run ended before the
//               scoring quantum completed (never counted in rates)
//
// A SwitchAudit additionally carries the full decision context: the
// heuristic, the machine counter rates and condition evaluations that
// drove the decision, the guard's stance, and the decided→applied cycle
// pair (non-zero span = the decision waited for DT work to drain).
//
// obs sits below core/, so heuristic and policy identities are stored as
// raw codes here and named by the caller's decoder when serialized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"

namespace smt::obs {

/// Post-hoc quality label of an applied switch.
enum class SwitchLabel : std::uint8_t {
  kNeutral = 0,    ///< applied, never scored (run ended first)
  kBenign = 1,     ///< IPC rose over the following quantum
  kMalignant = 2,  ///< IPC held or fell over the following quantum
};

[[nodiscard]] constexpr std::string_view name(SwitchLabel l) noexcept {
  switch (l) {
    case SwitchLabel::kNeutral: return "neutral";
    case SwitchLabel::kBenign: return "benign";
    case SwitchLabel::kMalignant: return "malignant";
  }
  return "unknown";
}

/// The one benign/malignant definition (ties are malignant).
[[nodiscard]] constexpr SwitchLabel classify_switch(double ipc_before,
                                                    double ipc_after) noexcept {
  return ipc_after > ipc_before ? SwitchLabel::kBenign
                                : SwitchLabel::kMalignant;
}

/// Probability of a benign switch given scored counts — the quantity
/// plotted in Figure 7c/7d. Zero when nothing was scored.
[[nodiscard]] constexpr double benign_probability(
    std::uint64_t benign, std::uint64_t malignant) noexcept {
  const std::uint64_t scored = benign + malignant;
  return scored != 0 ? static_cast<double>(benign) /
                           static_cast<double>(scored)
                     : 0.0;
}

/// kSwitchAudit payload bits (TraceEvent::mask).
enum AuditFlag : std::uint8_t {
  kAuditReversed = 1,  ///< decision reversed an earlier switch (history)
  kAuditStale = 2,     ///< applied after its scoring boundary had passed
  kAuditInstant = 4,   ///< applied at the boundary (no DT drain wait)
  kAuditCondMem = 8,   ///< memory condition held at decision time
  kAuditCondBr = 16,   ///< branch condition held at decision time
};

[[nodiscard]] std::string audit_flag_names(std::uint8_t mask);

/// Everything known about one applied policy switch.
struct SwitchAudit {
  std::uint8_t heuristic = 0;      ///< core::HeuristicType code
  std::uint8_t policy_before = 0;  ///< policy::FetchPolicy code
  std::uint8_t policy_after = 0;   ///< policy::FetchPolicy code
  std::uint8_t flags = 0;          ///< AuditFlag bits
  std::uint64_t quantum = 0;       ///< quantum index of the decision
  std::uint64_t decided_cycle = 0;
  std::uint64_t applied_cycle = 0;
  std::uint64_t scored_cycle = 0;  ///< 0 while unscored

  // Decision inputs: the quantum rates the heuristic saw (machine-pooled,
  // per cycle) and the condition magnitude it compared.
  double ipc_before = 0.0;  ///< IPC_last that triggered the decision
  double ipc_prev = 0.0;    ///< IPC of the quantum before that
  double br_rate = 0.0;     ///< conditional branches per cycle
  double mispredict_rate = 0.0;
  double l1_miss_rate = 0.0;
  double lsq_full_rate = 0.0;
  double cond_value = 0.0;  ///< heuristic condition magnitude

  // Outcome, filled at the end of the following quantum.
  double ipc_after = 0.0;  ///< meaningless until scored
  SwitchLabel label = SwitchLabel::kNeutral;
  bool scored = false;
};

/// Serialize one audit record into the flat trace schema (see the field
/// table in trace_event.hpp).
[[nodiscard]] TraceEvent to_trace_event(const SwitchAudit& a);

/// Append-only audit trail with a hard cap: once full, further switches
/// are counted in dropped() but not recorded, so a pathological run
/// cannot grow memory without bound.
class SwitchAuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit SwitchAuditLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Record an applied switch; returns its index, or npos when the log
  /// is full (the switch is then only counted in dropped()).
  std::size_t push(const SwitchAudit& a) {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return npos;
    }
    entries_.push_back(a);
    return entries_.size() - 1;
  }

  /// Score entry `idx` (no-op for npos). Sets label, outcome IPC and the
  /// scoring cycle; the classifier is the shared one above.
  void score(std::size_t idx, double ipc_after, std::uint64_t cycle) {
    if (idx == npos || idx >= entries_.size()) return;
    SwitchAudit& a = entries_[idx];
    a.ipc_after = ipc_after;
    a.scored_cycle = cycle;
    a.label = classify_switch(a.ipc_before, ipc_after);
    a.scored = true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::vector<SwitchAudit>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const SwitchAudit& operator[](std::size_t i) const {
    return entries_[i];
  }

  [[nodiscard]] std::uint64_t count(SwitchLabel l) const noexcept {
    std::uint64_t n = 0;
    for (const SwitchAudit& a : entries_) n += (a.label == l) ? 1 : 0;
    return n;
  }

  void clear() {
    entries_.clear();
    dropped_ = 0;
  }

  /// Export audit.* aggregates: totals by label, overall benign rate and
  /// per-heuristic scored counts / benign rate. `heuristic_name` decodes
  /// heuristic codes (nullptr → numeric keys).
  void export_metrics(MetricsRegistry& reg, const std::string& prefix,
                      std::string_view (*heuristic_name)(std::uint8_t)) const;

 private:
  std::vector<SwitchAudit> entries_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

}  // namespace smt::obs
