// Stall-cause taxonomy for fetch-slot attribution.
//
// The paper's evidence is built from *where IPC is lost*: a thread that
// fetches fewer instructions than its slot share is being held back by
// something, and the fetch policies exist precisely to move that loss
// onto the threads that can afford it. StallBreakdown gives every lost
// fetch slot exactly one cause, so the per-quantum telemetry can say
// not just "thread 3 stalled 40% of the time" but *why* — and so the
// accounting is conservative: every cycle,
//
//   charged stall slots + fetched instructions + DT slots == fetch width.
//
// tests/test_stall_attribution.cpp enforces the conservation law per
// cycle and over whole runs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace smt::obs {

/// Why a fetch slot went unused. One cause per lost slot.
enum class StallCause : std::uint8_t {
  /// Thread was fetch-ready but the active policy ranked it below the
  /// threads that got the slots (or the 2-thread fetch limit cut it off).
  /// This is the ICOUNT-style throttle working as designed.
  kPolicyThrottle,
  /// Fetch is stalled waiting on an L1I miss (includes the cycle the
  /// miss is detected, which spends the thread's fetch port).
  kIcacheMiss,
  /// The thread's reorder window is full: commit is the bottleneck.
  kRobFull,
  /// The front-end buffer is full: dispatch is backed up on IQ / LSQ /
  /// renaming-register exhaustion behind this thread.
  kDispatchBackpressure,
  /// Recovery stall after a squash: mispredict penalty, BTB-miss bubble
  /// or syscall-flush drain.
  kSquashRecovery,
  /// The thread-control flag is blocking fetch: ADTS clogging-thread
  /// suspension, a policy-switch penalty window, or a fault-injected
  /// fetch blackout.
  kFetchBlackout,
  /// Machine-level slack nobody could use: cache-block fragmentation or
  /// a predicted-taken branch ended every eligible thread's fetch group
  /// while slots remained. Charged to the machine, not a thread.
  kFragmentation,
};

inline constexpr std::size_t kNumStallCauses = 7;

[[nodiscard]] constexpr std::string_view name(StallCause c) noexcept {
  switch (c) {
    case StallCause::kPolicyThrottle: return "policy_throttle";
    case StallCause::kIcacheMiss: return "icache_miss";
    case StallCause::kRobFull: return "rob_full";
    case StallCause::kDispatchBackpressure: return "dispatch_backpressure";
    case StallCause::kSquashRecovery: return "squash_recovery";
    case StallCause::kFetchBlackout: return "fetch_blackout";
    case StallCause::kFragmentation: return "fragmentation";
  }
  return "unknown";
}

/// Lost-fetch-slot counters, one bucket per cause.
struct StallBreakdown {
  std::array<std::uint64_t, kNumStallCauses> slots{};

  void charge(StallCause c, std::uint64_t n = 1) noexcept {
    slots[static_cast<std::size_t>(c)] += n;
  }
  [[nodiscard]] std::uint64_t operator[](StallCause c) const noexcept {
    return slots[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t s : slots) t += s;
    return t;
  }
};

}  // namespace smt::obs
