#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace smt::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void MetricsRegistry::put(std::string_view name, Value v) {
  for (auto& e : entries_) {
    if (e.first == name) {
      e.second = std::move(v);
      return;
    }
  }
  entries_.emplace_back(std::string(name), std::move(v));
}

bool MetricsRegistry::erase(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::optional<MetricsRegistry::Value> MetricsRegistry::find(
    std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.first == name) return e.second;
  }
  return std::nullopt;
}

namespace {

void write_value(std::ostream& os, const MetricsRegistry::Value& v) {
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    os << *u;
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    if (!std::isfinite(*d)) {
      os << "null";  // NaN / inf are not JSON; absent beats a fake zero
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      os << buf;
    }
  } else if (const auto* b = std::get_if<bool>(&v)) {
    os << (*b ? "true" : "false");
  } else {
    os << '"' << json_escape(std::get<std::string>(v)) << '"';
  }
}

using Entries = std::vector<std::pair<std::string, MetricsRegistry::Value>>;

void indent_to(std::ostream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

/// Write entries [lo, hi) — all sharing the first `prefix` characters of
/// their names — as one JSON object, recursing on dotted segments.
void write_group(std::ostream& os, const Entries& es, std::size_t lo,
                 std::size_t hi, std::size_t prefix, int depth) {
  os << "{\n";
  std::size_t i = lo;
  bool first = true;
  while (i < hi) {
    const std::string& full = es[i].first;
    const std::string_view rest =
        std::string_view(full).substr(std::min(prefix, full.size()));
    const std::size_t dot = rest.find('.');
    if (!first) os << ",\n";
    first = false;
    indent_to(os, depth + 1);
    if (dot == std::string_view::npos) {
      os << '"' << json_escape(rest) << "\":";
      write_value(os, es[i].second);
      ++i;
    } else {
      const std::string_view seg = rest.substr(0, dot);
      // Extend over every entry sharing this segment (sorted ⇒ contiguous).
      std::size_t j = i;
      while (j < hi) {
        const std::string& other = es[j].first;
        const std::string_view orest =
            std::string_view(other).substr(std::min(prefix, other.size()));
        if (orest.size() <= seg.size() ||
            orest.substr(0, seg.size()) != seg || orest[seg.size()] != '.') {
          break;
        }
        ++j;
      }
      os << '"' << json_escape(seg) << "\":";
      write_group(os, es, i, j, prefix + seg.size() + 1, depth + 1);
      i = j;
    }
  }
  os << '\n';
  indent_to(os, depth);
  os << '}';
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  Entries sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  write_group(os, sorted, 0, sorted.size(), 0, 0);
  os << '\n';
}

}  // namespace smt::obs
