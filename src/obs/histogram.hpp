// Fixed-bin histogram for offline trace analysis (smttrace hist).
//
// Uniform bins over [lo, hi) plus explicit underflow/overflow buckets so
// no sample is ever silently discarded; the bin layout is fixed at
// construction, which keeps accumulation allocation-free and renders
// deterministically. Exact min/max/mean run alongside the bins so the
// summary line does not suffer binning error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace smt::obs {

class Histogram {
 public:
  /// `bins` uniform buckets spanning [lo, hi); hi must exceed lo and
  /// bins must be non-zero (both are clamped to a 1-bin [lo, lo+1)
  /// histogram rather than asserting, so tooling never crashes on a
  /// degenerate range).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v);
  void add(double v, std::uint64_t weight);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i);
  }
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept {
    return lo_ + width_ * static_cast<double>(i + 1);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] double min() const noexcept;   ///< NaN when empty
  [[nodiscard]] double max() const noexcept;   ///< NaN when empty
  [[nodiscard]] double mean() const noexcept;  ///< NaN when empty

  /// ASCII rendering: one row per non-empty bucket (including the
  /// under/overflow rows), bars scaled to `width` characters, followed
  /// by a count/mean/min/max summary line. `label` names the quantity.
  void render(std::ostream& os, const std::string& label,
              std::size_t width = 40) const;

 private:
  double lo_;
  double width_;  ///< per-bin width
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool any_ = false;
};

}  // namespace smt::obs
