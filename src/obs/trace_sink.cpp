#include "obs/trace_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/switch_audit.hpp"

namespace smt::obs {

namespace {

/// Deterministic shortest-ish double rendering (%.9g): stable across runs
/// of the same binary, compact, and precise enough for 9-digit rates.
void put_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (std::isnan(v) ? "null" : (v > 0 ? "1e308" : "-1e308"));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

void put_code(std::ostream& os, std::string_view (*namer)(std::uint8_t),
              std::uint8_t code) {
  if (namer != nullptr) {
    os << namer(code);
  } else {
    os << static_cast<unsigned>(code);
  }
}

std::string pipe_flag_names(std::uint8_t mask) {
  std::string out;
  if ((mask & kPipeWrongPath) != 0) out += "wrong_path";
  if ((mask & kPipeMispredicted) != 0) {
    if (!out.empty()) out += '|';
    out += "mispredicted";
  }
  return out.empty() ? "-" : out;
}

/// The mask column's decoding also depends on the event kind: pipeview
/// and audit rows carry their own flag bits, everything else carries a
/// fault::FaultClass bitmask.
void put_mask(std::ostream& os, const TraceDecoder& dec, const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kPipeview:
      os << pipe_flag_names(e.mask);
      return;
    case EventKind::kSwitchAudit:
      os << audit_flag_names(e.mask);
      return;
    default:
      break;
  }
  if (dec.fault_mask != nullptr) {
    os << dec.fault_mask(e.mask);
  } else {
    os << static_cast<unsigned>(e.mask);
  }
}

/// The column whose decoding depends on the event kind.
void put_kind_code(std::ostream& os, const TraceDecoder& dec,
                   const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kQuantum:
      put_code(os, dec.guard_state, e.code);
      break;
    case EventKind::kPolicySwitch:
    case EventKind::kSwitchAudit:
      put_code(os, dec.heuristic, e.code);
      break;
    case EventKind::kGuardAction:
      os << name(static_cast<GuardAct>(e.code));
      break;
    case EventKind::kInvariant:
      put_code(os, dec.invariant, e.code);
      break;
    case EventKind::kPipeview:
      os << name(static_cast<PipeTerminal>(e.code));
      break;
    default:
      os << static_cast<unsigned>(e.code);
      break;
  }
}

void put_json_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

/// One build_info JSON object — the same bytes serve as the first JSONL
/// line and (behind "# ") as the CSV comment header, so one parser reads
/// both (see obs/trace_read.cpp).
void put_build_info(std::ostream& os, const RunInfo& info) {
  char buf[32];
  os << "{\"event\":\"build_info\",\"tool\":";
  put_json_string(os, info.tool);
  os << ",\"version\":";
  put_json_string(os, info.version);
  os << ",\"git_sha\":";
  put_json_string(os, info.git_sha);
  os << ",\"compiler\":";
  put_json_string(os, info.compiler);
  os << ",\"flags\":";
  put_json_string(os, info.flags);
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(info.seed));
  os << ",\"seed\":\"" << buf << "\"";
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(info.config_digest));
  os << ",\"config_digest\":\"" << buf << "\"";
  os << ",\"host_cpu\":";
  put_json_string(os, info.host_cpu);
  os << ",\"host_cores\":\"" << info.host_cores << "\"";
  os << ",\"smt_jobs\":\"" << info.smt_jobs << "\"}";
}

}  // namespace

std::string_view name(TraceFormat f) noexcept {
  switch (f) {
    case TraceFormat::kCsv: return "csv";
    case TraceFormat::kJsonl: return "jsonl";
    case TraceFormat::kChrome: return "chrome";
  }
  return "unknown";
}

std::optional<TraceFormat> parse_trace_format(std::string_view s) noexcept {
  if (s == "csv") return TraceFormat::kCsv;
  if (s == "jsonl") return TraceFormat::kJsonl;
  if (s == "chrome") return TraceFormat::kChrome;
  return std::nullopt;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  events_.reserve(capacity_);
}

void TraceSink::record(const TraceEvent& e) {
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  // Ring is full: overwrite the oldest slot.
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  if (!wrapped_) return events_;
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void TraceSink::clear() {
  events_.clear();
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

void TraceSink::write(std::ostream& os, TraceFormat format,
                      const TraceDecoder& dec) const {
  const std::vector<TraceEvent> evs = snapshot();
  const RunInfo* info = run_info_.has_value() ? &*run_info_ : nullptr;
  switch (format) {
    case TraceFormat::kCsv: write_csv(os, evs, dec, info); break;
    case TraceFormat::kJsonl: write_jsonl(os, evs, dec, info); break;
    case TraceFormat::kChrome: write_chrome(os, evs, dec, info); break;
  }
}

// ---------------------------------------------------------------------------
// CSV backend — one flat schema for every event kind.
// ---------------------------------------------------------------------------
void TraceSink::write_csv(std::ostream& os, const std::vector<TraceEvent>& evs,
                          const TraceDecoder& dec, const RunInfo* info) {
  if (info != nullptr) {
    os << "# ";
    put_build_info(os, *info);
    os << '\n';
  }
  os << "event,quantum,cycle,tid,span,policy_before,policy_after,code,"
        "faults,value,ipc,fetch_share,mispredict_rate,l1d_miss_rate,"
        "l1i_miss_rate";
  for (std::size_t c = 0; c < kNumStallCauses; ++c) {
    os << ",stall_" << name(static_cast<StallCause>(c));
  }
  for (std::size_t c = 0; c < kNumCpiCauses; ++c) {
    os << ",cpi_" << name(static_cast<CpiCause>(c));
  }
  os << ",stages,label,contend\n";
  for (const TraceEvent& e : evs) {
    os << name(e.kind) << ',' << e.quantum << ',' << e.cycle << ',' << e.tid
       << ',' << e.span << ',';
    put_code(os, dec.policy, e.policy_before);
    os << ',';
    put_code(os, dec.policy, e.policy_after);
    os << ',';
    put_kind_code(os, dec, e);
    os << ',';
    put_mask(os, dec, e);
    os << ',' << e.value << ',';
    put_double(os, e.ipc);
    os << ',';
    put_double(os, e.fetch_share);
    os << ',';
    put_double(os, e.mispredict_rate);
    os << ',';
    put_double(os, e.l1d_miss_rate);
    os << ',';
    put_double(os, e.l1i_miss_rate);
    for (const std::uint64_t s : e.stalls) os << ',' << s;
    for (const std::uint64_t s : e.cpi) os << ',' << s;
    os << ',';
    if (e.kind == EventKind::kPipeview) {
      for (std::size_t i = 0; i < kNumPipeStages; ++i) {
        if (i > 0) os << ';';
        os << e.stage_delta[i];
      }
    }
    os << ',';
    if (e.kind == EventKind::kProf) os << e.label_view();
    os << ',';
    if (e.kind == EventKind::kCpiStack) {
      for (std::size_t h = 0; h < kCpiMaxThreads; ++h) {
        if (h > 0) os << ';';
        os << e.contend[h];
      }
    }
    os << '\n';
  }
}

// ---------------------------------------------------------------------------
// JSONL backend — one self-describing object per line, numeric codes,
// fixed key set (scripts/check_observability.sh validates this schema).
// ---------------------------------------------------------------------------
void TraceSink::write_jsonl(std::ostream& os,
                            const std::vector<TraceEvent>& evs,
                            const TraceDecoder& /*dec*/, const RunInfo* info) {
  if (info != nullptr) {
    put_build_info(os, *info);
    os << '\n';
  }
  for (const TraceEvent& e : evs) {
    os << "{\"event\":\"" << name(e.kind) << "\",\"quantum\":" << e.quantum
       << ",\"cycle\":" << e.cycle << ",\"tid\":" << e.tid
       << ",\"span\":" << e.span
       << ",\"policy_before\":" << static_cast<unsigned>(e.policy_before)
       << ",\"policy_after\":" << static_cast<unsigned>(e.policy_after)
       << ",\"code\":" << static_cast<unsigned>(e.code)
       << ",\"mask\":" << static_cast<unsigned>(e.mask)
       << ",\"value\":" << e.value << ",\"ipc\":";
    put_double(os, e.ipc);
    os << ",\"fetch_share\":";
    put_double(os, e.fetch_share);
    os << ",\"mispredict_rate\":";
    put_double(os, e.mispredict_rate);
    os << ",\"l1d_miss_rate\":";
    put_double(os, e.l1d_miss_rate);
    os << ",\"l1i_miss_rate\":";
    put_double(os, e.l1i_miss_rate);
    os << ",\"stalls\":{";
    for (std::size_t c = 0; c < kNumStallCauses; ++c) {
      if (c > 0) os << ',';
      os << '"' << name(static_cast<StallCause>(c)) << "\":" << e.stalls[c];
    }
    os << '}';
    if (e.kind == EventKind::kPipeview) {
      os << ",\"stages\":[";
      for (std::size_t i = 0; i < kNumPipeStages; ++i) {
        if (i > 0) os << ',';
        os << e.stage_delta[i];
      }
      os << ']';
    }
    if (e.kind == EventKind::kProf) {
      os << ",\"label\":";
      put_json_string(os, e.label_view());
    }
    if (e.kind == EventKind::kCpiStack) {
      os << ",\"cpi\":{";
      for (std::size_t c = 0; c < kNumCpiCauses; ++c) {
        if (c > 0) os << ',';
        os << '"' << name(static_cast<CpiCause>(c)) << "\":" << e.cpi[c];
      }
      os << "},\"contend\":[";
      for (std::size_t h = 0; h < kCpiMaxThreads; ++h) {
        if (h > 0) os << ',';
        os << e.contend[h];
      }
      os << ']';
    }
    os << "}\n";
  }
}

// ---------------------------------------------------------------------------
// Chrome trace-event backend — loads in Perfetto / chrome://tracing.
// Timestamps are cycles reported as microseconds (1 cycle = 1 µs), so a
// quantum shows as an 8.192 ms block; "dur" spans are exact.
// ---------------------------------------------------------------------------
void TraceSink::write_chrome(std::ostream& os,
                             const std::vector<TraceEvent>& evs,
                             const TraceDecoder& dec, const RunInfo* info) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto next = [&os, &first]() {
    if (!first) os << ',';
    first = false;
    os << "\n";
  };
  if (info != nullptr) {
    next();
    os << "{\"name\":\"build_info\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,"
          "\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":";
    put_build_info(os, *info);
    os << '}';
  }
  for (const TraceEvent& e : evs) {
    switch (e.kind) {
      case EventKind::kQuantum: {
        next();
        const std::uint64_t start = e.cycle >= e.span ? e.cycle - e.span : 0;
        os << "{\"name\":\"";
        put_code(os, dec.policy, e.policy_after);
        os << "\",\"cat\":\"policy\",\"ph\":\"X\",\"ts\":" << start
           << ",\"dur\":" << e.span
           << ",\"pid\":0,\"tid\":0,\"args\":{\"ipc\":";
        put_double(os, e.ipc);
        os << ",\"committed\":" << e.value << ",\"quantum\":" << e.quantum
           << "}}";
        next();
        os << "{\"name\":\"machine ipc\",\"ph\":\"C\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"args\":{\"ipc\":";
        put_double(os, e.ipc);
        os << "}}";
        break;
      }
      case EventKind::kThreadQuantum: {
        next();
        os << "{\"name\":\"thread " << e.tid
           << " ipc\",\"ph\":\"C\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"args\":{\"ipc\":";
        put_double(os, e.ipc);
        os << "}}";
        next();
        os << "{\"name\":\"thread " << e.tid
           << " stalls\",\"ph\":\"C\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"args\":{";
        for (std::size_t c = 0; c < kNumStallCauses; ++c) {
          if (c > 0) os << ',';
          os << '"' << name(static_cast<StallCause>(c))
             << "\":" << e.stalls[c];
        }
        os << "}}";
        break;
      }
      case EventKind::kPolicySwitch: {
        next();
        os << "{\"name\":\"switch ";
        put_code(os, dec.policy, e.policy_before);
        os << " -> ";
        put_code(os, dec.policy, e.policy_after);
        os << "\",\"cat\":\"adts\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"heuristic\":\"";
        put_code(os, dec.heuristic, e.code);
        os << "\",\"ipc_last\":";
        put_double(os, e.ipc);
        os << "}}";
        break;
      }
      case EventKind::kGuardAction: {
        next();
        os << "{\"name\":\"guard " << name(static_cast<GuardAct>(e.code))
           << "\",\"cat\":\"guard\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\"}";
        break;
      }
      case EventKind::kFault: {
        next();
        os << "{\"name\":\"fault ";
        put_mask(os, dec, e);
        os << "\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\"}";
        break;
      }
      case EventKind::kDtStallBegin:
      case EventKind::kDtStallEnd: {
        next();
        os << "{\"name\":\"" << name(e.kind)
           << "\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\"}";
        break;
      }
      case EventKind::kInvariant: {
        next();
        os << "{\"name\":\"invariant ";
        put_code(os, dec.invariant, e.code);
        os << "\",\"cat\":\"check\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"tid\":" << e.tid
           << ",\"value\":" << e.value << "}}";
        break;
      }
      case EventKind::kPipeview: {
        // One duration slice per sampled instruction, on the fetching
        // thread's own track so waterfalls line up per thread.
        next();
        os << "{\"name\":\"i" << e.value << ' '
           << name(static_cast<PipeTerminal>(e.code))
           << "\",\"cat\":\"pipeview\",\"ph\":\"X\",\"ts\":" << e.cycle
           << ",\"dur\":" << e.span << ",\"pid\":1,\"tid\":" << e.tid
           << ",\"args\":{\"flags\":\"" << pipe_flag_names(e.mask)
           << "\",\"stages\":[";
        for (std::size_t i = 0; i < kNumPipeStages; ++i) {
          if (i > 0) os << ',';
          os << e.stage_delta[i];
        }
        os << "]}}";
        break;
      }
      case EventKind::kSwitchAudit: {
        next();
        os << "{\"name\":\"audit "
           << name(static_cast<SwitchLabel>(e.value)) << ' ';
        put_code(os, dec.policy, e.policy_before);
        os << " -> ";
        put_code(os, dec.policy, e.policy_after);
        os << "\",\"cat\":\"adts\",\"ph\":\"i\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"heuristic\":\"";
        put_code(os, dec.heuristic, e.code);
        os << "\",\"flags\":\"" << audit_flag_names(e.mask)
           << "\",\"ipc_before\":";
        put_double(os, e.fetch_share);
        os << ",\"ipc_after\":";
        put_double(os, e.ipc);
        os << "}}";
        break;
      }
      case EventKind::kProf: {
        // Phase nodes live on their own synthetic-time process track
        // (pid 2): ts/dur are profiler nanoseconds laid out preorder so
        // the tree renders as a flame chart, not simulation cycles.
        next();
        os << "{\"name\":\"" << json_escape(e.label_view())
           << "\",\"cat\":\"prof\",\"ph\":\"X\",\"ts\":";
        put_double(os, static_cast<double>(e.cycle) / 1e3);
        os << ",\"dur\":";
        put_double(os, static_cast<double>(e.span) / 1e3);
        os << ",\"pid\":2,\"tid\":0,\"args\":{\"count\":" << e.quantum
           << ",\"excl_ns\":" << e.value
           << ",\"depth\":" << static_cast<unsigned>(e.code) << "}}";
        break;
      }
      case EventKind::kCpiStack: {
        // One counter track per thread: the per-quantum commit-slot
        // stack renders as a stacked area chart over time.
        next();
        os << "{\"name\":\"thread " << e.tid
           << " cpi\",\"ph\":\"C\",\"ts\":" << e.cycle
           << ",\"pid\":0,\"tid\":0,\"args\":{";
        for (std::size_t c = 0; c < kNumCpiCauses; ++c) {
          if (c > 0) os << ',';
          os << '"' << name(static_cast<CpiCause>(c)) << "\":" << e.cpi[c];
        }
        os << "}}";
        break;
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace smt::obs
