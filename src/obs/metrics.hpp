// MetricsRegistry: the machine-readable end-of-run export.
//
// Every subsystem (pipeline, detector thread, guard, fault injector)
// exports its named counters into one registry; the registry serializes
// to a nested JSON document (--stats-json). Names are dotted paths —
// "adts.switches", "threads.3.stalls.icache_miss" — and the writer
// rebuilds the hierarchy from the dots, so exporters stay one flat
// set() call per counter and the JSON stays structured for tooling.
//
// Values are typed (u64 / i64 / double / bool / string). Doubles that
// are NaN or infinite serialize as null: an empty accumulator must not
// masquerade as a real zero in exported metrics (see
// RunningStat::min()/max()).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace smt::obs {

class MetricsRegistry {
 public:
  using Value =
      std::variant<std::uint64_t, std::int64_t, double, bool, std::string>;

  void set(std::string_view name, std::uint64_t v) { put(name, Value{v}); }
  void set(std::string_view name, std::int64_t v) { put(name, Value{v}); }
  void set(std::string_view name, double v) { put(name, Value{v}); }
  void set(std::string_view name, bool v) { put(name, Value{v}); }
  void set(std::string_view name, std::string_view v) {
    put(name, Value{std::string(v)});
  }
  // Disambiguate common integer literals / narrower counters.
  void set(std::string_view name, std::uint32_t v) {
    put(name, Value{static_cast<std::uint64_t>(v)});
  }
  void set(std::string_view name, std::int32_t v) {
    put(name, Value{static_cast<std::int64_t>(v)});
  }
  void set(std::string_view name, const char* v) {
    put(name, Value{std::string(v)});
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Look up a value by its full dotted name; nullopt when absent.
  [[nodiscard]] std::optional<Value> find(std::string_view name) const;

  /// Remove the entry with this exact dotted name; returns whether one
  /// existed. Used by golden-digest tests to drop build/host provenance
  /// keys (the same set run_bench_suite.sh strips) before hashing.
  bool erase(std::string_view name);

  /// Serialize as nested JSON (keys sorted lexicographically so sibling
  /// groups are contiguous; repeated set() keeps the last value).
  void write_json(std::ostream& os) const;

 private:
  void put(std::string_view name, Value v);

  std::vector<std::pair<std::string, Value>> entries_;
};

/// JSON string escaping for keys and string values.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace smt::obs
