#include "obs/cpi_stack.hpp"

namespace smt::obs {

CpiStack& CpiStack::operator+=(const CpiStack& o) noexcept {
  for (std::size_t i = 0; i < kNumCpiCauses; ++i) slots[i] += o.slots[i];
  for (std::size_t i = 0; i < kNumStallCauses; ++i) {
    rob_empty_by[i] += o.rob_empty_by[i];
  }
  for (std::size_t i = 0; i < kCpiMaxThreads; ++i) contend[i] += o.contend[i];
  return *this;
}

namespace {

[[nodiscard]] std::uint64_t absdiff(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : b - a;
}

}  // namespace

std::uint64_t conservation_gap(const CpiStack& s, std::uint64_t commit_width,
                               std::uint64_t cycles) noexcept {
  std::uint64_t rob_empty = 0;
  for (const std::uint64_t n : s.rob_empty_by) rob_empty += n;
  std::uint64_t contend = 0;
  for (const std::uint64_t n : s.contend) contend += n;
  return absdiff(s.total(), commit_width * cycles) +
         absdiff(rob_empty, s[CpiCause::kRobEmpty]) +
         absdiff(contend, s[CpiCause::kFuContention]);
}

}  // namespace smt::obs
