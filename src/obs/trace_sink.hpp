// TraceSink: low-overhead event recorder with pluggable serializers.
//
// Recording is a bounds-checked copy into a fixed-capacity ring buffer
// (no allocation after construction; oldest events drop first when the
// ring wraps, with a drop counter so truncation is never silent).
// Serialization happens only when write() is called, to one of three
// backends:
//
//   * CSV   — one flat table, one header, every event kind in the same
//             schema (the --fault-report / trace-analysis format),
//   * JSONL — one self-describing JSON object per line (machine-
//             readable; byte-deterministic for a given run),
//   * Chrome trace-event JSON — loads directly in Perfetto or
//             chrome://tracing: policy timeline as duration events,
//             per-thread IPC as counter tracks, switches/faults/guard
//             actions as instants.
//
// The sink is observation-only: nothing in the simulator reads it back,
// so attaching one can never perturb a run. Components that instrument
// themselves hold a TraceSink* that is nullptr when tracing is off; the
// null check inlines to nothing, which is the zero-overhead-when-
// disabled contract.
//
// Decoding: TraceEvent stores enum *codes* (policy, heuristic, guard
// state) because obs sits below the policy/core layers. Writers accept a
// TraceDecoder of name callbacks — sim::trace_decoder() supplies the
// real names; with the default (empty) decoder codes print numerically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_event.hpp"

namespace smt::obs {

enum class TraceFormat : std::uint8_t { kCsv, kJsonl, kChrome };

[[nodiscard]] std::string_view name(TraceFormat f) noexcept;
/// Parse "csv" | "jsonl" | "chrome"; nullopt on anything else.
[[nodiscard]] std::optional<TraceFormat> parse_trace_format(
    std::string_view s) noexcept;

/// Enum-code → display-name callbacks for the writers. Any member may be
/// null, in which case the raw code is printed.
struct TraceDecoder {
  std::string_view (*policy)(std::uint8_t code) = nullptr;
  std::string_view (*heuristic)(std::uint8_t code) = nullptr;
  std::string_view (*guard_state)(std::uint8_t code) = nullptr;
  /// Decode a check::InvariantClass code on kInvariant events.
  std::string_view (*invariant)(std::uint8_t code) = nullptr;
  /// Render a fault::FaultClass bitmask as "noise|blackout" etc.
  std::string (*fault_mask)(std::uint8_t mask) = nullptr;
};

/// Build/run provenance stamped as the first line of every trace (and
/// mirrored under run.* in --stats-json). All values serialize as JSON
/// strings so 64-bit seeds survive tools that parse numbers as doubles.
struct RunInfo {
  std::string tool;      ///< producing binary, e.g. "smtsim"
  std::string version;   ///< project version
  std::string git_sha;   ///< commit the binary was built from ("unknown"
                         ///< outside a git checkout)
  std::string compiler;  ///< compiler id + version
  std::string flags;     ///< build type + compile flags
  std::uint64_t seed = 0;           ///< workload seed of this run
  std::uint64_t config_digest = 0;  ///< FNV-1a over the resolved SimConfig
  // Host provenance (common/host_info.hpp): BENCH documents and traces
  // from different machines are only comparable when stamped with what
  // they ran on.
  std::string host_cpu;        ///< /proc/cpuinfo model name, or "unknown"
  unsigned host_cores = 0;     ///< online host cores
  std::size_t smt_jobs = 0;    ///< resolved SMT_JOBS (par::default_jobs)
};

class TraceSink {
 public:
  /// `capacity` = maximum buffered events; the ring keeps the newest.
  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  void record(const TraceEvent& e);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events lost to ring wrap-around since construction / clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear();

  /// Provenance emitted as the first line of write() output. Unset sinks
  /// write no header, preserving the pre-provenance format exactly.
  void set_run_info(RunInfo info) { run_info_ = std::move(info); }
  [[nodiscard]] const std::optional<RunInfo>& run_info() const noexcept {
    return run_info_;
  }

  /// Serialize every buffered event (oldest first) to `os`.
  void write(std::ostream& os, TraceFormat format,
             const TraceDecoder& dec = {}) const;

  // Backends, usable directly on any event sequence. `info` (when
  // non-null) prepends the build_info header line.
  static void write_csv(std::ostream& os, const std::vector<TraceEvent>& evs,
                        const TraceDecoder& dec = {},
                        const RunInfo* info = nullptr);
  static void write_jsonl(std::ostream& os, const std::vector<TraceEvent>& evs,
                          const TraceDecoder& dec = {},
                          const RunInfo* info = nullptr);
  static void write_chrome(std::ostream& os, const std::vector<TraceEvent>& evs,
                           const TraceDecoder& dec = {},
                           const RunInfo* info = nullptr);

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest event once wrapped
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::optional<RunInfo> run_info_;
  std::vector<TraceEvent> events_;  ///< ring storage
};

}  // namespace smt::obs
