// Top-down CPI-stack taxonomy for commit-slot attribution.
//
// PR 2's StallBreakdown explains lost FETCH slots; everything downstream
// of fetch stayed a black box. This module closes the loop with the
// classic top-down decomposition: every cycle, every thread owns
// commit_width commit slots, and every slot is charged to exactly one
// cause — it either committed an instruction or it names the specific
// reason it could not. Because commit is in-order, the head of the
// thread's window decides the charge for all of that thread's lost
// slots in the cycle (whatever blocks the head blocks everything behind
// it), which is what makes single-cause attribution sound.
//
// The conservation law mirrors PR 2's fetch law and is enforced per
// cycle and per run by tests/test_cpi_stack.cpp and scripts/check_cpi.sh:
//
//   sum over causes == commit_width × cycles_accounted   (per thread)
//
// Two refinements carry the paper's scheduling questions specifically:
//   - kRobEmpty is sub-attributed by the *fetch-side* StallCause that
//     starved the window (rob_empty_by), back-propagating PR 2's
//     attribution to where it finally costs retirement slots;
//   - kFuContention records WHICH co-runner held the issue/commit
//     bandwidth (contend[holder_tid]) — the symbiosis signal SYNPA-style
//     allocators (ROADMAP items 4/5) need.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/stall.hpp"

namespace smt::obs {

/// Why a commit slot retired nothing. One cause per lost slot; the
/// in-order head of the window decides.
enum class CpiCause : std::uint8_t {
  /// The slot retired an instruction. The "base" component of the stack.
  kCommitted,
  /// The thread's window is empty: the front end starved retirement.
  /// Sub-attributed by fetch-side StallCause in rob_empty_by.
  kRobEmpty,
  /// The head instruction waits on a register operand produced by a
  /// non-memory instruction (or a short-latency load still in flight).
  kDepWait,
  /// The head instruction is (or waits on) a load with an outstanding
  /// long-latency memory access — the paper's clogging signature.
  kMemLatency,
  /// The head was ready/done but a co-runner consumed the shared issue
  /// bandwidth, FU, memory port or commit slot this cycle. The holder
  /// thread is recorded in CpiStack::contend — the symbiosis signal.
  kFuContention,
  /// The head sits in the front-end buffer behind a structural-full
  /// condition: IQ/LSQ/rename exhaustion blocks dispatch.
  kStructuralFull,
  /// Squash recovery: the head is refilling through the front-end delay
  /// after a mispredict/BTB-miss/syscall flush emptied the back end.
  kSquashRecovery,
  /// DT/guard/switch machinery blocked the thread: ADTS fetch blackout,
  /// policy-switch penalty window, or guard-imposed suspension.
  kSwitchOverhead,
};

inline constexpr std::size_t kNumCpiCauses = 8;

/// Upper bound on hardware threads a CPI stack tracks contention
/// against (matches the pipeline's 8-thread ceiling).
inline constexpr std::size_t kCpiMaxThreads = 8;

[[nodiscard]] constexpr std::string_view name(CpiCause c) noexcept {
  switch (c) {
    case CpiCause::kCommitted: return "committed";
    case CpiCause::kRobEmpty: return "rob_empty";
    case CpiCause::kDepWait: return "dep_wait";
    case CpiCause::kMemLatency: return "mem_latency";
    case CpiCause::kFuContention: return "fu_contention";
    case CpiCause::kStructuralFull: return "structural_full";
    case CpiCause::kSquashRecovery: return "squash_recovery";
    case CpiCause::kSwitchOverhead: return "switch_overhead";
  }
  return "unknown";
}

/// One thread's commit-slot account: slot counters per cause, the
/// fetch-side sub-attribution of kRobEmpty, and the per-holder
/// contention matrix row for kFuContention.
struct CpiStack {
  std::array<std::uint64_t, kNumCpiCauses> slots{};
  /// kRobEmpty slots broken down by the fetch StallCause that starved
  /// the window. Invariant: sum == slots[kRobEmpty].
  std::array<std::uint64_t, kNumStallCauses> rob_empty_by{};
  /// kFuContention slots broken down by which co-runner held the
  /// resource. Invariant: sum == slots[kFuContention].
  std::array<std::uint64_t, kCpiMaxThreads> contend{};

  void charge(CpiCause c, std::uint64_t n = 1) noexcept {
    slots[static_cast<std::size_t>(c)] += n;
  }
  [[nodiscard]] std::uint64_t operator[](CpiCause c) const noexcept {
    return slots[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t s : slots) t += s;
    return t;
  }

  CpiStack& operator+=(const CpiStack& o) noexcept;
};

/// Slots the stack fails to account for against a commit_width × cycles
/// budget: 0 iff the conservation law holds. Also 0 only if the two
/// sub-attribution invariants (rob_empty_by, contend) hold.
[[nodiscard]] std::uint64_t conservation_gap(const CpiStack& s,
                                             std::uint64_t commit_width,
                                             std::uint64_t cycles) noexcept;

}  // namespace smt::obs
