#include "obs/switch_audit.hpp"

#include <array>
#include <limits>
#include <map>

namespace smt::obs {

std::string audit_flag_names(std::uint8_t mask) {
  static constexpr std::array<std::pair<std::uint8_t, std::string_view>, 5>
      kBits{{{kAuditReversed, "reversed"},
             {kAuditStale, "stale"},
             {kAuditInstant, "instant"},
             {kAuditCondMem, "cond_mem"},
             {kAuditCondBr, "cond_br"}}};
  std::string out;
  for (const auto& [bit, label] : kBits) {
    if ((mask & bit) == 0) continue;
    if (!out.empty()) out += '|';
    out += label;
  }
  return out.empty() ? "-" : out;
}

TraceEvent to_trace_event(const SwitchAudit& a) {
  TraceEvent e;
  e.kind = EventKind::kSwitchAudit;
  e.cycle = a.applied_cycle;
  e.quantum = a.quantum;
  e.tid = -1;
  e.span = a.applied_cycle - a.decided_cycle;
  e.policy_before = a.policy_before;
  e.policy_after = a.policy_after;
  e.code = a.heuristic;
  e.mask = a.flags;
  e.value = static_cast<std::uint64_t>(a.label);
  // ipc carries the outcome; NaN (→ null in JSONL) while unscored keeps
  // "no data yet" distinct from a real 0.0 IPC quantum.
  e.ipc = a.scored ? a.ipc_after
                   : std::numeric_limits<double>::quiet_NaN();
  e.fetch_share = a.ipc_before;
  e.mispredict_rate = a.mispredict_rate;
  e.l1d_miss_rate = a.l1_miss_rate;
  e.l1i_miss_rate = a.cond_value;
  return e;
}

void SwitchAuditLog::export_metrics(
    MetricsRegistry& reg, const std::string& prefix,
    std::string_view (*heuristic_name)(std::uint8_t)) const {
  struct HeuristicTally {
    std::uint64_t benign = 0;
    std::uint64_t malignant = 0;
    std::uint64_t neutral = 0;
  };
  std::uint64_t benign = 0;
  std::uint64_t malignant = 0;
  std::uint64_t neutral = 0;
  std::map<std::uint8_t, HeuristicTally> by_heuristic;
  for (const SwitchAudit& a : entries_) {
    HeuristicTally& t = by_heuristic[a.heuristic];
    switch (a.label) {
      case SwitchLabel::kBenign: ++benign; ++t.benign; break;
      case SwitchLabel::kMalignant: ++malignant; ++t.malignant; break;
      case SwitchLabel::kNeutral: ++neutral; ++t.neutral; break;
    }
  }
  reg.set(prefix + "records", static_cast<std::uint64_t>(entries_.size()));
  reg.set(prefix + "dropped", dropped_);
  reg.set(prefix + "benign", benign);
  reg.set(prefix + "malignant", malignant);
  reg.set(prefix + "neutral", neutral);
  reg.set(prefix + "benign_rate", benign_probability(benign, malignant));
  for (const auto& [code, t] : by_heuristic) {
    const std::string key =
        prefix + "by_heuristic." +
        (heuristic_name != nullptr ? std::string(heuristic_name(code))
                                   : std::to_string(code)) +
        '.';
    reg.set(key + "benign", t.benign);
    reg.set(key + "malignant", t.malignant);
    reg.set(key + "neutral", t.neutral);
    reg.set(key + "benign_rate", benign_probability(t.benign, t.malignant));
  }
}

}  // namespace smt::obs
