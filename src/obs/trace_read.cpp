#include "obs/trace_read.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <variant>

namespace smt::obs {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw TraceReadError("trace line " + std::to_string(line_no) + ": " + what);
}

// --- minimal JSON parser ---------------------------------------------------
// Only what the JSONL backend emits: flat objects with string keys and
// null / bool / number / string / object / array values. Recursive
// descent over a string_view; depth is bounded by the schema (2).
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;
struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonObject,
               JsonArray>
      v = nullptr;
};

struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;
  std::size_t line_no;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  char peek() {
    skip_ws();
    if (pos >= s.size()) fail(line_no, "unexpected end of JSON");
    return s[pos];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(line_no, std::string("expected '") + c + "' got '" + s[pos] + "'");
    }
    ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\' && pos < s.size()) {
        const char esc = s[pos++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: fail(line_no, "unsupported JSON escape");
        }
      }
      out += c;
    }
    if (pos >= s.size()) fail(line_no, "unterminated JSON string");
    ++pos;  // closing quote
    return out;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue out;
    if (c == '{') {
      ++pos;
      JsonObject obj;
      if (!consume('}')) {
        do {
          std::string key = parse_string();
          expect(':');
          obj.emplace(std::move(key), parse_value());
        } while (consume(','));
        expect('}');
      }
      out.v = std::move(obj);
    } else if (c == '[') {
      ++pos;
      JsonArray arr;
      if (!consume(']')) {
        do {
          arr.push_back(parse_value());
        } while (consume(','));
        expect(']');
      }
      out.v = std::move(arr);
    } else if (c == '"') {
      out.v = parse_string();
    } else if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      out.v = nullptr;
    } else if (s.compare(pos, 4, "true") == 0) {
      pos += 4;
      out.v = true;
    } else if (s.compare(pos, 5, "false") == 0) {
      pos += 5;
      out.v = false;
    } else {
      char* end = nullptr;
      const double num = std::strtod(s.data() + pos, &end);
      if (end == s.data() + pos) fail(line_no, "bad JSON value");
      pos = static_cast<std::size_t>(end - s.data());
      out.v = num;
    }
    return out;
  }
};

JsonObject parse_json_object(std::string_view line, std::size_t line_no) {
  JsonParser p{line, 0, line_no};
  JsonValue v = p.parse_value();
  if (!std::holds_alternative<JsonObject>(v.v)) {
    fail(line_no, "expected a JSON object");
  }
  return std::get<JsonObject>(std::move(v.v));
}

double as_double(const JsonValue& v, std::size_t line_no) {
  if (std::holds_alternative<double>(v.v)) return std::get<double>(v.v);
  if (std::holds_alternative<std::nullptr_t>(v.v)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  fail(line_no, "expected a number");
}

std::string as_code_string(const JsonValue& v, std::size_t line_no) {
  if (std::holds_alternative<std::string>(v.v)) return std::get<std::string>(v.v);
  if (std::holds_alternative<double>(v.v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", std::get<double>(v.v));
    return buf;
  }
  fail(line_no, "expected a string or number");
}

// --- field-name tables -----------------------------------------------------

constexpr std::array<EventKind, 12> kAllKinds{
    EventKind::kQuantum,    EventKind::kThreadQuantum,
    EventKind::kPolicySwitch, EventKind::kGuardAction,
    EventKind::kFault,      EventKind::kDtStallBegin,
    EventKind::kDtStallEnd, EventKind::kInvariant,
    EventKind::kPipeview,   EventKind::kSwitchAudit,
    EventKind::kProf,       EventKind::kCpiStack};

std::uint64_t parse_u64_field(const std::string& s, std::size_t line_no) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') fail(line_no, "bad integer '" + s + "'");
  return out;
}

std::int64_t parse_i64_field(const std::string& s, std::size_t line_no) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const std::int64_t out = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') fail(line_no, "bad integer '" + s + "'");
  return out;
}

double parse_double_field(const std::string& s, std::size_t line_no) {
  if (s.empty() || s == "null") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  char* end = nullptr;
  const double out = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') fail(line_no, "bad number '" + s + "'");
  return out;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    out.push_back(line.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::map<std::string, std::string> build_from_object(const JsonObject& obj) {
  std::map<std::string, std::string> out;
  for (const auto& [key, val] : obj) {
    if (key == "event") continue;
    out.emplace(key, as_code_string(val, 0));
  }
  return out;
}

// Parse a "d;d;...;d" stage list (CSV) into the fixed stage array.
void parse_stage_list(const std::string& s, ReadEvent& e,
                      std::size_t line_no) {
  if (s.empty()) return;
  std::size_t start = 0;
  std::size_t slot = 0;
  while (start <= s.size() && slot < e.stages.size()) {
    const std::size_t semi = s.find(';', start);
    const std::string tok = s.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    e.stages[slot++] = parse_u64_field(tok, line_no);
    if (semi == std::string::npos) return;
    start = semi + 1;
  }
  if (start <= s.size()) fail(line_no, "too many stage deltas");
}

// Parse a "d;d;...;d" contention list (CSV) into the holder-tid array.
void parse_contend_list(const std::string& s, ReadEvent& e,
                        std::size_t line_no) {
  if (s.empty()) return;
  std::size_t start = 0;
  std::size_t slot = 0;
  while (start <= s.size() && slot < e.contend.size()) {
    const std::size_t semi = s.find(';', start);
    const std::string tok = s.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    e.contend[slot++] = parse_u64_field(tok, line_no);
    if (semi == std::string::npos) return;
    start = semi + 1;
  }
  if (start <= s.size()) fail(line_no, "too many contention slots");
}

}  // namespace

std::optional<EventKind> parse_event_kind(std::string_view s) noexcept {
  for (const EventKind k : kAllKinds) {
    if (name(k) == s) return k;
  }
  return std::nullopt;
}

ReadTrace read_trace(std::istream& is) {
  ReadTrace out;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;        // CSV column header seen
  std::vector<std::string> cols;  // CSV column names
  bool format_known = false;
  bool is_csv = false;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.find("\"displayTimeUnit\"") != std::string::npos ||
        line.find("\"traceEvents\"") != std::string::npos) {
      fail(line_no,
           "chrome-format traces are a write-only export; "
           "re-run with --trace-format csv or jsonl");
    }

    // build_info header: CSV comment or first JSONL object.
    if (line[0] == '#') {
      const std::size_t brace = line.find('{');
      if (brace != std::string::npos) {
        out.build = build_from_object(
            parse_json_object(std::string_view(line).substr(brace), line_no));
      }
      continue;
    }

    if (!format_known) {
      format_known = true;
      is_csv = line[0] != '{';
    }

    if (is_csv) {
      if (!saw_header) {
        if (line.rfind("event,", 0) != 0) {
          fail(line_no, "expected the CSV column header");
        }
        cols = split_csv(line);
        saw_header = true;
        continue;
      }
      std::vector<std::string> f = split_csv(line);
      if (f.size() < cols.size() - 1) fail(line_no, "short CSV row");
      auto field = [&](std::string_view col_name) -> const std::string& {
        static const std::string kEmpty;
        for (std::size_t i = 0; i < cols.size(); ++i) {
          if (cols[i] == col_name) return i < f.size() ? f[i] : kEmpty;
        }
        return kEmpty;
      };
      ReadEvent e;
      const std::optional<EventKind> kind = parse_event_kind(field("event"));
      if (!kind) fail(line_no, "unknown event kind '" + field("event") + "'");
      e.kind = *kind;
      e.quantum = parse_u64_field(field("quantum"), line_no);
      e.cycle = parse_u64_field(field("cycle"), line_no);
      e.tid = parse_i64_field(field("tid"), line_no);
      e.span = parse_u64_field(field("span"), line_no);
      e.policy_before = field("policy_before");
      e.policy_after = field("policy_after");
      e.code = field("code");
      e.mask = field("faults");
      e.value = parse_u64_field(field("value"), line_no);
      e.ipc = parse_double_field(field("ipc"), line_no);
      e.fetch_share = parse_double_field(field("fetch_share"), line_no);
      e.mispredict_rate = parse_double_field(field("mispredict_rate"), line_no);
      e.l1d_miss_rate = parse_double_field(field("l1d_miss_rate"), line_no);
      e.l1i_miss_rate = parse_double_field(field("l1i_miss_rate"), line_no);
      for (std::size_t c = 0; c < kNumStallCauses; ++c) {
        const std::string col =
            "stall_" + std::string(name(static_cast<StallCause>(c)));
        e.stalls[c] = parse_u64_field(field(col), line_no);
      }
      for (std::size_t c = 0; c < kNumCpiCauses; ++c) {
        const std::string col =
            "cpi_" + std::string(name(static_cast<CpiCause>(c)));
        e.cpi[c] = parse_u64_field(field(col), line_no);
      }
      parse_stage_list(field("stages"), e, line_no);
      e.label = field("label");
      parse_contend_list(field("contend"), e, line_no);
      out.events.push_back(std::move(e));
      continue;
    }

    // JSONL object per line.
    const JsonObject obj = parse_json_object(line, line_no);
    const auto ev = obj.find("event");
    if (ev == obj.end()) fail(line_no, "missing \"event\" key");
    const std::string kind_name = as_code_string(ev->second, line_no);
    if (kind_name == "build_info") {
      out.build = build_from_object(obj);
      continue;
    }
    const std::optional<EventKind> kind = parse_event_kind(kind_name);
    if (!kind) fail(line_no, "unknown event kind '" + kind_name + "'");
    ReadEvent e;
    e.kind = *kind;
    auto num = [&](const char* key, double fallback = 0.0) {
      const auto it = obj.find(key);
      return it == obj.end() ? fallback : as_double(it->second, line_no);
    };
    auto code_str = [&](const char* key) {
      const auto it = obj.find(key);
      return it == obj.end() ? std::string()
                             : as_code_string(it->second, line_no);
    };
    e.quantum = static_cast<std::uint64_t>(num("quantum"));
    e.cycle = static_cast<std::uint64_t>(num("cycle"));
    e.tid = static_cast<std::int64_t>(num("tid", -1.0));
    e.span = static_cast<std::uint64_t>(num("span"));
    e.policy_before = code_str("policy_before");
    e.policy_after = code_str("policy_after");
    e.code = code_str("code");
    e.mask = code_str("mask");
    e.value = static_cast<std::uint64_t>(num("value"));
    e.ipc = num("ipc");
    e.fetch_share = num("fetch_share");
    e.mispredict_rate = num("mispredict_rate");
    e.l1d_miss_rate = num("l1d_miss_rate");
    e.l1i_miss_rate = num("l1i_miss_rate");
    if (const auto st = obj.find("stalls"); st != obj.end()) {
      if (!std::holds_alternative<JsonObject>(st->second.v)) {
        fail(line_no, "\"stalls\" must be an object");
      }
      const JsonObject& stalls = std::get<JsonObject>(st->second.v);
      for (std::size_t c = 0; c < kNumStallCauses; ++c) {
        const auto it = stalls.find(std::string(name(static_cast<StallCause>(c))));
        if (it != stalls.end()) {
          e.stalls[c] =
              static_cast<std::uint64_t>(as_double(it->second, line_no));
        }
      }
    }
    if (const auto sg = obj.find("stages"); sg != obj.end()) {
      if (!std::holds_alternative<JsonArray>(sg->second.v)) {
        fail(line_no, "\"stages\" must be an array");
      }
      const JsonArray& stages = std::get<JsonArray>(sg->second.v);
      if (stages.size() > e.stages.size()) {
        fail(line_no, "too many stage deltas");
      }
      for (std::size_t i = 0; i < stages.size(); ++i) {
        e.stages[i] =
            static_cast<std::uint64_t>(as_double(stages[i], line_no));
      }
    }
    if (const auto cp = obj.find("cpi"); cp != obj.end()) {
      if (!std::holds_alternative<JsonObject>(cp->second.v)) {
        fail(line_no, "\"cpi\" must be an object");
      }
      const JsonObject& cpi = std::get<JsonObject>(cp->second.v);
      for (std::size_t c = 0; c < kNumCpiCauses; ++c) {
        const auto it = cpi.find(std::string(name(static_cast<CpiCause>(c))));
        if (it != cpi.end()) {
          e.cpi[c] =
              static_cast<std::uint64_t>(as_double(it->second, line_no));
        }
      }
    }
    if (const auto cn = obj.find("contend"); cn != obj.end()) {
      if (!std::holds_alternative<JsonArray>(cn->second.v)) {
        fail(line_no, "\"contend\" must be an array");
      }
      const JsonArray& contend = std::get<JsonArray>(cn->second.v);
      if (contend.size() > e.contend.size()) {
        fail(line_no, "too many contention slots");
      }
      for (std::size_t i = 0; i < contend.size(); ++i) {
        e.contend[i] =
            static_cast<std::uint64_t>(as_double(contend[i], line_no));
      }
    }
    e.label = code_str("label");
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace smt::obs
