// The one trace-event schema every backend serializes.
//
// TraceEvent is a flat, fixed-size POD so the TraceSink ring buffer never
// allocates per event and a sink attached to a hot simulation costs one
// struct copy per record. Kind-specific meaning of the generic fields:
//
//   kind            tid    fields used
//   --------------  -----  ------------------------------------------------
//   kQuantum        -1     span (cycles), value (committed), ipc,
//                          policy_after (active policy), code (guard state),
//                          mask (fault classes injected this quantum)
//   kThreadQuantum  >= 0   span, value (committed), ipc, fetch_share,
//                          mispredict_rate, l1d/l1i_miss_rate, stalls
//   kPolicySwitch   -1     policy_before → policy_after,
//                          code (HeuristicType that decided), ipc (IPC_last)
//   kGuardAction    -1     code (GuardAct), policy_after (policy imposed by
//                          a revert/pin; unused for kHold)
//   kFault          -1     mask (fault::FaultClass bits starting now)
//   kDtStallBegin   -1     —
//   kDtStallEnd     -1     span (cycles the DT slot was stalled)
//   kInvariant      any    code (check::InvariantClass), value (offending
//                          quantity: mismatch mask, excess delta, ...)
//   kPipeview       >= 0   cycle (fetch cycle), value (instruction seq),
//                          span (retire delta), code (PipeTerminal),
//                          mask (PipeFlag bits), stage_delta (per-stage
//                          cycle offsets from fetch; 0 = never reached)
//   kProf           -1     label (phase name), cycle (synthetic start ns
//                          on the profiler's preorder timeline), span
//                          (inclusive host-ns), value (exclusive host-ns),
//                          quantum (call count), code (tree depth)
//   kSwitchAudit    -1     cycle (apply cycle), span (apply − decided),
//                          policy_before → policy_after, code (heuristic),
//                          value (SwitchLabel), mask (AuditFlag bits),
//                          fetch_share (IPC before), ipc (IPC after; null
//                          while unscored), mispredict_rate / l1d_miss_rate
//                          (decision-time machine mispredicts / L1 misses
//                          per cycle), l1i_miss_rate (condition magnitude)
//   kCpiStack       >= 0   span (cycles), value (commit_width), ipc,
//                          cpi (commit slots charged per CpiCause over
//                          the span), stalls (kRobEmpty slots by the
//                          fetch StallCause that starved the window),
//                          contend (kFuContention slots by holder tid)
//
// Rates are per cycle over the event's span, matching the convention of
// pipeline::QuantumRates; fetch_share is the fraction of *all* fetch
// slots (fetch_width × span) the thread's fetched instructions consumed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "obs/cpi_stack.hpp"
#include "obs/stall.hpp"

namespace smt::obs {

enum class EventKind : std::uint8_t {
  kQuantum,        ///< machine-level quantum summary row
  kThreadQuantum,  ///< per-thread quantum snapshot
  kPolicySwitch,   ///< fetch policy changed (ADTS decision landed)
  kGuardAction,    ///< degradation guard intervened
  kFault,          ///< fault injector scheduled events for this quantum
  kDtStallBegin,   ///< detector-thread stall window opened
  kDtStallEnd,     ///< detector-thread stall window closed
  kInvariant,      ///< invariant checker detected a violation (src/check)
  kPipeview,       ///< sampled instruction's full pipeline lifecycle
  kSwitchAudit,    ///< provenance + post-hoc label for an applied switch
  kProf,           ///< host-time phase node (src/prof PhaseProfiler)
  kCpiStack,       ///< per-thread quantum CPI stack (commit-slot account)
};

[[nodiscard]] constexpr std::string_view name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kQuantum: return "quantum";
    case EventKind::kThreadQuantum: return "thread_quantum";
    case EventKind::kPolicySwitch: return "policy_switch";
    case EventKind::kGuardAction: return "guard_action";
    case EventKind::kFault: return "fault";
    case EventKind::kDtStallBegin: return "dt_stall_begin";
    case EventKind::kDtStallEnd: return "dt_stall_end";
    case EventKind::kInvariant: return "invariant";
    case EventKind::kPipeview: return "pipeview";
    case EventKind::kSwitchAudit: return "switch_audit";
    case EventKind::kProf: return "prof";
    case EventKind::kCpiStack: return "cpi_stack";
  }
  return "unknown";
}

/// kGuardAction payload (TraceEvent::code).
enum class GuardAct : std::uint8_t {
  kHold = 1,     ///< guard withheld a switch the heuristic wanted
  kRevert = 2,   ///< watchdog undid a malignant switch
  kPinSafe = 3,  ///< safe-mode entry / dwell pinned the safe policy
};

[[nodiscard]] constexpr std::string_view name(GuardAct a) noexcept {
  switch (a) {
    case GuardAct::kHold: return "hold";
    case GuardAct::kRevert: return "revert";
    case GuardAct::kPinSafe: return "pin_safe";
  }
  return "unknown";
}

/// Pipeview stage slots (TraceEvent::stage_delta indices). The fetch cycle
/// is the event's `cycle`; every slot holds the cycle offset from fetch at
/// which the instruction entered that stage, 0 meaning "never reached"
/// (every real post-fetch stage sits at delta >= 1 because the front end
/// is at least one cycle deep). `kRetire` duplicates `span` so a pipeview
/// row is self-contained.
enum class PipeStage : std::uint8_t {
  kDecode = 0,    ///< entered the decode portion of the front end
  kRename,        ///< rename complete (dispatch-ready)
  kDispatch,      ///< entered an issue queue
  kIssue,         ///< selected by the scheduler, left the queue
  kExecute,       ///< functional unit occupied (same cycle as issue)
  kWriteback,     ///< result written back / completion handled
  kRetire,        ///< committed or squashed (see PipeTerminal)
};
inline constexpr std::size_t kNumPipeStages = 7;

[[nodiscard]] constexpr std::string_view name(PipeStage s) noexcept {
  switch (s) {
    case PipeStage::kDecode: return "decode";
    case PipeStage::kRename: return "rename";
    case PipeStage::kDispatch: return "dispatch";
    case PipeStage::kIssue: return "issue";
    case PipeStage::kExecute: return "execute";
    case PipeStage::kWriteback: return "writeback";
    case PipeStage::kRetire: return "retire";
  }
  return "unknown";
}

/// How a sampled instruction left the window (TraceEvent::code of a
/// kPipeview event). In-flight instructions at the end of a run are never
/// emitted, so every pipeview row carries exactly one terminal.
enum class PipeTerminal : std::uint8_t {
  kCommit = 1,            ///< retired architecturally
  kSquashMispredict = 2,  ///< flushed by a branch-mispredict recovery
  kSquashSyscall = 3,     ///< flushed by a syscall drain
  kSquashSwap = 4,        ///< discarded by a job swap (no replay)
};

[[nodiscard]] constexpr std::string_view name(PipeTerminal t) noexcept {
  switch (t) {
    case PipeTerminal::kCommit: return "commit";
    case PipeTerminal::kSquashMispredict: return "squash_mispredict";
    case PipeTerminal::kSquashSyscall: return "squash_syscall";
    case PipeTerminal::kSquashSwap: return "squash_swap";
  }
  return "unknown";
}

/// kPipeview payload bits (TraceEvent::mask).
enum PipeFlag : std::uint8_t {
  kPipeWrongPath = 1,    ///< fetched down a mispredicted path
  kPipeMispredicted = 2, ///< the instruction itself mispredicted
};

struct TraceEvent {
  EventKind kind = EventKind::kQuantum;
  std::uint64_t cycle = 0;    ///< cycle the event was recorded
  std::uint64_t quantum = 0;  ///< scheduling-quantum index (cycle / quantum)
  std::int32_t tid = -1;      ///< thread scope; -1 = machine scope
  std::uint64_t span = 0;     ///< cycles covered (quantum rows, stall windows)
  std::uint8_t policy_before = 0;  ///< policy::FetchPolicy code
  std::uint8_t policy_after = 0;   ///< policy::FetchPolicy code
  std::uint8_t code = 0;  ///< kind-specific: heuristic / guard state / action
  std::uint8_t mask = 0;  ///< fault::FaultClass bitmask
  std::uint64_t value = 0;          ///< kind-specific count (committed, ...)
  double ipc = 0.0;
  double fetch_share = 0.0;
  double mispredict_rate = 0.0;
  double l1d_miss_rate = 0.0;
  double l1i_miss_rate = 0.0;
  /// Lost fetch slots charged over the span, by cause (kThreadQuantum:
  /// the thread's buckets; kQuantum: the machine fragmentation bucket in
  /// kFragmentation plus DT-consumed slots in `value2`-less form — the
  /// machine row carries only fragmentation, per-thread causes live on
  /// the thread rows).
  std::array<std::uint64_t, kNumStallCauses> stalls{};
  /// kPipeview only: per-stage cycle offsets from the fetch cycle,
  /// indexed by PipeStage; 0 = the stage was never reached.
  std::array<std::uint32_t, kNumPipeStages> stage_delta{};
  /// kProf only: NUL-terminated leaf phase name ("fetch", "detector").
  std::array<char, 16> label{};
  /// kCpiStack only: commit slots charged over the span, by CpiCause.
  std::array<std::uint64_t, kNumCpiCauses> cpi{};
  /// kCpiStack only: kFuContention slots by the co-runner that held the
  /// contended resource (index = holder tid).
  std::array<std::uint64_t, kCpiMaxThreads> contend{};

  [[nodiscard]] std::string_view label_view() const noexcept {
    return {label.data(),
            std::char_traits<char>::length(label.data())};
  }
};

}  // namespace smt::obs
