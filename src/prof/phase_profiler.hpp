// Hierarchical host-time phase profiler.
//
// A PhaseProfiler owns a small tree of named phase nodes ("run" →
// "measured" → "cycle" → "fetch", ...). Instrumented code holds Node
// handles (plain indices, resolved once at attach time) and opens RAII
// Scopes around the region; each Scope costs two host_ticks() reads and
// one accumulate on close. Hot per-cycle call sites additionally stride-
// sample (time 1 of every N cycles) so the enabled-overhead budget of
// DESIGN.md §15 holds even at per-stage granularity.
//
// Accumulation is per node: call count, inclusive ticks, min/max ticks.
// Exclusive time (inclusive minus the children's inclusive, clamped at
// zero) is derived at export. Because every node is only ever opened
// inside its parent's scope, summing exclusive time over the whole tree
// telescopes back to the root's inclusive time — the property
// scripts/check_prof.sh asserts against --stats-json.
//
// Exports:
//   * export_metrics  — prof.<path>.{count,incl_ns,excl_ns,min_ns,max_ns}
//   * write_folded    — "run;measured;cycle;fetch 1234" folded stacks
//                       (speedscope / FlameGraph ingest exclusive ns)
//   * trace_events    — kProf events with synthetic preorder timestamps,
//                       renderable by the Chrome trace backend
//
// Determinism: host ticks flow only into these observability outputs,
// never into simulation state. A profiler-off run takes one predictable
// branch per call site and emits nothing (gate-enforced byte-identity).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "prof/host_clock.hpp"

namespace smt::obs {
class MetricsRegistry;
struct TraceEvent;
}  // namespace smt::obs

namespace smt::prof {

class PhaseProfiler {
 public:
  /// Phase handle: index into the node table. Stable for the profiler's
  /// lifetime, cheap to copy into instrumented components.
  using Node = std::uint32_t;
  static constexpr Node kRoot = 0;

  PhaseProfiler();

  /// Find or create the child of `parent` named `name`. Names must be
  /// non-empty and contain neither '.' nor ';' (they become metric path
  /// segments and folded-stack frames); violations are clamped to '_'.
  Node child(Node parent, std::string_view name);

  /// Account one timed interval of `ticks` host ticks to `n`.
  void add(Node n, std::uint64_t ticks) noexcept;

  /// RAII timed region. A Scope built with a null profiler is inert, so
  /// call sites need no branch of their own.
  class Scope {
   public:
    Scope(PhaseProfiler* p, Node n) noexcept
        : p_(p), n_(n), t0_(p != nullptr ? host_ticks() : 0) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (p_ != nullptr) p_->add(n_, host_ticks() - t0_);
    }

   private:
    PhaseProfiler* p_;
    Node n_;
    std::uint64_t t0_;
  };

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::string_view name(Node n) const {
    return nodes_[n].name;
  }
  [[nodiscard]] Node parent(Node n) const { return nodes_[n].parent; }
  [[nodiscard]] std::uint64_t count(Node n) const { return nodes_[n].count; }
  [[nodiscard]] std::uint64_t inclusive_ticks(Node n) const {
    return nodes_[n].incl_ticks;
  }
  [[nodiscard]] std::uint64_t min_ticks(Node n) const;  ///< 0 when unvisited
  [[nodiscard]] std::uint64_t max_ticks(Node n) const {
    return nodes_[n].max_ticks;
  }
  /// Inclusive minus the sum of the children's inclusive, clamped at 0
  /// (clock jitter can make a child read marginally longer than its
  /// parent; a negative exclusive would break the telescoping-sum
  /// property downstream tools rely on).
  [[nodiscard]] std::uint64_t exclusive_ticks(Node n) const;

  /// Root-to-node path, segments joined by `sep` ("run;measured;cycle").
  [[nodiscard]] std::string path(Node n, char sep) const;

  /// prof.<dotted path>.{count,incl_ns,excl_ns,min_ns,max_ns} for every
  /// visited node, plus prof.ticks_per_ns.
  void export_metrics(obs::MetricsRegistry& reg) const;

  /// Folded stacks, one visited node per line: "<path;...> <exclusive
  /// ns>\n", preorder. Loadable as-is by speedscope and flamegraph.pl.
  void write_folded(std::ostream& os) const;

  /// One kProf TraceEvent per visited node, preorder, with synthetic
  /// nesting timestamps: cycle = start ns, span = inclusive ns, value =
  /// exclusive ns, quantum = call count, code = depth, label = phase
  /// name. Children of a node start where the previous sibling ended, so
  /// the Chrome backend renders a well-nested flame chart.
  [[nodiscard]] std::vector<obs::TraceEvent> trace_events() const;

 private:
  struct NodeData {
    std::string name;
    Node parent = 0;
    std::vector<Node> children;
    std::uint64_t count = 0;
    std::uint64_t incl_ticks = 0;
    std::uint64_t min_ticks = ~std::uint64_t{0};
    std::uint64_t max_ticks = 0;
  };

  std::vector<NodeData> nodes_;
};

}  // namespace smt::prof
