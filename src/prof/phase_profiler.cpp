#include "prof/phase_profiler.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"

namespace smt::prof {

namespace {

/// Metric path segments and folded frames use '.' and ';' as structure.
std::string sanitize(std::string_view name) {
  std::string out(name.empty() ? std::string_view("_") : name);
  for (char& c : out) {
    if (c == '.' || c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return out;
}

}  // namespace

PhaseProfiler::PhaseProfiler() {
  NodeData root;
  root.name = "run";
  root.parent = kRoot;
  nodes_.push_back(std::move(root));
}

PhaseProfiler::Node PhaseProfiler::child(Node parent, std::string_view name) {
  const std::string clean = sanitize(name);
  for (const Node c : nodes_[parent].children) {
    if (nodes_[c].name == clean) return c;
  }
  const Node id = static_cast<Node>(nodes_.size());
  NodeData n;
  n.name = clean;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

void PhaseProfiler::add(Node n, std::uint64_t ticks) noexcept {
  NodeData& d = nodes_[n];
  ++d.count;
  d.incl_ticks += ticks;
  d.min_ticks = std::min(d.min_ticks, ticks);
  d.max_ticks = std::max(d.max_ticks, ticks);
}

std::uint64_t PhaseProfiler::min_ticks(Node n) const {
  const NodeData& d = nodes_[n];
  return d.count == 0 ? 0 : d.min_ticks;
}

std::uint64_t PhaseProfiler::exclusive_ticks(Node n) const {
  const NodeData& d = nodes_[n];
  std::uint64_t kids = 0;
  for (const Node c : d.children) kids += nodes_[c].incl_ticks;
  return kids >= d.incl_ticks ? 0 : d.incl_ticks - kids;
}

std::string PhaseProfiler::path(Node n, char sep) const {
  std::vector<std::string_view> segs;
  Node cur = n;
  for (;;) {
    segs.push_back(nodes_[cur].name);
    if (cur == kRoot) break;
    cur = nodes_[cur].parent;
  }
  std::string out;
  for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
    if (!out.empty()) out += sep;
    out += *it;
  }
  return out;
}

void PhaseProfiler::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("prof.ticks_per_ns", ticks_per_ns());
  for (Node n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].count == 0) continue;
    const std::string base = "prof." + path(n, '.') + '.';
    reg.set(base + "count", nodes_[n].count);
    reg.set(base + "incl_ns", ticks_to_ns(nodes_[n].incl_ticks));
    reg.set(base + "excl_ns", ticks_to_ns(exclusive_ticks(n)));
    reg.set(base + "min_ns", ticks_to_ns(min_ticks(n)));
    reg.set(base + "max_ns", ticks_to_ns(nodes_[n].max_ticks));
  }
}

void PhaseProfiler::write_folded(std::ostream& os) const {
  // Preorder via an explicit stack keeps sibling order stable (creation
  // order), which makes the output deterministic for a given tree shape.
  std::vector<Node> stack{kRoot};
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    const NodeData& d = nodes_[n];
    for (auto it = d.children.rbegin(); it != d.children.rend(); ++it) {
      stack.push_back(*it);
    }
    if (d.count == 0) continue;
    os << path(n, ';') << ' ' << ticks_to_ns(exclusive_ticks(n)) << '\n';
  }
}

std::vector<obs::TraceEvent> PhaseProfiler::trace_events() const {
  std::vector<obs::TraceEvent> out;
  // start_ns[n] = synthetic timeline position; children are laid out
  // back-to-back from the parent's start so spans nest.
  std::vector<std::uint64_t> start_ns(nodes_.size(), 0);
  std::vector<std::uint8_t> depth(nodes_.size(), 0);
  std::vector<Node> stack{kRoot};
  while (!stack.empty()) {
    const Node n = stack.back();
    stack.pop_back();
    const NodeData& d = nodes_[n];
    std::uint64_t cursor = start_ns[n];
    for (const Node c : d.children) {
      start_ns[c] = cursor;
      depth[c] = static_cast<std::uint8_t>(depth[n] + 1);
      cursor += ticks_to_ns(nodes_[c].incl_ticks);
    }
    for (auto it = d.children.rbegin(); it != d.children.rend(); ++it) {
      stack.push_back(*it);
    }
    if (d.count == 0) continue;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kProf;
    e.cycle = start_ns[n];
    e.span = ticks_to_ns(d.incl_ticks);
    e.value = ticks_to_ns(exclusive_ticks(n));
    e.quantum = d.count;
    e.code = depth[n];
    e.tid = -1;
    const std::size_t len = std::min(d.name.size(), e.label.size() - 1);
    std::memcpy(e.label.data(), d.name.data(), len);
    out.push_back(e);
  }
  return out;
}

}  // namespace smt::prof
