// The one host-time source in the library: a raw monotonic tick counter
// plus a once-calibrated tick→nanosecond conversion.
//
// Everything under src/ outside tools/ is fenced from ambient clocks by
// scripts/check_lint.sh so simulated behaviour can never depend on host
// time. Profiling needs host time by definition, so this file is the
// single allowlisted exception: it reads the TSC (or steady_clock on
// non-x86 hosts) and nothing else in the library touches a clock
// directly. Host ticks flow only into prof.* observability output —
// never into simulation state — which keeps the determinism contract
// intact (see DESIGN.md §15).
#pragma once

#include <cstdint>

namespace smt::prof {

/// Raw monotonic host ticks. On x86-64 this is one `rdtsc` (~10 cycles,
/// no serialization — phase timers want low overhead more than exact
/// instruction attribution); elsewhere it falls back to steady_clock
/// nanoseconds. Only differences between two readings are meaningful.
std::uint64_t host_ticks() noexcept;

/// Ticks per nanosecond, calibrated once per process against a ~2 ms
/// steady_clock interval on first use (thread-safe; subsequent calls are
/// a load). Always > 0; exactly 1.0 on the steady_clock fallback.
double ticks_per_ns() noexcept;

/// Convert a tick delta to nanoseconds using the calibrated rate.
std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept;

}  // namespace smt::prof
