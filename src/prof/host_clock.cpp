#include "prof/host_clock.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define SMT_PROF_HAVE_RDTSC 1
#endif

namespace smt::prof {

namespace {

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#ifdef SMT_PROF_HAVE_RDTSC
/// Measure TSC ticks across a ~2 ms steady_clock window. Modern x86-64
/// TSCs are invariant (constant rate, survive frequency scaling), so a
/// single short calibration holds for the process lifetime; 2 ms keeps
/// the quantization error of the two clock reads well under 0.1%.
double calibrate_ticks_per_ns() noexcept {
  const std::uint64_t t0 = __rdtsc();
  const std::uint64_t ns0 = steady_ns();
  std::uint64_t ns1 = ns0;
  while (ns1 - ns0 < 2'000'000) ns1 = steady_ns();
  const std::uint64_t t1 = __rdtsc();
  const double rate =
      static_cast<double>(t1 - t0) / static_cast<double>(ns1 - ns0);
  return rate > 0.0 ? rate : 1.0;
}
#endif

}  // namespace

std::uint64_t host_ticks() noexcept {
#ifdef SMT_PROF_HAVE_RDTSC
  return __rdtsc();
#else
  return steady_ns();
#endif
}

double ticks_per_ns() noexcept {
#ifdef SMT_PROF_HAVE_RDTSC
  static const double rate = calibrate_ticks_per_ns();
  return rate;
#else
  return 1.0;
#endif
}

std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) /
                                    ticks_per_ns());
}

}  // namespace smt::prof
