// Process exit codes of the command-line tools (smtsim, smtfleetd).
//
// Centralised so the scripts under scripts/ and the CI workflow can match
// on stable numbers; documented in `smtsim --help` and `smtfleetd --help`.
// Codes 2/3 mirror the UsageError/ConfigError split of common/cli.hpp; 1
// is left to uncaught crashes so a wrapper can tell "rejected input" from
// "tool bug". The fleet supervisor's crash/cancel classification
// (src/fleet/scheduler.hpp) is built on these numbers.
#pragma once

namespace smt {

inline constexpr int kExitOk = 0;
/// Unknown or malformed option (common::UsageError).
inline constexpr int kExitUsage = 2;
/// Syntactically valid option with an invalid value (common::ConfigError).
inline constexpr int kExitConfig = 3;
/// The run completed but the invariant checker recorded violations
/// (src/check; enabled with --check or SMT_CHECK=1).
inline constexpr int kExitCheck = 4;
/// Graceful cancellation on SIGTERM/SIGINT: outputs were flushed but the
/// work is incomplete. smtsim: the run stopped early with --stats-json /
/// --trace written; smtfleetd: the batch drained with jobs still queued.
/// Distinct from a signal death so supervisors can tell "asked to stop"
/// from "crashed".
inline constexpr int kExitCancelled = 5;
/// smtfleetd: the batch settled, but at least one job failed permanently
/// (retries exhausted or a deterministic worker error). The journal holds
/// a per-job failure record.
inline constexpr int kExitBatchFailed = 6;

}  // namespace smt
