// Process exit codes of the command-line tools (smtsim).
//
// Centralised so the scripts under scripts/ and the CI workflow can match
// on stable numbers; documented in `smtsim --help`. Codes 2/3 mirror the
// UsageError/ConfigError split of common/cli.hpp; 1 is left to uncaught
// crashes so a wrapper can tell "rejected input" from "tool bug".
#pragma once

namespace smt {

inline constexpr int kExitOk = 0;
/// Unknown or malformed option (common::UsageError).
inline constexpr int kExitUsage = 2;
/// Syntactically valid option with an invalid value (common::ConfigError).
inline constexpr int kExitConfig = 3;
/// The run completed but the invariant checker recorded violations
/// (src/check; enabled with --check or SMT_CHECK=1).
inline constexpr int kExitCheck = 4;

}  // namespace smt
