#include "common/build_info.hpp"

// The configure-time stamps arrive as compile definitions on this one
// translation unit (see src/CMakeLists.txt); the fallbacks keep the file
// buildable standalone (tooling, IDE indexers).
#ifndef SMT_VERSION
#define SMT_VERSION "unknown"
#endif
#ifndef SMT_GIT_SHA
#define SMT_GIT_SHA "unknown"
#endif
#ifndef SMT_BUILD_FLAGS
#define SMT_BUILD_FLAGS "unknown"
#endif

namespace smt {

namespace {

#if defined(__clang__)
constexpr char kCompiler[] = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr char kCompiler[] = "gcc " __VERSION__;
#else
constexpr char kCompiler[] = "unknown";
#endif

}  // namespace

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo kInfo{SMT_VERSION, SMT_GIT_SHA, kCompiler,
                                   SMT_BUILD_FLAGS};
  return kInfo;
}

}  // namespace smt
