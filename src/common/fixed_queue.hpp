// Fixed-capacity circular queue.
//
// The pipeline's per-thread structures (fetch buffer, ROB, LSQ) are all
// bounded by the machine configuration and live on the hot path, so they
// use this allocation-free ring buffer instead of std::deque. Capacity is
// a runtime construction parameter (machine config), storage is a single
// std::vector sized once; the container is value-semantic so simulator
// snapshots copy it correctly.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace smt {

template <typename T>
class FixedQueue {
 public:
  FixedQueue() = default;

  explicit FixedQueue(std::size_t capacity)
      : storage_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == storage_.size(); }

  /// Push to the tail. Precondition: !full().
  void push_back(T value) {
    assert(!full());
    storage_[index(size_)] = std::move(value);
    ++size_;
  }

  /// Pop from the head. Precondition: !empty().
  T pop_front() {
    assert(!empty());
    T value = std::move(storage_[head_]);
    ++head_;
    if (head_ == storage_.size()) head_ = 0;
    --size_;
    return value;
  }

  /// Drop the newest element (used when squashing wrong-path instructions
  /// from the tail of a ROB). Precondition: !empty().
  void pop_back() {
    assert(!empty());
    --size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return storage_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return storage_[head_];
  }

  [[nodiscard]] T& back() {
    assert(!empty());
    return storage_[index(size_ - 1)];
  }
  [[nodiscard]] const T& back() const {
    assert(!empty());
    return storage_[index(size_ - 1)];
  }

  /// i == 0 is the head (oldest).
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return storage_[index(i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return storage_[index(i)];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  // head_ < capacity and logical <= size_ <= capacity, so head_ + logical
  // wraps at most once — a compare-and-subtract beats the integer divide
  // the % operator costs on every window access (this indexing is the
  // pipeline's single hottest operation).
  [[nodiscard]] std::size_t index(std::size_t logical) const noexcept {
    const std::size_t i = head_ + logical;
    return i >= storage_.size() ? i - storage_.size() : i;
  }

  std::vector<T> storage_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace smt
