// Small statistics helpers used by the pipeline counters, the sampling
// driver and the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace smt {

/// Streaming mean / variance / min / max (Welford's algorithm).
/// Value-semantic and mergeable so per-interval statistics can be
/// combined by the sampling driver.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator into this one (Chan et al. pairwise form).
  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// Extrema of an empty accumulator are NaN, not 0.0: a fake zero would
  /// be indistinguishable from a real observed 0.0 in exported metrics
  /// (obs::MetricsRegistry serializes NaN as JSON null).
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Used for occupancy / latency distributions in tests and
/// the ablation benches.
class Histogram {
 public:
  Histogram() : Histogram(0.0, 1.0, 1) {}

  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

  void add(double x) noexcept {
    const auto b = bucket_of(x);
    ++counts_[b];
    ++total_;
  }

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::size_t b) const noexcept {
    return counts_[b];
  }
  [[nodiscard]] double fraction(std::size_t b) const noexcept {
    return total_ ? static_cast<double>(counts_[b]) / static_cast<double>(total_)
                  : 0.0;
  }

  /// Lower edge of bucket b.
  [[nodiscard]] double edge(std::size_t b) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                     static_cast<double>(counts_.size());
  }

 private:
  [[nodiscard]] std::size_t bucket_of(double x) const noexcept {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    const double f = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
    return std::min(b, counts_.size() - 1);
  }

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Geometric mean of a sample; the conventional aggregate for per-mix IPC
/// ratios (speedups). Returns 0 for an empty sample, and ignores
/// non-positive entries (which would make the log undefined).
[[nodiscard]] double geomean(const std::vector<double>& xs);

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(const std::vector<double>& xs);

}  // namespace smt
