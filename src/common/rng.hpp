// Deterministic random number generation for the simulator.
//
// Everything in the simulator that needs randomness draws from an explicit
// Rng instance seeded from the run configuration, never from global state.
// This is what makes simulator snapshots exact: copying a component copies
// its RNG stream, so a copied simulator replays identically — the property
// the oracle scheduler (sim/oracle.hpp) relies on.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend. It is small (4 x u64, trivially
// copyable), fast, and of far higher quality than the simulator needs.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <limits>

namespace smt {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro state, and available directly for cheap hash-like mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot 64-bit mixer; handy for deriving per-thread / per-site seeds
/// from a master seed without correlation between the streams.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** pseudo-random generator.
///
/// Value-semantic: copying an Rng copies the stream position. Satisfies
/// the UniformRandomBitGenerator concept so it can be used with <random>
/// distributions, though the member helpers below cover the simulator's
/// needs without the libstdc++ distribution objects (whose state is not
/// guaranteed portable across implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() : Rng(0xdeadbeefcafef00dULL) {}

  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Raw 64 random bits.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  /// Uses Lemire's multiply-shift reduction (bias is negligible for the
  /// bounds the simulator uses, all far below 2^32).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric distribution on {1, 2, ...} with mean `mean` (mean >= 1).
  /// Used for register-dependency distances in the workload generator.
  std::uint64_t geometric(double mean) noexcept {
    if (mean <= 1.0) return 1;
    const double p = 1.0 / mean;
    std::uint64_t k = 1;
    // Direct inversion would need a log(); the workload generator calls
    // this with small means, so trial-based sampling is cheaper and
    // branch-predictable.
    while (!chance(p) && k < 64) ++k;
    return k;
  }

  /// Zipf-like pick over n items: item i chosen with weight 1/(i+1)^s.
  /// Cheap approximate sampler (rejection over the harmonic envelope);
  /// used to pick hot branch sites / hot cache lines.
  std::uint64_t zipf(std::uint64_t n, double s = 1.0) noexcept {
    if (n <= 1) return 0;
    // Inverse-power transform of a uniform variate: biased toward 0 in a
    // Zipf-ish way, adequate for locality modelling (we need skew, not a
    // mathematically exact Zipf law).
    const double u = uniform();
    const double x = 1.0 - u;  // avoid pow(0, ...)
    const double skew = 1.0 / (1.0 + s);
    const auto idx =
        static_cast<std::uint64_t>((1.0 - std::pow(x, skew)) * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  /// Derive an independent child stream. Consumes one draw from this
  /// stream and mixes in `salt` so the children of consecutive calls and
  /// the children of equal salts are decorrelated.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    return Rng(mix64(next() ^ mix64(salt * 0x9e3779b97f4a7c15ULL + 1)));
  }

  friend bool operator==(const Rng& a, const Rng& b) noexcept {
    return a.state_ == b.state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Build a named sub-stream of a master seed. Every component of the
/// simulator gets its stream as make_stream(seed, {kComponentTag, index,
/// ...}), so adding a component never perturbs the streams of existing
/// ones (no draw-order coupling between components).
[[nodiscard]] Rng make_stream(std::uint64_t master_seed,
                              std::initializer_list<std::uint64_t> path);

}  // namespace smt
