// Build provenance: which binary produced an artifact.
//
// Every trace and --stats-json document is stamped with the version, git
// commit, compiler and build flags of the producing binary (plus the
// run's seed and a config digest) so results can always be traced back
// to the exact code and configuration that made them. The git sha and
// flags are captured at CMake configure time and injected as compile
// definitions on build_info.cpp only — touching other sources never
// rebuilds the world, and a rebuilt checkout refreshes the stamp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace smt {

struct BuildInfo {
  std::string_view version;   ///< project version (CMake PROJECT_VERSION)
  std::string_view git_sha;   ///< configure-time commit ("unknown" outside git)
  std::string_view compiler;  ///< compiling toolchain, e.g. "gcc 13.2.0"
  std::string_view flags;     ///< build type + optimization/sanitizer flags
};

[[nodiscard]] const BuildInfo& build_info() noexcept;

/// Incremental FNV-1a over trivially-copyable values — the digest that
/// fingerprints a resolved configuration. Byte-order dependent, which is
/// fine: the digest compares runs, it is not an interchange format.
class Fnv1a {
 public:
  void mix_bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }

  template <typename T>
  void mix(const T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>,
                  "digest only trivially-copyable values");
    mix_bytes(&v, sizeof v);
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace smt
