// Minimal command-line option parser for the tools and examples.
//
// Supports --key=value, --key value, and bare --flag forms; collects
// positional arguments; reports unknown keys. No external dependencies,
// value-semantic, and strict (throws on malformed input) so tools fail
// loudly instead of silently ignoring a typo'd option.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace smt {

/// Malformed command line: unknown option, or a value that does not parse
/// as the requested type. Tools map this to exit code 2 (usage error),
/// distinct from semantically invalid configurations (exit code 3) —
/// scripts can tell a typo from an out-of-range parameter.
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// A structurally valid option with a semantically invalid value
/// (out-of-range thread count, non-positive threshold, unknown mix name).
/// Tools map this to exit code 3.
struct ConfigError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

class CliArgs {
 public:
  /// Parse argv. `known_keys` lists every accepted --key; an argument
  /// with an unknown key throws std::invalid_argument. Keys also listed
  /// in `flag_keys` take no value, so "--flag positional" keeps the
  /// positional argument (otherwise "--key value" consumes it).
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_keys,
          std::vector<std::string> flag_keys = {});

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of --key; empty for bare flags; nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Split a comma-separated list ("gzip,mcf,swim") into tokens; empty
/// tokens are dropped.
[[nodiscard]] std::vector<std::string> split_list(const std::string& csv);

}  // namespace smt
