#include "common/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace smt {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_keys,
                 std::vector<std::string> flag_keys) {
  if (argc > 0) program_ = argv[0];
  auto known = [&known_keys](const std::string& k) {
    return std::find(known_keys.begin(), known_keys.end(), k) !=
           known_keys.end();
  };
  auto is_flag = [&flag_keys](const std::string& k) {
    return std::find(flag_keys.begin(), flag_keys.end(), k) !=
           flag_keys.end();
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      // --key value form: consume the next token when this key takes a
      // value and the token is not itself an option.
      if (!is_flag(key) && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
    }
    if (!known(key)) {
      throw UsageError("unknown option --" + key);
    }
    values_[key] = value;
  }
}

bool CliArgs::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            std::string fallback) const {
  const auto v = get(key);
  return v.has_value() ? *v : std::move(fallback);
}

std::uint64_t CliArgs::get_u64(const std::string& key,
                               std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (v->empty()) {
    throw UsageError("--" + key + " expects an integer, got an empty value");
  }
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw UsageError("--" + key + " expects an integer, got '" +
                                *v + "'");
  }
  return out;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (v->empty()) {
    throw UsageError("--" + key + " expects a number, got an empty value");
  }
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw UsageError("--" + key + " expects a number, got '" +
                                *v + "'");
  }
  return out;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") {
    return true;
  }
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  throw UsageError("--" + key + " expects a boolean, got '" + *v +
                              "'");
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace smt
