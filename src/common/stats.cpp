#include "common/stats.hpp"

#include <cmath>

namespace smt {

double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace smt
