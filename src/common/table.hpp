// Plain-text table printer for the benchmark harnesses.
//
// Every figure/table reproduction bench prints its series through this so
// the output is aligned, diff-able, and optionally machine-readable (CSV).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace smt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; it may have fewer cells than there are headers (the
  /// remainder prints blank) but not more.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Render with aligned columns and a header underline.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Figure 7a: ... ==") used between the
/// sub-plots of a multi-panel figure bench.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace smt
