#include "common/rng.hpp"

namespace smt {

Rng make_stream(std::uint64_t master_seed,
                std::initializer_list<std::uint64_t> path) {
  std::uint64_t acc = mix64(master_seed);
  for (std::uint64_t component : path) {
    // Feed each path component through the mixer with a distinct odd
    // multiplier so {1, 2} and {2, 1} land on different streams.
    acc = mix64(acc * 0xd1342543de82ef95ULL + component + 1);
  }
  return Rng(acc);
}

}  // namespace smt
