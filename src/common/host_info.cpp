#include "common/host_info.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>

namespace smt {

namespace {

std::string read_cpu_model() {
  // First "model name" line of /proc/cpuinfo (Linux). Absent (non-Linux,
  // restricted /proc, some ARM kernels) degrades to "unknown" rather
  // than failing: provenance is best-effort, never load-bearing.
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) break;
    std::size_t start = colon + 1;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) {
      ++start;
    }
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (start < line.size()) return line.substr(start);
    break;
  }
  return "unknown";
}

/// SMT_JOBS resolved with the same rules as par::default_jobs() (positive
/// integer, clamped to par::kMaxJobs = 64, else 1). Re-implemented here
/// because common sits below par in the library layering.
std::size_t read_smt_jobs() {
  const char* env = std::getenv("SMT_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(v), 64);
}

HostInfo gather() {
  HostInfo info;
  info.cpu_model = read_cpu_model();
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  info.cores = n > 0 ? static_cast<unsigned>(n) : 0;
  info.smt_jobs = read_smt_jobs();
  return info;
}

}  // namespace

const HostInfo& host_info() {
  static const HostInfo info = gather();
  return info;
}

}  // namespace smt
