// Host provenance: which machine produced a run.
//
// BENCH documents and traces from different hosts are only comparable
// when they say what they ran on, so the CPU model, core count and the
// resolved SMT_JOBS value are stamped into the build_info trace header
// and the run.* stats-JSON block. All values are fixed for the process
// lifetime and read once; none of them feed back into simulation state,
// so determinism on a given host is unaffected (the bench-suite strip
// list drops them before byte-comparing across regenerations).
#pragma once

#include <string>

namespace smt {

struct HostInfo {
  std::string cpu_model;   ///< "model name" from /proc/cpuinfo, or "unknown"
  unsigned cores = 0;      ///< online host cores (0 when undeterminable)
  std::size_t smt_jobs = 0;  ///< par::default_jobs() — resolved SMT_JOBS
};

/// Gathered once on first call, then cached for the process lifetime.
const HostInfo& host_info();

}  // namespace smt
