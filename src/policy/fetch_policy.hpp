// The ten fetch policies of Table 1.
//
// Every policy is a priority ordering over the per-thread hardware status
// counters: each cycle the thread selection unit (TSU) sorts the runnable
// threads by the policy's key (lower key = higher fetch priority) and
// fetches from the top two (ICOUNT.2.8). Keeping policies as pure key
// functions mirrors the paper's hardware split — fixed counters + fixed
// TSU, programmable priority array in between — and is what lets the
// detector thread swap policies with a single register write.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pipeline/counters.hpp"

namespace smt::policy {

/// Table 1 of the paper.
enum class FetchPolicy : std::uint8_t {
  kIcount,        ///< fewest instructions in decode/rename/IQ (Tullsen's best)
  kBrcount,       ///< fewest unresolved branches in the pipeline
  kLdcount,       ///< fewest loads in the pipeline
  kMemcount,      ///< fewest memory accesses in the pipeline
  kL1MissCount,   ///< fewest outstanding L1 (I+D) misses
  kL1IMissCount,  ///< fewest outstanding L1 I-cache misses
  kL1DMissCount,  ///< fewest outstanding L1 D-cache misses
  kAccIpc,        ///< highest accumulated IPC first
  kStallCount,    ///< fewest stalls incurred (this quantum)
  kRoundRobin,    ///< rotate priority each cycle
};

inline constexpr int kNumFetchPolicies = 10;

[[nodiscard]] std::string_view name(FetchPolicy p) noexcept;

/// Parse a policy name (as printed by name()); throws std::out_of_range.
[[nodiscard]] FetchPolicy parse_policy(std::string_view s);

/// All ten policies in enum order.
[[nodiscard]] const std::vector<FetchPolicy>& all_policies();

/// Priority key of thread `tid` under `p`; lower = fetch first.
/// `cycle` feeds the round-robin rotation. Keys are comparable only
/// within one cycle and one policy.
[[nodiscard]] double priority_key(FetchPolicy p,
                                  const pipeline::ThreadCounters& c,
                                  std::uint32_t tid, std::uint32_t num_threads,
                                  std::uint64_t cycle) noexcept;

}  // namespace smt::policy
