#include "policy/fetch_policy.hpp"

#include <stdexcept>

#include "pipeline/counters.hpp"

namespace smt::policy {

std::string_view name(FetchPolicy p) noexcept {
  switch (p) {
    case FetchPolicy::kIcount: return "ICOUNT";
    case FetchPolicy::kBrcount: return "BRCOUNT";
    case FetchPolicy::kLdcount: return "LDCOUNT";
    case FetchPolicy::kMemcount: return "MEMCOUNT";
    case FetchPolicy::kL1MissCount: return "L1MISSCOUNT";
    case FetchPolicy::kL1IMissCount: return "L1IMISSCOUNT";
    case FetchPolicy::kL1DMissCount: return "L1DMISSCOUNT";
    case FetchPolicy::kAccIpc: return "ACCIPC";
    case FetchPolicy::kStallCount: return "STALLCOUNT";
    case FetchPolicy::kRoundRobin: return "RR";
  }
  return "?";
}

FetchPolicy parse_policy(std::string_view s) {
  for (FetchPolicy p : all_policies()) {
    if (name(p) == s) return p;
  }
  throw std::out_of_range("unknown fetch policy: " + std::string(s));
}

const std::vector<FetchPolicy>& all_policies() {
  static const std::vector<FetchPolicy> ps = {
      FetchPolicy::kIcount,       FetchPolicy::kBrcount,
      FetchPolicy::kLdcount,      FetchPolicy::kMemcount,
      FetchPolicy::kL1MissCount,  FetchPolicy::kL1IMissCount,
      FetchPolicy::kL1DMissCount, FetchPolicy::kAccIpc,
      FetchPolicy::kStallCount,   FetchPolicy::kRoundRobin,
  };
  return ps;
}

double priority_key(FetchPolicy p, const pipeline::ThreadCounters& c,
                    std::uint32_t tid, std::uint32_t num_threads,
                    std::uint64_t cycle) noexcept {
  switch (p) {
    case FetchPolicy::kIcount:
      return c.icount;
    case FetchPolicy::kBrcount:
      return c.brcount;
    case FetchPolicy::kLdcount:
      return c.ldcount;
    case FetchPolicy::kMemcount:
      return c.memcount;
    case FetchPolicy::kL1MissCount:
      return c.l1_outstanding();
    case FetchPolicy::kL1IMissCount:
      return c.l1i_outstanding;
    case FetchPolicy::kL1DMissCount:
      return c.l1d_outstanding;
    case FetchPolicy::kAccIpc:
      // Higher accumulated IPC drains the pipeline faster → fetch first.
      return -c.acc_ipc();
    case FetchPolicy::kStallCount:
      return static_cast<double>(c.stalls_quantum);
    case FetchPolicy::kRoundRobin: {
      if (num_threads == 0) return 0.0;
      // Rotating offset: the thread whose turn it is gets key 0.
      const std::uint64_t lead = cycle % num_threads;
      return static_cast<double>((tid + num_threads -
                                  static_cast<std::uint32_t>(lead)) %
                                 num_threads);
    }
  }
  return 0.0;
}

}  // namespace smt::policy
