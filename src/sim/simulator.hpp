// Simulator facade: machine + workload + (optionally) the ADTS detector
// thread, behind one value-semantic object.
//
// Copying a Simulator snapshots everything — microarchitectural state,
// workload generator positions, detector-thread state — so a copy resumes
// exactly where the original was. The oracle scheduler (sim/oracle.hpp)
// and the quantum-rerun tests are built on this property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"
#include "workload/mix.hpp"

namespace smt::sim {

struct SimConfig {
  pipeline::PipelineConfig machine{};
  /// Application profile names, one per hardware context (≤ 8).
  std::vector<std::string> apps;
  /// Master workload seed; intervals of a sampled run vary this.
  std::uint64_t workload_seed = 1;

  /// Fixed fetch policy used when ADTS is disabled (and as the ADTS
  /// initial/default policy).
  policy::FetchPolicy fixed_policy = policy::FetchPolicy::kIcount;

  bool use_adts = false;
  core::AdtsConfig adts{};
};

/// Build a SimConfig for a named mix at a given thread count.
[[nodiscard]] SimConfig make_config(const workload::Mix& mix,
                                    std::size_t threads,
                                    std::uint64_t workload_seed);

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  Simulator(const Simulator&) = default;
  Simulator(Simulator&&) = default;
  Simulator& operator=(const Simulator&) = default;
  Simulator& operator=(Simulator&&) = default;

  void step();
  void run(std::uint64_t cycles);

  [[nodiscard]] pipeline::Pipeline& pipeline() noexcept { return pipe_; }
  [[nodiscard]] const pipeline::Pipeline& pipeline() const noexcept {
    return pipe_;
  }
  [[nodiscard]] const core::DetectorThread& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] bool adts_enabled() const noexcept { return use_adts_; }

  /// Suspend / resume the detector thread. Resuming re-baselines the
  /// detector (DetectorThread::arm) and resets quantum counters so the
  /// first observed quantum is clean. The sampling driver uses this to
  /// keep warm-up transients (cold caches ⇒ artificially low IPC ⇒
  /// spurious cold-start policy switches) out of ADTS's view.
  void set_adts_active(bool active);
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] std::uint64_t now() const noexcept { return pipe_.now(); }
  [[nodiscard]] std::uint64_t committed() const noexcept {
    return pipe_.committed_total();
  }
  [[nodiscard]] double ipc() const noexcept { return pipe_.stats().ipc(); }

 private:
  SimConfig cfg_;
  pipeline::Pipeline pipe_;
  core::DetectorThread detector_;
  bool use_adts_ = false;
};

}  // namespace smt::sim
