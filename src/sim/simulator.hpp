// Simulator facade: machine + workload + (optionally) the ADTS detector
// thread, behind one value-semantic object.
//
// Copying a Simulator snapshots everything — microarchitectural state,
// workload generator positions, detector-thread state — so a copy resumes
// exactly where the original was. The oracle scheduler (sim/oracle.hpp)
// and the quantum-rerun tests are built on this property.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/detector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/trace_sink.hpp"
#include "pipeline/config.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"
#include "prof/phase_profiler.hpp"
#include "workload/mix.hpp"

namespace smt::sim {

struct SimConfig {
  pipeline::PipelineConfig machine{};
  /// Application profile names, one per hardware context (≤ 8).
  std::vector<std::string> apps;
  /// Master workload seed; intervals of a sampled run vary this.
  std::uint64_t workload_seed = 1;

  /// Fixed fetch policy used when ADTS is disabled (and as the ADTS
  /// initial/default policy).
  policy::FetchPolicy fixed_policy = policy::FetchPolicy::kIcount;

  bool use_adts = false;
  core::AdtsConfig adts{};

  /// Fault injection (src/fault/): disabled by default. The injector is
  /// aligned to the ADTS quantum so counter faults hit whole detector
  /// observations.
  fault::FaultConfig fault{};

  /// Runtime invariant checking (src/check/): kAuto defers to the
  /// SMT_CHECK environment variable, which the SMT_CHECK CMake option
  /// sets for every ctest run — so tests check by default while release
  /// binaries stay unchecked unless asked (--check).
  check::CheckMode check = check::CheckMode::kAuto;

  /// Pipeview sampling windows (--pipeview N@CYCLE): active only while a
  /// trace sink is attached; empty = no lifecycle sampling.
  std::vector<pipeline::PipeviewWindow> pipeview;

  /// Per-slot commit-loss accounting (--cpi): charges every commit slot
  /// of every cycle to one CpiCause per thread, exports cpi.* stats keys
  /// and per-quantum kCpiStack trace rows. Observation-only — the
  /// simulated machine is bit-identical with accounting on or off — and
  /// deliberately NOT part of config_digest, like check/prof.
  bool cpi = false;
};

/// FNV-1a fingerprint of the knobs that determine a run's results (machine
/// geometry, workload, policy/ADTS/fault/pipeview settings). Stamped into
/// every trace and stats document (run.config_digest) so two artifacts can
/// be checked for configuration identity without replaying either.
[[nodiscard]] std::uint64_t config_digest(const SimConfig& cfg) noexcept;

/// Enum-code → display-name callbacks for the trace writers, wired to the
/// real policy / heuristic / guard-state / fault-mask names (the obs layer
/// sits below policy and core, so it only stores codes).
[[nodiscard]] obs::TraceDecoder trace_decoder() noexcept;

/// Build a SimConfig for a named mix at a given thread count.
[[nodiscard]] SimConfig make_config(const workload::Mix& mix,
                                    std::size_t threads,
                                    std::uint64_t workload_seed);

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  // Copies drop the trace sink: the oracle re-runs copied simulators over
  // quanta already recorded by the original, and a shared sink would
  // record every such re-run as if it happened once. The copy keeps full
  // microarchitectural state and stays silent; re-attach explicitly to
  // trace it.
  Simulator(const Simulator& other);
  Simulator(Simulator&&) = default;
  Simulator& operator=(const Simulator& other);
  Simulator& operator=(Simulator&&) = default;

  void step();
  void run(std::uint64_t cycles);

  [[nodiscard]] pipeline::Pipeline& pipeline() noexcept { return pipe_; }
  [[nodiscard]] const pipeline::Pipeline& pipeline() const noexcept {
    return pipe_;
  }
  [[nodiscard]] const core::DetectorThread& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] bool adts_enabled() const noexcept { return use_adts_; }
  [[nodiscard]] const fault::FaultInjector& faults() const noexcept {
    return injector_;
  }

  /// Invariant checking active for this instance? Copies always answer
  /// false: like the trace sink, checking is dropped on copy — the oracle
  /// re-runs copies with policies it sets directly, which the legality
  /// pass would (correctly, for a live machine) flag.
  [[nodiscard]] bool checking_enabled() const noexcept { return check_on_; }
  [[nodiscard]] const check::InvariantChecker& checker() const noexcept {
    return checker_;
  }
  /// Test hook: the checker's guard-state baseline (negative tests).
  [[nodiscard]] check::InvariantChecker& checker_for_testing() noexcept {
    return checker_;
  }
  /// Attach (or detach, with nullptr) a trace sink. The simulator records
  /// per-quantum machine + thread snapshots and policy-switch / guard /
  /// fault / DT-stall events into it. Observation-only: the simulated
  /// machine is bit-identical with or without a sink attached. The sink
  /// must outlive the simulator (or be detached first); it is NOT owned.
  void attach_trace(obs::TraceSink* sink);
  [[nodiscard]] obs::TraceSink* trace_sink() const noexcept { return sink_; }

  /// Emit any switch-audit records not yet traced — the trailing switch
  /// that was applied but never reached its scoring boundary stays
  /// labelled neutral. Call once after the run completes, before
  /// serializing the sink. No-op without a sink.
  void flush_trace();

  /// Export end-of-run metrics from every subsystem (pipeline always;
  /// detector/guard when ADTS is on; injector when faults are enabled)
  /// plus the run configuration, into `reg` (--stats-json).
  void export_metrics(obs::MetricsRegistry& reg) const;

  /// Attach the host-phase profiler: resolves the standard per-cycle node
  /// tree under `parent` — cycle/{pipeline/{commit,complete,issue,
  /// dispatch,fetch}, detector, checker, trace} — and times those
  /// segments on every cycle where `now() & (stride-1) == 0` (`stride`
  /// must be a power of two; 1 = every cycle). Observation-only and
  /// dropped on copy, exactly like the trace sink: a profiled run's
  /// simulated results are bit-identical to an unprofiled one. Pass a
  /// null profiler to detach.
  void attach_profiler(prof::PhaseProfiler* p,
                       prof::PhaseProfiler::Node parent, std::uint64_t stride);
  [[nodiscard]] bool profiler_attached() const noexcept {
    return prof_ != nullptr;
  }

  /// Suspend / resume the detector thread. Resuming re-baselines the
  /// detector (DetectorThread::arm) and resets quantum counters so the
  /// first observed quantum is clean. The sampling driver uses this to
  /// keep warm-up transients (cold caches ⇒ artificially low IPC ⇒
  /// spurious cold-start policy switches) out of ADTS's view.
  void set_adts_active(bool active);
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] std::uint64_t now() const noexcept { return pipe_.now(); }
  [[nodiscard]] std::uint64_t committed() const noexcept {
    return pipe_.committed_total();
  }
  [[nodiscard]] double ipc() const noexcept { return pipe_.stats().ipc(); }

 private:
  /// Delta baseline for one thread's per-quantum trace snapshot. The
  /// pipeline's accumulators are never touched for tracing (resetting
  /// them would change STALLCOUNT / ACCIPC policy decisions); instead the
  /// simulator differences against the previous snapshot, using the
  /// pipeline's counter epochs to detect that an accumulator was reset
  /// (quantum boundary, context switch) in between.
  struct ThreadBaseline {
    std::uint64_t quantum_epoch = 0;
    std::uint64_t life_epoch = 0;
    std::uint64_t committed_quantum = 0;
    std::uint64_t cond_branches_quantum = 0;
    std::uint64_t mispredicts_quantum = 0;
    std::uint64_t l1d_misses_quantum = 0;
    std::uint64_t l1i_misses_quantum = 0;
    std::uint64_t fetched_total = 0;
    obs::StallBreakdown stalls;
    /// CPI-stack snapshot at the previous quantum boundary. The pipeline's
    /// stacks are monotone accumulators (never reset by quantum boundaries
    /// or swaps), so plain differencing needs no epoch handling.
    obs::CpiStack cpi;
    std::uint64_t cpi_cycles = 0;  ///< cycles_accounted at the snapshot
  };

  void record_quantum_snapshot();

  /// One simulated cycle; `profiled` gates the per-segment phase scopes
  /// (true only on stride-sampled cycles of a profiler-attached run).
  void step_impl(bool profiled);

  SimConfig cfg_;
  pipeline::Pipeline pipe_;
  core::DetectorThread detector_;
  fault::FaultInjector injector_;
  bool use_adts_ = false;

  // --- invariant checking (inert while check_on_ == false) --------------
  check::InvariantChecker checker_;
  bool check_on_ = false;  ///< dropped on copy, like sink_

  // --- host-phase profiling (inert while prof_ == nullptr) --------------
  struct ProfNodes {
    prof::PhaseProfiler::Node cycle = 0;     ///< whole per-cycle body
    prof::PhaseProfiler::Node pipeline = 0;  ///< pipe_.step()
    prof::PhaseProfiler::Node detector = 0;  ///< injector + detector ticks
    prof::PhaseProfiler::Node checker = 0;   ///< invariant-checker pass
    prof::PhaseProfiler::Node trace = 0;     ///< snapshot + event emission
  };
  prof::PhaseProfiler* prof_ = nullptr;  ///< not owned; dropped on copy
  std::uint64_t prof_mask_ = 0;          ///< stride − 1
  ProfNodes prof_nodes_;

  // --- trace instrumentation (inert while sink_ == nullptr) -------------
  obs::TraceSink* sink_ = nullptr;  ///< not owned; dropped on copy
  std::uint64_t snapshot_cycle_ = 0;      ///< cycle of the last snapshot
  std::uint64_t snapshot_committed_ = 0;  ///< machine committed at snapshot
  std::uint64_t snapshot_frag_ = 0;  ///< machine fragmentation at snapshot
  std::uint64_t snapshot_dt_slots_ = 0;
  std::vector<ThreadBaseline> baselines_;
  bool dt_stalled_prev_ = false;
  std::uint64_t dt_stall_begin_cycle_ = 0;
  /// Audit-log entries already emitted as kSwitchAudit events. An entry is
  /// emitted once finalized: scored, or provably never-to-be-scored (a
  /// later entry exists — the detector scores at most one switch at a
  /// time, in order). flush_trace() emits the rest.
  std::size_t audits_emitted_ = 0;
};

}  // namespace smt::sim
