// Simulator facade: machine + workload + (optionally) the ADTS detector
// thread, behind one value-semantic object.
//
// Copying a Simulator snapshots everything — microarchitectural state,
// workload generator positions, detector-thread state — so a copy resumes
// exactly where the original was. The oracle scheduler (sim/oracle.hpp)
// and the quantum-rerun tests are built on this property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "fault/injector.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"
#include "workload/mix.hpp"

namespace smt::sim {

struct SimConfig {
  pipeline::PipelineConfig machine{};
  /// Application profile names, one per hardware context (≤ 8).
  std::vector<std::string> apps;
  /// Master workload seed; intervals of a sampled run vary this.
  std::uint64_t workload_seed = 1;

  /// Fixed fetch policy used when ADTS is disabled (and as the ADTS
  /// initial/default policy).
  policy::FetchPolicy fixed_policy = policy::FetchPolicy::kIcount;

  bool use_adts = false;
  core::AdtsConfig adts{};

  /// Fault injection (src/fault/): disabled by default. The injector is
  /// aligned to the ADTS quantum so counter faults hit whole detector
  /// observations.
  fault::FaultConfig fault{};

  /// Record a per-quantum row of {policy, IPC, injected faults, guard
  /// action} — the --fault-report trace. Off by default (it allocates).
  bool record_trace = false;
};

/// One per-quantum row of the fault/guard trace.
struct TraceRow {
  std::uint64_t quantum = 0;
  std::uint64_t cycle = 0;
  policy::FetchPolicy policy = policy::FetchPolicy::kIcount;  ///< after boundary
  double ipc = 0.0;                ///< IPC of the quantum that just ended
  std::uint8_t fault_mask = 0;     ///< fault::FaultClass bits injected
  core::GuardState guard_state = core::GuardState::kArmed;
  bool guard_revert = false;
  bool guard_pin = false;
  bool guard_blocked = false;      ///< guard withheld switching this quantum
};

/// Build a SimConfig for a named mix at a given thread count.
[[nodiscard]] SimConfig make_config(const workload::Mix& mix,
                                    std::size_t threads,
                                    std::uint64_t workload_seed);

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  Simulator(const Simulator&) = default;
  Simulator(Simulator&&) = default;
  Simulator& operator=(const Simulator&) = default;
  Simulator& operator=(Simulator&&) = default;

  void step();
  void run(std::uint64_t cycles);

  [[nodiscard]] pipeline::Pipeline& pipeline() noexcept { return pipe_; }
  [[nodiscard]] const pipeline::Pipeline& pipeline() const noexcept {
    return pipe_;
  }
  [[nodiscard]] const core::DetectorThread& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] bool adts_enabled() const noexcept { return use_adts_; }
  [[nodiscard]] const fault::FaultInjector& faults() const noexcept {
    return injector_;
  }
  /// Per-quantum fault/guard trace (empty unless cfg.record_trace).
  [[nodiscard]] const std::vector<TraceRow>& trace() const noexcept {
    return trace_;
  }

  /// Suspend / resume the detector thread. Resuming re-baselines the
  /// detector (DetectorThread::arm) and resets quantum counters so the
  /// first observed quantum is clean. The sampling driver uses this to
  /// keep warm-up transients (cold caches ⇒ artificially low IPC ⇒
  /// spurious cold-start policy switches) out of ADTS's view.
  void set_adts_active(bool active);
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] std::uint64_t now() const noexcept { return pipe_.now(); }
  [[nodiscard]] std::uint64_t committed() const noexcept {
    return pipe_.committed_total();
  }
  [[nodiscard]] double ipc() const noexcept { return pipe_.stats().ipc(); }

 private:
  SimConfig cfg_;
  pipeline::Pipeline pipe_;
  core::DetectorThread detector_;
  fault::FaultInjector injector_;
  std::vector<TraceRow> trace_;
  bool use_adts_ = false;
};

}  // namespace smt::sim
