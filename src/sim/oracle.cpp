#include "sim/oracle.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "par/thread_pool.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::sim {

namespace {

/// Outcome of one candidate-policy trial: the instructions it committed
/// over the quantum and the machine state it ended in (moved into `base`
/// if this candidate wins, so no state is ever re-simulated or cloned
/// speculatively).
struct Trial {
  std::uint64_t committed = 0;
  Simulator sim;
};

}  // namespace

OracleResult run_oracle(Simulator base, std::uint64_t quanta,
                        const OracleConfig& cfg, std::size_t jobs,
                        par::ClockFn clock, OracleTelemetry* telemetry) {
  if (cfg.candidates.empty()) {
    throw std::invalid_argument("OracleConfig: no candidate policies");
  }
  if (base.adts_enabled()) {
    throw std::invalid_argument(
        "run_oracle: disable ADTS in the base simulator (the oracle "
        "replaces the detector thread)");
  }

  OracleResult result;
  policy::FetchPolicy last = base.pipeline().policy();

  // Candidate trials are independent (each clones `base`), so they fan
  // out across the pool. Selection below is a serial reduction in
  // candidate order, so the result is identical for any worker count.
  par::ThreadPool pool(std::min<std::size_t>(jobs, cfg.candidates.size()));
  pool.set_clock(clock);

  for (std::uint64_t q = 0; q < quanta; ++q) {
    const std::uint64_t committed_before = base.committed();

    std::vector<Trial> trials = par::parallel_map(
        pool, cfg.candidates.size(), [&base, &cfg, committed_before](
                                         std::size_t i) {
          Simulator trial = base;
          trial.pipeline().set_policy(cfg.candidates[i]);
          trial.run(cfg.quantum_cycles);
          return Trial{trial.committed() - committed_before,
                       std::move(trial)};
        });

    // First-index tie-break: the earliest candidate with the strictly
    // best committed count wins, exactly as the serial loop decided.
    std::size_t best = 0;
    for (std::size_t i = 1; i < trials.size(); ++i) {
      if (trials[i].committed > trials[best].committed) best = i;
    }
    const policy::FetchPolicy best_policy = cfg.candidates[best];

    base = std::move(trials[best].sim);
    result.cycles += cfg.quantum_cycles;
    result.committed += trials[best].committed;
    result.quanta_per_policy[static_cast<std::size_t>(best_policy)] += 1;
    if (best_policy != last) ++result.switches;
    last = best_policy;
  }
  if (telemetry != nullptr) {
    telemetry->workers = pool.workers();
    telemetry->slots = pool.worker_stats();
  }
  return result;
}

}  // namespace smt::sim
