#include "sim/oracle.hpp"

#include <stdexcept>
#include <utility>

namespace smt::sim {

OracleResult run_oracle(Simulator base, std::uint64_t quanta,
                        const OracleConfig& cfg) {
  if (cfg.candidates.empty()) {
    throw std::invalid_argument("OracleConfig: no candidate policies");
  }
  if (base.adts_enabled()) {
    throw std::invalid_argument(
        "run_oracle: disable ADTS in the base simulator (the oracle "
        "replaces the detector thread)");
  }

  OracleResult result;
  policy::FetchPolicy last = base.pipeline().policy();

  for (std::uint64_t q = 0; q < quanta; ++q) {
    const std::uint64_t committed_before = base.committed();

    bool have_best = false;
    Simulator best = base;  // placeholder; overwritten below
    std::uint64_t best_committed = 0;
    policy::FetchPolicy best_policy = cfg.candidates.front();

    for (policy::FetchPolicy cand : cfg.candidates) {
      Simulator trial = base;
      trial.pipeline().set_policy(cand);
      trial.run(cfg.quantum_cycles);
      const std::uint64_t got = trial.committed() - committed_before;
      if (!have_best || got > best_committed) {
        have_best = true;
        best_committed = got;
        best_policy = cand;
        best = std::move(trial);
      }
    }

    base = std::move(best);
    result.cycles += cfg.quantum_cycles;
    result.committed += best_committed;
    result.quanta_per_policy[static_cast<std::size_t>(best_policy)] += 1;
    if (best_policy != last) ++result.switches;
    last = best_policy;
  }
  return result;
}

}  // namespace smt::sim
