// Oracle-scheduled execution: the upper bound ADTS chases.
//
// The paper motivates ADTS by showing "a single fixed thread scheduling
// policy presents much room (some 30%) for improvement compared to an
// oracle-scheduled case". The oracle is realisable here because the
// Simulator is value-semantic: each scheduling quantum is executed once
// under every candidate policy from an identical snapshot, and the run
// continues from the best outcome. This is a true per-quantum oracle —
// it even benefits from lookahead effects no hardware could have.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "par/thread_pool.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/simulator.hpp"

namespace smt::sim {

struct OracleConfig {
  std::uint64_t quantum_cycles = 8192;
  /// Policies the oracle may pick from each quantum. Default: the three
  /// states of the ADTS Type-3 FSM; pass policy::all_policies() for the
  /// full ten-policy oracle.
  std::vector<policy::FetchPolicy> candidates = {
      policy::FetchPolicy::kIcount, policy::FetchPolicy::kBrcount,
      policy::FetchPolicy::kL1MissCount};
};

struct OracleResult {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::uint64_t switches = 0;  ///< quanta where the best policy changed
  std::array<std::uint64_t, policy::kNumFetchPolicies> quanta_per_policy{};

  [[nodiscard]] double ipc() const noexcept {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Host-time telemetry from the oracle's candidate-trial pool, filled
/// only when run_oracle is handed a clock and a non-null out-param.
/// Kept outside OracleResult so the simulated result stays a pure
/// function of the configuration (benchmarks byte-compare its fields).
struct OracleTelemetry {
  std::size_t workers = 0;  ///< worker threads (0 = trials ran inline)
  std::vector<par::WorkerStats> slots;  ///< per-slot tasks / busy ticks
};

/// Run `quanta` scheduling quanta from the state of `base`, choosing the
/// per-quantum-best candidate policy. `base` is taken by value (the run
/// consumes a snapshot; the caller's simulator is unchanged).
///
/// `jobs` fans the per-quantum candidate trials across a worker pool
/// (src/par/). Ties break on the first candidate index, so the result is
/// bit-identical for every jobs value; jobs <= 1 runs inline.
///
/// `clock` + `telemetry` (both optional) time the trial tasks with the
/// injected host clock and report per-worker busy ticks — observation
/// only, the OracleResult is unchanged.
[[nodiscard]] OracleResult run_oracle(Simulator base, std::uint64_t quanta,
                                      const OracleConfig& cfg,
                                      std::size_t jobs = 1,
                                      par::ClockFn clock = nullptr,
                                      OracleTelemetry* telemetry = nullptr);

}  // namespace smt::sim
