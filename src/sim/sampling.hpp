// Multi-interval sampling driver.
//
// The paper cannot run SPEC to completion, so it simulates "a million
// cycles in ten randomly chosen different intervals" via fast-forward.
// The synthetic workloads have no fixed length, so the equivalent here is
// N intervals, each a fresh simulator at a decorrelated workload seed
// (a different random point of the programs' phase space), with a cache/
// predictor warm-up period excluded from measurement.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/detector.hpp"
#include "sim/simulator.hpp"

namespace smt::sim {

struct SamplingPlan {
  std::uint32_t intervals = 2;
  std::uint64_t warmup_cycles = 32 * 1024;    ///< 4 quanta of warm-up
  std::uint64_t measure_cycles = 192 * 1024;  ///< 24 quanta measured
};

/// Aggregated measurements over all intervals.
struct SampleResult {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  RunningStat interval_ipc;  ///< distribution across intervals

  // ADTS accumulators (zero when ADTS was disabled).
  std::uint64_t quanta = 0;
  std::uint64_t low_throughput_quanta = 0;
  std::uint64_t switches = 0;
  std::uint64_t benign_switches = 0;
  std::uint64_t malignant_switches = 0;
  std::uint64_t switches_skipped_dt_busy = 0;
  std::uint64_t switches_dropped_fault = 0;
  std::uint64_t switches_stale = 0;

  // Degradation-guard accumulators (zero when the guard was disabled).
  std::uint64_t guard_anomalies = 0;
  std::uint64_t guard_reverts = 0;
  std::uint64_t guard_vetoes = 0;
  std::uint64_t guard_safe_mode_entries = 0;
  std::uint64_t guard_safe_mode_quanta = 0;

  [[nodiscard]] double ipc() const noexcept {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles)
                  : 0.0;
  }
  [[nodiscard]] double benign_fraction() const noexcept {
    return obs::benign_probability(benign_switches, malignant_switches);
  }
  /// Switches per million measured cycles (scale-independent frequency).
  [[nodiscard]] double switches_per_mcycle() const noexcept {
    return cycles ? 1e6 * static_cast<double>(switches) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
};

/// Run the plan for a configuration. Interval i uses workload seed
/// mix64(cfg.workload_seed, i) so the intervals sample decorrelated
/// stretches of the workloads.
[[nodiscard]] SampleResult run_sampled(const SimConfig& cfg,
                                       const SamplingPlan& plan);

}  // namespace smt::sim
