// Shared experiment plumbing for the benchmark harnesses.
//
// Every figure/table bench runs the same kinds of configurations; this
// module centralises them so a bench is just "sweep, collect, print".
// The SMT_BENCH_SCALE environment variable ("quick" | "default" | "full")
// trades runtime for statistical quality without touching bench code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "fault/fault_plan.hpp"
#include "policy/fetch_policy.hpp"
#include "sim/oracle.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workload/mix.hpp"

namespace smt::sim {

struct ExperimentScale {
  SamplingPlan plan{};
  /// Quanta per oracle run (oracle is ~|candidates|× the cost per quantum).
  std::uint64_t oracle_quanta = 12;
  std::uint32_t oracle_intervals = 1;
  std::uint64_t base_seed = 2003;  ///< IPPS 2003
  /// Worker threads for the embarrassingly parallel sweeps (src/par/).
  /// Results are bit-identical for any value; 1 = serial.
  std::size_t jobs = 1;

  /// Read SMT_BENCH_SCALE and SMT_JOBS from the environment.
  [[nodiscard]] static ExperimentScale from_env();
};

/// The paper's threshold sweep: m = 1..5 (IPC units).
[[nodiscard]] std::vector<double> threshold_sweep();

/// IPC of a fixed policy on a mix.
[[nodiscard]] SampleResult run_fixed(const workload::Mix& mix,
                                     policy::FetchPolicy policy,
                                     std::size_t threads,
                                     const ExperimentScale& scale);

/// Full ADTS run (detector thread + heuristic) on a mix.
[[nodiscard]] SampleResult run_adts(const workload::Mix& mix,
                                    core::HeuristicType heuristic,
                                    double ipc_threshold, std::size_t threads,
                                    const ExperimentScale& scale,
                                    const core::AdtsConfig* overrides = nullptr);

/// ADTS run under a fault plan (src/fault/), with or without the
/// degradation guard (set `overrides->guard.enabled`). The fault seed is
/// NOT varied per interval — the same fault schedule replays against
/// each interval's workload, so guard on/off comparisons face identical
/// perturbations.
[[nodiscard]] SampleResult run_adts_faulted(
    const workload::Mix& mix, core::HeuristicType heuristic,
    double ipc_threshold, std::size_t threads, const ExperimentScale& scale,
    const fault::FaultConfig& faults,
    const core::AdtsConfig* overrides = nullptr);

/// Oracle upper bound on a mix (averaged over scale.oracle_intervals).
[[nodiscard]] OracleResult run_oracle_on_mix(const workload::Mix& mix,
                                             std::size_t threads,
                                             const ExperimentScale& scale,
                                             const OracleConfig& ocfg);

/// Names of the mixes to sweep at this scale (all 13 at default/full, a
/// representative 5 at quick).
[[nodiscard]] std::vector<std::string> mixes_for_scale(
    const ExperimentScale& scale);

// ---------------------------------------------------------------------------
// The Figure 7 / Figure 8 sweep: heuristic type × IPC threshold, averaged
// over the mixes. Both figures plot views of the same grid, so the sweep
// is shared.
// ---------------------------------------------------------------------------

struct SweepCell {
  double ipc = 0.0;           ///< mean aggregate IPC over mixes
  double switches = 0.0;      ///< mean switch count per run (Fig. 7a/b)
  double benign_prob = 0.0;   ///< pooled P(benign switch) (Fig. 7c/d)
  double low_quanta_frac = 0.0;
};

struct SweepGrid {
  std::vector<double> thresholds;            ///< m = 1..5
  std::vector<core::HeuristicType> types;    ///< Type 1, 2, 3, 3', 4
  std::vector<std::string> mixes;
  /// cell(type_index, threshold_index)
  std::vector<SweepCell> cells;
  double icount_baseline_ipc = 0.0;  ///< fixed-ICOUNT mean over same mixes

  [[nodiscard]] const SweepCell& cell(std::size_t type_idx,
                                      std::size_t thr_idx) const {
    return cells[type_idx * thresholds.size() + thr_idx];
  }
};

/// Run the full (type × threshold × mix) grid at `threads` contexts.
/// Individual runs fan out over scale.jobs workers; the grid is
/// bit-identical for any jobs value.
[[nodiscard]] SweepGrid run_fig78_sweep(const ExperimentScale& scale,
                                        std::size_t threads = 8);

}  // namespace smt::sim
