#include "sim/experiment.hpp"

#include <cstdlib>
#include <string_view>

#include "core/detector.hpp"
#include "core/heuristics.hpp"
#include "fault/fault_plan.hpp"
#include "obs/switch_audit.hpp"
#include "par/thread_pool.hpp"
#include "policy/fetch_policy.hpp"
#include "workload/mix.hpp"

namespace smt::sim {

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale s;
  s.jobs = par::default_jobs();
  const char* env = std::getenv("SMT_BENCH_SCALE");
  const std::string_view mode = env ? env : "default";
  if (mode == "quick") {
    s.plan.intervals = 1;
    s.plan.warmup_cycles = 8 * 1024;
    s.plan.measure_cycles = 64 * 1024;  // 8 quanta
    s.oracle_quanta = 6;
    s.oracle_intervals = 1;
  } else if (mode == "full") {
    s.plan.intervals = 4;
    s.plan.warmup_cycles = 32 * 1024;
    s.plan.measure_cycles = 384 * 1024;  // 48 quanta
    s.oracle_quanta = 24;
    s.oracle_intervals = 2;
  }
  return s;
}

std::vector<double> threshold_sweep() { return {1.0, 2.0, 3.0, 4.0, 5.0}; }

SampleResult run_fixed(const workload::Mix& mix, policy::FetchPolicy policy,
                       std::size_t threads, const ExperimentScale& scale) {
  SimConfig cfg = make_config(mix, threads, scale.base_seed);
  cfg.fixed_policy = policy;
  cfg.use_adts = false;
  return run_sampled(cfg, scale.plan);
}

SampleResult run_adts(const workload::Mix& mix, core::HeuristicType heuristic,
                      double ipc_threshold, std::size_t threads,
                      const ExperimentScale& scale,
                      const core::AdtsConfig* overrides) {
  SimConfig cfg = make_config(mix, threads, scale.base_seed);
  cfg.use_adts = true;
  if (overrides != nullptr) cfg.adts = *overrides;
  cfg.adts.heuristic = heuristic;
  cfg.adts.ipc_threshold = ipc_threshold;
  return run_sampled(cfg, scale.plan);
}

SampleResult run_adts_faulted(const workload::Mix& mix,
                              core::HeuristicType heuristic,
                              double ipc_threshold, std::size_t threads,
                              const ExperimentScale& scale,
                              const fault::FaultConfig& faults,
                              const core::AdtsConfig* overrides) {
  SimConfig cfg = make_config(mix, threads, scale.base_seed);
  cfg.use_adts = true;
  if (overrides != nullptr) cfg.adts = *overrides;
  cfg.adts.heuristic = heuristic;
  cfg.adts.ipc_threshold = ipc_threshold;
  cfg.fault = faults;
  return run_sampled(cfg, scale.plan);
}

OracleResult run_oracle_on_mix(const workload::Mix& mix, std::size_t threads,
                               const ExperimentScale& scale,
                               const OracleConfig& ocfg) {
  OracleResult agg;
  for (std::uint32_t i = 0; i < scale.oracle_intervals; ++i) {
    SimConfig cfg = make_config(mix, threads, scale.base_seed);
    cfg.workload_seed =
        mix64(scale.base_seed ^ (0x1417ull + i * 0x9e37ull));
    Simulator sim(cfg);
    sim.run(scale.plan.warmup_cycles);
    const OracleResult r =
        run_oracle(sim, scale.oracle_quanta, ocfg, scale.jobs);
    agg.cycles += r.cycles;
    agg.committed += r.committed;
    agg.switches += r.switches;
    for (std::size_t p = 0; p < agg.quanta_per_policy.size(); ++p) {
      agg.quanta_per_policy[p] += r.quanta_per_policy[p];
    }
  }
  return agg;
}

SweepGrid run_fig78_sweep(const ExperimentScale& scale, std::size_t threads) {
  SweepGrid grid;
  grid.thresholds = threshold_sweep();
  grid.types = core::all_heuristics();
  grid.mixes = mixes_for_scale(scale);
  grid.cells.resize(grid.types.size() * grid.thresholds.size());

  // Every run in the grid is independent, so the whole
  // (baseline ∪ type × threshold) × mix task set fans out across one
  // pool; the per-cell reductions below consume results in the same
  // order the serial loops did, so the grid is bit-identical for any
  // scale.jobs.
  par::ThreadPool pool(scale.jobs);
  const std::size_t n_thr = grid.thresholds.size();
  const std::size_t n_mix = grid.mixes.size();

  // Fixed-ICOUNT baseline over the same mixes.
  {
    const std::vector<double> ipcs =
        par::parallel_map(pool, n_mix, [&](std::size_t k) {
          return run_fixed(workload::mix(grid.mixes[k]),
                           policy::FetchPolicy::kIcount, threads, scale)
              .ipc();
        });
    grid.icount_baseline_ipc = mean(ipcs);
  }

  // One task per (type, threshold, mix) run, flattened mix-fastest so a
  // cell's results sit contiguously in submission order.
  const std::vector<SampleResult> runs =
      par::parallel_map(pool, grid.types.size() * n_thr * n_mix,
                        [&](std::size_t idx) {
                          const std::size_t ti = idx / (n_thr * n_mix);
                          const std::size_t mi = (idx / n_mix) % n_thr;
                          const std::size_t k = idx % n_mix;
                          return run_adts(workload::mix(grid.mixes[k]),
                                          grid.types[ti], grid.thresholds[mi],
                                          threads, scale);
                        });

  for (std::size_t ti = 0; ti < grid.types.size(); ++ti) {
    for (std::size_t mi = 0; mi < n_thr; ++mi) {
      std::vector<double> ipcs;
      double switches = 0.0;
      std::uint64_t benign = 0;
      std::uint64_t malignant = 0;
      std::uint64_t low = 0;
      std::uint64_t quanta = 0;
      for (std::size_t k = 0; k < n_mix; ++k) {
        const SampleResult& r = runs[(ti * n_thr + mi) * n_mix + k];
        ipcs.push_back(r.ipc());
        switches += static_cast<double>(r.switches);
        benign += r.benign_switches;
        malignant += r.malignant_switches;
        low += r.low_throughput_quanta;
        quanta += r.quanta;
      }
      SweepCell& c = grid.cells[ti * n_thr + mi];
      c.ipc = mean(ipcs);
      c.switches = switches / static_cast<double>(n_mix);
      c.benign_prob = obs::benign_probability(benign, malignant);
      c.low_quanta_frac =
          quanta ? static_cast<double>(low) / static_cast<double>(quanta)
                 : 0.0;
    }
  }
  return grid;
}

std::vector<std::string> mixes_for_scale(const ExperimentScale& scale) {
  std::vector<std::string> names;
  const char* env = std::getenv("SMT_BENCH_SCALE");
  const std::string_view mode = env ? env : "default";
  if (mode == "quick") {
    names = {"ctrl8", "mem8", "ilp8", "bal1", "var1"};
  } else {
    for (const auto& m : workload::all_mixes()) names.push_back(m.name);
  }
  (void)scale;
  return names;
}

}  // namespace smt::sim
