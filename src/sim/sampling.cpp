#include "sim/sampling.hpp"

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/guard.hpp"

namespace smt::sim {

SampleResult run_sampled(const SimConfig& cfg, const SamplingPlan& plan) {
  SampleResult agg;
  for (std::uint32_t i = 0; i < plan.intervals; ++i) {
    SimConfig icfg = cfg;
    icfg.workload_seed = mix64(cfg.workload_seed ^ (0x1417ull + i * 0x9e37ull));
    Simulator sim(icfg);

    // Warm caches/predictor under the fixed policy; the detector thread
    // (when enabled) starts observing only from the measurement window,
    // so cold-start transients cannot trigger spurious policy switches.
    sim.set_adts_active(false);
    sim.run(plan.warmup_cycles);
    sim.set_adts_active(icfg.use_adts);

    const std::uint64_t committed0 = sim.committed();
    const core::AdtsStats adts0 = sim.detector().stats();
    const core::GuardStats guard0 = sim.detector().guard().stats();

    sim.run(plan.measure_cycles);

    const std::uint64_t committed = sim.committed() - committed0;
    const core::AdtsStats& adts1 = sim.detector().stats();

    agg.cycles += plan.measure_cycles;
    agg.committed += committed;
    agg.interval_ipc.add(static_cast<double>(committed) /
                         static_cast<double>(plan.measure_cycles));

    agg.quanta += adts1.quanta - adts0.quanta;
    agg.low_throughput_quanta +=
        adts1.low_throughput_quanta - adts0.low_throughput_quanta;
    agg.switches += adts1.switches - adts0.switches;
    agg.benign_switches += adts1.benign_switches - adts0.benign_switches;
    agg.malignant_switches +=
        adts1.malignant_switches - adts0.malignant_switches;
    agg.switches_skipped_dt_busy +=
        adts1.switches_skipped_dt_busy - adts0.switches_skipped_dt_busy;
    agg.switches_dropped_fault +=
        adts1.switches_dropped_fault - adts0.switches_dropped_fault;
    agg.switches_stale += adts1.switches_stale - adts0.switches_stale;

    const core::GuardStats g0 = guard0;
    const core::GuardStats& g1 = sim.detector().guard().stats();
    agg.guard_anomalies += g1.anomalies - g0.anomalies;
    agg.guard_reverts += g1.reverts - g0.reverts;
    agg.guard_vetoes += g1.vetoed_switches - g0.vetoed_switches;
    agg.guard_safe_mode_entries +=
        g1.safe_mode_entries - g0.safe_mode_entries;
    agg.guard_safe_mode_quanta += g1.safe_mode_quanta - g0.safe_mode_quanta;
  }
  return agg;
}

}  // namespace smt::sim
