#include "sim/simulator.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "check/invariants.hpp"
#include "common/build_info.hpp"
#include "common/host_info.hpp"
#include "core/detector.hpp"
#include "core/guard.hpp"
#include "core/heuristics.hpp"
#include "fault/fault_plan.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/metrics.hpp"
#include "obs/stall.hpp"
#include "obs/switch_audit.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"
#include "pipeline/config.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"
#include "prof/phase_profiler.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"
#include "workload/thread_program.hpp"

namespace smt::sim {

obs::TraceDecoder trace_decoder() noexcept {
  obs::TraceDecoder d;
  d.policy = [](std::uint8_t code) -> std::string_view {
    return policy::name(static_cast<policy::FetchPolicy>(code));
  };
  d.heuristic = [](std::uint8_t code) -> std::string_view {
    return core::name(static_cast<core::HeuristicType>(code));
  };
  d.guard_state = [](std::uint8_t code) -> std::string_view {
    return core::name(static_cast<core::GuardState>(code));
  };
  d.invariant = check::invariant_class_name;
  d.fault_mask = [](std::uint8_t mask) -> std::string {
    if (mask == 0) return "-";
    std::string out;
    const auto add = [&out](const char* s) {
      if (!out.empty()) out += '|';
      out += s;
    };
    if (mask & fault::kFaultCounterNoise) add("noise");
    if (mask & fault::kFaultCounterFreeze) add("freeze");
    if (mask & fault::kFaultCounterCorrupt) add("corrupt");
    if (mask & fault::kFaultDtStall) add("dt-stall");
    if (mask & fault::kFaultSwitchDrop) add("drop");
    if (mask & fault::kFaultSwitchDelay) add("delay");
    if (mask & fault::kFaultBlackout) add("blackout");
    return out;
  };
  return d;
}

SimConfig make_config(const workload::Mix& mix, std::size_t threads,
                      std::uint64_t workload_seed) {
  SimConfig cfg;
  cfg.apps = workload::mix_for_threads(mix, threads, workload_seed);
  cfg.workload_seed = workload_seed;
  return cfg;
}

std::uint64_t config_digest(const SimConfig& cfg) noexcept {
  // Field-by-field (never whole structs: padding bytes are indeterminate
  // and would make the digest non-reproducible across builds).
  Fnv1a h;
  for (const std::string& a : cfg.apps) {
    h.mix_bytes(a.data(), a.size());
    h.mix(char{0});
  }
  h.mix(cfg.workload_seed);
  h.mix(cfg.fixed_policy);
  h.mix(cfg.use_adts);

  const pipeline::PipelineConfig& m = cfg.machine;
  h.mix(m.fetch_width);
  h.mix(m.fetch_threads);
  h.mix(m.dispatch_width);
  h.mix(m.issue_width);
  h.mix(m.commit_width);
  h.mix(m.frontend_delay);
  h.mix(m.int_iq_size);
  h.mix(m.fp_iq_size);
  h.mix(m.lsq_size);
  h.mix(m.fetch_buffer_cap);
  h.mix(m.rob_per_thread);
  h.mix(m.int_rename_regs);
  h.mix(m.fp_rename_regs);
  h.mix(m.int_alus);
  h.mix(m.mem_ports);
  h.mix(m.fp_units);
  h.mix(m.mispredict_penalty);
  h.mix(m.btb_miss_penalty);
  h.mix(m.syscall_flush_penalty);

  const core::AdtsConfig& a = cfg.adts;
  h.mix(a.quantum_cycles);
  h.mix(a.ipc_threshold);
  h.mix(a.heuristic);
  h.mix(a.conditions.l1_miss_per_cycle);
  h.mix(a.conditions.lsq_full_per_cycle);
  h.mix(a.conditions.mispredict_per_cycle);
  h.mix(a.conditions.cond_branch_per_cycle);
  h.mix(a.adaptive_conditions);
  h.mix(a.adaptive_factor);
  h.mix(a.adaptive_alpha);
  h.mix(a.dt_check_instrs);
  h.mix(a.dt_decide_instrs);
  h.mix(a.instant_switch);
  h.mix(a.switch_penalty_cycles);
  h.mix(a.clog_icount_share);
  h.mix(a.enable_clog_control);
  h.mix(a.clog_block_cycles);
  h.mix(a.guard.enabled);

  const fault::FaultConfig& f = cfg.fault;
  h.mix(f.enabled);
  h.mix(f.seed);
  h.mix(f.counter_noise_prob);
  h.mix(f.counter_noise_magnitude);
  h.mix(f.counter_freeze_prob);
  h.mix(f.counter_corrupt_prob);
  h.mix(f.dt_stall_prob);
  h.mix(f.dt_stall_quanta);
  h.mix(f.switch_drop_prob);
  h.mix(f.switch_delay_prob);
  h.mix(f.switch_delay_quanta);
  h.mix(f.blackout_prob);
  h.mix(f.blackout_cycles);

  for (const pipeline::PipeviewWindow& w : cfg.pipeview) {
    h.mix(w.start_cycle);
    h.mix(w.count);
  }
  return h.digest();
}

namespace {

std::vector<workload::ThreadProgram> build_programs(const SimConfig& cfg) {
  if (cfg.apps.empty()) {
    throw std::invalid_argument("SimConfig: no applications");
  }
  if (cfg.apps.size() > 8) {
    throw std::invalid_argument(
        "SimConfig: more applications than hardware contexts (8)");
  }
  std::vector<workload::ThreadProgram> programs;
  programs.reserve(cfg.apps.size());
  for (std::size_t tid = 0; tid < cfg.apps.size(); ++tid) {
    programs.emplace_back(workload::profile(cfg.apps[tid]),
                          static_cast<std::uint32_t>(tid), cfg.workload_seed);
  }
  return programs;
}

core::AdtsConfig adts_config_of(const SimConfig& cfg) {
  core::AdtsConfig a = cfg.adts;
  a.initial_policy = cfg.fixed_policy;
  return a;
}

}  // namespace

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg),
      pipe_(cfg.machine, build_programs(cfg)),
      detector_(adts_config_of(cfg)),
      injector_(cfg.fault, cfg.adts.quantum_cycles),
      use_adts_(cfg.use_adts),
      check_on_(check::check_enabled(cfg.check)) {
  pipe_.set_policy(cfg.fixed_policy);
  if (cfg.cpi) pipe_.set_cpi_accounting(true);
  if (check_on_) {
    check::CheckerConfig ccfg;
    ccfg.quantum_cycles = cfg.adts.quantum_cycles;
    checker_ = check::InvariantChecker(ccfg);
    checker_.arm(pipe_, detector_);
  }
}

Simulator::Simulator(const Simulator& other)
    : cfg_(other.cfg_),
      pipe_(other.pipe_),
      detector_(other.detector_),
      injector_(other.injector_),
      use_adts_(other.use_adts_) {
  // sink_ and the snapshot baselines stay default: a copy is silent (see
  // the header; the oracle re-runs copies over already-recorded quanta).
  // check_on_ stays false for the same reason: oracle trials set policies
  // directly on copies, which the legality pass would flag on a live run.
}

Simulator& Simulator::operator=(const Simulator& other) {
  if (this == &other) return *this;
  cfg_ = other.cfg_;
  pipe_ = other.pipe_;
  detector_ = other.detector_;
  injector_ = other.injector_;
  use_adts_ = other.use_adts_;
  sink_ = nullptr;
  baselines_.clear();
  checker_ = check::InvariantChecker{};
  check_on_ = false;
  prof_ = nullptr;  // like sink_: copies never profile (oracle re-runs)
  prof_mask_ = 0;
  return *this;
}

void Simulator::attach_profiler(prof::PhaseProfiler* p,
                                prof::PhaseProfiler::Node parent,
                                std::uint64_t stride) {
  prof_ = p;
  if (p == nullptr) {
    prof_mask_ = 0;
    pipe_.set_profiler(nullptr, {}, 0);
    return;
  }
  prof_mask_ = stride == 0 ? 0 : stride - 1;
  prof_nodes_.cycle = p->child(parent, "cycle");
  prof_nodes_.pipeline = p->child(prof_nodes_.cycle, "pipeline");
  prof_nodes_.detector = p->child(prof_nodes_.cycle, "detector");
  prof_nodes_.checker = p->child(prof_nodes_.cycle, "checker");
  prof_nodes_.trace = p->child(prof_nodes_.cycle, "trace");
  pipeline::Pipeline::ProfNodes stages;
  stages.commit = p->child(prof_nodes_.pipeline, "commit");
  stages.complete = p->child(prof_nodes_.pipeline, "complete");
  stages.issue = p->child(prof_nodes_.pipeline, "issue");
  stages.dispatch = p->child(prof_nodes_.pipeline, "dispatch");
  stages.fetch = p->child(prof_nodes_.pipeline, "fetch");
  pipe_.set_profiler(p, stages, prof_mask_);
}

void Simulator::attach_trace(obs::TraceSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) {
    pipe_.set_pipeview(nullptr, {}, 0);
    return;
  }
  if (!cfg_.pipeview.empty()) {
    pipe_.set_pipeview(sink_, cfg_.pipeview, cfg_.adts.quantum_cycles);
  }
  // Audit entries that predate the sink are not traced (the sink records
  // what happens while attached, like every other event kind).
  audits_emitted_ = detector_.audit_log().size();
  // Baseline every delta at the current state so the first snapshot spans
  // only cycles recorded under this sink.
  snapshot_cycle_ = pipe_.now();
  snapshot_committed_ = pipe_.committed_total();
  snapshot_frag_ = pipe_.machine_stall_breakdown()[
      obs::StallCause::kFragmentation];
  snapshot_dt_slots_ = pipe_.stats().dt_slots_used;
  baselines_.assign(pipe_.num_threads(), ThreadBaseline{});
  for (std::uint32_t tid = 0; tid < pipe_.num_threads(); ++tid) {
    ThreadBaseline& b = baselines_[tid];
    const pipeline::ThreadCounters& c = pipe_.counters(tid);
    b.quantum_epoch = pipe_.quantum_epoch(tid);
    b.life_epoch = pipe_.life_epoch(tid);
    b.committed_quantum = c.committed_quantum;
    b.cond_branches_quantum = c.cond_branches_quantum;
    b.mispredicts_quantum = c.mispredicts_quantum;
    b.l1d_misses_quantum = c.l1d_misses_quantum;
    b.l1i_misses_quantum = c.l1i_misses_quantum;
    b.fetched_total = c.fetched_total;
    b.stalls = pipe_.stall_breakdown(tid);
    if (pipe_.cpi_accounting()) {
      b.cpi = pipe_.cpi_stack(tid);
      b.cpi_cycles = pipe_.cpi_cycles_accounted();
    }
  }
  dt_stalled_prev_ = injector_.dt_stalled();
  dt_stall_begin_cycle_ = pipe_.now();
}

void Simulator::set_adts_active(bool active) {
  if (active && !use_adts_) {
    detector_.arm(pipe_);
    pipe_.reset_quantum_counters();
  }
  use_adts_ = active;
}

void Simulator::step() {
  // The stride test reads pipe_.now() *before* the pipeline increments
  // it, matching the pipeline's own entry test, so both layers sample
  // the same cycles.
  if (prof_ != nullptr && (pipe_.now() & prof_mask_) == 0) {
    const prof::PhaseProfiler::Scope s(prof_, prof_nodes_.cycle);
    step_impl(true);
  } else {
    step_impl(false);
  }
}

void Simulator::step_impl(bool profiled) {
  using Scope = prof::PhaseProfiler::Scope;
  // Scopes built with a null profiler are inert, so the unprofiled path
  // pays only the construction of four no-op guards.
  prof::PhaseProfiler* pp = profiled ? prof_ : nullptr;
  {
    const Scope s(pp, prof_nodes_.pipeline);
    pipe_.step();
  }

  // Snapshot the quantum that just ended *before* the detector tick: the
  // detector resets the quantum accumulators at the boundary, and the
  // injector's boundary advance rotates its fault schedule to the next
  // quantum. Reading first keeps the snapshot about the finished quantum.
  const bool boundary =
      sink_ != nullptr && pipe_.now() % cfg_.adts.quantum_cycles == 0;
  if (boundary) {
    const Scope s(pp, prof_nodes_.trace);
    record_quantum_snapshot();
  }
  const policy::FetchPolicy policy_before = pipe_.policy();
  const std::size_t audits_before = detector_.audit_log().size();

  // The injector runs before the detector so boundary-cycle faults
  // (fresh counter perturbations, stall windows, blackouts) are already
  // in place when the detector samples its counters.
  const bool faulted = injector_.enabled();
  {
    const Scope s(pp, prof_nodes_.detector);
    if (faulted) injector_.tick(pipe_);
    if (use_adts_) detector_.tick(pipe_, faulted ? &injector_ : nullptr);
  }

  // The checker observes the fully mutated cycle (pipeline step, fault
  // injection, detector tick). It is a pure reader: a checked run is
  // bit-identical to an unchecked one.
  std::size_t fresh_violations = 0;
  if (check_on_) {
    const Scope s(pp, prof_nodes_.checker);
    fresh_violations = checker_.on_cycle(pipe_, detector_, use_adts_);
  }

  if (sink_ == nullptr) return;
  // One scope over everything the sink records this cycle ("trace" also
  // times the boundary snapshot above, so its count tallies timed
  // segments, not cycles).
  const Scope trace_scope(pp, prof_nodes_.trace);
  const std::uint64_t cycle = pipe_.now();
  const std::uint64_t quantum = cycle / cfg_.adts.quantum_cycles;

  // Policy switches can land on any cycle (they apply when the DT's work
  // drains), so compare every step, not just at boundaries.
  const obs::SwitchAuditLog& audit_log = detector_.audit_log();
  if (pipe_.policy() != policy_before) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kPolicySwitch;
    e.cycle = cycle;
    e.quantum = quantum;
    e.policy_before = static_cast<std::uint8_t>(policy_before);
    e.policy_after = static_cast<std::uint8_t>(pipe_.policy());
    e.code = static_cast<std::uint8_t>(cfg_.adts.heuristic);
    e.ipc = detector_.last_quantum_ipc();
    if (audit_log.size() > audits_before) {
      // This switch was audited (ADTS-decided, not a guard revert/pin):
      // cross-link its provenance. value = 1-based audit index, span =
      // decided→applied wait, mask = the audit flags.
      const obs::SwitchAudit& a = audit_log[audit_log.size() - 1];
      e.value = audit_log.size();
      e.span = a.applied_cycle - a.decided_cycle;
      e.mask = a.flags;
    }
    sink_->record(e);
  }

  // Emit finalized audit records. An entry is finalized once scored, or
  // once a later entry exists (the detector scores at most one pending
  // switch, in order — a passed-over entry stays neutral forever).
  while (audits_emitted_ < audit_log.size() &&
         (audit_log[audits_emitted_].scored ||
          audits_emitted_ + 1 < audit_log.size())) {
    sink_->record(obs::to_trace_event(audit_log[audits_emitted_]));
    ++audits_emitted_;
  }

  if (boundary && detector_.config().guard.enabled) {
    const core::GuardVerdict& v = detector_.last_guard_verdict();
    obs::GuardAct act{};
    policy::FetchPolicy imposed = pipe_.policy();
    if (v.revert) {
      act = obs::GuardAct::kRevert;
      imposed = v.revert_to;
    } else if (v.pin_safe_policy) {
      act = obs::GuardAct::kPinSafe;
      imposed = detector_.config().guard.safe_policy;
    } else if (!v.allow_switching) {
      act = obs::GuardAct::kHold;
    }
    if (act != obs::GuardAct{}) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kGuardAction;
      e.cycle = cycle;
      e.quantum = quantum;
      e.code = static_cast<std::uint8_t>(act);
      e.policy_after = static_cast<std::uint8_t>(imposed);
      sink_->record(e);
    }
  }

  if (boundary && faulted && injector_.current_mask() != 0) {
    // After the injector's boundary advance current_mask() describes the
    // quantum that starts now.
    obs::TraceEvent e;
    e.kind = obs::EventKind::kFault;
    e.cycle = cycle;
    e.quantum = quantum;
    e.mask = injector_.current_mask();
    sink_->record(e);
  }

  if (fresh_violations > 0) {
    const std::vector<check::Violation>& log = checker_.violations();
    for (std::size_t i = log.size() - fresh_violations; i < log.size(); ++i) {
      const check::Violation& v = log[i];
      obs::TraceEvent e;
      e.kind = obs::EventKind::kInvariant;
      e.cycle = v.cycle;
      e.quantum = v.cycle / cfg_.adts.quantum_cycles;
      e.tid = v.tid;
      e.code = static_cast<std::uint8_t>(v.cls);
      e.value = v.value;
      sink_->record(e);
    }
  }

  const bool dt_stalled = injector_.dt_stalled();
  if (dt_stalled != dt_stalled_prev_) {
    obs::TraceEvent e;
    e.kind = dt_stalled ? obs::EventKind::kDtStallBegin
                        : obs::EventKind::kDtStallEnd;
    e.cycle = cycle;
    e.quantum = quantum;
    if (!dt_stalled) e.span = cycle - dt_stall_begin_cycle_;
    else dt_stall_begin_cycle_ = cycle;
    sink_->record(e);
    dt_stalled_prev_ = dt_stalled;
  }
}

void Simulator::record_quantum_snapshot() {
  const std::uint64_t cycle = pipe_.now();
  const std::uint64_t span = cycle - snapshot_cycle_;
  if (span == 0) return;
  const std::uint64_t quantum = cycle / cfg_.adts.quantum_cycles;
  const double dspan = static_cast<double>(span);
  const std::uint32_t n = pipe_.num_threads();

  obs::TraceEvent mrow;
  mrow.kind = obs::EventKind::kQuantum;
  mrow.cycle = cycle;
  mrow.quantum = quantum;
  mrow.span = span;
  mrow.value = pipe_.committed_total() - snapshot_committed_;
  mrow.ipc = static_cast<double>(mrow.value) / dspan;
  mrow.policy_after = static_cast<std::uint8_t>(pipe_.policy());
  mrow.code = static_cast<std::uint8_t>(detector_.guard().state());
  mrow.mask = injector_.enabled() ? injector_.current_mask() : 0;
  const std::uint64_t frag =
      pipe_.machine_stall_breakdown()[obs::StallCause::kFragmentation];
  mrow.stalls[static_cast<std::size_t>(obs::StallCause::kFragmentation)] =
      frag - snapshot_frag_;
  sink_->record(mrow);
  snapshot_cycle_ = cycle;
  snapshot_committed_ = pipe_.committed_total();
  snapshot_frag_ = frag;
  snapshot_dt_slots_ = pipe_.stats().dt_slots_used;

  if (baselines_.size() < n) baselines_.resize(n);
  const double slot_budget =
      dspan * static_cast<double>(pipe_.config().fetch_width);
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    ThreadBaseline& b = baselines_[tid];
    const pipeline::ThreadCounters& c = pipe_.counters(tid);
    // A bumped epoch means the accumulator restarted from zero since the
    // last snapshot; the stale baseline would underflow the delta.
    if (pipe_.quantum_epoch(tid) != b.quantum_epoch) {
      b.committed_quantum = 0;
      b.cond_branches_quantum = 0;
      b.mispredicts_quantum = 0;
      b.l1d_misses_quantum = 0;
      b.l1i_misses_quantum = 0;
    }
    if (pipe_.life_epoch(tid) != b.life_epoch) b.fetched_total = 0;

    obs::TraceEvent t;
    t.kind = obs::EventKind::kThreadQuantum;
    t.cycle = cycle;
    t.quantum = quantum;
    t.tid = static_cast<std::int32_t>(tid);
    t.span = span;
    t.value = c.committed_quantum - b.committed_quantum;
    t.ipc = static_cast<double>(t.value) / dspan;
    t.fetch_share =
        static_cast<double>(c.fetched_total - b.fetched_total) / slot_budget;
    t.mispredict_rate =
        static_cast<double>(c.mispredicts_quantum - b.mispredicts_quantum) /
        dspan;
    t.l1d_miss_rate =
        static_cast<double>(c.l1d_misses_quantum - b.l1d_misses_quantum) /
        dspan;
    t.l1i_miss_rate =
        static_cast<double>(c.l1i_misses_quantum - b.l1i_misses_quantum) /
        dspan;
    const obs::StallBreakdown& cur = pipe_.stall_breakdown(tid);
    for (std::size_t k = 0; k < obs::kNumStallCauses; ++k) {
      t.stalls[k] = cur.slots[k] - b.stalls.slots[k];
    }
    sink_->record(t);

    if (pipe_.cpi_accounting()) {
      // One CPI-stack row per thread per quantum. The pipeline's stacks
      // and cycles_accounted are monotone (never reset by boundaries or
      // swaps), so the delta needs no epoch check; the row's span is the
      // accounted-cycle delta so per-row conservation
      // (Σcpi == commit_width × span) holds even if accounting was
      // enabled mid-quantum.
      const obs::CpiStack& cs = pipe_.cpi_stack(tid);
      obs::TraceEvent cr;
      cr.kind = obs::EventKind::kCpiStack;
      cr.cycle = cycle;
      cr.quantum = quantum;
      cr.tid = static_cast<std::int32_t>(tid);
      cr.span = pipe_.cpi_cycles_accounted() - b.cpi_cycles;
      cr.value = pipe_.config().commit_width;
      for (std::size_t k = 0; k < obs::kNumCpiCauses; ++k) {
        cr.cpi[k] = cs.slots[k] - b.cpi.slots[k];
      }
      cr.ipc = cr.span == 0
                   ? 0.0
                   : static_cast<double>(cr.cpi[static_cast<std::size_t>(
                         obs::CpiCause::kCommitted)]) /
                         static_cast<double>(cr.span);
      for (std::size_t k = 0; k < obs::kNumStallCauses; ++k) {
        cr.stalls[k] = cs.rob_empty_by[k] - b.cpi.rob_empty_by[k];
      }
      for (std::size_t k = 0; k < obs::kCpiMaxThreads; ++k) {
        cr.contend[k] = cs.contend[k] - b.cpi.contend[k];
      }
      sink_->record(cr);
      b.cpi = cs;
      b.cpi_cycles = pipe_.cpi_cycles_accounted();
    }

    b.quantum_epoch = pipe_.quantum_epoch(tid);
    b.life_epoch = pipe_.life_epoch(tid);
    b.committed_quantum = c.committed_quantum;
    b.cond_branches_quantum = c.cond_branches_quantum;
    b.mispredicts_quantum = c.mispredicts_quantum;
    b.l1d_misses_quantum = c.l1d_misses_quantum;
    b.l1i_misses_quantum = c.l1i_misses_quantum;
    b.fetched_total = c.fetched_total;
    b.stalls = cur;
  }
}

void Simulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

void Simulator::flush_trace() {
  if (sink_ == nullptr) return;
  const obs::SwitchAuditLog& audit_log = detector_.audit_log();
  while (audits_emitted_ < audit_log.size()) {
    sink_->record(obs::to_trace_event(audit_log[audits_emitted_]));
    ++audits_emitted_;
  }
}

void Simulator::export_metrics(obs::MetricsRegistry& reg) const {
  // Provenance: which binary + configuration produced this document.
  const BuildInfo& bi = build_info();
  reg.set("run.version", bi.version);
  reg.set("run.git_sha", bi.git_sha);
  reg.set("run.compiler", bi.compiler);
  reg.set("run.flags", bi.flags);
  reg.set("run.seed", cfg_.workload_seed);
  char digest[24];
  std::snprintf(digest, sizeof digest, "0x%016llx",
                static_cast<unsigned long long>(config_digest(cfg_)));
  reg.set("run.config_digest", std::string_view(digest));
  const HostInfo& hi = host_info();
  reg.set("run.host_cpu", std::string_view(hi.cpu_model));
  reg.set("run.host_cores", static_cast<std::uint64_t>(hi.cores));
  reg.set("run.smt_jobs", static_cast<std::uint64_t>(hi.smt_jobs));

  reg.set("config.mode", use_adts_ ? "adts" : "fixed");
  reg.set("config.policy", policy::name(cfg_.fixed_policy));
  reg.set("config.threads", static_cast<std::uint64_t>(cfg_.apps.size()));
  reg.set("config.workload_seed", cfg_.workload_seed);
  reg.set("config.quantum_cycles", cfg_.adts.quantum_cycles);
  for (std::size_t tid = 0; tid < cfg_.apps.size(); ++tid) {
    reg.set("threads." + std::to_string(tid) + ".app",
            std::string_view(cfg_.apps[tid]));
  }
  pipeline::export_metrics(pipe_, reg);
  if (use_adts_) detector_.export_metrics(reg);
  if (injector_.enabled()) injector_.export_metrics(reg);
  // Only a FAILING checker shows up in the stats document: a clean
  // checked run must stay byte-identical to an unchecked one.
  if (check_on_ && !checker_.ok()) {
    reg.set("check.violations", checker_.violation_count());
    for (std::size_t c = 0; c < check::kNumInvariantClasses; ++c) {
      const auto cls = static_cast<check::InvariantClass>(c);
      if (checker_.count(cls) > 0) {
        reg.set("check." + std::string(check::name(cls)), checker_.count(cls));
      }
    }
  }
  if (sink_ != nullptr) {
    reg.set("trace.events", static_cast<std::uint64_t>(sink_->size()));
    reg.set("trace.dropped", sink_->dropped());
  }
}

}  // namespace smt::sim
