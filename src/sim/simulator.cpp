#include "sim/simulator.hpp"

#include <stdexcept>

#include "workload/app_profile.hpp"
#include "workload/thread_program.hpp"

namespace smt::sim {

SimConfig make_config(const workload::Mix& mix, std::size_t threads,
                      std::uint64_t workload_seed) {
  SimConfig cfg;
  cfg.apps = workload::mix_for_threads(mix, threads, workload_seed);
  cfg.workload_seed = workload_seed;
  return cfg;
}

namespace {

std::vector<workload::ThreadProgram> build_programs(const SimConfig& cfg) {
  if (cfg.apps.empty()) {
    throw std::invalid_argument("SimConfig: no applications");
  }
  if (cfg.apps.size() > 8) {
    throw std::invalid_argument(
        "SimConfig: more applications than hardware contexts (8)");
  }
  std::vector<workload::ThreadProgram> programs;
  programs.reserve(cfg.apps.size());
  for (std::size_t tid = 0; tid < cfg.apps.size(); ++tid) {
    programs.emplace_back(workload::profile(cfg.apps[tid]),
                          static_cast<std::uint32_t>(tid), cfg.workload_seed);
  }
  return programs;
}

core::AdtsConfig adts_config_of(const SimConfig& cfg) {
  core::AdtsConfig a = cfg.adts;
  a.initial_policy = cfg.fixed_policy;
  return a;
}

}  // namespace

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg),
      pipe_(cfg.machine, build_programs(cfg)),
      detector_(adts_config_of(cfg)),
      injector_(cfg.fault, cfg.adts.quantum_cycles),
      use_adts_(cfg.use_adts) {
  pipe_.set_policy(cfg.fixed_policy);
}

void Simulator::set_adts_active(bool active) {
  if (active && !use_adts_) {
    detector_.arm(pipe_);
    pipe_.reset_quantum_counters();
  }
  use_adts_ = active;
}

void Simulator::step() {
  pipe_.step();
  // The injector runs before the detector so boundary-cycle faults
  // (fresh counter perturbations, stall windows, blackouts) are already
  // in place when the detector samples its counters.
  const bool faulted = injector_.enabled();
  if (faulted) injector_.tick(pipe_);
  if (use_adts_) detector_.tick(pipe_, faulted ? &injector_ : nullptr);

  if (cfg_.record_trace && pipe_.now() > 0 &&
      pipe_.now() % cfg_.adts.quantum_cycles == 0) {
    TraceRow row;
    row.quantum = trace_.size() + 1;
    row.cycle = pipe_.now();
    row.policy = pipe_.policy();
    row.ipc = detector_.last_quantum_ipc();
    row.fault_mask = injector_.current_mask();
    row.guard_state = detector_.guard().state();
    const core::GuardVerdict& v = detector_.last_guard_verdict();
    row.guard_revert = v.revert;
    row.guard_pin = v.pin_safe_policy;
    row.guard_blocked = !v.allow_switching;
    trace_.push_back(row);
  }
}

void Simulator::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

}  // namespace smt::sim
