// Microarchitectural invariant checker.
//
// The paper's headline numbers (ADTS recovering ~25-27 % over fixed
// ICOUNT) are IPC ratios, and an IPC ratio is only as trustworthy as the
// cycle-level accounting underneath it: a silently broken conservation
// law in fetch, rename or commit corrupts every result without failing a
// single functional test. PR 2 proved one such law (stall-slot
// attribution) per cycle; this subsystem generalises that into a
// pluggable runtime checker that an end-to-end run can keep enabled.
//
// Six invariant classes (InvariantClass), checked every Simulator step:
//
//   * resource conservation — every occupancy counter (icount / brcount /
//     ldcount / memcount / L1D outstanding / front-end count), the shared
//     LSQ, both rename files and both IQ capacities recomputed from the
//     windows and compared with the incrementally maintained values
//     (Pipeline::audit_resources).
//   * slot conservation — the fetch-slot ledger balances absolutely:
//     fetched + fetch_slots_idle == cycles × fetch_width, and
//     charged_stall_slots + dt_slots_used == fetch_slots_idle.
//   * commit order — the machine retires ≤ commit_width per cycle, the
//     global retirement counter equals the sum of per-thread retirements,
//     and each thread's window-head seq advances by exactly its committed
//     delta (in-order commit: a thread cannot retire around its head).
//   * counter epochs — quantum/life epochs never go backwards, quantum
//     accumulators never shrink within an epoch, and every sample passes
//     the hard physical ceilings of pipeline::counters_plausible.
//   * guard transitions — the degradation-guard FSM only moves along
//     legal edges, and only at quantum boundaries (the only cycles the
//     guard's on_quantum runs, fault or no fault).
//   * policy switches — the fetch policy never changes while ADTS cannot
//     act (disabled or suspended); with ADTS on, switches may land on any
//     cycle because Policy_Switch applies when the DT's work drains.
//
// The checker is a pure observer: it reads the pipeline/detector through
// const references, keeps its own baselines, and never mutates simulated
// state — a checked run is bit-identical to an unchecked one (enforced by
// tests/test_invariants.cpp and scripts/check_invariants.sh). Violations
// are recorded here, surfaced as kInvariant trace events by the
// Simulator, and turned into exit code kExitCheck by smtsim.
//
// Adding a pass: see DESIGN.md §11.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "core/guard.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::check {

/// Whether checking is active. kAuto defers to the SMT_CHECK environment
/// variable so a CMake option (and CI) can default-enable checking for
/// every test-constructed Simulator without code changes.
enum class CheckMode : std::uint8_t { kAuto, kOn, kOff };

/// Resolve a CheckMode: kOn/kOff pass through; kAuto reads SMT_CHECK
/// ("1" / "on" / "true" enable, anything else — including unset — off).
[[nodiscard]] bool check_enabled(CheckMode m) noexcept;

enum class InvariantClass : std::uint8_t {
  kResourceConservation,
  kSlotConservation,
  kCommitOrder,
  kCounterEpoch,
  kGuardTransition,
  kPolicySwitch,
};
inline constexpr std::size_t kNumInvariantClasses = 6;

[[nodiscard]] std::string_view name(InvariantClass c) noexcept;
/// TraceDecoder-compatible namer (TraceEvent::code -> class name).
[[nodiscard]] std::string_view invariant_class_name(std::uint8_t code) noexcept;

/// Legal edges of the DegradationGuard FSM (guard.hpp). Self-loops are
/// always legal; the directed edges follow the documented state machine:
/// ARMED -> REVERTING | SAFE_MODE, REVERTING -> ARMED | SAFE_MODE,
/// SAFE_MODE -> COOLDOWN, COOLDOWN -> ARMED | SAFE_MODE.
[[nodiscard]] bool guard_transition_legal(core::GuardState from,
                                          core::GuardState to) noexcept;

/// One recorded violation. `detail` is a static string literal.
struct Violation {
  InvariantClass cls = InvariantClass::kResourceConservation;
  std::uint64_t cycle = 0;
  std::int32_t tid = -1;  ///< offending thread; -1 = machine-wide
  std::uint64_t value = 0;  ///< offending quantity (mask, delta, sample)
  const char* detail = "";
};

struct CheckerConfig {
  /// ADTS quantum (guard transitions are only legal on its boundaries).
  std::uint64_t quantum_cycles = 8192;
  /// Violations recorded with full context; counting never stops.
  std::size_t max_recorded = 64;
};

class InvariantChecker {
 public:
  InvariantChecker() = default;
  explicit InvariantChecker(const CheckerConfig& cfg) : cfg_(cfg) {}

  /// Baseline every delta against the current state. Called implicitly by
  /// the first on_cycle; call explicitly to re-arm after external
  /// manipulation the checker should not attribute to the machine.
  void arm(const pipeline::Pipeline& pipe, const core::DetectorThread& dt);

  /// Run every pass. Call once per Simulator step, after all mutations of
  /// the cycle (pipeline step, fault injection, detector tick). Gaps
  /// (cycles advanced outside the checked step loop) are handled: the
  /// per-span laws stretch over the gap, the absolute laws don't care.
  /// Returns the number of violations newly *recorded* this call.
  std::size_t on_cycle(const pipeline::Pipeline& pipe,
                       const core::DetectorThread& dt, bool adts_enabled);

  [[nodiscard]] bool ok() const noexcept { return total_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const noexcept {
    return total_;
  }
  [[nodiscard]] std::uint64_t count(InvariantClass c) const noexcept {
    return per_class_[static_cast<std::size_t>(c)];
  }
  /// Recorded violations, oldest first (capped at cfg.max_recorded).
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return log_;
  }

  /// Per-class summary + the recorded violations. No output when ok().
  void write_report(std::ostream& os) const;

  /// Test-only: fabricate a guard-state baseline so the next on_cycle
  /// observes a transition that never happened (negative tests).
  void testing_set_prev_guard_state(core::GuardState s) noexcept {
    prev_guard_ = s;
  }

 private:
  void report(InvariantClass cls, std::uint64_t cycle, std::int32_t tid,
              std::uint64_t value, const char* detail);

  /// Per-thread delta baselines from the previous on_cycle.
  struct ThreadBase {
    std::uint64_t committed_total = 0;
    std::uint64_t head_seq = 0;
    std::uint64_t committed_quantum = 0;
    std::uint64_t quantum_epoch = 0;
    std::uint64_t life_epoch = 0;
    /// Cycle the quantum accumulators last restarted (bounds them).
    std::uint64_t epoch_base_cycle = 0;
  };

  CheckerConfig cfg_{};
  bool armed_ = false;
  std::uint64_t prev_cycle_ = 0;
  std::uint64_t prev_committed_ = 0;
  policy::FetchPolicy prev_policy_ = policy::FetchPolicy::kIcount;
  core::GuardState prev_guard_ = core::GuardState::kArmed;
  std::vector<ThreadBase> threads_;

  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kNumInvariantClasses> per_class_{};
  std::vector<Violation> log_;
};

}  // namespace smt::check
