#include "check/invariants.hpp"

#include <cstdlib>
#include <ostream>

#include "core/detector.hpp"
#include "core/guard.hpp"
#include "pipeline/config.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::check {

bool check_enabled(CheckMode m) noexcept {
  switch (m) {
    case CheckMode::kOn: return true;
    case CheckMode::kOff: return false;
    case CheckMode::kAuto: break;
  }
  const char* env = std::getenv("SMT_CHECK");
  if (env == nullptr) return false;
  const std::string_view v(env);
  return v == "1" || v == "on" || v == "true";
}

std::string_view name(InvariantClass c) noexcept {
  switch (c) {
    case InvariantClass::kResourceConservation: return "resource_conservation";
    case InvariantClass::kSlotConservation: return "slot_conservation";
    case InvariantClass::kCommitOrder: return "commit_order";
    case InvariantClass::kCounterEpoch: return "counter_epoch";
    case InvariantClass::kGuardTransition: return "guard_transition";
    case InvariantClass::kPolicySwitch: return "policy_switch";
  }
  return "unknown";
}

std::string_view invariant_class_name(std::uint8_t code) noexcept {
  if (code >= kNumInvariantClasses) return "unknown";
  return name(static_cast<InvariantClass>(code));
}

bool guard_transition_legal(core::GuardState from,
                            core::GuardState to) noexcept {
  if (from == to) return true;
  using core::GuardState;
  switch (from) {
    case GuardState::kArmed:
      return to == GuardState::kReverting || to == GuardState::kSafeMode;
    case GuardState::kReverting:
      return to == GuardState::kArmed || to == GuardState::kSafeMode;
    case GuardState::kSafeMode:
      return to == GuardState::kCooldown;
    case GuardState::kCooldown:
      return to == GuardState::kArmed || to == GuardState::kSafeMode;
  }
  return false;
}

void InvariantChecker::report(InvariantClass cls, std::uint64_t cycle,
                              std::int32_t tid, std::uint64_t value,
                              const char* detail) {
  ++total_;
  ++per_class_[static_cast<std::size_t>(cls)];
  if (log_.size() < cfg_.max_recorded) {
    log_.push_back(Violation{cls, cycle, tid, value, detail});
  }
}

void InvariantChecker::arm(const pipeline::Pipeline& pipe,
                           const core::DetectorThread& dt) {
  armed_ = true;
  prev_cycle_ = pipe.now();
  prev_committed_ = pipe.stats().committed;
  prev_policy_ = pipe.policy();
  prev_guard_ = dt.guard().state();
  threads_.assign(pipe.num_threads(), ThreadBase{});
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    ThreadBase& b = threads_[tid];
    b.committed_total = pipe.counters(tid).committed_total;
    b.head_seq = pipe.head_seq(tid);
    b.committed_quantum = pipe.counters(tid).committed_quantum;
    b.quantum_epoch = pipe.quantum_epoch(tid);
    b.life_epoch = pipe.life_epoch(tid);
    // Cycle 0 is a safe (over-permissive) restart baseline: the
    // plausibility ceilings are hard maxima, so overestimating the span
    // an accumulator covers can only make them looser.
    b.epoch_base_cycle = 0;
  }
}

std::size_t InvariantChecker::on_cycle(const pipeline::Pipeline& pipe,
                                       const core::DetectorThread& dt,
                                       bool adts_enabled) {
  if (!armed_) {
    arm(pipe, dt);
    return 0;
  }
  const std::size_t recorded_before = log_.size();
  const std::uint64_t now = pipe.now();
  const pipeline::PipelineStats& st = pipe.stats();
  const pipeline::PipelineConfig& mc = pipe.config();
  const std::uint64_t dc = now - prev_cycle_;  // 1 unless stepped externally

  // --- slot conservation (absolute: holds from construction) ------------
  if (st.cycles != now) {
    report(InvariantClass::kSlotConservation, now, -1, st.cycles,
           "cycle counter out of sync with pipeline clock");
  }
  const std::uint64_t slot_budget = st.cycles * mc.fetch_width;
  if (st.fetched + st.fetch_slots_idle != slot_budget) {
    report(InvariantClass::kSlotConservation, now, -1,
           st.fetched + st.fetch_slots_idle,
           "fetched + idle slots != cycles * fetch_width");
  }
  const std::uint64_t charged = pipe.charged_stall_slots();
  if (charged + st.dt_slots_used != st.fetch_slots_idle) {
    report(InvariantClass::kSlotConservation, now, -1,
           charged + st.dt_slots_used,
           "charged stall slots + DT slots != idle slots");
  }

  // --- commit order: machine-wide span laws ------------------------------
  const std::uint64_t commit_d = st.committed - prev_committed_;
  if (st.committed < prev_committed_) {
    report(InvariantClass::kCommitOrder, now, -1, st.committed,
           "global retirement counter went backwards");
  } else if (dc > 0 && commit_d > dc * mc.commit_width) {
    report(InvariantClass::kCommitOrder, now, -1, commit_d,
           "retired more than commit_width per cycle");
  }

  // --- per-thread passes --------------------------------------------------
  std::uint64_t thread_commit_sum = 0;
  bool sum_valid = true;
  const std::uint32_t n = pipe.num_threads();
  for (std::uint32_t tid = 0; tid < n; ++tid) {
    ThreadBase& b = threads_[tid];
    const pipeline::ThreadCounters& c = pipe.counters(tid);
    const std::uint64_t life = pipe.life_epoch(tid);
    const std::uint64_t qep = pipe.quantum_epoch(tid);
    const std::int32_t stid = static_cast<std::int32_t>(tid);

    // Counter epochs: monotone generations.
    if (life < b.life_epoch) {
      report(InvariantClass::kCounterEpoch, now, stid, life,
             "life epoch went backwards");
    }
    if (qep < b.quantum_epoch) {
      report(InvariantClass::kCounterEpoch, now, stid, qep,
             "quantum epoch went backwards");
    }
    const bool life_reset = life != b.life_epoch;
    const bool quantum_reset = qep != b.quantum_epoch;
    if (quantum_reset) {
      // The reset happened somewhere in (prev_cycle_, now]; baselining
      // one cycle early keeps the span an upper bound.
      b.epoch_base_cycle = now > 0 ? now - 1 : 0;
    } else if (c.committed_quantum < b.committed_quantum) {
      report(InvariantClass::kCounterEpoch, now, stid, c.committed_quantum,
             "quantum accumulator shrank without an epoch bump");
    }

    // Physical ceilings over the span the accumulators cover.
    const std::uint64_t elapsed = now - b.epoch_base_cycle;
    if (elapsed > 0 &&
        !pipeline::counters_plausible(c, elapsed, mc.commit_width,
                                      mc.rob_per_thread)) {
      report(InvariantClass::kCounterEpoch, now, stid, c.committed_quantum,
             "counter sample violates a hard physical ceiling");
    }

    // In-order commit: the window head advances by exactly the thread's
    // retirement delta. A context switch (life reset) restarts the
    // committed counter, so that span is unattributable — skip once.
    if (life_reset) {
      sum_valid = false;
    } else if (c.committed_total < b.committed_total) {
      report(InvariantClass::kCommitOrder, now, stid, c.committed_total,
             "thread retirement counter went backwards");
      sum_valid = false;
    } else {
      const std::uint64_t td = c.committed_total - b.committed_total;
      thread_commit_sum += td;
      const std::uint64_t head = pipe.head_seq(tid);
      if (head - b.head_seq != td) {
        report(InvariantClass::kCommitOrder, now, stid, head,
               "window head seq did not advance with retirement");
        sum_valid = false;
      }
    }

    b.committed_total = c.committed_total;
    b.head_seq = pipe.head_seq(tid);
    b.committed_quantum = c.committed_quantum;
    b.quantum_epoch = qep;
    b.life_epoch = life;
  }
  if (sum_valid && thread_commit_sum != commit_d) {
    report(InvariantClass::kCommitOrder, now, -1, thread_commit_sum,
           "machine retirement != sum of per-thread retirements");
  }

  // --- policy-switch legality --------------------------------------------
  const policy::FetchPolicy pol = pipe.policy();
  if (pol != prev_policy_ && !adts_enabled) {
    report(InvariantClass::kPolicySwitch, now, -1,
           static_cast<std::uint64_t>(pol),
           "fetch policy changed while ADTS could not act");
  }
  prev_policy_ = pol;

  // --- guard FSM legality -------------------------------------------------
  const core::GuardState gs = dt.guard().state();
  if (gs != prev_guard_) {
    if (!guard_transition_legal(prev_guard_, gs)) {
      report(InvariantClass::kGuardTransition, now, -1,
             static_cast<std::uint64_t>(gs),
             "illegal guard state-machine edge");
    }
    // on_quantum runs only on boundary cycles (a starved boundary is
    // skipped, not deferred), so any state change away from one is
    // corruption — faulted or not. A boundary lies in (prev, now] iff the
    // two cycles fall in different quanta.
    const bool boundary_in_span =
        now / cfg_.quantum_cycles > prev_cycle_ / cfg_.quantum_cycles;
    if (!boundary_in_span) {
      report(InvariantClass::kGuardTransition, now, -1,
             static_cast<std::uint64_t>(gs),
             "guard state changed away from a quantum boundary");
    }
    prev_guard_ = gs;
  }

  // --- resource conservation (structural recount) ------------------------
  const pipeline::Pipeline::ResourceAudit a = pipe.audit_resources();
  if (!a.ok) {
    if (a.thread_mismatch != 0) {
      report(InvariantClass::kResourceConservation, now, -1,
             a.thread_mismatch,
             "occupancy counters disagree with window recount");
    }
    if (a.seq_mismatch != 0) {
      report(InvariantClass::kCommitOrder, now, -1, a.seq_mismatch,
             "window seqs not contiguous from head_seq");
    }
    if (a.lsq_mismatch) {
      report(InvariantClass::kResourceConservation, now, -1, 0,
             "LSQ occupancy disagrees with held entries");
    }
    if (a.int_rename_mismatch || a.fp_rename_mismatch) {
      report(InvariantClass::kResourceConservation, now, -1,
             a.int_rename_mismatch ? 0 : 1,
             "rename registers held + free != configured");
    }
    if (a.iq_overflow) {
      report(InvariantClass::kResourceConservation, now, -1, 0,
             "instruction queue beyond configured capacity");
    }
  }

  prev_cycle_ = now;
  prev_committed_ = st.committed;
  return log_.size() - recorded_before;
}

void InvariantChecker::write_report(std::ostream& os) const {
  if (ok()) return;
  os << "invariant check FAILED: " << total_ << " violation(s)\n";
  for (std::size_t c = 0; c < kNumInvariantClasses; ++c) {
    if (per_class_[c] == 0) continue;
    os << "  " << name(static_cast<InvariantClass>(c)) << ": "
       << per_class_[c] << '\n';
  }
  const std::size_t shown = log_.size();
  os << "  first " << shown << " violation(s):\n";
  for (const Violation& v : log_) {
    os << "    cycle " << v.cycle << " [" << name(v.cls) << "] ";
    if (v.tid >= 0) os << "tid " << v.tid << ": ";
    os << v.detail << " (value " << v.value << ")\n";
  }
}

}  // namespace smt::check
