// smtfleetd — crash-tolerant experiment-fleet daemon.
//
// Accepts a batch file describing a mix × policy/adts × threshold × seed
// grid, shards the jobs across supervised `smtsim` worker processes, and
// makes the whole batch survive anything short of disk loss:
//
//   * content-addressed result cache keyed on the job digest
//     (sim::config_digest + run-control fields) — a digest computed once
//     is never simulated again, across runs and across batches;
//   * append-only JSONL journal: a SIGKILLed daemon restarted with the
//     same arguments resumes exactly where it stopped;
//   * per-job wall-clock timeouts, bounded retries with deterministic
//     exponential backoff, crash/hang detection via exit codes/signals;
//   * graceful SIGTERM/SIGINT drain: in-flight jobs finish, the journal
//     is flushed, exit kExitCancelled; a second signal force-kills.
//
// Chaos options (--chaos-*) deliberately kill or stall workers on a
// seeded schedule — the fault-injection discipline of src/fault/ turned
// on the fleet itself; scripts/check_fleet.sh uses them as its test rig.
//
// Exit codes: common/exit_codes.hpp (documented in --help).
//
// Examples:
//   smtfleetd --batch grid.batch --out results/
//   smtfleetd --batch grid.batch --out results/ --workers 4 --timeout-ms 60000
//   smtfleetd --batch grid.batch --out results/ --list-jobs
//   smtfleetd --batch grid.batch --out results/ --chaos-kill 0.3 --chaos-seed 7
#include <time.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/rng.hpp"
#include "fleet/job_spec.hpp"
#include "fleet/journal.hpp"
#include "fleet/result_cache.hpp"
#include "fleet/scheduler.hpp"
#include "fleet/supervisor.hpp"

namespace {

constexpr const char* kUsage = R"(usage: smtfleetd --batch FILE --out DIR [options]

batch:
  --batch FILE          batch file: the experiment grid (see DESIGN.md §14)
  --out DIR             output directory; holds cache/ (one stats-JSON per
                        job digest) and journal.jsonl (crash recovery)
  --smtsim PATH         worker binary (default: smtsim next to this binary)

robustness:
  --workers N           concurrent worker processes (default 2)
  --retries K           worker starts per job before it fails (default 3)
  --timeout-ms T        per-job wall-clock budget; 0 = no hang detection
                        (default 120000)
  --backoff-ms B        base retry delay; attempt k waits min(cap, B<<(k-1))
                        (default 250)
  --backoff-cap-ms C    retry delay ceiling (default 8000)
  --poll-ms P           supervisor poll interval (default 20)

chaos (deliberate worker faults, for testing the fleet itself):
  --chaos-kill P        probability a started worker is SIGKILLed mid-run
  --chaos-stall P       probability a started worker is SIGSTOPped (hangs
                        until the per-job timeout reaps it)
  --chaos-window-ms W   strike lands uniformly within W ms of the worker
                        start — pick W below the typical job runtime so
                        victims die mid-run (default 500)
  --chaos-seed N        chaos schedule seed (default 0xF1EE7)

telemetry:
  --status PATH         maintain a JSON progress snapshot at PATH, updated
                        atomically (write tmp + rename) every interval:
                        queued/running/settled/retry counts, throughput and
                        ETA. Safe to read concurrently (smtprof status PATH)
  --status-interval-ms I  snapshot refresh interval (default 1000)

inspection:
  --list-jobs           print "digest<TAB>smtsim args" per job and exit
  --help                this text

exit codes:
  0  batch complete: every job done or served from cache
  2  usage error (unknown or malformed option)
  3  configuration error (unreadable batch/out, invalid value)
  5  drained on SIGTERM/SIGINT before the batch completed (journal and
     cache are consistent; rerun with the same arguments to resume)
  6  batch settled with permanently failed jobs (see journal 'fail'
     records)
)";

volatile std::sig_atomic_t g_signals_seen = 0;

void on_drain_signal(int) { g_signals_seen = g_signals_seen + 1; }

/// Monotonic milliseconds (CLOCK_MONOTONIC — tools may read clocks; the
/// library scheduler only ever sees these values as opaque numbers).
std::uint64_t now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

void sleep_ms(std::uint64_t ms) {
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  nanosleep(&ts, nullptr);
}

double get_prob(const smt::CliArgs& args, const std::string& key) {
  const double p = args.get_double(key, 0.0);
  if (p < 0.0 || p > 1.0) {
    throw smt::ConfigError("--" + key + " is a probability and must be in "
                           "[0,1], got " + std::to_string(p));
  }
  return p;
}

/// smtsim binary co-located with this daemon, unless overridden.
std::string default_smtsim(const std::string& argv0) {
  const std::size_t slash = argv0.rfind('/');
  if (slash == std::string::npos) return "smtsim";
  return argv0.substr(0, slash + 1) + "smtsim";
}

/// Chaos plan for one worker attempt, decided at spawn time from the
/// seeded stream: what to do and how long after the start to do it.
struct ChaosAction {
  enum class Kind { kNone, kKill, kStall } kind = Kind::kNone;
  std::uint64_t at_ms = 0;
  bool fired = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace smt;
  try {
    const CliArgs args(argc, argv,
                       {"batch", "out", "smtsim", "workers", "retries",
                        "timeout-ms", "backoff-ms", "backoff-cap-ms",
                        "poll-ms", "chaos-kill", "chaos-stall",
                        "chaos-window-ms", "chaos-seed", "status",
                        "status-interval-ms", "list-jobs", "help"},
                       /*flag_keys=*/{"list-jobs", "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return kExitOk;
    }
    if (!args.has("batch") || !args.has("out")) {
      throw UsageError("--batch FILE and --out DIR are required");
    }

    const std::string batch_path = args.get_or("batch", "");
    std::ifstream batch_in(batch_path);
    if (!batch_in) {
      throw ConfigError("--batch: cannot read '" + batch_path + "'");
    }
    const fleet::BatchSpec batch = fleet::parse_batch(batch_in);
    const std::uint64_t batch_dig = fleet::batch_digest(batch);

    std::vector<std::uint64_t> digests;
    digests.reserve(batch.jobs.size());
    for (const fleet::FleetJob& job : batch.jobs) {
      digests.push_back(fleet::job_digest(job));
    }

    const std::string smtsim_bin =
        args.get_or("smtsim", default_smtsim(argv[0]));

    if (args.has("list-jobs")) {
      for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
        std::cout << fleet::digest_hex(digests[i]) << '\t' << smtsim_bin;
        for (const std::string& a :
             fleet::smtsim_args(batch.jobs[i], "-")) {
          std::cout << ' ' << a;
        }
        std::cout << '\n';
      }
      return kExitOk;
    }

    fleet::FleetConfig fcfg;
    fcfg.max_workers = args.get_u64("workers", 2);
    if (fcfg.max_workers == 0) {
      throw ConfigError("--workers must be >= 1");
    }
    fcfg.max_attempts = static_cast<std::uint32_t>(args.get_u64("retries", 3));
    if (fcfg.max_attempts == 0) {
      throw ConfigError("--retries must be >= 1 (it counts starts, not "
                        "re-starts)");
    }
    fcfg.timeout_ms = args.get_u64("timeout-ms", 120000);
    fcfg.backoff_base_ms = args.get_u64("backoff-ms", 250);
    fcfg.backoff_cap_ms = args.get_u64("backoff-cap-ms", 8000);
    if (fcfg.backoff_base_ms == 0 || fcfg.backoff_cap_ms < fcfg.backoff_base_ms) {
      throw ConfigError("--backoff-ms must be >= 1 and <= --backoff-cap-ms");
    }
    const std::uint64_t poll_ms_opt = args.get_u64("poll-ms", 20);
    if (poll_ms_opt == 0) {
      throw ConfigError("--poll-ms must be >= 1");
    }
    const double chaos_kill = get_prob(args, "chaos-kill");
    const double chaos_stall = get_prob(args, "chaos-stall");
    if (chaos_kill + chaos_stall > 1.0) {
      throw ConfigError("--chaos-kill + --chaos-stall must not exceed 1");
    }
    if (chaos_stall > 0.0 && fcfg.timeout_ms == 0) {
      throw ConfigError("--chaos-stall needs --timeout-ms > 0 (a stalled "
                        "worker is only ever reaped by the timeout)");
    }
    const std::uint64_t chaos_window_ms = args.get_u64("chaos-window-ms", 500);
    if ((chaos_kill > 0.0 || chaos_stall > 0.0) && chaos_window_ms == 0) {
      throw ConfigError("--chaos-window-ms must be >= 1");
    }
    Rng chaos_rng(args.get_u64("chaos-seed", 0xF1EE7));

    const std::string out_dir = args.get_or("out", "");
    fleet::ResultCache cache(out_dir + "/cache");
    const std::string journal_path = out_dir + "/journal.jsonl";

    // ---- recovery: fold the journal, then probe the cache ----------------
    std::set<std::uint64_t> settled_digests;
    {
      std::ifstream jin(journal_path);
      if (jin) {
        const std::vector<fleet::JournalRecord> past =
            fleet::read_journal(jin);
        for (const fleet::JournalRecord& rec : past) {
          if (rec.kind == fleet::JournalKind::kBatch &&
              rec.digest != batch_dig) {
            throw ConfigError(
                "journal '" + journal_path + "' belongs to a different "
                "batch (" + fleet::digest_str(rec.digest) + " vs " +
                fleet::digest_str(batch_dig) + "); use a fresh --out "
                "directory per grid");
          }
          if (rec.kind == fleet::JournalKind::kDone ||
              rec.kind == fleet::JournalKind::kCached) {
            settled_digests.insert(rec.digest);
          }
        }
      }
    }

    std::ofstream journal(journal_path, std::ios::app);
    if (!journal) {
      throw ConfigError("cannot append to journal '" + journal_path + "'");
    }
    const auto log_record = [&journal](const fleet::JournalRecord& rec) {
      fleet::write_record(journal, rec);
      journal.flush();  // one flushed line == one durable transition
    };
    const auto record_of = [&digests](fleet::JournalKind kind, std::size_t job,
                                      std::uint32_t attempt,
                                      std::string detail = "") {
      fleet::JournalRecord rec;
      rec.kind = kind;
      rec.job = job;
      rec.digest = digests[job];
      rec.attempt = attempt;
      rec.detail = std::move(detail);
      return rec;
    };

    {
      fleet::JournalRecord header;
      header.kind = fleet::JournalKind::kBatch;
      header.job = batch.jobs.size();
      header.digest = batch_dig;
      header.detail = batch_path;
      log_record(header);
    }

    fleet::FleetScheduler sched(fcfg);
    std::size_t recovered = 0;
    for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
      sched.add_job();
      // A journaled completion or a cache entry (possibly from another
      // batch sharing this digest) settles the job without a worker.
      const bool journaled = settled_digests.count(digests[i]) > 0;
      if (journaled || cache.contains(digests[i])) {
        sched.mark_cached(i);
        log_record(record_of(fleet::JournalKind::kCached, i, 0,
                             journaled ? "journal" : "cache"));
        ++recovered;
      }
    }
    std::cout << "smtfleetd: " << batch.jobs.size() << " jobs ("
              << recovered << " already settled), " << fcfg.max_workers
              << " workers, journal " << journal_path << '\n';

    std::signal(SIGTERM, on_drain_signal);
    std::signal(SIGINT, on_drain_signal);

    fleet::WorkerSupervisor supervisor;
    std::map<int, std::size_t> pid_to_job;
    std::map<int, std::string> pid_to_tmp;
    std::map<int, ChaosAction> pid_to_chaos;
    std::map<int, std::uint64_t> pid_to_start_ms;  // attempt wall-clock t0
    std::set<std::size_t> timing_out;  // killed for timeout, await reap
    bool announced_drain = false;

    // --- --status: atomic-rename JSON progress snapshots ------------------
    const std::string status_path = args.get_or("status", "");
    const std::uint64_t status_interval =
        args.get_u64("status-interval-ms", 1000);
    if (args.has("status") && status_path.empty()) {
      throw ConfigError("--status needs a file path");
    }
    if (status_interval == 0) {
      throw ConfigError("--status-interval-ms must be >= 1");
    }
    const std::uint64_t started_ms = now_ms();
    std::uint64_t last_status_ms = 0;
    std::uint64_t retries_total = 0;
    const auto write_status = [&](std::uint64_t now) {
      if (status_path.empty()) return;
      std::size_t done = 0, cached = 0, failed = 0;
      for (std::size_t i = 0; i < sched.size(); ++i) {
        switch (sched.job(i).state) {
          case fleet::JobState::kDone: ++done; break;
          case fleet::JobState::kCached: ++cached; break;
          case fleet::JobState::kFailed: ++failed; break;
          default: break;
        }
      }
      const std::size_t settled = done + cached + failed;
      const std::size_t running = pid_to_job.size();
      const std::size_t queued = sched.size() - settled - running;
      const std::uint64_t elapsed = now - started_ms;
      // Throughput counts worker-settled jobs only (cache hits are
      // instantaneous and would make the ETA wildly optimistic).
      const double mins = static_cast<double>(elapsed) / 60000.0;
      const std::size_t worked = done + failed;
      const double per_min =
          mins > 0.0 ? static_cast<double>(worked) / mins : 0.0;
      const std::uint64_t eta_ms =
          worked > 0 && queued + running > 0
              ? elapsed / worked * (queued + running)
              : 0;
      const std::string tmp = status_path + ".tmp";
      std::ofstream os(tmp, std::ios::trunc);
      if (!os) return;  // snapshot is best-effort; never kill the batch
      os << "{\"jobs\":" << sched.size() << ",\"queued\":" << queued
         << ",\"running\":" << running << ",\"done\":" << done
         << ",\"cached\":" << cached << ",\"failed\":" << failed
         << ",\"settled\":" << settled << ",\"retries\":" << retries_total
         << ",\"workers\":" << fcfg.max_workers
         << ",\"elapsed_ms\":" << elapsed << ",\"jobs_per_min\":" << per_min
         << ",\"eta_ms\":" << eta_ms
         << ",\"draining\":" << (sched.draining() ? "true" : "false")
         << "}\n";
      os.close();
      if (os) std::rename(tmp.c_str(), status_path.c_str());
      last_status_ms = now;
    };

    const auto progress = [&sched, &digests](std::size_t job,
                                             const char* what,
                                             const std::string& extra) {
      std::cout << "[" << sched.settled() << "/" << sched.size() << "] job "
                << job << " " << what << " digest="
                << fleet::digest_hex(digests[job])
                << (extra.empty() ? "" : " ") << extra << '\n';
    };

    while (true) {
      const std::uint64_t now = now_ms();

      // -- signals: first = drain, second = force-quit ---------------------
      if (g_signals_seen > 0 && !sched.draining()) {
        sched.set_draining();
        std::cout << "smtfleetd: drain requested ("
                  << supervisor.live() << " in flight)\n";
        announced_drain = true;
      }
      if (g_signals_seen > 1) {
        std::cout << "smtfleetd: force quit, killing "
                  << supervisor.live() << " workers\n";
        supervisor.kill_all(SIGKILL);
        while (supervisor.live() > 0) {
          for (const fleet::ReapedWorker& r : supervisor.poll()) {
            const std::size_t job = pid_to_job[r.pid];
            cache.discard(pid_to_tmp[r.pid]);
            (void)sched.on_exit(job, r.exit, now);
            fleet::JournalRecord rec = record_of(
                fleet::JournalKind::kRetry, job, sched.job(job).attempts,
                "force quit");
            rec.has_telemetry = true;
            rec.host_ms = now - pid_to_start_ms[r.pid];
            rec.utime_ms = r.utime_ms;
            rec.stime_ms = r.stime_ms;
            rec.maxrss_kb = r.maxrss_kb;
            ++retries_total;
            log_record(rec);
          }
          sleep_ms(1);
        }
        journal.flush();
        write_status(now_ms());
        return kExitCancelled;
      }

      // -- reap finished workers -------------------------------------------
      for (const fleet::ReapedWorker& r : supervisor.poll()) {
        const std::size_t job = pid_to_job[r.pid];
        const std::string tmp = pid_to_tmp[r.pid];
        const std::uint64_t attempt_ms = now - pid_to_start_ms[r.pid];
        pid_to_job.erase(r.pid);
        pid_to_tmp.erase(r.pid);
        pid_to_chaos.erase(r.pid);
        pid_to_start_ms.erase(r.pid);
        // Worker telemetry for the settling journal record: attempt wall
        // time plus the wait4 rusage numbers.
        const auto with_telemetry = [&r, attempt_ms](
                                        fleet::JournalRecord rec) {
          rec.has_telemetry = true;
          rec.host_ms = attempt_ms;
          rec.utime_ms = r.utime_ms;
          rec.stime_ms = r.stime_ms;
          rec.maxrss_kb = r.maxrss_kb;
          return rec;
        };

        const bool was_timeout = timing_out.erase(job) > 0;
        fleet::Outcome outcome;
        std::string how;
        if (was_timeout) {
          outcome = sched.on_timeout(job, now);
          how = "timeout";
        } else {
          outcome = sched.on_exit(job, r.exit, now);
          how = r.exit.signaled ? "signal " + std::to_string(r.exit.status)
                                : "exit " + std::to_string(r.exit.status);
        }

        if (outcome == fleet::Outcome::kAccepted) {
          // Publish only after the integrity cross-check: the document's
          // own run.config_digest must match the job's configuration.
          const std::optional<std::uint64_t> stamped =
              fleet::stats_config_digest(tmp);
          const std::uint64_t expected =
              sim::config_digest(fleet::sim_config_for(batch.jobs[job]));
          if (!stamped || *stamped != expected || !cache.commit(tmp, digests[job])) {
            cache.discard(tmp);
            std::cerr << "smtfleetd: job " << job << " produced a stats "
                      << "document that fails the digest cross-check ("
                      << (stamped ? fleet::digest_str(*stamped) : "absent")
                      << " vs " << fleet::digest_str(expected)
                      << "); check --smtsim\n";
            log_record(record_of(fleet::JournalKind::kFail, job,
                                 sched.job(job).attempts,
                                 "stats digest mismatch"));
            // The scheduler already counted success; rebuild the verdict
            // as a permanent failure by treating the batch as failed.
            // (Reaching here means the worker binary is wrong — every
            // job would fail the same way, so stop early.)
            supervisor.kill_all(SIGKILL);
            journal.flush();
            return kExitBatchFailed;
          }
          progress(job, "done", "(attempt " +
                   std::to_string(sched.job(job).attempts) + ")");
          log_record(with_telemetry(record_of(fleet::JournalKind::kDone, job,
                                              sched.job(job).attempts)));
        } else {
          cache.discard(tmp);
          if (outcome == fleet::Outcome::kRequeued) {
            const std::uint64_t delay = sched.job(job).retry_at_ms - now;
            progress(job, "requeued",
                     "(" + how + "; retry in " + std::to_string(delay) +
                     " ms)");
            ++retries_total;
            log_record(with_telemetry(
                record_of(fleet::JournalKind::kRetry, job,
                          sched.job(job).attempts,
                          how + "; retry in " + std::to_string(delay) +
                          " ms")));
          } else {
            progress(job, "FAILED", "(" + sched.job(job).failure + ")");
            log_record(with_telemetry(
                record_of(fleet::JournalKind::kFail, job,
                          sched.job(job).attempts, sched.job(job).failure)));
          }
        }
      }

      // -- hang detection: kill overdue workers, reap on a later pass ------
      for (const std::size_t job : sched.expired(now)) {
        if (timing_out.count(job) > 0) continue;  // kill already sent
        for (const auto& [pid, jid] : pid_to_job) {
          if (jid == job) {
            timing_out.insert(job);
            std::cout << "smtfleetd: job " << job << " exceeded "
                      << fcfg.timeout_ms << " ms, killing worker " << pid
                      << '\n';
            supervisor.kill_worker(pid, SIGKILL);
            break;
          }
        }
      }

      // -- chaos: fire any due scheduled faults ----------------------------
      for (auto& [pid, action] : pid_to_chaos) {
        if (action.kind == ChaosAction::Kind::kNone || action.fired ||
            now < action.at_ms) {
          continue;
        }
        action.fired = true;
        const std::size_t job = pid_to_job[pid];
        if (action.kind == ChaosAction::Kind::kKill) {
          std::cout << "smtfleetd: chaos SIGKILL worker " << pid << " (job "
                    << job << ")\n";
          supervisor.kill_worker(pid, SIGKILL);
        } else {
          std::cout << "smtfleetd: chaos SIGSTOP worker " << pid << " (job "
                    << job << ")\n";
          supervisor.kill_worker(pid, SIGSTOP);
        }
      }

      // -- start ready jobs -------------------------------------------------
      while (const std::optional<std::size_t> ready = sched.next_ready(now)) {
        const std::size_t job = *ready;
        const std::uint32_t attempt = sched.job(job).attempts + 1;
        const std::string tmp = cache.tmp_path_for(digests[job], attempt);
        std::vector<std::string> worker_argv{smtsim_bin};
        for (std::string& a : fleet::smtsim_args(batch.jobs[job], tmp)) {
          worker_argv.push_back(std::move(a));
        }
        const int pid = supervisor.spawn(worker_argv);
        if (pid < 0) {
          std::cerr << "smtfleetd: fork failed, backing off\n";
          break;
        }
        sched.on_started(job, now);
        pid_to_job[pid] = job;
        pid_to_tmp[pid] = tmp;
        pid_to_start_ms[pid] = now;

        ChaosAction action;
        if (chaos_kill > 0.0 || chaos_stall > 0.0) {
          const double roll = chaos_rng.uniform();
          if (roll < chaos_kill) {
            action.kind = ChaosAction::Kind::kKill;
          } else if (roll < chaos_kill + chaos_stall) {
            action.kind = ChaosAction::Kind::kStall;
          }
          if (action.kind != ChaosAction::Kind::kNone) {
            action.at_ms = now + 1 + chaos_rng.below(chaos_window_ms);
          }
        }
        pid_to_chaos[pid] = action;
        log_record(record_of(fleet::JournalKind::kStart, job, attempt));
        progress(job, "started",
                 "(attempt " + std::to_string(attempt) + ", pid " +
                 std::to_string(pid) + ")");
      }

      // -- status snapshot --------------------------------------------------
      if (!status_path.empty() && now - last_status_ms >= status_interval) {
        write_status(now);
      }

      // -- termination ------------------------------------------------------
      if (sched.all_settled()) break;
      if (sched.draining() && supervisor.live() == 0) break;

      // -- sleep until the next poll / deadline ----------------------------
      std::uint64_t sleep_for = poll_ms_opt;
      if (const std::optional<std::uint64_t> wake = sched.next_wake_ms(now)) {
        sleep_for = std::min(sleep_for, *wake > now ? *wake - now : 1);
      }
      sleep_ms(sleep_for);
    }

    journal.flush();
    write_status(now_ms());
    const int code = sched.batch_exit_code();
    std::size_t done = 0, cached = 0, failed = 0;
    for (std::size_t i = 0; i < sched.size(); ++i) {
      switch (sched.job(i).state) {
        case fleet::JobState::kDone: ++done; break;
        case fleet::JobState::kCached: ++cached; break;
        case fleet::JobState::kFailed: ++failed; break;
        default: break;
      }
    }
    std::cout << "smtfleetd: batch "
              << (code == kExitOk
                      ? "complete"
                      : code == kExitBatchFailed ? "FAILED" : "drained")
              << ": " << done << " run, " << cached << " cached, " << failed
              << " failed, "
              << (sched.size() - done - cached - failed) << " remaining (exit "
              << code << ")\n";
    if (announced_drain && code == kExitOk) {
      // Every job settled before the drain took effect.
      return kExitOk;
    }
    return code;
  } catch (const UsageError& e) {
    std::cerr << "smtfleetd: " << e.what() << "\n\n" << kUsage;
    return kExitUsage;
  } catch (const ConfigError& e) {
    std::cerr << "smtfleetd: " << e.what() << '\n';
    return kExitConfig;
  } catch (const std::exception& e) {
    std::cerr << "smtfleetd: " << e.what() << '\n';
    return kExitConfig;
  }
}
