// smtsim — command-line driver for the SMT/ADTS simulator.
//
// Runs a mix (or an explicit application list) under a fixed fetch
// policy, under ADTS, or under the oracle, with the machine knobs
// exposed as options. Prints a human-readable report or CSV.
//
// Examples:
//   smtsim --mix int8 --cycles 500000
//   smtsim --apps gzip,mcf,swim,crafty --policy BRCOUNT
//   smtsim --mix ctrl8 --adts --heuristic 3 --threshold 2
//   smtsim --mix bal1 --oracle --quanta 16
//   smtsim --mix fp8 --threads 4 --csv
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/heuristics.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace {

constexpr const char* kUsage = R"(usage: smtsim [options]

workload (one of):
  --mix NAME            one of the 13 built-in mixes (see --list)
  --apps a,b,c,...      explicit application list (max 8)
  --threads N           contexts to use from the mix (default 8)
  --seed N              workload seed (default 2003)

scheduling (one of):
  --policy NAME         fixed fetch policy (default ICOUNT)
  --adts                adaptive scheduling (detector thread)
    --heuristic 1|2|3|3p|4    (default 3)
    --threshold M             IPC threshold (default 2)
    --quantum CYCLES          scheduling quantum (default 8192)
    --instant                 zero-cost switching (ablation)
  --oracle              per-quantum oracle over {ICOUNT,BRCOUNT,L1MISSCOUNT}
    --all-policies            oracle over all ten policies
    --quanta N                oracle quanta (default 16)

run control:
  --cycles N            cycles to simulate (default 262144)
  --warmup N            warm-up cycles excluded from stats (default 32768)
  --csv                 machine-readable output
  --list                list mixes, applications and policies, then exit
  --help                this text
)";

void list_everything() {
  std::cout << "mixes:\n";
  for (const auto& m : smt::workload::all_mixes()) {
    std::cout << "  " << m.name << " — " << m.description << '\n';
  }
  std::cout << "applications:";
  for (const auto& a : smt::workload::all_profile_names()) {
    std::cout << ' ' << a;
  }
  std::cout << "\npolicies:";
  for (auto p : smt::policy::all_policies()) {
    std::cout << ' ' << smt::policy::name(p);
  }
  std::cout << "\nheuristics: 1 2 3 3p 4\n";
}

smt::core::HeuristicType parse_heuristic(const std::string& s) {
  using smt::core::HeuristicType;
  if (s == "1") return HeuristicType::kType1;
  if (s == "2") return HeuristicType::kType2;
  if (s == "3") return HeuristicType::kType3;
  if (s == "3p" || s == "3'") return HeuristicType::kType3Prime;
  if (s == "4") return HeuristicType::kType4;
  throw std::invalid_argument("--heuristic must be 1|2|3|3p|4");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smt;
  try {
    const CliArgs args(argc, argv,
                       {"mix", "apps", "threads", "seed", "policy", "adts",
                        "heuristic", "threshold", "quantum", "instant",
                        "oracle", "all-policies", "quanta", "cycles",
                        "warmup", "csv", "list", "help"},
                       /*flag_keys=*/{"adts", "instant", "oracle",
                                      "all-policies", "csv", "list", "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return 0;
    }
    if (args.has("list")) {
      list_everything();
      return 0;
    }

    sim::SimConfig cfg;
    cfg.workload_seed = args.get_u64("seed", 2003);
    const std::size_t threads = args.get_u64("threads", 8);
    if (args.has("apps")) {
      cfg.apps = split_list(args.get_or("apps", ""));
    } else {
      cfg.apps = workload::mix_for_threads(
          workload::mix(args.get_or("mix", "bal1")), threads,
          cfg.workload_seed);
    }
    cfg.fixed_policy = policy::parse_policy(args.get_or("policy", "ICOUNT"));

    const std::uint64_t warmup = args.get_u64("warmup", 32768);
    const std::uint64_t cycles = args.get_u64("cycles", 262144);
    const bool csv = args.has("csv");

    if (args.has("oracle")) {
      sim::OracleConfig ocfg;
      ocfg.quantum_cycles = args.get_u64("quantum", 8192);
      if (args.has("all-policies")) ocfg.candidates = policy::all_policies();
      const std::uint64_t quanta = args.get_u64("quanta", 16);

      sim::Simulator base(cfg);
      base.run(warmup);
      const sim::OracleResult r = sim::run_oracle(base, quanta, ocfg);
      if (csv) {
        std::cout << "mode,ipc,cycles,committed,switches\noracle,"
                  << r.ipc() << ',' << r.cycles << ',' << r.committed << ','
                  << r.switches << '\n';
      } else {
        std::cout << "oracle IPC " << Table::num(r.ipc()) << " over "
                  << quanta << " quanta (" << r.switches << " switches)\n";
        for (auto p : ocfg.candidates) {
          std::cout << "  " << policy::name(p) << ": "
                    << r.quanta_per_policy[static_cast<std::size_t>(p)]
                    << " quanta\n";
        }
      }
      return 0;
    }

    if (args.has("adts")) {
      cfg.use_adts = true;
      cfg.adts.heuristic = parse_heuristic(args.get_or("heuristic", "3"));
      cfg.adts.ipc_threshold = args.get_double("threshold", 2.0);
      cfg.adts.quantum_cycles = args.get_u64("quantum", 8192);
      cfg.adts.instant_switch = args.has("instant");
    }

    sim::Simulator sim(cfg);
    sim.run(warmup);
    const std::uint64_t c0 = sim.committed();
    sim.run(cycles);
    const double ipc =
        static_cast<double>(sim.committed() - c0) / static_cast<double>(cycles);

    const auto& st = sim.pipeline().stats();
    const auto& dt = sim.detector().stats();
    if (csv) {
      std::cout << "mode,ipc,cycles,committed,switches,benign,mispredicts,"
                   "wrong_path_fetched\n"
                << (cfg.use_adts ? "adts" : "fixed") << ',' << ipc << ','
                << cycles << ',' << sim.committed() - c0 << ',' << dt.switches
                << ',' << dt.benign_switches << ',' << st.mispredicts << ','
                << st.fetched_wrong_path << '\n';
      return 0;
    }

    std::cout << (cfg.use_adts
                      ? "ADTS (" + std::string(core::name(cfg.adts.heuristic)) +
                            ", m=" + Table::num(cfg.adts.ipc_threshold, 1) + ")"
                      : "fixed " + std::string(policy::name(cfg.fixed_policy)))
              << " on";
    for (const auto& a : cfg.apps) std::cout << ' ' << a;
    std::cout << "\nmeasured IPC " << Table::num(ipc) << " over " << cycles
              << " cycles (+" << warmup << " warm-up)\n";
    if (cfg.use_adts) {
      std::cout << dt.quanta << " quanta, " << dt.low_throughput_quanta
                << " low-throughput, " << dt.switches << " switches ("
                << dt.benign_switches << " benign / " << dt.malignant_switches
                << " malignant / " << dt.switches_skipped_dt_busy
                << " skipped)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "smtsim: " << e.what() << "\n\n" << kUsage;
    return 1;
  }
}
