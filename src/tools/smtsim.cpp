// smtsim — command-line driver for the SMT/ADTS simulator.
//
// Runs a mix (or an explicit application list) under a fixed fetch
// policy, under ADTS, or under the oracle, with the machine knobs
// exposed as options. Prints a human-readable report or CSV.
//
// Exit codes: common/exit_codes.hpp (documented in --help).
//
// Examples:
//   smtsim --mix int8 --cycles 500000
//   smtsim --apps gzip,mcf,swim,crafty --policy BRCOUNT
//   smtsim --mix ctrl8 --adts --heuristic 3 --threshold 2
//   smtsim --mix bal1 --oracle --quanta 16
//   smtsim --mix fp8 --threads 4 --csv
//   smtsim --mix mem8 --adts --guard --fault-corrupt 0.3 --fault-report
#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "check/invariants.hpp"
#include "common/build_info.hpp"
#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/host_info.hpp"
#include "common/table.hpp"
#include "core/heuristics.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_sink.hpp"
#include "par/thread_pool.hpp"
#include "pipeline/pipeline.hpp"
#include "prof/phase_profiler.hpp"
#include "sim/oracle.hpp"
#include "sim/simulator.hpp"
#include "workload/app_profile.hpp"
#include "workload/mix.hpp"

namespace {

constexpr const char* kUsage = R"(usage: smtsim [options]

workload (one of):
  --mix NAME            one of the 13 built-in mixes (see --list)
  --apps a,b,c,...      explicit application list (max 8)
  --threads N           contexts to use from the mix, 1..8 (default 8)
  --seed N              workload seed (default 2003)

scheduling (one of):
  --policy NAME         fixed fetch policy (default ICOUNT)
  --adts                adaptive scheduling (detector thread)
    --heuristic 1|2|3|3p|4    (default 3)
    --threshold M             IPC threshold, > 0 (default 2)
    --quantum CYCLES          scheduling quantum, > 0 (default 8192)
    --instant                 zero-cost switching (ablation)
    --guard                   graceful-degradation guard (watchdog revert,
                              switch hysteresis, safe-mode fallback)
  --oracle              per-quantum oracle over {ICOUNT,BRCOUNT,L1MISSCOUNT}
    --all-policies            oracle over all ten policies
    --quanta N                oracle quanta (default 16)
    --jobs N                  worker threads for the oracle's candidate
                              trials (default: SMT_JOBS or 1; results are
                              bit-identical for every value)

fault injection (all probabilities per quantum, in [0,1]):
  --fault-seed N              fault schedule seed (default 0xFA017)
  --fault-noise P             per-thread counter noise probability
  --fault-noise-mag M         relative noise magnitude (default 0.5)
  --fault-freeze P            per-thread stale-counter probability
  --fault-corrupt P           per-thread garbage-counter probability
  --fault-dt-stall P          DT stall-window start probability
  --fault-stall-quanta K      stall window length in quanta (default 4)
  --fault-drop P              Policy_Switch write-loss probability
  --fault-delay P             Policy_Switch delay probability
  --fault-delay-quanta K      switch delay in quanta (default 2)
  --fault-blackout P          per-quantum fetch-blackout probability
  --fault-blackout-cycles N   blackout length in cycles (default 2048)
  --fault-report              event-trace CSV on stdout: per-quantum
                              snapshots, faults, guard actions and the
                              policy timeline (needs --adts)

observability (normal runs; ignored under --oracle):
  --trace PATH          write the event trace to PATH after the run
                        ('-' = stdout; stdout then carries only the trace,
                        so --stats-json -, --fault-report and --csv are
                        rejected alongside it)
  --trace-format F      trace backend: csv | jsonl | chrome (default
                        jsonl; chrome loads in Perfetto / chrome://tracing)
  --pipeview N@CYCLE    sample the full pipeline lifecycle (fetch through
                        commit/squash, cycle-stamped per stage) of the N
                        instructions fetched from CYCLE onward, as
                        pipeview events in the trace. Comma-separable:
                        --pipeview 64@0,64@131072. Needs --trace or
                        --fault-report. Analyze with smttrace pipeview.
  --stats-json PATH     write end-of-run metrics from every subsystem as
                        nested JSON to PATH ('-' = stdout)
  --cpi                 per-slot commit-loss accounting (CPI stacks):
                        charge every commit slot of every cycle to one
                        cause per thread — committed, ROB-empty (by fetch
                        stall cause), dependency wait, memory latency,
                        FU/port contention (by co-runner), structural
                        full, squash recovery, switch overhead. Exports
                        cpi.* keys in --stats-json and per-quantum
                        cpi_stack trace rows. Analyze with smttrace cpi.

host profiling (host-time observability; simulated results unchanged):
  --prof                collect hierarchical host-phase timings — run
                        phases (init/warmup/measured) plus stride-sampled
                        per-cycle stages (pipeline commit/complete/issue/
                        dispatch/fetch, detector, checker, trace); exported
                        as prof.* in --stats-json and as prof events in
                        --trace. Under --oracle, also reports the candidate-
                        trial pool's per-worker busy time.
  --prof-folded PATH    write folded stacks ("run;measured;cycle 1234") to
                        PATH for speedscope / flamegraph.pl (implies --prof)
  --prof-stride N       time 1 of every N cycles, power of two (default 64;
                        1 = every cycle)

run control:
  --cycles N            cycles to simulate (default 262144)
  --warmup N            warm-up cycles excluded from stats (default 32768)
  --check               validate microarchitectural invariants every cycle
                        (src/check/; also enabled by SMT_CHECK=1 in the
                        environment); violations report on stderr and the
                        run exits 4
  --csv                 machine-readable output
  --list                list mixes, applications and policies, then exit
  --version             build provenance (version, commit, compiler, flags)
  --help                this text

exit codes:
  0  success
  2  usage error (unknown or malformed option)
  3  configuration error (valid syntax, invalid value)
  4  invariant violations detected (--check / SMT_CHECK=1)
  5  cancelled: SIGTERM/SIGINT during a normal run; --stats-json and
     --trace output is flushed for the cycles already simulated (the
     stats document carries run.cancelled=true), so a supervisor can
     tell a graceful stop from a crash that drops all output
)";

// Graceful shutdown (SIGTERM/SIGINT): the handler only raises a flag;
// the run loop polls it between slices, then the normal output path
// flushes whatever was requested and main exits kExitCancelled. The
// fleet daemon (smtfleetd) relies on this code to distinguish
// "cancelled, partial output is coherent" from "crashed, discard".
volatile std::sig_atomic_t g_cancel_signal = 0;

void on_cancel_signal(int sig) { g_cancel_signal = sig; }

/// Run in slices, polling the cancellation flag. Simulator::run is a
/// plain step loop, so slicing is bit-identical to one run(cycles) call;
/// a signal lands within kSlice cycles of delivery. Returns the cycles
/// actually simulated.
std::uint64_t run_cancellable(smt::sim::Simulator& sim, std::uint64_t cycles) {
  constexpr std::uint64_t kSlice = 4096;
  std::uint64_t done = 0;
  while (done < cycles && g_cancel_signal == 0) {
    const std::uint64_t n = std::min(kSlice, cycles - done);
    sim.run(n);
    done += n;
  }
  return done;
}

void list_everything() {
  std::cout << "mixes:\n";
  for (const auto& m : smt::workload::all_mixes()) {
    std::cout << "  " << m.name << " — " << m.description << '\n';
  }
  std::cout << "applications:";
  for (const auto& a : smt::workload::all_profile_names()) {
    std::cout << ' ' << a;
  }
  std::cout << "\npolicies:";
  for (auto p : smt::policy::all_policies()) {
    std::cout << ' ' << smt::policy::name(p);
  }
  std::cout << "\nheuristics: 1 2 3 3p 4\n";
}

smt::core::HeuristicType parse_heuristic(const std::string& s) {
  using smt::core::HeuristicType;
  if (s == "1") return HeuristicType::kType1;
  if (s == "2") return HeuristicType::kType2;
  if (s == "3") return HeuristicType::kType3;
  if (s == "3p" || s == "3'") return HeuristicType::kType3Prime;
  if (s == "4") return HeuristicType::kType4;
  throw smt::ConfigError("--heuristic must be one of 1|2|3|3p|4, got '" + s +
                         "'");
}

/// Read a probability option; rejects values outside [0,1].
double get_prob(const smt::CliArgs& args, const std::string& key) {
  const double p = args.get_double(key, 0.0);
  if (p < 0.0 || p > 1.0) {
    throw smt::ConfigError("--" + key + " is a probability and must be in "
                           "[0,1], got " + std::to_string(p));
  }
  return p;
}

smt::fault::FaultConfig parse_fault_config(const smt::CliArgs& args) {
  smt::fault::FaultConfig f;
  f.seed = args.get_u64("fault-seed", f.seed);
  f.counter_noise_prob = get_prob(args, "fault-noise");
  f.counter_noise_magnitude = args.get_double("fault-noise-mag", 0.5);
  if (f.counter_noise_magnitude < 0.0) {
    throw smt::ConfigError("--fault-noise-mag must be >= 0");
  }
  f.counter_freeze_prob = get_prob(args, "fault-freeze");
  f.counter_corrupt_prob = get_prob(args, "fault-corrupt");
  f.dt_stall_prob = get_prob(args, "fault-dt-stall");
  f.dt_stall_quanta =
      static_cast<std::uint32_t>(args.get_u64("fault-stall-quanta", 4));
  f.switch_drop_prob = get_prob(args, "fault-drop");
  f.switch_delay_prob = get_prob(args, "fault-delay");
  f.switch_delay_quanta =
      static_cast<std::uint32_t>(args.get_u64("fault-delay-quanta", 2));
  f.blackout_prob = get_prob(args, "fault-blackout");
  f.blackout_cycles = args.get_u64("fault-blackout-cycles", 2048);
  f.enabled = f.any_rate_set();
  return f;
}

/// Parse one --pipeview window spec "N@CYCLE".
smt::pipeline::PipeviewWindow parse_pipeview_window(const std::string& spec) {
  const std::size_t at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw smt::ConfigError("--pipeview windows are N@CYCLE (e.g. 64@8192), "
                           "got '" + spec + "'");
  }
  smt::pipeline::PipeviewWindow w;
  try {
    std::size_t used = 0;
    w.count = std::stoull(spec.substr(0, at), &used);
    if (used != at) throw std::invalid_argument(spec);
    const std::string cyc = spec.substr(at + 1);
    w.start_cycle = std::stoull(cyc, &used);
    if (used != cyc.size()) throw std::invalid_argument(spec);
  } catch (const std::exception&) {
    throw smt::ConfigError("--pipeview windows are N@CYCLE (e.g. 64@8192), "
                           "got '" + spec + "'");
  }
  if (w.count == 0) {
    throw smt::ConfigError("--pipeview window '" + spec +
                           "' samples zero instructions");
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smt;
  try {
    const CliArgs args(
        argc, argv,
        {"mix", "apps", "threads", "seed", "policy", "adts", "heuristic",
         "threshold", "quantum", "instant", "guard", "oracle", "all-policies",
         "quanta", "jobs", "cycles", "warmup", "csv", "list", "help",
         "fault-seed",
         "fault-noise", "fault-noise-mag", "fault-freeze", "fault-corrupt",
         "fault-dt-stall", "fault-stall-quanta", "fault-drop", "fault-delay",
         "fault-delay-quanta", "fault-blackout", "fault-blackout-cycles",
         "fault-report", "trace", "trace-format", "pipeview", "stats-json",
         "cpi", "prof", "prof-folded", "prof-stride", "check", "version"},
        /*flag_keys=*/{"adts", "instant", "guard", "oracle", "all-policies",
                       "csv", "list", "help", "fault-report", "check",
                       "cpi", "prof", "version"});
    if (args.has("help")) {
      std::cout << kUsage;
      return kExitOk;
    }
    if (args.has("version")) {
      const BuildInfo& bi = build_info();
      std::cout << "smtsim " << bi.version << " (" << bi.git_sha << ", "
                << bi.compiler << ", " << bi.flags << ")\n";
      return kExitOk;
    }
    if (args.has("list")) {
      list_everything();
      return kExitOk;
    }

    sim::SimConfig cfg;
    cfg.workload_seed = args.get_u64("seed", 2003);
    const std::uint64_t threads = args.get_u64("threads", 8);
    if (threads < 1 || threads > 8) {
      throw ConfigError("--threads must be between 1 and 8 (the machine has "
                        "8 hardware contexts), got " +
                        std::to_string(threads));
    }
    if (args.has("apps")) {
      cfg.apps = split_list(args.get_or("apps", ""));
      if (cfg.apps.empty()) {
        throw ConfigError("--apps needs at least one application name "
                          "(see --list)");
      }
      if (cfg.apps.size() > 8) {
        throw ConfigError("--apps lists " + std::to_string(cfg.apps.size()) +
                          " applications but the machine has 8 contexts");
      }
    } else {
      try {
        cfg.apps = workload::mix_for_threads(
            workload::mix(args.get_or("mix", "bal1")),
            static_cast<std::size_t>(threads), cfg.workload_seed);
      } catch (const std::exception&) {
        throw ConfigError("unknown mix '" + args.get_or("mix", "bal1") +
                          "' (see --list for the 13 built-in mixes)");
      }
    }
    try {
      cfg.fixed_policy = policy::parse_policy(args.get_or("policy", "ICOUNT"));
    } catch (const std::exception&) {
      throw ConfigError("unknown fetch policy '" +
                        args.get_or("policy", "ICOUNT") +
                        "' (see --list for the ten policies)");
    }

    const double threshold = args.get_double("threshold", 2.0);
    if (threshold <= 0.0) {
      throw ConfigError("--threshold must be > 0 (IPC units), got " +
                        std::to_string(threshold));
    }
    const std::uint64_t quantum = args.get_u64("quantum", 8192);
    if (quantum == 0) {
      throw ConfigError("--quantum must be > 0 cycles");
    }

    const std::uint64_t warmup = args.get_u64("warmup", 32768);
    const std::uint64_t cycles = args.get_u64("cycles", 262144);
    if (cycles == 0) {
      throw ConfigError("--cycles must be > 0");
    }
    const bool csv = args.has("csv");

    // Invariant checking: explicit --check forces it on; otherwise the
    // SMT_CHECK environment variable decides (CheckMode::kAuto).
    cfg.check = args.has("check") ? check::CheckMode::kOn
                                  : check::CheckMode::kAuto;

    // A failing checker turns an otherwise successful run into exit
    // code kExitCheck, with the violation report on stderr (stdout stays
    // reserved for the requested CSV/JSON document).
    const auto check_exit = [](const sim::Simulator& s) {
      if (!s.checking_enabled() || s.checker().ok()) return kExitOk;
      s.checker().write_report(std::cerr);
      return kExitCheck;
    };

    // Worker threads for the oracle's per-quantum candidate trials. The
    // flag is harmless elsewhere (single runs have nothing to fan out).
    const std::uint64_t jobs =
        args.get_u64("jobs", static_cast<std::uint64_t>(par::default_jobs()));
    if (jobs == 0) {
      throw ConfigError("--jobs must be >= 1 worker threads");
    }

    // Host-phase profiling (--prof). Observation-only: simulated results
    // and every non-prof output byte are identical with it on or off.
    const bool prof_on = args.has("prof") || args.has("prof-folded");
    const std::uint64_t prof_stride = args.get_u64("prof-stride", 64);
    if (prof_stride == 0 || (prof_stride & (prof_stride - 1)) != 0) {
      throw ConfigError("--prof-stride must be a power of two >= 1, got " +
                        std::to_string(prof_stride));
    }
    std::ofstream prof_out;
    if (args.has("prof-folded")) {
      const std::string path = args.get_or("prof-folded", "");
      prof_out.open(path);
      if (!prof_out) {
        throw ConfigError("--prof-folded: cannot open '" + path +
                          "' for writing");
      }
    }
    prof::PhaseProfiler profiler;
    prof::PhaseProfiler* pp = prof_on ? &profiler : nullptr;
    const std::uint64_t prof_t0 = prof_on ? prof::host_ticks() : 0;

    if (args.has("oracle")) {
      sim::OracleConfig ocfg;
      ocfg.quantum_cycles = quantum;
      if (args.has("all-policies")) ocfg.candidates = policy::all_policies();
      const std::uint64_t quanta = args.get_u64("quanta", 16);

      const auto n_warm = profiler.child(prof::PhaseProfiler::kRoot, "warmup");
      const auto n_orc = profiler.child(prof::PhaseProfiler::kRoot, "oracle");

      sim::Simulator base(cfg);
      {
        const prof::PhaseProfiler::Scope s(pp, n_warm);
        base.run(warmup);
      }
      sim::OracleTelemetry tel;
      sim::OracleResult r;
      {
        const prof::PhaseProfiler::Scope s(pp, n_orc);
        r = sim::run_oracle(base, quanta, ocfg, static_cast<std::size_t>(jobs),
                            prof_on ? &prof::host_ticks : nullptr,
                            prof_on ? &tel : nullptr);
      }
      if (csv) {
        std::cout << "mode,ipc,cycles,committed,switches\noracle,"
                  << r.ipc() << ',' << r.cycles << ',' << r.committed << ','
                  << r.switches << '\n';
      } else {
        std::cout << "oracle IPC " << Table::num(r.ipc()) << " over "
                  << quanta << " quanta (" << r.switches << " switches)\n";
        for (auto p : ocfg.candidates) {
          std::cout << "  " << policy::name(p) << ": "
                    << r.quanta_per_policy[static_cast<std::size_t>(p)]
                    << " quanta\n";
        }
        if (prof_on) {
          std::cout << "host profile: warmup "
                    << prof::ticks_to_ns(profiler.inclusive_ticks(n_warm)) /
                           1000000
                    << " ms, oracle "
                    << prof::ticks_to_ns(profiler.inclusive_ticks(n_orc)) /
                           1000000
                    << " ms across " << tel.workers << " pool workers\n";
          for (std::size_t w = 0; w < tel.slots.size(); ++w) {
            std::cout << "  worker " << w << ": " << tel.slots[w].tasks
                      << " trials, "
                      << prof::ticks_to_ns(tel.slots[w].busy_ticks) / 1000000
                      << " ms busy\n";
          }
        }
      }
      if (prof_out.is_open()) profiler.write_folded(prof_out);
      // Only the warm-up of `base` ran checked: the oracle re-runs policy
      // trials on copies, and copies drop checking by design.
      return check_exit(base);
    }

    if (args.has("adts")) {
      cfg.use_adts = true;
      cfg.adts.heuristic = parse_heuristic(args.get_or("heuristic", "3"));
      cfg.adts.ipc_threshold = threshold;
      cfg.adts.quantum_cycles = quantum;
      cfg.adts.instant_switch = args.has("instant");
      cfg.adts.guard.enabled = args.has("guard");
    } else if (args.has("guard")) {
      throw ConfigError("--guard protects the detector thread and needs "
                        "--adts");
    }
    if (args.has("fault-report") && !args.has("adts")) {
      throw ConfigError("--fault-report traces the detector thread's quanta "
                        "and needs --adts");
    }

    cfg.fault = parse_fault_config(args);
    cfg.cpi = args.has("cpi");

    if (args.has("pipeview")) {
      if (!args.has("trace") && !args.has("fault-report")) {
        throw ConfigError("--pipeview samples into the event trace and "
                          "needs --trace (or --fault-report)");
      }
      for (const std::string& spec : split_list(args.get_or("pipeview", ""))) {
        cfg.pipeview.push_back(parse_pipeview_window(spec));
      }
      if (cfg.pipeview.empty()) {
        throw ConfigError("--pipeview needs at least one N@CYCLE window");
      }
    }

    obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
    if (args.has("trace-format")) {
      const std::string f = args.get_or("trace-format", "jsonl");
      const auto parsed = obs::parse_trace_format(f);
      if (!parsed) {
        throw ConfigError("--trace-format must be csv, jsonl or chrome, got '" +
                          f + "'");
      }
      trace_format = *parsed;
    }

    // Open output files before the (potentially long) run so a bad path
    // fails in milliseconds, not after the full simulation.
    const bool stats_to_stdout =
        args.has("stats-json") && args.get_or("stats-json", "-") == "-";
    std::ofstream stats_out;
    if (args.has("stats-json") && !stats_to_stdout) {
      const std::string path = args.get_or("stats-json", "-");
      stats_out.open(path);
      if (!stats_out) {
        throw ConfigError("--stats-json: cannot open '" + path +
                          "' for writing");
      }
    }
    const bool trace_to_stdout =
        args.has("trace") && args.get_or("trace", "-") == "-";
    if (trace_to_stdout &&
        (stats_to_stdout || args.has("fault-report") || csv)) {
      throw UsageError("--trace - claims stdout for the trace; it cannot be "
                       "combined with --stats-json -, --fault-report or "
                       "--csv (their output would interleave)");
    }
    std::ofstream trace_out;
    if (args.has("trace") && !trace_to_stdout) {
      const std::string path = args.get_or("trace", "");
      trace_out.open(path);
      if (!trace_out) {
        throw ConfigError("--trace: cannot open '" + path + "' for writing");
      }
    }

    const auto n_init = profiler.child(prof::PhaseProfiler::kRoot, "init");
    const auto n_warm = profiler.child(prof::PhaseProfiler::kRoot, "warmup");
    const auto n_meas = profiler.child(prof::PhaseProfiler::kRoot, "measured");

    const std::uint64_t t_init = prof_on ? prof::host_ticks() : 0;
    sim::Simulator sim(cfg);
    obs::TraceSink sink;
    if (args.has("trace") || args.has("fault-report")) {
      const BuildInfo& bi = build_info();
      const HostInfo& hi = host_info();
      obs::RunInfo info;
      info.tool = "smtsim";
      info.version = std::string(bi.version);
      info.git_sha = std::string(bi.git_sha);
      info.compiler = std::string(bi.compiler);
      info.flags = std::string(bi.flags);
      info.seed = cfg.workload_seed;
      info.config_digest = sim::config_digest(cfg);
      info.host_cpu = hi.cpu_model;
      info.host_cores = hi.cores;
      info.smt_jobs = hi.smt_jobs;
      sink.set_run_info(info);
      sim.attach_trace(&sink);
    }
    if (prof_on) profiler.add(n_init, prof::host_ticks() - t_init);
    // From here the run is cancellable: SIGTERM/SIGINT stops the slice
    // loop, the requested outputs are flushed below as usual, and main
    // returns kExitCancelled instead of the check verdict.
    std::signal(SIGTERM, on_cancel_signal);
    std::signal(SIGINT, on_cancel_signal);

    std::uint64_t warmup_done = 0;
    {
      const prof::PhaseProfiler::Scope s(pp, n_warm);
      warmup_done = run_cancellable(sim, warmup);
    }
    const std::uint64_t c0 = sim.committed();
    std::uint64_t measured = 0;
    if (warmup_done >= warmup) {
      // Per-cycle stage timing only covers the measured region: warm-up
      // is excluded from simulated stats, so it is excluded here too.
      const prof::PhaseProfiler::Scope s(pp, n_meas);
      if (prof_on) sim.attach_profiler(&profiler, n_meas, prof_stride);
      measured = run_cancellable(sim, cycles);
      if (prof_on) sim.attach_profiler(nullptr, 0, 1);
    }
    sim.flush_trace();
    const bool cancelled = g_cancel_signal != 0;
    const auto finish = [&check_exit, &cancelled](const sim::Simulator& s) {
      return cancelled ? kExitCancelled : check_exit(s);
    };
    const double ipc =
        measured == 0 ? 0.0
                      : static_cast<double>(sim.committed() - c0) /
                            static_cast<double>(measured);

    if (args.has("stats-json")) {
      obs::MetricsRegistry reg;
      sim.export_metrics(reg);
      reg.set("run.warmup_cycles", warmup_done);
      reg.set("run.measured_cycles", measured);
      reg.set("run.measured_ipc", ipc);
      // Only a cancelled run carries the marker: a normal run's document
      // stays byte-identical to what it was before cancellation existed.
      if (cancelled) reg.set("run.cancelled", true);
      if (prof_on) {
        // Wall time from profiler start to here: the reference the phase
        // tree's telescoping exclusive sum is checked against.
        reg.set("prof.total_ns",
                prof::ticks_to_ns(prof::host_ticks() - prof_t0));
        profiler.export_metrics(reg);
      }
      if (stats_to_stdout) {
        reg.write_json(std::cout);
      } else {
        reg.write_json(stats_out);
      }
    }

    if (prof_on && (args.has("trace") || args.has("fault-report"))) {
      for (const obs::TraceEvent& e : profiler.trace_events()) sink.record(e);
    }
    if (prof_out.is_open()) profiler.write_folded(prof_out);

    if (args.has("trace")) {
      sink.write(trace_to_stdout ? std::cout : trace_out, trace_format,
                 sim::trace_decoder());
      if (trace_to_stdout) return finish(sim);
    }

    if (args.has("fault-report")) {
      sink.write(std::cout, obs::TraceFormat::kCsv, sim::trace_decoder());
      return finish(sim);
    }
    if (stats_to_stdout) {
      // stdout carries the JSON document; the violation report (if any)
      // goes to stderr.
      return finish(sim);
    }

    const auto& st = sim.pipeline().stats();
    const auto& dt = sim.detector().stats();
    if (csv) {
      std::cout << "mode,ipc,cycles,committed,switches,benign,mispredicts,"
                   "wrong_path_fetched,guard_reverts,guard_safe_mode\n"
                << (cfg.use_adts ? "adts" : "fixed") << ',' << ipc << ','
                << measured << ',' << sim.committed() - c0 << ',' << dt.switches
                << ',' << dt.benign_switches << ',' << st.mispredicts << ','
                << st.fetched_wrong_path << ','
                << sim.detector().guard().stats().reverts << ','
                << sim.detector().guard().stats().safe_mode_entries << '\n';
      return finish(sim);
    }

    std::cout << (cfg.use_adts
                      ? "ADTS (" + std::string(core::name(cfg.adts.heuristic)) +
                            ", m=" + Table::num(cfg.adts.ipc_threshold, 1) + ")"
                      : "fixed " + std::string(policy::name(cfg.fixed_policy)))
              << " on";
    for (const auto& a : cfg.apps) std::cout << ' ' << a;
    std::cout << "\nmeasured IPC " << Table::num(ipc) << " over " << measured
              << " cycles (+" << warmup_done << " warm-up)\n";
    if (cancelled) {
      std::cout << "cancelled by signal " << static_cast<int>(g_cancel_signal)
                << " after " << measured << " of " << cycles
                << " measured cycles\n";
    }
    if (cfg.use_adts) {
      std::cout << dt.quanta << " quanta, " << dt.low_throughput_quanta
                << " low-throughput, " << dt.switches << " switches ("
                << dt.benign_switches << " benign / " << dt.malignant_switches
                << " malignant / " << dt.switches_skipped_dt_busy
                << " skipped)\n";
    }
    if (cfg.fault.enabled) {
      const auto& fs = sim.faults().stats();
      std::cout << "faults injected: " << fs.noisy_counter_reads
                << " noisy / " << fs.frozen_counter_reads << " frozen / "
                << fs.corrupt_counter_reads << " corrupt counter reads, "
                << fs.dt_stall_windows << " DT stalls, "
                << fs.switches_dropped << " dropped + "
                << fs.switches_delayed << " delayed switches, "
                << fs.blackouts << " blackouts\n";
    }
    if (cfg.use_adts && cfg.adts.guard.enabled) {
      const auto& gs = sim.detector().guard().stats();
      std::cout << "guard [" << core::name(sim.detector().guard().state())
                << "]: " << gs.anomalies << " anomalies, " << gs.reverts
                << " reverts, " << gs.vetoed_switches << " vetoes, "
                << gs.safe_mode_entries << " safe-mode entries ("
                << gs.safe_mode_quanta << " quanta pinned)\n";
    }
    if (prof_on) {
      const auto ms = [](std::uint64_t ticks) {
        return prof::ticks_to_ns(ticks) / 1000000;
      };
      std::cout << "host profile: init " << ms(profiler.inclusive_ticks(n_init))
                << " ms, warmup " << ms(profiler.inclusive_ticks(n_warm))
                << " ms, measured " << ms(profiler.inclusive_ticks(n_meas))
                << " ms (cycle stages sampled 1/" << prof_stride
                << "; full tree via --stats-json / --prof-folded)\n";
    }
    return finish(sim);
  } catch (const UsageError& e) {
    std::cerr << "smtsim: " << e.what() << "\n\n" << kUsage;
    return kExitUsage;
  } catch (const ConfigError& e) {
    std::cerr << "smtsim: " << e.what() << '\n';
    return kExitConfig;
  } catch (const std::exception& e) {
    std::cerr << "smtsim: " << e.what() << '\n';
    return kExitConfig;
  }
}
