// smtprof — host-profile and fleet-telemetry reporter.
//
// Renders the three host-performance artifacts the toolchain produces:
//
//   smtprof folded FILE     per-phase breakdown of an `smtsim
//                           --prof-folded` folded-stack file (exclusive
//                           ns per phase path, share of total; call
//                           counts live in --stats-json, not here)
//   smtprof fleet JOURNAL   worker-telemetry rollup of a smtfleetd
//                           journal: attempts, wall/CPU time, peak RSS,
//                           slowest jobs
//   smtprof status FILE     one-line rendering of a `smtfleetd --status`
//                           snapshot (progress, throughput, ETA)
//
// Exit codes: 0 success, 2 usage error, 3 unreadable or malformed input.
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/exit_codes.hpp"
#include "common/table.hpp"
#include "fleet/journal.hpp"

namespace {

constexpr const char* kUsage = R"(usage: smtprof <command> FILE

commands:
  folded FILE      per-phase breakdown of an `smtsim --prof-folded` file
  fleet JOURNAL    worker-telemetry rollup of a smtfleetd journal.jsonl
  status FILE      render a `smtfleetd --status` JSON snapshot
  --help           this text

exit codes:
  0  success
  2  usage error (unknown command, wrong arguments)
  3  input error (unreadable, empty or malformed file)
)";

std::string fmt_ms(std::uint64_t ns) {
  return smt::Table::num(static_cast<double>(ns) / 1e6, 2);
}

int cmd_folded(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "smtprof: cannot read '" << path << "'\n";
    return smt::kExitConfig;
  }
  struct Row {
    std::string stack;
    std::uint64_t ns = 0;
  };
  std::vector<Row> rows;
  std::uint64_t total = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::cerr << "smtprof: " << path << ':' << lineno
                << ": not a folded stack line: '" << line << "'\n";
      return smt::kExitConfig;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long ns =
        std::strtoull(line.c_str() + sp + 1, &end, 10);
    if (end == line.c_str() + sp + 1 || *end != '\0' || errno != 0) {
      std::cerr << "smtprof: " << path << ':' << lineno
                << ": malformed exclusive-ns value: '" << line << "'\n";
      return smt::kExitConfig;
    }
    rows.push_back({line.substr(0, sp), static_cast<std::uint64_t>(ns)});
    total += ns;
  }
  if (rows.empty()) {
    std::cerr << "smtprof: '" << path << "' has no folded stacks\n";
    return smt::kExitConfig;
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.ns > b.ns; });
  smt::Table t({"phase", "excl_ms", "share"});
  for (const Row& r : rows) {
    const double share = total > 0 ? 100.0 * static_cast<double>(r.ns) /
                                         static_cast<double>(total)
                                   : 0.0;
    t.add_row({r.stack, fmt_ms(r.ns), smt::Table::num(share, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "total " << fmt_ms(total) << " ms exclusive across "
            << rows.size() << " phases\n";
  return smt::kExitOk;
}

int cmd_fleet(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "smtprof: cannot read '" << path << "'\n";
    return smt::kExitConfig;
  }
  const std::vector<smt::fleet::JournalRecord> records =
      smt::fleet::read_journal(in);
  if (records.empty()) {
    std::cerr << "smtprof: '" << path << "' has no journal records\n";
    return smt::kExitConfig;
  }

  std::size_t starts = 0, done = 0, cached = 0, retries = 0, fails = 0;
  std::uint64_t host_ms = 0, utime_ms = 0, stime_ms = 0, peak_rss_kb = 0;
  std::size_t telemetry_records = 0;
  // Settling record per job (the last done/fail wins), for the slowest-
  // jobs table.
  std::map<std::uint64_t, smt::fleet::JournalRecord> settled;
  for (const smt::fleet::JournalRecord& rec : records) {
    using smt::fleet::JournalKind;
    switch (rec.kind) {
      case JournalKind::kStart: ++starts; break;
      case JournalKind::kDone: ++done; break;
      case JournalKind::kCached: ++cached; break;
      case JournalKind::kRetry: ++retries; break;
      case JournalKind::kFail: ++fails; break;
      case JournalKind::kBatch: break;
    }
    if (rec.has_telemetry) {
      ++telemetry_records;
      host_ms += rec.host_ms;
      utime_ms += rec.utime_ms;
      stime_ms += rec.stime_ms;
      peak_rss_kb = std::max(peak_rss_kb, rec.maxrss_kb);
    }
    if (rec.kind == JournalKind::kDone || rec.kind == JournalKind::kFail) {
      settled[rec.job] = rec;
    }
  }

  std::cout << "journal: " << records.size() << " records, " << starts
            << " worker starts, " << done << " done, " << cached
            << " cached, " << retries << " retries, " << fails
            << " failed\n";
  if (telemetry_records == 0) {
    std::cout << "no worker telemetry recorded (journal predates rusage "
                 "accounting)\n";
    return smt::kExitOk;
  }
  const std::uint64_t cpu_ms = utime_ms + stime_ms;
  std::cout << "worker time: " << host_ms << " ms wall, " << utime_ms
            << " ms user + " << stime_ms << " ms system CPU";
  if (host_ms > 0) {
    std::cout << " ("
              << smt::Table::num(100.0 * static_cast<double>(cpu_ms) /
                                     static_cast<double>(host_ms),
                                 1)
              << "% busy)";
  }
  std::cout << "\npeak worker RSS: " << peak_rss_kb << " KiB\n";

  std::vector<smt::fleet::JournalRecord> slow;
  for (const auto& [job, rec] : settled) {
    if (rec.has_telemetry) slow.push_back(rec);
  }
  std::stable_sort(slow.begin(), slow.end(),
                   [](const smt::fleet::JournalRecord& a,
                      const smt::fleet::JournalRecord& b) {
                     return a.host_ms > b.host_ms;
                   });
  if (!slow.empty()) {
    smt::Table t({"job", "attempts", "wall_ms", "cpu_ms", "maxrss_kb"});
    const std::size_t n = std::min<std::size_t>(slow.size(), 5);
    for (std::size_t i = 0; i < n; ++i) {
      const smt::fleet::JournalRecord& r = slow[i];
      t.add_row({std::to_string(r.job), std::to_string(r.attempt),
                 std::to_string(r.host_ms),
                 std::to_string(r.utime_ms + r.stime_ms),
                 std::to_string(r.maxrss_kb)});
    }
    std::cout << "slowest settled jobs:\n";
    t.print(std::cout);
  }
  return smt::kExitOk;
}

/// Extract the raw token after `"key":` from a one-object JSON document.
std::optional<std::string> json_field(const std::string& doc,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t i = at + needle.size();
  std::size_t end = i;
  while (end < doc.size() && doc[end] != ',' && doc[end] != '}') ++end;
  if (end == doc.size() || end == i) return std::nullopt;
  return doc.substr(i, end - i);
}

int cmd_status(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "smtprof: cannot read '" << path << "'\n";
    return smt::kExitConfig;
  }
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  bool malformed = false;
  const auto need = [&doc, &path, &malformed](const char* key) {
    const std::optional<std::string> v = json_field(doc, key);
    if (!v) {
      std::cerr << "smtprof: '" << path << "' is not a smtfleetd --status "
                << "snapshot (missing \"" << key << "\")\n";
      malformed = true;
      return std::string();
    }
    return *v;
  };
  const std::string jobs = need("jobs");
  const std::string queued = need("queued");
  const std::string running = need("running");
  const std::string settled = need("settled");
  const std::string failed = need("failed");
  const std::string retries = need("retries");
  const std::string elapsed_ms = need("elapsed_ms");
  const std::string per_min = need("jobs_per_min");
  const std::string eta_ms = need("eta_ms");
  const std::string draining = need("draining");
  if (malformed) return smt::kExitConfig;

  std::cout << "fleet: " << settled << "/" << jobs << " settled ("
            << running << " running, " << queued << " queued, " << failed
            << " failed, " << retries << " retries)\n"
            << "elapsed " << elapsed_ms << " ms, " << per_min
            << " jobs/min, ETA " << eta_ms << " ms"
            << (draining == "true" ? " [draining]" : "") << '\n';
  return smt::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    std::cout << kUsage;
    return args.empty() ? smt::kExitUsage : smt::kExitOk;
  }
  const std::string& cmd = args[0];
  if (cmd == "folded" || cmd == "fleet" || cmd == "status") {
    if (args.size() != 2) {
      std::cerr << "smtprof: '" << cmd << "' takes exactly one file\n\n"
                << kUsage;
      return smt::kExitUsage;
    }
    if (cmd == "folded") return cmd_folded(args[1]);
    if (cmd == "fleet") return cmd_fleet(args[1]);
    return cmd_status(args[1]);
  }
  std::cerr << "smtprof: unknown command '" << cmd << "'\n\n" << kUsage;
  return smt::kExitUsage;
}
