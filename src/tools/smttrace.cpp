// smttrace: offline analysis of smtsim trace files (CSV or JSONL).
//
// Subcommands:
//   summary  <trace>           per-quantum machine table + stall breakdown
//   switches <trace>           switch-audit table + textual Fig. 7 rates
//   pipeview <trace>           ASCII waterfall of sampled instruction
//                              lifecycles (--pipeview samples)
//   hist     <trace>           stage-latency and quantum-IPC histograms
//   diff     <trace> <trace2>  per-quantum IPC / stall / switch deltas;
//                              ends with a greppable
//                              "N quanta compared, M differing" line
//   cpi      <trace> [<trace2>]  per-thread CPI stacks from --cpi runs:
//                              commit-slot shares by cause, the ROB-empty
//                              fetch-cause breakdown, the co-runner
//                              contention matrix and a per-quantum
//                              time-series; with a second trace, an A/B
//                              per-quantum-per-thread stack diff ending
//                              with a greppable "compared/differing" line
//
// A trace path of "-" reads stdin, pairing with `smtsim --trace -`.
// Both serialized formats decode through obs::read_trace; fields that CSV
// stores as names but JSONL as numeric codes (policies, heuristics, flag
// masks) are mapped back through sim::trace_decoder() when numeric, so
// both formats pretty-print identically. The Chrome format is write-only
// and rejected by the reader.
//
// Exit codes (common/exit_codes.hpp): 0 ok, 2 usage error, 3 unreadable
// or malformed trace. `diff` exits 0 even when the traces differ — the
// verdict is the final summary line, not the exit code.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "common/table.hpp"
#include "obs/cpi_stack.hpp"
#include "obs/histogram.hpp"
#include "obs/stall.hpp"
#include "obs/switch_audit.hpp"
#include "obs/trace_event.hpp"
#include "obs/trace_read.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"

namespace {

using smt::Table;
using smt::obs::EventKind;
using smt::obs::ReadEvent;
using smt::obs::ReadTrace;

constexpr const char* kUsage =
    R"(usage: smttrace <command> <trace> [<trace2>] [options]

commands:
  summary  <trace>            per-quantum machine table + stall breakdown
  switches <trace>            switch-audit table + per-heuristic benign rates
  pipeview <trace>            ASCII waterfall of --pipeview lifecycle samples
  hist     <trace>            stage-latency and quantum-IPC histograms
  diff     <trace> <trace2>   per-quantum IPC/stall/switch deltas
  cpi      <trace> [<trace2>] per-thread CPI stacks (--cpi runs): cause
                              shares, ROB-empty breakdown, contention
                              matrix, per-quantum series; two traces = A/B
                              per-quantum stack diff

options:
  --limit N    cap table / waterfall rows printed (0 = no cap, default)
  --csv        emit tables as CSV instead of aligned text
  --help       this text

<trace> is a CSV or JSONL file written by `smtsim --trace`; "-" reads
stdin. Chrome-format traces are a write-only export and are rejected.

exit codes: 0 ok, 2 usage error, 3 unreadable or malformed trace.
`diff` always exits 0 when both traces parse; the verdict is the final
"N quanta compared, M differing" line.
)";

struct Options {
  std::size_t limit = 0;  ///< 0 = unlimited
  bool csv = false;
};

// ---------------------------------------------------------------------------
// Decoding helpers: JSONL keeps numeric codes where CSV wrote names; map
// numeric strings back through the real decoders so output is identical
// for both formats, and pass CSV's names through verbatim.

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string decode(const std::string& s,
                   std::string_view (*namer)(std::uint8_t)) {
  if (namer == nullptr || !all_digits(s)) return s;
  return std::string(
      namer(static_cast<std::uint8_t>(std::stoul(s) & 0xffu)));
}

std::string_view pipe_terminal_name(std::uint8_t code) {
  return name(static_cast<smt::obs::PipeTerminal>(code));
}

std::string pipe_flag_names(std::uint8_t mask) {
  std::string out;
  if ((mask & smt::obs::kPipeWrongPath) != 0) out += "wrong_path";
  if ((mask & smt::obs::kPipeMispredicted) != 0) {
    if (!out.empty()) out += '|';
    out += "mispredicted";
  }
  return out;
}

/// The mask column's meaning depends on the event kind (mirroring the
/// writers): pipe flags, audit flags, or a fault-class bitmask.
std::string decode_mask(const ReadEvent& e,
                        const smt::obs::TraceDecoder& dec) {
  if (!all_digits(e.mask)) return e.mask;
  const auto m = static_cast<std::uint8_t>(std::stoul(e.mask) & 0xffu);
  switch (e.kind) {
    case EventKind::kPipeview: return pipe_flag_names(m);
    case EventKind::kSwitchAudit: return smt::obs::audit_flag_names(m);
    default:
      return dec.fault_mask != nullptr ? dec.fault_mask(m) : e.mask;
  }
}

std::string ipc_or_dash(double v) {
  return std::isnan(v) ? "-" : Table::num(v);
}

void print_table(const Table& t, const Options& opt) {
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

std::uint64_t stall_total(const ReadEvent& e) {
  std::uint64_t t = 0;
  for (const std::uint64_t s : e.stalls) t += s;
  return t;
}

// ---------------------------------------------------------------------------
// Trace loading

ReadTrace load(const std::string& path) {
  if (path == "-") return smt::obs::read_trace(std::cin);
  std::ifstream in(path);
  if (!in) throw smt::ConfigError("cannot open trace file: " + path);
  return smt::obs::read_trace(in);
}

void print_provenance(const ReadTrace& t) {
  if (t.build.empty()) return;
  std::cout << "build:";
  for (const auto& [k, v] : t.build) std::cout << ' ' << k << '=' << v;
  std::cout << '\n';
}

// ---------------------------------------------------------------------------
// summary

int cmd_summary(const ReadTrace& trace, const Options& opt) {
  const smt::obs::TraceDecoder dec = smt::sim::trace_decoder();
  print_provenance(trace);

  Table quanta({"quantum", "cycles", "committed", "ipc", "policy", "guard",
                "faults"});
  std::array<std::uint64_t, smt::obs::kNumStallCauses> stalls{};
  std::uint64_t committed = 0;
  std::uint64_t cycles = 0;
  std::uint64_t quantum_rows = 0;
  std::uint64_t switches = 0;
  std::uint64_t guard_actions = 0;
  std::uint64_t faults = 0;
  std::uint64_t dt_stall_cycles = 0;
  std::size_t skipped = 0;

  for (const ReadEvent& e : trace.events) {
    for (std::size_t i = 0; i < e.stalls.size(); ++i) stalls[i] += e.stalls[i];
    switch (e.kind) {
      case EventKind::kQuantum:
        committed += e.value;
        cycles += e.span;
        ++quantum_rows;
        if (opt.limit != 0 && quanta.rows() >= opt.limit) {
          ++skipped;
          break;
        }
        quanta.add_row({std::to_string(e.quantum), std::to_string(e.span),
                        std::to_string(e.value), Table::num(e.ipc),
                        decode(e.policy_after, dec.policy),
                        decode(e.code, dec.guard_state),
                        decode_mask(e, dec)});
        break;
      case EventKind::kPolicySwitch: ++switches; break;
      case EventKind::kGuardAction: ++guard_actions; break;
      case EventKind::kFault: ++faults; break;
      case EventKind::kDtStallEnd: dt_stall_cycles += e.span; break;
      default: break;
    }
  }

  print_table(quanta, opt);
  if (skipped != 0) std::cout << "  ... " << skipped << " more quanta\n";
  std::cout << '\n';

  std::uint64_t lost = 0;
  for (const std::uint64_t s : stalls) lost += s;
  Table st({"stall cause", "lost slots", "share"});
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    if (stalls[i] == 0) continue;
    st.add_row({std::string(name(static_cast<smt::obs::StallCause>(i))),
                std::to_string(stalls[i]),
                lost != 0 ? Table::num(static_cast<double>(stalls[i]) /
                                       static_cast<double>(lost))
                          : "0"});
  }
  print_table(st, opt);

  const double ipc =
      cycles != 0
          ? static_cast<double>(committed) / static_cast<double>(cycles)
          : 0.0;
  std::cout << '\n'
            << quantum_rows << " quanta, " << committed << " committed over "
            << cycles << " cycles (ipc " << Table::num(ipc) << "), "
            << switches << " policy switches, " << guard_actions
            << " guard actions, " << faults << " fault events, "
            << dt_stall_cycles << " dt-stall cycles\n";
  return smt::kExitOk;
}

// ---------------------------------------------------------------------------
// switches

int cmd_switches(const ReadTrace& trace, const Options& opt) {
  const smt::obs::TraceDecoder dec = smt::sim::trace_decoder();
  print_provenance(trace);

  Table audits({"#", "quantum", "decided", "applied", "wait", "heuristic",
                "policy", "flags", "ipc_before", "ipc_after", "label"});
  struct HeurStats {
    std::uint64_t benign = 0;
    std::uint64_t malignant = 0;
    std::uint64_t neutral = 0;
  };
  std::map<std::string, HeurStats> by_heuristic;
  std::uint64_t benign = 0;
  std::uint64_t malignant = 0;
  std::uint64_t neutral = 0;
  std::size_t total = 0;
  std::size_t skipped = 0;

  for (const ReadEvent& e : trace.events) {
    if (e.kind != EventKind::kSwitchAudit) continue;
    ++total;
    const auto label = static_cast<smt::obs::SwitchLabel>(e.value);
    const std::string heuristic = decode(e.code, dec.heuristic);
    HeurStats& h = by_heuristic[heuristic];
    switch (label) {
      case smt::obs::SwitchLabel::kBenign:
        ++benign;
        ++h.benign;
        break;
      case smt::obs::SwitchLabel::kMalignant:
        ++malignant;
        ++h.malignant;
        break;
      default:
        ++neutral;
        ++h.neutral;
        break;
    }
    if (opt.limit != 0 && audits.rows() >= opt.limit) {
      ++skipped;
      continue;
    }
    audits.add_row(
        {std::to_string(total), std::to_string(e.quantum),
         std::to_string(e.cycle - e.span), std::to_string(e.cycle),
         std::to_string(e.span), heuristic,
         decode(e.policy_before, dec.policy) + "->" +
             decode(e.policy_after, dec.policy),
         decode_mask(e, dec), Table::num(e.fetch_share), ipc_or_dash(e.ipc),
         std::string(name(label))});
  }

  print_table(audits, opt);
  if (skipped != 0) std::cout << "  ... " << skipped << " more switches\n";

  std::cout << '\n'
            << total << " switches: " << benign << " benign / " << malignant
            << " malignant / " << neutral << " neutral, P(benign) "
            << Table::num(smt::obs::benign_probability(benign, malignant))
            << '\n';

  if (!by_heuristic.empty()) {
    std::cout << '\n';
    Table fig7({"heuristic", "switches", "benign", "malignant", "P(benign)"});
    for (const auto& [h, s] : by_heuristic) {
      fig7.add_row({h, std::to_string(s.benign + s.malignant + s.neutral),
                    std::to_string(s.benign), std::to_string(s.malignant),
                    Table::num(smt::obs::benign_probability(s.benign,
                                                            s.malignant))});
    }
    print_table(fig7, opt);
  }
  return smt::kExitOk;
}

// ---------------------------------------------------------------------------
// pipeview

/// One character per lifecycle stage, placed at its cycle offset in the
/// lane; later stages overwrite earlier ones that land on the same cycle
/// (issue and execute share a cycle by construction).
constexpr std::array<char, smt::obs::kNumPipeStages> kStageChar = {
    'D',  // decode
    'R',  // rename
    'Q',  // dispatched into an issue queue
    'I',  // issued
    'E',  // executing
    'W',  // writeback
    'C',  // retire slot; overwritten by 'X' for squashes
};

int cmd_pipeview(const ReadTrace& trace, const Options& opt) {
  constexpr std::uint64_t kLaneWidth = 64;
  std::size_t shown = 0;
  std::size_t total = 0;
  std::uint64_t committed = 0;
  std::uint64_t squashed = 0;

  for (const ReadEvent& e : trace.events) {
    if (e.kind != EventKind::kPipeview) continue;
    ++total;
    const std::string terminal = decode(e.code, pipe_terminal_name);
    const bool commit = terminal == "commit";
    committed += commit ? 1 : 0;
    squashed += commit ? 0 : 1;
    if (opt.limit != 0 && shown >= opt.limit) continue;
    ++shown;

    // Scale the lane so long lifetimes still fit in kLaneWidth columns.
    const std::uint64_t scale = e.span / kLaneWidth + 1;
    std::string lane(static_cast<std::size_t>(e.span / scale) + 1, '.');
    lane[0] = 'F';
    for (std::size_t s = 0; s < e.stages.size(); ++s) {
      if (e.stages[s] == 0) continue;  // never reached
      lane[static_cast<std::size_t>(e.stages[s] / scale)] = kStageChar[s];
    }
    if (!commit) lane[lane.size() - 1] = 'X';

    const std::string mask = decode_mask(e, smt::obs::TraceDecoder{});
    std::cout << "seq " << e.value << " tid " << e.tid << " fetch@" << e.cycle
              << " +" << e.span << " " << terminal;
    if (!mask.empty()) std::cout << " [" << mask << "]";
    if (scale > 1) std::cout << " (1 col = " << scale << " cycles)";
    std::cout << "\n  " << lane << "\n";
  }

  if (total == 0) {
    std::cout << "no pipeview events in trace (run smtsim with --pipeview "
                 "N@CYCLE)\n";
    return smt::kExitOk;
  }
  if (shown < total) {
    std::cout << "... " << (total - shown) << " more instructions\n";
  }
  std::cout << '\n'
            << total << " sampled instructions: " << committed
            << " committed, " << squashed << " squashed\n";
  return smt::kExitOk;
}

// ---------------------------------------------------------------------------
// hist

void render_latency_hist(const std::string& label,
                         const std::vector<std::uint64_t>& samples) {
  std::uint64_t max = 0;
  for (const std::uint64_t v : samples) max = std::max(max, v);
  smt::obs::Histogram h(0.0, static_cast<double>(max + 1),
                        std::min<std::size_t>(static_cast<std::size_t>(max) + 1,
                                              16));
  for (const std::uint64_t v : samples) h.add(static_cast<double>(v));
  h.render(std::cout, label);
  std::cout << '\n';
}

int cmd_hist(const ReadTrace& trace, const Options& /*opt*/) {
  constexpr auto kDispatch =
      static_cast<std::size_t>(smt::obs::PipeStage::kDispatch);
  constexpr auto kIssue =
      static_cast<std::size_t>(smt::obs::PipeStage::kIssue);
  constexpr auto kWriteback =
      static_cast<std::size_t>(smt::obs::PipeStage::kWriteback);

  std::vector<std::uint64_t> frontend;  // fetch -> dispatch
  std::vector<std::uint64_t> queue;     // dispatch -> issue
  std::vector<std::uint64_t> execute;   // issue -> writeback
  std::vector<std::uint64_t> commit;    // writeback -> retire
  std::vector<std::uint64_t> lifetime;  // fetch -> retire
  std::vector<double> quantum_ipc;

  for (const ReadEvent& e : trace.events) {
    if (e.kind == EventKind::kQuantum) {
      quantum_ipc.push_back(e.ipc);
      continue;
    }
    if (e.kind != EventKind::kPipeview) continue;
    lifetime.push_back(e.span);
    if (e.stages[kDispatch] != 0) {
      frontend.push_back(e.stages[kDispatch]);
      if (e.stages[kIssue] != 0) {
        queue.push_back(e.stages[kIssue] - e.stages[kDispatch]);
        if (e.stages[kWriteback] != 0) {
          execute.push_back(e.stages[kWriteback] - e.stages[kIssue]);
          commit.push_back(e.span - e.stages[kWriteback]);
        }
      }
    }
  }

  if (lifetime.empty()) {
    std::cout << "no pipeview events in trace (run smtsim with --pipeview "
                 "N@CYCLE); stage-latency histograms skipped\n\n";
  } else {
    render_latency_hist("frontend latency, fetch->dispatch (cycles)",
                        frontend);
    render_latency_hist("queue wait, dispatch->issue (cycles)", queue);
    render_latency_hist("execute, issue->writeback (cycles)", execute);
    render_latency_hist("commit wait, writeback->retire (cycles)", commit);
    render_latency_hist("lifetime, fetch->retire (cycles)", lifetime);
  }

  if (!quantum_ipc.empty()) {
    double max = 0.0;
    for (const double v : quantum_ipc) {
      if (!std::isnan(v)) max = std::max(max, v);
    }
    smt::obs::Histogram h(0.0, max > 0.0 ? max * 1.0001 : 1.0, 16);
    for (const double v : quantum_ipc) h.add(v);
    h.render(std::cout, "per-quantum machine IPC");
  }
  return smt::kExitOk;
}

// ---------------------------------------------------------------------------
// diff

struct QuantumFacts {
  double ipc = 0.0;
  std::uint64_t committed = 0;
  std::uint64_t stalls = 0;    ///< lost slots, all causes, all rows
  std::uint64_t switches = 0;  ///< policy_switch events in the quantum
  bool present = false;        ///< saw the machine-level kQuantum row
};

std::map<std::uint64_t, QuantumFacts> collect(const ReadTrace& t) {
  std::map<std::uint64_t, QuantumFacts> m;
  for (const ReadEvent& e : t.events) {
    QuantumFacts& q = m[e.quantum];
    q.stalls += stall_total(e);
    switch (e.kind) {
      case EventKind::kQuantum:
        q.present = true;
        q.ipc = e.ipc;
        q.committed = e.value;
        break;
      case EventKind::kPolicySwitch:
        ++q.switches;
        break;
      default:
        break;
    }
  }
  // Drop quanta that never got a machine summary row (e.g. trailing
  // flush-only audit events): they have nothing comparable.
  for (auto it = m.begin(); it != m.end();) {
    it = it->second.present ? std::next(it) : m.erase(it);
  }
  return m;
}

int cmd_diff(const ReadTrace& a, const ReadTrace& b, const Options& opt) {
  const auto da = a.build.find("config_digest");
  const auto db = b.build.find("config_digest");
  if (da != a.build.end() && db != b.build.end() &&
      da->second != db->second) {
    std::cout << "note: config digests differ (" << da->second << " vs "
              << db->second << ")\n";
  }

  const std::map<std::uint64_t, QuantumFacts> qa = collect(a);
  const std::map<std::uint64_t, QuantumFacts> qb = collect(b);

  std::vector<std::uint64_t> keys;
  for (const auto& [k, v] : qa) keys.push_back(k);
  for (const auto& [k, v] : qb) {
    if (qa.find(k) == qa.end()) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());

  Table t({"quantum", "ipc_a", "ipc_b", "d_ipc", "d_committed", "d_stalls",
           "d_switches"});
  std::size_t differing = 0;
  std::size_t skipped = 0;
  for (const std::uint64_t k : keys) {
    const auto ia = qa.find(k);
    const auto ib = qb.find(k);
    if (ia == qa.end() || ib == qb.end()) {
      ++differing;
      if (opt.limit != 0 && t.rows() >= opt.limit) {
        ++skipped;
        continue;
      }
      t.add_row({std::to_string(k),
                 ia != qa.end() ? Table::num(ia->second.ipc) : "-",
                 ib != qb.end() ? Table::num(ib->second.ipc) : "-", "-", "-",
                 "-", "-"});
      continue;
    }
    const QuantumFacts& fa = ia->second;
    const QuantumFacts& fb = ib->second;
    const bool same = fa.ipc == fb.ipc && fa.committed == fb.committed &&
                      fa.stalls == fb.stalls && fa.switches == fb.switches;
    if (same) continue;
    ++differing;
    if (opt.limit != 0 && t.rows() >= opt.limit) {
      ++skipped;
      continue;
    }
    t.add_row({std::to_string(k), Table::num(fa.ipc), Table::num(fb.ipc),
               Table::num(fb.ipc - fa.ipc),
               std::to_string(static_cast<std::int64_t>(fb.committed) -
                              static_cast<std::int64_t>(fa.committed)),
               std::to_string(static_cast<std::int64_t>(fb.stalls) -
                              static_cast<std::int64_t>(fa.stalls)),
               std::to_string(static_cast<std::int64_t>(fb.switches) -
                              static_cast<std::int64_t>(fa.switches))});
  }

  if (t.rows() != 0) {
    print_table(t, opt);
    if (skipped != 0) std::cout << "  ... " << skipped << " more\n";
    std::cout << '\n';
  }
  std::cout << keys.size() << " quanta compared, " << differing
            << " differing\n";
  return smt::kExitOk;
}

// ---------------------------------------------------------------------------
// cpi

/// One thread's accumulated CPI stack over the whole trace (or, in diff
/// mode, one kCpiStack row keyed by quantum × tid).
struct CpiAgg {
  std::uint64_t span = 0;
  std::uint64_t width = 0;  ///< commit width (kCpiStack value column)
  std::array<std::uint64_t, smt::obs::kNumCpiCauses> cpi{};
  std::array<std::uint64_t, smt::obs::kNumStallCauses> rob_by{};
  std::array<std::uint64_t, smt::obs::kCpiMaxThreads> contend{};

  void add(const ReadEvent& e) {
    span += e.span;
    width = e.value;
    for (std::size_t i = 0; i < cpi.size(); ++i) cpi[i] += e.cpi[i];
    for (std::size_t i = 0; i < rob_by.size(); ++i) rob_by[i] += e.stalls[i];
    for (std::size_t i = 0; i < contend.size(); ++i) {
      contend[i] += e.contend[i];
    }
  }
};

std::string share_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? "0"
                    : Table::num(static_cast<double>(part) /
                                 static_cast<double>(whole));
}

int cmd_cpi(const ReadTrace& trace, const Options& opt) {
  print_provenance(trace);

  std::map<std::int64_t, CpiAgg> by_tid;
  std::size_t rows = 0;
  for (const ReadEvent& e : trace.events) {
    if (e.kind != EventKind::kCpiStack) continue;
    by_tid[e.tid].add(e);
    ++rows;
  }
  if (rows == 0) {
    std::cout << "no cpi_stack events in trace (run smtsim with --cpi "
                 "--trace)\n";
    return smt::kExitOk;
  }

  // Per-thread stacks, one cause per row; the ROB-empty bucket breaks out
  // into the fetch stall cause that starved the window.
  Table stacks({"thread", "cause", "slots", "share", "cpi"});
  std::uint64_t conservation_gap = 0;
  std::uint64_t slots_accounted = 0;
  for (const auto& [tid, a] : by_tid) {
    const std::uint64_t budget = a.width * a.span;
    slots_accounted += budget;
    std::uint64_t total = 0;
    std::uint64_t rob_by_sum = 0;
    std::uint64_t contend_sum = 0;
    for (const std::uint64_t v : a.cpi) total += v;
    for (const std::uint64_t v : a.rob_by) rob_by_sum += v;
    for (const std::uint64_t v : a.contend) contend_sum += v;
    const auto diff = [](std::uint64_t x, std::uint64_t y) {
      return x > y ? x - y : y - x;
    };
    conservation_gap +=
        diff(total, budget) +
        diff(rob_by_sum, a.cpi[static_cast<std::size_t>(
                             smt::obs::CpiCause::kRobEmpty)]) +
        diff(contend_sum, a.cpi[static_cast<std::size_t>(
                              smt::obs::CpiCause::kFuContention)]);
    const std::uint64_t committed =
        a.cpi[static_cast<std::size_t>(smt::obs::CpiCause::kCommitted)];
    for (std::size_t c = 0; c < a.cpi.size(); ++c) {
      if (a.cpi[c] == 0) continue;
      // "cpi" is the bucket's contribution to the thread's CPI: lost
      // slots per committed instruction (the committed row reads as the
      // base cost, 1/IPC of a perfect machine at this width).
      stacks.add_row(
          {std::to_string(tid),
           std::string(name(static_cast<smt::obs::CpiCause>(c))),
           std::to_string(a.cpi[c]), share_of(a.cpi[c], budget),
           committed != 0 ? Table::num(static_cast<double>(a.cpi[c]) /
                                       static_cast<double>(committed))
                          : "-"});
      if (static_cast<smt::obs::CpiCause>(c) ==
          smt::obs::CpiCause::kRobEmpty) {
        for (std::size_t s = 0; s < a.rob_by.size(); ++s) {
          if (a.rob_by[s] == 0) continue;
          stacks.add_row(
              {std::to_string(tid),
               "  rob_empty:" +
                   std::string(name(static_cast<smt::obs::StallCause>(s))),
               std::to_string(a.rob_by[s]), share_of(a.rob_by[s], budget),
               ""});
        }
      }
    }
  }
  print_table(stacks, opt);

  // Co-runner contention matrix: who held the FU / memory port while each
  // thread's ready head waited — the symbiosis signal.
  bool any_contention = false;
  for (const auto& [tid, a] : by_tid) {
    for (const std::uint64_t v : a.contend) any_contention |= v != 0;
  }
  if (any_contention) {
    std::cout << '\n';
    std::vector<std::string> head{"waiter \\ holder"};
    for (const auto& [tid, a] : by_tid) head.push_back(std::to_string(tid));
    Table m(head);
    for (const auto& [tid, a] : by_tid) {
      std::vector<std::string> row{std::to_string(tid)};
      for (const auto& [holder, unused] : by_tid) {
        row.push_back(std::to_string(
            a.contend[static_cast<std::size_t>(holder)]));
      }
      m.add_row(row);
    }
    print_table(m, opt);
  }

  // Per-quantum time-series (total loss share and the dominant cause).
  std::cout << '\n';
  Table series({"quantum", "thread", "cycles", "ipc", "lost_share",
                "top_cause", "top_share"});
  std::size_t skipped = 0;
  for (const ReadEvent& e : trace.events) {
    if (e.kind != EventKind::kCpiStack) continue;
    if (opt.limit != 0 && series.rows() >= opt.limit) {
      ++skipped;
      continue;
    }
    const std::uint64_t budget = e.value * e.span;
    const auto committed_ix =
        static_cast<std::size_t>(smt::obs::CpiCause::kCommitted);
    std::size_t top = 0;
    std::uint64_t top_v = 0;
    std::uint64_t lost = 0;
    for (std::size_t c = 0; c < e.cpi.size(); ++c) {
      if (c == committed_ix) continue;
      lost += e.cpi[c];
      if (e.cpi[c] > top_v) {
        top_v = e.cpi[c];
        top = c;
      }
    }
    series.add_row(
        {std::to_string(e.quantum), std::to_string(e.tid),
         std::to_string(e.span), ipc_or_dash(e.ipc), share_of(lost, budget),
         top_v != 0 ? std::string(name(static_cast<smt::obs::CpiCause>(top)))
                    : "-",
         share_of(top_v, budget)});
  }
  print_table(series, opt);
  if (skipped != 0) std::cout << "  ... " << skipped << " more rows\n";

  std::cout << '\n'
            << rows << " cpi rows, " << by_tid.size() << " threads, "
            << slots_accounted << " commit slots accounted, conservation "
            << (conservation_gap == 0
                    ? "OK"
                    : "VIOLATED (gap " + std::to_string(conservation_gap) +
                          ")")
            << '\n';
  return smt::kExitOk;
}

int cmd_cpi_diff(const ReadTrace& a, const ReadTrace& b, const Options& opt) {
  const auto da = a.build.find("config_digest");
  const auto db = b.build.find("config_digest");
  if (da != a.build.end() && db != b.build.end() &&
      da->second != db->second) {
    std::cout << "note: config digests differ (" << da->second << " vs "
              << db->second << ")\n";
  }

  // Key rows by quantum × tid; each side contributes at most one
  // kCpiStack row per key.
  using Key = std::pair<std::uint64_t, std::int64_t>;
  const auto collect_cpi = [](const ReadTrace& t) {
    std::map<Key, CpiAgg> m;
    for (const ReadEvent& e : t.events) {
      if (e.kind != EventKind::kCpiStack) continue;
      m[{e.quantum, e.tid}].add(e);
    }
    return m;
  };
  const std::map<Key, CpiAgg> qa = collect_cpi(a);
  const std::map<Key, CpiAgg> qb = collect_cpi(b);

  std::vector<Key> keys;
  for (const auto& [k, v] : qa) keys.push_back(k);
  for (const auto& [k, v] : qb) {
    if (qa.find(k) == qa.end()) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());

  std::vector<std::string> head{"quantum", "thread"};
  for (std::size_t c = 0; c < smt::obs::kNumCpiCauses; ++c) {
    head.push_back("d_" +
                   std::string(name(static_cast<smt::obs::CpiCause>(c))));
  }
  Table t(head);
  std::size_t differing = 0;
  std::size_t skipped = 0;
  for (const Key& k : keys) {
    const auto ia = qa.find(k);
    const auto ib = qb.find(k);
    const CpiAgg ea = ia != qa.end() ? ia->second : CpiAgg{};
    const CpiAgg eb = ib != qb.end() ? ib->second : CpiAgg{};
    bool same = ia != qa.end() && ib != qb.end() && ea.span == eb.span;
    if (same) {
      same = ea.cpi == eb.cpi && ea.rob_by == eb.rob_by &&
             ea.contend == eb.contend;
    }
    if (same) continue;
    ++differing;
    if (opt.limit != 0 && t.rows() >= opt.limit) {
      ++skipped;
      continue;
    }
    std::vector<std::string> row{std::to_string(k.first),
                                 std::to_string(k.second)};
    for (std::size_t c = 0; c < smt::obs::kNumCpiCauses; ++c) {
      row.push_back(std::to_string(static_cast<std::int64_t>(eb.cpi[c]) -
                                   static_cast<std::int64_t>(ea.cpi[c])));
    }
    t.add_row(row);
  }

  if (t.rows() != 0) {
    print_table(t, opt);
    if (skipped != 0) std::cout << "  ... " << skipped << " more\n";
    std::cout << '\n';
  }
  std::cout << keys.size() << " cpi rows compared, " << differing
            << " differing\n";
  return smt::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const smt::CliArgs args(argc, argv, {"limit", "csv", "help"},
                            {"csv", "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return smt::kExitOk;
    }
    const std::vector<std::string>& pos = args.positional();
    if (pos.empty()) throw smt::UsageError("missing command");
    const std::string& cmd = pos[0];
    const bool is_diff = cmd == "diff";
    const bool is_cpi = cmd == "cpi";
    if (cmd != "summary" && cmd != "switches" && cmd != "pipeview" &&
        cmd != "hist" && !is_diff && !is_cpi) {
      throw smt::UsageError("unknown command: " + cmd);
    }
    if (is_cpi) {
      if (pos.size() != 2 && pos.size() != 3) {
        throw smt::UsageError("cpi takes 1 or 2 trace arguments");
      }
    } else {
      const std::size_t want = is_diff ? 3 : 2;
      if (pos.size() != want) {
        throw smt::UsageError(cmd + " takes exactly " +
                              std::to_string(want - 1) +
                              " trace argument(s)");
      }
    }

    Options opt;
    opt.limit = static_cast<std::size_t>(args.get_u64("limit", 0));
    opt.csv = args.get_bool("csv", false);

    const ReadTrace trace = load(pos[1]);
    if (cmd == "summary") return cmd_summary(trace, opt);
    if (cmd == "switches") return cmd_switches(trace, opt);
    if (cmd == "pipeview") return cmd_pipeview(trace, opt);
    if (cmd == "hist") return cmd_hist(trace, opt);
    if (is_cpi) {
      return pos.size() == 3 ? cmd_cpi_diff(trace, load(pos[2]), opt)
                             : cmd_cpi(trace, opt);
    }
    return cmd_diff(trace, load(pos[2]), opt);
  } catch (const smt::UsageError& e) {
    std::cerr << "smttrace: " << e.what() << "\n\n" << kUsage;
    return smt::kExitUsage;
  } catch (const smt::obs::TraceReadError& e) {
    std::cerr << "smttrace: " << e.what() << '\n';
    return smt::kExitConfig;
  } catch (const std::exception& e) {
    std::cerr << "smttrace: " << e.what() << '\n';
    return smt::kExitConfig;
  }
}
