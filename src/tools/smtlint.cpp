// smtlint: the repo's own static analyzer (DESIGN.md §16).
//
// A deterministic, dependency-free C++ checker that encodes this
// codebase's determinism and hygiene invariants as machine-checked
// rules: a real lexer strips comments, string literals and preprocessor
// text before any pattern runs, so — unlike the grep gate it replaces —
// `// never call srand()` is not a violation and `srand(7)` always is.
//
//   smtlint                         analyze the repo rooted at .
//   smtlint --root ../repo          analyze another checkout
//   smtlint --format sarif          SARIF 2.1.0 instead of text
//   smtlint --output report.sarif   write to a file ("-" = stdout)
//   smtlint --baseline FILE         grandfathered findings (default
//                                   <root>/.smtlint-baseline if present)
//   smtlint --rule id[,id...]       run a subset of the catalog
//   smtlint --list-rules            print the rule catalog and exit
//
// Suppress one finding with a NOLINT comment naming the rule id on its
// line (or NOLINTNEXTLINE above it). Both formats are byte-deterministic:
// scripts/check_smtlint.sh asserts two runs compare equal.
//
// Exit codes (common/exit_codes.hpp): 0 clean, 4 findings (the
// kExitCheck convention: the run completed, the checker recorded
// violations), 2 usage error, 3 config error (bad root, unreadable
// baseline, unknown rule id).

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/exit_codes.hpp"
#include "lint/report.hpp"
#include "lint/rule.hpp"
#include "lint/runner.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: smtlint [options]

options:
  --root DIR       repo root to analyze (default "."; must contain src/)
  --format FMT     output format: text (default) | sarif
  --output PATH    write the report to PATH instead of stdout ("-" = stdout)
  --baseline PATH  baseline file of grandfathered findings
                   (default: <root>/.smtlint-baseline when present)
  --rule ID[,ID]   run only the named rules (comma-separated list)
  --list-rules     print the rule catalog (id + description) and exit
  --help           this text

Scope: src/** and bench/** C++ sources, plus the scripts cross-checked
by schema-sync. Suppress a single finding with // NOLINT(rule-id) on its
line or // NOLINTNEXTLINE(rule-id) above it; grandfather it with a
"<rule-id> <path>:<line>" baseline entry. Output is byte-deterministic.

exit codes: 0 clean, 4 findings, 2 usage error, 3 config error.
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace smt;
  try {
    const CliArgs args(argc, argv,
                       {"root", "format", "output", "baseline", "rule",
                        "list-rules", "help"},
                       /*flag_keys=*/{"list-rules", "help"});
    if (args.has("help")) {
      std::cout << kUsage;
      return kExitOk;
    }

    const lint::RuleRegistry registry = lint::builtin_rules();
    if (args.has("list-rules")) {
      for (const auto& rule : registry.rules()) {
        std::cout << rule->id() << "\n    " << rule->description() << "\n";
      }
      return kExitOk;
    }

    const std::string format = args.get_or("format", "text");
    if (format != "text" && format != "sarif") {
      throw UsageError("--format must be text or sarif, got " + format);
    }

    const std::string root = args.get_or("root", ".");
    lint::LintOptions options;
    if (args.has("rule")) {
      options.only_rules = split_list(args.get_or("rule", ""));
      if (options.only_rules.empty()) {
        throw UsageError("--rule needs at least one rule id");
      }
    }

    std::string baseline_path = args.get_or("baseline", "");
    if (baseline_path.empty()) {
      const std::string implicit = root + "/.smtlint-baseline";
      if (std::ifstream probe(implicit); probe.good()) {
        baseline_path = implicit;
      }
    } else if (!std::ifstream(baseline_path).good()) {
      throw ConfigError("--baseline file unreadable: " + baseline_path);
    }
    if (!baseline_path.empty()) {
      std::ifstream in(baseline_path);
      std::ostringstream ss;
      ss << in.rdbuf();
      options.baseline = ss.str();
      options.baseline_path = ".smtlint-baseline";
    }

    std::vector<lint::InputFile> inputs;
    try {
      inputs = lint::load_repo_inputs(root);
    } catch (const std::exception& e) {
      throw ConfigError(e.what());
    }

    lint::LintResult result;
    try {
      result = lint::run_lint(registry, std::move(inputs), options);
    } catch (const std::exception& e) {
      // Unknown --rule id or malformed baseline text.
      throw ConfigError(e.what());
    }

    std::ostringstream report;
    if (format == "sarif") {
      lint::write_sarif(report, result, registry);
    } else {
      lint::write_text(report, result);
    }

    const std::string output = args.get_or("output", "-");
    if (output == "-") {
      std::cout << report.str();
    } else {
      std::ofstream out(output, std::ios::binary);
      if (!out) throw ConfigError("cannot write --output " + output);
      out << report.str();
    }

    return result.findings.empty() ? kExitOk : kExitCheck;
  } catch (const smt::UsageError& e) {
    std::cerr << "smtlint: " << e.what() << "\n" << kUsage;
    return smt::kExitUsage;
  } catch (const smt::ConfigError& e) {
    std::cerr << "smtlint: " << e.what() << "\n";
    return smt::kExitConfig;
  } catch (const std::exception& e) {
    std::cerr << "smtlint: internal error: " << e.what() << "\n";
    throw;
  }
}
