// Branch direction prediction: gshare (with per-thread global history)
// or bimodal, plus a simple BTB for taken-target availability.
//
// On an SMT machine the PHT is a shared structure; per-thread histories
// keep the index streams of independent programs from destructively
// interfering the way a single shared history register would. Mispredicted
// branches are what fill the pipeline with wrong-path instructions — the
// waste the paper's BRCOUNT policy exists to limit — so prediction quality
// must come from real table dynamics, not from a fixed per-branch coin.
#pragma once

#include <cstdint>
#include <vector>

namespace smt::branch {

enum class PredictorKind : std::uint8_t { kGshare, kBimodal };

struct PredictorConfig {
  /// Bimodal (per-PC 2-bit counters) is the default: the synthetic
  /// workloads' branch outcomes are per-site Bernoulli draws, which is
  /// exactly the behaviour a bimodal table captures; gshare's
  /// history-correlation advantage has nothing to correlate with here and
  /// its history-hashed indexing only smears per-site bias across the
  /// PHT. gshare remains available for sensitivity studies.
  PredictorKind kind = PredictorKind::kBimodal;
  std::uint32_t history_bits = 12;  ///< gshare global history length
  std::uint32_t pht_bits = 14;      ///< log2(# of 2-bit counters)
  std::uint32_t btb_entries = 1024; ///< direct-mapped BTB
  std::uint32_t max_threads = 9;
};

struct PredictorStats {
  std::uint64_t lookups = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t btb_misses = 0;  ///< predicted/actually taken but target unknown

  [[nodiscard]] double mispredict_rate() const noexcept {
    return lookups ? static_cast<double>(mispredicts) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

class Predictor {
 public:
  Predictor() : Predictor(PredictorConfig{}) {}
  explicit Predictor(const PredictorConfig& cfg);

  /// Direction prediction for the branch at `pc` in thread `tid`.
  [[nodiscard]] bool predict(std::uint32_t tid, std::uint64_t pc) const;

  /// Does the BTB know a target for `pc`? (A taken branch without a BTB
  /// entry costs a front-end bubble even when the direction is right.)
  [[nodiscard]] bool btb_hit(std::uint64_t pc) const;

  /// Train with the resolved outcome; also installs the BTB entry for
  /// taken branches and updates the thread's global history.
  void update(std::uint32_t tid, std::uint64_t pc, bool taken,
              std::uint64_t target, bool mispredicted);

  [[nodiscard]] const PredictorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PredictorConfig& config() const noexcept { return cfg_; }
  void reset_stats() { stats_ = PredictorStats{}; }

 private:
  [[nodiscard]] std::uint32_t pht_index(std::uint32_t tid,
                                        std::uint64_t pc) const noexcept;

  PredictorConfig cfg_;
  std::vector<std::uint8_t> pht_;       ///< 2-bit saturating counters
  std::vector<std::uint64_t> history_;  ///< per-thread global history
  struct BtbEntry {
    std::uint64_t tag = 0;
    std::uint64_t target = 0;
    bool valid = false;
  };
  std::vector<BtbEntry> btb_;
  PredictorStats stats_;
};

}  // namespace smt::branch
