#include "branch/predictor.hpp"

#include <stdexcept>

namespace smt::branch {

Predictor::Predictor(const PredictorConfig& cfg)
    : cfg_(cfg),
      pht_(std::size_t{1} << cfg.pht_bits, 1),  // weakly not-taken
      history_(cfg.max_threads, 0),
      btb_(cfg.btb_entries) {
  if (cfg.pht_bits == 0 || cfg.pht_bits > 24) {
    throw std::invalid_argument("pht_bits out of range");
  }
  if (cfg.btb_entries == 0) {
    throw std::invalid_argument("btb_entries must be >= 1");
  }
}

std::uint32_t Predictor::pht_index(std::uint32_t tid,
                                   std::uint64_t pc) const noexcept {
  const std::uint64_t mask = (std::uint64_t{1} << cfg_.pht_bits) - 1;
  const std::uint64_t pc_bits = pc >> 2;  // drop instruction alignment
  if (cfg_.kind == PredictorKind::kBimodal) {
    return static_cast<std::uint32_t>(pc_bits & mask);
  }
  const std::uint64_t hist_mask =
      (std::uint64_t{1} << cfg_.history_bits) - 1;
  return static_cast<std::uint32_t>((pc_bits ^ (history_[tid] & hist_mask)) &
                                    mask);
}

bool Predictor::predict(std::uint32_t tid, std::uint64_t pc) const {
  return pht_[pht_index(tid, pc)] >= 2;
}

bool Predictor::btb_hit(std::uint64_t pc) const {
  const BtbEntry& e = btb_[(pc >> 2) % btb_.size()];
  return e.valid && e.tag == pc;
}

void Predictor::update(std::uint32_t tid, std::uint64_t pc, bool taken,
                       std::uint64_t target, bool mispredicted) {
  ++stats_.lookups;
  if (mispredicted) ++stats_.mispredicts;

  std::uint8_t& ctr = pht_[pht_index(tid, pc)];
  if (taken) {
    if (ctr < 3) ++ctr;
  } else {
    if (ctr > 0) --ctr;
  }

  // History is updated at resolution (simpler than speculative history
  // with checkpoint/restore; slightly pessimistic for accuracy, identical
  // in structure).
  history_[tid] = (history_[tid] << 1) | (taken ? 1u : 0u);

  if (taken) {
    BtbEntry& e = btb_[(pc >> 2) % btb_.size()];
    if (!e.valid || e.tag != pc) {
      e.valid = true;
      e.tag = pc;
      e.target = target;
    }
  }
}

}  // namespace smt::branch
