#include "core/history.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::core {

std::size_t SwitchHistory::index(policy::FetchPolicy p, bool cond) {
  return static_cast<std::size_t>(p) * 2 + (cond ? 1 : 0);
}

void SwitchHistory::record(policy::FetchPolicy incumbent, bool cond,
                           bool positive) {
  SwitchOutcomeCounts& c = counts_[index(incumbent, cond)];
  if (positive) {
    ++c.poscnt;
  } else {
    ++c.negcnt;
  }
}

const SwitchOutcomeCounts& SwitchHistory::counts(policy::FetchPolicy incumbent,
                                                 bool cond) const {
  return counts_[index(incumbent, cond)];
}

bool SwitchHistory::regular_transition(policy::FetchPolicy incumbent,
                                       bool cond) const {
  const SwitchOutcomeCounts& c = counts_[index(incumbent, cond)];
  if (c.poscnt == 0 && c.negcnt == 0) return true;
  return c.poscnt > c.negcnt;
}

void SwitchHistory::clear() { counts_ = {}; }

}  // namespace smt::core
