#include "core/heuristics.hpp"
#include "pipeline/counters.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::core {

using policy::FetchPolicy;

std::string_view name(HeuristicType h) noexcept {
  switch (h) {
    case HeuristicType::kType1: return "Type1";
    case HeuristicType::kType2: return "Type2";
    case HeuristicType::kType3: return "Type3";
    case HeuristicType::kType3Prime: return "Type3'";
    case HeuristicType::kType4: return "Type4";
  }
  return "?";
}

const std::vector<HeuristicType>& all_heuristics() {
  static const std::vector<HeuristicType> hs = {
      HeuristicType::kType1, HeuristicType::kType2, HeuristicType::kType3,
      HeuristicType::kType3Prime, HeuristicType::kType4};
  return hs;
}

SystemConditions evaluate_conditions(
    const pipeline::QuantumRates& machine_rates,
    const ConditionThresholds& t) noexcept {
  SystemConditions c;
  c.cond_mem = machine_rates.l1_misses_per_cycle > t.l1_miss_per_cycle ||
               machine_rates.lsq_full_per_cycle > t.lsq_full_per_cycle;
  c.cond_br = machine_rates.mispredicts_per_cycle > t.mispredict_per_cycle ||
              machine_rates.cond_branches_per_cycle > t.cond_branch_per_cycle;
  return c;
}

namespace {

/// The regular Type-3 FSM transition (Figure 6) and the condition bit it
/// consults from the incumbent state. Also used by Type 4, which may
/// invert it.
Decision type3_transition(FetchPolicy incumbent, const SystemConditions& c) {
  Decision d;
  switch (incumbent) {
    case FetchPolicy::kBrcount:
      // BRCOUNT failed ⇒ imbalance is not about branches. If memory
      // pressure is visible go to L1MISSCOUNT, else fall back to the
      // best-on-average ICOUNT.
      d.cond_value = c.cond_mem;
      d.next = c.cond_mem ? FetchPolicy::kL1MissCount : FetchPolicy::kIcount;
      break;
    case FetchPolicy::kL1MissCount:
      d.cond_value = c.cond_br;
      d.next = c.cond_br ? FetchPolicy::kBrcount : FetchPolicy::kIcount;
      break;
    case FetchPolicy::kIcount:
    default:
      // From ICOUNT: address whichever problem the conditions point at.
      // Figure 6 leaves the precedence unspecified when both conditions
      // hold; memory pressure takes it here, because an outstanding-miss
      // clog holds shared resources for a full memory latency (the most
      // expensive imbalance), whereas wrong-path waste self-limits at
      // branch resolution. Neither condition visible → stay on the
      // best-on-average ICOUNT.
      if (c.cond_mem) {
        d.cond_value = false;  // history key: the memory-side transition
        d.next = FetchPolicy::kL1MissCount;
      } else if (c.cond_br) {
        d.cond_value = true;
        d.next = FetchPolicy::kBrcount;
      } else {
        d.cond_value = false;
        d.next = FetchPolicy::kIcount;
      }
      break;
  }
  return d;
}

/// The "opposite direction" transition Type 4 takes when history says the
/// regular one has been losing (paper §4.3.2's example: ICOUNT with
/// COND_BR true would regularly go to BRCOUNT; reversed it goes to
/// L1MISSCOUNT).
FetchPolicy opposite_of(FetchPolicy incumbent, FetchPolicy regular_next) {
  // The FSM has three states; the opposite is the third one (neither the
  // incumbent nor the regular choice). When the regular choice is to stay
  // put there is nothing to reverse.
  const FetchPolicy states[3] = {FetchPolicy::kIcount, FetchPolicy::kBrcount,
                                 FetchPolicy::kL1MissCount};
  for (FetchPolicy s : states) {
    if (s != incumbent && s != regular_next) return s;
  }
  return regular_next;
}

}  // namespace

std::optional<Decision> determine_next_policy(HeuristicType h,
                                              FetchPolicy incumbent,
                                              const SystemConditions& conds,
                                              double ipc_last, double ipc_prev,
                                              const SwitchHistory* history) {
  switch (h) {
    case HeuristicType::kType1: {
      Decision d;
      d.next = incumbent == FetchPolicy::kIcount ? FetchPolicy::kBrcount
                                                 : FetchPolicy::kIcount;
      return d;
    }
    case HeuristicType::kType2: {
      Decision d;
      switch (incumbent) {
        case FetchPolicy::kIcount: d.next = FetchPolicy::kL1MissCount; break;
        case FetchPolicy::kL1MissCount: d.next = FetchPolicy::kBrcount; break;
        case FetchPolicy::kBrcount:
        default: d.next = FetchPolicy::kIcount; break;
      }
      return d;
    }
    case HeuristicType::kType3: {
      const Decision d = type3_transition(incumbent, conds);
      if (d.next == incumbent) return std::nullopt;
      return d;
    }
    case HeuristicType::kType3Prime: {
      if (ipc_last > ipc_prev) return std::nullopt;  // already improving
      const Decision d = type3_transition(incumbent, conds);
      if (d.next == incumbent) return std::nullopt;
      return d;
    }
    case HeuristicType::kType4: {
      if (ipc_last > ipc_prev) return std::nullopt;
      Decision d = type3_transition(incumbent, conds);
      if (d.next == incumbent) return std::nullopt;
      if (history != nullptr &&
          !history->regular_transition(incumbent, d.cond_value)) {
        d.next = opposite_of(incumbent, d.next);
        d.reversed = true;
        if (d.next == incumbent) return std::nullopt;
      }
      return d;
    }
  }
  return std::nullopt;
}

double switch_damage(double ipc_before, double ipc_after) noexcept {
  if (ipc_before <= 0.0 || ipc_after >= ipc_before) return 0.0;
  return (ipc_before - ipc_after) / ipc_before;
}

}  // namespace smt::core
