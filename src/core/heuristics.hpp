// Fetch-policy determination heuristics (paper §4.3).
//
// Once the detector thread recognises a low-throughput quantum
// (IPC_last < threshold), one of these heuristics picks the fetch policy
// for the next quantum:
//
//   Type 1  — fixed toggle ICOUNT ⇄ BRCOUNT; no status indicators read.
//   Type 2  — fixed cycle ICOUNT → L1MISSCOUNT → BRCOUNT → ICOUNT.
//   Type 3  — condition-driven FSM over {ICOUNT, BRCOUNT, L1MISSCOUNT}
//             using COND_MEM (L1 miss rate / LSQ-full rate) and COND_BR
//             (mispredict rate / conditional-branch rate).
//   Type 3′ — Type 3 plus the throughput-gradient rule: never switch
//             while IPC is already improving.
//   Type 4  — Type 3′ plus the switching-history buffer: if past switches
//             from this (incumbent, condition) state were net-negative,
//             take the opposite transition.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/history.hpp"
#include "pipeline/counters.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::core {

enum class HeuristicType : std::uint8_t {
  kType1,
  kType2,
  kType3,
  kType3Prime,
  kType4,
};

inline constexpr int kNumHeuristics = 5;

[[nodiscard]] std::string_view name(HeuristicType h) noexcept;
[[nodiscard]] const std::vector<HeuristicType>& all_heuristics();

/// Machine-wide per-cycle rate thresholds for the Type 3/4 conditions.
///
/// The paper determines these "by simulation: we ran eight-thread
/// simulation ... with our 13 different mixes and ended up with an
/// average value for each metric" (§4.3.2), and notes that "to be more
/// effective, the threshold values should be updated to reflect newly
/// found information" by profiling. We ran the same calibration on this
/// simulator. The *means* land strikingly close to the paper's for two
/// metrics (paper: L1 miss 0.19/cyc, mispredict 0.02/cyc; here: 0.184 and
/// 0.0195) — but a mean-level threshold is exceeded by roughly half of
/// all quanta, which leaves COND_BR/COND_MEM permanently asserted on
/// branchy/memory mixes and strips them of discriminating power. The
/// shipped defaults are therefore the 75th percentile of the per-quantum
/// machine-wide rate distributions over the 13 mixes (the "profiled
/// update" the paper prescribes): a condition now flags a genuinely
/// abnormal quantum. bench_ablation_conditions sweeps scale factors
/// around these values.
struct ConditionThresholds {
  double l1_miss_per_cycle = 0.25;
  double lsq_full_per_cycle = 0.051;
  double mispredict_per_cycle = 0.028;
  double cond_branch_per_cycle = 0.21;
};

/// The two composite conditions of the Type 3 FSM.
struct SystemConditions {
  bool cond_mem = false;  ///< memory imbalance suspected
  bool cond_br = false;   ///< control imbalance suspected
};

/// Evaluate COND_MEM / COND_BR from machine-wide quantum rates (the sum of
/// per-thread rates, which is what pooled hardware counters would show).
[[nodiscard]] SystemConditions evaluate_conditions(
    const pipeline::QuantumRates& machine_rates,
    const ConditionThresholds& thresholds) noexcept;

/// A policy-switch decision.
struct Decision {
  policy::FetchPolicy next = policy::FetchPolicy::kIcount;
  /// Value of the condition consulted for the incumbent state — the
  /// history key for Type 4 outcome recording.
  bool cond_value = false;
  /// Type 4 inverted the regular Type-3 transition.
  bool reversed = false;
};

/// Pick the next fetch policy after a low-throughput quantum. Returns
/// nullopt when the heuristic elects not to switch (Type 3's "nothing
/// stands out, stay", or the Type 3′/4 positive-gradient rule).
///
/// `history` is consulted (not modified) for Type 4 and may be null for
/// the other types. `ipc_prev` is the IPC of the quantum before last
/// (gradient reference).
[[nodiscard]] std::optional<Decision> determine_next_policy(
    HeuristicType h, policy::FetchPolicy incumbent,
    const SystemConditions& conds, double ipc_last, double ipc_prev,
    const SwitchHistory* history);

/// Relative IPC damage of a scored policy switch: 0 when throughput held
/// or rose, else the fractional drop (0.25 ⇒ the quantum after the switch
/// ran 25% slower than the one that triggered it). The degradation
/// guard's watchdog compares this against its revert margin to separate
/// ordinary malignant switches (the paper's Fig. 7 noise, left to the
/// heuristics) from the severe ones worth undoing.
[[nodiscard]] double switch_damage(double ipc_before,
                                   double ipc_after) noexcept;

}  // namespace smt::core
