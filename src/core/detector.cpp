#include "core/detector.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/switch_audit.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace smt::core {

DetectorThread::DetectorThread(const AdtsConfig& cfg)
    : cfg_(cfg), guard_(cfg.guard) {
  if (cfg.quantum_cycles == 0) {
    throw std::invalid_argument("AdtsConfig: quantum_cycles must be > 0");
  }
}

void DetectorThread::arm(const pipeline::Pipeline& pipe) {
  committed_at_quantum_start_ = pipe.committed_total();
  last_boundary_cycle_ = pipe.now();
  missed_quanta_ = 0;
  ipc_last_ = 0.0;
  ipc_prev_ = 0.0;
  decision_pending_ = false;
  pending_hold_until_cycle_ = 0;
  switch_write_lost_ = false;
  switch_unscored_ = false;
  switch_was_stale_ = false;
  unscored_audit_ = obs::SwitchAuditLog::npos;
}

void DetectorThread::apply_policy(pipeline::Pipeline& pipe,
                                  policy::FetchPolicy next) {
  pipe.set_policy(next);
  if (cfg_.switch_penalty_cycles > 0) {
    for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
      pipe.block_fetch(tid, pipe.now() + cfg_.switch_penalty_cycles);
    }
  }
}

pipeline::ThreadCounters DetectorThread::sample_counters(
    const pipeline::Pipeline& pipe, fault::FaultInjector* faults,
    std::uint32_t tid) const {
  if (faults != nullptr && faults->enabled()) {
    return faults->counters(pipe, tid);
  }
  return pipe.counters(tid);
}

void DetectorThread::tick(pipeline::Pipeline& pipe,
                          fault::FaultInjector* faults) {
  // Apply a pending switch as soon as the DT's decision routine has
  // drained through idle fetch slots — unless the DT is stalled or the
  // switch is held by a delay fault.
  const bool dt_stalled = faults != nullptr && faults->dt_stalled();
  if (decision_pending_ && pipe.dt_work_remaining() == 0 && !dt_stalled &&
      pipe.now() >= pending_hold_until_cycle_) {
    const auto fate = faults != nullptr
                          ? faults->take_switch_fate()
                          : fault::FaultInjector::SwitchFate::kApply;
    if (fate == fault::FaultInjector::SwitchFate::kDrop) {
      // The Policy_Switch register write was lost. The DT notices via
      // read-back at the next boundary (switch_write_lost_ → guard).
      decision_pending_ = false;
      ++stats_.switches_dropped_fault;
      switch_write_lost_ = true;
    } else if (fate == fault::FaultInjector::SwitchFate::kDelay) {
      pending_hold_until_cycle_ =
          pipe.now() + faults->switch_delay_quanta() * cfg_.quantum_cycles;
    } else {
      decision_pending_ = false;
      if (pending_policy_ != pipe.policy()) {
        pending_audit_.policy_before =
            static_cast<std::uint8_t>(pipe.policy());
        pending_audit_.policy_after =
            static_cast<std::uint8_t>(pending_policy_);
        pending_audit_.applied_cycle = pipe.now();
        apply_policy(pipe, pending_policy_);
        ++stats_.switches;
        switch_unscored_ = true;
        // Strictly more than one quantum in flight ⇒ the decision
        // out-lived the boundary that should have dropped it: a fault.
        switch_was_stale_ =
            pipe.now() > pending_decided_cycle_ + cfg_.quantum_cycles;
        if (switch_was_stale_) {
          ++stats_.switches_stale;
          pending_audit_.flags |= obs::kAuditStale;
        }
        guard_.note_switch_applied();
        unscored_audit_ = audit_log_.push(pending_audit_);
      }
    }
  }

  if (pipe.now() > 0 && pipe.now() % cfg_.quantum_cycles == 0) {
    if (dt_stalled) {
      // The DT never got scheduled this quantum: no monitoring, no
      // scoring, no decisions — and no dropping of the pending one.
      ++missed_quanta_;
    } else {
      on_quantum_boundary(pipe, faults);
    }
  }
}

void DetectorThread::on_quantum_boundary(pipeline::Pipeline& pipe,
                                         fault::FaultInjector* faults) {
  ++stats_.quanta;
  stats_.quanta_per_policy[static_cast<std::size_t>(pipe.policy())] += 1;

  // Cycles since the DT last ran. Fault-free this is exactly one quantum;
  // a starved DT normalises over the whole span it slept through (it
  // reads the cycle counter, so the rates stay correct — what it lost is
  // the chance to act).
  const std::uint64_t elapsed = pipe.now() - last_boundary_cycle_;
  last_boundary_cycle_ = pipe.now();

  const std::uint64_t committed =
      pipe.committed_total() - committed_at_quantum_start_;
  committed_at_quantum_start_ = pipe.committed_total();
  ipc_prev_ = ipc_last_;
  ipc_last_ = static_cast<double>(committed) / static_cast<double>(elapsed);

  GuardObservation obs;
  obs.ipc_last = ipc_last_;
  obs.committed_truth = committed;
  obs.switch_write_lost = switch_write_lost_;
  obs.dt_starved = missed_quanta_ > 0;
  switch_write_lost_ = false;

  // Score the switch applied during the previous quantum: benign iff the
  // quantum that just ended out-performed the one that triggered it.
  if (switch_unscored_) {
    const bool benign =
        obs::classify_switch(ipc_before_switch_, ipc_last_) ==
        obs::SwitchLabel::kBenign;
    audit_log_.score(unscored_audit_, ipc_last_, pipe.now());
    unscored_audit_ = obs::SwitchAuditLog::npos;
    if (benign) {
      ++stats_.benign_switches;
    } else {
      ++stats_.malignant_switches;
    }
    history_.record(switch_incumbent_, switch_cond_value_, benign);
    obs.switch_scored = true;
    obs.switch_benign = benign;
    obs.switch_stale = switch_was_stale_;
    obs.ipc_before_switch = ipc_before_switch_;
    obs.switch_incumbent = switch_incumbent_;
    switch_unscored_ = false;
    switch_was_stale_ = false;
  }

  // A decision still pending from the previous quantum means the DT never
  // found enough idle slots to finish Determine_NewPolicy: the pipeline
  // was saturated, drop the stale decision (paper §3). Two fault cases
  // keep it alive instead: the DT just woke from starvation (the decision
  // is pending because the DT was absent, not because the pipeline was
  // busy — it resumes the in-flight Policy_Switch), or a delay fault is
  // holding the register write.
  if (decision_pending_) {
    const bool keep =
        faults != nullptr &&
        (missed_quanta_ > 0 || pending_hold_until_cycle_ > pipe.now());
    if (!keep) {
      decision_pending_ = false;
      ++stats_.switches_skipped_dt_busy;
    }
  }
  missed_quanta_ = 0;

  // Monitoring cost: the per-quantum counter scan.
  if (!cfg_.instant_switch) pipe.add_dt_work(cfg_.dt_check_instrs);

  // Machine-wide condition rates: pooled across threads, sampled through
  // the (possibly faulty) status-counter path. The guard's integrity
  // checks ride on the same samples.
  const bool guard_on = cfg_.guard.enabled;
  pipeline::QuantumRates machine{};
  std::uint64_t counter_committed = 0;
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const pipeline::ThreadCounters c = sample_counters(pipe, faults, tid);
    // The accumulators cover the span since the DT last reset them —
    // `elapsed` cycles, one quantum unless the DT was starved.
    const pipeline::QuantumRates r = rates_for_quantum(c, elapsed);
    machine.ipc += r.ipc;
    machine.cond_branches_per_cycle += r.cond_branches_per_cycle;
    machine.mispredicts_per_cycle += r.mispredicts_per_cycle;
    machine.l1_misses_per_cycle += r.l1_misses_per_cycle;
    machine.lsq_full_per_cycle += r.lsq_full_per_cycle;
    if (guard_on) {
      counter_committed += c.committed_quantum;
      if (!pipeline::counters_plausible(c, elapsed,
                                        pipe.config().commit_width,
                                        pipe.config().rob_per_thread)) {
        obs.counters_implausible = true;
      }
    }
  }
  obs.committed_counters = guard_on ? counter_committed : committed;

  allow_switch_ = true;
  if (guard_on) {
    const GuardVerdict v = guard_.on_quantum(obs);
    last_verdict_ = v;
    allow_switch_ = v.allow_switching;
    if (v.pin_safe_policy) {
      // SAFE_MODE: abandon any in-flight decision and hold the safe
      // policy until the guard cools down. The abandoned switch's audit
      // entry stays neutral (never scored).
      decision_pending_ = false;
      switch_unscored_ = false;
      unscored_audit_ = obs::SwitchAuditLog::npos;
      if (pipe.policy() != cfg_.guard.safe_policy) {
        apply_policy(pipe, cfg_.guard.safe_policy);
      }
    } else if (v.revert) {
      // Watchdog: undo the switch scored malignant above. Not an ADTS
      // switch — it is not scored and not recorded in the history; it
      // does pay the same switch penalty (reverting is itself a switch).
      apply_policy(pipe, v.revert_to);
    }
    if (obs.dt_starved && decision_pending_) {
      // The DT just woke from starvation with a Policy_Switch still in
      // flight, decided for a phase several quanta gone. A naive DT
      // resumes it (and applies it stale); the guard cancels it — the
      // heuristic will re-decide from fresh data if still warranted.
      decision_pending_ = false;
      guard_.note_stale_decision_dropped();
    }
  }

  // Effective thresholds: static calibration, or the profiled running
  // mean (compared against the EWMA *excluding* this quantum, so a spike
  // is judged against history, then folded in).
  ConditionThresholds thresholds = cfg_.conditions;
  if (cfg_.adaptive_conditions) {
    if (!ewma_primed_) {
      ewma_ = machine;
      ewma_primed_ = true;
    }
    thresholds.l1_miss_per_cycle =
        cfg_.adaptive_factor * ewma_.l1_misses_per_cycle;
    thresholds.lsq_full_per_cycle =
        cfg_.adaptive_factor * ewma_.lsq_full_per_cycle;
    thresholds.mispredict_per_cycle =
        cfg_.adaptive_factor * ewma_.mispredicts_per_cycle;
    thresholds.cond_branch_per_cycle =
        cfg_.adaptive_factor * ewma_.cond_branches_per_cycle;
    const double a = cfg_.adaptive_alpha;
    ewma_.l1_misses_per_cycle = (1 - a) * ewma_.l1_misses_per_cycle +
                                a * machine.l1_misses_per_cycle;
    ewma_.lsq_full_per_cycle =
        (1 - a) * ewma_.lsq_full_per_cycle + a * machine.lsq_full_per_cycle;
    ewma_.mispredicts_per_cycle = (1 - a) * ewma_.mispredicts_per_cycle +
                                  a * machine.mispredicts_per_cycle;
    ewma_.cond_branches_per_cycle =
        (1 - a) * ewma_.cond_branches_per_cycle +
        a * machine.cond_branches_per_cycle;
  }

  const bool low_throughput = ipc_last_ < cfg_.ipc_threshold;
  if (low_throughput) {
    ++stats_.low_throughput_quanta;

    identify_clogging_threads(pipe, faults);

    const SystemConditions conds = evaluate_conditions(machine, thresholds);

    const std::optional<Decision> d = determine_next_policy(
        cfg_.heuristic, pipe.policy(), conds, ipc_last_, ipc_prev_,
        &history_);
    if (d.has_value() && d->next != pipe.policy()) {
      if (!allow_switch_) {
        // Guard hysteresis / safe mode: the heuristic wanted to switch
        // but the guard vetoed it.
        guard_.note_vetoed();
      } else {
        if (d->reversed) ++stats_.switches_reversed;
        // Remember the context for outcome scoring / history recording.
        ipc_before_switch_ = ipc_last_;
        switch_incumbent_ = pipe.policy();
        switch_cond_value_ = d->cond_value;

        // Provenance: the full decision context, captured now; the
        // decided→applied span and stale flag are filled at apply time.
        obs::SwitchAudit audit;
        audit.heuristic = static_cast<std::uint8_t>(cfg_.heuristic);
        audit.policy_before = static_cast<std::uint8_t>(pipe.policy());
        audit.policy_after = static_cast<std::uint8_t>(d->next);
        if (d->reversed) audit.flags |= obs::kAuditReversed;
        if (conds.cond_mem) audit.flags |= obs::kAuditCondMem;
        if (conds.cond_br) audit.flags |= obs::kAuditCondBr;
        audit.quantum = pipe.now() / cfg_.quantum_cycles;
        audit.decided_cycle = pipe.now();
        audit.ipc_before = ipc_last_;
        audit.ipc_prev = ipc_prev_;
        audit.br_rate = machine.cond_branches_per_cycle;
        audit.mispredict_rate = machine.mispredicts_per_cycle;
        audit.l1_miss_rate = machine.l1_misses_per_cycle;
        audit.lsq_full_rate = machine.lsq_full_per_cycle;
        audit.cond_value = d->cond_value ? 1.0 : 0.0;

        if (cfg_.instant_switch) {
          audit.flags |= obs::kAuditInstant;
          audit.applied_cycle = pipe.now();
          apply_policy(pipe, d->next);
          ++stats_.switches;
          switch_unscored_ = true;
          guard_.note_switch_applied();
          unscored_audit_ = audit_log_.push(audit);
        } else {
          // A still-pending decision (kept alive by a stall or delay
          // fault) is refreshed in place: the target policy updates but
          // the decision keeps its original timestamp and hold — the
          // Policy_Switch has been in flight since then.
          pending_policy_ = d->next;
          if (!decision_pending_) {
            decision_pending_ = true;
            pending_decided_cycle_ = pipe.now();
            pending_hold_until_cycle_ = 0;
            pending_audit_ = audit;
          } else {
            // Refresh the context but keep the original decision stamp.
            audit.quantum = pending_audit_.quantum;
            audit.decided_cycle = pending_audit_.decided_cycle;
            pending_audit_ = audit;
          }
          pipe.add_dt_work(cfg_.dt_decide_instrs);
        }
      }
    }
  }

  pipe.reset_quantum_counters();
}

void DetectorThread::identify_clogging_threads(pipeline::Pipeline& pipe,
                                               fault::FaultInjector* faults) {
  clogging_.clear();
  std::int64_t total_icount = 0;
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    total_icount += sample_counters(pipe, faults, tid).icount;
  }
  if (total_icount <= 0) return;
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const double share =
        static_cast<double>(sample_counters(pipe, faults, tid).icount) /
        static_cast<double>(total_icount);
    if (share > cfg_.clog_icount_share) {
      clogging_.push_back(tid);
      if (std::find(clog_marks_.begin(), clog_marks_.end(), tid) ==
          clog_marks_.end()) {
        clog_marks_.push_back(tid);
      }
      ++stats_.clog_flags;
      if (cfg_.enable_clog_control) {
        // Blocking a thread on the word of counters currently under
        // suspicion would punish an innocent thread; the guard withholds
        // the destructive action until the samples reconcile again.
        if (cfg_.guard.enabled && guard_.suspicious()) {
          guard_.note_clog_suppressed();
        } else {
          pipe.block_fetch(tid, pipe.now() + cfg_.clog_block_cycles);
        }
      }
    }
  }
}

void DetectorThread::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("adts.quanta", stats_.quanta);
  reg.set("adts.low_throughput_quanta", stats_.low_throughput_quanta);
  reg.set("adts.switches", stats_.switches);
  reg.set("adts.benign_switches", stats_.benign_switches);
  reg.set("adts.malignant_switches", stats_.malignant_switches);
  reg.set("adts.benign_fraction", stats_.benign_fraction());
  reg.set("adts.switches_skipped_dt_busy", stats_.switches_skipped_dt_busy);
  reg.set("adts.switches_reversed", stats_.switches_reversed);
  reg.set("adts.switches_dropped_fault", stats_.switches_dropped_fault);
  reg.set("adts.switches_stale", stats_.switches_stale);
  reg.set("adts.clog_flags", stats_.clog_flags);
  reg.set("adts.heuristic", name(cfg_.heuristic));
  reg.set("adts.ipc_threshold", cfg_.ipc_threshold);
  for (int p = 0; p < policy::kNumFetchPolicies; ++p) {
    reg.set("adts.quanta_per_policy." +
                std::string(policy::name(static_cast<policy::FetchPolicy>(p))),
            stats_.quanta_per_policy[static_cast<std::size_t>(p)]);
  }
  audit_log_.export_metrics(reg, "audit.", [](std::uint8_t code) {
    return name(static_cast<HeuristicType>(code));
  });
  if (cfg_.guard.enabled) guard_.export_metrics(reg);
}

}  // namespace smt::core
