#include "core/detector.hpp"

#include <algorithm>
#include <stdexcept>

namespace smt::core {

DetectorThread::DetectorThread(const AdtsConfig& cfg) : cfg_(cfg) {
  if (cfg.quantum_cycles == 0) {
    throw std::invalid_argument("AdtsConfig: quantum_cycles must be > 0");
  }
}

void DetectorThread::arm(const pipeline::Pipeline& pipe) {
  committed_at_quantum_start_ = pipe.committed_total();
  ipc_last_ = 0.0;
  ipc_prev_ = 0.0;
  decision_pending_ = false;
  switch_unscored_ = false;
}

void DetectorThread::tick(pipeline::Pipeline& pipe) {
  // Apply a pending switch as soon as the DT's decision routine has
  // drained through idle fetch slots.
  if (decision_pending_ && pipe.dt_work_remaining() == 0) {
    decision_pending_ = false;
    if (pending_policy_ != pipe.policy()) {
      pipe.set_policy(pending_policy_);
      ++stats_.switches;
      switch_unscored_ = true;
    }
  }

  if (pipe.now() > 0 && pipe.now() % cfg_.quantum_cycles == 0) {
    on_quantum_boundary(pipe);
  }
}

void DetectorThread::on_quantum_boundary(pipeline::Pipeline& pipe) {
  ++stats_.quanta;
  stats_.quanta_per_policy[static_cast<std::size_t>(pipe.policy())] += 1;

  const std::uint64_t committed =
      pipe.committed_total() - committed_at_quantum_start_;
  committed_at_quantum_start_ = pipe.committed_total();
  ipc_prev_ = ipc_last_;
  ipc_last_ =
      static_cast<double>(committed) / static_cast<double>(cfg_.quantum_cycles);

  // Score the switch applied during the previous quantum: benign iff the
  // quantum that just ended out-performed the one that triggered it.
  if (switch_unscored_) {
    const bool benign = ipc_last_ > ipc_before_switch_;
    if (benign) {
      ++stats_.benign_switches;
    } else {
      ++stats_.malignant_switches;
    }
    history_.record(switch_incumbent_, switch_cond_value_, benign);
    switch_unscored_ = false;
  }

  // A decision still pending from the previous quantum means the DT never
  // found enough idle slots to finish Determine_NewPolicy: the pipeline
  // was saturated, drop the stale decision (paper §3).
  if (decision_pending_) {
    decision_pending_ = false;
    ++stats_.switches_skipped_dt_busy;
  }

  // Monitoring cost: the per-quantum counter scan.
  if (!cfg_.instant_switch) pipe.add_dt_work(cfg_.dt_check_instrs);

  // Machine-wide condition rates: pooled across threads.
  pipeline::QuantumRates machine{};
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const pipeline::QuantumRates r =
        rates_for_quantum(pipe.counters(tid), cfg_.quantum_cycles);
    machine.ipc += r.ipc;
    machine.cond_branches_per_cycle += r.cond_branches_per_cycle;
    machine.mispredicts_per_cycle += r.mispredicts_per_cycle;
    machine.l1_misses_per_cycle += r.l1_misses_per_cycle;
    machine.lsq_full_per_cycle += r.lsq_full_per_cycle;
  }

  // Effective thresholds: static calibration, or the profiled running
  // mean (compared against the EWMA *excluding* this quantum, so a spike
  // is judged against history, then folded in).
  ConditionThresholds thresholds = cfg_.conditions;
  if (cfg_.adaptive_conditions) {
    if (!ewma_primed_) {
      ewma_ = machine;
      ewma_primed_ = true;
    }
    thresholds.l1_miss_per_cycle =
        cfg_.adaptive_factor * ewma_.l1_misses_per_cycle;
    thresholds.lsq_full_per_cycle =
        cfg_.adaptive_factor * ewma_.lsq_full_per_cycle;
    thresholds.mispredict_per_cycle =
        cfg_.adaptive_factor * ewma_.mispredicts_per_cycle;
    thresholds.cond_branch_per_cycle =
        cfg_.adaptive_factor * ewma_.cond_branches_per_cycle;
    const double a = cfg_.adaptive_alpha;
    ewma_.l1_misses_per_cycle = (1 - a) * ewma_.l1_misses_per_cycle +
                                a * machine.l1_misses_per_cycle;
    ewma_.lsq_full_per_cycle =
        (1 - a) * ewma_.lsq_full_per_cycle + a * machine.lsq_full_per_cycle;
    ewma_.mispredicts_per_cycle = (1 - a) * ewma_.mispredicts_per_cycle +
                                  a * machine.mispredicts_per_cycle;
    ewma_.cond_branches_per_cycle =
        (1 - a) * ewma_.cond_branches_per_cycle +
        a * machine.cond_branches_per_cycle;
  }

  const bool low_throughput = ipc_last_ < cfg_.ipc_threshold;
  if (low_throughput) {
    ++stats_.low_throughput_quanta;

    identify_clogging_threads(pipe);

    const SystemConditions conds = evaluate_conditions(machine, thresholds);

    const std::optional<Decision> d = determine_next_policy(
        cfg_.heuristic, pipe.policy(), conds, ipc_last_, ipc_prev_,
        &history_);
    if (d.has_value() && d->next != pipe.policy()) {
      if (d->reversed) ++stats_.switches_reversed;
      // Remember the context for outcome scoring / history recording.
      ipc_before_switch_ = ipc_last_;
      switch_incumbent_ = pipe.policy();
      switch_cond_value_ = d->cond_value;

      if (cfg_.instant_switch) {
        pipe.set_policy(d->next);
        ++stats_.switches;
        switch_unscored_ = true;
      } else {
        pending_policy_ = d->next;
        decision_pending_ = true;
        pipe.add_dt_work(cfg_.dt_decide_instrs);
      }
    }
  }

  pipe.reset_quantum_counters();
}

void DetectorThread::identify_clogging_threads(pipeline::Pipeline& pipe) {
  clogging_.clear();
  std::int64_t total_icount = 0;
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    total_icount += pipe.counters(tid).icount;
  }
  if (total_icount <= 0) return;
  for (std::uint32_t tid = 0; tid < pipe.num_threads(); ++tid) {
    const double share = static_cast<double>(pipe.counters(tid).icount) /
                         static_cast<double>(total_icount);
    if (share > cfg_.clog_icount_share) {
      clogging_.push_back(tid);
      if (std::find(clog_marks_.begin(), clog_marks_.end(), tid) ==
          clog_marks_.end()) {
        clog_marks_.push_back(tid);
      }
      ++stats_.clog_flags;
      if (cfg_.enable_clog_control) {
        pipe.block_fetch(tid, pipe.now() + cfg_.clog_block_cycles);
      }
    }
  }
}

}  // namespace smt::core
