// The detector thread (DT): functional model of the paper's §3/§4
// software architecture.
//
// Once per scheduling quantum (8K cycles by default) the DT:
//   1. reads the per-thread status counters and computes IPC_last;
//   2. scores the outcome of any switch applied one quantum ago
//      (benign = throughput rose) and, for Type 4, records it in the
//      switching-history buffer;
//   3. if IPC_last < threshold, runs the policy-determination heuristic
//      (Determine_NewPolicy) and identifies clogging threads
//      (Identify_CloggingThreads);
//   4. queues its own instruction cost into the pipeline — the DT is the
//      lowest-priority context and retires only through fetch slots left
//      idle by normal threads. A policy decision takes effect only when
//      that work has drained (Policy_Switch); if the pipeline is so busy
//      the DT starves, the switch is skipped — which is acceptable,
//      because a saturated pipeline is exactly the case that needs no
//      intervention (paper §3).
//
// The DT model carries no pointers into the pipeline; Simulator owns both
// and passes the pipeline by reference, keeping the pair value-semantic
// (snapshot-able).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/guard.hpp"
#include "core/heuristics.hpp"
#include "core/history.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/switch_audit.hpp"
#include "pipeline/counters.hpp"
#include "pipeline/pipeline.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::core {

struct AdtsConfig {
  std::uint64_t quantum_cycles = 8192;
  /// The paper's threshold value "m": low throughput ⇔ IPC_last < m.
  double ipc_threshold = 2.0;
  HeuristicType heuristic = HeuristicType::kType3;
  ConditionThresholds conditions{};
  policy::FetchPolicy initial_policy = policy::FetchPolicy::kIcount;

  /// Adaptive condition thresholds (the paper's §4.3.2 escape hatch:
  /// "there can be no single golden reference measures ... the detector
  /// thread management kernel can profile the system and ... update the
  /// values to reflect the new state of the system"). When enabled, a
  /// COND_* sub-condition fires when its rate exceeds
  /// `adaptive_factor` × the exponentially-weighted running mean of that
  /// rate on *this* system — i.e. "abnormal for this workload right now"
  /// instead of "above the 13-mix calibration average". The static
  /// `conditions` thresholds above are ignored while this is on.
  bool adaptive_conditions = false;
  double adaptive_factor = 1.3;
  double adaptive_alpha = 0.1;  ///< EWMA weight of the newest quantum

  // --- detector-thread cost model --------------------------------------
  /// DT instructions per quantum for monitoring (counter reads + compare).
  std::uint64_t dt_check_instrs = 96;
  /// Additional DT instructions to run Determine_NewPolicy + Policy_Switch.
  std::uint64_t dt_decide_instrs = 512;
  /// Ablation: apply switches at the quantum boundary with zero DT cost.
  bool instant_switch = false;
  /// Architectural cost of a Policy_Switch: fetch is blocked for all
  /// threads this many cycles while the new priorities propagate. The
  /// paper's switch-rate pathology (Fig. 7) presumes switching is not
  /// free; the default 0 keeps the legacy zero-cost model.
  std::uint64_t switch_penalty_cycles = 0;

  // --- clogging-thread control (Identify_CloggingThreads) --------------
  /// Flag a thread as clogging when it holds more than this share of the
  /// total in-flight instruction count.
  double clog_icount_share = 0.5;
  /// When enabled, flagged threads are fetch-blocked for this many cycles
  /// (the "prevent a specific thread from being fetched" action of §3).
  bool enable_clog_control = false;
  std::uint64_t clog_block_cycles = 512;

  /// Graceful-degradation guard (core/guard.hpp): watchdog reverts,
  /// switching hysteresis and the safe-mode fallback. Off by default;
  /// when enabled on a fault-free run the guard observes but never acts,
  /// so results are bit-identical to an unguarded run.
  GuardConfig guard{};
};

struct AdtsStats {
  std::uint64_t quanta = 0;
  std::uint64_t low_throughput_quanta = 0;
  std::uint64_t switches = 0;          ///< switches actually applied
  std::uint64_t benign_switches = 0;   ///< next-quantum IPC rose
  std::uint64_t malignant_switches = 0;
  std::uint64_t switches_skipped_dt_busy = 0;  ///< DT starved; switch dropped
  std::uint64_t switches_reversed = 0;         ///< Type 4 took the opposite arc
  std::uint64_t switches_dropped_fault = 0;  ///< Policy_Switch write lost (fault)
  std::uint64_t switches_stale = 0;  ///< applied ≥1 quantum late (fault)
  std::uint64_t clog_flags = 0;        ///< thread-flagging events
  /// Quanta spent under each fetch policy.
  std::array<std::uint64_t, policy::kNumFetchPolicies> quanta_per_policy{};

  [[nodiscard]] double benign_fraction() const noexcept {
    return obs::benign_probability(benign_switches, malignant_switches);
  }
};

class DetectorThread {
 public:
  DetectorThread() = default;
  explicit DetectorThread(const AdtsConfig& cfg);

  /// Call after every pipeline step. Does quantum-boundary processing and
  /// applies pending switches once the DT's work has drained. When
  /// `faults` is non-null, all status-counter reads go through the fault
  /// injector's (possibly perturbed) view and Policy_Switch writes are
  /// subject to drop/delay interference — the architectural pipeline is
  /// never read around the injector.
  void tick(pipeline::Pipeline& pipe, fault::FaultInjector* faults = nullptr);

  /// Re-baseline the DT's committed-instruction bookkeeping to the
  /// pipeline's current state. Call when the detector starts ticking on a
  /// pipeline that has already been running (e.g. after a measurement
  /// warm-up), so the first quantum's IPC is not polluted by pre-arm
  /// history.
  void arm(const pipeline::Pipeline& pipe);

  [[nodiscard]] const AdtsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const AdtsStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DegradationGuard& guard() const noexcept {
    return guard_;
  }
  /// Guard verdict issued at the most recent quantum boundary (trace).
  [[nodiscard]] const GuardVerdict& last_guard_verdict() const noexcept {
    return last_verdict_;
  }
  [[nodiscard]] const SwitchHistory& history() const noexcept {
    return history_;
  }
  /// Provenance trail: one record per applied switch, carrying the full
  /// decision context and (after the following quantum) its benign/
  /// malignant label. The classifier is obs::classify_switch — the same
  /// definition AdtsStats counts with, so log and stats always agree.
  [[nodiscard]] const obs::SwitchAuditLog& audit_log() const noexcept {
    return audit_log_;
  }
  [[nodiscard]] double last_quantum_ipc() const noexcept { return ipc_last_; }
  /// Threads flagged as clogging in the most recent low-throughput quantum.
  [[nodiscard]] const std::vector<std::uint32_t>& clogging_threads() const noexcept {
    return clogging_;
  }

  /// Sticky clog marks: the union of clogging flags raised since the last
  /// clear_clog_marks(). This is the paper's hand-off to the system job
  /// scheduler — threads are "identified and marked so that the job
  /// scheduler can later suspend them" whenever it next runs, not only if
  /// it happens to run in the same quantum.
  [[nodiscard]] const std::vector<std::uint32_t>& clog_marks() const noexcept {
    return clog_marks_;
  }
  void clear_clog_marks() { clog_marks_.clear(); }

  /// Export ADTS statistics (and the guard's, when enabled) into `reg`
  /// under "adts." / "guard." (--stats-json).
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  void on_quantum_boundary(pipeline::Pipeline& pipe,
                           fault::FaultInjector* faults);
  /// Write Policy_Switch and charge the architectural switch penalty.
  void apply_policy(pipeline::Pipeline& pipe, policy::FetchPolicy next);
  void identify_clogging_threads(pipeline::Pipeline& pipe,
                                 fault::FaultInjector* faults);
  /// Status-counter sample for `tid`: the injector's view under fault,
  /// the live counters otherwise.
  [[nodiscard]] pipeline::ThreadCounters sample_counters(
      const pipeline::Pipeline& pipe, fault::FaultInjector* faults,
      std::uint32_t tid) const;

  AdtsConfig cfg_{};
  SwitchHistory history_{};
  AdtsStats stats_{};
  DegradationGuard guard_{};
  GuardVerdict last_verdict_{};
  bool allow_switch_ = true;  ///< guard hysteresis gate for this quantum

  std::uint64_t committed_at_quantum_start_ = 0;
  double ipc_last_ = 0.0;
  double ipc_prev_ = 0.0;

  // Pending decision: chosen at a boundary, applied when DT work drains.
  bool decision_pending_ = false;
  policy::FetchPolicy pending_policy_ = policy::FetchPolicy::kIcount;
  /// Cycle the pending decision was (first) made. An application more
  /// than one quantum later is stale — impossible fault-free, because
  /// undrained decisions drop at the next boundary the DT processes.
  std::uint64_t pending_decided_cycle_ = 0;
  /// Fault-delay hold: the pending switch may not apply before this
  /// cycle (0 = no hold).
  std::uint64_t pending_hold_until_cycle_ = 0;
  /// Cycle of the last boundary the DT actually processed; IPC_last and
  /// the condition rates are normalised over the span since then, so a
  /// starved DT still computes correct rates when it resumes.
  std::uint64_t last_boundary_cycle_ = 0;
  /// Boundaries skipped because the DT was stalled (fault).
  std::uint64_t missed_quanta_ = 0;
  /// A Policy_Switch write was lost since the last boundary (fault).
  bool switch_write_lost_ = false;

  // Switch-audit provenance (obs/switch_audit.hpp). pending_audit_ is
  // filled at decision time and pushed into the log at apply time;
  // unscored_audit_ indexes the entry awaiting its scoring boundary.
  obs::SwitchAuditLog audit_log_{};
  obs::SwitchAudit pending_audit_{};
  std::size_t unscored_audit_ = obs::SwitchAuditLog::npos;

  // Outcome tracking for the most recent applied switch.
  bool switch_unscored_ = false;
  bool switch_was_stale_ = false;
  double ipc_before_switch_ = 0.0;
  policy::FetchPolicy switch_incumbent_ = policy::FetchPolicy::kIcount;
  bool switch_cond_value_ = false;

  std::vector<std::uint32_t> clogging_{};
  std::vector<std::uint32_t> clog_marks_{};

  // Adaptive-threshold state: running means of the machine-wide rates.
  pipeline::QuantumRates ewma_{};
  bool ewma_primed_ = false;
};

}  // namespace smt::core
