// Switching-history buffer (paper §4.3.2, Type 4 heuristic).
//
// For every policy-switch event the detector thread records the incumbent
// policy and the value of the condition it consulted; once the following
// quantum's IPC is known, the event is scored as a positive outcome
// (throughput rose) or a negative one. Type 4 consults the per-state
// counters before switching: if negatives dominate, it takes the opposite
// transition. (The paper's finding — reproduced by bench_fig7 — is that
// this is *not* worth it: policy/condition outcomes show no usable
// temporal correlation.)
#pragma once

#include <array>
#include <cstdint>

#include "policy/fetch_policy.hpp"

namespace smt::core {

struct SwitchOutcomeCounts {
  std::uint32_t poscnt = 0;
  std::uint32_t negcnt = 0;
};

class SwitchHistory {
 public:
  /// Record the outcome of a completed switch from `incumbent` under
  /// condition value `cond`.
  void record(policy::FetchPolicy incumbent, bool cond, bool positive);

  [[nodiscard]] const SwitchOutcomeCounts& counts(policy::FetchPolicy incumbent,
                                                  bool cond) const;

  /// Should the regular transition be taken? True when positive outcomes
  /// strictly outnumber negative ones so far, or when there is no history
  /// yet (paper: "if poscnt is greater, then a regular switching is
  /// made; otherwise, the opposite direction will be chosen" — we treat
  /// the empty state as regular).
  [[nodiscard]] bool regular_transition(policy::FetchPolicy incumbent,
                                        bool cond) const;

  void clear();

 private:
  [[nodiscard]] static std::size_t index(policy::FetchPolicy p, bool cond);

  std::array<SwitchOutcomeCounts,
             static_cast<std::size_t>(policy::kNumFetchPolicies) * 2>
      counts_{};
};

}  // namespace smt::core
