#include "core/guard.hpp"

#include "core/heuristics.hpp"
#include "obs/metrics.hpp"

namespace smt::core {

const char* name(GuardState s) noexcept {
  switch (s) {
    case GuardState::kArmed: return "ARMED";
    case GuardState::kReverting: return "REVERTING";
    case GuardState::kSafeMode: return "SAFE_MODE";
    case GuardState::kCooldown: return "COOLDOWN";
  }
  return "?";
}

void DegradationGuard::raise_suspicion() {
  const std::uint64_t until = quantum_ + cfg_.suspicion_quanta;
  if (until > suspicious_until_) suspicious_until_ = until;
}

GuardVerdict DegradationGuard::on_quantum(const GuardObservation& obs) {
  GuardVerdict v;
  if (!cfg_.enabled) return v;
  ++quantum_;
  ++stats_.quanta;

  // --- integrity evidence: the only way suspicion is ever raised --------
  if (obs.committed_counters != obs.committed_truth ||
      obs.counters_implausible) {
    ++stats_.anomalies;
    raise_suspicion();
  }
  if (obs.switch_stale) {
    ++stats_.stale_switches;
    raise_suspicion();
  }
  if (obs.switch_write_lost) {
    ++stats_.lost_switch_writes;
    raise_suspicion();
  }
  if (obs.dt_starved) {
    ++stats_.dt_starvations;
    raise_suspicion();
  }
  if (suspicious()) ++stats_.suspicious_quanta;

  // --- watchdog: score-driven revert ------------------------------------
  // Starvation is a failure strike too: a DT that keeps missing its
  // scheduling slot cannot supervise the heuristic, and repeated misses
  // should land the machine on the safe static policy rather than leave
  // it parked on whatever the last (possibly stale) switch chose.
  bool failure = obs.switch_write_lost || obs.dt_starved;
  if (obs.switch_scored) {
    if (obs.switch_benign) {
      consecutive_failures_ = 0;
      if (state_ == GuardState::kReverting) state_ = GuardState::kArmed;
    } else if (suspicious() && state_ != GuardState::kSafeMode) {
      const double damage =
          switch_damage(obs.ipc_before_switch, obs.ipc_last);
      if (damage > cfg_.revert_margin || obs.switch_stale) {
        v.revert = true;
        v.revert_to = obs.switch_incumbent;
        ++stats_.reverts;
        if (state_ != GuardState::kCooldown) state_ = GuardState::kReverting;
        failure = true;
      }
    }
  }
  if (failure) ++consecutive_failures_;

  // --- fallback: trip into SAFE_MODE ------------------------------------
  const bool trip =
      state_ == GuardState::kCooldown
          ? failure  // one strike while cooling down
          : (state_ != GuardState::kSafeMode &&
             consecutive_failures_ >= cfg_.safe_mode_failures);
  if (trip) {
    state_ = GuardState::kSafeMode;
    state_until_ = quantum_ + cfg_.safe_mode_quanta;
    ++stats_.safe_mode_entries;
    consecutive_failures_ = 0;
    v.revert = false;  // the pin supersedes the revert
  }

  // --- state upkeep ------------------------------------------------------
  if (state_ == GuardState::kSafeMode) {
    ++stats_.safe_mode_quanta;
    v.pin_safe_policy = true;
    if (quantum_ >= state_until_ && !trip) {
      state_ = GuardState::kCooldown;
      state_until_ = quantum_ + cfg_.cooldown_quanta;
    }
  } else if (state_ == GuardState::kCooldown) {
    if (quantum_ >= state_until_) {
      state_ = GuardState::kArmed;
      consecutive_failures_ = 0;
    }
  }

  // --- hysteresis ---------------------------------------------------------
  v.allow_switching = true;
  if (state_ == GuardState::kSafeMode || v.revert) {
    v.allow_switching = false;
  } else if ((suspicious() || state_ == GuardState::kCooldown) &&
             any_switch_seen_ &&
             quantum_ < last_switch_quantum_ + cfg_.dwell_quanta) {
    v.allow_switching = false;
  }
  return v;
}

void DegradationGuard::note_switch_applied() {
  if (!cfg_.enabled) return;
  any_switch_seen_ = true;
  last_switch_quantum_ = quantum_;
}

void DegradationGuard::export_metrics(obs::MetricsRegistry& reg) const {
  reg.set("guard.state", name(state_));
  reg.set("guard.quanta", stats_.quanta);
  reg.set("guard.anomalies", stats_.anomalies);
  reg.set("guard.suspicious_quanta", stats_.suspicious_quanta);
  reg.set("guard.reverts", stats_.reverts);
  reg.set("guard.vetoed_switches", stats_.vetoed_switches);
  reg.set("guard.stale_switches", stats_.stale_switches);
  reg.set("guard.lost_switch_writes", stats_.lost_switch_writes);
  reg.set("guard.dt_starvations", stats_.dt_starvations);
  reg.set("guard.stale_decisions_dropped", stats_.stale_decisions_dropped);
  reg.set("guard.clog_blocks_suppressed", stats_.clog_blocks_suppressed);
  reg.set("guard.safe_mode_entries", stats_.safe_mode_entries);
  reg.set("guard.safe_mode_quanta", stats_.safe_mode_quanta);
}

}  // namespace smt::core
