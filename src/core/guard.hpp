// ADTS graceful-degradation guard.
//
// ADTS trusts two things the paper takes for granted: that the status
// counters tell the truth, and that a Policy_Switch lands roughly when it
// was decided. The fault layer (src/fault/) breaks both; this guard makes
// ADTS survive it with three mechanisms:
//
//   * watchdog — every applied switch is scored one quantum later (the
//     detector already does this); if the switch was malignant beyond a
//     revert margin, the guard undoes it — the machine is back on the
//     incumbent policy within one quantum of the damage being visible.
//   * hysteresis — a minimum dwell between applied switches, bounding the
//     switch-frequency pathology of Fig. 7 when decisions are being made
//     from garbage counters.
//   * safe-mode fallback — after N consecutive failed switches the guard
//     stops trusting the heuristic entirely and pins the fixed safe
//     policy (ICOUNT, the paper's best static baseline), re-arming after
//     a cool-down.
//
// State machine: ARMED → REVERTING (a switch was undone) → SAFE_MODE
// (N consecutive failures; policy pinned) → COOLDOWN (pin released,
// hysteresis forced, any failure returns to SAFE_MODE) → ARMED.
//
// The crucial design rule: every intervention is gated on *suspicion*,
// and suspicion is only raised by observations that are impossible in a
// healthy run —
//   1. the per-thread committed counters disagree with the global
//      retirement counter (exact redundancy cross-check; the fault model
//      perturbs per-thread status counters, the global counter is
//      separate, protected hardware),
//   2. a counter sample violates a hard physical ceiling
//      (pipeline::counters_plausible),
//   3. a policy switch applied one or more quanta after it was decided
//      (fault-free, stale decisions are dropped at the boundary, §3),
//   4. a Policy_Switch register write that did not stick (read-back
//      mismatch),
//   5. the DT slept through a quantum boundary (cycle-counter read-back
//      shows more than one quantum since its last run).
// Ordinary malignant switches — which the paper shows are common even in
// a healthy system (Fig. 7c/d) — never trigger the guard on their own.
// Consequently a guarded, fault-free run is bit-identical to an
// unguarded one: the guard observes but never acts. tests/test_guard.cpp
// enforces this across all 13 mixes.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "policy/fetch_policy.hpp"

namespace smt::core {

enum class GuardState : std::uint8_t {
  kArmed,
  kReverting,
  kSafeMode,
  kCooldown,
};

[[nodiscard]] const char* name(GuardState s) noexcept;

struct GuardConfig {
  bool enabled = false;

  /// Watchdog: revert a scored-malignant switch when the post-switch
  /// quantum ran more than this fraction slower than the pre-switch one
  /// (core::switch_damage > margin). Only while suspicious.
  double revert_margin = 0.10;

  /// Hysteresis: minimum quanta between applied switches while suspicion
  /// is active (and throughout COOLDOWN).
  std::uint32_t dwell_quanta = 3;

  /// Safe-mode trip wire: consecutive failures (reverts, lost writes,
  /// stale applications, DT starvation) before the policy is pinned.
  std::uint32_t safe_mode_failures = 3;
  /// Quanta the policy stays pinned in SAFE_MODE.
  std::uint32_t safe_mode_quanta = 16;
  /// Clean quanta in COOLDOWN before re-arming.
  std::uint32_t cooldown_quanta = 8;

  /// Quanta an anomaly keeps suspicion raised.
  std::uint32_t suspicion_quanta = 8;

  policy::FetchPolicy safe_policy = policy::FetchPolicy::kIcount;
};

struct GuardStats {
  std::uint64_t quanta = 0;
  std::uint64_t anomalies = 0;  ///< counter-integrity violations observed
  std::uint64_t suspicious_quanta = 0;
  std::uint64_t reverts = 0;           ///< malignant switches undone
  std::uint64_t vetoed_switches = 0;   ///< hysteresis / safe-mode vetoes
  std::uint64_t stale_switches = 0;    ///< switches applied late (fault)
  std::uint64_t lost_switch_writes = 0;
  std::uint64_t dt_starvations = 0;    ///< boundaries the DT slept through
  /// In-flight decisions cancelled on resume from starvation (they were
  /// computed for a phase several quanta gone).
  std::uint64_t stale_decisions_dropped = 0;
  /// Clogging-thread fetch blocks withheld because the counter samples
  /// naming the thread were under suspicion.
  std::uint64_t clog_blocks_suppressed = 0;
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t safe_mode_quanta = 0;  ///< quanta spent pinned
};

/// Everything the guard gets to see at one quantum boundary, assembled by
/// the detector thread from the same (possibly faulty) counter samples it
/// uses itself — plus the trustworthy global retirement count.
struct GuardObservation {
  double ipc_last = 0.0;

  /// Ground truth: instructions retired this quantum per the global
  /// retirement counter.
  std::uint64_t committed_truth = 0;
  /// Sum of the per-thread committed_quantum counters as sampled.
  std::uint64_t committed_counters = 0;
  /// Any per-thread sample failed pipeline::counters_plausible.
  bool counters_implausible = false;

  // --- scored switch (at most one per boundary) ------------------------
  bool switch_scored = false;
  bool switch_benign = false;
  /// The switch was applied ≥ 1 quantum after it was decided.
  bool switch_stale = false;
  double ipc_before_switch = 0.0;
  policy::FetchPolicy switch_incumbent = policy::FetchPolicy::kIcount;

  /// A Policy_Switch write this quantum did not stick (read-back
  /// mismatch) — only the fault layer produces this.
  bool switch_write_lost = false;

  /// The DT slept through one or more quantum boundaries since it last
  /// ran (it reads the cycle counter, so it can tell). A healthy DT is
  /// scheduled every quantum, so starvation is itself hard evidence.
  bool dt_starved = false;
};

/// What the detector must do this quantum on the guard's behalf.
struct GuardVerdict {
  /// Undo the scored switch: set the policy back to `revert_to` now.
  bool revert = false;
  policy::FetchPolicy revert_to = policy::FetchPolicy::kIcount;
  /// Pin the safe policy now (SAFE_MODE entry or dwell).
  bool pin_safe_policy = false;
  /// May ADTS apply a new switch this quantum?
  bool allow_switching = true;
};

class DegradationGuard {
 public:
  DegradationGuard() = default;
  explicit DegradationGuard(const GuardConfig& cfg) : cfg_(cfg) {}

  /// Quantum-boundary processing; call once per boundary, after switch
  /// scoring. The verdict is only meaningful when cfg().enabled.
  [[nodiscard]] GuardVerdict on_quantum(const GuardObservation& obs);

  /// The detector applied a switch (dwell bookkeeping).
  void note_switch_applied();

  /// The heuristic wanted to switch but the verdict vetoed it.
  void note_vetoed() { ++stats_.vetoed_switches; }

  /// A clogging-thread fetch block was withheld under suspicion.
  void note_clog_suppressed() { ++stats_.clog_blocks_suppressed; }

  /// An in-flight decision was cancelled on resume from starvation.
  void note_stale_decision_dropped() { ++stats_.stale_decisions_dropped; }

  [[nodiscard]] const GuardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] GuardState state() const noexcept { return state_; }
  [[nodiscard]] const GuardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool suspicious() const noexcept {
    return quantum_ < suspicious_until_;
  }
  [[nodiscard]] std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

  /// Export guard statistics into `reg` under "guard." (--stats-json).
  void export_metrics(obs::MetricsRegistry& reg) const;

 private:
  void raise_suspicion();

  GuardConfig cfg_{};
  GuardState state_ = GuardState::kArmed;
  GuardStats stats_{};

  std::uint64_t quantum_ = 0;            ///< boundaries seen
  std::uint64_t suspicious_until_ = 0;   ///< quantum index suspicion expires
  std::uint64_t last_switch_quantum_ = 0;
  bool any_switch_seen_ = false;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t state_until_ = 0;  ///< SAFE_MODE / COOLDOWN expiry
};

}  // namespace smt::core
