// Synthetic RISC instruction definitions.
//
// The workload generator emits a stream of these records; the pipeline
// consumes them. The ISA is deliberately minimal: the fetch-policy study
// only needs the attributes that drive resource usage — instruction class
// (which functional unit and latency), register dependencies (which limit
// ILP), memory address (which drives the caches), and branch behaviour
// (which drives the predictor and wrong-path waste).
#pragma once

#include <cstdint>
#include <string_view>

namespace smt::isa {

/// Instruction classes, each mapping to a functional-unit type and
/// execution latency in the pipeline configuration.
enum class InstrClass : std::uint8_t {
  kIntAlu,    ///< 1-cycle integer op (add, logic, shifts, compares)
  kIntMul,    ///< integer multiply
  kIntDiv,    ///< integer divide (long latency)
  kFpAdd,     ///< FP add/sub/convert
  kFpMul,     ///< FP multiply
  kFpDiv,     ///< FP divide / sqrt (long latency)
  kLoad,      ///< memory read (address stream feeds the D-cache)
  kStore,     ///< memory write
  kBranch,    ///< conditional branch (feeds the predictor)
  kSyscall,   ///< serialising system call (full pipeline flush, see paper §6)
};

inline constexpr int kNumInstrClasses = 10;

[[nodiscard]] constexpr bool is_fp(InstrClass c) noexcept {
  return c == InstrClass::kFpAdd || c == InstrClass::kFpMul ||
         c == InstrClass::kFpDiv;
}

[[nodiscard]] constexpr bool is_mem(InstrClass c) noexcept {
  return c == InstrClass::kLoad || c == InstrClass::kStore;
}

[[nodiscard]] constexpr std::string_view name(InstrClass c) noexcept {
  switch (c) {
    case InstrClass::kIntAlu: return "int_alu";
    case InstrClass::kIntMul: return "int_mul";
    case InstrClass::kIntDiv: return "int_div";
    case InstrClass::kFpAdd: return "fp_add";
    case InstrClass::kFpMul: return "fp_mul";
    case InstrClass::kFpDiv: return "fp_div";
    case InstrClass::kLoad: return "load";
    case InstrClass::kStore: return "store";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kSyscall: return "syscall";
  }
  return "?";
}

/// Dependency encoding: each source operand names the producer as a
/// *distance* in the same thread's dynamic instruction stream (1 = the
/// immediately preceding instruction). Distance 0 means "no dependency /
/// value already architected". Register reuse distances are what bound a
/// thread's ILP, and encoding them directly lets the generator dial ILP
/// per application profile without a full register allocator.
struct Instruction {
  InstrClass cls = InstrClass::kIntAlu;
  std::uint16_t dep1 = 0;       ///< distance to first producer (0 = none)
  std::uint16_t dep2 = 0;       ///< distance to second producer (0 = none)
  std::uint64_t pc = 0;         ///< synthetic PC (bytes; instructions are 4 B)
  std::uint64_t mem_addr = 0;   ///< effective address for load/store
  // Branch fields (valid when cls == kBranch):
  std::uint64_t branch_target = 0;  ///< taken-path target PC
  bool taken = false;               ///< actual outcome
};

/// Architectural constants shared by the generator and the pipeline.
inline constexpr std::uint64_t kInstrBytes = 4;
inline constexpr std::uint64_t kFetchBlockInstrs = 8;  ///< ICOUNT.2.8 block
inline constexpr std::uint64_t kFetchBlockBytes = kFetchBlockInstrs * kInstrBytes;

}  // namespace smt::isa
