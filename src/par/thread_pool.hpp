// Deterministic parallel execution engine.
//
// Every workload this pool runs is embarrassingly parallel: independent
// whole simulations (oracle candidate trials, experiment-grid cells,
// per-mix sweeps) with no shared mutable state. Parallelism therefore
// never has to change results — parallel_map returns results in
// submission-index order and reductions stay on the calling thread, so
// output is byte-identical to the serial loop for any worker count.
// This is the repo's determinism contract extended to threads: the grain
// of parallelism is the simulation, never the cycle (DESIGN.md §12).
//
// The pool is the only library component allowed to use std::thread /
// mutex primitives (scripts/check_lint.sh allowlists src/par/ and
// bench/); everything above it stays single-threaded and oblivious.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace smt::par {

/// Upper bound on workers; a fan-out wider than this is queue depth, not
/// speedup, and unbounded SMT_JOBS values should not spawn thousands of
/// threads.
inline constexpr std::size_t kMaxJobs = 64;

/// Worker count requested by the environment: SMT_JOBS if set to a
/// positive integer (clamped to kMaxJobs), else 1. Parallelism is
/// strictly opt-in; results are identical either way.
[[nodiscard]] std::size_t default_jobs();

/// Host-time telemetry for one worker slot (slot 0 is the calling thread
/// in inline mode). `busy_ticks` is in whatever unit the injected clock
/// returns; it stays 0 when no clock is set.
struct WorkerStats {
  std::uint64_t tasks = 0;       ///< tasks executed by this slot
  std::uint64_t busy_ticks = 0;  ///< host ticks spent inside tasks
};

/// Monotonic host-clock callback (par sits below prof, so the profiler's
/// fenced clock is injected rather than linked).
using ClockFn = std::uint64_t (*)();

/// Fixed-size task pool. Constructed with a job count: `jobs >= 2` spawns
/// that many workers (clamped to kMaxJobs); `jobs <= 1` spawns none and
/// submit() runs tasks inline on the calling thread, making the serial
/// and parallel code paths literally the same code.
///
/// Tasks submitted directly must not throw (parallel_for/parallel_map
/// wrap user callables and capture exceptions per index). Nested
/// submission from inside a task is not supported.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ThreadPool(ThreadPool&&) = delete;
  ThreadPool& operator=(ThreadPool&&) = delete;

  /// Number of worker threads (0 in inline mode).
  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Enqueue a task (runs it inline when there are no workers).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait();

  /// Install (or, with nullptr, remove) the clock used to time task
  /// bodies. Observation-only — results are identical either way. Call
  /// only while the pool is idle: workers read the pointer unlocked and
  /// rely on submit()'s mutex for the happens-before.
  void set_clock(ClockFn clock) noexcept { clock_ = clock; }

  /// Per-slot task/busy-tick counters (one slot per worker; a single
  /// slot 0 in inline mode). Call after wait() for a consistent view.
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  void worker_loop(std::size_t slot);
  void run_task(const std::function<void()>& task, std::size_t slot);

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::vector<WorkerStats> stats_;
  ClockFn clock_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;  ///< signals workers: work or stop
  std::condition_variable cv_done_;  ///< signals wait(): drained
  std::size_t in_flight_ = 0;        ///< queued + running tasks
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n) across the pool and wait for all of
/// them. If any invocation throws, the exception thrown by the *lowest
/// index* is rethrown after the barrier (a deterministic choice — the
/// same one the serial loop would have surfaced first); the pool itself
/// survives and stays usable.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &fn, &errors] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

/// Map i -> fn(i) over [0, n), returning results in submission-index
/// order regardless of completion order — the vector is byte-equivalent
/// to what the serial `for` loop would have produced. The result type
/// only needs to be movable.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<std::optional<T>> slots(n);
  parallel_for(pool, n, [&slots, &fn](std::size_t i) {
    slots[i].emplace(fn(i));
  });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace smt::par
