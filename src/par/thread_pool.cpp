#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace smt::par {

std::size_t default_jobs() {
  const char* env = std::getenv("SMT_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxJobs);
}

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs < 2) return;  // inline mode: submit() executes on the caller
  const std::size_t n = std::min(jobs, kMaxJobs);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace smt::par
