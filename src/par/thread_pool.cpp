#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace smt::par {

std::size_t default_jobs() {
  const char* env = std::getenv("SMT_JOBS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return 1;
  return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxJobs);
}

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs < 2) {  // inline mode: submit() executes on the caller
    stats_.resize(1);
    return;
  }
  const std::size_t n = std::min(jobs, kMaxJobs);
  stats_.resize(n);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    run_task(task, 0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_task(const std::function<void()>& task,
                          std::size_t slot) {
  WorkerStats& st = stats_[slot];
  if (clock_ != nullptr) {
    const std::uint64_t t0 = clock_();
    task();
    st.busy_ticks += clock_() - t0;
  } else {
    task();
  }
  ++st.tasks;
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  // Workers update their slot before re-taking mu_ to decrement
  // in_flight_, so this lock (after wait()) sees every completed task.
  const std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ThreadPool::worker_loop(std::size_t slot) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task, slot);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace smt::par
