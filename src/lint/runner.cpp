#include "lint/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace smt::lint {

namespace {

[[nodiscard]] bool is_cpp_source(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return path.size() >= n &&
           path.compare(path.size() - n, n, suffix) == 0;
  };
  if (!ends_with(".cpp") && !ends_with(".hpp")) return false;
  return path.rfind("src/", 0) == 0 || path.rfind("bench/", 0) == 0;
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#') continue;
    // "<rule-id> <path>:<line>"
    const std::size_t sp = line.find(' ', begin);
    const std::size_t colon = line.rfind(':');
    if (sp == std::string::npos || colon == std::string::npos ||
        colon < sp) {
      throw std::runtime_error(
          "baseline line " + std::to_string(lineno) +
          ": expected \"<rule-id> <path>:<line>\", got: " + line);
    }
    BaselineEntry e;
    e.source_line = lineno;
    e.rule_id = line.substr(begin, sp - begin);
    e.path = line.substr(sp + 1, colon - sp - 1);
    try {
      e.line = std::stoi(line.substr(colon + 1));
    } catch (const std::exception&) {
      throw std::runtime_error("baseline line " + std::to_string(lineno) +
                               ": bad line number in: " + line);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

LintResult run_lint(const RuleRegistry& registry,
                    std::vector<InputFile> inputs,
                    const LintOptions& options) {
  std::sort(inputs.begin(), inputs.end(),
            [](const InputFile& a, const InputFile& b) {
              return a.path < b.path;
            });

  Corpus corpus;
  for (const InputFile& in : inputs) {
    if (is_cpp_source(in.path)) {
      corpus.sources.emplace_back(in.path, in.content);
    } else {
      corpus.extras.emplace(in.path, in.content);
    }
  }

  const auto selected = [&](std::string_view id) {
    if (options.only_rules.empty()) return true;
    return std::find(options.only_rules.begin(), options.only_rules.end(),
                     std::string(id)) != options.only_rules.end();
  };
  for (const std::string& id : options.only_rules) {
    if (!registry.has(id)) {
      throw std::runtime_error("unknown rule id: " + id +
                               " (see --list-rules)");
    }
  }

  LintResult result;
  result.files_scanned = static_cast<int>(corpus.sources.size());

  std::vector<Finding> raw;
  for (const auto& rule : registry.rules()) {
    if (!selected(rule->id())) continue;
    ++result.rules_run;
    for (const SourceFile& f : corpus.sources) rule->check(f, raw);
    rule->finish(corpus, raw);
  }

  // NOLINT suppression: a finding anchored in a lexed source can be
  // silenced on its line; findings in extras (scripts) cannot.
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    const SourceFile* src = corpus.source(f.path);
    if (src != nullptr && src->is_suppressed(f.line, f.rule_id)) {
      ++result.suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }

  // Baseline: exact (rule, path, line) matches drop out; every entry
  // must still match something or it is itself a finding.
  const std::vector<BaselineEntry> baseline =
      parse_baseline(options.baseline);
  std::vector<bool> used(baseline.size(), false);
  std::vector<Finding> survivors;
  for (Finding& f : kept) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& e = baseline[i];
      if (e.rule_id == f.rule_id && e.path == f.path && e.line == f.line) {
        used[i] = true;
        matched = true;
      }
    }
    if (matched) {
      ++result.baselined;
    } else {
      survivors.push_back(std::move(f));
    }
  }
  if (selected("baseline-stale")) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (used[i]) continue;
      survivors.push_back(
          {"baseline-stale", options.baseline_path, baseline[i].source_line,
           1,
           "baseline entry matches no finding (" + baseline[i].rule_id +
               " " + baseline[i].path + ":" +
               std::to_string(baseline[i].line) + ") — delete it"});
    }
  }

  std::sort(survivors.begin(), survivors.end(), finding_less);
  survivors.erase(std::unique(survivors.begin(), survivors.end(),
                              [](const Finding& a, const Finding& b) {
                                return !finding_less(a, b) &&
                                       !finding_less(b, a);
                              }),
                  survivors.end());
  result.findings = std::move(survivors);
  return result;
}

std::vector<InputFile> load_repo_inputs(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  if (!fs::is_directory(base / "src")) {
    throw std::runtime_error("not a repo root (no src/ directory): " +
                             root);
  }

  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      throw std::runtime_error("unreadable input: " + p.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  std::vector<InputFile> inputs;
  for (const char* dir : {"src", "bench"}) {
    const fs::path top = base / dir;
    if (!fs::is_directory(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), base).generic_string();
      if (!is_cpp_source(rel)) continue;
      inputs.push_back({rel, slurp(entry.path())});
    }
  }
  // Non-C++ inputs consumed by cross-file rules (schema-sync).
  const fs::path obs_script = base / "scripts" / "check_observability.sh";
  if (fs::is_regular_file(obs_script)) {
    inputs.push_back({"scripts/check_observability.sh", slurp(obs_script)});
  }
  // run_lint sorts; directory iteration order never leaks into output.
  return inputs;
}

}  // namespace smt::lint
