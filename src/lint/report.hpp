// Rendering of lint results: human text and SARIF 2.1.0.
//
// Both writers are byte-deterministic functions of (result, registry):
// no timestamps, hostnames or absolute paths ever appear in the output,
// so scripts/check_smtlint.sh can assert two runs compare equal and CI
// can cache SARIF artifacts by content.
#pragma once

#include <iosfwd>

#include "lint/rule.hpp"
#include "lint/runner.hpp"

namespace smt::lint {

/// Version stamped into SARIF tool metadata; bump when rule semantics
/// change enough that existing baselines may need regeneration.
inline constexpr const char* kSmtlintVersion = "1.0.0";

/// One "path:line:col: error: message [rule-id]" line per finding,
/// followed by a summary line ("smtlint: OK ..." or "smtlint: N
/// finding(s) ...").
void write_text(std::ostream& os, const LintResult& result);

/// SARIF 2.1.0 document: one run, the full rule catalog under
/// tool.driver.rules, one result per finding (level "error",
/// ruleIndex into the catalog).
void write_sarif(std::ostream& os, const LintResult& result,
                 const RuleRegistry& registry);

}  // namespace smt::lint
