// The built-in rule catalog (DESIGN.md §16).
//
// Every rule here is the lexer-grounded replacement (or strengthening)
// of an invariant the repo previously enforced by grep — or could not
// enforce at all. Scope conventions, shared by all rules:
//
//   library   = src/** minus src/tools/   (the determinism fence)
//   tools     = src/tools/**              (CLI drivers; may print)
//   bench     = bench/**                  (may read steady_clock only)
//
// Rule ids are stable API: suppression keys, baseline keys and SARIF
// ruleIds. Add new rules by subclassing Rule, registering the instance
// in builtin_rules(), documenting the id in DESIGN.md §16 and adding a
// firing negative fixture to tests/test_lint.cpp.
#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/rule.hpp"

namespace smt::lint {

bool finding_less(const Finding& a, const Finding& b) noexcept {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.col != b.col) return a.col < b.col;
  if (a.rule_id != b.rule_id) return a.rule_id < b.rule_id;
  return a.message < b.message;
}

const SourceFile* Corpus::source(const std::string& path) const {
  for (const SourceFile& f : sources) {
    if (f.path() == path) return &f;
  }
  return nullptr;
}

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
  std::sort(rules_.begin(), rules_.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
}

bool RuleRegistry::has(const std::string& id) const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [&](const auto& r) { return r->id() == id; });
}

bool is_tools_path(const std::string& path) {
  return path.rfind("src/tools/", 0) == 0;
}

bool is_library_path(const std::string& path) {
  return path.rfind("src/", 0) == 0 && !is_tools_path(path);
}

bool is_bench_path(const std::string& path) {
  return path.rfind("bench/", 0) == 0;
}

bool is_header_path(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

std::string include_target_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  return path.substr(4);
}

namespace {

/// True when the next non-space character at or after `pos` is `want`.
[[nodiscard]] bool next_nonspace_is(const std::string& s, std::size_t pos,
                                    char want) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  return pos < s.size() && s[pos] == want;
}

/// True when `word` at `pos` is qualified as std:: immediately before.
[[nodiscard]] bool std_qualified(const std::string& s, std::size_t pos) {
  return pos >= 5 && s.compare(pos - 5, 5, "std::", 5) == 0;
}

/// Emit one finding per word-bounded occurrence of `word` in the file's
/// blanked code.
void flag_word(const SourceFile& f, const std::string& word,
               const char* rule_id, const std::string& message,
               std::vector<Finding>& out, bool require_std = false,
               bool require_call = false) {
  for (int line = 1; line <= f.line_count(); ++line) {
    const std::string& code = f.code(line);
    for (std::size_t pos = find_word(code, word); pos != std::string::npos;
         pos = find_word(code, word, pos + 1)) {
      if (require_std && !std_qualified(code, pos)) continue;
      if (require_call && !next_nonspace_is(code, pos + word.size(), '(')) {
        continue;
      }
      out.push_back({rule_id, f.path(), line, static_cast<int>(pos) + 1,
                     message});
    }
  }
}

// --- ambient-clock ---------------------------------------------------------

class AmbientClockRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "ambient-clock"; }
  std::string_view description() const noexcept override {
    return "ambient nondeterminism (rand, random_device, wall/steady "
           "clocks, time()) outside the src/prof/host_clock allowlist; "
           "all randomness flows through common/rng.hpp, seeded from the "
           "run configuration";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const std::string& p = f.path();
    const bool bench = is_bench_path(p);
    if (!bench && !is_library_path(p)) return;
    // The profiler's fenced clock (DESIGN.md §15) is the single
    // library-side exemption; keeping the allowlist to one module is the
    // point of the rule.
    if (p == "src/prof/host_clock.cpp" || p == "src/prof/host_clock.hpp") {
      return;
    }
    const std::string why = " (deterministic replay: use common/rng.hpp, "
                            "cfg-seeded, or prof::host_ticks)";
    for (const char* w : {"srand", "random_device", "system_clock",
                          "high_resolution_clock"}) {
      flag_word(f, w, "ambient-clock", std::string(w) + why, out);
    }
    if (!bench) {
      // Benches may time themselves with steady_clock — wall-clock
      // throughput is what a benchmark measures — but timing may never
      // feed back into simulated results.
      flag_word(f, "steady_clock", "ambient-clock",
                "steady_clock" + why, out);
    }
    flag_word(f, "rand", "ambient-clock", "rand()" + why, out,
              /*require_std=*/false, /*require_call=*/true);
    flag_word(f, "time", "ambient-clock", "std::time()" + why, out,
              /*require_std=*/true, /*require_call=*/true);
  }
};

// --- unordered-container ---------------------------------------------------

class UnorderedContainerRule : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "unordered-container";
  }
  std::string_view description() const noexcept override {
    return "unordered container in library code: iteration order is "
           "implementation-defined and silently varies results across "
           "standard libraries; use std::map/std::set/std::vector/"
           "FixedQueue";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!is_library_path(f.path())) return;
    for (const char* w : {"unordered_map", "unordered_set",
                          "unordered_multimap", "unordered_multiset"}) {
      for (const Include& inc : f.includes()) {
        if (inc.target == w) {
          out.push_back({"unordered-container", f.path(), inc.line, 1,
                         std::string("#include <") + w +
                             "> (iteration order is not deterministic)"});
        }
      }
      flag_word(f, w, "unordered-container",
                std::string(w) + " (iteration order is not deterministic)",
                out);
    }
  }
};

// --- library-iostream ------------------------------------------------------

class LibraryIostreamRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "library-iostream"; }
  std::string_view description() const noexcept override {
    return "stream I/O in library code: only the CLI drivers in "
           "src/tools/ and bench/ may print; library code writes through "
           "explicit std::ostream& writers";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!is_library_path(f.path())) return;
    for (const Include& inc : f.includes()) {
      if (inc.angled && inc.target == "iostream") {
        out.push_back({"library-iostream", f.path(), inc.line, 1,
                       "#include <iostream> in library code (only "
                       "src/tools/ may print)"});
      }
    }
    for (const char* w : {"cout", "cerr", "cin", "clog"}) {
      flag_word(f, w, "library-iostream",
                std::string("std::") + w +
                    " in library code (only src/tools/ may print)",
                out, /*require_std=*/true);
    }
  }
};

// --- pragma-once -----------------------------------------------------------

class PragmaOnceRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "pragma-once"; }
  std::string_view description() const noexcept override {
    return "every header carries #pragma once";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!is_header_path(f.path())) return;
    if (!f.has_pragma_once()) {
      out.push_back({"pragma-once", f.path(), 1, 1,
                     "header without #pragma once"});
    }
  }
};

// --- thread-primitive ------------------------------------------------------

class ThreadPrimitiveRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "thread-primitive"; }
  std::string_view description() const noexcept override {
    return "thread primitive outside src/par/: the deterministic thread "
           "pool is the single place library code may touch concurrency, "
           "so the determinism argument stays one file long";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const std::string& p = f.path();
    if (!is_library_path(p) || p.rfind("src/par/", 0) == 0) return;
    static const char* const kHeaders[] = {
        "thread", "mutex", "condition_variable", "atomic",
        "future", "shared_mutex", "stop_token", "barrier",
        "latch",  "semaphore"};
    for (const Include& inc : f.includes()) {
      for (const char* h : kHeaders) {
        if (inc.angled && inc.target == h) {
          out.push_back({"thread-primitive", p, inc.line, 1,
                         std::string("#include <") + h +
                             "> outside src/par/ (use par::ThreadPool)"});
        }
      }
    }
    static const char* const kTokens[] = {
        "thread",        "jthread",        "mutex",
        "timed_mutex",   "recursive_mutex", "shared_mutex",
        "condition_variable", "condition_variable_any",
        "atomic",        "atomic_flag",    "future",
        "promise",       "barrier",        "latch",
        "counting_semaphore", "binary_semaphore"};
    for (const char* w : kTokens) {
      flag_word(f, w, "thread-primitive",
                std::string("std::") + w +
                    " outside src/par/ (use par::ThreadPool)",
                out, /*require_std=*/true);
    }
  }
};

// --- using-namespace-header ------------------------------------------------

class UsingNamespaceHeaderRule : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "using-namespace-header";
  }
  std::string_view description() const noexcept override {
    return "`using namespace` in a header leaks the namespace into every "
           "includer";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!is_header_path(f.path())) return;
    for (const UsingNamespace& u : f.using_namespaces()) {
      out.push_back({"using-namespace-header", f.path(), u.line, u.col,
                     "`using namespace` in a header leaks into every "
                     "includer"});
    }
  }
};

// --- self-include-first ----------------------------------------------------

class SelfIncludeFirstRule : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "self-include-first";
  }
  std::string_view description() const noexcept override {
    return "a .cpp with a paired header includes it first, before any "
           "other header, proving the header is self-contained";
  }

  void finish(const Corpus& corpus, std::vector<Finding>& out) const override {
    for (const SourceFile& f : corpus.sources) {
      const std::string& p = f.path();
      if (p.rfind("src/", 0) != 0 || is_header_path(p)) continue;
      const std::string header_path = p.substr(0, p.size() - 4) + ".hpp";
      if (corpus.source(header_path) == nullptr) continue;
      const std::string target = include_target_of(header_path);
      if (f.includes().empty()) {
        out.push_back({"self-include-first", p, 1, 1,
                       "missing #include \"" + target + "\" (own header)"});
        continue;
      }
      const Include& first = f.includes().front();
      if (first.angled || first.target != target) {
        out.push_back({"self-include-first", p, first.line, 1,
                       "first include must be the file's own header \"" +
                           target + "\" (found \"" + first.target + "\")"});
      }
    }
  }
};

// --- direct-include --------------------------------------------------------

class DirectIncludeRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "direct-include"; }
  std::string_view description() const noexcept override {
    return "a project type used by qualified name must be directly "
           "included, not reached transitively: removing an unrelated "
           "include must never break an unrelated file";
  }

  void finish(const Corpus& corpus, std::vector<Finding>& out) const override {
    // Symbol index: namespace-scope type definitions in src/ headers,
    // keyed "ns_tail::TypeName". Ambiguous keys (two headers defining
    // the same qualified name) are dropped.
    std::map<std::string, std::string> index;  // key -> include target
    std::set<std::string> ambiguous;
    for (const SourceFile& f : corpus.sources) {
      if (!is_header_path(f.path()) || f.path().rfind("src/", 0) != 0) {
        continue;
      }
      const std::string target = include_target_of(f.path());
      for (const TypeDecl& d : f.type_decls()) {
        if (d.ns_tail.empty()) continue;
        const std::string key = d.ns_tail + "::" + d.name;
        const auto it = index.find(key);
        if (it != index.end() && it->second != target) {
          ambiguous.insert(key);
        } else {
          index.emplace(key, target);
        }
      }
    }
    for (const std::string& key : ambiguous) index.erase(key);

    for (const SourceFile& f : corpus.sources) {
      if (f.path().rfind("src/", 0) != 0 && !is_bench_path(f.path())) {
        continue;
      }
      const std::string own = include_target_of(f.path());
      std::set<std::string> reported;
      for (int line = 1; line <= f.line_count(); ++line) {
        const std::string& code = f.code(line);
        for (std::size_t pos = code.find("::"); pos != std::string::npos;
             pos = code.find("::", pos + 1)) {
          // Extract the adjacent `left::Right` identifier pair.
          std::size_t lb = pos;
          while (lb > 0 && is_ident_char(code[lb - 1])) --lb;
          std::size_t re = pos + 2;
          while (re < code.size() && is_ident_char(code[re])) ++re;
          if (lb == pos || re == pos + 2) continue;
          const std::string key =
              code.substr(lb, pos - lb) + "::" + code.substr(pos + 2,
                                                             re - pos - 2);
          const auto it = index.find(key);
          if (it == index.end()) continue;
          const std::string& target = it->second;
          if (target == own || f.includes_project(target)) continue;
          if (!reported.insert(target).second) continue;
          out.push_back({"direct-include", f.path(), line,
                         static_cast<int>(lb) + 1,
                         key + " is used here but \"" + target +
                             "\" is not included directly (transitive "
                             "includes are not a contract)"});
        }
      }
    }
  }
};

// --- exit-code-literal -----------------------------------------------------

class ExitCodeLiteralRule : public Rule {
 public:
  std::string_view id() const noexcept override {
    return "exit-code-literal";
  }
  std::string_view description() const noexcept override {
    return "CLI drivers return the named constants of "
           "common/exit_codes.hpp (smt::kExit*), never integer literals: "
           "the scripts and the fleet supervisor match on these numbers";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!is_tools_path(f.path())) return;
    const std::string msg =
        "exit-code literal in a CLI driver: use the named constants of "
        "common/exit_codes.hpp (smt::kExit*)";
    for (int line = 1; line <= f.line_count(); ++line) {
      const std::string& code = f.code(line);
      // return <int-literal> ;
      for (std::size_t pos = find_word(code, "return");
           pos != std::string::npos;
           pos = find_word(code, "return", pos + 1)) {
        std::size_t i = pos + 6;
        while (i < code.size() && code[i] == ' ') ++i;
        std::size_t digits = i;
        if (digits < code.size() && (code[digits] == '-')) ++digits;
        std::size_t end = digits;
        while (end < code.size() &&
               std::isdigit(static_cast<unsigned char>(code[end])) != 0) {
          ++end;
        }
        if (end == digits || end == i) continue;
        std::size_t after = end;
        while (after < code.size() && code[after] == ' ') ++after;
        if (after < code.size() && code[after] == ';') {
          out.push_back({"exit-code-literal", f.path(), line,
                         static_cast<int>(pos) + 1, msg});
        }
      }
      // exit(N) / _exit(N) / quick_exit(N)
      for (const char* w : {"exit", "_exit", "quick_exit"}) {
        for (std::size_t pos = find_word(code, w); pos != std::string::npos;
             pos = find_word(code, w, pos + 1)) {
          std::size_t i = pos + std::string(w).size();
          if (i >= code.size() || code[i] != '(') continue;
          ++i;
          std::size_t end = i;
          while (end < code.size() &&
                 std::isdigit(static_cast<unsigned char>(code[end])) != 0) {
            ++end;
          }
          if (end > i && end < code.size() && code[end] == ')') {
            out.push_back({"exit-code-literal", f.path(), line,
                           static_cast<int>(pos) + 1, msg});
          }
        }
      }
    }
  }
};

// --- hot-path-alloc --------------------------------------------------------

class HotPathAllocRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "hot-path-alloc"; }
  std::string_view description() const noexcept override {
    return "no std::function or nested std::vector<std::vector<...>> "
           "anywhere in src/pipeline/ or src/sim/, and no explicit heap "
           "allocation (new, make_unique, make_shared, malloc) or "
           "element-shifting container call (erase, mid-vector insert) "
           "inside their per-cycle step paths (functions named step*, "
           "*_step, do_*, tick, cycle)";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    const std::string& p = f.path();
    if (p.rfind("src/pipeline/", 0) != 0 && p.rfind("src/sim/", 0) != 0) {
      return;
    }
    flag_word(f, "function", "hot-path-alloc",
              "std::function in the simulation core: type-erased calls "
              "allocate and defeat inlining on the per-cycle path",
              out, /*require_std=*/true);
    static const char* const kAlloc[] = {"new",    "make_unique",
                                         "make_shared", "malloc",
                                         "calloc", "realloc"};
    // O(n) element-shifting calls: every erase()/insert() on a contiguous
    // container shifts the tail, and each one the AoS core carried turned
    // into a measurable per-cycle cost. The SoA core replaces them with
    // bitmask compaction, and this keeps them from creeping back in.
    static const char* const kShift[] = {"erase", "insert"};
    for (int line = 1; line <= f.line_count(); ++line) {
      const std::string& code = f.code(line);
      // Nested vectors are a per-element pointer chase plus one heap
      // allocation per inner vector; the hot structures are flat arrays
      // indexed ring- or lane-wise, so the nested spelling is banned
      // file-wide (members declared anywhere are used by the step paths).
      for (std::size_t pos = code.find("vector<"); pos != std::string::npos;
           pos = code.find("vector<", pos + 1)) {
        std::size_t i = pos + 7;
        while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
        if (code.compare(i, 5, "std::", 5) == 0) i += 5;
        if (code.compare(i, 7, "vector<", 7) == 0) {
          out.push_back({"hot-path-alloc", p, line,
                         static_cast<int>(pos) + 1,
                         "nested std::vector<std::vector<...>> in the "
                         "simulation core: one heap block per inner vector "
                         "and a pointer chase per element; use a flat "
                         "array with ring/lane indexing"});
        }
      }
      const bool hot = [&] {
        for (const std::string& fn : f.enclosing_functions(line)) {
          if (is_step_path(fn)) return true;
        }
        return false;
      }();
      if (!hot) continue;
      for (const char* w : kAlloc) {
        for (std::size_t pos = find_word(code, w); pos != std::string::npos;
             pos = find_word(code, w, pos + 1)) {
          out.push_back({"hot-path-alloc", p, line,
                         static_cast<int>(pos) + 1,
                         std::string(w) +
                             " inside a per-cycle step path: allocation "
                             "is forbidden on the simulation hot path "
                             "(preallocate in the constructor)"});
        }
      }
      for (const char* w : kShift) {
        for (std::size_t pos = find_word(code, w); pos != std::string::npos;
             pos = find_word(code, w, pos + 1)) {
          if (!is_member_call(code, pos, std::string(w).size())) continue;
          out.push_back({"hot-path-alloc", p, line,
                         static_cast<int>(pos) + 1,
                         std::string(".") + w +
                             "() inside a per-cycle step path shifts the "
                             "container tail every call: compact with a "
                             "swap-and-pop or a bitmask pass instead"});
        }
      }
    }
  }

 private:
  /// `pos` names a member call: preceded by `.` or `->` and followed by
  /// `(`. Filters bare words (an `insert` local, set::insert free use in
  /// comments is already blanked).
  [[nodiscard]] static bool is_member_call(const std::string& code,
                                           std::size_t pos,
                                           std::size_t len) {
    const bool dot = pos >= 1 && code[pos - 1] == '.';
    const bool arrow =
        pos >= 2 && code[pos - 2] == '-' && code[pos - 1] == '>';
    if (!dot && !arrow) return false;
    return next_nonspace_is(code, pos + len, '(');
  }

  [[nodiscard]] static bool is_step_path(const std::string& fn) {
    if (fn == "step" || fn == "tick" || fn == "cycle") return true;
    if (fn.rfind("step_", 0) == 0 || fn.rfind("do_", 0) == 0) return true;
    const std::string suffix = "_step";
    return fn.size() > suffix.size() &&
           fn.compare(fn.size() - suffix.size(), suffix.size(), suffix) == 0;
  }
};

// --- schema-sync -----------------------------------------------------------

class SchemaSyncRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "schema-sync"; }
  std::string_view description() const noexcept override {
    return "the observability gate's asserted schema "
           "(scripts/check_observability.sh: KINDS/CAUSES/KEYS/"
           "BUILD_KEYS sets and stats[...] key paths) stays in sync with "
           "the names the source actually emits";
  }

  void finish(const Corpus& corpus, std::vector<Finding>& out) const override {
    const auto script_it = corpus.extras.find(kScript);
    if (script_it == corpus.extras.end()) return;
    const std::string& script = script_it->second;

    check_name_switch(corpus, script, "KINDS", "src/obs/trace_event.hpp",
                      "name(EventKind", "trace kind", out);
    check_name_switch(corpus, script, "CAUSES", "src/obs/stall.hpp",
                      "name(StallCause", "stall cause", out);
    check_jsonl_keys(corpus, script, out);
    check_metric_paths(corpus, script, out);
  }

 private:
  static constexpr const char* kScript = "scripts/check_observability.sh";

  /// 1-based line of the first occurrence of `needle` in `text`, or 1.
  [[nodiscard]] static int line_of(const std::string& text,
                                   const std::string& needle) {
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos) return 1;
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                                  static_cast<std::ptrdiff_t>(pos), '\n'));
  }

  /// Parse the quoted strings of a python set literal `NAME = {...}`.
  [[nodiscard]] static std::set<std::string> parse_set(
      const std::string& text, const std::string& name) {
    std::set<std::string> values;
    // Word-bounded on the left so "KEYS" never matches "BUILD_KEYS".
    std::size_t at = text.find(name + " = {");
    while (at != std::string::npos && at > 0 &&
           is_ident_char(text[at - 1])) {
      at = text.find(name + " = {", at + 1);
    }
    if (at == std::string::npos) return values;
    const std::size_t open = text.find('{', at);
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) return values;
    std::size_t pos = open;
    while (true) {
      const std::size_t q1 = text.find('"', pos);
      if (q1 == std::string::npos || q1 > close) break;
      const std::size_t q2 = text.find('"', q1 + 1);
      if (q2 == std::string::npos || q2 > close) break;
      values.insert(text.substr(q1 + 1, q2 - q1 - 1));
      pos = q2 + 1;
    }
    return values;
  }

  /// The string literals returned by a `name(Enum)` switch in `path`:
  /// everything after the line containing `marker` up to (excluding)
  /// the "unknown" fallback.
  [[nodiscard]] static std::set<std::string> name_switch_values(
      const SourceFile& f, const std::string& marker, int* start_line) {
    *start_line = 1;
    for (int line = 1; line <= f.line_count(); ++line) {
      if (f.raw(line).find(marker) != std::string::npos) {
        *start_line = line;
        break;
      }
    }
    std::set<std::string> values;
    for (const StringLiteral& s : f.strings()) {
      if (s.line <= *start_line) continue;
      if (s.value == "unknown") break;  // the switch's fallback return
      values.insert(s.value);
    }
    return values;
  }

  static void check_name_switch(const Corpus& corpus,
                                const std::string& script,
                                const std::string& set_name,
                                const std::string& src_path,
                                const std::string& marker,
                                const std::string& what,
                                std::vector<Finding>& out) {
    const SourceFile* src = corpus.source(src_path);
    if (src == nullptr) return;
    const std::set<std::string> asserted = parse_set(script, set_name);
    if (asserted.empty()) return;
    int start_line = 1;
    const std::set<std::string> emitted =
        name_switch_values(*src, marker, &start_line);
    for (const std::string& v : asserted) {
      if (emitted.count(v) == 0) {
        out.push_back({"schema-sync", kScript,
                       line_of(script, "\"" + v + "\""), 1,
                       set_name + " asserts " + what + " \"" + v +
                           "\" but " + src_path + " never emits it"});
      }
    }
    for (const std::string& v : emitted) {
      if (asserted.count(v) == 0) {
        out.push_back({"schema-sync", src_path, start_line, 1,
                       what + " \"" + v + "\" is emitted here but missing "
                       "from " + set_name + " in " + std::string(kScript)});
      }
    }
  }

  /// JSON keys (`\"key\":` spellings) in string literals inside the
  /// given functions of src/obs/trace_sink.cpp (lambdas nested in them
  /// count as inside).
  [[nodiscard]] static std::set<std::string> sink_keys(
      const SourceFile& f, const std::set<std::string>& functions) {
    std::set<std::string> keys;
    for (const StringLiteral& s : f.strings()) {
      bool inside = false;
      for (const std::string& fn : f.enclosing_functions(s.line)) {
        if (functions.count(fn) > 0) inside = true;
      }
      if (!inside) continue;
      const std::string& v = s.value;
      for (std::size_t pos = v.find("\\\""); pos != std::string::npos;
           pos = v.find("\\\"", pos + 1)) {
        std::size_t i = pos + 2;
        std::size_t end = i;
        while (end < v.size() && is_ident_char(v[end])) ++end;
        if (end == i) continue;
        if (v.compare(end, 3, "\\\":") == 0) {
          keys.insert(v.substr(i, end - i));
        }
      }
    }
    return keys;
  }

  static void check_jsonl_keys(const Corpus& corpus,
                               const std::string& script,
                               std::vector<Finding>& out) {
    const SourceFile* sink = corpus.source("src/obs/trace_sink.cpp");
    if (sink == nullptr) return;
    const std::set<std::string> keys = parse_set(script, "KEYS");
    const std::set<std::string> build_keys = parse_set(script, "BUILD_KEYS");
    if (keys.empty() && build_keys.empty()) return;
    const std::set<std::string> event_keys =
        sink_keys(*sink, {"write_jsonl"});
    const std::set<std::string> info_keys =
        sink_keys(*sink, {"put_build_info"});
    for (const std::string& k : keys) {
      if (event_keys.count(k) == 0) {
        out.push_back({"schema-sync", kScript,
                       line_of(script, "\"" + k + "\""), 1,
                       "KEYS asserts event field \"" + k +
                           "\" but TraceSink::write_jsonl never emits it"});
      }
    }
    for (const std::string& k : build_keys) {
      if (info_keys.count(k) == 0) {
        out.push_back({"schema-sync", kScript,
                       line_of(script, "\"" + k + "\""), 1,
                       "BUILD_KEYS asserts provenance field \"" + k +
                           "\" but put_build_info never emits it"});
      }
    }
  }

  static void check_metric_paths(const Corpus& corpus,
                                 const std::string& script,
                                 std::vector<Finding>& out) {
    // Asserted key paths: stats["a"]["b"] -> "a.b", stats["a"] -> "a".
    std::set<std::string> paths;
    for (std::size_t pos = script.find("stats[\"");
         pos != std::string::npos; pos = script.find("stats[\"", pos + 1)) {
      std::size_t i = pos + 7;
      std::size_t end = i;
      while (end < script.size() && is_ident_char(script[end])) ++end;
      std::string path = script.substr(i, end - i);
      if (script.compare(end, 3, "\"][", 3) == 0 &&
          end + 3 < script.size() && script[end + 3] == '"') {
        std::size_t j = end + 4;
        std::size_t jend = j;
        while (jend < script.size() && is_ident_char(script[jend])) ++jend;
        path += '.';
        path += script.substr(j, jend - j);
      }
      if (!path.empty()) paths.insert(path);
    }
    // Producer literals: every string literal in src/ library code.
    std::set<std::string> literals;
    for (const SourceFile& f : corpus.sources) {
      if (f.path().rfind("src/", 0) != 0) continue;
      for (const StringLiteral& s : f.strings()) literals.insert(s.value);
    }
    const auto producible = [&](const std::string& path) {
      if (literals.count(path) > 0) return true;
      for (const std::string& lit : literals) {
        // Dynamic tail: "machine.stalls.%s" or "threads." covers the
        // asserted family.
        if (lit.rfind(path + ".", 0) == 0) return true;
        // Prefix + suffix construction: reg.set("audit." + "records").
        if (!lit.empty() && lit.back() == '.' &&
            path.rfind(lit, 0) == 0 &&
            literals.count(path.substr(lit.size())) > 0) {
          return true;
        }
      }
      return false;
    };
    for (const std::string& path : paths) {
      if (!producible(path)) {
        out.push_back({"schema-sync", kScript,
                       line_of(script, "stats[\"" +
                                           path.substr(0, path.find('.')) +
                                           "\""),
                       1,
                       "check_observability.sh asserts stats key \"" + path +
                           "\" but no src/ literal can produce it"});
      }
    }
  }
};

// --- bad-nolint ------------------------------------------------------------

class BadNolintRule : public Rule {
 public:
  explicit BadNolintRule(std::set<std::string> known)
      : known_(std::move(known)) {}

  std::string_view id() const noexcept override { return "bad-nolint"; }
  std::string_view description() const noexcept override {
    return "a NOLINT(...) comment names a rule id the registry does not "
           "know — a typo'd suppression silently suppresses nothing";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    for (const auto& [line, rule_id] : f.nolint_ids()) {
      if (known_.count(rule_id) == 0) {
        out.push_back({"bad-nolint", f.path(), line, 1,
                       "NOLINT names unknown rule \"" + rule_id +
                           "\" (see smtlint --list-rules)"});
      }
    }
  }

 private:
  std::set<std::string> known_;
};

// --- baseline-stale --------------------------------------------------------

/// Metadata-only registration: the runner emits baseline-stale findings
/// itself (it owns baseline matching), but the id must exist for SARIF
/// rule metadata and NOLINT/baseline validation.
class BaselineStaleRule : public Rule {
 public:
  std::string_view id() const noexcept override { return "baseline-stale"; }
  std::string_view description() const noexcept override {
    return "a baseline entry no longer matches any finding — delete it "
           "so grandfathered debt only ever shrinks";
  }
};

}  // namespace

RuleRegistry builtin_rules() {
  RuleRegistry reg;
  reg.add(std::make_unique<AmbientClockRule>());
  reg.add(std::make_unique<UnorderedContainerRule>());
  reg.add(std::make_unique<LibraryIostreamRule>());
  reg.add(std::make_unique<PragmaOnceRule>());
  reg.add(std::make_unique<ThreadPrimitiveRule>());
  reg.add(std::make_unique<UsingNamespaceHeaderRule>());
  reg.add(std::make_unique<SelfIncludeFirstRule>());
  reg.add(std::make_unique<DirectIncludeRule>());
  reg.add(std::make_unique<ExitCodeLiteralRule>());
  reg.add(std::make_unique<HotPathAllocRule>());
  reg.add(std::make_unique<SchemaSyncRule>());
  reg.add(std::make_unique<BaselineStaleRule>());
  std::set<std::string> known;
  for (const auto& r : reg.rules()) known.insert(std::string(r->id()));
  known.insert("bad-nolint");
  reg.add(std::make_unique<BadNolintRule>(std::move(known)));
  return reg;
}

}  // namespace smt::lint
