// smtlint driver: corpus loading, rule execution, NOLINT suppression
// and baseline application.
//
// The runner is deliberately a pure function from (inputs, options) to
// a LintResult — file discovery is separated into load_repo_inputs() so
// tests feed synthetic snippets through exactly the code path the CLI
// uses, and scripts/check_smtlint.sh can byte-compare two runs.
#pragma once

#include <string>
#include <vector>

#include "lint/rule.hpp"

namespace smt::lint {

/// One analyzer input: a repo-relative path (forward slashes) plus its
/// content. C++ sources (.cpp/.hpp under src/ or bench/) are lexed;
/// everything else lands in Corpus::extras for cross-file rules.
struct InputFile {
  std::string path;
  std::string content;
};

struct LintOptions {
  /// Run only these rule ids (empty = all registered rules).
  std::vector<std::string> only_rules;
  /// Baseline file content ("" = empty baseline). Grandfathered
  /// findings listed here are reported in the summary but do not fail
  /// the run; entries matching nothing become baseline-stale findings.
  std::string baseline;
  /// Path the baseline was read from, for anchoring baseline-stale.
  std::string baseline_path = ".smtlint-baseline";
};

struct LintResult {
  /// Surviving findings, deterministically ordered.
  std::vector<Finding> findings;
  int files_scanned = 0;
  int rules_run = 0;
  int suppressed = 0;  ///< dropped by NOLINT / NOLINTNEXTLINE
  int baselined = 0;   ///< dropped by a baseline entry
};

/// Parse + run. Inputs may arrive in any order; the runner sorts by
/// path so output is independent of discovery order.
[[nodiscard]] LintResult run_lint(const RuleRegistry& registry,
                                  std::vector<InputFile> inputs,
                                  const LintOptions& options);

/// Read the analyzer's repo inputs from disk: src/** and bench/**
/// C++ sources plus the scripts consumed by cross-file rules. Throws
/// std::runtime_error when `root` does not look like the repo (no src/).
[[nodiscard]] std::vector<InputFile> load_repo_inputs(
    const std::string& root);

/// One baseline entry: "<rule-id> <path>:<line>".
struct BaselineEntry {
  int source_line = 0;  ///< line in the baseline file itself
  std::string rule_id;
  std::string path;
  int line = 0;
};

/// Parse baseline text ('#' comments and blank lines ignored).
/// Malformed lines throw std::runtime_error with the line number.
[[nodiscard]] std::vector<BaselineEntry> parse_baseline(
    const std::string& text);

}  // namespace smt::lint
