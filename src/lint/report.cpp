#include "lint/report.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace smt::lint {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void put_string(std::ostream& os, const std::string& s) {
  os << '"' << json_escape(s) << '"';
}

}  // namespace

void write_text(std::ostream& os, const LintResult& result) {
  for (const Finding& f : result.findings) {
    os << f.path << ':' << f.line << ':' << f.col << ": error: "
       << f.message << " [" << f.rule_id << "]\n";
  }
  const std::string tallies =
      std::to_string(result.files_scanned) + " files, " +
      std::to_string(result.rules_run) + " rules, " +
      std::to_string(result.suppressed) + " suppressed, " +
      std::to_string(result.baselined) + " baselined";
  if (result.findings.empty()) {
    os << "smtlint: OK (" << tallies << ")\n";
  } else {
    os << "smtlint: " << result.findings.size() << " finding"
       << (result.findings.size() == 1 ? "" : "s") << " (" << tallies
       << ")\n";
  }
}

void write_sarif(std::ostream& os, const LintResult& result,
                 const RuleRegistry& registry) {
  os << "{\n";
  os << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n    {\n";
  os << "      \"tool\": {\n        \"driver\": {\n";
  os << "          \"name\": \"smtlint\",\n";
  os << "          \"version\": \"" << kSmtlintVersion << "\",\n";
  os << "          \"informationUri\": \"DESIGN.md\",\n";
  os << "          \"rules\": [\n";
  // The registry is sorted by id, so ruleIndex is reproducible.
  const auto& rules = registry.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "            {\n              \"id\": ";
    put_string(os, std::string(rules[i]->id()));
    os << ",\n              \"shortDescription\": { \"text\": ";
    put_string(os, std::string(rules[i]->description()));
    os << " }\n            }" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "          ]\n        }\n      },\n";
  os << "      \"columnKind\": \"utf16CodeUnits\",\n";
  os << "      \"results\": [\n";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r]->id() == f.rule_id) rule_index = r;
    }
    os << "        {\n          \"ruleId\": ";
    put_string(os, f.rule_id);
    os << ",\n          \"ruleIndex\": " << rule_index;
    os << ",\n          \"level\": \"error\"";
    os << ",\n          \"message\": { \"text\": ";
    put_string(os, f.message);
    os << " },\n          \"locations\": [\n            {\n";
    os << "              \"physicalLocation\": {\n";
    os << "                \"artifactLocation\": { \"uri\": ";
    put_string(os, f.path);
    os << " },\n                \"region\": { \"startLine\": " << f.line
       << ", \"startColumn\": " << f.col << " }\n";
    os << "              }\n            }\n          ]\n        }"
       << (i + 1 < result.findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
}

}  // namespace smt::lint
