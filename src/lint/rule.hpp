// Rule engine contract for smtlint.
//
// A Rule encodes one project invariant as a machine check. Rules are
// registered with stable kebab-case ids — the id is the suppression key
// a NOLINT comment names, the baseline key, the SARIF ruleId and the
// `[rule-id]` tag in text output, so it must never change once shipped.
// DESIGN.md §16 is the catalog; every id there has a firing negative
// test in tests/test_lint.cpp.
//
// Two shapes of rule:
//   - per-file: check() is called once per lexed SourceFile;
//   - cross-file: finish() is called once after every file has been
//     lexed, with the whole Corpus (lexed sources plus raw text of
//     non-C++ inputs such as scripts/check_observability.sh) — the
//     direct-include symbol index and the schema-sync diff live here.
//
// Findings are plain data; the runner owns suppression, baselining,
// ordering and rendering, so rules stay one-concern.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source_file.hpp"

namespace smt::lint {

struct Finding {
  std::string rule_id;
  std::string path;
  int line = 1;
  int col = 1;
  std::string message;
};

/// Stable ordering for deterministic output: by location, then rule,
/// then message (two rules may fire on one line).
[[nodiscard]] bool finding_less(const Finding& a, const Finding& b) noexcept;

/// Everything the analyzer read, keyed by repo-relative path.
struct Corpus {
  /// Lexed C++ sources (src/**, bench/**) in path order.
  std::vector<SourceFile> sources;
  /// Raw text of non-C++ inputs the cross-file rules consume
  /// (scripts/check_observability.sh).
  std::map<std::string, std::string> extras;

  [[nodiscard]] const SourceFile* source(const std::string& path) const;
};

class Rule {
 public:
  virtual ~Rule() = default;

  [[nodiscard]] virtual std::string_view id() const noexcept = 0;
  /// One-line description for --list-rules and SARIF rule metadata.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Per-file check; default no-op for cross-file rules.
  virtual void check(const SourceFile& file,
                     std::vector<Finding>& out) const {
    (void)file;
    (void)out;
  }

  /// Cross-file check, run once after all files are lexed.
  virtual void finish(const Corpus& corpus,
                      std::vector<Finding>& out) const {
    (void)corpus;
    (void)out;
  }
};

class RuleRegistry {
 public:
  void add(std::unique_ptr<Rule> rule);

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules()
      const noexcept {
    return rules_;
  }
  [[nodiscard]] bool has(const std::string& id) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;  ///< sorted by id
};

/// The built-in rule set (DESIGN.md §16 catalog), sorted by id.
[[nodiscard]] RuleRegistry builtin_rules();

// --- shared path-scope helpers (repo-relative, forward slashes) -----------

/// Library code: src/** minus the CLI drivers in src/tools/.
[[nodiscard]] bool is_library_path(const std::string& path);
[[nodiscard]] bool is_tools_path(const std::string& path);
[[nodiscard]] bool is_bench_path(const std::string& path);
[[nodiscard]] bool is_header_path(const std::string& path);
/// src-relative include target for a path under src/ ("src/obs/x.hpp"
/// -> "obs/x.hpp"); empty when the path is not under src/.
[[nodiscard]] std::string include_target_of(const std::string& path);

}  // namespace smt::lint
