#include "lint/source_file.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace smt::lint {

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from) {
  for (std::size_t pos = s.find(word, from); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

namespace {

[[nodiscard]] bool is_ident(char c) noexcept { return is_ident_char(c); }

[[nodiscard]] bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// First non-whitespace character of `s`, or '\0'.
[[nodiscard]] char first_nonspace(const std::string& s) noexcept {
  for (char c : s) {
    if (!is_space(c)) return c;
  }
  return '\0';
}

/// Identifier (with :: separators) ending just before `pos`, e.g. for
/// "void Pipeline::step(" and pos at '(' returns "Pipeline::step".
[[nodiscard]] std::string qualified_ident_before(const std::string& s,
                                                 std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && is_space(s[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && (is_ident(s[begin - 1]) || s[begin - 1] == ':')) {
    --begin;
  }
  while (begin < end && s[begin] == ':') ++begin;  // stray label/ternary ':'
  return s.substr(begin, end - begin);
}

[[nodiscard]] std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

[[nodiscard]] bool is_control_keyword(const std::string& id) {
  static const std::set<std::string> kControl = {
      "if",     "for",    "while",  "switch",    "catch",
      "return", "sizeof", "alignof", "co_await", "co_return"};
  return kControl.count(id) > 0;
}

/// Parenthesis openers that never start a function definition and whose
/// argument list should be skipped when hunting for the defined name.
[[nodiscard]] bool is_specifier_keyword(const std::string& id) {
  static const std::set<std::string> kSpecifier = {
      "alignas", "decltype", "noexcept", "__attribute__", "throw"};
  return kSpecifier.count(id) > 0;
}

enum class ScopeKind { kNamespace, kType, kFunction, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;  ///< namespace/type/function identifier
};

}  // namespace

SourceFile::SourceFile(std::string path, const std::string& content)
    : path_(std::move(path)) {
  blank_pass(content);
  scope_pass();
}

const std::string& SourceFile::code(int line) const {
  return code_.at(static_cast<std::size_t>(line - 1));
}

const std::string& SourceFile::raw(int line) const {
  return raw_.at(static_cast<std::size_t>(line - 1));
}

bool SourceFile::is_preprocessor(int line) const {
  return preprocessor_.at(static_cast<std::size_t>(line - 1));
}

bool SourceFile::includes_project(const std::string& target) const {
  return std::any_of(includes_.begin(), includes_.end(),
                     [&](const Include& inc) {
                       return !inc.angled && inc.target == target;
                     });
}

bool SourceFile::includes_system(const std::string& target) const {
  return std::any_of(includes_.begin(), includes_.end(),
                     [&](const Include& inc) {
                       return inc.angled && inc.target == target;
                     });
}

const std::string& SourceFile::enclosing_function(int line) const {
  return func_of_line_.at(static_cast<std::size_t>(line - 1));
}

std::vector<std::string> SourceFile::enclosing_functions(int line) const {
  return func_stack_of_line_.at(static_cast<std::size_t>(line - 1));
}

bool SourceFile::is_suppressed(int line, const std::string& rule_id) const {
  const auto same = suppressions_.find(line);
  if (same != suppressions_.end()) {
    if (same->second.all || same->second.ids.count(rule_id) > 0) return true;
  }
  const auto above = suppressions_.find(line - 1);
  if (above != suppressions_.end()) {
    if (above->second.next_all || above->second.next.count(rule_id) > 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pass 1: character-level blanking of comments, literals and preprocessor
// text into the column-preserving `code_` image.

void SourceFile::blank_pass(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);

  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kNormal;
  bool in_preprocessor = false;   ///< continued by a trailing backslash
  std::string raw_delim;          ///< raw-string )delim" terminator
  std::string literal;            ///< string literal being accumulated
  int literal_line = 0;
  std::string comment;            ///< comment text on the current line

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const int lineno = static_cast<int>(li) + 1;
    std::string code(line.size(), ' ');
    comment.clear();

    // A fresh directive starts only from the normal state; a backslash
    // continuation extends the previous one.
    bool pp = in_preprocessor;
    if (state == State::kNormal && !pp && first_nonspace(line) == '#') {
      pp = true;
    }
    if (pp) {
      raw_.push_back(line);
      code_.push_back(std::move(code));  // all blank: macros are opaque
      preprocessor_.push_back(true);
      in_preprocessor = !line.empty() && line.back() == '\\';
      // Directive text still carries NOLINT comments and the directives
      // themselves; parse them from the raw line.
      const std::size_t slash = line.find("//");
      if (slash != std::string::npos) scan_comment(lineno, line.substr(slash));
      std::size_t pos = line.find('#');
      pos = line.find_first_not_of(" \t", pos + 1);
      if (pos == std::string::npos) continue;
      if (line.compare(pos, 6, "pragma") == 0) {
        const std::size_t once = line.find("once", pos + 6);
        if (once != std::string::npos) pragma_once_ = true;
      } else if (line.compare(pos, 7, "include") == 0) {
        const std::size_t open = line.find_first_of("<\"", pos + 7);
        if (open != std::string::npos) {
          const char close = line[open] == '<' ? '>' : '"';
          const std::size_t end = line.find(close, open + 1);
          if (end != std::string::npos) {
            includes_.push_back({lineno,
                                 line.substr(open + 1, end - open - 1),
                                 line[open] == '<'});
          }
        }
      }
      continue;
    }

    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      switch (state) {
        case State::kNormal: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            comment += line.substr(i);
            state = State::kLineComment;
            i = line.size();  // comment may continue via backslash below
            break;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            ++i;
            break;
          }
          if (c == '"') {
            // R"delim( ... )delim" — an R (optionally prefixed u8/u/U/L)
            // immediately before the quote, not part of a longer
            // identifier.
            const bool raw_str =
                i > 0 && line[i - 1] == 'R' &&
                (i < 2 || !is_ident(line[i - 2]) || line[i - 2] == '8' ||
                 line[i - 2] == 'u' || line[i - 2] == 'U' ||
                 line[i - 2] == 'L');
            literal.clear();
            literal_line = lineno;
            if (raw_str) {
              const std::size_t open = line.find('(', i + 1);
              const std::size_t delim_len =
                  open == std::string::npos ? 0 : open - i - 1;
              raw_delim.assign(1, ')');
              if (open != std::string::npos) {
                raw_delim.append(line, i + 1, delim_len);
              }
              raw_delim.push_back('"');
              state = State::kRawString;
              i = open == std::string::npos ? line.size() : open;
            } else {
              state = State::kString;
            }
            break;
          }
          if (c == '\'') {
            // A quote after an identifier character is a digit separator
            // (1'000'000) or literal suffix, not a char literal.
            if (i > 0 && is_ident(line[i - 1])) {
              code[i] = c;
              break;
            }
            state = State::kChar;
            break;
          }
          code[i] = c;
          break;
        }
        case State::kString: {
          if (c == '\\') {
            literal += c;
            if (i + 1 < line.size()) literal += line[++i];
            break;
          }
          if (c == '"') {
            strings_.push_back({literal_line, literal});
            state = State::kNormal;
            break;
          }
          literal += c;
          break;
        }
        case State::kRawString: {
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            strings_.push_back({literal_line, literal});
            i += raw_delim.size() - 1;
            state = State::kNormal;
            break;
          }
          literal += c;
          break;
        }
        case State::kChar: {
          if (c == '\\') {
            if (i + 1 < line.size()) ++i;
            break;
          }
          if (c == '\'') state = State::kNormal;
          break;
        }
        case State::kBlockComment: {
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            state = State::kNormal;
            ++i;
          } else {
            comment += c;
          }
          break;
        }
        case State::kLineComment:
          break;  // handled by the early exit above
      }
    }

    // End of line: close or continue multi-line constructs.
    if (state == State::kLineComment) {
      if (line.empty() || line.back() != '\\') state = State::kNormal;
    } else if (state == State::kString) {
      // Unterminated — treat the newline as the end (a backslash
      // continuation inside a narrow literal is vanishingly rare).
      strings_.push_back({literal_line, literal});
      state = State::kNormal;
    } else if (state == State::kRawString || state == State::kBlockComment) {
      literal += '\n';
    } else if (state == State::kChar) {
      state = State::kNormal;
    }
    if (!comment.empty()) scan_comment(lineno, comment);

    raw_.push_back(line);
    code_.push_back(std::move(code));
    preprocessor_.push_back(false);
  }
}

void SourceFile::scan_comment(int line, const std::string& text) {
  for (std::size_t pos = text.find("NOLINT"); pos != std::string::npos;
       pos = text.find("NOLINT", pos + 1)) {
    if (pos > 0 && is_ident(text[pos - 1])) continue;
    std::size_t after = pos + 6;
    const bool nextline = text.compare(after, 8, "NEXTLINE") == 0;
    if (nextline) after += 8;
    LineSuppression& sup = suppressions_[line];
    if (after < text.size() && text[after] == '(') {
      const std::size_t close = text.find(')', after + 1);
      if (close == std::string::npos) continue;
      std::string id;
      for (std::size_t i = after + 1; i <= close; ++i) {
        if (i == close || text[i] == ',') {
          // Trim surrounding whitespace.
          const auto b = id.find_first_not_of(" \t");
          if (b != std::string::npos) {
            const auto e = id.find_last_not_of(" \t");
            const std::string trimmed = id.substr(b, e - b + 1);
            (nextline ? sup.next : sup.ids).insert(trimmed);
            nolint_ids_.emplace_back(line, trimmed);
          }
          id.clear();
        } else {
          id += text[i];
        }
      }
    } else if (nextline) {
      sup.next_all = true;
    } else {
      sup.all = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: brace-tracking scope walk over the blanked code.

void SourceFile::scope_pass() {
  std::vector<Scope> stack;
  std::string head;  ///< code since the last '{', '}' or ';'

  const auto innermost_namespace_tail = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == ScopeKind::kNamespace) return last_component(it->name);
    }
    return {};
  };
  const auto namespaces_only = [&]() {
    return std::all_of(stack.begin(), stack.end(), [](const Scope& s) {
      return s.kind == ScopeKind::kNamespace;
    });
  };

  const auto classify = [&](int lineno) -> Scope {
    // Collapse whitespace for keyword scanning.
    std::string h;
    for (char c : head) {
      if (is_space(c)) {
        if (!h.empty() && h.back() != ' ') h += ' ';
      } else {
        h += c;
      }
    }
    // Drop template parameter lists so `template <class T> class Foo`
    // classifies on Foo, not on the parameter keyword.
    for (std::size_t tpl = find_word(h, "template");
         tpl != std::string::npos; tpl = find_word(h, "template", tpl + 1)) {
      const std::size_t open = h.find('<', tpl);
      if (open == std::string::npos) break;
      int depth = 0;
      std::size_t close = open;
      for (; close < h.size(); ++close) {
        if (h[close] == '<') ++depth;
        if (h[close] == '>' && --depth == 0) break;
      }
      if (close >= h.size()) break;
      h.erase(open, close - open + 1);
    }
    if (find_word(h, "namespace") != std::string::npos &&
        h.find('(') == std::string::npos) {
      std::size_t pos = find_word(h, "namespace") + 9;
      while (pos < h.size() && is_space(h[pos])) ++pos;
      std::size_t end = pos;
      while (end < h.size() && (is_ident(h[end]) || h[end] == ':')) ++end;
      return {ScopeKind::kNamespace, h.substr(pos, end - pos)};
    }
    // A function definition: the first '(' preceded by a non-keyword
    // identifier (or a lambda's ']').
    for (std::size_t pos = h.find('('); pos != std::string::npos;
         pos = h.find('(', pos + 1)) {
      std::size_t before = pos;
      while (before > 0 && is_space(h[before - 1])) --before;
      if (before > 0 && h[before - 1] == ']') {
        return {ScopeKind::kFunction, "lambda"};
      }
      const std::string qual = qualified_ident_before(h, pos);
      const std::string name = last_component(qual);
      if (name.empty()) continue;
      if (is_control_keyword(name)) return {ScopeKind::kBlock, {}};
      if (is_specifier_keyword(name)) continue;
      return {ScopeKind::kFunction, name};
    }
    for (const char* kw : {"class", "struct", "union", "enum"}) {
      const std::size_t pos = find_word(h, kw);
      if (pos == std::string::npos) continue;
      std::size_t at = pos + std::string(kw).size();
      // Skip `enum class` / `enum struct` and attributes.
      for (const char* skip : {"class", "struct", "final"}) {
        while (at < h.size() && is_space(h[at])) ++at;
        const std::size_t len = std::string(skip).size();
        if (h.compare(at, len, skip) == 0 &&
            (at + len >= h.size() || !is_ident(h[at + len]))) {
          at += len;
        }
      }
      while (at < h.size() && is_space(h[at])) ++at;
      std::size_t end = at;
      while (end < h.size() && is_ident(h[end])) ++end;
      const std::string name = h.substr(at, end - at);
      if (name.empty()) break;
      Scope s{ScopeKind::kType, name};
      if (namespaces_only()) {
        type_decls_.push_back({lineno, innermost_namespace_tail(), name});
      }
      return s;
    }
    return {ScopeKind::kBlock, {}};
  };

  func_of_line_.resize(code_.size());
  func_stack_of_line_.resize(code_.size());

  for (std::size_t li = 0; li < code_.size(); ++li) {
    const std::string& line = code_[li];
    const int lineno = static_cast<int>(li) + 1;
    // Functions enclosing ANY code on this line: those open at line
    // start, plus any opened while scanning it — a one-line body
    // (`void step() { ... }`) still counts as inside step.
    std::vector<std::string> funcs;
    for (const Scope& s : stack) {
      if (s.kind == ScopeKind::kFunction) funcs.push_back(s.name);
    }
    if (!preprocessor_[li]) {
      for (std::size_t pos = find_word(line, "using");
           pos != std::string::npos; pos = find_word(line, "using", pos + 1)) {
        std::size_t after = line.find_first_not_of(" \t", pos + 5);
        if (after != std::string::npos &&
            line.compare(after, 9, "namespace") == 0) {
          using_namespaces_.push_back({lineno, static_cast<int>(pos) + 1});
        }
      }
      for (char c : line) {
        if (c == '{') {
          Scope s = classify(lineno);
          if (s.kind == ScopeKind::kFunction) funcs.push_back(s.name);
          stack.push_back(std::move(s));
          head.clear();
        } else if (c == '}') {
          if (!stack.empty()) stack.pop_back();
          head.clear();
        } else if (c == ';') {
          head.clear();
        } else {
          head += c;
        }
      }
    }
    func_of_line_[li] = funcs.empty() ? std::string() : funcs.back();
    func_stack_of_line_[li] = std::move(funcs);
  }
}

}  // namespace smt::lint
