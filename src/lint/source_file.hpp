// Lexed view of one C++ source file for the smtlint analyzer.
//
// The grep rules this replaces (the pre-PR scripts/check_lint.sh) could
// not tell a comment from code: `// never call srand()` tripped the
// ambient-nondeterminism check. SourceFile fixes that class at the root:
// a single character-level pass blanks comments, string/char literals
// and preprocessor lines out of a column-preserving `code` image, so
// every rule that pattern-matches over `code` sees only real code and
// still reports exact line:column positions from the original text.
//
// The same pass collects the side tables rules need:
//   - includes (with angled/quoted form and line number)
//   - every string literal's raw spelling (for the schema-sync rule)
//   - per-line NOLINT / NOLINTNEXTLINE suppression sets
//   - a brace-tracking scope pass: enclosing function name per line,
//     `using namespace` occurrences, and namespace-scope type
//     declarations (the symbol index behind the direct-include rule)
//
// Determinism is load-bearing: lexing is a pure function of (path,
// content), all containers are ordered, and no clocks or ambient state
// are read — smtlint's own output gate (scripts/check_smtlint.sh)
// byte-compares two runs.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace smt::lint {

/// True for characters that can appear in an identifier.
[[nodiscard]] bool is_ident_char(char c) noexcept;

/// Word-bounded search for `word` in `s` starting at `from` (neither
/// neighbour is an identifier character); npos when absent.
[[nodiscard]] std::size_t find_word(const std::string& s,
                                    const std::string& word,
                                    std::size_t from = 0);

/// One #include directive.
struct Include {
  int line = 0;        ///< 1-based line of the directive
  std::string target;  ///< header path as written ("obs/trace_sink.hpp")
  bool angled = false; ///< <system> vs "project" form
};

/// One string literal, as spelled in the source (escapes unprocessed,
/// raw-string delimiters stripped). Adjacent literals are not merged.
struct StringLiteral {
  int line = 0;       ///< 1-based line the literal opens on
  std::string value;  ///< contents between the quotes
};

/// A type definition at namespace scope in this file: the unit of the
/// direct-include rule's symbol index.
struct TypeDecl {
  int line = 0;
  std::string ns_tail;  ///< innermost namespace component ("obs")
  std::string name;     ///< declared identifier ("TraceEvent")
};

/// A `using namespace` occurrence in code (never comments/strings).
struct UsingNamespace {
  int line = 0;
  int col = 0;  ///< 1-based column of the `using` keyword
};

class SourceFile {
 public:
  /// Lex `content` (repo-relative `path` is carried for reporting and
  /// scope classification; it is never opened).
  SourceFile(std::string path, const std::string& content);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Number of lines (a trailing newline does not add an empty line).
  [[nodiscard]] int line_count() const noexcept {
    return static_cast<int>(code_.size());
  }

  /// Blanked code image of 1-based `line`: comments, literal contents
  /// and preprocessor text replaced by spaces, columns preserved.
  [[nodiscard]] const std::string& code(int line) const;

  /// Raw text of 1-based `line`.
  [[nodiscard]] const std::string& raw(int line) const;

  /// True when `line` is (part of) a preprocessor directive.
  [[nodiscard]] bool is_preprocessor(int line) const;

  [[nodiscard]] bool has_pragma_once() const noexcept {
    return pragma_once_;
  }

  [[nodiscard]] const std::vector<Include>& includes() const noexcept {
    return includes_;
  }
  [[nodiscard]] bool includes_project(const std::string& target) const;
  [[nodiscard]] bool includes_system(const std::string& target) const;

  [[nodiscard]] const std::vector<StringLiteral>& strings() const noexcept {
    return strings_;
  }

  [[nodiscard]] const std::vector<TypeDecl>& type_decls() const noexcept {
    return type_decls_;
  }

  [[nodiscard]] const std::vector<UsingNamespace>& using_namespaces()
      const noexcept {
    return using_namespaces_;
  }

  /// Name of the innermost enclosing function at 1-based `line`, or ""
  /// at file/namespace/class scope. Lambdas report as "lambda".
  [[nodiscard]] const std::string& enclosing_function(int line) const;

  /// Every enclosing function name at `line`, outermost first (a lambda
  /// inside Pipeline::step() reports {"step", "lambda"}).
  [[nodiscard]] std::vector<std::string> enclosing_functions(int line) const;

  /// True when `rule_id` is suppressed on `line` by a NOLINT naming it
  /// (or bare) on the line, or a NOLINTNEXTLINE on the line above.
  [[nodiscard]] bool is_suppressed(int line, const std::string& rule_id) const;

  /// Rule ids named in NOLINT()/NOLINTNEXTLINE() comments, with the line
  /// they appear on — the bad-nolint rule checks them against the
  /// registry. A bare NOLINT contributes nothing here.
  [[nodiscard]] const std::vector<std::pair<int, std::string>>&
  nolint_ids() const noexcept {
    return nolint_ids_;
  }

 private:
  struct LineSuppression {
    bool all = false;            ///< bare NOLINT
    bool next_all = false;       ///< bare NOLINTNEXTLINE
    std::set<std::string> ids;   ///< ids a NOLINT names
    std::set<std::string> next;  ///< ids a NOLINTNEXTLINE names
  };

  void blank_pass(const std::string& content);
  void scope_pass();
  void scan_comment(int line, const std::string& text);

  std::string path_;
  std::vector<std::string> raw_;
  std::vector<std::string> code_;
  std::vector<bool> preprocessor_;
  std::vector<std::string> func_of_line_;  ///< innermost function per line
  std::vector<std::vector<std::string>> func_stack_of_line_;
  std::map<int, LineSuppression> suppressions_;
  std::vector<std::pair<int, std::string>> nolint_ids_;
  std::vector<Include> includes_;
  std::vector<StringLiteral> strings_;
  std::vector<TypeDecl> type_decls_;
  std::vector<UsingNamespace> using_namespaces_;
  bool pragma_once_ = false;
};

}  // namespace smt::lint
