// Synthetic data-address stream generator.
//
// Produces effective addresses whose locality structure matches an
// application profile: a cache-resident hot region (stack/locals/top of
// the heap), a streaming strided component (array traversals of FP
// codes), and a cold uniform component over the full working set
// (pointer-chasing / large-structure accesses). Fed into the *real* cache
// hierarchy, these three components reproduce the hit/miss behaviour the
// fetch-policy study depends on: small-footprint apps stay cache-resident,
// streaming apps miss on every new block, thrashing apps miss almost
// always.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/app_profile.hpp"

namespace smt::workload {

class AddressGen {
 public:
  AddressGen() = default;

  /// `base` is the start of this thread's data segment; threads get
  /// disjoint segments so that (physically-tagged) cache sets see real
  /// inter-thread conflict without false sharing.
  ///
  /// Three locality tiers: a tiny *hot* region (stack/locals; L1-resident),
  /// a *warm* region (current heap neighbourhood; L2-scale), and *cold*
  /// uniform accesses over the full working set. The warm share of
  /// non-hot traffic follows the profile's hot_fraction — programs with
  /// tight stack locality also have tight heap locality, and the
  /// deliberately thrashy profiles (art, mcf) have neither.
  AddressGen(const AppProfile& profile, std::uint64_t base, Rng rng);

  /// Next data address on the correct path.
  /// `hot_bias` shifts the hot-region probability by the current phase
  /// (kMemory phases lower it, kCompute phases raise it); pass 0 for the
  /// profile nominal.
  [[nodiscard]] std::uint64_t next(double hot_bias = 0.0);

  /// Wrong-path address: drawn uniformly over the working set from a
  /// caller-provided RNG so that wrong-path execution perturbs the cache
  /// (realistic pollution) without perturbing this generator's stream.
  [[nodiscard]] std::uint64_t wrong_path(Rng& wrong_rng) const;

  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }

 private:
  std::uint64_t base_ = 0;
  std::uint64_t working_set_ = 1 << 20;
  std::uint64_t hot_set_ = 1 << 14;
  std::uint64_t warm_set_ = 1 << 16;
  double hot_fraction_ = 0.75;
  double warm_share_ = 0.75;  ///< share of non-hot traffic staying warm
  double stride_fraction_ = 0.0;
  std::uint64_t stride_ptr_ = 0;   ///< streaming cursor within the working set
  std::uint64_t stride_step_ = 8;  ///< bytes per streaming access
  Rng rng_{};
};

}  // namespace smt::workload
