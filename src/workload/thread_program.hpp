// Per-thread instruction stream synthesiser.
//
// A ThreadProgram combines an application profile with the address,
// branch-site and dependency models to emit the thread's dynamic
// *correct-path* instruction stream, one instruction per call. It also
// synthesises wrong-path filler instructions (fetched after a
// misprediction, squashed at branch resolution) from an isolated RNG so
// that wrong-path activity never perturbs the correct-path stream — the
// property that makes squash-and-replay and simulator snapshots exact.
//
// The generator is phase-driven: every `phase_len_instrs` correct-path
// instructions it rotates to the profile's next PhaseKind, perturbing the
// class mix, data locality and branch predictability. Phases are the
// time-varying behaviour that gives the paper's quantum-granularity
// adaptive scheduler something to adapt to.
//
// The correct-path stream itself is memoised: because it is a pure
// function of (profile, thread id, seed), this class is a cursor over a
// shared decoded stream (workload/stream_cache.hpp) rather than a live
// generator — next() is an array read plus a PC update, and repeated
// runs over the same key (oracle replays, warmup+measured samples,
// repeat fleet jobs) skip synthesis entirely. Wrong-path synthesis stays
// live here: which PCs are fetched down the wrong path depends on
// simulator timing, so it is not memoisable — but it only ever consumes
// its own RNG, preserving the isolation property above.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include "workload/address_gen.hpp"
#include "workload/app_profile.hpp"
#include "workload/branch_site.hpp"
#include "workload/stream_cache.hpp"

namespace smt::workload {

class ThreadProgram {
 public:
  ThreadProgram() = default;

  /// `thread_id` selects disjoint code/data segments and decorrelated RNG
  /// streams; `seed` is the run's master workload seed.
  ThreadProgram(const AppProfile& profile, std::uint32_t thread_id,
                std::uint64_t seed);

  /// PC of the next correct-path instruction (needed by fetch for the
  /// I-cache access and the cache-block-boundary check *before*
  /// consuming the instruction).
  [[nodiscard]] std::uint64_t pc() const noexcept { return pc_; }

  /// Consume and return the next correct-path instruction.
  [[nodiscard]] isa::Instruction next();

  /// Synthesize a wrong-path instruction at `wrong_pc`, and advance
  /// `wrong_pc` the way a front end blindly following predicted control
  /// flow would. Never touches correct-path state.
  [[nodiscard]] isa::Instruction next_wrong(std::uint64_t& wrong_pc);

  [[nodiscard]] const AppProfile& app() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t generated() const noexcept { return count_; }
  [[nodiscard]] PhaseKind current_phase() const noexcept {
    return profile_.phases.empty() ? PhaseKind::kBase
                                   : profile_.phases[phase_idx_];
  }

  /// Total bytes of the per-thread code segment (I-cache footprint).
  [[nodiscard]] std::uint64_t code_base() const noexcept { return code_base_; }

 private:
  AppProfile profile_{};
  std::uint32_t thread_id_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t code_base_ = 0;
  std::uint64_t pc_ = 0;
  std::uint64_t count_ = 0;  ///< cursor into the memoised stream

  std::shared_ptr<StreamEntry> stream_{};
  /// The thread-local cache `stream_` was resolved from. Simulators are
  /// copied across threads (parallel oracle trials, sweep workers); a
  /// StreamEntry must only ever be mutated by the thread whose cache
  /// owns it, so next() re-resolves from the executing thread's cache —
  /// cheap pointer compare at chunk-refill granularity — before its
  /// first chunk fetch on a foreign thread. Reads of the already-pinned
  /// immutable chunk_ need no guard. The pointer is only compared, never
  /// dereferenced, so it is harmless after its home thread exits.
  StreamCache* home_ = nullptr;
  std::shared_ptr<const StreamChunk> chunk_{};  ///< chunk holding `count_`
  std::uint64_t chunk_base_ = 0;  ///< stream index of chunk_->instrs[0]

  // Wrong-path synthesis state (live; timing-dependent). The phase mirror
  // tracks the phase of the last consumed correct-path instruction so
  // wrong-path class draws see the same distribution the old inline
  // generator used.
  AddressGen wrong_addr_{};  ///< wrong_path() only (construction constants)
  std::shared_ptr<const BranchSiteModel> branches_{};
  Rng wrong_rng_{};
  std::size_t phase_idx_ = 0;
  StreamPhase ph_{};
  /// Count at which the phase mirror rotates next (countdown form of the
  /// per-instruction `(count / phase_len) % phases` divide).
  std::uint64_t phase_rotate_at_ = 0;
  std::uint64_t branch_pc_salt_ = 0;
};

}  // namespace smt::workload
