// Per-thread instruction stream synthesiser.
//
// A ThreadProgram combines an application profile with the address,
// branch-site and dependency models to emit the thread's dynamic
// *correct-path* instruction stream, one instruction per call. It also
// synthesises wrong-path filler instructions (fetched after a
// misprediction, squashed at branch resolution) from an isolated RNG so
// that wrong-path activity never perturbs the correct-path stream — the
// property that makes squash-and-replay and simulator snapshots exact.
//
// The generator is phase-driven: every `phase_len_instrs` correct-path
// instructions it rotates to the profile's next PhaseKind, perturbing the
// class mix, data locality and branch predictability. Phases are the
// time-varying behaviour that gives the paper's quantum-granularity
// adaptive scheduler something to adapt to.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include "workload/address_gen.hpp"
#include "workload/app_profile.hpp"
#include "workload/branch_site.hpp"

namespace smt::workload {

class ThreadProgram {
 public:
  ThreadProgram() = default;

  /// `thread_id` selects disjoint code/data segments and decorrelated RNG
  /// streams; `seed` is the run's master workload seed.
  ThreadProgram(const AppProfile& profile, std::uint32_t thread_id,
                std::uint64_t seed);

  /// PC of the next correct-path instruction (needed by fetch for the
  /// I-cache access and the cache-block-boundary check *before*
  /// consuming the instruction).
  [[nodiscard]] std::uint64_t pc() const noexcept { return pc_; }

  /// Consume and return the next correct-path instruction.
  [[nodiscard]] isa::Instruction next();

  /// Synthesize a wrong-path instruction at `wrong_pc`, and advance
  /// `wrong_pc` the way a front end blindly following predicted control
  /// flow would. Never touches correct-path state.
  [[nodiscard]] isa::Instruction next_wrong(std::uint64_t& wrong_pc);

  [[nodiscard]] const AppProfile& app() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t generated() const noexcept { return count_; }
  [[nodiscard]] PhaseKind current_phase() const noexcept {
    return profile_.phases.empty() ? PhaseKind::kBase
                                   : profile_.phases[phase_idx_];
  }

  /// Total bytes of the per-thread code segment (I-cache footprint).
  [[nodiscard]] std::uint64_t code_base() const noexcept { return code_base_; }

 private:
  void enter_phase(std::size_t idx);
  [[nodiscard]] isa::InstrClass draw_class(Rng& rng) const;
  void fill_common(isa::Instruction& in, Rng& class_rng, bool wrong);

  /// Branch placement is a deterministic function of the PC, as in real
  /// code: the predictor sees a stable set of static branch sites it can
  /// actually learn. The stochastic class mix only covers the non-branch
  /// classes.
  [[nodiscard]] bool is_branch_pc(std::uint64_t pc) const noexcept;

  AppProfile profile_{};
  std::uint64_t code_base_ = 0;
  std::uint64_t pc_ = 0;
  std::uint64_t count_ = 0;

  AddressGen addr_gen_{};
  BranchSiteModel branches_{};

  Rng class_rng_{};
  Rng dep_rng_{};
  Rng branch_rng_{};
  Rng wrong_rng_{};

  // Phase state (recomputed on phase entry).
  std::size_t phase_idx_ = 0;
  std::array<double, isa::kNumInstrClasses> cum_weights_{};  ///< non-branch
  double total_weight_ = 1.0;
  double branch_frac_ = 0.15;  ///< dynamic branch fraction (PC-determined)
  double hot_bias_ = 0.0;
  double flatten_ = 0.0;
  std::uint64_t branch_pc_salt_ = 0;
};

}  // namespace smt::workload
