#include "workload/thread_program.hpp"

#include "isa/instruction.hpp"

namespace smt::workload {

ThreadProgram::ThreadProgram(const AppProfile& profile,
                             std::uint32_t thread_id, std::uint64_t seed)
    : profile_(profile),
      thread_id_(thread_id),
      seed_(seed),
      code_base_(kCodeRegionBase + thread_id * kCodeSegmentStride),
      pc_(code_base_),
      stream_(StreamCache::local().entry(profile, thread_id, seed)),
      home_(&StreamCache::local()),
      wrong_addr_(profile, (thread_id + 1) * kDataSegmentStride,
                  make_stream(seed, {kTagAddr, thread_id})),
      branches_(stream_->branches()),
      wrong_rng_(make_stream(seed, {kTagWrong, thread_id})),
      ph_(phase_state(profile, profile.phases.empty() ? PhaseKind::kBase
                                                      : profile.phases[0])),
      phase_rotate_at_(profile.phase_len_instrs),
      branch_pc_salt_(branch_pc_salt(seed, thread_id)) {}

isa::Instruction ThreadProgram::next() {
  // Phase rotation on correct-path instruction count (mirrors the
  // memoised generator so wrong-path draws see the right distribution).
  // Countdown form, same as StreamGen::next: count_ is += 1 per call, so
  // the boundary test replaces a per-instruction divide.
  if (!profile_.phases.empty() && profile_.phase_len_instrs > 0) {
    if (count_ >= phase_rotate_at_) {
      phase_idx_ =
          phase_idx_ + 1 == profile_.phases.size() ? 0 : phase_idx_ + 1;
      ph_ = phase_state(profile_, profile_.phases[phase_idx_]);
      phase_rotate_at_ += profile_.phase_len_instrs;
    }
  }

  if (!chunk_ || count_ - chunk_base_ >= kStreamChunkInstrs) {
    StreamCache& cache = StreamCache::local();
    if (&cache != home_) {
      // This program was copied onto another thread (oracle trial, sweep
      // worker). Entries are single-threaded, so swap to the executing
      // thread's own entry before touching one; the stream is a pure
      // function of (profile, tid, seed), so the chunks are identical.
      stream_ = cache.entry(profile_, thread_id_, seed_);
      home_ = &cache;
    }
    chunk_ = stream_->chunk_for(count_);
    chunk_base_ = count_ & ~(kStreamChunkInstrs - 1);
    cache.pool().touch(chunk_);
  }
  const isa::Instruction in = chunk_->instrs[count_ - chunk_base_];

  // Advance the PC cursor exactly as the generator did when it recorded
  // this instruction: sequential with code-segment wrap, overridden by a
  // taken branch's target.
  std::uint64_t next_pc = in.pc + isa::kInstrBytes;
  if (next_pc >= code_base_ + profile_.code_bytes) next_pc = code_base_;
  if (in.cls == isa::InstrClass::kBranch && in.taken) {
    next_pc = in.branch_target;
  }
  pc_ = next_pc;
  ++count_;
  return in;
}

isa::Instruction ThreadProgram::next_wrong(std::uint64_t& wrong_pc) {
  isa::Instruction in;
  in.pc = wrong_pc;
  in.cls = is_branch_pc(wrong_pc, branch_pc_salt_, ph_.branch_frac)
               ? isa::InstrClass::kBranch
               : draw_class(wrong_rng_, ph_);
  if (in.cls == isa::InstrClass::kSyscall) in.cls = isa::InstrClass::kIntAlu;
  // Wrong-path "dependencies" only matter for issue-timing realism.
  fill_deps(in, wrong_rng_, profile_);

  if (isa::is_mem(in.cls)) {
    in.mem_addr = wrong_addr_.wrong_path(wrong_rng_);
  }

  std::uint64_t next_pc = wrong_pc + isa::kInstrBytes;
  if (next_pc >= code_base_ + profile_.code_bytes) next_pc = code_base_;
  if (in.cls == isa::InstrClass::kBranch) {
    // Wrong-path branches never redirect fetch again (no nested recovery);
    // they just look like branches to the occupancy counters.
    in.taken = wrong_rng_.chance(0.5);
    in.branch_target = branches_->site_for(wrong_pc).target;
    if (in.taken) next_pc = in.branch_target;
  }
  wrong_pc = next_pc;
  return in;
}

}  // namespace smt::workload
