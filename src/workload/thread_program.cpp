#include "workload/thread_program.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace smt::workload {

namespace {

// Stream-path tags for make_stream(); never reorder (determinism contract).
enum StreamTag : std::uint64_t {
  kTagClass = 1,
  kTagDep = 2,
  kTagBranch = 3,
  kTagWrong = 4,
  kTagAddr = 5,
  kTagSites = 6,
};

/// Per-thread segment spacing: large enough that no profile's working set
/// or code footprint overlaps a neighbour's. The strides carry a salt
/// that is NOT a multiple of any cache's set span (L1: 8 KiB, L2:
/// 128 KiB), so different threads' segments land in different sets — as
/// the OS page allocator ensures for real processes. Power-of-two-aligned
/// segments would put every thread's hot lines in the same sets and
/// thrash them in lockstep.
constexpr std::uint64_t kDataSegmentStride = (1ULL << 32) + 101 * 1024 + 256;
constexpr std::uint64_t kCodeSegmentStride = (1ULL << 28) + 37 * 1024 + 96;
constexpr std::uint64_t kCodeRegionBase = 1ULL << 60;

}  // namespace

ThreadProgram::ThreadProgram(const AppProfile& profile,
                             std::uint32_t thread_id, std::uint64_t seed)
    : profile_(profile),
      code_base_(kCodeRegionBase + thread_id * kCodeSegmentStride),
      pc_(code_base_),
      addr_gen_(profile, (thread_id + 1) * kDataSegmentStride,
                make_stream(seed, {kTagAddr, thread_id})),
      branches_(profile, code_base_, make_stream(seed, {kTagSites, thread_id})),
      class_rng_(make_stream(seed, {kTagClass, thread_id})),
      dep_rng_(make_stream(seed, {kTagDep, thread_id})),
      branch_rng_(make_stream(seed, {kTagBranch, thread_id})),
      wrong_rng_(make_stream(seed, {kTagWrong, thread_id})),
      branch_pc_salt_(mix64(seed ^ (thread_id * 0xabcd1234ULL + 7))) {
  enter_phase(0);
}

bool ThreadProgram::is_branch_pc(std::uint64_t pc) const noexcept {
  const std::uint64_t h = mix64(pc ^ branch_pc_salt_) & 0xFFFFFF;
  return static_cast<double>(h) < branch_frac_ * double(0x1000000);
}

void ThreadProgram::enter_phase(std::size_t idx) {
  phase_idx_ = idx;
  const PhaseKind kind = current_phase();
  const double s = profile_.phase_swing;

  InstrMix m = profile_.mix;
  hot_bias_ = 0.0;
  flatten_ = 0.0;
  switch (kind) {
    case PhaseKind::kBase:
      break;
    case PhaseKind::kMemory:
      m.load *= 1.0 + 1.2 * s;
      m.store *= 1.0 + 0.6 * s;
      hot_bias_ = -0.55 * s;
      break;
    case PhaseKind::kBranchy:
      m.branch *= 1.0 + 1.2 * s;
      flatten_ = 0.7 * s;
      break;
    case PhaseKind::kCompute:
      m.int_alu *= 1.0 + s;
      m.fp_add *= 1.0 + s;
      m.fp_mul *= 1.0 + s;
      hot_bias_ = 0.2 * s;
      break;
  }

  // Branches are placed by PC (is_branch_pc); the stochastic draw covers
  // only the other classes.
  branch_frac_ = m.branch / m.total();
  double acc = 0.0;
  for (int c = 0; c < isa::kNumInstrClasses; ++c) {
    const auto cls = static_cast<isa::InstrClass>(c);
    if (cls != isa::InstrClass::kBranch) {
      acc += m.weight(cls);
    }
    cum_weights_[static_cast<std::size_t>(c)] = acc;
  }
  total_weight_ = acc;
}

isa::InstrClass ThreadProgram::draw_class(Rng& rng) const {
  const double u = rng.uniform() * total_weight_;
  for (int c = 0; c < isa::kNumInstrClasses; ++c) {
    if (u < cum_weights_[static_cast<std::size_t>(c)]) {
      return static_cast<isa::InstrClass>(c);
    }
  }
  return isa::InstrClass::kIntAlu;
}

void ThreadProgram::fill_common(isa::Instruction& in, Rng& dep_rng,
                                bool wrong) {
  // Register dependencies as reuse distances. A distance is capped at 48
  // (beyond the issue window it is indistinguishable from "ready").
  if (dep_rng.chance(0.85)) {
    in.dep1 = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(dep_rng.geometric(profile_.mean_dep_distance), 48));
  }
  if (dep_rng.chance(profile_.dep2_prob)) {
    in.dep2 = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(dep_rng.geometric(profile_.mean_dep_distance), 48));
  }
  if (wrong) {
    // Wrong-path "dependencies" only matter for issue-timing realism.
    return;
  }
}

isa::Instruction ThreadProgram::next() {
  // Phase rotation on correct-path instruction count.
  if (!profile_.phases.empty() && profile_.phase_len_instrs > 0) {
    const std::size_t idx = static_cast<std::size_t>(
        (count_ / profile_.phase_len_instrs) % profile_.phases.size());
    if (idx != phase_idx_) enter_phase(idx);
  }

  isa::Instruction in;
  in.pc = pc_;
  in.cls = is_branch_pc(pc_) ? isa::InstrClass::kBranch
                             : draw_class(class_rng_);
  fill_common(in, dep_rng_, /*wrong=*/false);

  if (isa::is_mem(in.cls)) {
    in.mem_addr = addr_gen_.next(hot_bias_);
  }

  std::uint64_t next_pc = pc_ + isa::kInstrBytes;
  // Wrap within the code segment so the I-cache footprint equals the
  // profile's code size.
  if (next_pc >= code_base_ + profile_.code_bytes) next_pc = code_base_;

  if (in.cls == isa::InstrClass::kBranch) {
    in.taken = branches_.outcome(pc_, branch_rng_, flatten_);
    in.branch_target = branches_.site_for(pc_).target;
    if (in.taken) next_pc = in.branch_target;
  }

  pc_ = next_pc;
  ++count_;
  return in;
}

isa::Instruction ThreadProgram::next_wrong(std::uint64_t& wrong_pc) {
  isa::Instruction in;
  in.pc = wrong_pc;
  in.cls = is_branch_pc(wrong_pc) ? isa::InstrClass::kBranch
                                  : draw_class(wrong_rng_);
  if (in.cls == isa::InstrClass::kSyscall) in.cls = isa::InstrClass::kIntAlu;
  fill_common(in, wrong_rng_, /*wrong=*/true);

  if (isa::is_mem(in.cls)) {
    in.mem_addr = addr_gen_.wrong_path(wrong_rng_);
  }

  std::uint64_t next_pc = wrong_pc + isa::kInstrBytes;
  if (next_pc >= code_base_ + profile_.code_bytes) next_pc = code_base_;
  if (in.cls == isa::InstrClass::kBranch) {
    // Wrong-path branches never redirect fetch again (no nested recovery);
    // they just look like branches to the occupancy counters.
    in.taken = wrong_rng_.chance(0.5);
    in.branch_target = branches_.site_for(wrong_pc).target;
    if (in.taken) next_pc = in.branch_target;
  }
  wrong_pc = next_pc;
  return in;
}

}  // namespace smt::workload
