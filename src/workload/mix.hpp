// The thirteen application mixes of the evaluation.
//
// The paper forms thirteen program mixtures from SPEC CPU2000 "depending
// on each program's properties: IPC on a single threaded machine model,
// memory footprint and whether an application requires floating-point
// operations". We follow the same construction over the synthetic
// profiles: four homogeneous-by-behaviour mixes, four balanced INT/FP
// mixes, and five mixed multiprogramming sets. For 4- and 6-thread runs,
// members are randomly excluded from the 8-thread mix, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smt::workload {

struct Mix {
  std::string name;
  std::string description;
  std::vector<std::string> apps;  ///< 8 profile names

  /// Mean pairwise profile_distance between members; low = homogeneous.
  [[nodiscard]] double diversity() const;
};

/// The thirteen evaluation mixes, in a stable order.
[[nodiscard]] const std::vector<Mix>& all_mixes();

/// Look up a mix by name; throws std::out_of_range when unknown.
[[nodiscard]] const Mix& mix(std::string_view name);

/// Reduce a mix to `threads` members by deterministic random exclusion
/// (paper §5). `threads` must be in [1, apps.size()].
[[nodiscard]] std::vector<std::string> mix_for_threads(const Mix& m,
                                                       std::size_t threads,
                                                       std::uint64_t seed);

}  // namespace smt::workload
