// Decoded-stream memo cache.
//
// A thread's correct-path instruction stream is a pure function of
// (profile, thread_id, workload seed): every class draw, dependency
// distance, data address and branch outcome comes from dedicated RNG
// streams that timing never touches (the property test_thread_program
// locks). That makes the per-instruction synthesis work — ~60 ns of
// distribution sampling per instruction — re-derivable, so this module
// memoises it: streams are generated once, in chunks, and every
// consumer with the same key reads the same decoded arrays.
//
// Who hits the cache:
//   - oracle candidate replays: each policy candidate re-runs the same
//     instruction region from a snapshot, so all but the first replay
//     read memoised chunks;
//   - warmup + measured samples in benchmarks: repeated Simulator
//     constructions over one (mix, seed) re-read the same streams;
//   - repeated in-process fleet/sweep jobs sharing (profile, tid, seed).
//
// Concurrency model: the cache is THREAD-LOCAL (StreamCache::local())
// and a StreamEntry is only ever mutated by the thread whose cache owns
// it. That invariant is not automatic — Simulators DO cross threads (the
// parallel oracle copies the base simulator into pool workers; sweep
// cells move results back) — so ThreadProgram records which cache
// resolved its entry and re-resolves from the executing thread's cache
// before the first chunk fetch on a foreign thread
// (thread_program.cpp; the cross-boundary regression test is
// ParallelOracle.TrialsCrossingChunkBoundariesMatchSerial under TSan).
// Published chunks themselves are immutable, so a pinned chunk_ can be
// read from any thread. This keeps the library free of locks and
// atomics (the thread-primitive lint rule stays one-module-long).
// Sharing is therefore per-thread, which is where the repeat-run wins
// live anyway: a job runs start-to-finish on one thread, and each
// oracle worker replays its trials from its own cache.
//
// Memory model: chunks are published as shared_ptr and tracked weakly;
// a byte-budgeted retention pool (SMT_STREAM_CACHE_MB, default 64 MiB
// per thread) additionally keeps the most recently used chunks alive for
// reuse. Evicted chunks are regenerable from per-chunk StreamGen
// checkpoints (~300 B each), so retention is purely a performance knob —
// correctness never depends on what stayed resident.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include "workload/address_gen.hpp"
#include "workload/app_profile.hpp"
#include "workload/branch_site.hpp"

namespace smt::workload {

// --- shared stream model ----------------------------------------------------
// The drawing rules below are used by BOTH the memoised correct-path
// generator (StreamGen) and the live wrong-path synthesiser kept in
// ThreadProgram, so the two paths cannot drift apart.

/// Per-thread segment spacing: large enough that no profile's working set
/// or code footprint overlaps a neighbour's. The strides carry a salt
/// that is NOT a multiple of any cache's set span (L1: 8 KiB, L2:
/// 128 KiB), so different threads' segments land in different sets — as
/// the OS page allocator ensures for real processes. Power-of-two-aligned
/// segments would put every thread's hot lines in the same sets and
/// thrash them in lockstep.
inline constexpr std::uint64_t kDataSegmentStride =
    (1ULL << 32) + 101 * 1024 + 256;
inline constexpr std::uint64_t kCodeSegmentStride =
    (1ULL << 28) + 37 * 1024 + 96;
inline constexpr std::uint64_t kCodeRegionBase = 1ULL << 60;

// Stream-path tags for make_stream(); never reorder (determinism contract).
enum StreamTag : std::uint64_t {
  kTagClass = 1,
  kTagDep = 2,
  kTagBranch = 3,
  kTagWrong = 4,
  kTagAddr = 5,
  kTagSites = 6,
};

/// Phase-resolved drawing state: the class distribution with branches
/// carved out (branch placement is PC-determined), plus the locality and
/// predictability perturbations. Pure function of (profile, kind).
struct StreamPhase {
  std::array<double, isa::kNumInstrClasses> cum_weights{};  ///< non-branch
  double total_weight = 1.0;
  double branch_frac = 0.15;  ///< dynamic branch fraction (PC-determined)
  double hot_bias = 0.0;
  double flatten = 0.0;
};

[[nodiscard]] StreamPhase phase_state(const AppProfile& profile,
                                      PhaseKind kind);

[[nodiscard]] inline std::uint64_t branch_pc_salt(std::uint64_t seed,
                                                  std::uint32_t thread_id) {
  return mix64(seed ^ (thread_id * 0xabcd1234ULL + 7));
}

/// Branch placement is a deterministic function of the PC, as in real
/// code: the predictor sees a stable set of static branch sites it can
/// actually learn. The stochastic class mix only covers the non-branch
/// classes.
[[nodiscard]] inline bool is_branch_pc(std::uint64_t pc, std::uint64_t salt,
                                       double branch_frac) noexcept {
  const std::uint64_t h = mix64(pc ^ salt) & 0xFFFFFF;
  return static_cast<double>(h) < branch_frac * double(0x1000000);
}

[[nodiscard]] isa::InstrClass draw_class(Rng& rng, const StreamPhase& ph);

/// Register dependencies as reuse distances. A distance is capped at 48
/// (beyond the issue window it is indistinguishable from "ready").
inline void fill_deps(isa::Instruction& in, Rng& dep_rng,
                      const AppProfile& profile) {
  if (dep_rng.chance(0.85)) {
    in.dep1 = static_cast<std::uint16_t>(std::min<std::uint64_t>(
        dep_rng.geometric(profile.mean_dep_distance), 48));
  }
  if (dep_rng.chance(profile.dep2_prob)) {
    in.dep2 = static_cast<std::uint16_t>(std::min<std::uint64_t>(
        dep_rng.geometric(profile.mean_dep_distance), 48));
  }
}

// --- correct-path generator -------------------------------------------------

/// The complete correct-path generator state: what ThreadProgram used to
/// advance inline, extracted so it can run ahead in bulk and be
/// checkpointed per chunk (copies are ~300 B: RNGs, cursors and a pointer
/// to the entry-owned profile). Draw order per RNG stream is the
/// determinism contract — it must match the historical ThreadProgram
/// exactly, which the golden stats digests (test_stats_identity) lock.
class StreamGen {
 public:
  StreamGen() = default;
  StreamGen(const AppProfile* profile, std::uint32_t thread_id,
            std::uint64_t seed,
            std::shared_ptr<const BranchSiteModel> branches);

  [[nodiscard]] isa::Instruction next();

  [[nodiscard]] const std::shared_ptr<const BranchSiteModel>& branches()
      const noexcept {
    return branches_;
  }

 private:
  const AppProfile* profile_ = nullptr;  ///< owned by the StreamEntry
  std::uint64_t code_base_ = 0;
  std::uint64_t pc_ = 0;
  std::uint64_t count_ = 0;

  AddressGen addr_gen_{};
  std::shared_ptr<const BranchSiteModel> branches_{};

  Rng class_rng_{};
  Rng dep_rng_{};
  Rng branch_rng_{};

  std::size_t phase_idx_ = 0;
  StreamPhase ph_{};
  /// Correct-path count at which the next phase rotation fires (countdown
  /// form of `(count / phase_len) % phases`, which would divide per
  /// instruction on the synthesis hot path).
  std::uint64_t phase_rotate_at_ = 0;
  std::uint64_t branch_pc_salt_ = 0;
};

// --- memoised stream --------------------------------------------------------

/// Instructions per chunk (power of two). 4096 × sizeof(Instruction)
/// ≈ 160 KiB: big enough to amortise bulk-generation overhead, small
/// enough that a reader pinning two chunks costs well under a MiB.
inline constexpr std::uint64_t kStreamChunkInstrs = 4096;

struct StreamChunk {
  std::array<isa::Instruction, kStreamChunkInstrs> instrs;
};

/// One memoised correct-path stream, keyed by (profile, tid, seed).
/// Chunks are tracked weakly and regenerated from checkpoints when dead;
/// the owning cache's retention pool decides what stays resident.
class StreamEntry {
 public:
  StreamEntry(const AppProfile& profile, std::uint32_t thread_id,
              std::uint64_t seed);

  // Checkpoints hold pointers into profile_; the entry must stay put.
  StreamEntry(const StreamEntry&) = delete;
  StreamEntry& operator=(const StreamEntry&) = delete;

  /// The chunk containing instruction `index` (0-based position in the
  /// correct-path stream). Generates or regenerates on demand.
  [[nodiscard]] std::shared_ptr<const StreamChunk> chunk_for(
      std::uint64_t index);

  /// Immutable branch-site model shared with wrong-path synthesis.
  [[nodiscard]] const std::shared_ptr<const BranchSiteModel>& branches()
      const noexcept {
    return branches_;
  }

  [[nodiscard]] const AppProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t chunks_generated() const noexcept {
    return chunks_generated_;
  }
  [[nodiscard]] std::uint64_t chunk_hits() const noexcept {
    return chunk_hits_;
  }

 private:
  [[nodiscard]] std::shared_ptr<const StreamChunk> generate_with(
      StreamGen& gen);

  AppProfile profile_;  ///< stable address for StreamGen back-pointers
  std::shared_ptr<const BranchSiteModel> branches_;
  /// checkpoints_[i] = generator state at the start of chunk i; grows as
  /// the stream frontier advances (~300 B per 4096 instructions).
  std::vector<StreamGen> checkpoints_;
  std::vector<std::weak_ptr<const StreamChunk>> chunks_;
  std::uint64_t chunks_generated_ = 0;
  std::uint64_t chunk_hits_ = 0;
};

/// Bounded strong-reference pool: keeps recently used chunks alive past
/// their readers, up to a byte budget, evicting least-recently-touched
/// first. Ticks are a logical counter (no host clocks in library code).
class RetentionPool {
 public:
  explicit RetentionPool(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  void touch(const std::shared_ptr<const StreamChunk>& chunk);
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return sizeof(StreamChunk) * items_.size();
  }
  void clear() { items_.clear(); }

 private:
  struct Item {
    std::shared_ptr<const StreamChunk> chunk;
    std::uint64_t tick = 0;
  };
  std::vector<Item> items_;
  std::uint64_t tick_ = 0;
  std::uint64_t budget_bytes_ = 0;
};

/// Per-thread registry of memoised streams. See the header comment for
/// why this is thread-local rather than locked.
class StreamCache {
 public:
  /// This thread's cache instance.
  [[nodiscard]] static StreamCache& local();

  /// The memoised stream for (profile, thread_id, seed), creating it on
  /// first use. Profiles are keyed by a digest of every generation-
  /// relevant field (not the name), so identical-parameter profiles
  /// share a stream.
  [[nodiscard]] std::shared_ptr<StreamEntry> entry(const AppProfile& profile,
                                                   std::uint32_t thread_id,
                                                   std::uint64_t seed);

  [[nodiscard]] RetentionPool& pool() noexcept { return pool_; }

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t chunks_generated = 0;  ///< chunk generations (incl. regen)
    std::uint64_t chunk_hits = 0;        ///< chunk lookups served memoised
    std::uint64_t resident_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drop every entry and resident chunk (testing / memory pressure).
  void clear();

 private:
  StreamCache();

  struct Rec {
    std::uint64_t profile_digest = 0;
    std::uint32_t thread_id = 0;
    std::uint64_t seed = 0;
    std::shared_ptr<StreamEntry> entry;
  };
  std::vector<Rec> recs_;
  RetentionPool pool_;
};

/// Generation-algorithm revision, mixed into profile_stream_digest so a
/// stream key names the generator that produced it, not just its inputs.
/// Bump whenever StreamGen's draw order, the RNG stream layout
/// (StreamTag), or any upstream model changes what a (profile, tid,
/// seed) key decodes to — the golden digests in test_stats_identity
/// move in lockstep with such changes.
inline constexpr std::uint64_t kStreamGenVersion = 1;

/// FNV-1a digest over every AppProfile field that affects stream
/// generation (the name is deliberately excluded) plus kStreamGenVersion.
[[nodiscard]] std::uint64_t profile_stream_digest(const AppProfile& profile);

}  // namespace smt::workload
