#include "workload/stream_cache.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/build_info.hpp"  // Fnv1a
#include "isa/instruction.hpp"

namespace smt::workload {

StreamPhase phase_state(const AppProfile& profile, PhaseKind kind) {
  const double s = profile.phase_swing;

  InstrMix m = profile.mix;
  StreamPhase ph;
  switch (kind) {
    case PhaseKind::kBase:
      break;
    case PhaseKind::kMemory:
      m.load *= 1.0 + 1.2 * s;
      m.store *= 1.0 + 0.6 * s;
      ph.hot_bias = -0.55 * s;
      break;
    case PhaseKind::kBranchy:
      m.branch *= 1.0 + 1.2 * s;
      ph.flatten = 0.7 * s;
      break;
    case PhaseKind::kCompute:
      m.int_alu *= 1.0 + s;
      m.fp_add *= 1.0 + s;
      m.fp_mul *= 1.0 + s;
      ph.hot_bias = 0.2 * s;
      break;
  }

  // Branches are placed by PC (is_branch_pc); the stochastic draw covers
  // only the other classes.
  ph.branch_frac = m.branch / m.total();
  double acc = 0.0;
  for (int c = 0; c < isa::kNumInstrClasses; ++c) {
    const auto cls = static_cast<isa::InstrClass>(c);
    if (cls != isa::InstrClass::kBranch) {
      acc += m.weight(cls);
    }
    ph.cum_weights[static_cast<std::size_t>(c)] = acc;
  }
  ph.total_weight = acc;
  return ph;
}

isa::InstrClass draw_class(Rng& rng, const StreamPhase& ph) {
  const double u = rng.uniform() * ph.total_weight;
  for (int c = 0; c < isa::kNumInstrClasses; ++c) {
    if (u < ph.cum_weights[static_cast<std::size_t>(c)]) {
      return static_cast<isa::InstrClass>(c);
    }
  }
  return isa::InstrClass::kIntAlu;
}

// --- StreamGen --------------------------------------------------------------

StreamGen::StreamGen(const AppProfile* profile, std::uint32_t thread_id,
                     std::uint64_t seed,
                     std::shared_ptr<const BranchSiteModel> branches)
    : profile_(profile),
      code_base_(kCodeRegionBase + thread_id * kCodeSegmentStride),
      pc_(code_base_),
      addr_gen_(*profile, (thread_id + 1) * kDataSegmentStride,
                make_stream(seed, {kTagAddr, thread_id})),
      branches_(std::move(branches)),
      class_rng_(make_stream(seed, {kTagClass, thread_id})),
      dep_rng_(make_stream(seed, {kTagDep, thread_id})),
      branch_rng_(make_stream(seed, {kTagBranch, thread_id})),
      ph_(phase_state(*profile, profile->phases.empty()
                                    ? PhaseKind::kBase
                                    : profile->phases[0])),
      phase_rotate_at_(profile->phase_len_instrs),
      branch_pc_salt_(branch_pc_salt(seed, thread_id)) {}

isa::Instruction StreamGen::next() {
  // Phase rotation on correct-path instruction count. count_ advances by
  // exactly one per call, so a boundary countdown replaces the per-
  // instruction divide the original `(count_ / len) % phases` computed.
  if (!profile_->phases.empty() && profile_->phase_len_instrs > 0) {
    if (count_ >= phase_rotate_at_) {
      phase_idx_ = phase_idx_ + 1 == profile_->phases.size() ? 0
                                                             : phase_idx_ + 1;
      ph_ = phase_state(*profile_, profile_->phases[phase_idx_]);
      phase_rotate_at_ += profile_->phase_len_instrs;
    }
  }

  isa::Instruction in;
  in.pc = pc_;
  in.cls = is_branch_pc(pc_, branch_pc_salt_, ph_.branch_frac)
               ? isa::InstrClass::kBranch
               : draw_class(class_rng_, ph_);
  fill_deps(in, dep_rng_, *profile_);

  if (isa::is_mem(in.cls)) {
    in.mem_addr = addr_gen_.next(ph_.hot_bias);
  }

  std::uint64_t next_pc = pc_ + isa::kInstrBytes;
  // Wrap within the code segment so the I-cache footprint equals the
  // profile's code size.
  if (next_pc >= code_base_ + profile_->code_bytes) next_pc = code_base_;

  if (in.cls == isa::InstrClass::kBranch) {
    in.taken = branches_->outcome(pc_, branch_rng_, ph_.flatten);
    in.branch_target = branches_->site_for(pc_).target;
    if (in.taken) next_pc = in.branch_target;
  }

  pc_ = next_pc;
  ++count_;
  return in;
}

// --- StreamEntry ------------------------------------------------------------

StreamEntry::StreamEntry(const AppProfile& profile, std::uint32_t thread_id,
                         std::uint64_t seed)
    : profile_(profile),
      branches_(std::make_shared<const BranchSiteModel>(
          profile, kCodeRegionBase + thread_id * kCodeSegmentStride,
          make_stream(seed, {kTagSites, thread_id}))) {
  checkpoints_.emplace_back(&profile_, thread_id, seed, branches_);
}

std::shared_ptr<const StreamChunk> StreamEntry::generate_with(StreamGen& gen) {
  auto chunk = std::make_shared<StreamChunk>();
  for (auto& in : chunk->instrs) in = gen.next();
  ++chunks_generated_;
  return chunk;
}

std::shared_ptr<const StreamChunk> StreamEntry::chunk_for(std::uint64_t index) {
  const std::uint64_t idx = index / kStreamChunkInstrs;
  if (idx < chunks_.size()) {
    if (auto alive = chunks_[idx].lock()) {
      ++chunk_hits_;
      return alive;
    }
  } else {
    chunks_.resize(idx + 1);
  }

  // Advance the checkpoint frontier so a generator state exists for the
  // start of chunk idx. Chunks produced on the way are published (weakly)
  // too — a consumer jumping ahead is about to walk through them anyway —
  // but never clobber a still-live chunk's reference.
  while (checkpoints_.size() <= idx) {
    StreamGen gen = checkpoints_.back();
    auto chunk = generate_with(gen);
    const std::uint64_t made = checkpoints_.size() - 1;
    if (!chunks_[made].lock()) chunks_[made] = chunk;
    checkpoints_.push_back(gen);
  }

  // Generate (or regenerate) chunk idx from its checkpoint. When this
  // extends the frontier, record the post-chunk state as the next
  // checkpoint so a sequential reader generates every chunk exactly once.
  StreamGen gen = checkpoints_[idx];
  std::shared_ptr<const StreamChunk> wanted = generate_with(gen);
  chunks_[idx] = wanted;
  if (checkpoints_.size() == idx + 1) checkpoints_.push_back(gen);
  return wanted;
}

// --- RetentionPool ----------------------------------------------------------

void RetentionPool::touch(const std::shared_ptr<const StreamChunk>& chunk) {
  if (budget_bytes_ == 0) return;
  ++tick_;
  for (auto& it : items_) {
    if (it.chunk == chunk) {
      it.tick = tick_;
      return;
    }
  }
  items_.push_back({chunk, tick_});
  while (resident_bytes() > budget_bytes_ && items_.size() > 1) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < items_.size(); ++i) {
      if (items_[i].tick < items_[oldest].tick) oldest = i;
    }
    items_[oldest] = std::move(items_.back());
    items_.pop_back();
  }
}

// --- StreamCache ------------------------------------------------------------

namespace {

std::uint64_t retention_budget_bytes() {
  if (const char* env = std::getenv("SMT_STREAM_CACHE_MB")) {
    const long mb = std::atol(env);
    if (mb >= 0) return static_cast<std::uint64_t>(mb) << 20;
  }
  return 64ull << 20;
}

}  // namespace

std::uint64_t profile_stream_digest(const AppProfile& p) {
  Fnv1a h;
  h.mix(kStreamGenVersion);
  h.mix(p.mix);
  h.mix(p.mean_dep_distance);
  h.mix(p.dep2_prob);
  h.mix(p.working_set_bytes);
  h.mix(p.hot_set_bytes);
  h.mix(p.hot_fraction);
  h.mix(p.stride_fraction);
  h.mix(p.code_bytes);
  h.mix(p.branch_sites);
  h.mix(p.predictable_sites);
  h.mix(p.phase_len_instrs);
  h.mix(p.phase_swing);
  h.mix<std::uint64_t>(p.phases.size());
  for (const PhaseKind k : p.phases) h.mix(k);
  return h.digest();
}

StreamCache::StreamCache() : pool_(retention_budget_bytes()) {}

StreamCache& StreamCache::local() {
  thread_local StreamCache cache;
  return cache;
}

std::shared_ptr<StreamEntry> StreamCache::entry(const AppProfile& profile,
                                                std::uint32_t thread_id,
                                                std::uint64_t seed) {
  const std::uint64_t digest = profile_stream_digest(profile);
  for (const Rec& r : recs_) {
    if (r.profile_digest == digest && r.thread_id == thread_id &&
        r.seed == seed) {
      return r.entry;
    }
  }
  auto made = std::make_shared<StreamEntry>(profile, thread_id, seed);
  recs_.push_back({digest, thread_id, seed, made});
  return made;
}

StreamCache::Stats StreamCache::stats() const {
  Stats s;
  s.entries = recs_.size();
  for (const Rec& r : recs_) {
    s.chunks_generated += r.entry->chunks_generated();
    s.chunk_hits += r.entry->chunk_hits();
  }
  s.resident_bytes = pool_.resident_bytes();
  return s;
}

void StreamCache::clear() {
  recs_.clear();
  pool_.clear();
}

}  // namespace smt::workload
