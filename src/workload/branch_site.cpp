#include "workload/branch_site.hpp"

#include <algorithm>

#include "isa/instruction.hpp"

namespace smt::workload {

BranchSiteModel::BranchSiteModel(const AppProfile& profile,
                                 std::uint64_t code_base, Rng rng) {
  const std::uint32_t n = std::max<std::uint32_t>(profile.branch_sites, 8);
  sites_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    BranchSite s;
    if (rng.chance(profile.predictable_sites)) {
      // Strongly biased site: mostly-taken back edges and mostly-not-taken
      // guard branches in roughly equal numbers.
      s.taken_rate = rng.chance(0.55) ? rng.uniform() * 0.04 + 0.94
                                      : rng.uniform() * 0.04 + 0.02;
    } else {
      // Data-dependent site: near-coin-flip, the source of mispredicts.
      s.taken_rate = 0.25 + rng.uniform() * 0.5;
    }
    // Taken target: mostly short backward jumps (loops), occasionally a
    // long forward jump — this shapes the I-cache reuse pattern.
    const std::uint64_t code = std::max<std::uint64_t>(profile.code_bytes, 1024);
    const std::uint64_t span = rng.chance(0.8)
                                   ? std::min<std::uint64_t>(code, 4096)
                                   : code;
    s.target = code_base + rng.below(span / isa::kInstrBytes) * isa::kInstrBytes;
    sites_.push_back(s);
  }
}

const BranchSite& BranchSiteModel::site_for(std::uint64_t pc) const {
  // PC-hashed site choice: the same PC always maps to the same static
  // branch, which is what lets the real predictor learn.
  return sites_[mix64(pc) % sites_.size()];
}

bool BranchSiteModel::outcome(std::uint64_t pc, Rng& rng,
                              double flatten) const {
  const BranchSite& s = site_for(pc);
  const double rate = s.taken_rate + (0.5 - s.taken_rate) * flatten;
  return rng.chance(rate);
}

}  // namespace smt::workload
