// Static branch-site model.
//
// A profile declares `branch_sites` distinct static conditional branches
// spread over its code footprint. Each site has a fixed taken-rate: most
// sites are strongly biased (loop back-edges, error checks — trivially
// learned by a 2-bit counter), and a profile-controlled minority draw a
// taken-rate near 0.5, which is what produces real mispredictions in the
// gshare predictor. Site selection is PC-determined, so the predictor's
// tables see a stable PC → behaviour mapping it can actually learn — a
// property purely random outcome streams would not have.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workload/app_profile.hpp"

namespace smt::workload {

struct BranchSite {
  double taken_rate = 0.5;
  std::uint64_t target = 0;  ///< taken-path target PC (within the code segment)
};

class BranchSiteModel {
 public:
  BranchSiteModel() = default;

  /// `code_base` is the start of the thread's code segment.
  BranchSiteModel(const AppProfile& profile, std::uint64_t code_base, Rng rng);

  /// The site occupying a given branch PC. Deterministic per PC.
  [[nodiscard]] const BranchSite& site_for(std::uint64_t pc) const;

  /// Sample an outcome for the branch at `pc`.
  /// `flatten` in [0,1] pushes taken-rates toward 0.5 (branchy phases make
  /// branches harder to predict).
  [[nodiscard]] bool outcome(std::uint64_t pc, Rng& rng, double flatten) const;

  [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }

 private:
  std::vector<BranchSite> sites_;
};

}  // namespace smt::workload
