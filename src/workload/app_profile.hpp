// Application behaviour profiles.
//
// The paper drives its SMT simulator with SPEC CPU2000 binaries. We cannot
// ship those, so each application is replaced by a *statistical signature*
// that synthesises an instruction stream with the same coarse behaviour:
// instruction-class mix, ILP (register reuse distance), memory footprint
// and locality, code footprint, branchiness and branch predictability, and
// phase behaviour. The stream then exercises the real caches, the real
// branch predictor and the real rename/issue machinery, so the per-thread
// hardware counters the detector thread reads are produced by genuine
// microarchitectural feedback, not sampled from closed-form distributions.
//
// Profile values are hand-calibrated to span the paper's three
// mix-construction axes (single-thread IPC class, memory footprint,
// INT vs FP); see DESIGN.md §6.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hpp"

namespace smt::workload {

/// Fractions of each instruction class in the dynamic stream. Stored as
/// weights; the generator normalises. kSyscall weight should be tiny
/// (every syscall flushes the whole pipeline, per the paper's conservative
/// assumption).
struct InstrMix {
  double int_alu = 0.45;
  double int_mul = 0.02;
  double int_div = 0.005;
  double fp_add = 0.0;
  double fp_mul = 0.0;
  double fp_div = 0.0;
  double load = 0.25;
  double store = 0.12;
  double branch = 0.15;
  double syscall = 0.00001;

  [[nodiscard]] double weight(isa::InstrClass c) const noexcept;
  [[nodiscard]] double total() const noexcept;
};

/// How a phase perturbs the base behaviour. The generator cycles through
/// the profile's phases every `phase_len_instrs` instructions; this is
/// what gives the adaptive scheduler time-varying conditions to react to
/// at quantum granularity.
enum class PhaseKind : std::uint8_t {
  kBase,      ///< profile's nominal behaviour
  kMemory,    ///< loads/stores up, locality down (cache-stressing phase)
  kBranchy,   ///< branches up, biases flattened (mispredict-stressing)
  kCompute,   ///< ALU-heavy, high locality (well-behaved phase)
};

struct AppProfile {
  std::string name;

  InstrMix mix;

  // --- ILP / dependency structure -------------------------------------
  /// Mean register reuse distance (geometric). 1.2 ≈ serial dependency
  /// chains, 6+ ≈ lots of independent work per window.
  double mean_dep_distance = 3.0;
  /// Probability that an instruction has a second source dependency.
  double dep2_prob = 0.35;

  // --- data memory behaviour ------------------------------------------
  std::uint64_t working_set_bytes = 1u << 20;  ///< total data footprint
  std::uint64_t hot_set_bytes = 1u << 14;      ///< cache-resident hot region
  double hot_fraction = 0.75;   ///< accesses hitting the hot region
  double stride_fraction = 0.0; ///< sequential streaming accesses (FP codes)

  // --- code / branch behaviour ----------------------------------------
  std::uint64_t code_bytes = 1u << 15;  ///< static code footprint (I-cache)
  std::uint32_t branch_sites = 256;     ///< distinct static branches
  /// Fraction of branch sites that are strongly biased (trivially
  /// predictable); the rest draw a taken-rate in [0.25, 0.75] and are what
  /// generates real mispredictions.
  double predictable_sites = 0.85;

  // --- phase behaviour --------------------------------------------------
  std::vector<PhaseKind> phases{PhaseKind::kBase};
  std::uint64_t phase_len_instrs = 60000;
  /// Strength of the phase perturbation in [0, 1].
  double phase_swing = 0.5;

  [[nodiscard]] bool is_fp_app() const noexcept {
    return mix.fp_add + mix.fp_mul + mix.fp_div > 0.01;
  }
};

/// Look up a built-in profile by name; throws std::out_of_range for an
/// unknown name. The registry covers 26 SPEC CPU2000-inspired
/// applications (12 INT + 14 FP).
[[nodiscard]] const AppProfile& profile(std::string_view name);

/// Names of all built-in profiles, INT suite first.
[[nodiscard]] const std::vector<std::string>& all_profile_names();

/// Behavioural distance between two profiles in [0, ~1]; used by the
/// mix-similarity experiment (paper §6: "greater improvements ... when
/// more similar applications are found in a mixture").
[[nodiscard]] double profile_distance(const AppProfile& a, const AppProfile& b);

}  // namespace smt::workload
