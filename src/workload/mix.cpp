#include "workload/mix.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "workload/app_profile.hpp"

namespace smt::workload {

double Mix::diversity() const {
  if (apps.size() < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (std::size_t j = i + 1; j < apps.size(); ++j) {
      sum += profile_distance(profile(apps[i]), profile(apps[j]));
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

const std::vector<Mix>& all_mixes() {
  static const std::vector<Mix> mixes = {
      // --- homogeneous-by-behaviour -----------------------------------
      {"ctrl8",
       "control-intensive: branchy INT codes; stresses the predictor, the"
       " case the paper's BRCOUNT example (§1) is about",
       {"gcc", "parser", "twolf", "vpr", "perlbmk", "crafty", "gap", "eon"}},
      {"mem8",
       "memory-bound: large-footprint, low-locality codes; stresses L1/L2"
       " and the load/store queue",
       {"mcf", "art", "swim", "equake", "ammp", "lucas", "applu", "parser"}},
      {"ilp8",
       "high-ILP: long dependency distances, cache-resident footprints;"
       " near-saturating baseline throughput",
       {"sixtrack", "wupwise", "mgrid", "crafty", "gzip", "eon", "mesa",
        "bzip2"}},
      {"cache8",
       "cache-thrashers: the worst per-thread hit rates of both suites",
       {"art", "mcf", "swim", "lucas", "equake", "ammp", "applu", "vortex"}},
      // --- balanced INT/FP ---------------------------------------------
      {"bal1", "4 INT + 4 FP, spanning IPC classes",
       {"gzip", "gcc", "mcf", "crafty", "swim", "mesa", "art", "sixtrack"}},
      {"bal2", "4 INT + 4 FP, mid-range footprints",
       {"vpr", "parser", "vortex", "bzip2", "wupwise", "equake", "facerec",
        "apsi"}},
      {"bal3", "4 INT + 4 FP, branchy INT half",
       {"eon", "perlbmk", "gap", "twolf", "mgrid", "galgel", "ammp",
        "fma3d"}},
      {"bal4", "4 INT + 4 FP, extremes of footprint in both halves",
       {"gzip", "mcf", "twolf", "vortex", "swim", "sixtrack", "art", "mesa"}},
      // --- mixed multiprogramming sets ----------------------------------
      {"int8", "the first eight INT-suite profiles",
       {"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk"}},
      {"span8", "INT tail + FP head: moderate diversity",
       {"gap", "vortex", "bzip2", "twolf", "wupwise", "swim", "mgrid",
        "applu"}},
      {"fp8", "eight FP-suite profiles",
       {"mesa", "galgel", "art", "equake", "facerec", "ammp", "lucas",
        "fma3d"}},
      {"var1", "high-variance set: thrashers next to compute kernels",
       {"sixtrack", "apsi", "gzip", "swim", "gcc", "art", "crafty",
        "equake"}},
      {"var2", "high-variance set: serial chasers next to wide ILP",
       {"mcf", "sixtrack", "parser", "mgrid", "twolf", "lucas", "eon",
        "facerec"}},
  };
  return mixes;
}

const Mix& mix(std::string_view name) {
  for (const Mix& m : all_mixes()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("unknown mix: " + std::string(name));
}

std::vector<std::string> mix_for_threads(const Mix& m, std::size_t threads,
                                         std::uint64_t seed) {
  if (threads == 0 || threads > m.apps.size()) {
    throw std::invalid_argument("mix_for_threads: bad thread count");
  }
  std::vector<std::string> apps = m.apps;
  Rng rng = make_stream(seed, {0x5e1ec7, threads});
  // Random exclusion, one at a time (paper §5).
  while (apps.size() > threads) {
    apps.erase(apps.begin() +
               static_cast<std::ptrdiff_t>(rng.below(apps.size())));
  }
  return apps;
}

}  // namespace smt::workload
