#include "workload/address_gen.hpp"

#include <algorithm>

namespace smt::workload {

AddressGen::AddressGen(const AppProfile& profile, std::uint64_t base, Rng rng)
    : base_(base),
      working_set_(std::max<std::uint64_t>(profile.working_set_bytes, 4096)),
      hot_set_(std::max<std::uint64_t>(profile.hot_set_bytes, 512)),
      hot_fraction_(profile.hot_fraction),
      warm_share_(profile.hot_fraction),
      stride_fraction_(profile.stride_fraction),
      rng_(rng) {
  hot_set_ = std::min(hot_set_, working_set_);
  warm_set_ = std::clamp<std::uint64_t>(working_set_ / 4, 8 * 1024, 96 * 1024);
  warm_set_ = std::min(warm_set_, working_set_);
}

std::uint64_t AddressGen::next(double hot_bias) {
  // Streaming component first: a strided walk through the working set.
  if (stride_fraction_ > 0.0 && rng_.chance(stride_fraction_)) {
    stride_ptr_ = (stride_ptr_ + stride_step_) % working_set_;
    return base_ + stride_ptr_;
  }

  const double hot_p = std::clamp(hot_fraction_ + hot_bias, 0.0, 1.0);
  if (rng_.chance(hot_p)) {
    // Hot region: geometrically skewed over cache lines so a handful of
    // lines take most of the traffic, as real stack/locals accesses do —
    // they must survive the LRU pressure of the colder tiers.
    const std::uint64_t lines = std::max<std::uint64_t>(hot_set_ / 64, 1);
    const std::uint64_t line = std::min(rng_.geometric(4.0) - 1, lines - 1);
    return base_ + line * 64 + rng_.below(64) / 8 * 8;
  }

  // Warm component: the heap neighbourhood currently being worked on.
  if (rng_.chance(warm_share_)) {
    return base_ + rng_.below(warm_set_ / 8) * 8;
  }

  // Cold component: uniform over the working set, 8-byte aligned.
  return base_ + rng_.below(working_set_ / 8) * 8;
}

std::uint64_t AddressGen::wrong_path(Rng& wrong_rng) const {
  return base_ + wrong_rng.below(working_set_ / 8) * 8;
}

}  // namespace smt::workload
