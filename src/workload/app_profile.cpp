#include "workload/app_profile.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "isa/instruction.hpp"
#include <map>
#include <stdexcept>

namespace smt::workload {

double InstrMix::weight(isa::InstrClass c) const noexcept {
  using isa::InstrClass;
  switch (c) {
    case InstrClass::kIntAlu: return int_alu;
    case InstrClass::kIntMul: return int_mul;
    case InstrClass::kIntDiv: return int_div;
    case InstrClass::kFpAdd: return fp_add;
    case InstrClass::kFpMul: return fp_mul;
    case InstrClass::kFpDiv: return fp_div;
    case InstrClass::kLoad: return load;
    case InstrClass::kStore: return store;
    case InstrClass::kBranch: return branch;
    case InstrClass::kSyscall: return syscall;
  }
  return 0.0;
}

double InstrMix::total() const noexcept {
  return int_alu + int_mul + int_div + fp_add + fp_mul + fp_div + load +
         store + branch + syscall;
}

namespace {

using P = PhaseKind;

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

/// Helper: build an INT-suite profile. `branchy` raises branch weight and
/// lowers predictability; `mem` raises memory weight and footprint.
AppProfile int_app(std::string name, double ilp, double branch_w,
                   double pred, std::uint64_t ws, double hot_frac,
                   std::uint64_t code, std::vector<PhaseKind> phases,
                   double swing) {
  AppProfile p;
  p.name = std::move(name);
  p.mix.int_alu = 0.62 - branch_w;
  p.mix.int_mul = 0.02;
  p.mix.int_div = 0.004;
  p.mix.load = 0.24;
  p.mix.store = 0.12;
  p.mix.branch = branch_w;
  p.mean_dep_distance = ilp;
  p.dep2_prob = 0.35;
  p.working_set_bytes = ws;
  // Hot region sized so that all eight threads' hot lines fit the shared
  // L1D together (stack/locals traffic); the profile's hot_frac then maps
  // almost directly onto the thread's L1D hit rate, with the cold uniform
  // component providing the misses.
  p.hot_set_bytes = std::min<std::uint64_t>(ws / 8, 2 * KiB);
  p.hot_fraction = std::min(0.97, hot_frac + 0.12);
  p.stride_fraction = 0.05;
  p.code_bytes = code;
  p.branch_sites = static_cast<std::uint32_t>(code / 96);
  p.predictable_sites = pred;
  p.phases = std::move(phases);
  p.phase_swing = swing;
  // Phases turn over every few scheduling quanta (a thread commits
  // roughly 1-3K instructions per 8K-cycle quantum), giving the adaptive
  // scheduler conditions that actually change on its timescale.
  p.phase_len_instrs = 4000 + (mix64(p.working_set_bytes ^ p.code_bytes) % 5) * 2000;
  return p;
}

/// Helper: build an FP-suite profile. `stride` models the regular array
/// traversals of scientific codes; `fp_w` is total FP weight.
AppProfile fp_app(std::string name, double ilp, double fp_w, double stride,
                  std::uint64_t ws, double hot_frac, std::uint64_t code,
                  std::vector<PhaseKind> phases, double swing) {
  AppProfile p;
  p.name = std::move(name);
  p.mix.int_alu = 0.30;
  p.mix.int_mul = 0.01;
  p.mix.int_div = 0.002;
  p.mix.fp_add = fp_w * 0.55;
  p.mix.fp_mul = fp_w * 0.40;
  p.mix.fp_div = fp_w * 0.05;
  p.mix.load = 0.26;
  p.mix.store = 0.12;
  p.mix.branch = 0.31 - fp_w;  // FP codes are loop-dominated: few branches
  p.mean_dep_distance = ilp;
  p.dep2_prob = 0.45;
  p.working_set_bytes = ws;
  p.hot_set_bytes = std::min<std::uint64_t>(ws / 8, 4 * KiB);
  p.hot_fraction = std::min(0.93, hot_frac + 0.07);
  p.stride_fraction = stride;
  p.code_bytes = code;
  p.branch_sites = static_cast<std::uint32_t>(code / 128);
  p.predictable_sites = 0.95;  // loop branches: highly predictable
  p.phases = std::move(phases);
  p.phase_swing = swing;
  p.phase_len_instrs = 5000 + (mix64(p.working_set_bytes ^ p.code_bytes) % 5) * 2500;
  return p;
}

std::map<std::string, AppProfile, std::less<>> build_registry() {
  std::map<std::string, AppProfile, std::less<>> reg;
  auto put = [&reg](AppProfile p) { reg.emplace(p.name, std::move(p)); };

  // ----- SPEC CPU2000 INT-inspired profiles ---------------------------
  //          name       ilp  br_w  pred   ws        hot   code      phases                              swing
  put(int_app("gzip",    4.4, 0.14, 0.94,  1 * MiB,  0.82, 24 * KiB, {P::kBase, P::kCompute},            0.35));
  put(int_app("vpr",     3.4, 0.17, 0.86,  2 * MiB,  0.70, 48 * KiB, {P::kBase, P::kBranchy, P::kMemory},0.55));
  put(int_app("gcc",     3.2, 0.19, 0.82,  4 * MiB,  0.62, 192 * KiB,{P::kBase, P::kBranchy, P::kBase, P::kMemory}, 0.65));
  put(int_app("mcf",     2.3, 0.13, 0.92, 48 * MiB,  0.22, 16 * KiB, {P::kMemory, P::kBase},             0.70));
  put(int_app("crafty",  4.6, 0.18, 0.90,  1 * MiB,  0.85, 64 * KiB, {P::kBase, P::kBranchy},            0.40));
  put(int_app("parser",  3.0, 0.20, 0.78,  8 * MiB,  0.58, 56 * KiB, {P::kBranchy, P::kBase, P::kMemory},0.60));
  put(int_app("eon",     4.2, 0.13, 0.94,  1 * MiB,  0.88, 96 * KiB, {P::kBase, P::kCompute},            0.30));
  put(int_app("perlbmk", 3.5, 0.19, 0.84,  4 * MiB,  0.66, 160 * KiB,{P::kBase, P::kBranchy, P::kBase},  0.55));
  put(int_app("gap",     3.7, 0.14, 0.91,  8 * MiB,  0.60, 64 * KiB, {P::kBase, P::kMemory},             0.45));
  put(int_app("vortex",  3.9, 0.15, 0.92, 16 * MiB,  0.55, 224 * KiB,{P::kBase, P::kMemory, P::kBase},   0.50));
  put(int_app("bzip2",   4.1, 0.13, 0.93,  6 * MiB,  0.72, 20 * KiB, {P::kBase, P::kMemory, P::kCompute},0.50));
  put(int_app("twolf",   3.1, 0.18, 0.83,  2 * MiB,  0.64, 48 * KiB, {P::kBranchy, P::kMemory},          0.60));

  // ----- SPEC CPU2000 FP-inspired profiles ----------------------------
  //         name        ilp  fp_w  stride ws        hot   code      phases                              swing
  put(fp_app("wupwise",  6.0, 0.22, 0.45,  8 * MiB,  0.60, 24 * KiB, {P::kBase, P::kCompute},            0.30));
  put(fp_app("swim",     4.8, 0.24, 0.80, 96 * MiB,  0.12, 12 * KiB, {P::kMemory, P::kBase},             0.55));
  put(fp_app("mgrid",    5.8, 0.25, 0.75, 32 * MiB,  0.25, 12 * KiB, {P::kBase, P::kMemory},             0.40));
  put(fp_app("applu",    5.2, 0.24, 0.70, 64 * MiB,  0.20, 16 * KiB, {P::kMemory, P::kBase, P::kCompute},0.50));
  put(fp_app("mesa",     4.7, 0.16, 0.30,  4 * MiB,  0.78, 64 * KiB, {P::kBase, P::kCompute},            0.35));
  put(fp_app("galgel",   5.4, 0.26, 0.55, 16 * MiB,  0.45, 20 * KiB, {P::kBase, P::kMemory},             0.45));
  put(fp_app("art",      2.6, 0.18, 0.35, 24 * MiB,  0.10,  8 * KiB, {P::kMemory, P::kMemory, P::kBase}, 0.75));
  put(fp_app("equake",   2.8, 0.19, 0.25, 40 * MiB,  0.18, 16 * KiB, {P::kMemory, P::kBase},             0.65));
  put(fp_app("facerec",  4.5, 0.21, 0.50, 12 * MiB,  0.50, 24 * KiB, {P::kBase, P::kMemory, P::kCompute},0.45));
  put(fp_app("ammp",     2.9, 0.20, 0.20, 32 * MiB,  0.24, 24 * KiB, {P::kMemory, P::kBase},             0.60));
  put(fp_app("lucas",    5.0, 0.25, 0.65, 64 * MiB,  0.15, 10 * KiB, {P::kMemory, P::kCompute},          0.55));
  put(fp_app("fma3d",    4.3, 0.22, 0.40, 24 * MiB,  0.42, 96 * KiB, {P::kBase, P::kMemory},             0.50));
  put(fp_app("sixtrack", 6.4, 0.26, 0.50,  2 * MiB,  0.85, 48 * KiB, {P::kCompute, P::kBase},            0.25));
  put(fp_app("apsi",     4.6, 0.23, 0.45, 16 * MiB,  0.48, 32 * KiB, {P::kBase, P::kMemory, P::kBranchy},0.50));

  return reg;
}

const std::map<std::string, AppProfile, std::less<>>& registry() {
  static const auto reg = build_registry();
  return reg;
}

}  // namespace

const AppProfile& profile(std::string_view name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) {
    throw std::out_of_range("unknown application profile: " +
                            std::string(name));
  }
  return it->second;
}

const std::vector<std::string>& all_profile_names() {
  static const std::vector<std::string> names = [] {
    // INT suite first, then FP, in the order the paper's Table-style
    // listings use.
    std::vector<std::string> v{"gzip",    "vpr",     "gcc",     "mcf",
                               "crafty",  "parser",  "eon",     "perlbmk",
                               "gap",     "vortex",  "bzip2",   "twolf",
                               "wupwise", "swim",    "mgrid",   "applu",
                               "mesa",    "galgel",  "art",     "equake",
                               "facerec", "ammp",    "lucas",   "fma3d",
                               "sixtrack","apsi"};
    return v;
  }();
  return names;
}

double profile_distance(const AppProfile& a, const AppProfile& b) {
  auto fp_weight = [](const AppProfile& p) {
    return p.mix.fp_add + p.mix.fp_mul + p.mix.fp_div;
  };
  auto mem_weight = [](const AppProfile& p) { return p.mix.load + p.mix.store; };
  auto log_ws = [](const AppProfile& p) {
    return std::log2(static_cast<double>(p.working_set_bytes));
  };

  // Each feature normalised to roughly [0, 1] before the Euclidean norm.
  const double d_branch = (a.mix.branch - b.mix.branch) / 0.20;
  const double d_mem = (mem_weight(a) - mem_weight(b)) / 0.25;
  const double d_fp = fp_weight(a) - fp_weight(b);
  const double d_ws = (log_ws(a) - log_ws(b)) / 14.0;  // 16 KiB .. 256 MiB
  const double d_ilp = (a.mean_dep_distance - b.mean_dep_distance) / 5.0;
  const double d_pred = a.predictable_sites - b.predictable_sites;
  const double d_hot = a.hot_fraction - b.hot_fraction;

  const double sq = d_branch * d_branch + d_mem * d_mem + d_fp * d_fp +
                    d_ws * d_ws + d_ilp * d_ilp + d_pred * d_pred +
                    d_hot * d_hot;
  return std::sqrt(sq / 7.0);
}

}  // namespace smt::workload
