// Two-level cache hierarchy: private-by-construction L1I/L1D (they are
// physically shared, but each thread's segments are disjoint so sharing
// manifests as capacity/conflict pressure, as on a real SMT) backed by a
// shared unified L2 and a flat-latency main memory.
//
// lookup_* returns the access latency in cycles and updates per-thread
// miss statistics — the counters the detector thread reads (L1MISSCOUNT /
// L1IMISSCOUNT / L1DMISSCOUNT policies, COND_MEM condition).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/cache.hpp"

namespace smt::mem {

struct HierarchyConfig {
  CacheConfig l1i{"L1I", 32 * 1024, 32, 4};
  CacheConfig l1d{"L1D", 32 * 1024, 32, 4};
  /// Unified second level; 2 MB stands in for the era's L2+L3 capacity.
  CacheConfig l2{"L2", 2 * 1024 * 1024, 64, 8};
  std::uint32_t l1_latency = 1;
  std::uint32_t l2_latency = 8;
  std::uint32_t mem_latency = 70;
  std::uint32_t max_threads = 9;  ///< 8 contexts + detector thread slot
};

/// Per-thread miss accounting for one access stream.
struct ThreadMemStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;

  void reset() { *this = ThreadMemStats{}; }
};

struct AccessResult {
  std::uint32_t latency = 1;
  bool l1_miss = false;
  bool l2_miss = false;
};

class Hierarchy {
 public:
  Hierarchy() : Hierarchy(HierarchyConfig{}) {}
  explicit Hierarchy(const HierarchyConfig& cfg);

  /// Instruction fetch of the block containing `pc`.
  AccessResult lookup_instr(std::uint32_t tid, std::uint64_t pc);

  /// Data access.
  AccessResult lookup_data(std::uint32_t tid, std::uint64_t addr, bool write);

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Cache& l1i() const noexcept { return l1i_; }
  [[nodiscard]] const Cache& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }

  [[nodiscard]] const ThreadMemStats& instr_stats(std::uint32_t tid) const {
    return istats_[tid];
  }
  [[nodiscard]] const ThreadMemStats& data_stats(std::uint32_t tid) const {
    return dstats_[tid];
  }
  void reset_thread_stats();

 private:
  HierarchyConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  std::vector<ThreadMemStats> istats_;
  std::vector<ThreadMemStats> dstats_;
};

}  // namespace smt::mem
