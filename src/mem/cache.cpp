#include "mem/cache.hpp"

#include <limits>
#include <stdexcept>

namespace smt::mem {

namespace {
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}
}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_bytes == 0 || !is_pow2(cfg.line_bytes)) {
    throw std::invalid_argument(cfg.name + ": line size must be a power of 2");
  }
  if (cfg.ways == 0) {
    throw std::invalid_argument(cfg.name + ": ways must be >= 1");
  }
  sets_ = cfg.num_sets();
  if (sets_ == 0 || !is_pow2(sets_)) {
    throw std::invalid_argument(cfg.name +
                                ": size/(line*ways) must be a power of 2");
  }
  lines_.assign(sets_ * cfg.ways, Line{});
}

std::uint64_t Cache::set_index(std::uint64_t addr) const noexcept {
  return (addr / cfg_.line_bytes) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const noexcept {
  return (addr / cfg_.line_bytes) / sets_;
}

bool Cache::access(std::uint64_t addr, bool write) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* const base = &lines_[set * cfg_.ways];

  // Hit path: bump recency.
  std::uint32_t max_lru = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    max_lru = std::max(max_lru, base[w].lru);
  }
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = max_lru + 1;
      line.dirty = line.dirty || write;
      ++hits_;
      normalize_if_needed(base, max_lru + 1);
      return true;
    }
  }

  // Miss: fill into an invalid way, else evict the LRU way.
  ++misses_;
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    ++evictions_;
    if (victim->dirty) ++dirty_evictions_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = write;
  victim->lru = max_lru + 1;
  normalize_if_needed(base, max_lru + 1);
  return false;
}

void Cache::normalize_if_needed(Line* base, std::uint32_t new_max) {
  // Recency counters are per-set and monotonically increasing; rebase the
  // set when the counter nears overflow (rare: every ~4G accesses to one
  // set).
  if (new_max < std::numeric_limits<std::uint32_t>::max() - 2) return;
  std::uint32_t min_lru = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid) min_lru = std::min(min_lru, base[w].lru);
  }
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid) base[w].lru -= min_lru;
  }
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* const base = &lines_[set * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::clear() {
  lines_.assign(lines_.size(), Line{});
  hits_ = misses_ = evictions_ = dirty_evictions_ = 0;
}

}  // namespace smt::mem
