#include "mem/hierarchy.hpp"

namespace smt::mem {

Hierarchy::Hierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg),
      l1i_(cfg.l1i),
      l1d_(cfg.l1d),
      l2_(cfg.l2),
      istats_(cfg.max_threads),
      dstats_(cfg.max_threads) {}

AccessResult Hierarchy::lookup_instr(std::uint32_t tid, std::uint64_t pc) {
  AccessResult r;
  ThreadMemStats& s = istats_[tid];
  ++s.accesses;
  r.latency = cfg_.l1_latency;
  if (l1i_.access(pc, /*write=*/false)) return r;

  r.l1_miss = true;
  ++s.l1_misses;
  r.latency = cfg_.l2_latency;
  if (l2_.access(pc, /*write=*/false)) return r;

  r.l2_miss = true;
  ++s.l2_misses;
  r.latency = cfg_.mem_latency;
  return r;
}

AccessResult Hierarchy::lookup_data(std::uint32_t tid, std::uint64_t addr,
                                    bool write) {
  AccessResult r;
  ThreadMemStats& s = dstats_[tid];
  ++s.accesses;
  r.latency = cfg_.l1_latency;
  if (l1d_.access(addr, write)) return r;

  r.l1_miss = true;
  ++s.l1_misses;
  r.latency = cfg_.l2_latency;
  if (l2_.access(addr, write)) return r;

  r.l2_miss = true;
  ++s.l2_misses;
  r.latency = cfg_.mem_latency;
  return r;
}

void Hierarchy::reset_thread_stats() {
  for (auto& s : istats_) s.reset();
  for (auto& s : dstats_) s.reset();
}

}  // namespace smt::mem
