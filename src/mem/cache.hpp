// Set-associative cache model with true-LRU replacement.
//
// Tag-only (no data payloads): a lookup reports hit/miss and updates
// recency; a miss fills the line, evicting the LRU way. The model is
// shared by L1I, L1D and the unified L2. It is value-semantic so
// simulator snapshots copy the full cache state — required for the oracle
// scheduler's exact quantum re-runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace smt::mem {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;

  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }
};

class Cache {
 public:
  Cache() : Cache(CacheConfig{}) {}
  explicit Cache(const CacheConfig& cfg);

  /// Access `addr`; returns true on hit. On miss the line is filled
  /// (evicting LRU). `write` marks the installed/updated line dirty;
  /// dirtiness only feeds the writeback statistics — latency of
  /// writebacks is folded into the miss latency by the hierarchy.
  bool access(std::uint64_t addr, bool write);

  /// Probe without changing any state (for tests and occupancy queries).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void clear();

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t dirty_evictions() const noexcept {
    return dirty_evictions_;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint32_t lru = 0;  ///< higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;
  void normalize_if_needed(Line* base, std::uint32_t new_max);

  CacheConfig cfg_;
  std::uint64_t sets_ = 1;
  std::vector<Line> lines_;  ///< sets_ * ways, set-major
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

}  // namespace smt::mem
