#include "fleet/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "common/exit_codes.hpp"

namespace smt::fleet {

const char* name(JobState state) noexcept {
  switch (state) {
    case JobState::kPending: return "pending";
    case JobState::kWaitingRetry: return "waiting-retry";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCached: return "cached";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

const char* name(ExitClass cls) noexcept {
  switch (cls) {
    case ExitClass::kSuccess: return "success";
    case ExitClass::kCancelled: return "cancelled";
    case ExitClass::kPermanent: return "permanent";
    case ExitClass::kCrash: return "crash";
  }
  return "?";
}

ExitClass classify_exit(const WorkerExit& e) noexcept {
  if (e.signaled) return ExitClass::kCrash;
  switch (e.status) {
    case kExitOk:
      return ExitClass::kSuccess;
    case kExitCancelled:
      return ExitClass::kCancelled;
    case kExitUsage:
    case kExitConfig:
    case kExitCheck:
    case 127:  // exec failed: the worker binary itself is missing/broken
      return ExitClass::kPermanent;
    default:
      return ExitClass::kCrash;
  }
}

FleetScheduler::FleetScheduler(const FleetConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_workers == 0) cfg_.max_workers = 1;
  if (cfg_.max_attempts == 0) cfg_.max_attempts = 1;
}

std::size_t FleetScheduler::add_job() {
  jobs_.emplace_back();
  return jobs_.size() - 1;
}

void FleetScheduler::mark_cached(std::size_t job) {
  JobStatus& j = jobs_[job];
  assert(j.state == JobState::kPending);
  j.state = JobState::kCached;
  ++settled_;
}

std::uint64_t FleetScheduler::backoff_ms(std::uint32_t attempt) const noexcept {
  if (attempt == 0) return 0;
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 62);
  const std::uint64_t raw = cfg_.backoff_base_ms << shift;
  // Shift overflow shows up as a smaller value; clamp handles both that
  // and the configured ceiling.
  if (shift > 0 && raw < cfg_.backoff_base_ms) return cfg_.backoff_cap_ms;
  return std::min(raw, cfg_.backoff_cap_ms);
}

std::optional<std::size_t> FleetScheduler::next_ready(
    std::uint64_t now_ms) const {
  if (draining_ || running_ >= cfg_.max_workers) return std::nullopt;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobStatus& j = jobs_[i];
    if (j.state == JobState::kPending) return i;
    if (j.state == JobState::kWaitingRetry && now_ms >= j.retry_at_ms) {
      return i;
    }
  }
  return std::nullopt;
}

void FleetScheduler::on_started(std::size_t job, std::uint64_t now_ms) {
  JobStatus& j = jobs_[job];
  assert(j.state == JobState::kPending || j.state == JobState::kWaitingRetry);
  j.state = JobState::kRunning;
  ++j.attempts;
  j.started_at_ms = now_ms;
  j.deadline_ms = cfg_.timeout_ms == 0 ? 0 : now_ms + cfg_.timeout_ms;
  ++running_;
}

Outcome FleetScheduler::settle_attempt(std::size_t job,
                                       const std::string& reason,
                                       std::uint64_t now_ms) {
  JobStatus& j = jobs_[job];
  if (j.attempts >= cfg_.max_attempts) {
    j.state = JobState::kFailed;
    j.failure = reason + " (attempt " + std::to_string(j.attempts) + "/" +
                std::to_string(cfg_.max_attempts) + ", retries exhausted)";
    ++settled_;
    ++failed_;
    return Outcome::kFailed;
  }
  j.state = JobState::kWaitingRetry;
  j.retry_at_ms = now_ms + backoff_ms(j.attempts);
  return Outcome::kRequeued;
}

Outcome FleetScheduler::on_exit(std::size_t job, const WorkerExit& e,
                                std::uint64_t now_ms) {
  JobStatus& j = jobs_[job];
  assert(j.state == JobState::kRunning);
  --running_;
  const std::string how = e.signaled
                              ? "signal " + std::to_string(e.status)
                              : "exit " + std::to_string(e.status);
  switch (classify_exit(e)) {
    case ExitClass::kSuccess:
      j.state = JobState::kDone;
      ++settled_;
      return Outcome::kAccepted;
    case ExitClass::kPermanent:
      j.state = JobState::kFailed;
      j.failure = how + " (permanent)";
      ++settled_;
      ++failed_;
      return Outcome::kFailed;
    case ExitClass::kCancelled:
    case ExitClass::kCrash:
      return settle_attempt(job, how, now_ms);
  }
  return Outcome::kFailed;  // unreachable
}

std::vector<std::size_t> FleetScheduler::expired(std::uint64_t now_ms) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const JobStatus& j = jobs_[i];
    if (j.state == JobState::kRunning && j.deadline_ms != 0 &&
        now_ms >= j.deadline_ms) {
      out.push_back(i);
    }
  }
  return out;
}

Outcome FleetScheduler::on_timeout(std::size_t job, std::uint64_t now_ms) {
  assert(jobs_[job].state == JobState::kRunning);
  --running_;
  return settle_attempt(
      job, "timeout after " + std::to_string(cfg_.timeout_ms) + " ms", now_ms);
}

std::optional<std::uint64_t> FleetScheduler::next_wake_ms(
    std::uint64_t now_ms) const {
  std::optional<std::uint64_t> wake;
  const auto consider = [&wake, now_ms](std::uint64_t t) {
    const std::uint64_t at = std::max(t, now_ms);
    if (!wake || at < *wake) wake = at;
  };
  for (const JobStatus& j : jobs_) {
    if (j.state == JobState::kWaitingRetry && !draining_) {
      consider(j.retry_at_ms);
    } else if (j.state == JobState::kRunning && j.deadline_ms != 0) {
      consider(j.deadline_ms);
    }
  }
  return wake;
}

int FleetScheduler::batch_exit_code() const noexcept {
  if (failed_ > 0) return kExitBatchFailed;
  if (!all_settled()) return kExitCancelled;
  return kExitOk;
}

}  // namespace smt::fleet
